// Command cgraph-trace regenerates the Figure 1 motivation panels from the
// synthetic production trace: hourly concurrent CGP job counts and the
// ratio of active partitions shared by more than 1/2/4/8/16 jobs.
//
// Usage:
//
//	cgraph-trace [-hours 160] [-seed 42] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cgraph/internal/gen"
)

func main() {
	hours := flag.Int("hours", 160, "trace length in hours")
	seed := flag.Int64("seed", 42, "trace seed")
	csv := flag.Bool("csv", false, "emit CSV instead of a summary")
	flag.Parse()

	points, shares := gen.JobTrace(*seed, *hours)
	if *csv {
		fmt.Println("hour,active,share_gt1,share_gt2,share_gt4,share_gt8,share_gt16")
		for i, p := range points {
			s := shares[i]
			fmt.Printf("%.0f,%d,%.1f,%.1f,%.1f,%.1f,%.1f\n",
				p.Hour, p.Active, s.MoreThan[1], s.MoreThan[2], s.MoreThan[4], s.MoreThan[8], s.MoreThan[16])
		}
		return
	}

	peak, sum := 0, 0
	for _, p := range points {
		if p.Active > peak {
			peak = p.Active
		}
		sum += p.Active
	}
	fmt.Printf("trace: %d hours, peak %d concurrent CGP jobs, mean %.1f\n\n",
		*hours, peak, float64(sum)/float64(len(points)))

	fmt.Println("hourly active jobs (each * is one job):")
	for i := 0; i < len(points); i += 8 {
		p := points[i]
		fmt.Fprintf(os.Stdout, "h%-4.0f %3d %s\n", p.Hour, p.Active, strings.Repeat("*", p.Active))
	}

	fmt.Println("\nmean ratio of active partitions shared by more than k jobs:")
	for _, k := range []int{1, 2, 4, 8, 16} {
		total := 0.0
		for _, s := range shares {
			total += s.MoreThan[k]
		}
		fmt.Printf("  >%2d jobs: %5.1f%%\n", k, total/float64(len(shares)))
	}
}
