// Command cgraph-vet runs the project's static-analysis suite
// (internal/lint) over the given package patterns and exits non-zero if
// any invariant is violated. It is wired into CI as a required job:
//
//	go run ./cmd/cgraph-vet ./...
//
// Run with -help for the rule list; see the README's "Static analysis"
// section for the annotation escape hatches.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cgraph/internal/lint"
)

func main() {
	var only string
	flag.StringVar(&only, "only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = usage
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.All()
	if only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "cgraph-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	fset, pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgraph-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAnalyzers(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cgraph-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cgraph-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: cgraph-vet [-only name,...] [packages]\n\nanalyzers:\n")
	for _, a := range lint.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}
