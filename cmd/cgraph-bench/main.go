// Command cgraph-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index).
//
// Usage:
//
//	cgraph-bench [-scale 1.0] [-workers 8] [-eps 1e-3] [-out dir] [-csv] [-v] [-json file] [experiment ...]
//
// With no experiment arguments every experiment runs in paper order.
// Experiment names: table1, fig1, fig2, fig8..fig19, ablation-straggler,
// ablation-scheduler, ablation-batching, ablation-two-level, concurrent,
// scaling, async.
//
// The `concurrent` experiment measures round-tracing overhead (traced vs
// TraceDepth=0) on the 4-job workload, plus a third leg with the span
// tracer on at default task sampling to price the distributed-span path;
// -json writes its machine-readable result (BENCH_concurrent.json in CI).
//
// The `scaling` experiment sweeps simulated core counts 1, 2, 4, …
// -max-cores over a skewed power-law workload, comparing the
// work-stealing degree-weighted executor against legacy static
// vertex-count chunking; -json writes its result (BENCH_scaling.json).
//
// The `async` experiment compares the three execution disciplines (bsp,
// async, delayed) on the same PageRank + SSSP workload, reporting
// iterations-to-convergence and virtual makespan per leg; -json writes
// its result (BENCH_async.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cgraph/internal/harness"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default reproduction scale)")
	workers := flag.Int("workers", 8, "simulated worker (core) count")
	eps := flag.Float64("eps", 1e-3, "PageRank convergence threshold")
	outDir := flag.String("out", "", "also write each table as CSV into this directory")
	verbose := flag.Bool("v", false, "stream progress to stderr")
	jsonOut := flag.String("json", "", "write the concurrent/scaling bench result as JSON to this file")
	traceDepth := flag.Int("trace-depth", 256, "trace ring depth for the concurrent bench's traced leg")
	benchRuns := flag.Int("runs", 3, "runs per leg for the concurrent bench (best-of)")
	maxCores := flag.Int("max-cores", 8, "largest simulated core count of the scaling sweep")
	flag.Parse()

	opt := harness.Options{Scale: *scale, Workers: *workers, Epsilon: *eps}
	if *verbose {
		opt.Log = os.Stderr
	}

	single := map[string]func(harness.Options) (*harness.Table, error){
		"table1": harness.Table1,
		"fig8":   harness.Fig8, "fig9": harness.Fig9, "fig10": harness.Fig10,
		"fig11": harness.Fig11, "fig12": harness.Fig12, "fig13": harness.Fig13,
		"fig14": harness.Fig14, "fig15": harness.Fig15, "fig16": harness.Fig16,
		"fig17": harness.Fig17, "fig18": harness.Fig18, "fig19": harness.Fig19,
		"ablation-straggler": harness.AblationStraggler,
		"ablation-scheduler": harness.AblationScheduler,
		"ablation-batching":  harness.AblationBatching,
		"ablation-two-level": harness.AblationTwoLevel,
	}
	multi := map[string]func(harness.Options) ([]*harness.Table, error){
		"fig1": harness.Fig1, "fig2": harness.Fig2,
	}

	writeJSON := func(res any) error {
		if *jsonOut == "" {
			return nil
		}
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*jsonOut, append(b, '\n'), 0o644)
	}

	var tables []*harness.Table
	run := func(name string) error {
		if name == "concurrent" || name == "bench-concurrent" {
			t, res, err := harness.BenchConcurrent(opt, *traceDepth, *benchRuns)
			if err != nil {
				return err
			}
			tables = append(tables, t)
			return writeJSON(res)
		}
		if name == "scaling" || name == "bench-scaling" {
			t, res, err := harness.BenchScaling(opt, *maxCores)
			if err != nil {
				return err
			}
			tables = append(tables, t)
			return writeJSON(res)
		}
		if name == "async" || name == "bench-async" {
			t, res, err := harness.BenchAsync(opt)
			if err != nil {
				return err
			}
			tables = append(tables, t)
			return writeJSON(res)
		}
		if fn, ok := single[name]; ok {
			t, err := fn(opt)
			if err != nil {
				return err
			}
			tables = append(tables, t)
			return nil
		}
		if fn, ok := multi[name]; ok {
			ts, err := fn(opt)
			if err != nil {
				return err
			}
			tables = append(tables, ts...)
			return nil
		}
		return fmt.Errorf("unknown experiment %q", name)
	}

	var err error
	if flag.NArg() == 0 {
		tables, err = harness.All(opt)
	} else {
		for _, name := range flag.Args() {
			if err = run(strings.ToLower(name)); err != nil {
				break
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgraph-bench:", err)
		os.Exit(1)
	}

	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cgraph-bench:", err)
			os.Exit(1)
		}
		if *outDir != "" {
			if err := writeCSV(*outDir, t); err != nil {
				fmt.Fprintln(os.Stderr, "cgraph-bench:", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, t *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}
