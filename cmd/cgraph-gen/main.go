// Command cgraph-gen generates synthetic graphs: the named Table 1
// stand-ins, plain R-MAT/web/uniform graphs, and mutated snapshots for the
// evolving-graph experiments.
//
// Usage:
//
//	cgraph-gen -list
//	cgraph-gen -dataset ukunion-sim [-scale 1.0] -o edges.tsv
//	cgraph-gen -kind rmat -vertices 1000 -edges 30000 -seed 7 -o edges.tsv
//	cgraph-gen -mutate edges.tsv -ratio 0.05 -o edges2.tsv
package main

import (
	"flag"
	"fmt"
	"os"

	"cgraph/internal/gen"
	"cgraph/model"
)

func main() {
	list := flag.Bool("list", false, "list the named stand-in datasets")
	dataset := flag.String("dataset", "", "generate a named stand-in")
	scale := flag.Float64("scale", 1.0, "stand-in scale factor")
	kind := flag.String("kind", "", "generator kind: rmat, web, uniform, ring, chain")
	vertices := flag.Int("vertices", 1000, "vertex count")
	edges := flag.Int("edges", 10000, "edge count")
	seed := flag.Int64("seed", 1, "random seed")
	mutate := flag.String("mutate", "", "edge file to mutate into a snapshot")
	ratio := flag.Float64("ratio", 0.05, "mutation ratio for -mutate")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch {
	case *list:
		fmt.Println("name             stands for    kind    vertices  edges")
		for _, d := range gen.StandIns(*scale) {
			k := "social"
			if d.Kind == gen.WebGraph {
				k = "web"
			}
			fmt.Printf("%-16s %-13s %-7s %8d  %d\n", d.Name, d.PaperName, k, d.NumVertices, d.NumEdges)
		}
		return
	case *dataset != "":
		d, err := gen.StandIn(*dataset, *scale)
		if err != nil {
			fatal(err)
		}
		if err := gen.WriteEdges(w, d.Generate()); err != nil {
			fatal(err)
		}
	case *mutate != "":
		f, err := os.Open(*mutate)
		if err != nil {
			fatal(err)
		}
		base, err := gen.ReadEdges(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		n := 0
		for _, e := range base {
			if int(e.Src) >= n {
				n = int(e.Src) + 1
			}
			if int(e.Dst) >= n {
				n = int(e.Dst) + 1
			}
		}
		mut, changed := gen.MutateClustered(base, *ratio, n, *seed, 32)
		fmt.Fprintf(os.Stderr, "mutated %d of %d edge slots\n", len(changed), len(base))
		if err := gen.WriteEdges(w, mut); err != nil {
			fatal(err)
		}
	case *kind != "":
		var es []model.Edge
		switch *kind {
		case "rmat":
			es = gen.RMAT(*seed, *vertices, *edges, 0.57, 0.19, 0.19)
		case "web":
			es = gen.Web(*seed, *vertices, *edges)
		case "uniform":
			es = gen.ER(*seed, *vertices, *edges)
		case "ring":
			es = gen.Ring(*vertices)
		case "chain":
			es = gen.Chain(*vertices)
		default:
			fatal(fmt.Errorf("unknown kind %q", *kind))
		}
		if err := gen.WriteEdges(w, es); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: cgraph-gen [-list | -dataset name | -kind k | -mutate file] [-o out]")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgraph-gen:", err)
	os.Exit(1)
}
