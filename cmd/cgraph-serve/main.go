// Command cgraph-serve runs a resident CGraph job service — one shared
// (optionally evolving) graph held in memory, the versioned /v1 HTTP/JSON
// control plane accepting concurrent iterative jobs, and the engine's
// round loop sharing every partition load across whatever jobs are in
// flight — and doubles as its admin CLI: with -connect it drives a running
// instance through the Go HTTP client instead of serving.
//
// Serve:
//
//	cgraph-serve -graph edges.tsv [-addr :8040] [-workers 8] [-balance 4] [-max-inflight 16]
//	cgraph-serve -dataset ukunion-sim [-scale 0.1] [-scheduler two-level] [-retain-terminal 64]
//	cgraph-serve -dataset twitter-sim -ingest-window 200ms -ingest-batch 128 -retain-snapshots 8
//	cgraph-serve -dataset ukunion-sim -trace-depth 512 -log-format json -log-level debug -pprof-addr localhost:6060
//
// Admin (all wire shapes are api types; errors carry machine-readable codes):
//
//	cgraph-serve -connect http://localhost:8040 submit pagerank priority=2
//	cgraph-serve -connect http://localhost:8040 submit sssp source=3 timeout_ms=5000
//	cgraph-serve -connect http://localhost:8040 list state=done label.team=growth
//	cgraph-serve -connect http://localhost:8040 get job-0
//	cgraph-serve -connect http://localhost:8040 watch job-0
//	cgraph-serve -connect http://localhost:8040 results job-0 5
//	cgraph-serve -connect http://localhost:8040 cancel job-1
//	cgraph-serve -connect http://localhost:8040 delta 17=3,9,1 42=5,5,2 flush
//	cgraph-serve -connect http://localhost:8040 delta add=3,9,1 remove=5,5 vertex=1200 flush
//	cgraph-serve -connect http://localhost:8040 trace job-0
//	cgraph-serve -connect http://localhost:8040 trace rounds 10
//	cgraph-serve -connect http://localhost:8040 spans job-0
//	cgraph-serve -connect http://localhost:8040 spans trace 0af7651916cd43dd8448eb211c80319c
//	cgraph-serve -connect http://localhost:8040 sched
//	cgraph-serve -connect http://localhost:8040 metrics
//	cgraph-serve -connect http://localhost:8040 health
//	cgraph-serve -connect http://localhost:8040 version
//
// Raw control plane (curl):
//
//	curl -X POST localhost:8040/v1/jobs -d '{"algo":"pagerank"}'
//	curl localhost:8040/v1/jobs                     # list (?limit/&offset paginate, ?state/&label filter)
//	curl -N localhost:8040/v1/jobs/job-0/events     # server-sent event stream
//	curl 'localhost:8040/v1/jobs/job-1/results?top=5'
//	curl -X POST localhost:8040/v1/snapshots -d '{"timestamp":20,"edges":[[0,1,1],...]}'
//	curl -X POST localhost:8040/v1/deltas -d '{"mutations":[{"slot":17,"edge":[3,9,1]}]}'
//	curl localhost:8040/v1/jobs/job-0/trace         # round-by-round timeline
//	curl 'localhost:8040/v1/trace/rounds?limit=10'  # engine round traces
//	curl localhost:8040/v1/sched
//	curl localhost:8040/metrics                     # Prometheus text exposition
//
// The graph is partitioned without the core-subgraph split by default so
// that snapshot ingestion works (slot-stable partitions); pass
// -core-subgraph to enable it for static graphs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/client"
	"cgraph/internal/gen"
	"cgraph/server"
)

func main() {
	addr := flag.String("addr", ":8040", "listen address")
	connect := flag.String("connect", "", "admin mode: drive the instance at this base URL instead of serving")
	graphFile := flag.String("graph", "", "edge-list file (src dst [weight] per line)")
	dataset := flag.String("dataset", "", "named stand-in dataset (see cgraph-gen -list)")
	scale := flag.Float64("scale", 1.0, "stand-in scale factor")
	workers := flag.Int("workers", 0, "worker count of the work-stealing execution pool (default GOMAXPROCS)")
	balance := flag.Float64("balance", 0, "task-granularity balance factor: ~workers*balance tasks per partition sweep (default 4)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently running jobs, 0 = unlimited")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-job timeout applied when a submission has none, 0 = none")
	retainTerminal := flag.Int("retain-terminal", 0, "terminal jobs kept with results before compacting to the history ring, 0 = keep all")
	retainSnapshots := flag.Int("retain-snapshots", 0, "graph snapshots retained before evicting unreferenced old versions, 0 = keep all")
	ingestWindow := flag.Duration("ingest-window", 0, "delta batching window: buffered mutations this old flush into a snapshot, 0 = count/manual triggers only")
	ingestBatch := flag.Int("ingest-batch", 0, "delta count trigger: flush once this many distinct slots are buffered (default 256)")
	ingestCap := flag.Int("ingest-cap", 0, "delta admission cap: shed batches (429 ingest_saturated) once this many mutations are pending, 0 = unbounded")
	coreSubgraph := flag.Bool("core-subgraph", false, "enable §3.3 core-subgraph partitioning (disables snapshot ingestion)")
	scheduler := flag.String("scheduler", "two-level", "partition-load policy: static, priority (one-level Eq. 1), or two-level (correlation groups + Eq. 1)")
	execMode := flag.String("exec-mode", "", "default execution mode for jobs submitted without one: bsp, async, or delayed (default bsp)")
	staleness := flag.Int("staleness", 0, "default staleness bound for delayed-mode jobs: iterations between forced merge barriers (default 3)")
	traceDepth := flag.Int("trace-depth", 256, "round-trace ring depth for /v1/trace/rounds and /v1/jobs/{id}/trace, 0 disables tracing")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	pprofAddr := flag.String("pprof-addr", "", "listen address for net/http/pprof on a separate listener, empty disables")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}

	if *connect != "" {
		if err := admin(*connect, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}

	policy, err := cgraph.ParseScheduler(*scheduler)
	if err != nil {
		fatal(err)
	}
	mode, err := cgraph.ParseExecMode(*execMode)
	if err != nil {
		fatal(err)
	}
	if *staleness < 0 {
		fatal(fmt.Errorf("negative -staleness %d", *staleness))
	}
	sys := cgraph.NewSystem(
		cgraph.WithWorkers(*workers),
		cgraph.WithBalance(*balance),
		cgraph.WithCoreSubgraph(*coreSubgraph),
		cgraph.WithScheduler(policy),
		cgraph.WithRetainSnapshots(*retainSnapshots),
		cgraph.WithIngestWindow(*ingestWindow),
		cgraph.WithIngestBatch(*ingestBatch),
		cgraph.WithIngestCap(*ingestCap),
		cgraph.WithTraceDepth(*traceDepth),
	)
	switch {
	case *graphFile != "":
		if err := sys.LoadEdgeFile(*graphFile); err != nil {
			fatal(err)
		}
	case *dataset != "":
		d, err := gen.StandIn(*dataset, *scale)
		if err != nil {
			fatal(err)
		}
		if err := sys.LoadEdges(d.NumVertices, d.Generate()); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -graph or -dataset is required (or -connect for admin mode)"))
	}

	cfg := server.Config{
		MaxInFlight:      *maxInflight,
		DefaultTimeout:   *defaultTimeout,
		RetainTerminal:   *retainTerminal,
		Logger:           logger,
		DefaultStaleness: *staleness,
	}
	if *execMode != "" {
		// An unset flag keeps the default empty so default submissions stay
		// byte-identical on the wire (no exec_mode field).
		cfg.DefaultExecMode = mode
	}
	svc := server.New(sys, cfg)
	if err := svc.Start(); err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler(nil)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }() //cgraph:spawn one HTTP listener for the process lifetime
	logger.Info("cgraph-serve listening", "addr", *addr, "trace_depth", *traceDepth)

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		// pprof rides its own listener and mux so the profiling surface is
		// never exposed on the service address.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: pmux}
		//cgraph:spawn one pprof listener for the process lifetime
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("pprof server", "error", err.Error())
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
	case err := <-errc:
		logger.Error("http server", "error", err.Error())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if pprofSrv != nil {
		pprofSrv.Shutdown(ctx)
	}
	if err := svc.Stop(ctx); err != nil {
		logger.Error("service stop", "error", err.Error())
	}
	// Drain the delta pipeline so buffered mutations are not stranded and
	// no age-trigger flush fires mid-teardown.
	if err := sys.CloseIngest(); err != nil {
		logger.Error("ingest close", "error", err.Error())
	}
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// admin drives a running instance through the HTTP client.
func admin(base string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("admin mode needs a command: submit, get, list, watch, results, cancel, delta, trace, spans, sched, metrics, health, version")
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	c := client.New(base)
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		if len(rest) < 1 {
			return fmt.Errorf("usage: submit <algo> [source=N] [k=N] [priority=N] [timeout_ms=N] [at=TS] [label.key=val]")
		}
		spec, err := parseSpec(rest)
		if err != nil {
			return err
		}
		st, err := c.Submit(ctx, spec)
		if err != nil {
			return err
		}
		return dump(st)
	case "get":
		if len(rest) != 1 {
			return fmt.Errorf("usage: get <job-id>")
		}
		st, err := c.Get(ctx, rest[0])
		if err != nil {
			return err
		}
		return dump(st)
	case "list":
		opts, err := parseListOptions(rest)
		if err != nil {
			return err
		}
		list, err := c.List(ctx, opts)
		if err != nil {
			return err
		}
		return dump(list)
	case "delta":
		if len(rest) < 1 {
			return fmt.Errorf("usage: delta [<slot>=<src>,<dst>[,<w>] | add=<src>,<dst>[,<w>] | remove=<src>,<dst> | vertex=<id>]... [at=TS] [flush]")
		}
		delta, err := parseDelta(rest)
		if err != nil {
			return err
		}
		ack, err := c.ApplyDelta(ctx, delta)
		if err != nil {
			return err
		}
		return dump(ack)
	case "watch":
		if len(rest) != 1 {
			return fmt.Errorf("usage: watch <job-id>")
		}
		events, err := c.Watch(ctx, rest[0])
		if err != nil {
			return err
		}
		for ev := range events {
			if err := dump(ev); err != nil {
				return err
			}
		}
		return nil
	case "results":
		if len(rest) < 1 || len(rest) > 2 {
			return fmt.Errorf("usage: results <job-id> [top]")
		}
		var opts api.ResultsOptions
		if len(rest) == 2 {
			top, err := strconv.Atoi(rest[1])
			if err != nil {
				return fmt.Errorf("bad top %q", rest[1])
			}
			opts.Top = top
		}
		res, err := c.Results(ctx, rest[0], opts)
		if err != nil {
			return err
		}
		return dump(res)
	case "cancel":
		if len(rest) != 1 {
			return fmt.Errorf("usage: cancel <job-id>")
		}
		st, err := c.Cancel(ctx, rest[0])
		if err != nil {
			return err
		}
		return dump(st)
	case "trace":
		switch {
		case len(rest) == 1 && rest[0] != "rounds":
			tr, err := c.JobTrace(ctx, rest[0])
			if err != nil {
				return err
			}
			renderJobTrace(os.Stdout, tr)
			return nil
		case len(rest) >= 1 && rest[0] == "rounds":
			var opts api.TraceOptions
			if len(rest) == 2 {
				limit, err := strconv.Atoi(rest[1])
				if err != nil || limit < 0 {
					return fmt.Errorf("bad limit %q", rest[1])
				}
				opts.Limit = limit
			} else if len(rest) > 2 {
				return fmt.Errorf("usage: trace rounds [limit]")
			}
			rt, err := c.RoundTrace(ctx, opts)
			if err != nil {
				return err
			}
			return dump(rt)
		default:
			return fmt.Errorf("usage: trace <job-id> | trace rounds [limit]")
		}
	case "spans":
		switch {
		case len(rest) == 1 && rest[0] != "trace":
			js, err := c.JobSpans(ctx, rest[0])
			if err != nil {
				return err
			}
			renderJobSpans(os.Stdout, js)
			return nil
		case len(rest) == 2 && rest[0] == "trace":
			sl, err := c.TraceSpans(ctx, rest[1])
			if err != nil {
				return err
			}
			fmt.Printf("trace %s (%d spans)\n", sl.TraceID, len(sl.Spans))
			renderSpanTree(os.Stdout, sl.Spans)
			return nil
		default:
			return fmt.Errorf("usage: spans <job-id> | spans trace <trace-id>")
		}
	case "health":
		h, err := c.Readyz(ctx)
		if err != nil {
			return err
		}
		return dump(h)
	case "version":
		v, err := c.Version(ctx)
		if err != nil {
			return err
		}
		return dump(v)
	case "sched":
		si, err := c.SchedInfo(ctx)
		if err != nil {
			return err
		}
		return dump(si)
	case "metrics":
		m, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		return dump(m)
	default:
		return fmt.Errorf("unknown admin command %q", cmd)
	}
}

// parseSpec builds an api.JobSpec from "submit <algo> key=value..." args.
func parseSpec(args []string) (api.JobSpec, error) {
	spec := api.JobSpec{Algo: args[0]}
	for _, kv := range args[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("bad argument %q, want key=value", kv)
		}
		if lbl, ok := strings.CutPrefix(key, "label."); ok {
			if spec.Labels == nil {
				spec.Labels = map[string]string{}
			}
			spec.Labels[lbl] = val
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("bad %s %q", key, val)
		}
		switch key {
		case "source":
			spec.Source = uint32(n)
		case "k":
			spec.K = int(n)
		case "priority":
			spec.Priority = int(n)
		case "timeout_ms":
			spec.TimeoutMS = n
		case "at":
			ts := n
			spec.AtTimestamp = &ts
		default:
			return spec, fmt.Errorf("unknown submit option %q", key)
		}
	}
	return spec, nil
}

// parseListOptions builds api.ListOptions from "list [state=S] [label.k=v]
// [limit=N] [offset=N]" args.
func parseListOptions(args []string) (api.ListOptions, error) {
	var opts api.ListOptions
	for _, kv := range args {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return opts, fmt.Errorf("bad argument %q, want key=value", kv)
		}
		if lbl, ok := strings.CutPrefix(key, "label."); ok {
			if prev, dup := opts.Labels[lbl]; dup && prev != val {
				return opts, fmt.Errorf("conflicting label filters for %q (%q vs %q)", lbl, prev, val)
			}
			if opts.Labels == nil {
				opts.Labels = map[string]string{}
			}
			opts.Labels[lbl] = val
			continue
		}
		switch key {
		case "state":
			opts.State = api.JobState(val)
		case "limit", "offset":
			n, err := strconv.Atoi(val)
			if err != nil {
				return opts, fmt.Errorf("bad %s %q", key, val)
			}
			if key == "limit" {
				opts.Limit = n
			} else {
				opts.Offset = n
			}
		default:
			return opts, fmt.Errorf("unknown list option %q", key)
		}
	}
	return opts, nil
}

// parseDelta builds an api.Delta from delta verb args: "<slot>=…" rewrites
// an existing slot, "add=<src>,<dst>[,<w>]" appends an edge,
// "remove=<src>,<dst>" deletes one matching edge, "vertex=<id>" grows the
// vertex space, plus "at=TS" and "flush".
func parseDelta(args []string) (api.Delta, error) {
	var delta api.Delta
	parseEdge := func(val string, withWeight bool) ([3]float64, error) {
		parts := strings.Split(val, ",")
		if len(parts) != 2 && !(withWeight && len(parts) == 3) {
			if withWeight {
				return [3]float64{}, fmt.Errorf("bad edge %q, want <src>,<dst>[,<weight>]", val)
			}
			return [3]float64{}, fmt.Errorf("bad edge %q, want <src>,<dst>", val)
		}
		edge := [3]float64{0, 0, 1}
		for i, p := range parts {
			x, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return [3]float64{}, fmt.Errorf("bad edge component %q in %q", p, val)
			}
			edge[i] = x
		}
		return edge, nil
	}
	for _, arg := range args {
		if arg == "flush" {
			delta.Flush = true
			continue
		}
		key, val, ok := strings.Cut(arg, "=")
		if !ok {
			return delta, fmt.Errorf("bad argument %q, want <slot>=…, add=…, remove=…, vertex=…, at=TS, or flush", arg)
		}
		switch key {
		case "at":
			ts, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return delta, fmt.Errorf("bad at %q", val)
			}
			delta.Timestamp = ts
		case "add":
			edge, err := parseEdge(val, true)
			if err != nil {
				return delta, err
			}
			delta.Mutations = append(delta.Mutations, api.Mutation{Op: api.MutationAdd, Edge: edge})
		case "remove":
			edge, err := parseEdge(val, false)
			if err != nil {
				return delta, err
			}
			delta.Mutations = append(delta.Mutations, api.Mutation{Op: api.MutationRemove, Edge: edge})
		case "vertex":
			v, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return delta, fmt.Errorf("bad vertex %q", val)
			}
			delta.Mutations = append(delta.Mutations, api.Mutation{Op: api.MutationAddVertex, Vertex: uint32(v)})
		default:
			slot, err := strconv.Atoi(key)
			if err != nil {
				return delta, fmt.Errorf("bad slot %q", key)
			}
			edge, err := parseEdge(val, true)
			if err != nil {
				return delta, err
			}
			delta.Mutations = append(delta.Mutations, api.Mutation{Op: api.MutationRewrite, Slot: slot, Edge: edge})
		}
	}
	if len(delta.Mutations) == 0 && !delta.Flush {
		// A bare "delta flush" is the drain verb: it materializes whatever
		// is buffered (including a buffer wedged at the admission cap).
		return delta, fmt.Errorf("delta needs at least one mutation (or flush)")
	}
	return delta, nil
}

// renderJobTrace prints a human-readable wait → admit → round-by-round →
// terminal timeline for one job.
func renderJobTrace(w io.Writer, tr api.JobTrace) {
	fmt.Fprintf(w, "job %s (%s) %s\n", tr.ID, tr.Algo, tr.State)
	fmt.Fprintf(w, "  submitted  %s\n", tr.Submitted.Format(time.RFC3339Nano))
	if tr.Started != nil {
		fmt.Fprintf(w, "  admitted   %s  (queue wait %.3f ms)\n",
			tr.Started.Format(time.RFC3339Nano), tr.QueueWaitMS)
	}
	if tr.Finished != nil {
		fmt.Fprintf(w, "  finished   %s  (exec %.3f ms)\n",
			tr.Finished.Format(time.RFC3339Nano), tr.ExecMS)
	} else if tr.Started != nil {
		fmt.Fprintf(w, "  running    (exec %.3f ms so far)\n", tr.ExecMS)
	}
	if tr.Error != nil {
		fmt.Fprintf(w, "  error      %s: %s\n", tr.Error.Code, tr.Error.Message)
	}
	if tr.Released {
		fmt.Fprintf(w, "  released   (results compacted; trace from the terminal ring)\n")
	}
	if len(tr.Rounds) == 0 {
		fmt.Fprintf(w, "  no round records (tracing disabled or no rounds yet)\n")
		return
	}
	if tr.DroppedRounds > 0 {
		fmt.Fprintf(w, "  %d older round(s) dropped off the bounded timeline\n", tr.DroppedRounds)
	}
	fmt.Fprintf(w, "  %8s %12s %6s %7s %12s %12s %14s\n",
		"round", "wall_us", "parts", "pushes", "access_us", "compute_us", "virtual_us")
	for _, r := range tr.Rounds {
		fmt.Fprintf(w, "  %8d %12.1f %6d %7d %12.1f %12.1f %14.1f\n",
			r.Round, r.WallUS, r.Parts, r.Pushes, r.AccessUS, r.ComputeUS, r.VirtualTimeUS)
	}
}

// renderJobSpans prints one job's span tree followed by its resource
// attribution block.
func renderJobSpans(w io.Writer, js api.JobSpans) {
	fmt.Fprintf(w, "job %s  trace %s  (%d spans)\n", js.ID, js.TraceID, len(js.Spans))
	renderSpanTree(w, js.Spans)
	a := js.Attribution
	if a == nil {
		return
	}
	fmt.Fprintf(w, "attribution:\n")
	fmt.Fprintf(w, "  queue wait       %10.3f ms\n", a.QueueWaitMS)
	fmt.Fprintf(w, "  exec             %10.3f ms\n", a.ExecMS)
	fmt.Fprintf(w, "  rounds           %10d\n", a.Rounds)
	fmt.Fprintf(w, "  tasks            %10d  (%d stolen)\n", a.Tasks, a.TasksStolen)
	fmt.Fprintf(w, "  skipped parts    %10d\n", a.SkippedPartitions)
	fmt.Fprintf(w, "  simulated        %10.1f us access, %.1f us compute\n", a.AccessUS, a.ComputeUS)
	fmt.Fprintf(w, "  makespan share   %10.3f\n", a.MakespanShare)
}

// renderSpanTree prints spans as an indented tree: children under their
// parents, roots (and spans whose parents were evicted) at the left edge,
// each line carrying the span's name, duration, and attributes.
func renderSpanTree(w io.Writer, spans []api.Span) {
	byID := make(map[string]api.Span, len(spans))
	children := make(map[string][]api.Span)
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	var roots []api.Span
	for _, s := range spans {
		if s.Parent != "" {
			if _, ok := byID[s.Parent]; ok {
				children[s.Parent] = append(children[s.Parent], s)
				continue
			}
		}
		roots = append(roots, s)
	}
	var render func(s api.Span, depth int)
	render = func(s api.Span, depth int) {
		attrs := ""
		for _, a := range s.Attrs {
			attrs += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		fmt.Fprintf(w, "%s%-18s %10.3f ms%s\n", strings.Repeat("  ", depth+1), s.Name, s.DurationMS, attrs)
		for _, c := range children[s.SpanID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
}

// dump pretty-prints one wire value.
func dump(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(b))
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgraph-serve:", err)
	os.Exit(1)
}
