// Command cgraph-serve runs a resident CGraph job service: one shared
// (optionally evolving) graph held in memory, an HTTP/JSON control plane
// accepting concurrent iterative jobs, and the engine's round loop sharing
// every partition load across whatever jobs are in flight.
//
// Usage:
//
//	cgraph-serve -graph edges.tsv [-addr :8040] [-workers 8] [-max-inflight 16]
//	cgraph-serve -dataset ukunion-sim [-scale 0.1] [-scheduler two-level]
//
// Control plane:
//
//	curl -X POST localhost:8040/jobs -d '{"algo":"pagerank"}'
//	curl -X POST localhost:8040/jobs -d '{"algo":"sssp","source":3,"timeout_ms":5000}'
//	curl localhost:8040/jobs                 # all jobs
//	curl localhost:8040/jobs/job-0           # one job's lifecycle state
//	curl -X DELETE localhost:8040/jobs/job-0 # cancel
//	curl 'localhost:8040/results/job-1?top=5'
//	curl -X POST localhost:8040/snapshots -d '{"timestamp":20,"edges":[[0,1,1],...]}'
//	curl localhost:8040/sched                # last round's groups and load order
//	curl localhost:8040/metrics
//
// The graph is partitioned without the core-subgraph split by default so
// that snapshot ingestion works (slot-stable partitions); pass
// -core-subgraph to enable it for static graphs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cgraph"
	"cgraph/internal/gen"
	"cgraph/server"
)

func main() {
	addr := flag.String("addr", ":8040", "listen address")
	graphFile := flag.String("graph", "", "edge-list file (src dst [weight] per line)")
	dataset := flag.String("dataset", "", "named stand-in dataset (see cgraph-gen -list)")
	scale := flag.Float64("scale", 1.0, "stand-in scale factor")
	workers := flag.Int("workers", 0, "worker count (default GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently running jobs, 0 = unlimited")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-job timeout applied when a submission has none, 0 = none")
	coreSubgraph := flag.Bool("core-subgraph", false, "enable §3.3 core-subgraph partitioning (disables snapshot ingestion)")
	scheduler := flag.String("scheduler", "two-level", "partition-load policy: static, priority (one-level Eq. 1), or two-level (correlation groups + Eq. 1)")
	flag.Parse()

	policy, err := cgraph.ParseScheduler(*scheduler)
	if err != nil {
		fatal(err)
	}
	sys := cgraph.NewSystem(
		cgraph.WithWorkers(*workers),
		cgraph.WithCoreSubgraph(*coreSubgraph),
		cgraph.WithScheduler(policy),
	)
	switch {
	case *graphFile != "":
		if err := sys.LoadEdgeFile(*graphFile); err != nil {
			fatal(err)
		}
	case *dataset != "":
		d, err := gen.StandIn(*dataset, *scale)
		if err != nil {
			fatal(err)
		}
		if err := sys.LoadEdges(d.NumVertices, d.Generate()); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -graph or -dataset is required"))
	}

	svc := server.New(sys, server.Config{
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *defaultTimeout,
	})
	if err := svc.Start(); err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler(nil)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("cgraph-serve listening on %s", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
	case err := <-errc:
		log.Printf("http server: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := svc.Stop(ctx); err != nil {
		log.Printf("service stop: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgraph-serve:", err)
	os.Exit(1)
}
