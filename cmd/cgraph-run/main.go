// Command cgraph-run executes a set of concurrent iterative graph jobs over
// one graph with the CGraph engine and prints per-job results summaries.
//
// Usage:
//
//	cgraph-run -graph edges.tsv [-workers 8] [-balance 4] [-top 10] job[,job...]
//	cgraph-run -dataset ukunion-sim [-scale 1.0] job[,job...]
//
// Jobs: pagerank, ppr:<src>, sssp:<src>, bfs:<src>, wcc, scc, kcore:<k>,
// sswp:<src>, degree. Example:
//
//	cgraph-run -dataset twitter-sim pagerank,sssp:0,scc,bfs:0
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"cgraph"
	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/model"
)

func main() {
	graphFile := flag.String("graph", "", "edge-list file (src dst [weight] per line)")
	dataset := flag.String("dataset", "", "named stand-in dataset (see cgraph-gen -list)")
	scale := flag.Float64("scale", 1.0, "stand-in scale factor")
	workers := flag.Int("workers", 0, "worker count of the work-stealing execution pool (default GOMAXPROCS)")
	balance := flag.Float64("balance", 0, "task-granularity balance factor: ~workers*balance tasks per partition sweep (default 4)")
	top := flag.Int("top", 5, "print the top-k vertices per job")
	execMode := flag.String("exec-mode", "", "execution mode for every job: bsp, async, or delayed (default bsp)")
	staleness := flag.Int("staleness", 0, "staleness bound for delayed mode: iterations between forced merge barriers (default 3)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cgraph-run [-graph file | -dataset name] job[,job...]")
		os.Exit(2)
	}

	sys := cgraph.NewSystem(cgraph.WithWorkers(*workers), cgraph.WithBalance(*balance))
	switch {
	case *graphFile != "":
		if err := sys.LoadEdgeFile(*graphFile); err != nil {
			fatal(err)
		}
	case *dataset != "":
		d, err := gen.StandIn(*dataset, *scale)
		if err != nil {
			fatal(err)
		}
		if err := sys.LoadEdges(d.NumVertices, d.Generate()); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -graph or -dataset is required"))
	}

	mode, err := cgraph.ParseExecMode(*execMode)
	if err != nil {
		fatal(err)
	}
	var jobOpts []cgraph.JobOption
	if *execMode != "" {
		jobOpts = append(jobOpts, cgraph.WithExecMode(mode))
	}
	if *staleness > 0 {
		jobOpts = append(jobOpts, cgraph.WithStaleness(*staleness))
	} else if *staleness < 0 {
		fatal(fmt.Errorf("negative -staleness %d", *staleness))
	}

	var jobs []*cgraph.Job
	for _, spec := range strings.Split(flag.Arg(0), ",") {
		prog, err := parseJob(spec)
		if err != nil {
			fatal(err)
		}
		j, err := sys.Submit(prog, jobOpts...)
		if err != nil {
			fatal(err)
		}
		jobs = append(jobs, j)
	}

	rep, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ran %d jobs on %d workers in %v (simulated %.0f µs)\n\n",
		len(rep.Jobs), rep.Workers, rep.WallClock, rep.SimulatedMakespanUS)
	for i, jr := range rep.Jobs {
		fmt.Printf("%-10s %3d iterations, %d edges processed", jr.Name, jr.Iterations, jr.EdgesProcessed)
		if jr.ExecMode != "" && jr.ExecMode != cgraph.ExecBSP {
			fmt.Printf(" [%s: %d fresh folds, %d/%d barriers skipped/forced]",
				jr.ExecMode, jr.FreshFolds, jr.BarriersSkipped, jr.BarriersForced)
		}
		fmt.Println()
		_ = i
	}
	fmt.Println()
	for _, j := range jobs {
		res, err := j.Results()
		if err != nil {
			fatal(err)
		}
		printTop(j.Name(), res, *top)
	}
}

func parseJob(spec string) (model.Program, error) {
	name, arg, _ := strings.Cut(spec, ":")
	atoi := func() (uint64, error) { return strconv.ParseUint(arg, 10, 32) }
	switch strings.ToLower(name) {
	case "pagerank", "pr":
		return algo.NewPageRank(), nil
	case "ppr":
		v, err := atoi()
		if err != nil {
			return nil, fmt.Errorf("ppr needs a source: ppr:<src>")
		}
		return algo.NewPPR(model.VertexID(v)), nil
	case "sssp":
		v, err := atoi()
		if err != nil {
			return nil, fmt.Errorf("sssp needs a source: sssp:<src>")
		}
		return algo.NewSSSP(model.VertexID(v)), nil
	case "bfs":
		v, err := atoi()
		if err != nil {
			return nil, fmt.Errorf("bfs needs a source: bfs:<src>")
		}
		return algo.NewBFS(model.VertexID(v)), nil
	case "sswp":
		v, err := atoi()
		if err != nil {
			return nil, fmt.Errorf("sswp needs a source: sswp:<src>")
		}
		return algo.NewSSWP(model.VertexID(v)), nil
	case "wcc":
		return algo.NewWCC(), nil
	case "scc":
		return algo.NewSCC(), nil
	case "kcore":
		k, err := atoi()
		if err != nil {
			return nil, fmt.Errorf("kcore needs k: kcore:<k>")
		}
		return algo.NewKCore(int(k)), nil
	case "degree":
		return algo.NewDegree(), nil
	}
	return nil, fmt.Errorf("unknown job %q", spec)
}

func printTop(name string, res []float64, k int) {
	type vv struct {
		v model.VertexID
		x float64
	}
	all := make([]vv, 0, len(res))
	for v, x := range res {
		all = append(all, vv{model.VertexID(v), x})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].x > all[j].x })
	if k > len(all) {
		k = len(all)
	}
	fmt.Printf("%s top %d:\n", name, k)
	for _, e := range all[:k] {
		fmt.Printf("  v%-8d %g\n", e.v, e.x)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgraph-run:", err)
	os.Exit(1)
}
