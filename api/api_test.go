package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"testing"
)

func TestFloatRoundTrip(t *testing.T) {
	in := []Float{1.5, 0, Float(math.Inf(1)), Float(math.Inf(-1)), Float(math.NaN()), -2.25}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `[1.5,0,"+Inf","-Inf","NaN",-2.25]`
	if string(b) != want {
		t.Fatalf("marshal = %s, want %s", b, want)
	}
	var out []Float
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		a, o := float64(in[i]), float64(out[i])
		if a != o && !(math.IsNaN(a) && math.IsNaN(o)) {
			t.Fatalf("slot %d: %v != %v", i, a, o)
		}
	}
	var bad Float
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err == nil {
		t.Fatal("bad float string must be rejected")
	}
}

func TestErrorContract(t *testing.T) {
	e := Errorf(CodeNotFound, "unknown job %q", "job-7")
	if e.Error() != `not_found: unknown job "job-7"` {
		t.Fatalf("Error() = %q", e.Error())
	}
	wrapped := fmt.Errorf("request failed: %w", e)
	if !IsCode(wrapped, CodeNotFound) || IsCode(wrapped, CodeConflict) {
		t.Fatal("IsCode must match through wrapping, by code")
	}
	var ae *Error
	if !errors.As(wrapped, &ae) || ae.Code != CodeNotFound {
		t.Fatal("errors.As must recover the *Error")
	}
	if IsCode(errors.New("plain"), CodeNotFound) {
		t.Fatal("plain errors carry no code")
	}

	// The envelope round-trips.
	b, _ := json.Marshal(ErrorBody{Error: e})
	var eb ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Code != CodeNotFound {
		t.Fatalf("envelope round-trip: %v %+v", err, eb)
	}

	// Every code maps to a non-2xx status, so errors never hide inside
	// successful responses.
	for _, code := range []ErrorCode{
		CodeBadRequest, CodeUnknownAlgorithm, CodeNotFound, CodeMethodNotAllowed,
		CodeConflict, CodeNotReady, CodeReleased, CodeCancelled,
		CodeDeadlineExceeded, CodeUnavailable, CodeInternal,
	} {
		if st := (&Error{Code: code}).HTTPStatus(); st < 400 {
			t.Fatalf("code %s maps to %d, every error must be non-2xx", code, st)
		}
	}
	if CodeForHTTPStatus(http.StatusBadGateway) != CodeInternal {
		t.Fatal("unmapped statuses fall back to internal")
	}
}

func TestJobStateTerminal(t *testing.T) {
	for st, want := range map[JobState]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobCancelled: true, JobFailed: true,
	} {
		if st.Terminal() != want {
			t.Fatalf("%s.Terminal() = %v", st, !want)
		}
	}
}

func TestEventTerminal(t *testing.T) {
	if (Event{Type: EventProgress, State: JobDone}).Terminal() {
		t.Fatal("progress events never end the stream")
	}
	if (Event{Type: EventState, State: JobRunning}).Terminal() {
		t.Fatal("running is not terminal")
	}
	if !(Event{Type: EventState, State: JobCancelled}).Terminal() {
		t.Fatal("cancelled state event ends the stream")
	}
}

// TestJobSpecWireCompat pins the v1 request shape: the flat fields the
// pre-versioning control plane accepted decode unchanged, so legacy
// bodies replayed through the 308 redirect keep working.
func TestJobSpecWireCompat(t *testing.T) {
	var spec JobSpec
	legacy := `{"algo":"sssp","source":3,"timeout_ms":5000,"at_timestamp":20}`
	if err := json.Unmarshal([]byte(legacy), &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Algo != "sssp" || spec.Source != 3 || spec.TimeoutMS != 5000 || *spec.AtTimestamp != 20 {
		t.Fatalf("legacy decode = %+v", spec)
	}
}

// TestDeltaWireShape pins the v1 delta contract: ops default to rewrite on
// the wire, and the round trip preserves every field.
func TestDeltaWireShape(t *testing.T) {
	var d Delta
	body := `{"mutations":[{"slot":17,"edge":[3,9,1.5]},{"op":"rewrite","slot":2,"edge":[0,1,2]}],"timestamp":42,"flush":true}`
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Mutations) != 2 || d.Timestamp != 42 || !d.Flush {
		t.Fatalf("decode = %+v", d)
	}
	if d.Mutations[0].Op != "" || d.Mutations[1].Op != MutationRewrite {
		t.Fatalf("ops = %q, %q", d.Mutations[0].Op, d.Mutations[1].Op)
	}
	if d.Mutations[0].Slot != 17 || d.Mutations[0].Edge != [3]float64{3, 9, 1.5} {
		t.Fatalf("mutation 0 = %+v", d.Mutations[0])
	}
	out, err := json.Marshal(DeltaAck{Accepted: 2, Pending: 0, Flushed: true, Timestamp: 43})
	if err != nil {
		t.Fatal(err)
	}
	var ack DeltaAck
	if err := json.Unmarshal(out, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 2 || !ack.Flushed || ack.Timestamp != 43 {
		t.Fatalf("ack round trip = %+v", ack)
	}
}

// TestIngestStatsRoundTrip keeps the metrics payload symmetric.
func TestIngestStatsRoundTrip(t *testing.T) {
	in := IngestStats{
		Batches: 5, Mutations: 40, Coalesced: 3,
		Flushes: 4, CountFlushes: 2, AgeFlushes: 1, ManualFlushes: 1,
		SnapshotsBuilt: 4, SlotsApplied: 37,
		PartsRebuilt: 6, PartsShared: 26, SharedRatio: 26.0 / 32.0,
		Pending: 2, LastTimestamp: 9,
		SnapshotsLive: 3, SnapshotsEvicted: 2, RetainSnapshots: 3,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out IngestStats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

// TestStructuralMutationWireShape pins the structural ops' wire spelling.
func TestStructuralMutationWireShape(t *testing.T) {
	var d Delta
	body := `{"mutations":[
		{"op":"add_vertex","vertex":900},
		{"op":"add_edge","edge":[900,3,1]},
		{"op":"remove_edge","edge":[5,7,0]},
		{"op":"rewrite","slot":2,"edge":[0,1,2]}
	],"flush":true}`
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Mutations[0].Op != MutationAddVertex || d.Mutations[0].Vertex != 900 {
		t.Fatalf("add_vertex = %+v", d.Mutations[0])
	}
	if d.Mutations[1].Op != MutationAdd || d.Mutations[1].Edge != [3]float64{900, 3, 1} {
		t.Fatalf("add_edge = %+v", d.Mutations[1])
	}
	if d.Mutations[2].Op != MutationRemove {
		t.Fatalf("remove_edge = %+v", d.Mutations[2])
	}
	// Round trip.
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Delta
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	for i := range d.Mutations {
		if back.Mutations[i] != d.Mutations[i] {
			t.Fatalf("round trip mutation %d = %+v, want %+v", i, back.Mutations[i], d.Mutations[i])
		}
	}
	// The saturation code maps to 429 in both directions.
	if (&Error{Code: CodeIngestSaturated}).HTTPStatus() != 429 {
		t.Fatal("ingest_saturated must map to 429")
	}
	if CodeForHTTPStatus(429) != CodeIngestSaturated {
		t.Fatal("429 must map back to ingest_saturated")
	}
}

// TestIngestStatsStructuralRoundTrip keeps the extended metrics payload
// symmetric, window bounds included.
func TestIngestStatsStructuralRoundTrip(t *testing.T) {
	in := IngestStats{
		Batches: 5, Mutations: 40,
		Rewrites: 20, EdgeAdds: 12, EdgeRemoves: 6, VertexAdds: 2,
		Cancelled: 1, RemoveMisses: 2, Shed: 3,
		SnapshotsBuilt: 4, SnapshotsLive: 3,
		OldestSeq: 1, OldestTimestamp: 10, NewestSeq: 3, NewestTimestamp: 30,
		NumVertices: 902,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out IngestStats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}
