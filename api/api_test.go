package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"testing"
)

func TestFloatRoundTrip(t *testing.T) {
	in := []Float{1.5, 0, Float(math.Inf(1)), Float(math.Inf(-1)), Float(math.NaN()), -2.25}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `[1.5,0,"+Inf","-Inf","NaN",-2.25]`
	if string(b) != want {
		t.Fatalf("marshal = %s, want %s", b, want)
	}
	var out []Float
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		a, o := float64(in[i]), float64(out[i])
		if a != o && !(math.IsNaN(a) && math.IsNaN(o)) {
			t.Fatalf("slot %d: %v != %v", i, a, o)
		}
	}
	var bad Float
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err == nil {
		t.Fatal("bad float string must be rejected")
	}
}

func TestErrorContract(t *testing.T) {
	e := Errorf(CodeNotFound, "unknown job %q", "job-7")
	if e.Error() != `not_found: unknown job "job-7"` {
		t.Fatalf("Error() = %q", e.Error())
	}
	wrapped := fmt.Errorf("request failed: %w", e)
	if !IsCode(wrapped, CodeNotFound) || IsCode(wrapped, CodeConflict) {
		t.Fatal("IsCode must match through wrapping, by code")
	}
	var ae *Error
	if !errors.As(wrapped, &ae) || ae.Code != CodeNotFound {
		t.Fatal("errors.As must recover the *Error")
	}
	if IsCode(errors.New("plain"), CodeNotFound) {
		t.Fatal("plain errors carry no code")
	}

	// The envelope round-trips.
	b, _ := json.Marshal(ErrorBody{Error: e})
	var eb ErrorBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error.Code != CodeNotFound {
		t.Fatalf("envelope round-trip: %v %+v", err, eb)
	}

	// Every code maps to a non-2xx status, so errors never hide inside
	// successful responses.
	for _, code := range []ErrorCode{
		CodeBadRequest, CodeUnknownAlgorithm, CodeNotFound, CodeMethodNotAllowed,
		CodeConflict, CodeNotReady, CodeReleased, CodeCancelled,
		CodeDeadlineExceeded, CodeUnavailable, CodeInternal,
	} {
		if st := (&Error{Code: code}).HTTPStatus(); st < 400 {
			t.Fatalf("code %s maps to %d, every error must be non-2xx", code, st)
		}
	}
	if CodeForHTTPStatus(http.StatusBadGateway) != CodeInternal {
		t.Fatal("unmapped statuses fall back to internal")
	}
}

func TestJobStateTerminal(t *testing.T) {
	for st, want := range map[JobState]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobCancelled: true, JobFailed: true,
	} {
		if st.Terminal() != want {
			t.Fatalf("%s.Terminal() = %v", st, !want)
		}
	}
}

func TestEventTerminal(t *testing.T) {
	if (Event{Type: EventProgress, State: JobDone}).Terminal() {
		t.Fatal("progress events never end the stream")
	}
	if (Event{Type: EventState, State: JobRunning}).Terminal() {
		t.Fatal("running is not terminal")
	}
	if !(Event{Type: EventState, State: JobCancelled}).Terminal() {
		t.Fatal("cancelled state event ends the stream")
	}
}

// TestJobSpecWireCompat pins the v1 request shape: the flat fields the
// pre-versioning control plane accepted decode unchanged, so legacy
// bodies replayed through the 308 redirect keep working.
func TestJobSpecWireCompat(t *testing.T) {
	var spec JobSpec
	legacy := `{"algo":"sssp","source":3,"timeout_ms":5000,"at_timestamp":20}`
	if err := json.Unmarshal([]byte(legacy), &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Algo != "sssp" || spec.Source != 3 || spec.TimeoutMS != 5000 || *spec.AtTimestamp != 20 {
		t.Fatalf("legacy decode = %+v", spec)
	}
}
