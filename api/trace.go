package api

import "time"

// TraceOptions tunes GET /v1/trace/rounds.
//
//cgraph:nowire query-parameter options, never JSON-encoded
type TraceOptions struct {
	// Limit caps the number of round records returned, newest retained
	// first dropped (0 = everything in the ring).
	Limit int
}

// RoundTraceGroup is one correlation group of a traced round's schedule.
type RoundTraceGroup struct {
	// Jobs are the service job IDs scheduled in the group.
	Jobs []string `json:"jobs"`
	// Priority is the aggregate job priority that ordered the group.
	Priority int `json:"priority,omitempty"`
	// Units is the number of (snapshot, partition) units the group loaded.
	Units int `json:"units"`
	// MakespanUS is the group's simulated span within the round.
	MakespanUS float64 `json:"makespan_us,omitempty"`
}

// JobRoundTrace is one job's share of one traced round.
type JobRoundTrace struct {
	// Job is the service job ID (set in RoundTrace records; omitted inside
	// a JobTrace, where the whole timeline belongs to one job).
	Job string `json:"job,omitempty"`
	// Round is the 1-based engine round index.
	Round int64 `json:"round"`
	// WallUS is the measured wall-clock duration of the whole round, in
	// microseconds.
	WallUS float64 `json:"wall_us"`
	// Parts is the number of active partitions the job had scheduled.
	Parts int `json:"parts"`
	// Pushes is the number of iterations the job closed this round.
	Pushes int `json:"pushes"`
	// AccessUS / ComputeUS split the job's simulated time charged this
	// round.
	AccessUS  float64 `json:"access_us"`
	ComputeUS float64 `json:"compute_us"`
	// VirtualTimeUS is the engine's simulated clock at round end.
	VirtualTimeUS float64 `json:"virtual_time_us"`
}

// RoundTrace is one engine round's trace record.
type RoundTrace struct {
	// Round is the 1-based engine round index.
	Round int64 `json:"round"`
	// Start is the wall-clock time the round began.
	Start time.Time `json:"start"`
	// WallUS is the measured wall-clock round duration in microseconds.
	WallUS float64 `json:"wall_us"`
	// VirtualTimeUS is the engine's simulated clock at round end.
	VirtualTimeUS float64 `json:"virtual_time_us"`
	// Policy and Theta describe the scheduler that produced the plan.
	Policy string  `json:"policy,omitempty"`
	Theta  float64 `json:"theta,omitempty"`
	// Groups is the correlation-group composition of the round.
	Groups []RoundTraceGroup `json:"groups,omitempty"`
	// Jobs is the per-job work split for the round.
	Jobs []JobRoundTrace `json:"jobs,omitempty"`
	// Tasks / Steals are the work-stealing executor's counts for the
	// round; SkippedPartitions is the number of (job, partition) pairs
	// whose frontier was empty at round start (converged regions skipped
	// before scheduling).
	Tasks             int64 `json:"tasks,omitempty"`
	Steals            int64 `json:"steals,omitempty"`
	SkippedPartitions int64 `json:"skipped_partitions,omitempty"`
}

// RoundTraces is the GET /v1/trace/rounds payload.
type RoundTraces struct {
	// TraceDepth is the configured ring depth (0 = tracing disabled).
	TraceDepth int `json:"trace_depth"`
	// Rounds are the retained round records, oldest first.
	Rounds []RoundTrace `json:"rounds"`
}

// JobTrace is the GET /v1/jobs/{id}/trace payload: the job's lifecycle
// timestamps plus its retained round-by-round timeline.
type JobTrace struct {
	ID    string   `json:"id"`
	Algo  string   `json:"algo"`
	State JobState `json:"state"`
	// Submitted/Started/Finished are the service-side lifecycle times;
	// QueueWaitMS and ExecMS are derived from them (wait → admit → exec).
	Submitted   time.Time  `json:"submitted_at"`
	Started     *time.Time `json:"started_at,omitempty"`
	Finished    *time.Time `json:"finished_at,omitempty"`
	QueueWaitMS float64    `json:"queue_wait_ms,omitempty"`
	ExecMS      float64    `json:"exec_ms,omitempty"`
	// Released reports the job's results were compacted; the trace is
	// served from the retained terminal ring.
	Released bool `json:"released,omitempty"`
	// DroppedRounds counts rounds truncated off the front of the bounded
	// timeline.
	DroppedRounds int `json:"dropped_rounds,omitempty"`
	// Rounds is the retained timeline, oldest first. Empty when tracing is
	// disabled (TraceDepth 0) or the job never entered a round.
	Rounds []JobRoundTrace `json:"rounds"`
	// Error carries the terminal error of failed/cancelled jobs.
	Error *Error `json:"error,omitempty"`
}
