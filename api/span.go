package api

import "time"

// VersionHeader is the HTTP header naming the wire-contract version: the
// client sends it with every request, the server echoes it on every
// response, so version skew is visible on both sides of the wire.
const VersionHeader = "X-CGraph-API-Version"

// TraceIDHeader is the HTTP response header echoing the request's resolved
// trace ID — the caller's own (when a traceparent header arrived) or the
// fresh one the service minted.
const TraceIDHeader = "X-Trace-ID"

// Span is one recorded distributed span on the wire: a named interval of a
// trace, wall-stamped at the edges and carrying the engine's virtual clock
// alongside, with typed attributes flattened to strings.
type Span struct {
	// TraceID / SpanID / Parent are lowercase-hex W3C trace-context IDs
	// (32, 16, and 16 digits); Parent is empty for root spans.
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent,omitempty"`
	// Name is the span's operation ("http.request", "job.submit",
	// "job.queue_wait", "job.round", "job.retire", "pool.task",
	// "ingest.accept", "ingest.flush", "ingest.materialize").
	Name string `json:"name"`
	// Job is the service job ID the span is attributed to, when any.
	Job string `json:"job,omitempty"`
	// Start / End are the wall-clock edges; DurationMS their difference.
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
	DurationMS float64   `json:"duration_ms"`
	// StartVirtualUS / EndVirtualUS are the engine's virtual clock at the
	// edges (zero when the system has no engine yet).
	StartVirtualUS float64 `json:"start_virtual_us,omitempty"`
	EndVirtualUS   float64 `json:"end_virtual_us,omitempty"`
	// Attrs are the span's attributes, values rendered to strings.
	Attrs []SpanAttr `json:"attrs,omitempty"`
}

// SpanAttr is one span attribute with its value rendered to a string.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// JobAttribution is one job's resource account, computed from its retained
// spans: where the job's wall and virtual time went, and how the executor
// moved its work.
type JobAttribution struct {
	ID      string `json:"id"`
	TraceID string `json:"trace_id,omitempty"`
	// QueueWaitMS is the wall time between admission to the service queue
	// and launch into the engine.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// ExecMS is the wall time between launch and the terminal state.
	ExecMS float64 `json:"exec_ms"`
	// Rounds counts the engine rounds the job participated in (as retained
	// by the span store).
	Rounds int `json:"rounds"`
	// Tasks / TasksStolen count the job's executor tasks and how many of
	// them ran on a worker other than the one they were seeded on.
	Tasks       int64 `json:"tasks"`
	TasksStolen int64 `json:"tasks_stolen"`
	// SkippedPartitions counts the job's converged (frontier-empty)
	// partitions excluded before scheduling, summed over rounds.
	SkippedPartitions int64 `json:"skipped_partitions"`
	// AccessUS / ComputeUS split the job's simulated time over its rounds.
	AccessUS  float64 `json:"access_us"`
	ComputeUS float64 `json:"compute_us"`
	// MakespanShare is the job's simulated time as a fraction of its
	// correlation groups' makespan, summed per round and clamped to [0, 1]:
	// roughly how much of the shared rounds' span this job accounts for.
	MakespanShare float64 `json:"makespan_share"`
}

// JobSpans is one job's retained span tree plus its resource attribution.
// Only job-attributed spans appear here — the tree is identical through the
// in-process and HTTP clients; transport spans of the same trace are served
// by the trace endpoint.
type JobSpans struct {
	ID          string          `json:"id"`
	TraceID     string          `json:"trace_id,omitempty"`
	Spans       []Span          `json:"spans"`
	Attribution *JobAttribution `json:"attribution,omitempty"`
}

// SpanList is every retained span of one trace, oldest first.
type SpanList struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// Health is the body of the liveness and readiness probes.
type Health struct {
	// Status is "ok" when every check passed, "unavailable" otherwise.
	Status string `json:"status"`
	// Checks itemizes the readiness checks (empty for liveness).
	Checks []HealthCheck `json:"checks,omitempty"`
}

// HealthCheck is one readiness check's outcome.
type HealthCheck struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	// Detail explains the check's state (populated for failures, and for
	// passing checks with something quantitative to report).
	Detail string `json:"detail,omitempty"`
}

// VersionInfo identifies the service build and its wire contract.
type VersionInfo struct {
	// API is the wire-contract version (the Version constant).
	API string `json:"api"`
	// Version is the service's build version (module version or VCS
	// revision when built with module/VCS info, else "devel").
	Version string `json:"version"`
	// GoVersion is the toolchain that built the serving binary.
	GoVersion string `json:"go_version"`
}
