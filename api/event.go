package api

// EventType classifies a job event.
type EventType string

const (
	// EventState: the job changed lifecycle state (queued, running, or a
	// terminal state). Terminal state events end the stream.
	EventState EventType = "state"
	// EventProgress: the job completed one iteration; Iteration,
	// EdgesProcessed, and VirtualTimeUS carry the running totals.
	EventProgress EventType = "progress"
)

// Event is one entry of a job's event stream, delivered over
// GET /v1/jobs/{id}/events as server-sent events (the SSE "event" field is
// the Type, the "data" field this JSON document, the "id" field Seq) and
// over Client.Watch as a channel. A watcher attached late first receives a
// replay of the job's state transitions (and latest progress), then live
// events; the stream ends after a terminal state event.
type Event struct {
	Type EventType `json:"type"`
	// JobID names the job the event belongs to.
	JobID string `json:"job_id"`
	// Seq orders events within one job's stream, starting at 1. Progress
	// events are coalesced under backpressure, so consumers may observe
	// gaps — but never reordering.
	Seq int64 `json:"seq"`
	// State is set on state events.
	State JobState `json:"state,omitempty"`
	// Error explains terminal cancelled/failed state events.
	Error *Error `json:"error,omitempty"`
	// Iteration counts completed iterations (progress events, and final
	// on the terminal state event).
	Iteration int `json:"iteration,omitempty"`
	// EdgesProcessed is the job's running edge total (progress events).
	EdgesProcessed int64 `json:"edges_processed,omitempty"`
	// VirtualTimeUS is the engine's virtual clock when the event fired
	// (progress events).
	VirtualTimeUS float64 `json:"virtual_time_us,omitempty"`
}

// Terminal reports whether the event ends its job's stream.
func (e Event) Terminal() bool { return e.Type == EventState && e.State.Terminal() }
