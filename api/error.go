package api

import (
	"errors"
	"fmt"
	"net/http"
)

// ErrorCode is a machine-readable error category, stable within a wire
// version. Clients should branch on codes, not message text.
type ErrorCode string

const (
	// CodeBadRequest: the request body or parameters were malformed
	// (bad JSON, unknown fields, invalid values).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeUnknownAlgorithm: the submission named an algorithm absent from
	// the service's registry.
	CodeUnknownAlgorithm ErrorCode = "unknown_algorithm"
	// CodeNotFound: no job (or route) with that identity exists.
	CodeNotFound ErrorCode = "not_found"
	// CodeMethodNotAllowed: the route exists but not for that HTTP method.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeConflict: the operation is invalid in the job's current state
	// (e.g. cancelling an already-terminal job).
	CodeConflict ErrorCode = "conflict"
	// CodeNotReady: the job exists but has not converged yet, so results
	// are not available. Retry after the job reaches "done".
	CodeNotReady ErrorCode = "not_ready"
	// CodeReleased: the job was compacted into the history ring; its
	// status remains listable but its results were dropped.
	CodeReleased ErrorCode = "released"
	// CodeCancelled: the job was retired by an explicit cancel.
	CodeCancelled ErrorCode = "cancelled"
	// CodeDeadlineExceeded: the job's deadline expired before convergence.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeIngestSaturated: the delta-ingestion buffer is at its admission
	// cap; the batch was shed. Retry after a flush drains the buffer.
	CodeIngestSaturated ErrorCode = "ingest_saturated"
	// CodeUnavailable: the service is stopped or cannot accept work.
	CodeUnavailable ErrorCode = "unavailable"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// Error is the wire error: a stable machine-readable code plus a
// human-readable message. It implements the error interface, and both
// Client implementations return *Error for every service-side failure, so
// callers can branch with errors.As / IsCode identically over HTTP and
// in-process transports.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error renders "code: message".
func (e *Error) Error() string { return string(e.Code) + ": " + e.Message }

// Errorf builds an *Error with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// IsCode reports whether err is (or wraps) an *Error with the given code.
func IsCode(err error, code ErrorCode) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Code == code
}

// ErrorBody is the JSON envelope of every non-2xx HTTP response.
type ErrorBody struct {
	Error *Error `json:"error"`
}

// HTTPStatus maps the code to its canonical HTTP status.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeUnknownAlgorithm:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeConflict, CodeCancelled, CodeDeadlineExceeded, CodeNotReady:
		return http.StatusConflict
	case CodeReleased:
		return http.StatusGone
	case CodeIngestSaturated:
		return http.StatusTooManyRequests
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// CodeForHTTPStatus picks a fallback code for a response whose body did
// not carry a structured error (e.g. a proxy-generated 502).
func CodeForHTTPStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusConflict:
		return CodeConflict
	case http.StatusGone:
		return CodeReleased
	case http.StatusTooManyRequests:
		return CodeIngestSaturated
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}
