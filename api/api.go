// Package api is the versioned wire contract of the CGraph job service.
// Every request and response body exchanged over the HTTP control plane —
// and every value passed through a cgraph.Client, in-process or remote —
// is one of these types, so the two transports cannot drift apart.
//
// Versioning policy: the HTTP control plane mounts these shapes under the
// /v1 route prefix. Within v1, changes are strictly additive (new optional
// fields, new error codes); renames or semantic changes require a new
// prefix and a new package revision. Unknown fields in requests are
// rejected, so clients discover their own drift early instead of being
// silently misread.
package api

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// Version is the wire-contract version implemented by this package.
const Version = "v1"

// PathPrefix is the HTTP route prefix all v1 endpoints are mounted under.
const PathPrefix = "/" + Version

// JobState is a job's lifecycle state on the wire.
type JobState string

const (
	// JobQueued: accepted, waiting for an in-flight slot.
	JobQueued JobState = "queued"
	// JobRunning: submitted to the engine and being iterated.
	JobRunning JobState = "running"
	// JobDone: converged; results are available.
	JobDone JobState = "done"
	// JobCancelled: retired by an explicit cancel before convergence.
	JobCancelled JobState = "cancelled"
	// JobFailed: retired without converging (deadline expiry, engine
	// failure, or service shutdown).
	JobFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobCancelled || s == JobFailed
}

// JobSpec describes one job submission: the algorithm, its parameters, and
// the scheduling envelope (labels, priority, deadline, snapshot binding).
type JobSpec struct {
	// Algo names the algorithm to run (see the service's registry; the
	// bundled names are pagerank, ppr, sssp, bfs, sswp, wcc, scc, kcore,
	// degree, hits, katz).
	Algo string `json:"algo"`
	// Source is the source vertex for traversal algorithms (sssp, bfs,
	// ppr, sswp).
	Source uint32 `json:"source,omitempty"`
	// K is the k-core threshold.
	K int `json:"k,omitempty"`
	// Labels are free-form key/value annotations echoed back in the job's
	// status; use them for tenant, trace, or experiment tagging.
	Labels map[string]string `json:"labels,omitempty"`
	// Priority orders admission when the service is at its in-flight cap:
	// higher-priority submissions leave the wait queue first, FIFO within
	// a priority. Zero is the default priority.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS bounds the job's wall-clock lifetime from submission
	// (queue wait included) in milliseconds; on expiry the job fails. Zero
	// applies the service's default deadline, if any.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// AtTimestamp binds the job to the newest graph snapshot not younger
	// than this; absent means the latest snapshot at launch.
	AtTimestamp *int64 `json:"at_timestamp,omitempty"`
	// ExecMode selects the job's execution discipline: "bsp" (default,
	// synchronous), "async" (fresh-state, eager folds within an
	// iteration), or "delayed" (bounded-staleness async: merge barriers
	// skipped up to the staleness bound). Unknown modes are rejected.
	ExecMode string `json:"exec_mode,omitempty"`
	// Staleness is the "delayed" mode's barrier bound (consecutive
	// iterations allowed to skip the merge barrier); values < 1 use the
	// service default. Ignored for other modes.
	Staleness int `json:"staleness,omitempty"`
}

// JobStatus is the wire snapshot of one job's lifecycle.
type JobStatus struct {
	ID       string            `json:"id"`
	Algo     string            `json:"algo"`
	State    JobState          `json:"state"`
	Labels   map[string]string `json:"labels,omitempty"`
	Priority int               `json:"priority,omitempty"`
	// Error explains cancelled and failed jobs.
	Error     *Error     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	// Released marks a job compacted into the service's history ring:
	// its status remains listable but its results have been dropped.
	Released bool `json:"released,omitempty"`
	// Iterations counts completed iterations; it advances while the job
	// runs and is final once the job is terminal.
	Iterations int `json:"iterations,omitempty"`
	// ExecMode echoes the execution discipline the job runs under; empty
	// for default-BSP jobs, so pre-mode payloads are unchanged.
	ExecMode string `json:"exec_mode,omitempty"`
	// Engine metrics, populated once the job converges.
	EdgesProcessed     int64   `json:"edges_processed,omitempty"`
	SimulatedAccessUS  float64 `json:"simulated_access_us,omitempty"`
	SimulatedComputeUS float64 `json:"simulated_compute_us,omitempty"`
	// TraceID is the job's distributed-trace ID (32 lowercase hex digits):
	// the trace its submission joined (the request's traceparent) or the
	// one started for it. Feed it to the trace-spans endpoint.
	TraceID string `json:"trace_id,omitempty"`
}

// ListOptions selects a page of the job listing, optionally filtered.
// Filters apply before pagination, so Total counts the matching jobs.
//
//cgraph:nowire query-parameter options, never JSON-encoded
type ListOptions struct {
	// Limit caps the returned jobs; 0 means no cap.
	Limit int
	// Offset skips that many jobs from the start of the listing (oldest
	// first, compacted history included).
	Offset int
	// State, when non-empty, keeps only jobs in that lifecycle state
	// (HTTP: the "state" query parameter).
	State JobState
	// Labels, when non-empty, keeps only jobs carrying every listed
	// key/value pair (HTTP: repeated "label" query parameters, each
	// "key=value").
	Labels map[string]string
}

// JobList is one page of the job listing: compacted history first (oldest
// to newest), then live jobs in submission order.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
	// Total is the full listing size before pagination.
	Total int `json:"total"`
	// Offset echoes the requested page start.
	Offset int `json:"offset,omitempty"`
	// Sched summarizes the scheduler's last plan.
	Sched *SchedInfo `json:"sched,omitempty"`
}

// ResultsOptions selects how much of a job's converged values to return.
//
//cgraph:nowire query-parameter options, never JSON-encoded
type ResultsOptions struct {
	// Top, when positive, returns only the K largest values (with their
	// vertex IDs) instead of the full per-vertex vector.
	Top int
}

// VertexValue is one (vertex, value) pair of a top-K result.
type VertexValue struct {
	Vertex int   `json:"vertex"`
	Value  Float `json:"value"`
}

// Results carries a finished job's converged per-vertex values: either the
// full vector (Values) or the K largest entries (Top).
type Results struct {
	ID          string        `json:"id"`
	Algo        string        `json:"algo"`
	NumVertices int           `json:"num_vertices"`
	Values      []Float       `json:"values,omitempty"`
	Top         []VertexValue `json:"top,omitempty"`
}

// Snapshot is one evolving-graph version: the full rewritten edge list,
// one [src, dst, weight] triple per slot of the base list.
type Snapshot struct {
	Timestamp int64        `json:"timestamp"`
	Edges     [][3]float64 `json:"edges"`
}

// SnapshotAck confirms an ingested snapshot.
type SnapshotAck struct {
	Timestamp int64 `json:"timestamp"`
	Edges     int   `json:"edges"`
}

// MutationOp is the kind of one streamed edge mutation.
type MutationOp string

const (
	// MutationRewrite replaces the edge occupying an existing slot of the
	// current list (slot count and partition chunking stay stable).
	MutationRewrite MutationOp = "rewrite"
	// MutationAdd appends a new edge; the vertex space grows to cover its
	// endpoints and the partition series re-chunks incrementally.
	MutationAdd MutationOp = "add_edge"
	// MutationRemove deletes one edge whose (src, dst) match the
	// mutation's edge (weight ignored); removing an absent edge is a
	// counted no-op. An add followed by a remove of the same edge cancels
	// in the coalescing buffer.
	MutationRemove MutationOp = "remove_edge"
	// MutationAddVertex grows the vertex space to include the mutation's
	// vertex, without edges.
	MutationAddVertex MutationOp = "add_vertex"
)

// Mutation is one streamed edge mutation. Slot addresses "rewrite" ops,
// Edge carries the [src, dst, weight] triple for rewrite/add_edge (and the
// [src, dst] pair to match for remove_edge), Vertex the target of
// "add_vertex".
type Mutation struct {
	// Op defaults to "rewrite" when omitted.
	Op     MutationOp `json:"op,omitempty"`
	Slot   int        `json:"slot"`
	Edge   [3]float64 `json:"edge"`
	Vertex uint32     `json:"vertex,omitempty"`
}

// Delta is one streamed mutation batch: the O(|delta|) ingestion path next
// to the full-list Snapshot. Batches coalesce per slot in the service's
// bounded buffer and flush into overlay snapshots on the count trigger,
// the age (batching-window) trigger, or an explicit Flush.
type Delta struct {
	Mutations []Mutation `json:"mutations"`
	// Timestamp, when positive, is the lowest acceptable timestamp for
	// the snapshot that will include this batch; by default snapshots are
	// stamped latest+1 at flush time.
	Timestamp int64 `json:"timestamp,omitempty"`
	// Flush forces materialization of the buffer (this batch included).
	Flush bool `json:"flush,omitempty"`
}

// DeltaAck confirms an accepted delta batch.
type DeltaAck struct {
	// Accepted mutations from this batch; Pending is the coalescing
	// buffer's size afterwards (0 if the batch flushed).
	Accepted int `json:"accepted"`
	Pending  int `json:"pending"`
	// Flushed reports whether this request materialized a snapshot;
	// Timestamp is its timestamp.
	Flushed   bool  `json:"flushed,omitempty"`
	Timestamp int64 `json:"timestamp,omitempty"`
}

// IngestStats reports the streaming-ingestion pipeline's counters and the
// snapshot store's lifecycle state.
type IngestStats struct {
	// Batches/Mutations count accepted delta batches and their mutation
	// records; Coalesced how many records were superseded in the buffer
	// before a flush.
	Batches   int64 `json:"batches"`
	Mutations int64 `json:"mutations"`
	Coalesced int64 `json:"coalesced"`
	// Flushes by trigger; Failures count flushes whose materialization
	// errored (the buffer is retained and retried).
	Flushes       int64 `json:"flushes"`
	CountFlushes  int64 `json:"count_flushes"`
	AgeFlushes    int64 `json:"age_flushes"`
	ManualFlushes int64 `json:"manual_flushes"`
	Failures      int64 `json:"failures,omitempty"`
	// Accepted mutation records by op.
	Rewrites    int64 `json:"rewrites"`
	EdgeAdds    int64 `json:"edge_adds"`
	EdgeRemoves int64 `json:"edge_removes"`
	VertexAdds  int64 `json:"vertex_adds"`
	// Cancelled counts add/remove pairs of the same edge that annihilated
	// in the buffer; RemoveMisses no-op mutations applied at materialize
	// time (removes of absent edges, and rewrites of slots that vanished
	// under a same-window structural remove); Shed whole batches rejected
	// by the ingest admission cap (HTTP 429 ingest_saturated).
	Cancelled    int64 `json:"cancelled,omitempty"`
	RemoveMisses int64 `json:"remove_misses,omitempty"`
	Shed         int64 `json:"shed,omitempty"`
	// SnapshotsBuilt counts delta-built snapshots; SlotsApplied the edge
	// slots actually changed across them.
	SnapshotsBuilt int64 `json:"snapshots_built"`
	SlotsApplied   int64 `json:"slots_applied"`
	// Compactions counts hole-compaction passes: flushes that squeezed
	// removal tombstones out of the edge list because the free-slot share
	// crossed the configured compaction ratio.
	Compactions int64 `json:"compactions,omitempty"`
	// PartsRebuilt/PartsShared split delta-built snapshots' partitions
	// into rebuilt vs. pointer-shared with their predecessor; SharedRatio
	// is shared/(shared+rebuilt).
	PartsRebuilt int64   `json:"parts_rebuilt"`
	PartsShared  int64   `json:"parts_shared"`
	SharedRatio  float64 `json:"shared_ratio"`
	// Pending is the buffer's current size; LastTimestamp the newest
	// delta-built snapshot's timestamp.
	Pending       int   `json:"pending"`
	LastTimestamp int64 `json:"last_timestamp,omitempty"`
	// Snapshot lifecycle: retained series length, retention evictions so
	// far, and the configured cap (0 = unbounded).
	SnapshotsLive    int `json:"snapshots_live"`
	SnapshotsEvicted int `json:"snapshots_evicted"`
	RetainSnapshots  int `json:"retain_snapshots,omitempty"`
	// Retained-window bounds: the oldest and newest retained snapshots'
	// series indices and timestamps. A job binding with a timestamp
	// before OldestTimestamp is served by the oldest retained version.
	OldestSeq       int   `json:"oldest_seq"`
	OldestTimestamp int64 `json:"oldest_timestamp"`
	NewestSeq       int   `json:"newest_seq"`
	NewestTimestamp int64 `json:"newest_timestamp"`
	// NumVertices is the newest snapshot's vertex-space size; structural
	// deltas grow it.
	NumVertices int `json:"num_vertices"`
}

// SchedGroup is one correlation group of the engine's last round.
type SchedGroup struct {
	Jobs []string `json:"jobs"`
	// Priority is the group's aggregate (summed) job priority, the primary
	// inter-group ordering key.
	Priority int `json:"priority,omitempty"`
	// Parts is the unit load order (partition index within its snapshot),
	// parallel to PartUIDs, which names the exact version loaded.
	Parts    []int   `json:"parts"`
	PartUIDs []int64 `json:"part_uids"`
	// MakespanUS attributes the round's virtual time to this group: how
	// much the engine clock advanced while its units loaded and triggered.
	MakespanUS float64 `json:"makespan_us,omitempty"`
}

// SchedInfo is the wire view of the engine's latest scheduling decision:
// policy, θ fit, and the per-round group/load order.
type SchedInfo struct {
	Policy      string       `json:"policy"`
	Theta       float64      `json:"theta"`
	ThetaRefits int          `json:"theta_refits"`
	Round       int64        `json:"round"`
	Groups      []SchedGroup `json:"groups"`
}

// ExecInfo reports the work-stealing executor: its effective
// configuration and cumulative task/steal counters.
type ExecInfo struct {
	// Workers and Balance are the effective executor configuration
	// (worker count and task-granularity balance factor).
	Workers int     `json:"workers"`
	Balance float64 `json:"balance"`
	// Tasks / Steals / Stolen are cumulative across rounds: tasks
	// executed, successful steal operations, and tasks moved by them.
	Tasks  int64 `json:"tasks"`
	Steals int64 `json:"steals"`
	Stolen int64 `json:"stolen"`
	// SkippedPartitions counts (job, partition) pairs excluded before
	// scheduling because their frontier was empty (converged regions).
	SkippedPartitions int64 `json:"skipped_partitions"`
	// Imbalance is the heaviest worker's realized share of the last
	// round's task weight, ×Workers (1.0 = perfectly even).
	Imbalance float64 `json:"imbalance"`
	// FreshFolds counts contributions folded eagerly by fresh-state
	// (async/delayed) jobs; zero on an all-BSP service.
	FreshFolds int64 `json:"fresh_folds,omitempty"`
	// BarriersSkipped / BarriersForced are the delayed-mode
	// bounded-staleness counters: iterations that skipped the merge
	// barrier within the staleness bound, and iterations that paid one.
	BarriersSkipped int64 `json:"barriers_skipped,omitempty"`
	BarriersForced  int64 `json:"barriers_forced,omitempty"`
	// BSPJobs / AsyncJobs / DelayedJobs count submissions by execution
	// mode.
	BSPJobs     int64 `json:"bsp_jobs,omitempty"`
	AsyncJobs   int64 `json:"async_jobs,omitempty"`
	DelayedJobs int64 `json:"delayed_jobs,omitempty"`
}

// Metrics is the structured (JSON) counterpart of the Prometheus text
// exposition: job-state counts, round-loop progress, and scheduler state.
type Metrics struct {
	// Jobs counts jobs by lifecycle state, compacted history included.
	Jobs map[JobState]int `json:"jobs"`
	// Rounds is the number of LTP rounds processed so far.
	Rounds int64 `json:"rounds"`
	// VirtualTimeUS is the engine's virtual clock in simulated microseconds.
	VirtualTimeUS float64   `json:"virtual_time_us"`
	Sched         SchedInfo `json:"sched"`
	// Exec reports the work-stealing execution pool.
	Exec ExecInfo `json:"exec"`
	// Ingest reports the streaming delta pipeline and snapshot lifecycle.
	Ingest IngestStats `json:"ingest"`
	// Attribution lists the per-job resource accounts computed from the
	// span store, newest job first.
	Attribution []JobAttribution `json:"attribution,omitempty"`
}

// Float is a float64 that survives JSON round-trips of non-finite values
// (e.g. +Inf for unreachable vertices in SSSP), which encoding/json
// otherwise rejects: they are encoded as the strings "+Inf", "-Inf", "NaN".
type Float float64

// MarshalJSON renders non-finite values as strings.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts numbers and the non-finite string spellings.
func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = Float(math.Inf(1))
		case "-Inf":
			*f = Float(math.Inf(-1))
		case "NaN":
			*f = Float(math.NaN())
		default:
			return fmt.Errorf("api: bad float %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}
