// Social-network analytics: the scenario from the paper's introduction — a
// platform concurrently answering several analytics questions about one
// social graph (influence ranking, reachability, communities, cohesion,
// robust paths) with a single shared traversal of the structure.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"sort"

	"cgraph"
	"cgraph/algo"
	"cgraph/internal/gen"
)

func main() {
	// A power-law "social network" stand-in: 2k users, 60k follows.
	edges := gen.RMAT(2024, 2000, 60000, 0.57, 0.19, 0.19)

	sys := cgraph.NewSystem(
		cgraph.WithWorkers(8),
		// Enable the simulated hierarchy to see the data-movement savings
		// in the report (optional; omit for raw speed).
		cgraph.WithCacheSimulation(256<<10, 8<<20),
	)
	if err := sys.LoadEdges(2000, edges); err != nil {
		log.Fatal(err)
	}

	influence, _ := sys.Submit(algo.NewPageRank())
	reach, _ := sys.Submit(algo.NewBFS(0))
	communities, _ := sys.Submit(algo.NewWCC())
	cohesion, _ := sys.Submit(algo.NewKCore(8))
	cliques, _ := sys.Submit(algo.NewSCC())
	robust, _ := sys.Submit(algo.NewSSWP(0))

	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("6 concurrent jobs, %d workers, wall %v\n", report.Workers, report.WallClock)
	fmt.Printf("cache miss rate %.1f%%, %.1f MB swapped into cache\n\n",
		report.CacheMissRate, float64(report.BytesIntoCache)/(1<<20))

	ranks, _ := influence.Results()
	fmt.Println("top influencers (PageRank):")
	for _, v := range topK(ranks, 5) {
		fmt.Printf("  user %-5d score %.2f\n", v, ranks[v])
	}

	dists, _ := reach.Results()
	within3 := 0
	for _, d := range dists {
		if d <= 3 {
			within3++
		}
	}
	fmt.Printf("\nusers within 3 hops of user 0: %d\n", within3)

	comps, _ := communities.Results()
	sizes := map[float64]int{}
	for _, c := range comps {
		sizes[c]++
	}
	largest := 0
	for _, n := range sizes {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("weakly connected components: %d (largest %d users)\n", len(sizes), largest)

	core8, _ := cohesion.Results()
	inCore := 0
	for _, c := range core8 {
		if c >= 0 {
			inCore++
		}
	}
	fmt.Printf("8-core (tightly knit) users: %d\n", inCore)

	sccs, _ := cliques.Results()
	sccSizes := map[float64]int{}
	for _, c := range sccs {
		sccSizes[c]++
	}
	maxSCC := 0
	for _, n := range sccSizes {
		if n > maxSCC {
			maxSCC = n
		}
	}
	fmt.Printf("largest mutual-follow group (SCC): %d users\n", maxSCC)

	widths, _ := robust.Results()
	strong := 0
	for _, w := range widths {
		if w >= 5 {
			strong++
		}
	}
	fmt.Printf("users reachable from 0 over edges of weight >= 5: %d\n", strong)
}

func topK(vals []float64, k int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
