// Evolving graph: the §3.2.1/§4.4 scenario — the graph changes over time,
// snapshots are stored incrementally, and jobs arriving at different times
// analyse the version that was current at their submission, while the
// engine still shares every partition the versions have in common.
//
//	go run ./examples/evolving
package main

import (
	"fmt"
	"log"

	"cgraph"
	"cgraph/algo"
	"cgraph/internal/gen"
)

func main() {
	const n = 1500
	base := gen.Web(7, n, 40000)

	// Snapshots require slot-stable plain partitioning.
	sys := cgraph.NewSystem(cgraph.WithWorkers(4), cgraph.WithCoreSubgraph(false))
	if err := sys.LoadEdges(n, base); err != nil {
		log.Fatal(err)
	}

	// The crawl discovers changes twice: 1% of the links are rewritten at
	// t=10 and again at t=20. Unchanged partitions are shared between all
	// three versions.
	snap1, changed1 := gen.MutateClustered(base, 0.01, n, 101, 32)
	if err := sys.AddSnapshot(snap1, 10); err != nil {
		log.Fatal(err)
	}
	snap2, changed2 := gen.MutateClustered(snap1, 0.01, n, 102, 32)
	if err := sys.AddSnapshot(snap2, 20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshots: base + %d and %d rewritten link slots\n", len(changed1), len(changed2))

	// Three analysts ask for rankings at different times; each sees the
	// graph as of their arrival.
	early, _ := sys.Submit(algo.NewPageRank(), cgraph.AtTimestamp(0))
	mid, _ := sys.Submit(algo.NewPageRank(), cgraph.AtTimestamp(10))
	late, _ := sys.Submit(algo.NewPageRank(), cgraph.AtTimestamp(20))

	if _, err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	r0, _ := early.Results()
	r1, _ := mid.Results()
	r2, _ := late.Results()

	fmt.Println("\nhow the rank of the first few pages drifted across versions:")
	fmt.Println("page   t=0      t=10     t=20")
	for v := 0; v < 8; v++ {
		fmt.Printf("%4d  %7.4f  %7.4f  %7.4f\n", v, r0[v], r1[v], r2[v])
	}

	drift := 0.0
	for v := range r0 {
		d := r2[v] - r0[v]
		if d < 0 {
			d = -d
		}
		drift += d
	}
	fmt.Printf("\ntotal absolute rank drift base → t=20: %.3f\n", drift)
}
