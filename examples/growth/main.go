// Structural graph evolution: a social network that actually grows. The
// earlier evolving/streaming examples rewrite edges in place — the vertex
// count and slot space stay frozen at the base snapshot. Here the feed
// streams the events a real network produces: new users (add_vertex), new
// follows (add_edge, including follows of brand-new users), and unfollows
// (remove_edge). Each flush materializes a snapshot whose vertex and edge
// counts differ from its predecessor, re-chunking only the touched
// partitions, while an analyst job bound to the pre-growth snapshot keeps
// running concurrently with jobs bound to the grown graph.
//
//	go run ./examples/growth
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/internal/gen"
	"cgraph/server"
)

func main() {
	const (
		baseUsers   = 800
		baseFollows = 16000
		waves       = 4
		newPerWave  = 50 // users joining per wave
	)
	base := gen.Web(21, baseUsers, baseFollows)

	// Structural deltas require slot-stable plain partitioning. The ingest
	// cap sheds feed bursts instead of buffering without bound.
	sys := cgraph.NewSystem(
		cgraph.WithWorkers(4),
		cgraph.WithCoreSubgraph(false),
		cgraph.WithIngestCap(4096),
		cgraph.WithRetainSnapshots(6),
	)
	if err := sys.LoadEdges(baseUsers, base); err != nil {
		log.Fatal(err)
	}
	svc := server.New(sys, server.Config{MaxInFlight: 8, RetainTerminal: 32})
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	// Same code runs remote: swap for client.New("http://…").
	var c cgraph.Client = server.NewLocalClient(svc, nil)

	// Rank the network as it was before any growth; this job stays bound
	// to the base snapshot while the graph grows underneath it.
	preGrowth, err := c.Submit(ctx, api.JobSpec{Algo: "pagerank", Labels: map[string]string{"cohort": "pre"}})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	users := baseUsers
	var jobs []string
	for wave := 1; wave <= waves; wave++ {
		delta := api.Delta{Flush: true}
		// New users join…
		firstNew := users
		for i := 0; i < newPerWave; i++ {
			delta.Mutations = append(delta.Mutations, api.Mutation{Op: api.MutationAddVertex, Vertex: uint32(users)})
			users++
		}
		// …and follow existing accounts; popular accounts follow back.
		for i := 0; i < newPerWave*3; i++ {
			newcomer := firstNew + rng.Intn(newPerWave)
			existing := rng.Intn(firstNew)
			delta.Mutations = append(delta.Mutations, api.Mutation{
				Op: api.MutationAdd, Edge: [3]float64{float64(newcomer), float64(existing), 1},
			})
			if i%4 == 0 {
				delta.Mutations = append(delta.Mutations, api.Mutation{
					Op: api.MutationAdd, Edge: [3]float64{float64(existing), float64(newcomer), 1},
				})
			}
		}
		// Some old follows are dropped.
		for i := 0; i < newPerWave/2; i++ {
			e := base[rng.Intn(len(base))]
			delta.Mutations = append(delta.Mutations, api.Mutation{
				Op: api.MutationRemove, Edge: [3]float64{float64(e.Src), float64(e.Dst)},
			})
		}
		ack, err := c.ApplyDelta(ctx, delta)
		if err != nil {
			log.Fatal(err)
		}
		m, err := c.Metrics(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wave %d: %d structural mutations -> snapshot t=%d (%d vertices)\n",
			wave, ack.Accepted, ack.Timestamp, m.Ingest.NumVertices)

		// Analysts rank the grown network as of this wave.
		st, err := c.Submit(ctx, api.JobSpec{Algo: "pagerank", Labels: map[string]string{"cohort": "post"}})
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, st.ID)
	}

	// Drain everything: the pre-growth job converged against its original
	// topology while the post-growth jobs ran against larger ones.
	for _, id := range append([]string{preGrowth.ID}, jobs...) {
		events, err := c.Watch(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		for range events {
		}
	}
	pre, err := c.Results(ctx, preGrowth.ID, api.ResultsOptions{})
	if err != nil {
		log.Fatal(err)
	}
	last, err := c.Results(ctx, jobs[len(jobs)-1], api.ResultsOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npre-growth ranking covers %d users; final ranking covers %d users\n",
		pre.NumVertices, last.NumVertices)

	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	ing := m.Ingest
	fmt.Printf("ops: %d adds, %d removes, %d vertex adds (%d misses, %d cancelled)\n",
		ing.EdgeAdds, ing.EdgeRemoves, ing.VertexAdds, ing.RemoveMisses, ing.Cancelled)
	fmt.Printf("incremental re-chunking: %d partitions rebuilt, %d shared (ratio %.2f)\n",
		ing.PartsRebuilt, ing.PartsShared, ing.SharedRatio)
	fmt.Printf("retained window: seq %d (t=%d) .. seq %d (t=%d), %d live\n",
		ing.OldestSeq, ing.OldestTimestamp, ing.NewestSeq, ing.NewestTimestamp, ing.SnapshotsLive)

	if err := svc.Stop(context.Background()); err != nil {
		log.Fatal(err)
	}
}
