// Streaming ingestion: an evolving graph served as a continuous stream of
// small edge-mutation batches instead of full snapshot uploads. A feed
// goroutine applies deltas through the client's ApplyDelta — the pipeline
// coalesces them and materializes overlay snapshots on its batching window,
// so each new version costs O(|delta|) and shares every untouched partition
// with its predecessor — while analyst jobs (PageRank and SSSP) keep
// arriving against the rolling snapshot series. Retention GC keeps the
// series bounded: old versions are evicted once no job is bound to them.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/internal/gen"
	"cgraph/server"
)

func main() {
	const (
		numVertices = 1200
		numEdges    = 30000
		ticks       = 6
		batchSize   = 40
	)
	base := gen.Web(7, numVertices, numEdges)

	// Deltas require slot-stable plain partitioning; the retention cap
	// keeps at most 4 snapshots alive once jobs release old versions.
	sys := cgraph.NewSystem(
		cgraph.WithWorkers(4),
		cgraph.WithCoreSubgraph(false),
		cgraph.WithIngestBatch(64),
		cgraph.WithIngestWindow(50*time.Millisecond),
		cgraph.WithRetainSnapshots(4),
	)
	if err := sys.LoadEdges(numVertices, base); err != nil {
		log.Fatal(err)
	}
	svc := server.New(sys, server.Config{MaxInFlight: 8, RetainTerminal: 32})
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	// Same code runs remote: swap for client.New("http://…").
	var c cgraph.Client = server.NewLocalClient(svc, nil)

	// The crawler streams clustered link rewrites; analysts keep asking
	// for rankings and distances against whatever version is current.
	rng := rand.New(rand.NewSource(42))
	var jobs []string
	for tick := 1; tick <= ticks; tick++ {
		delta := api.Delta{Flush: true}
		start := rng.Intn(numEdges - batchSize)
		for i := 0; i < batchSize; i++ {
			delta.Mutations = append(delta.Mutations, api.Mutation{
				Slot: start + i,
				Edge: [3]float64{float64(rng.Intn(numVertices)), float64(rng.Intn(numVertices)), 1},
			})
		}
		ack, err := c.ApplyDelta(ctx, delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tick %d: streamed %d mutations -> snapshot t=%d\n", tick, ack.Accepted, ack.Timestamp)

		for _, spec := range []api.JobSpec{
			{Algo: "pagerank", Labels: map[string]string{"feed": "stream"}},
			{Algo: "sssp", Source: uint32(rng.Intn(numVertices)), Labels: map[string]string{"feed": "stream"}},
		} {
			st, err := c.Submit(ctx, spec)
			if err != nil {
				log.Fatal(err)
			}
			jobs = append(jobs, st.ID)
		}
	}

	// Drain every submitted job through its event stream.
	for _, id := range jobs {
		events, err := c.Watch(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		for range events {
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	ing := m.Ingest
	fmt.Printf("\ningest: %d batches, %d mutations, %d flushes -> %d snapshots built\n",
		ing.Batches, ing.Mutations, ing.Flushes, ing.SnapshotsBuilt)
	fmt.Printf("overlay sharing: %d partitions rebuilt, %d shared (ratio %.2f)\n",
		ing.PartsRebuilt, ing.PartsShared, ing.SharedRatio)
	fmt.Printf("snapshot lifecycle: %d live (cap %d), %d evicted by retention GC\n",
		ing.SnapshotsLive, ing.RetainSnapshots, ing.SnapshotsEvicted)

	done, err := c.List(ctx, api.ListOptions{State: api.JobDone, Labels: map[string]string{"feed": "stream"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs converged against the rolling series: %d/%d\n", done.Total, len(jobs))

	if err := svc.Stop(context.Background()); err != nil {
		log.Fatal(err)
	}
}
