// Job server: the "common platform" of §1 as a service, driven end to end
// through the versioned client API. This example loads a synthetic graph,
// starts the resident job service with its /v1 HTTP control plane, then —
// acting as its own first tenant — submits concurrent jobs through the Go
// HTTP client, watches one job's event stream (lifecycle transitions plus
// per-iteration progress, no polling), and fetches top-K results. Every
// wire shape is an api type; swap client.New for server.NewLocalClient and
// the same code runs in-process.
//
//	go run ./examples/jobserver &
//	curl -X POST localhost:8039/v1/jobs -d '{"algo":"sssp","source":3}'
//	curl localhost:8039/v1/jobs/job-2
//	curl -N localhost:8039/v1/jobs/job-2/events
//	curl 'localhost:8039/v1/jobs/job-2/results?top=5'
package main

import (
	"context"
	"log"
	"net"
	"net/http"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/client"
	"cgraph/internal/gen"
	"cgraph/server"
)

func main() {
	sys := cgraph.NewSystem(cgraph.WithWorkers(4), cgraph.WithCoreSubgraph(false))
	edges := gen.RMAT(99, 2000, 50000, 0.57, 0.19, 0.19)
	if err := sys.LoadEdges(2000, edges); err != nil {
		log.Fatal(err)
	}

	svc := server.New(sys, server.Config{MaxInFlight: 8, RetainTerminal: 64})
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "localhost:8039")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, svc.Handler(nil)) //cgraph:spawn example HTTP listener for the process lifetime
	log.Println("cgraph job service on :8039 (graph: 2000 vertices, 50000 edges)")

	// The service is its own first tenant: everything below goes through
	// the HTTP client and the versioned wire types.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := client.New("http://localhost:8039")

	pr, err := c.Submit(ctx, api.JobSpec{
		Algo:   "pagerank",
		Labels: map[string]string{"tenant": "example", "kind": "rank"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Submit(ctx, api.JobSpec{Algo: "sssp", Source: 3, Priority: 1}); err != nil {
		log.Fatal(err)
	}

	// Watch replaces polling: state transitions and per-iteration progress
	// stream until the terminal event.
	events, err := c.Watch(ctx, pr.ID)
	if err != nil {
		log.Fatal(err)
	}
	for ev := range events {
		switch ev.Type {
		case api.EventState:
			log.Printf("%s: state=%s", pr.ID, ev.State)
		case api.EventProgress:
			log.Printf("%s: iteration=%d edges=%d", pr.ID, ev.Iteration, ev.EdgesProcessed)
		}
	}

	res, err := c.Results(ctx, pr.ID, api.ResultsOptions{Top: 5})
	if err != nil {
		log.Fatal(err)
	}
	for _, vv := range res.Top {
		log.Printf("%s: vertex %d rank %.6f", pr.ID, vv.Vertex, float64(vv.Value))
	}

	log.Println("serving; submit more jobs against /v1 (Ctrl-C to stop)")
	select {}
}
