// Job server: the "common platform" of §1 as a service — a resident graph
// accepts analytics jobs over HTTP while the engine runs, demonstrating
// runtime job submission (Algorithm 3 allows adding jobs to SJobs at any
// time). Results are queried back by job ID.
//
//	go run ./examples/jobserver &
//	curl 'localhost:8039/submit?job=pagerank'
//	curl 'localhost:8039/submit?job=sssp&src=3'
//	curl 'localhost:8039/result?id=0&top=5'
package main

import (
	"encoding/json"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"cgraph"
	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/model"
)

type server struct {
	sys *cgraph.System

	mu   sync.Mutex
	jobs []*cgraph.Job
	done map[int]bool
}

func main() {
	srv := &server{
		sys:  cgraph.NewSystem(cgraph.WithWorkers(4)),
		done: map[int]bool{},
	}
	edges := gen.RMAT(99, 2000, 50000, 0.57, 0.19, 0.19)
	if err := srv.sys.LoadEdges(2000, edges); err != nil {
		log.Fatal(err)
	}

	http.HandleFunc("/submit", srv.submit)
	http.HandleFunc("/result", srv.result)
	log.Println("cgraph job server on :8039 (graph: 2000 vertices, 50000 edges)")
	log.Fatal(http.ListenAndServe("localhost:8039", nil))
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	src64, _ := strconv.ParseUint(r.URL.Query().Get("src"), 10, 32)
	src := model.VertexID(src64)
	var prog model.Program
	switch r.URL.Query().Get("job") {
	case "pagerank":
		prog = algo.NewPageRank()
	case "sssp":
		prog = algo.NewSSSP(src)
	case "bfs":
		prog = algo.NewBFS(src)
	case "wcc":
		prog = algo.NewWCC()
	case "scc":
		prog = algo.NewSCC()
	default:
		http.Error(w, "job must be pagerank|sssp|bfs|wcc|scc", http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	j, err := s.sys.Submit(prog)
	if err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	id := len(s.jobs)
	s.jobs = append(s.jobs, j)
	s.mu.Unlock()

	// Drain the engine in the background; concurrent submissions are
	// admitted at round boundaries while it runs.
	go func() {
		if _, err := s.sys.Run(); err != nil {
			log.Printf("run: %v", err)
			return
		}
		s.mu.Lock()
		for i := range s.jobs {
			if _, err := s.jobs[i].Results(); err == nil {
				s.done[i] = true
			}
		}
		s.mu.Unlock()
	}()

	json.NewEncoder(w).Encode(map[string]any{"id": id, "job": j.Name()})
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	s.mu.Lock()
	valid := err == nil && id >= 0 && id < len(s.jobs)
	var job *cgraph.Job
	if valid {
		job = s.jobs[id]
	}
	s.mu.Unlock()
	if !valid {
		http.Error(w, "unknown job id", http.StatusNotFound)
		return
	}
	res, err := job.Results()
	if err != nil {
		http.Error(w, "job still running, retry", http.StatusAccepted)
		return
	}
	top, _ := strconv.Atoi(r.URL.Query().Get("top"))
	if top <= 0 {
		top = 10
	}
	type entry struct {
		Vertex int     `json:"vertex"`
		Value  float64 `json:"value"`
	}
	entries := make([]entry, 0, len(res))
	for v, x := range res {
		entries = append(entries, entry{v, x})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Value > entries[j].Value })
	if top > len(entries) {
		top = len(entries)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"job": job.Name(), "top": entries[:top],
	})
}
