// Job server: the "common platform" of §1 as a service. This example is a
// thin client of the server subsystem — it loads a synthetic graph, starts
// the resident job service, and mounts its HTTP control plane. The engine
// runs continuously: jobs submitted at any time are admitted at the next
// round boundary (Algorithm 3), share every partition load with whatever
// else is in flight, and can be cancelled or given deadlines mid-run.
//
//	go run ./examples/jobserver &
//	curl -X POST localhost:8039/jobs -d '{"algo":"pagerank"}'
//	curl -X POST localhost:8039/jobs -d '{"algo":"sssp","source":3}'
//	curl localhost:8039/jobs/job-0
//	curl 'localhost:8039/results/job-0?top=5'
//	curl -X DELETE localhost:8039/jobs/job-1
//	curl localhost:8039/metrics
package main

import (
	"log"
	"net/http"

	"cgraph"
	"cgraph/internal/gen"
	"cgraph/server"
)

func main() {
	sys := cgraph.NewSystem(cgraph.WithWorkers(4), cgraph.WithCoreSubgraph(false))
	edges := gen.RMAT(99, 2000, 50000, 0.57, 0.19, 0.19)
	if err := sys.LoadEdges(2000, edges); err != nil {
		log.Fatal(err)
	}

	svc := server.New(sys, server.Config{MaxInFlight: 8})
	if err := svc.Start(); err != nil {
		log.Fatal(err)
	}

	log.Println("cgraph job service on :8039 (graph: 2000 vertices, 50000 edges)")
	log.Fatal(http.ListenAndServe("localhost:8039", svc.Handler(nil)))
}
