// Quickstart: load a graph, run two concurrent jobs, read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cgraph"
	"cgraph/algo"
)

func main() {
	// A small directed graph: a diamond with a weighted shortcut.
	edges := []cgraph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 4},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 1, Dst: 3, Weight: 7},
		{Src: 2, Dst: 3, Weight: 1},
		{Src: 3, Dst: 0, Weight: 2},
	}

	sys := cgraph.NewSystem(cgraph.WithWorkers(2))
	if err := sys.LoadEdges(0, edges); err != nil {
		log.Fatal(err)
	}

	// Two jobs run concurrently over the same shared graph structure —
	// the CGP workload the engine is built for.
	pagerank, err := sys.Submit(algo.NewPageRank())
	if err != nil {
		log.Fatal(err)
	}
	shortest, err := sys.Submit(algo.NewSSSP(0))
	if err != nil {
		log.Fatal(err)
	}

	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d jobs in %v\n\n", len(report.Jobs), report.WallClock)

	ranks, _ := pagerank.Results()
	dists, _ := shortest.Results()
	fmt.Println("vertex  pagerank  dist-from-0")
	for v := range ranks {
		fmt.Printf("%5d   %7.4f   %g\n", v, ranks[v], dists[v])
	}
}
