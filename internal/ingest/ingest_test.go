package ingest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cgraph/internal/span"
	"cgraph/internal/testutil"
	"cgraph/model"
)

// recordingSink is a Materialize callback that records every flush it sees.
type recordingSink struct {
	mu      sync.Mutex
	flushes [][]Mutation
	minTSs  []int64
	fail    bool
	ts      int64
}

func (r *recordingSink) materialize(muts []Mutation, minTS int64, _ span.Context) (Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail {
		return Result{}, fmt.Errorf("sink down")
	}
	cp := append([]Mutation(nil), muts...)
	r.flushes = append(r.flushes, cp)
	r.minTSs = append(r.minTSs, minTS)
	r.ts++
	return Result{Built: true, Timestamp: r.ts, Applied: len(muts), Rebuilt: 1, Shared: 7}, nil
}

func (r *recordingSink) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.flushes)
}

func slots(n int) func() int { return func() int { return n } }

func edge(s, d int) model.Edge {
	return model.Edge{Src: model.VertexID(s), Dst: model.VertexID(d), Weight: 1}
}

func TestApplyValidation(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(10), Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Slot: 10, Edge: edge(0, 1)}}, 0, false); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if _, err := p.Apply([]Mutation{{Slot: -1, Edge: edge(0, 1)}}, 0, false); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := p.Apply([]Mutation{{Op: Op(9), Slot: 0, Edge: edge(0, 1)}}, 0, false); err == nil {
		t.Fatal("unknown op accepted")
	}
	// A batch with one bad mutation is rejected atomically.
	if _, err := p.Apply([]Mutation{{Slot: 1, Edge: edge(0, 1)}, {Slot: 99, Edge: edge(0, 1)}}, 0, false); err == nil {
		t.Fatal("batch with bad slot accepted")
	}
	if got := p.Stats().Pending; got != 0 {
		t.Fatalf("pending = %d after rejected batches, want 0", got)
	}
	if _, err := New(Config{Materialize: sink.materialize}); err == nil {
		t.Fatal("New accepted nil Slots")
	}
	if _, err := New(Config{Slots: slots(1)}); err == nil {
		t.Fatal("New accepted nil Materialize")
	}
}

func TestCoalescingAndCountFlush(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(100), MaxBatch: 3, Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	// Two writes to slot 5: the second supersedes the first in the buffer.
	ack, err := p.Apply([]Mutation{{Slot: 5, Edge: edge(1, 2)}, {Slot: 5, Edge: edge(3, 4)}}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Flushed || ack.Pending != 1 || ack.Accepted != 2 {
		t.Fatalf("ack = %+v, want pending 1 accepted 2 not flushed", ack)
	}
	// Third distinct slot hits MaxBatch and flushes.
	if _, err := p.Apply([]Mutation{{Slot: 9, Edge: edge(0, 1)}}, 0, false); err != nil {
		t.Fatal(err)
	}
	ack, err = p.Apply([]Mutation{{Slot: 2, Edge: edge(7, 8)}}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Flushed || ack.Pending != 0 {
		t.Fatalf("ack = %+v, want count-triggered flush", ack)
	}
	if sink.count() != 1 {
		t.Fatalf("flushes = %d, want 1", sink.count())
	}
	// The flushed batch is coalesced (slot 5 once, last write wins) and
	// sorted ascending by slot.
	got := sink.flushes[0]
	want := []Mutation{{Slot: 2, Edge: edge(7, 8)}, {Slot: 5, Edge: edge(3, 4)}, {Slot: 9, Edge: edge(0, 1)}}
	if len(got) != len(want) {
		t.Fatalf("flushed %d mutations, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flush[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := p.Stats()
	if st.Coalesced != 1 || st.CountFlushes != 1 || st.Flushes != 1 || st.Batches != 3 || st.Mutations != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SnapshotsBuilt != 1 || st.PartsShared != 7 || st.PartsRebuilt != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.SharedRatio(); r != 7.0/8.0 {
		t.Fatalf("SharedRatio = %v, want 7/8", r)
	}
}

func TestManualFlushAndMinTS(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(100), Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := p.Flush(); err != nil || res.Built {
		t.Fatalf("empty flush = %+v, %v", res, err)
	}
	ack, err := p.Apply([]Mutation{{Slot: 1, Edge: edge(1, 2)}}, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Flushed || ack.Timestamp != 1 {
		t.Fatalf("ack = %+v, want flushed at sink ts 1", ack)
	}
	if len(sink.minTSs) != 1 || sink.minTSs[0] != 42 {
		t.Fatalf("minTSs = %v, want [42]", sink.minTSs)
	}
	// minTS resets after a flush.
	if _, err := p.Apply([]Mutation{{Slot: 2, Edge: edge(1, 2)}}, 0, true); err != nil {
		t.Fatal(err)
	}
	if sink.minTSs[1] != 0 {
		t.Fatalf("minTS carried over: %v", sink.minTSs)
	}
	if st := p.Stats(); st.ManualFlushes != 2 {
		t.Fatalf("manual flushes = %d, want 2", st.ManualFlushes)
	}
}

func TestAgeTriggeredFlush(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(100), Window: 20 * time.Millisecond, Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Slot: 3, Edge: edge(1, 2)}}, 0, false); err != nil {
		t.Fatal(err)
	}
	testutil.WaitFor(t, 5*time.Second, func() bool { return sink.count() > 0 },
		"age-triggered flush never fired")
	st := p.Stats()
	if st.AgeFlushes != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v, want one age flush and empty buffer", st)
	}
}

func TestFailedFlushKeepsBuffer(t *testing.T) {
	sink := &recordingSink{fail: true}
	p, err := New(Config{Slots: slots(100), Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := p.Apply([]Mutation{{Slot: 3, Edge: edge(1, 2)}}, 0, true)
	if err == nil {
		t.Fatal("flush against failing sink succeeded")
	}
	// The error still reports the batch as accepted and buffered.
	if ack.Accepted != 1 || ack.Pending != 1 || ack.Flushed {
		t.Fatalf("ack alongside flush error = %+v", ack)
	}
	st := p.Stats()
	if st.Failures != 1 || st.Pending != 1 {
		t.Fatalf("stats = %+v, want failure recorded and buffer kept", st)
	}
	// The sink recovers; a retry flushes the retained mutation.
	sink.mu.Lock()
	sink.fail = false
	sink.mu.Unlock()
	res, err := p.Flush()
	if err != nil || !res.Built {
		t.Fatalf("retry flush = %+v, %v", res, err)
	}
	if sink.count() != 1 || sink.flushes[0][0].Slot != 3 {
		t.Fatalf("retained mutation not flushed: %+v", sink.flushes)
	}
}

// TestFailedFlushRearmsAgeTimer: a flush failure on the very batch that
// opened the buffer must leave the age trigger armed, so the retained
// mutations retry without further traffic.
func TestFailedFlushRearmsAgeTimer(t *testing.T) {
	sink := &recordingSink{fail: true}
	p, err := New(Config{Slots: slots(100), Window: 20 * time.Millisecond, Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Slot: 3, Edge: edge(1, 2)}}, 0, true); err == nil {
		t.Fatal("flush against failing sink succeeded")
	}
	sink.mu.Lock()
	sink.fail = false
	sink.mu.Unlock()
	testutil.WaitFor(t, 5*time.Second, func() bool { return sink.count() > 0 },
		"age timer never retried the failed flush")
	st := p.Stats()
	if st.Pending != 0 || st.AgeFlushes < 1 || st.SnapshotsBuilt != 1 {
		t.Fatalf("stats after retry = %+v", st)
	}
}

func TestCloseFlushesAndRejects(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(100), Window: time.Hour, Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Slot: 3, Edge: edge(1, 2)}}, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 {
		t.Fatalf("close did not flush: %d flushes", sink.count())
	}
	if _, err := p.Apply([]Mutation{{Slot: 4, Edge: edge(1, 2)}}, 0, false); err == nil {
		t.Fatal("apply after close succeeded")
	}
	if err := p.Close(); err != nil {
		t.Fatal("second close errored")
	}
}

// TestEmptyBatch: an empty mutation batch is accepted as a no-op — it
// counts as a batch, triggers nothing, and flushNow with an empty buffer
// builds nothing.
func TestEmptyBatch(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(10), Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	ack, err := p.Apply(nil, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 0 || ack.Pending != 0 || ack.Flushed {
		t.Fatalf("empty-batch ack = %+v", ack)
	}
	if sink.count() != 0 {
		t.Fatal("empty batch materialized")
	}
	st := p.Stats()
	if st.Batches != 1 || st.Mutations != 0 || st.Flushes != 0 {
		t.Fatalf("stats after empty batch = %+v", st)
	}
}

// TestDuplicateSlotCoalescingOrder: repeated rewrites of one slot must
// leave exactly the last write in the flush, regardless of how the writes
// were split across batches.
func TestDuplicateSlotCoalescingOrder(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(10), Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	writes := []model.Edge{edge(1, 2), edge(3, 4), edge(5, 6), edge(7, 8)}
	for _, e := range writes[:2] {
		if _, err := p.Apply([]Mutation{{Slot: 4, Edge: e}}, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Apply([]Mutation{{Slot: 4, Edge: writes[2]}, {Slot: 4, Edge: writes[3]}}, 0, true); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 || len(sink.flushes[0]) != 1 {
		t.Fatalf("flushes = %+v, want one single-mutation flush", sink.flushes)
	}
	if got := sink.flushes[0][0]; got.Slot != 4 || got.Edge != writes[3] {
		t.Fatalf("flushed %+v, want last write %v", got, writes[3])
	}
	if st := p.Stats(); st.Coalesced != 3 {
		t.Fatalf("coalesced = %d, want 3", st.Coalesced)
	}
}

// TestCancelOutAddRemovePairs: an add_edge followed by a remove_edge of the
// same endpoint pair nets to nothing; a flush of only cancelled pairs
// builds no snapshot.
func TestCancelOutAddRemovePairs(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(10), Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{
		{Op: AddEdge, Edge: edge(8, 9)},
		{Op: AddEdge, Edge: edge(2, 3)},
		{Op: RemoveEdge, Edge: edge(8, 9)},
	}
	ack, err := p.Apply(muts, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 3 || ack.Pending != 1 {
		t.Fatalf("ack = %+v, want the cancelled pair gone and one add pending", ack)
	}
	st := p.Stats()
	if st.Cancelled != 1 || st.EdgeAdds != 2 || st.EdgeRemoves != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Cancel the surviving add too: the buffer empties, and a manual flush
	// has nothing to build.
	if _, err := p.Apply([]Mutation{{Op: RemoveEdge, Edge: edge(2, 3)}}, 0, false); err != nil {
		t.Fatal(err)
	}
	if res, err := p.Flush(); err != nil || res.Built {
		t.Fatalf("flush of fully-cancelled buffer = %+v, %v", res, err)
	}
	if sink.count() != 0 {
		t.Fatal("cancelled pairs reached the materializer")
	}
	// Remove-then-add is last-op-wins: the add survives.
	if _, err := p.Apply([]Mutation{{Op: RemoveEdge, Edge: edge(5, 5)}, {Op: AddEdge, Edge: edge(5, 5)}}, 0, true); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 || len(sink.flushes[0]) != 1 || sink.flushes[0][0].Op != AddEdge {
		t.Fatalf("remove-then-add flush = %+v, want the add to win", sink.flushes)
	}
}

// TestStructuralFlushOrder: a mixed flush is ordered rewrites → removes →
// adds → vertex growth, so slot-addressed ops never see shifted slots.
func TestStructuralFlushOrder(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(10), Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{
		{Op: AddVertex, Vertex: 40},
		{Op: AddEdge, Edge: edge(6, 7)},
		{Op: Rewrite, Slot: 9, Edge: edge(0, 1)},
		{Op: RemoveEdge, Edge: edge(3, 3)},
		{Op: Rewrite, Slot: 2, Edge: edge(1, 0)},
	}
	if _, err := p.Apply(muts, 0, true); err != nil {
		t.Fatal(err)
	}
	got := sink.flushes[0]
	wantOps := []Op{Rewrite, Rewrite, RemoveEdge, AddEdge, AddVertex}
	if len(got) != len(wantOps) {
		t.Fatalf("flushed %d mutations, want %d", len(got), len(wantOps))
	}
	for i, op := range wantOps {
		if got[i].Op != op {
			t.Fatalf("flush[%d].Op = %v, want %v", i, got[i].Op, op)
		}
	}
	if got[0].Slot != 2 || got[1].Slot != 9 {
		t.Fatalf("rewrites not slot-ordered: %+v", got[:2])
	}
}

// TestAdmissionControlSheds: with MaxPending set, a batch arriving against
// a full buffer is shed atomically with ErrSaturated, and a flush reopens
// admission.
func TestAdmissionControlSheds(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(100), MaxPending: 2, Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Slot: 1, Edge: edge(1, 2)}, {Slot: 2, Edge: edge(2, 3)}}, 0, false); err != nil {
		t.Fatal(err)
	}
	ack, err := p.Apply([]Mutation{{Slot: 3, Edge: edge(3, 4)}}, 0, false)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if ack.Pending != 2 {
		t.Fatalf("shed ack = %+v, want pending 2", ack)
	}
	st := p.Stats()
	if st.Shed != 1 || st.Pending != 2 || st.Mutations != 2 {
		t.Fatalf("stats = %+v, want the shed batch unbuffered", st)
	}
	if _, err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Slot: 3, Edge: edge(3, 4)}}, 0, false); err != nil {
		t.Fatalf("apply after drain = %v", err)
	}
}

// TestFlushTriggerRace: concurrent appliers racing a short age window and
// the count trigger must never double-materialize a mutation — every
// distinct key reaches the sink exactly once across all flushes.
func TestFlushTriggerRace(t *testing.T) {
	sink := &recordingSink{}
	p, err := New(Config{Slots: slots(10000), MaxBatch: 8, Window: time.Millisecond, Materialize: sink.materialize})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				slot := g*perG + i
				if _, err := p.Apply([]Mutation{{Slot: slot, Edge: edge(slot, slot+1)}}, 0, false); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	sink.mu.Lock()
	for _, flush := range sink.flushes {
		for _, m := range flush {
			seen[m.Slot]++
		}
	}
	sink.mu.Unlock()
	if len(seen) != goroutines*perG {
		t.Fatalf("sink saw %d distinct slots, want %d", len(seen), goroutines*perG)
	}
	for slot, n := range seen {
		if n != 1 {
			t.Fatalf("slot %d materialized %d times", slot, n)
		}
	}
	st := p.Stats()
	if st.Pending != 0 || st.Mutations != goroutines*perG {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFlushSpanAndOrigin: the first batch buffered into an empty window
// owns the window — the flush span is parented to its span context, the
// Observe callback carries its origin, and a successful flush resets the
// window so the next batch opens a new one.
func TestFlushSpanAndOrigin(t *testing.T) {
	sink := &recordingSink{}
	tr := span.New(span.Config{Capacity: 64})
	var origins []Origin
	p, err := New(Config{
		Slots:       slots(100),
		Materialize: sink.materialize,
		Tracer:      tr,
		Observe: func(trigger string, d time.Duration, batch int, res Result, o Origin) {
			origins = append(origins, o)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.StartSpan(span.Context{}, "http.request")
	first := Origin{Span: root.Context(), RequestID: "req-1"}
	if _, err := p.ApplyFrom(first, []Mutation{{Slot: 1, Edge: edge(1, 2)}}, 0, false); err != nil {
		t.Fatal(err)
	}
	// A later batch in the same window does not displace the origin.
	second := Origin{RequestID: "req-2"}
	if _, err := p.ApplyFrom(second, []Mutation{{Slot: 2, Edge: edge(2, 3)}}, 0, true); err != nil {
		t.Fatal(err)
	}
	if len(origins) != 1 || origins[0] != first {
		t.Fatalf("observed origins = %+v, want [%+v]", origins, first)
	}
	spans := tr.Spans(root.TraceID())
	if len(spans) != 1 || spans[0].Name != "ingest.flush" {
		t.Fatalf("trace spans = %+v, want one ingest.flush", spans)
	}
	if spans[0].Parent != root.Context().Span {
		t.Fatal("flush span not parented to the window origin")
	}
	if a, ok := spans[0].Attr("trigger"); !ok || a.Value() != "manual" {
		t.Fatalf("trigger attr = %+v", a)
	}
	// The window reset: the next flush is attributed to req-2's successor.
	if _, err := p.ApplyFrom(second, []Mutation{{Slot: 3, Edge: edge(3, 4)}}, 0, true); err != nil {
		t.Fatal(err)
	}
	if len(origins) != 2 || origins[1] != second {
		t.Fatalf("second window origin = %+v, want %+v", origins[len(origins)-1], second)
	}
}
