// Package ingest is the streaming delta-ingestion pipeline for evolving
// graphs: instead of re-shipping the full edge list per version (the
// AddSnapshot path, O(|E|) per snapshot), callers stream small edge
// mutation batches. The pipeline coalesces them in a bounded per-key
// buffer — last op wins per key, and an add-then-remove of the same edge
// cancels to nothing — and materializes one overlay snapshot per flush, so
// snapshot cost is O(|delta|) and unchanged partitions stay pointer-shared
// across the series (the Fig. 5 incremental global table).
//
// Mutations come in two families. Rewrite keeps the §3.2.1 slot-rewrite
// semantics: the edge occupying an existing slot is replaced in place, and
// rewrites coalesce per slot. The structural ops change the graph's shape:
// AddEdge appends a new edge slot, RemoveEdge deletes one edge matching a
// (src, dst) pair, and AddVertex grows the vertex space — these coalesce
// per edge endpoint pair (or per vertex), so the buffer holds the net
// structural intent of a batch window, not its history.
//
// Flushes trigger three ways: the buffer reaching MaxBatch distinct keys
// (count trigger), the oldest buffered mutation aging past Window (age
// trigger, on a timer), or an explicit Flush (manual trigger, also used by
// a batch's Flush flag). When MaxPending is set, Apply sheds whole batches
// with ErrSaturated once the buffer is at the cap, so a slow materializer
// surfaces as backpressure instead of unbounded memory. Materialization
// itself — applying the coalesced ops to the authoritative edge list,
// diffing only the touched slots, and building the overlay — is delegated
// to the Materialize callback, so the pipeline stays free of storage and
// engine dependencies.
package ingest

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cgraph/internal/span"
	"cgraph/model"
)

// ErrSaturated is returned (wrapped) by Apply when Config.MaxPending is set
// and the coalescing buffer is full; the batch was shed, nothing was
// buffered, and the caller should retry after a flush drains the buffer.
var ErrSaturated = errors.New("ingest: coalescing buffer saturated")

// Op is the kind of one edge mutation.
type Op uint8

const (
	// Rewrite replaces the edge occupying an existing slot of the current
	// list, keeping slot count and chunk boundaries stable.
	Rewrite Op = iota
	// AddEdge appends a new edge slot (the vertex space grows to cover its
	// endpoints).
	AddEdge
	// RemoveEdge deletes one edge whose (Src, Dst) match Edge's; weight is
	// ignored. Removing an absent edge is a counted no-op.
	RemoveEdge
	// AddVertex grows the vertex space to include Vertex, without edges.
	AddVertex
)

// String names the op as it appears on the wire.
func (o Op) String() string {
	switch o {
	case Rewrite:
		return "rewrite"
	case AddEdge:
		return "add_edge"
	case RemoveEdge:
		return "remove_edge"
	case AddVertex:
		return "add_vertex"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mutation is one edge mutation. Slot is meaningful for Rewrite, Edge for
// Rewrite/AddEdge/RemoveEdge, Vertex for AddVertex.
type Mutation struct {
	Op     Op
	Slot   int
	Edge   model.Edge
	Vertex model.VertexID
}

// key identifies a mutation's coalescing bucket: rewrites coalesce per
// slot, structural edge ops per (src, dst) endpoint pair, vertex adds per
// vertex. Last op wins within a bucket, except that a RemoveEdge landing
// on a buffered AddEdge of the same pair cancels both.
type key struct {
	kind uint8
	a, b uint32
}

func keyOf(m Mutation) key {
	switch m.Op {
	case Rewrite:
		return key{kind: 0, a: uint32(m.Slot)}
	case AddVertex:
		return key{kind: 2, a: uint32(m.Vertex)}
	default:
		return key{kind: 1, a: uint32(m.Edge.Src), b: uint32(m.Edge.Dst)}
	}
}

// opRank orders a flushed batch: in-place rewrites first (their slots are
// valid against the pre-batch layout), then removes, then adds, then
// vertex growth — so slot indices never shift under an op that uses them.
func opRank(o Op) int {
	switch o {
	case Rewrite:
		return 0
	case RemoveEdge:
		return 1
	case AddEdge:
		return 2
	default:
		return 3
	}
}

// Origin identifies the request that opened a batch window: the span
// context and request ID of the first batch buffered since the last
// flush. A flush's span is parented to its window's origin, and the
// origin's request ID rides along on the flush observation so log lines
// can be joined back to the request that caused them.
type Origin struct {
	Span      span.Context
	RequestID string
}

// Result reports one materialized flush.
type Result struct {
	// Built is false when every buffered op was a no-op (rewrote the edge
	// already in place, removed an absent edge), in which case no snapshot
	// was added.
	Built bool
	// Timestamp is the new snapshot's timestamp (when Built).
	Timestamp int64
	// Applied counts the slots whose edges actually changed.
	Applied int
	// Rebuilt and Shared split the snapshot's partitions into rebuilt ones
	// and ones pointer-shared with the previous snapshot.
	Rebuilt int
	Shared  int
	// Misses counts removes of absent edges and rewrites of slots that
	// vanished under a structural remove (both no-ops).
	Misses int
}

// Config tunes a Pipeline.
type Config struct {
	// Slots reports the current number of edge slots; Rewrite mutations
	// are validated against it on arrival. Required. It is called without
	// pipeline locks held, so it may take the materializer's own locks.
	Slots func() int
	// MaxBatch flushes when the buffer holds that many distinct keys
	// (default 256).
	MaxBatch int
	// MaxPending, when positive, caps the coalescing buffer: an Apply
	// whose batch would grow the buffer beyond the cap is shed with
	// ErrSaturated instead of buffering unboundedly (batches count by
	// mutation record, conservatively ignoring coalescing). Zero disables
	// admission control.
	MaxPending int
	// Window flushes the buffer once its oldest mutation is that old; 0
	// disables the age trigger (count and manual triggers only).
	Window time.Duration
	// Materialize applies one coalesced batch (rewrites by ascending slot,
	// then removes, adds, and vertex growth) and builds the overlay
	// snapshot. minTS is the lowest acceptable snapshot timestamp (0 when
	// no batch requested one). sc is the flush span's context, for
	// parenting a materialize span (zero when tracing is off). Required.
	Materialize func(muts []Mutation, minTS int64, sc span.Context) (Result, error)
	// Observe, when set, is called after every flush attempt with the
	// trigger ("manual", "count", "age"), the wall-clock materialize
	// latency, the coalesced batch size, the result (zero-valued when
	// the materialization failed), and the origin of the flushed window.
	// It runs with the pipeline lock held, so it must be fast and must
	// not call back into the pipeline.
	Observe func(trigger string, d time.Duration, batch int, res Result, o Origin)
	// Tracer, when set, records one "ingest.flush" span per flush attempt,
	// parented to the window's origin span.
	Tracer *span.Tracer
}

// Stats is a point-in-time snapshot of the pipeline's counters.
type Stats struct {
	// Batches counts accepted Apply calls; Mutations the accepted mutation
	// records; Coalesced how many of those were superseded in the buffer
	// before a flush (a later op on an already-pending key).
	Batches   int64
	Mutations int64
	Coalesced int64
	// Accepted mutation records by op.
	Rewrites    int64
	EdgeAdds    int64
	EdgeRemoves int64
	VertexAdds  int64
	// Cancelled counts add/remove pairs of the same edge that annihilated
	// in the buffer (each pair removes two records from the flush).
	Cancelled int64
	// Shed counts whole batches rejected by the MaxPending admission cap.
	Shed int64
	// Flushes counts materializations by trigger.
	Flushes       int64
	CountFlushes  int64
	AgeFlushes    int64
	ManualFlushes int64
	// Failures counts flushes whose materialization errored; the buffer is
	// kept and retried on the next trigger.
	Failures int64
	// SnapshotsBuilt counts flushes that produced a snapshot (a flush of
	// nothing but no-op rewrites builds none).
	SnapshotsBuilt int64
	// Applied sums the slots actually changed across built snapshots;
	// PartsRebuilt/PartsShared sum the overlay split, so
	// PartsShared/(PartsShared+PartsRebuilt) is the shared-partition ratio
	// the incremental store achieves. Misses sums removes of absent edges
	// (and rewrites of vanished slots) across flushes.
	Applied      int64
	PartsRebuilt int64
	PartsShared  int64
	Misses       int64
	// Pending is the current buffer size (distinct keys).
	Pending int
	// LastTimestamp is the newest materialized snapshot's timestamp.
	LastTimestamp int64
}

// SharedRatio is PartsShared over all partitions of built snapshots (1 when
// nothing was built yet: an empty series shares everything trivially).
func (s Stats) SharedRatio() float64 {
	total := s.PartsShared + s.PartsRebuilt
	if total == 0 {
		return 1
	}
	return float64(s.PartsShared) / float64(total)
}

// Ack confirms one accepted batch.
type Ack struct {
	// Accepted is the number of mutations taken from this batch; Pending
	// the buffer size after it (0 if the batch flushed).
	Accepted int
	Pending  int
	// Flushed reports whether this Apply materialized a snapshot (count
	// trigger or the batch's flush request); Timestamp is its timestamp.
	Flushed   bool
	Timestamp int64
}

// Pipeline coalesces mutation batches and materializes overlay snapshots.
// Safe for concurrent use; flushes are serialized.
type Pipeline struct {
	cfg Config

	mu sync.Mutex
	// pending coalesces buffered mutations per key (last op wins, add+
	// remove pairs cancel); minTS is the highest snapshot timestamp
	// requested by any buffered batch.
	pending map[key]Mutation
	minTS   int64
	// origin is the first batch origin buffered since the last successful
	// flush — the request the current window's flush will be attributed to.
	origin Origin
	timer  *time.Timer
	closed bool
	stats  Stats
}

// New builds a pipeline. Config.Slots and Config.Materialize are required.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Slots == nil {
		return nil, fmt.Errorf("ingest: Config.Slots is required")
	}
	if cfg.Materialize == nil {
		return nil, fmt.Errorf("ingest: Config.Materialize is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	return &Pipeline{cfg: cfg, pending: make(map[key]Mutation)}, nil
}

// countOpLocked attributes one accepted mutation record to its op counter.
func (p *Pipeline) countOpLocked(o Op) {
	switch o {
	case Rewrite:
		p.stats.Rewrites++
	case AddEdge:
		p.stats.EdgeAdds++
	case RemoveEdge:
		p.stats.EdgeRemoves++
	case AddVertex:
		p.stats.VertexAdds++
	}
}

// Apply buffers one mutation batch. The whole batch is validated before any
// of it is buffered, so a bad slot or op rejects the batch atomically, and
// admission control sheds the whole batch with ErrSaturated when the buffer
// is at its cap. minTS, when positive, is the lowest timestamp acceptable
// for the snapshot that will include this batch. flushNow forces
// materialization after buffering; otherwise the count trigger decides.
// When a triggered flush fails, the error is returned but the batch (and
// the rest of the buffer) stays retained — the returned Ack's
// Accepted/Pending report that — and the age timer re-arms so the window
// keeps retrying.
func (p *Pipeline) Apply(muts []Mutation, minTS int64, flushNow bool) (Ack, error) {
	return p.ApplyFrom(Origin{}, muts, minTS, flushNow)
}

// ApplyFrom is Apply with the batch's origin: the first origin buffered
// into an empty window becomes the window's, so the eventual flush span
// and observation are attributed to the request that opened the window.
func (p *Pipeline) ApplyFrom(o Origin, muts []Mutation, minTS int64, flushNow bool) (Ack, error) {
	slots := p.cfg.Slots()
	for _, m := range muts {
		switch m.Op {
		case Rewrite:
			if m.Slot < 0 || m.Slot >= slots {
				return Ack{}, fmt.Errorf("ingest: slot %d out of range [0,%d)", m.Slot, slots)
			}
		case AddEdge, RemoveEdge, AddVertex:
		default:
			return Ack{}, fmt.Errorf("ingest: unsupported mutation op %d", m.Op)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Ack{}, fmt.Errorf("ingest: pipeline closed")
	}
	if p.cfg.MaxPending > 0 && len(muts) > 0 && len(p.pending)+len(muts) > p.cfg.MaxPending {
		p.stats.Shed++
		return Ack{Pending: len(p.pending)}, fmt.Errorf(
			"%w: %d pending + %d incoming exceeds cap %d; retry after a flush",
			ErrSaturated, len(p.pending), len(muts), p.cfg.MaxPending)
	}
	if p.origin == (Origin{}) {
		p.origin = o
	}
	for _, m := range muts {
		k := keyOf(m)
		p.countOpLocked(m.Op)
		if prev, dup := p.pending[k]; dup {
			if prev.Op == AddEdge && m.Op == RemoveEdge {
				// The buffered add never materialized, so adding then
				// removing the same edge nets to nothing.
				delete(p.pending, k)
				p.stats.Cancelled++
				continue
			}
			p.stats.Coalesced++
		}
		p.pending[k] = m
	}
	p.stats.Batches++
	p.stats.Mutations += int64(len(muts))
	if minTS > p.minTS {
		p.minTS = minTS
	}
	ack := Ack{Accepted: len(muts)}

	var trigger *int64
	switch {
	case flushNow && len(p.pending) > 0:
		trigger = &p.stats.ManualFlushes
	case len(p.pending) >= p.cfg.MaxBatch:
		trigger = &p.stats.CountFlushes
	}
	if trigger != nil {
		res, err := p.flushLocked(trigger)
		if err != nil {
			// The batch is buffered and retried by the next trigger (the
			// age timer was re-armed by flushLocked).
			ack.Pending = len(p.pending)
			return ack, err
		}
		ack.Flushed, ack.Timestamp = res.Built, res.Timestamp
	}
	p.armTimerLocked()
	ack.Pending = len(p.pending)
	return ack, nil
}

// Flush materializes the buffer now (manual trigger). With an empty buffer
// it is a no-op reporting Built false.
func (p *Pipeline) Flush() (Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pending) == 0 {
		return Result{}, nil
	}
	return p.flushLocked(&p.stats.ManualFlushes)
}

// armTimerLocked schedules the age-trigger flush whenever the buffer is
// non-empty and no timer is already pending; it no-ops otherwise, so every
// path that can leave mutations buffered (first enqueue, a failed flush)
// just calls it.
func (p *Pipeline) armTimerLocked() {
	if p.cfg.Window <= 0 || p.timer != nil || p.closed || len(p.pending) == 0 {
		return
	}
	p.timer = time.AfterFunc(p.cfg.Window, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.timer = nil
		if p.closed || len(p.pending) == 0 {
			return
		}
		// Errors here have no caller to land on: flushLocked counts the
		// failure, keeps the buffer, and re-arms this timer to retry.
		p.flushLocked(&p.stats.AgeFlushes)
	})
}

// flushLocked materializes the buffered mutations: ordered by op class
// (rewrites by ascending slot, then removes, adds, and vertex growth, each
// sorted for determinism), handed to the Materialize callback, and — on
// success — the buffer resets and the age timer disarms. On failure the
// buffer is kept for the next trigger and the age timer re-arms so the
// retry does not depend on further traffic.
func (p *Pipeline) flushLocked(trigger *int64) (Result, error) {
	muts := make([]Mutation, 0, len(p.pending))
	for _, m := range p.pending {
		muts = append(muts, m)
	}
	sort.Slice(muts, func(i, j int) bool {
		a, b := muts[i], muts[j]
		if ra, rb := opRank(a.Op), opRank(b.Op); ra != rb {
			return ra < rb
		}
		switch a.Op {
		case Rewrite:
			return a.Slot < b.Slot
		case AddVertex:
			return a.Vertex < b.Vertex
		default:
			if a.Edge.Src != b.Edge.Src {
				return a.Edge.Src < b.Edge.Src
			}
			return a.Edge.Dst < b.Edge.Dst
		}
	})
	p.stats.Flushes++
	*trigger++
	o := p.origin
	sp := p.cfg.Tracer.StartSpan(o.Span, "ingest.flush")
	sp.Attr(span.Str("trigger", p.triggerName(trigger)), span.Int("batch", int64(len(muts))))
	start := time.Now()
	res, err := p.cfg.Materialize(muts, p.minTS, sp.Context())
	sp.Attr(span.Bool("built", res.Built), span.Bool("failed", err != nil))
	sp.End()
	if p.cfg.Observe != nil {
		p.cfg.Observe(p.triggerName(trigger), time.Since(start), len(muts), res, o)
	}
	if err != nil {
		p.stats.Failures++
		p.armTimerLocked()
		return Result{}, fmt.Errorf("ingest: materialize: %w", err)
	}
	clear(p.pending)
	p.minTS = 0
	p.origin = Origin{}
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	p.stats.Misses += int64(res.Misses)
	if res.Built {
		p.stats.SnapshotsBuilt++
		p.stats.Applied += int64(res.Applied)
		p.stats.PartsRebuilt += int64(res.Rebuilt)
		p.stats.PartsShared += int64(res.Shared)
		p.stats.LastTimestamp = res.Timestamp
	}
	return res, nil
}

// triggerName maps a flush-trigger counter to its exposition label.
func (p *Pipeline) triggerName(trigger *int64) string {
	switch trigger {
	case &p.stats.ManualFlushes:
		return "manual"
	case &p.stats.CountFlushes:
		return "count"
	case &p.stats.AgeFlushes:
		return "age"
	}
	return "unknown"
}

// Stats reports the pipeline's counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Pending = len(p.pending)
	return s
}

// Close flushes any buffered mutations and stops the age timer; further
// Apply calls fail. The flush error, if any, is returned (the mutations are
// dropped regardless — the pipeline is closing).
func (p *Pipeline) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	var err error
	if len(p.pending) > 0 {
		_, err = p.flushLocked(&p.stats.ManualFlushes)
	}
	p.closed = true
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	return err
}
