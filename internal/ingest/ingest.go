// Package ingest is the streaming delta-ingestion pipeline for evolving
// graphs: instead of re-shipping the full edge list per version (the
// AddSnapshot path, O(|E|) per snapshot), callers stream small edge
// mutation batches. The pipeline coalesces them in a bounded per-slot
// buffer — last writer wins — and materializes one overlay snapshot per
// flush, so snapshot cost is O(|delta|) and unchanged partitions stay
// pointer-shared across the series (the Fig. 5 incremental global table).
//
// Flushes trigger three ways: the buffer reaching MaxBatch distinct slots
// (count trigger), the oldest buffered mutation aging past Window (age
// trigger, on a timer), or an explicit Flush (manual trigger, also used by
// a batch's Flush flag). Materialization itself — applying the coalesced
// writes to the authoritative edge list, diffing only the touched slots,
// and building the overlay — is delegated to the Materialize callback, so
// the pipeline stays free of storage and engine dependencies.
package ingest

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cgraph/model"
)

// Op is the kind of one edge mutation. Only slot rewrites exist today; the
// enum (and the wire shape mirroring it) leaves room for structural adds
// and removes once partition chunking can grow.
type Op uint8

const (
	// Rewrite replaces the edge occupying an existing slot of the base
	// list, keeping slot count and chunk boundaries stable.
	Rewrite Op = iota
)

// Mutation is one edge mutation: op, target slot, and the new edge.
type Mutation struct {
	Op   Op
	Slot int
	Edge model.Edge
}

// Result reports one materialized flush.
type Result struct {
	// Built is false when every buffered write was a no-op (rewrote the
	// edge already in place), in which case no snapshot was added.
	Built bool
	// Timestamp is the new snapshot's timestamp (when Built).
	Timestamp int64
	// Applied counts the slots whose edges actually changed.
	Applied int
	// Rebuilt and Shared split the snapshot's partitions into rebuilt ones
	// and ones pointer-shared with the previous snapshot.
	Rebuilt int
	Shared  int
}

// Config tunes a Pipeline.
type Config struct {
	// Slots is the number of edge slots in the base list; mutations are
	// validated against it on arrival. Required.
	Slots int
	// MaxBatch flushes when the buffer holds that many distinct slots
	// (default 256).
	MaxBatch int
	// Window flushes the buffer once its oldest mutation is that old; 0
	// disables the age trigger (count and manual triggers only).
	Window time.Duration
	// Materialize applies one coalesced batch (ascending slot order) and
	// builds the overlay snapshot. minTS is the lowest acceptable snapshot
	// timestamp (0 when no batch requested one). Required.
	Materialize func(muts []Mutation, minTS int64) (Result, error)
}

// Stats is a point-in-time snapshot of the pipeline's counters.
type Stats struct {
	// Batches counts accepted Apply calls; Mutations the accepted mutation
	// records; Coalesced how many of those were superseded in the buffer
	// before a flush (rewrites of an already-pending slot).
	Batches   int64
	Mutations int64
	Coalesced int64
	// Flushes counts materializations by trigger.
	Flushes       int64
	CountFlushes  int64
	AgeFlushes    int64
	ManualFlushes int64
	// Failures counts flushes whose materialization errored; the buffer is
	// kept and retried on the next trigger.
	Failures int64
	// SnapshotsBuilt counts flushes that produced a snapshot (a flush of
	// nothing but no-op rewrites builds none).
	SnapshotsBuilt int64
	// Applied sums the slots actually changed across built snapshots;
	// PartsRebuilt/PartsShared sum the overlay split, so
	// PartsShared/(PartsShared+PartsRebuilt) is the shared-partition ratio
	// the incremental store achieves.
	Applied      int64
	PartsRebuilt int64
	PartsShared  int64
	// Pending is the current buffer size (distinct slots).
	Pending int
	// LastTimestamp is the newest materialized snapshot's timestamp.
	LastTimestamp int64
}

// SharedRatio is PartsShared over all partitions of built snapshots (1 when
// nothing was built yet: an empty series shares everything trivially).
func (s Stats) SharedRatio() float64 {
	total := s.PartsShared + s.PartsRebuilt
	if total == 0 {
		return 1
	}
	return float64(s.PartsShared) / float64(total)
}

// Ack confirms one accepted batch.
type Ack struct {
	// Accepted is the number of mutations taken from this batch; Pending
	// the buffer size after it (0 if the batch flushed).
	Accepted int
	Pending  int
	// Flushed reports whether this Apply materialized a snapshot (count
	// trigger or the batch's flush request); Timestamp is its timestamp.
	Flushed   bool
	Timestamp int64
}

// Pipeline coalesces mutation batches and materializes overlay snapshots.
// Safe for concurrent use; flushes are serialized.
type Pipeline struct {
	cfg Config

	mu sync.Mutex
	// pending coalesces buffered mutations per slot (last writer wins);
	// minTS is the highest snapshot timestamp requested by any buffered
	// batch; oldest is when the buffer went non-empty (age trigger).
	pending map[int]Mutation
	minTS   int64
	timer   *time.Timer
	closed  bool
	stats   Stats
}

// New builds a pipeline. Config.Slots and Config.Materialize are required.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("ingest: Config.Slots must be positive, got %d", cfg.Slots)
	}
	if cfg.Materialize == nil {
		return nil, fmt.Errorf("ingest: Config.Materialize is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	return &Pipeline{cfg: cfg, pending: make(map[int]Mutation)}, nil
}

// Apply buffers one mutation batch. The whole batch is validated before any
// of it is buffered, so a bad slot rejects the batch atomically. minTS,
// when positive, is the lowest timestamp acceptable for the snapshot that
// will include this batch. flushNow forces materialization after buffering;
// otherwise the count trigger decides. When a triggered flush fails, the
// error is returned but the batch (and the rest of the buffer) stays
// retained — the returned Ack's Accepted/Pending report that — and the age
// timer re-arms so the window keeps retrying.
func (p *Pipeline) Apply(muts []Mutation, minTS int64, flushNow bool) (Ack, error) {
	for _, m := range muts {
		if m.Op != Rewrite {
			return Ack{}, fmt.Errorf("ingest: unsupported mutation op %d", m.Op)
		}
		if m.Slot < 0 || m.Slot >= p.cfg.Slots {
			return Ack{}, fmt.Errorf("ingest: slot %d out of range [0,%d)", m.Slot, p.cfg.Slots)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Ack{}, fmt.Errorf("ingest: pipeline closed")
	}
	for _, m := range muts {
		if _, dup := p.pending[m.Slot]; dup {
			p.stats.Coalesced++
		}
		p.pending[m.Slot] = m
	}
	p.stats.Batches++
	p.stats.Mutations += int64(len(muts))
	if minTS > p.minTS {
		p.minTS = minTS
	}
	ack := Ack{Accepted: len(muts)}

	var trigger *int64
	switch {
	case flushNow && len(p.pending) > 0:
		trigger = &p.stats.ManualFlushes
	case len(p.pending) >= p.cfg.MaxBatch:
		trigger = &p.stats.CountFlushes
	}
	if trigger != nil {
		res, err := p.flushLocked(trigger)
		if err != nil {
			// The batch is buffered and retried by the next trigger (the
			// age timer was re-armed by flushLocked).
			ack.Pending = len(p.pending)
			return ack, err
		}
		ack.Flushed, ack.Timestamp = res.Built, res.Timestamp
	}
	p.armTimerLocked()
	ack.Pending = len(p.pending)
	return ack, nil
}

// Flush materializes the buffer now (manual trigger). With an empty buffer
// it is a no-op reporting Built false.
func (p *Pipeline) Flush() (Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pending) == 0 {
		return Result{}, nil
	}
	return p.flushLocked(&p.stats.ManualFlushes)
}

// armTimerLocked schedules the age-trigger flush whenever the buffer is
// non-empty and no timer is already pending; it no-ops otherwise, so every
// path that can leave mutations buffered (first enqueue, a failed flush)
// just calls it.
func (p *Pipeline) armTimerLocked() {
	if p.cfg.Window <= 0 || p.timer != nil || p.closed || len(p.pending) == 0 {
		return
	}
	p.timer = time.AfterFunc(p.cfg.Window, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.timer = nil
		if p.closed || len(p.pending) == 0 {
			return
		}
		// Errors here have no caller to land on: flushLocked counts the
		// failure, keeps the buffer, and re-arms this timer to retry.
		p.flushLocked(&p.stats.AgeFlushes)
	})
}

// flushLocked materializes the buffered mutations: sorted ascending by slot
// for deterministic application, handed to the Materialize callback, and —
// on success — the buffer resets and the age timer disarms. On failure the
// buffer is kept for the next trigger and the age timer re-arms so the
// retry does not depend on further traffic.
func (p *Pipeline) flushLocked(trigger *int64) (Result, error) {
	muts := make([]Mutation, 0, len(p.pending))
	for _, m := range p.pending {
		muts = append(muts, m)
	}
	sort.Slice(muts, func(i, j int) bool { return muts[i].Slot < muts[j].Slot })
	p.stats.Flushes++
	*trigger++
	res, err := p.cfg.Materialize(muts, p.minTS)
	if err != nil {
		p.stats.Failures++
		p.armTimerLocked()
		return Result{}, fmt.Errorf("ingest: materialize: %w", err)
	}
	clear(p.pending)
	p.minTS = 0
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	if res.Built {
		p.stats.SnapshotsBuilt++
		p.stats.Applied += int64(res.Applied)
		p.stats.PartsRebuilt += int64(res.Rebuilt)
		p.stats.PartsShared += int64(res.Shared)
		p.stats.LastTimestamp = res.Timestamp
	}
	return res, nil
}

// Stats reports the pipeline's counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Pending = len(p.pending)
	return s
}

// Close flushes any buffered mutations and stops the age timer; further
// Apply calls fail. The flush error, if any, is returned (the mutations are
// dropped regardless — the pipeline is closing).
func (p *Pipeline) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	var err error
	if len(p.pending) > 0 {
		_, err = p.flushLocked(&p.stats.ManualFlushes)
	}
	p.closed = true
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
	return err
}
