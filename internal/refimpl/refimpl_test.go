package refimpl

import (
	"math"
	"testing"

	"cgraph/internal/graph"
	"cgraph/model"
)

// diamond builds the weighted graph
//
//	0 → 1 (w=1)   0 → 2 (w=4)   1 → 2 (w=1)   2 → 3 (w=2)   3 → 0 (w=1)
//
// plus an isolated vertex 4.
func diamond() *graph.Graph {
	return graph.Build(5, []model.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 4},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 2},
		{Src: 3, Dst: 0, Weight: 1},
	})
}

func TestSSSPAndBFSHandmade(t *testing.T) {
	g := diamond()
	dist := SSSP(g, 0)
	wantDist := []float64{0, 1, 2, 4, math.Inf(1)}
	for v, want := range wantDist {
		if dist[v] != want && !(math.IsInf(dist[v], 1) && math.IsInf(want, 1)) {
			t.Fatalf("sssp[%d] = %v, want %v", v, dist[v], want)
		}
	}
	hops := BFS(g, 0)
	wantHops := []float64{0, 1, 1, 2, math.Inf(1)}
	for v, want := range wantHops {
		if hops[v] != want && !(math.IsInf(hops[v], 1) && math.IsInf(want, 1)) {
			t.Fatalf("bfs[%d] = %v, want %v", v, hops[v], want)
		}
	}
}

func TestSSWPHandmade(t *testing.T) {
	g := diamond()
	w := SSWP(g, 0)
	// Widest path 0→2 is direct (width 4); 0→3 bottlenecks at 2.
	want := []float64{math.Inf(1), 1, 4, 2, 0}
	for v := range want {
		if w[v] != want[v] && !(math.IsInf(w[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("sswp[%d] = %v, want %v", v, w[v], want[v])
		}
	}
}

func TestWCCComponents(t *testing.T) {
	g := graph.Build(6, []model.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 2, Dst: 1, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1},
	})
	labels := WCC(g)
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 0 {
		t.Fatalf("component {0,1,2} mislabelled: %v", labels[:3])
	}
	if labels[3] != 3 || labels[4] != 3 {
		t.Fatalf("component {3,4} mislabelled: %v", labels[3:5])
	}
	if !math.IsInf(labels[5], 1) {
		t.Fatalf("isolated vertex label = %v, want +Inf", labels[5])
	}
}

func TestSCCGroups(t *testing.T) {
	// Two cycles bridged by a one-way edge, plus a free vertex.
	g := graph.Build(5, []model.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 0, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
		{Src: 3, Dst: 2, Weight: 1},
	})
	comp := SCC(g)
	if comp[0] != comp[1] || comp[2] != comp[3] {
		t.Fatalf("cycles split: %v", comp)
	}
	if comp[0] == comp[2] || comp[4] == comp[0] || comp[4] == comp[2] {
		t.Fatalf("distinct components merged: %v", comp)
	}
}

func TestKCorePeeling(t *testing.T) {
	// Triangle {0,1,2} with a pendant 3: the 2-core (undirected degree ≥ 2)
	// is exactly the triangle — peeling 3 must not drag 2 out with it.
	g := graph.Build(4, []model.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
	})
	alive := KCore(g, 2)
	want := []bool{true, true, true, false}
	for v := range want {
		if alive[v] != want[v] {
			t.Fatalf("kcore[%d] = %v, want %v", v, alive[v], want[v])
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	g := diamond()
	rank := PageRank(g, 0.85, 1e-12, 5000)
	// Fixed point: rank = (1-d) + d·Σ_in rank(u)/outdeg(u).
	for v := 0; v < g.N; v++ {
		sum := 0.0
		for ei := g.InOff[v]; ei < g.InOff[v+1]; ei++ {
			u := g.InDst[ei]
			sum += rank[u] / float64(g.OutDegree(u))
		}
		want := 0.15 + 0.85*sum
		if math.Abs(rank[v]-want) > 1e-9 {
			t.Fatalf("pagerank[%d] = %v not at fixed point (want %v)", v, rank[v], want)
		}
	}
	if math.Abs(rank[4]-0.15) > 1e-12 {
		t.Fatalf("isolated vertex rank = %v, want 0.15", rank[4])
	}
}

func TestPPRRestartsAtSource(t *testing.T) {
	g := diamond()
	ppr := PPR(g, 0, 0.85, 1e-12, 5000)
	for v := 0; v < g.N; v++ {
		sum := 0.0
		for ei := g.InOff[v]; ei < g.InOff[v+1]; ei++ {
			u := g.InDst[ei]
			sum += ppr[u] / float64(g.OutDegree(u))
		}
		want := 0.85 * sum
		if v == 0 {
			want += 0.15
		}
		if math.Abs(ppr[v]-want) > 1e-9 {
			t.Fatalf("ppr[%d] = %v not at fixed point (want %v)", v, ppr[v], want)
		}
	}
	if ppr[4] != 0 {
		t.Fatalf("mass leaked to isolated vertex: %v", ppr[4])
	}
}

func TestKatzFixedPoint(t *testing.T) {
	g := diamond()
	k := Katz(g, 0.005, 1, 1e-12, 5000)
	for v := 0; v < g.N; v++ {
		sum := 0.0
		for ei := g.InOff[v]; ei < g.InOff[v+1]; ei++ {
			sum += k[g.InDst[ei]]
		}
		if want := 1 + 0.005*sum; math.Abs(k[v]-want) > 1e-9 {
			t.Fatalf("katz[%d] = %v not at fixed point (want %v)", v, k[v], want)
		}
	}
}

func TestHITSNormalization(t *testing.T) {
	g := diamond()
	auth, hub := HITS(g, 30)
	var authSum float64
	for _, a := range auth {
		if a < 0 {
			t.Fatalf("negative authority: %v", auth)
		}
		authSum += a
	}
	if math.Abs(authSum-1) > 1e-9 {
		t.Fatalf("authority L1 mass = %v, want 1", authSum)
	}
	// Vertex 2 has the most (and heaviest-hub) in-links.
	for v, a := range auth {
		if v != 2 && a > auth[2] {
			t.Fatalf("authority[%d]=%v exceeds hub-rich vertex 2 (%v)", v, a, auth[2])
		}
	}
	if len(hub) != g.N {
		t.Fatalf("hub vector length %d", len(hub))
	}
}
