// Package refimpl provides plain, single-threaded reference implementations
// of the benchmark algorithms on the global CSR. They share no code with the
// partitioned engines, so agreement between an engine and refimpl validates
// the whole replica/sync machinery.
package refimpl

import (
	"math"

	"cgraph/internal/graph"
	"cgraph/internal/pqueue"
	"cgraph/model"
)

// PageRank iterates rank = (1-d) + d·Σ_in rank(u)/outdeg(u) with Jacobi
// sweeps until the largest change falls below tol (dangling mass is not
// redistributed, matching the delta-accumulative program).
func PageRank(g *graph.Graph, damping, tol float64, maxIter int) []float64 {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 - damping
	}
	for it := 0; it < maxIter; it++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			for ei := g.InOff[v]; ei < g.InOff[v+1]; ei++ {
				u := g.InDst[ei]
				sum += rank[u] / float64(g.OutDegree(u))
			}
			next[v] = (1 - damping) + damping*sum
		}
		maxDiff := 0.0
		for v := 0; v < n; v++ {
			if d := math.Abs(next[v] - rank[v]); d > maxDiff {
				maxDiff = d
			}
		}
		rank, next = next, rank
		if maxDiff < tol {
			break
		}
	}
	return rank
}

// PPR is personalized PageRank with restart at source:
// rank = (1-d)·1{v=source} + d·Σ_in rank(u)/outdeg(u).
func PPR(g *graph.Graph, source model.VertexID, damping, tol float64, maxIter int) []float64 {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	rank[source] = 1 - damping
	for it := 0; it < maxIter; it++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			for ei := g.InOff[v]; ei < g.InOff[v+1]; ei++ {
				u := g.InDst[ei]
				sum += rank[u] / float64(g.OutDegree(u))
			}
			next[v] = damping * sum
			if v == int(source) {
				next[v] += 1 - damping
			}
		}
		maxDiff := 0.0
		for v := 0; v < n; v++ {
			if d := math.Abs(next[v] - rank[v]); d > maxDiff {
				maxDiff = d
			}
		}
		rank, next = next, rank
		if maxDiff < tol {
			break
		}
	}
	return rank
}

// SSSP runs Dijkstra from source over the out-edge weights.
func SSSP(g *graph.Graph, source model.VertexID) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	type item struct {
		v model.VertexID
		d float64
	}
	h := pqueue.New(func(a, b item) bool { return a.d < b.d })
	h.Push(item{source, 0})
	for h.Len() > 0 {
		it := h.Pop()
		if it.d > dist[it.v] {
			continue
		}
		for ei := g.OutOff[it.v]; ei < g.OutOff[it.v+1]; ei++ {
			w := g.OutDst[ei]
			nd := it.d + float64(g.OutW[ei])
			if nd < dist[w] {
				dist[w] = nd
				h.Push(item{w, nd})
			}
		}
	}
	return dist
}

// BFS returns hop counts from source over out-edges.
func BFS(g *graph.Graph, source model.VertexID) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	queue := []model.VertexID{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for ei := g.OutOff[v]; ei < g.OutOff[v+1]; ei++ {
			w := g.OutDst[ei]
			if math.IsInf(dist[w], 1) {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// WCC labels every vertex with the minimum vertex ID of its weakly connected
// component (union-find). Isolated vertices keep +Inf to match the
// propagation program's init fallback of "never reached"; callers compare
// only vertices with edges.
func WCC(g *graph.Graph) []float64 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for v := 0; v < g.N; v++ {
		for ei := g.OutOff[v]; ei < g.OutOff[v+1]; ei++ {
			union(int32(v), int32(g.OutDst[ei]))
		}
	}
	minOf := make(map[int32]int32)
	for v := 0; v < g.N; v++ {
		r := find(int32(v))
		if m, ok := minOf[r]; !ok || int32(v) < m {
			minOf[r] = int32(v)
		}
	}
	out := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		if g.Degree(model.VertexID(v), model.Both) == 0 {
			out[v] = math.Inf(1)
			continue
		}
		out[v] = float64(minOf[find(int32(v))])
	}
	return out
}

// SCC returns strongly-connected-component labels via iterative Tarjan
// (labels are arbitrary; compare by grouping).
func SCC(g *graph.Graph) []int {
	n := g.N
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int32
	next := int32(0)
	nComp := 0

	type frame struct {
		v  int32
		ei uint64
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		var call []frame
		call = append(call, frame{v: int32(start), ei: g.OutOff[start]})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, int32(start))
		onStack[start] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei < g.OutOff[v+1] {
				w := int32(g.OutDst[f.ei])
				f.ei++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w, ei: g.OutOff[w]})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Pop frame.
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// KCore returns, for each vertex, whether it belongs to the k-core under
// undirected degree (out+in), by iterative peeling.
func KCore(g *graph.Graph, k int) []bool {
	deg := make([]int, g.N)
	alive := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		deg[v] = g.Degree(model.VertexID(v), model.Both)
		alive[v] = true
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.N; v++ {
			if alive[v] && deg[v] < k {
				alive[v] = false
				changed = true
				for ei := g.OutOff[v]; ei < g.OutOff[v+1]; ei++ {
					deg[g.OutDst[ei]]--
				}
				for ei := g.InOff[v]; ei < g.InOff[v+1]; ei++ {
					deg[g.InDst[ei]]--
				}
			}
		}
	}
	return alive
}

// SSWP returns maximum-bottleneck path widths from source (Dijkstra with
// max-min relaxation).
func SSWP(g *graph.Graph, source model.VertexID) []float64 {
	width := make([]float64, g.N)
	width[source] = math.Inf(1)
	type item struct {
		v model.VertexID
		w float64
	}
	h := pqueue.New(func(a, b item) bool { return a.w > b.w })
	h.Push(item{source, math.Inf(1)})
	for h.Len() > 0 {
		it := h.Pop()
		if it.w < width[it.v] {
			continue
		}
		for ei := g.OutOff[it.v]; ei < g.OutOff[it.v+1]; ei++ {
			t := g.OutDst[ei]
			nw := math.Min(it.w, float64(g.OutW[ei]))
			if nw > width[t] {
				width[t] = nw
				h.Push(item{t, nw})
			}
		}
	}
	return width
}

// HITS runs the reference hub/authority power iteration with L1
// normalization per half-step, returning (authority, hub) vectors.
func HITS(g *graph.Graph, rounds int) (auth, hub []float64) {
	n := g.N
	hub = make([]float64, n)
	auth = make([]float64, n)
	for i := range hub {
		hub[i] = 1 / float64(n)
	}
	norm := func(x []float64) bool {
		sum := 0.0
		for _, v := range x {
			sum += math.Abs(v)
		}
		if sum == 0 {
			return false
		}
		for i := range x {
			x[i] /= sum
		}
		return true
	}
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			s := 0.0
			for ei := g.InOff[v]; ei < g.InOff[v+1]; ei++ {
				s += hub[g.InDst[ei]]
			}
			auth[v] = s
		}
		if !norm(auth) {
			break
		}
		for v := 0; v < n; v++ {
			s := 0.0
			for ei := g.OutOff[v]; ei < g.OutOff[v+1]; ei++ {
				s += auth[g.OutDst[ei]]
			}
			hub[v] = s
		}
		if r == rounds-1 {
			break // final hub vector stays unnormalized-harvested like the program
		}
		if !norm(hub) {
			break
		}
	}
	return auth, hub
}

// Katz iterates katz = β + α·Σ_in katz(u) to the fixed point.
func Katz(g *graph.Graph, alpha, beta, tol float64, maxIter int) []float64 {
	n := g.N
	k := make([]float64, n)
	next := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		for v := 0; v < n; v++ {
			s := 0.0
			for ei := g.InOff[v]; ei < g.InOff[v+1]; ei++ {
				s += k[g.InDst[ei]]
			}
			next[v] = beta + alpha*s
		}
		maxDiff := 0.0
		for v := 0; v < n; v++ {
			if d := math.Abs(next[v] - k[v]); d > maxDiff {
				maxDiff = d
			}
		}
		k, next = next, k
		if maxDiff < tol {
			break
		}
	}
	return k
}
