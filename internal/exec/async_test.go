package exec

import (
	"testing"

	"cgraph/algo"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
	"cgraph/model"
)

// runProgramMode drives a job to convergence under the given execution
// mode and checks the replica-consistency invariant.
func runProgramMode(t testing.TB, pg *graph.PGraph, prog model.Program, mode Mode, staleness int) *Job {
	t.Helper()
	j := NewJob(0, prog, pg)
	j.Mode = mode
	j.Staleness = staleness
	if err := RunToConvergence(j, 10000); err != nil {
		t.Fatal(err)
	}
	if err := j.CheckReplicaConsistency(); err != nil {
		t.Fatalf("mode %s: replica consistency: %v", mode, err)
	}
	return j
}

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeBSP, ModeAsync, ModeDelayed} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if m, err := ParseMode(""); err != nil || m != ModeBSP {
		t.Fatalf("ParseMode(\"\") = %v, %v; want bsp default", m, err)
	}
	if _, err := ParseMode("eventual"); err == nil {
		t.Fatal("ParseMode accepted unknown mode")
	}
}

// TestAsyncMonotonicExactParity: for programs with an order-independent
// min accumulator (SSSP, WCC) the fresh-state and delayed paths must land
// on exactly the reference fixed point, at 1 and 4 partitions.
func TestAsyncMonotonicExactParity(t *testing.T) {
	edges, n := testGraph(7)
	for _, parts := range []int{1, 4} {
		pg := buildPG(t, edges, n, parts)
		wantSS := refimpl.SSSP(pg.G, 0)
		wantWCC := refimpl.WCC(pg.G)
		for _, mode := range []Mode{ModeAsync, ModeDelayed} {
			js := runProgramMode(t, pg, algo.NewSSSP(0), mode, 0)
			wantClose(t, "sssp-"+mode.String(), js.Results(), wantSS, 0)
			jw := runProgramMode(t, pg, algo.NewWCC(), mode, 0)
			gotWCC := jw.Results()
			for v := 0; v < n; v++ {
				if pg.G.Degree(model.VertexID(v), model.Both) == 0 {
					continue // isolated vertices stay untouched in both
				}
				if gotWCC[v] != wantWCC[v] {
					t.Fatalf("parts=%d mode=%s: wcc vertex %d: got %v, want %v",
						parts, mode, v, gotWCC[v], wantWCC[v])
				}
			}
		}
	}
}

// TestAsyncPageRankToleranceAndFewerIterations: the additive PageRank
// converges to the reference values within tolerance under async and
// delayed. Async must close in strictly fewer iterations than BSP (the
// point of fresh-state reads); delayed trades extra cheap local
// iterations for fewer merge barriers, so its push count — the global
// synchronizations actually paid — must be strictly below BSP's.
func TestAsyncPageRankToleranceAndFewerIterations(t *testing.T) {
	edges, n := testGraph(3)
	want := refimpl.PageRank(graph.Build(n, edges), 0.85, 1e-12, 2000)
	for _, parts := range []int{1, 4} {
		pg := buildPG(t, edges, n, parts)
		bsp := runProgramMode(t, pg, &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, ModeBSP, 0)
		wantClose(t, "pagerank-bsp", bsp.Results(), want, 1e-6)

		async := runProgramMode(t, pg, &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, ModeAsync, 0)
		wantClose(t, "pagerank-async", async.Results(), want, 1e-6)
		if async.FreshFolds == 0 {
			t.Fatalf("parts=%d: async recorded no fresh folds", parts)
		}
		if async.Iterations >= bsp.Iterations {
			t.Fatalf("parts=%d: async took %d iterations, BSP %d — fresh state should converge faster",
				parts, async.Iterations, bsp.Iterations)
		}

		delayed := runProgramMode(t, pg, &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, ModeDelayed, 0)
		wantClose(t, "pagerank-delayed", delayed.Results(), want, 1e-6)
		if delayed.FreshFolds == 0 {
			t.Fatalf("parts=%d: delayed recorded no fresh folds", parts)
		}
		if delayed.BarriersForced >= int64(bsp.Iterations) {
			t.Fatalf("parts=%d: delayed paid %d merge barriers, BSP %d pushes — staleness should cut synchronizations",
				parts, delayed.BarriersForced, bsp.Iterations)
		}
	}
}

// TestDelayedBarrierAccounting: a delayed multi-partition job must
// actually skip pushes (bounded by staleness) and force barriers, and the
// per-job counters must reconcile with the iteration count.
func TestDelayedBarrierAccounting(t *testing.T) {
	edges, n := testGraph(11)
	pg := buildPG(t, edges, n, 4)
	j := runProgramMode(t, pg, &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, ModeDelayed, 2)
	if j.BarriersSkipped == 0 {
		t.Fatal("delayed job never skipped a barrier")
	}
	if j.BarriersForced == 0 {
		t.Fatal("delayed job never took a merge barrier")
	}
	if got := j.BarriersSkipped + j.BarriersForced; got != int64(j.Iterations) {
		t.Fatalf("skipped(%d) + forced(%d) = %d, want iterations %d",
			j.BarriersSkipped, j.BarriersForced, got, j.Iterations)
	}
}

// TestBSPPathUntouched: the default mode records no fresh-state or
// barrier activity — the BSP path is byte-identical to the pre-mode code.
func TestBSPPathUntouched(t *testing.T) {
	edges, n := testGraph(5)
	pg := buildPG(t, edges, n, 3)
	j := runProgram(t, pg, &algo.PageRank{Damping: 0.85, Epsilon: 1e-8})
	if j.Mode != ModeBSP {
		t.Fatalf("default mode = %v, want bsp", j.Mode)
	}
	if j.FreshFolds != 0 || j.BarriersSkipped != 0 || j.BarriersForced != 0 {
		t.Fatalf("BSP job recorded async counters: fresh=%d skipped=%d forced=%d",
			j.FreshFolds, j.BarriersSkipped, j.BarriersForced)
	}
}
