// Package exec is the job runtime shared by the CGraph engine and every
// baseline: the apply+scatter loop of Algorithm 1 over one partition (in a
// synchronous/BSP variant and a CLIP-style eager-reentry variant) and the
// batched replica synchronization of Algorithm 2. Centralizing the vertex
// arithmetic guarantees that all engines compute identical results and
// differ only in orchestration and data-movement behaviour.
package exec

import (
	"fmt"
	"math"
	"sort"

	"cgraph/internal/bitset"
	"cgraph/internal/graph"
	"cgraph/internal/storage"
	"cgraph/model"
)

// Stats counts the work of one processing call, the input to the simulated
// compute-cost model.
type Stats struct {
	Edges    int64
	Vertices int64
	// Fresh counts contributions folded eagerly into the private table by
	// the fresh-state (async/delayed) path; zero on the BSP path.
	Fresh int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Edges += other.Edges
	s.Vertices += other.Vertices
	s.Fresh += other.Fresh
}

// Job is one running CGP job: a program bound to a snapshot, its private
// table, and its run-time counters.
type Job struct {
	ID   int
	Prog model.Program
	PG   *graph.PGraph
	PT   *storage.PrivateTable
	// Dir caches Prog.Direction() for the current phase.
	Dir model.Direction

	// Mode selects the execution discipline (bsp, async, delayed); see
	// async.go. Staleness bounds delayed-mode barrier skipping (0 means
	// DefaultStaleness; ignored outside ModeDelayed).
	Mode      Mode
	Staleness int

	Iterations int
	Phases     int
	Done       bool

	// SubmitTime/FinishTime are virtual timestamps managed by engines.
	SubmitTime float64
	FinishTime float64

	// DeltaSum[p] accumulates |contribution| scattered into partition p
	// this iteration; it feeds C(P) of the Eq. 1 scheduler.
	DeltaSum []float64

	// Cumulative counters.
	EdgesProcessed  int64
	VerticesApplied int64
	SyncEntries     int64
	// FreshFolds counts contributions folded eagerly by the fresh-state
	// path; BarriersSkipped / BarriersForced count delayed-mode iteration
	// closes that skipped the push (local advance) vs. performed it (the
	// staleness bound was hit or the local frontier drained). All three
	// stay zero under ModeBSP.
	FreshFolds      int64
	BarriersSkipped int64
	BarriersForced  int64

	// sinceBarrier counts delayed-mode iteration closes since the last
	// push; pending preserves Received bits across barrier-skipping
	// advances (lazily allocated, delayed mode only).
	sinceBarrier int
	pending      []*bitset.Set
}

// NewJob builds a job over the given snapshot, initializing its private
// table and activity sets.
func NewJob(id int, prog model.Program, pg *graph.PGraph) *Job {
	return &Job{
		ID:       id,
		Prog:     prog,
		PG:       pg,
		PT:       storage.NewPrivateTable(id, pg, prog),
		Dir:      prog.Direction(),
		DeltaSum: make([]float64, len(pg.Parts)),
	}
}

// Scratch is a per-worker buffer for the BSP scatter path, reusable across
// partitions.
type Scratch struct {
	dst     []uint32
	contrib []float64
}

// Reset empties the scratch, retaining capacity.
func (sc *Scratch) Reset() {
	sc.dst = sc.dst[:0]
	sc.contrib = sc.contrib[:0]
}

// Len returns the number of buffered contributions.
func (sc *Scratch) Len() int { return len(sc.dst) }

// ActiveLocals appends the active local indices of partition pid to buf.
func (j *Job) ActiveLocals(pid int, buf []uint32) []uint32 {
	j.PT.Active[pid].Range(func(li int) bool {
		buf = append(buf, uint32(li))
		return true
	})
	return buf
}

// Range is one edge-weighted slice of a partition's active frontier: the
// local-index window [Lo, Hi) of which only active vertices are applied.
// Weight is the slice's scatter cost estimate (1 + incident edges per
// active vertex), the task weight fed to the work-stealing pool.
type Range struct {
	Lo, Hi int
	Weight int64
}

// SliceActive cuts partition pid's active frontier into ranges of roughly
// target weight each, appending to buf. Weight is measured in scatter
// edges (via the partition CSR prefix sums), so a hub vertex lands in a
// slice of its own while long runs of leaves coalesce — the degree-aware
// task sizing that replaces vertex-count chunking. An empty frontier
// appends nothing.
func (j *Job) SliceActive(pid int, target int64, buf []Range) []Range {
	p := j.PG.Parts[pid]
	if target < 1 {
		target = 1
	}
	start := -1
	var w int64
	j.PT.Active[pid].Range(func(li int) bool {
		if start < 0 {
			start = li
		}
		w += 1 + p.EdgeWork(uint32(li), j.Dir)
		if w >= target {
			buf = append(buf, Range{Lo: start, Hi: li + 1, Weight: w})
			start, w = -1, 0
		}
		return true
	})
	if start >= 0 {
		buf = append(buf, Range{Lo: start, Hi: p.NumVertices(), Weight: w})
	}
	return buf
}

// ApplyRange applies the active vertices of partition pid inside r's
// window, buffering scattered contributions into sc. It walks the active
// bitset directly (no materialized locals slice) and touches only those
// vertices' own states plus sc, so disjoint ranges may run on different
// workers concurrently.
func (j *Job) ApplyRange(pid int, r Range, sc *Scratch) Stats {
	p := j.PG.Parts[pid]
	states := j.PT.States[pid]
	act := j.PT.Active[pid]
	var st Stats
	for li := act.NextSet(r.Lo); li >= 0 && li < r.Hi; li = act.NextSet(li + 1) {
		s := &states[li]
		v := p.Globals[li]
		deg := j.PG.G.Degree(v, j.Dir)
		seed, scatter := j.Prog.Apply(v, s, deg)
		st.Vertices++
		if !scatter {
			continue
		}
		if j.Dir == model.Out || j.Dir == model.Both {
			for ei := p.OutOff[li]; ei < p.OutOff[li+1]; ei++ {
				sc.dst = append(sc.dst, p.OutDst[ei])
				sc.contrib = append(sc.contrib, j.Prog.Contribution(seed, p.OutW[ei]))
				st.Edges++
			}
		}
		if j.Dir == model.In || j.Dir == model.Both {
			for ei := p.InOff[li]; ei < p.InOff[li+1]; ei++ {
				sc.dst = append(sc.dst, p.InDst[ei])
				sc.contrib = append(sc.contrib, j.Prog.Contribution(seed, p.InW[ei]))
				st.Edges++
			}
		}
	}
	return st
}

// ApplyChunk applies the given active locals of partition pid, buffering
// scattered contributions into sc. It touches only the locals' own states
// plus sc, so disjoint chunks may run on different goroutines concurrently —
// this is what the straggler-splitting of Fig. 6 builds on.
func (j *Job) ApplyChunk(pid int, locals []uint32, sc *Scratch) Stats {
	p := j.PG.Parts[pid]
	states := j.PT.States[pid]
	var st Stats
	for _, li := range locals {
		s := &states[li]
		v := p.Globals[li]
		deg := j.PG.G.Degree(v, j.Dir)
		seed, scatter := j.Prog.Apply(v, s, deg)
		st.Vertices++
		if !scatter {
			continue
		}
		if j.Dir == model.Out || j.Dir == model.Both {
			for ei := p.OutOff[li]; ei < p.OutOff[li+1]; ei++ {
				sc.dst = append(sc.dst, p.OutDst[ei])
				sc.contrib = append(sc.contrib, j.Prog.Contribution(seed, p.OutW[ei]))
				st.Edges++
			}
		}
		if j.Dir == model.In || j.Dir == model.Both {
			for ei := p.InOff[li]; ei < p.InOff[li+1]; ei++ {
				sc.dst = append(sc.dst, p.InDst[ei])
				sc.contrib = append(sc.contrib, j.Prog.Contribution(seed, p.InW[ei]))
				st.Edges++
			}
		}
	}
	return st
}

// Merge folds buffered contributions into partition pid's states, marking
// receivers. Contributions rejected by an optional model.Filterer are
// dropped before the fold. Must be called from one goroutine per
// (job, partition).
func (j *Job) Merge(pid int, scratches ...*Scratch) {
	states := j.PT.States[pid]
	recv := j.PT.Received[pid]
	filter, filtered := j.Prog.(model.Filterer)
	var sum float64
	for _, sc := range scratches {
		for i, dst := range sc.dst {
			c := sc.contrib[i]
			if filtered && !filter.Accept(states[dst], c) {
				continue
			}
			states[dst].Delta = j.Prog.Acc(states[dst].Delta, c)
			recv.Set(int(dst))
			sum += math.Abs(c)
		}
	}
	j.DeltaSum[pid] += sum
}

// ProcessPartition runs the whole-partition BSP step serially: apply every
// active vertex, then merge the buffered contributions. All engines except
// CLIP use these synchronous semantics, so iteration counts are comparable
// across systems.
func (j *Job) ProcessPartition(pid int, sc *Scratch) Stats {
	sc.Reset()
	locals := localsPool(j.PT.ActiveCount[pid])
	locals = j.ActiveLocals(pid, locals)
	st := j.ApplyChunk(pid, locals, sc)
	j.Merge(pid, sc)
	j.EdgesProcessed += st.Edges
	j.VerticesApplied += st.Vertices
	return st
}

func localsPool(n int) []uint32 {
	return make([]uint32, 0, n)
}

// PushSummary reports the cost-relevant effects of one Push for the
// simulated accounting.
type PushSummary struct {
	// Entries is the number of Snew sync entries handled.
	Entries int64
	// TouchedParts lists the distinct partitions whose private slices were
	// read or written, in ascending order.
	TouchedParts []int
}

// Push is Algorithm 2: collect the Δ of every mirror replica that received
// contributions into Snew entries, sort them by master location, fold them
// into the masters, then — deviating from the paper's literal pseudocode as
// documented in DESIGN.md — store the aggregated Δ into every replica of
// each still-active vertex and mark those replicas active for the next
// iteration. Residual sub-threshold deltas stay accumulated at the master so
// no contribution mass is ever lost.
func (j *Job) Push() PushSummary {
	ident := j.Prog.Identity()
	pg := j.PG

	type entry struct {
		v          model.VertexID
		masterPart int32
		delta      float64
	}
	var entries []entry
	touched := make(map[int]bool)
	type pv struct {
		part  int32
		local uint32
	}
	masterSeen := make(map[pv]bool)
	var masters []pv

	// Gather: mirrors hand their Δ to Snew and reset; masters with direct
	// receipts join the aggregation set.
	for pid := range pg.Parts {
		states := j.PT.States[pid]
		j.PT.Received[pid].Range(func(li int) bool {
			if states[li].Delta == ident {
				return true
			}
			touched[pid] = true
			if pg.IsMaster(pid, uint32(li)) {
				key := pv{int32(pid), uint32(li)}
				if !masterSeen[key] {
					masterSeen[key] = true
					masters = append(masters, key)
				}
				return true
			}
			entries = append(entries, entry{
				v:          pg.Parts[pid].Globals[li],
				masterPart: pg.MasterPart(pid, uint32(li)),
				delta:      states[li].Delta,
			})
			states[li].Delta = ident
			return true
		})
	}

	// SortD: batch entries by master partition so the master-side updates
	// are sequential per private partition.
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].masterPart != entries[b].masterPart {
			return entries[a].masterPart < entries[b].masterPart
		}
		return entries[a].v < entries[b].v
	})

	// Accumulate into masters.
	for _, e := range entries {
		m := pg.MasterOf[e.v]
		st := &j.PT.States[m.Part][m.Local]
		st.Delta = j.Prog.Acc(st.Delta, e.delta)
		touched[int(m.Part)] = true
		key := pv{m.Part, m.Local}
		if !masterSeen[key] {
			masterSeen[key] = true
			masters = append(masters, key)
		}
	}

	// Deterministic master order.
	sort.Slice(masters, func(a, b int) bool {
		if masters[a].part != masters[b].part {
			return masters[a].part < masters[b].part
		}
		return masters[a].local < masters[b].local
	})

	// Decide activation and broadcast the aggregated Δ to the replicas of
	// still-active vertices (SortS write-back, batched per partition by
	// the ReplicaLocations ordering).
	for _, m := range masters {
		st := &j.PT.States[m.part][m.local]
		if st.Delta == ident || !j.Prog.IsActive(*st) {
			continue // residual stays at the master
		}
		v := pg.Parts[m.part].Globals[m.local]
		final := st.Delta
		for _, loc := range pg.ReplicaLocations(v) {
			j.PT.States[loc.Part][loc.Local].Delta = final
			j.PT.Next[loc.Part].Set(int(loc.Local))
			touched[int(loc.Part)] = true
		}
	}

	sum := PushSummary{Entries: int64(len(entries))}
	for pid := range touched {
		sum.TouchedParts = append(sum.TouchedParts, pid)
	}
	sort.Ints(sum.TouchedParts)
	j.SyncEntries += sum.Entries
	return sum
}

// FinishIteration closes one iteration. In bsp and async modes (and at
// delayed-mode merge barriers) it runs Push, advances the activity sets,
// and — when the job ran dry — steps phased programs forward or marks the
// job done. In delayed mode the push is skipped while the staleness bound
// allows and local single-replica work remains (see closeIterationDelayed).
func (j *Job) FinishIteration() PushSummary {
	if j.Mode == ModeDelayed {
		if sum, skipped := j.closeIterationDelayed(); skipped {
			return sum
		}
	}
	sum := j.Push()
	j.PT.Advance()
	j.Iterations++
	if !j.PT.HasActive() {
		j.advancePhaseOrFinish()
	}
	return sum
}

func (j *Job) advancePhaseOrFinish() {
	for {
		if j.PT.HasActive() {
			return
		}
		ph, ok := j.Prog.(model.Phased)
		if !ok || !ph.NextPhase(stateView{j}) {
			j.Done = true
			return
		}
		j.Phases++
		j.Dir = j.Prog.Direction()
		j.recountActive()
	}
}

func (j *Job) recountActive() {
	for pid := range j.PT.Active {
		j.PT.ActiveCount[pid] = j.PT.Active[pid].Count()
	}
}

// TakeDeltaStats returns and resets the per-partition |Δ| sums, the C(P)
// input sampled by the scheduler each round.
func (j *Job) TakeDeltaStats() []float64 {
	out := append([]float64(nil), j.DeltaSum...)
	for i := range j.DeltaSum {
		j.DeltaSum[i] = 0
	}
	return out
}

// Results materializes the job's per-vertex values.
func (j *Job) Results() []float64 { return j.PT.Results(j.Prog) }

// stateView adapts a Job for model.Phased.NextPhase.
type stateView struct{ j *Job }

func (v stateView) NumVertices() int { return v.j.PG.G.N }

func (v stateView) Get(id model.VertexID) model.State {
	m := v.j.PG.MasterOf[id]
	if m.Part < 0 {
		s, _ := v.j.Prog.Init(id, v.j.PG.G)
		return s
	}
	return v.j.PT.States[m.Part][m.Local]
}

func (v stateView) Set(id model.VertexID, s model.State, active bool) {
	for _, loc := range v.j.PG.ReplicaLocations(id) {
		v.j.PT.States[loc.Part][loc.Local] = s
		if active {
			v.j.PT.Active[loc.Part].Set(int(loc.Local))
		} else {
			v.j.PT.Active[loc.Part].Clear(int(loc.Local))
		}
	}
}

// CheckReplicaConsistency verifies that every replica of every vertex holds
// the same value (the Push invariant from DESIGN.md §5); used by tests.
func (j *Job) CheckReplicaConsistency() error {
	for v, locs := range j.PG.Replicas {
		first := j.PT.States[locs[0].Part][locs[0].Local].Value
		for _, loc := range locs[1:] {
			got := j.PT.States[loc.Part][loc.Local].Value
			if got != first && !(math.IsNaN(got) && math.IsNaN(first)) {
				return fmt.Errorf("vertex %d: replica value %v != master value %v", v, got, first)
			}
		}
	}
	return nil
}

// RunToConvergence drives the job with synchronous whole-graph rounds until
// completion — the minimal correct engine, used by tests and as the
// inner loop of the sequential baseline. It fails if the job does not
// converge within maxRounds iterations.
func RunToConvergence(j *Job, maxRounds int) error {
	sc := &Scratch{}
	for r := 0; r < maxRounds; r++ {
		if j.Done {
			return nil
		}
		for pid := range j.PG.Parts {
			if j.PT.ActiveCount[pid] > 0 {
				if j.Mode == ModeBSP {
					j.ProcessPartition(pid, sc)
				} else {
					j.ProcessPartitionFresh(pid, sc)
				}
			}
		}
		j.FinishIteration()
	}
	if j.Done {
		return nil
	}
	return fmt.Errorf("exec: job %s did not converge in %d rounds", j.Prog.Name(), maxRounds)
}

// ProcessPartitionReentrant is CLIP's reentry discipline ("squeezing out
// all the value of loaded data"): while the partition stays loaded, locally
// re-activated vertices are re-processed immediately, up to maxPasses
// sweeps. Soundness on the vertex-cut substrate requires two restrictions:
// eager re-processing applies only to single-replica vertices (a replicated
// vertex applied mid-iteration would strand the update on one replica), and
// contributions to replicated vertices are buffered and folded only after
// the local passes finish, exactly as in the BSP path, so every replica of
// a vertex consumes identical deltas.
func (j *Job) ProcessPartitionReentrant(pid, maxPasses int) Stats {
	p := j.PG.Parts[pid]
	states := j.PT.States[pid]
	recv := j.PT.Received[pid]
	filter, filtered := j.Prog.(model.Filterer)
	var st Stats

	work := bitset.New(p.NumVertices())
	work.CopyFrom(j.PT.Active[pid])
	next := bitset.New(p.NumVertices())
	var deferred Scratch

	scatterTo := func(dst uint32, c float64) {
		if _, replicated := j.PG.Replicas[p.Globals[dst]]; replicated {
			// Replicated receivers are reconciled by the push; fold
			// after the eager passes to keep replicas consistent.
			deferred.dst = append(deferred.dst, dst)
			deferred.contrib = append(deferred.contrib, c)
			return
		}
		if filtered && !filter.Accept(states[dst], c) {
			return
		}
		states[dst].Delta = j.Prog.Acc(states[dst].Delta, c)
		recv.Set(int(dst))
		j.DeltaSum[pid] += math.Abs(c)
		if j.Prog.IsActive(states[dst]) {
			next.Set(int(dst))
		}
	}

	for pass := 0; pass < maxPasses && work.Any(); pass++ {
		work.Range(func(li int) bool {
			s := &states[li]
			v := p.Globals[li]
			deg := j.PG.G.Degree(v, j.Dir)
			seed, scatter := j.Prog.Apply(v, s, deg)
			st.Vertices++
			if pass > 0 {
				// A re-processed single-replica vertex consumed its
				// pending delta locally; nothing remains to push.
				recv.Clear(li)
			}
			if !scatter {
				return true
			}
			if j.Dir == model.Out || j.Dir == model.Both {
				for ei := p.OutOff[li]; ei < p.OutOff[li+1]; ei++ {
					scatterTo(p.OutDst[ei], j.Prog.Contribution(seed, p.OutW[ei]))
					st.Edges++
				}
			}
			if j.Dir == model.In || j.Dir == model.Both {
				for ei := p.InOff[li]; ei < p.InOff[li+1]; ei++ {
					scatterTo(p.InDst[ei], j.Prog.Contribution(seed, p.InW[ei]))
					st.Edges++
				}
			}
			return true
		})
		work.Swap(next)
		next.Reset()
	}
	j.Merge(pid, &deferred)
	j.EdgesProcessed += st.Edges
	j.VerticesApplied += st.Vertices
	return st
}
