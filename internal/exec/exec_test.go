package exec

import (
	"math"
	"testing"
	"testing/quick"

	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
	"cgraph/model"
)

func buildPG(t testing.TB, edges []model.Edge, n, parts int) *graph.PGraph {
	t.Helper()
	g := graph.Build(n, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func runProgram(t testing.TB, pg *graph.PGraph, prog model.Program) *Job {
	t.Helper()
	j := NewJob(0, prog, pg)
	if err := RunToConvergence(j, 10000); err != nil {
		t.Fatal(err)
	}
	if err := j.CheckReplicaConsistency(); err != nil {
		t.Fatalf("replica consistency: %v", err)
	}
	return j
}

func wantClose(t testing.TB, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if math.IsInf(g, 1) && math.IsInf(w, 1) {
			continue
		}
		if math.Abs(g-w) > tol {
			t.Fatalf("%s: vertex %d: got %v, want %v (tol %v)", name, i, g, w, tol)
		}
	}
}

func testGraph(seed int64) ([]model.Edge, int) {
	return gen.RMAT(seed, 200, 3000, 0.57, 0.19, 0.19), 200
}

func TestPageRankMatchesReference(t *testing.T) {
	edges, n := testGraph(1)
	for _, parts := range []int{1, 3, 8} {
		pg := buildPG(t, edges, n, parts)
		pr := &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}
		j := runProgram(t, pg, pr)
		want := refimpl.PageRank(pg.G, 0.85, 1e-12, 2000)
		wantClose(t, "pagerank", j.Results(), want, 1e-6)
	}
}

func TestPPRMatchesReference(t *testing.T) {
	edges, n := testGraph(2)
	pg := buildPG(t, edges, n, 5)
	p := &algo.PPR{Source: 3, Damping: 0.85, Epsilon: 1e-10}
	j := runProgram(t, pg, p)
	want := refimpl.PPR(pg.G, 3, 0.85, 1e-13, 3000)
	wantClose(t, "ppr", j.Results(), want, 1e-7)
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	edges, n := testGraph(3)
	for _, parts := range []int{1, 4, 7} {
		pg := buildPG(t, edges, n, parts)
		j := runProgram(t, pg, algo.NewSSSP(0))
		want := refimpl.SSSP(pg.G, 0)
		wantClose(t, "sssp", j.Results(), want, 1e-9)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	edges, n := testGraph(4)
	pg := buildPG(t, edges, n, 6)
	j := runProgram(t, pg, algo.NewBFS(1))
	want := refimpl.BFS(pg.G, 1)
	wantClose(t, "bfs", j.Results(), want, 0)
}

func TestWCCMatchesUnionFind(t *testing.T) {
	edges, n := testGraph(5)
	pg := buildPG(t, edges, n, 5)
	j := runProgram(t, pg, algo.NewWCC())
	want := refimpl.WCC(pg.G)
	got := j.Results()
	for v := 0; v < n; v++ {
		if pg.G.Degree(model.VertexID(v), model.Both) == 0 {
			continue // refimpl and engine both treat isolated as untouched
		}
		if got[v] != want[v] {
			t.Fatalf("wcc: vertex %d: got %v, want %v", v, got[v], want[v])
		}
	}
}

func TestSSWPMatchesReference(t *testing.T) {
	edges, n := testGraph(6)
	pg := buildPG(t, edges, n, 4)
	j := runProgram(t, pg, algo.NewSSWP(0))
	want := refimpl.SSWP(pg.G, 0)
	got := j.Results()
	for v := 0; v < n; v++ {
		w := want[v]
		g := got[v]
		if w == 0 && g == 0 {
			continue
		}
		if math.Abs(g-w) > 1e-9 && !(math.IsInf(g, 1) && math.IsInf(w, 1)) {
			t.Fatalf("sswp: vertex %d: got %v, want %v", v, g, w)
		}
	}
}

func TestKCoreMatchesPeeling(t *testing.T) {
	edges, n := testGraph(7)
	for _, k := range []int{2, 5, 12} {
		pg := buildPG(t, edges, n, 5)
		j := runProgram(t, pg, algo.NewKCore(k))
		want := refimpl.KCore(pg.G, k)
		got := j.Results()
		for v := 0; v < n; v++ {
			if want[v] != (got[v] >= 0) {
				t.Fatalf("kcore k=%d: vertex %d: got %v, want alive=%v", k, v, got[v], want[v])
			}
		}
	}
}

// canonGroups maps labels to canonical group IDs for partition comparison.
func canonGroups(labels []float64) []int {
	ids := map[float64]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := ids[l]
		if !ok {
			id = len(ids)
			ids[l] = id
		}
		out[i] = id
	}
	return out
}

func TestSCCMatchesTarjan(t *testing.T) {
	edges, n := testGraph(8)
	pg := buildPG(t, edges, n, 6)
	j := runProgram(t, pg, algo.NewSCC())
	got := canonGroups(j.Results())
	wantRaw := refimpl.SCC(pg.G)
	wantF := make([]float64, len(wantRaw))
	for i, w := range wantRaw {
		wantF[i] = float64(w)
	}
	want := canonGroups(wantF)
	// Same partition: got[i]==got[j] iff want[i]==want[j]. Check via
	// canonical relabeling consistency.
	remap := map[int]int{}
	for i := range got {
		if prev, ok := remap[got[i]]; ok {
			if prev != want[i] {
				t.Fatalf("scc: vertex %d: group mismatch", i)
			}
		} else {
			remap[got[i]] = want[i]
		}
	}
	inverse := map[int]int{}
	for g, w := range remap {
		if prev, ok := inverse[w]; ok && prev != g {
			t.Fatalf("scc: groups merged: engine groups %d and %d map to same reference group", prev, g)
		} else {
			inverse[w] = g
		}
	}
}

func TestSCCKnownTopology(t *testing.T) {
	// Two 3-cycles joined by one edge, plus a dangling tail.
	edges := []model.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, // SCC A
		{Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3}, // SCC B
		{Src: 5, Dst: 6}, // tail: singleton
	}
	pg := buildPG(t, edges, 7, 3)
	j := runProgram(t, pg, algo.NewSCC())
	res := j.Results()
	if res[0] != res[1] || res[1] != res[2] {
		t.Fatalf("scc A not grouped: %v", res[:3])
	}
	if res[3] != res[4] || res[4] != res[5] {
		t.Fatalf("scc B not grouped: %v", res[3:6])
	}
	if res[0] == res[3] || res[6] == res[0] || res[6] == res[3] {
		t.Fatalf("distinct SCCs merged: %v", res)
	}
}

func TestDegreeProgram(t *testing.T) {
	edges, n := testGraph(9)
	pg := buildPG(t, edges, n, 4)
	j := runProgram(t, pg, algo.NewDegree())
	res := j.Results()
	for v := 0; v < n; v++ {
		if res[v] != float64(pg.G.OutDegree(model.VertexID(v))) {
			t.Fatalf("degree: vertex %d: got %v, want %d", v, res[v], pg.G.OutDegree(model.VertexID(v)))
		}
	}
	if j.Iterations > 2 {
		t.Fatalf("degree took %d iterations, want <= 2", j.Iterations)
	}
}

func TestParallelChunksSameAsSerial(t *testing.T) {
	edges, n := testGraph(11)
	pg := buildPG(t, edges, n, 4)

	// Chunked mini-engine: split active locals into 3 scratches per
	// partition, exactly what the straggler splitter does.
	jc := NewJob(0, algo.NewSSSP(0), pg)
	for r := 0; r < 10000 && !jc.Done; r++ {
		for pid := range pg.Parts {
			if jc.PT.ActiveCount[pid] == 0 {
				continue
			}
			locals := jc.ActiveLocals(pid, nil)
			var scratches []*Scratch
			var stats Stats
			for c := 0; c < 3; c++ {
				lo := c * len(locals) / 3
				hi := (c + 1) * len(locals) / 3
				sc := &Scratch{}
				stats.Add(jc.ApplyChunk(pid, locals[lo:hi], sc))
				scratches = append(scratches, sc)
			}
			jc.Merge(pid, scratches...)
			jc.EdgesProcessed += stats.Edges
			jc.VerticesApplied += stats.Vertices
		}
		jc.FinishIteration()
	}
	if !jc.Done {
		t.Fatal("chunked run did not converge")
	}
	want := refimpl.SSSP(pg.G, 0)
	wantClose(t, "sssp-chunked", jc.Results(), want, 1e-9)
}

func TestPushSummaryShape(t *testing.T) {
	edges, n := testGraph(12)
	pg := buildPG(t, edges, n, 6)
	j := NewJob(0, algo.NewPageRank(), pg)
	sc := &Scratch{}
	for pid := range pg.Parts {
		j.ProcessPartition(pid, sc)
	}
	sum := j.Push()
	if sum.Entries == 0 {
		t.Fatal("multi-partition PageRank must produce sync entries")
	}
	for i := 1; i < len(sum.TouchedParts); i++ {
		if sum.TouchedParts[i-1] >= sum.TouchedParts[i] {
			t.Fatal("TouchedParts not sorted ascending")
		}
	}
	if j.SyncEntries != sum.Entries {
		t.Fatal("cumulative sync entry counter wrong")
	}
}

func TestDeltaStatsTakeAndReset(t *testing.T) {
	edges, n := testGraph(13)
	pg := buildPG(t, edges, n, 4)
	j := NewJob(0, algo.NewPageRank(), pg)
	sc := &Scratch{}
	for pid := range pg.Parts {
		j.ProcessPartition(pid, sc)
	}
	stats := j.TakeDeltaStats()
	nonzero := false
	for _, s := range stats {
		if s > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("first PageRank iteration must move delta mass")
	}
	for _, s := range j.TakeDeltaStats() {
		if s != 0 {
			t.Fatal("TakeDeltaStats did not reset")
		}
	}
}

func TestSingleVsManyPartitionsAgree(t *testing.T) {
	// Partition-count independence: the same program converges to the same
	// values regardless of the cut. quick.Check over random graphs.
	f := func(seed int64) bool {
		edges := gen.ER(seed, 60, 500)
		pg1 := buildPG(t, edges, 60, 1)
		pg5 := buildPG(t, edges, 60, 5)
		j1 := runProgram(t, pg1, algo.NewSSSP(0))
		j5 := runProgram(t, pg5, algo.NewSSSP(0))
		r1, r5 := j1.Results(), j5.Results()
		for i := range r1 {
			if r1[i] != r5[i] && !(math.IsInf(r1[i], 1) && math.IsInf(r5[i], 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCountAccounting(t *testing.T) {
	// Every directed edge is processed exactly once in PageRank's first
	// iteration (all vertices active, all scatter unless outdeg 0).
	edges, n := testGraph(14)
	pg := buildPG(t, edges, n, 5)
	j := NewJob(0, algo.NewPageRank(), pg)
	sc := &Scratch{}
	var st Stats
	for pid := range pg.Parts {
		st.Add(j.ProcessPartition(pid, sc))
	}
	if st.Edges != int64(len(edges)) {
		t.Fatalf("first-iteration edges = %d, want %d", st.Edges, len(edges))
	}
}

func TestRunToConvergenceTimeout(t *testing.T) {
	edges, n := testGraph(15)
	pg := buildPG(t, edges, n, 2)
	j := NewJob(0, algo.NewPageRank(), pg)
	if err := RunToConvergence(j, 1); err == nil {
		t.Fatal("want timeout error for maxRounds=1")
	}
}

func TestHITSMatchesPowerIteration(t *testing.T) {
	edges, n := testGraph(16)
	pg := buildPG(t, edges, n, 5)
	prog := algo.NewHITS()
	j := runProgram(t, pg, prog)
	wantAuth, wantHub := refimpl.HITS(pg.G, prog.Rounds)
	gotAuth := j.Results()
	gotHub := prog.HubScores()
	for v := 0; v < n; v++ {
		if math.Abs(gotAuth[v]-wantAuth[v]) > 1e-9 {
			t.Fatalf("hits auth vertex %d: got %v want %v", v, gotAuth[v], wantAuth[v])
		}
	}
	// Hub comparison after matching normalization.
	sum := 0.0
	for _, h := range wantHub {
		sum += math.Abs(h)
	}
	for v := 0; v < n; v++ {
		want := wantHub[v]
		if sum > 0 {
			want /= sum
		}
		if math.Abs(gotHub[v]-want) > 1e-9 {
			t.Fatalf("hits hub vertex %d: got %v want %v", v, gotHub[v], want)
		}
	}
}

func TestKatzMatchesReference(t *testing.T) {
	edges, n := testGraph(17)
	pg := buildPG(t, edges, n, 4)
	j := runProgram(t, pg, &algo.Katz{Alpha: 0.005, Beta: 1, Epsilon: 1e-10})
	want := refimpl.Katz(pg.G, 0.005, 1, 1e-13, 1000)
	wantClose(t, "katz", j.Results(), want, 1e-7)
}
