package exec

import (
	"sync"
	"testing"

	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/internal/refimpl"
	"cgraph/model"
)

// TestSliceActiveCoversFrontier checks that the edge-weighted slicer is a
// partition of the active frontier: every active vertex falls in exactly
// one range, weights match the 1+EdgeWork sum, and no inactive vertex is
// ever applied by ApplyRange.
func TestSliceActiveCoversFrontier(t *testing.T) {
	edges, n := testGraph(31)
	pg := buildPG(t, edges, n, 5)
	j := NewJob(0, algo.NewPageRank(), pg)

	// Run a few iterations first so frontiers are partial, not all-ones.
	if err := RunToConvergence(j, 3); err == nil {
		t.Skip("graph converged in 3 rounds; frontier test needs live rounds")
	}

	for pid, p := range pg.Parts {
		want := j.ActiveLocals(pid, nil)
		for _, target := range []int64{1, 7, 100, 1 << 40} {
			ranges := j.SliceActive(pid, target, nil)
			var got []uint32
			var total int64
			prevHi := -1
			for _, r := range ranges {
				if r.Lo < 0 || r.Hi > p.NumVertices() || r.Lo >= r.Hi {
					t.Fatalf("pid %d target %d: bad range %+v", pid, target, r)
				}
				if r.Lo < prevHi {
					t.Fatalf("pid %d target %d: overlapping ranges at %+v", pid, target, r)
				}
				prevHi = r.Hi
				var w int64
				for li := j.PT.Active[pid].NextSet(r.Lo); li >= 0 && li < r.Hi; li = j.PT.Active[pid].NextSet(li + 1) {
					got = append(got, uint32(li))
					w += 1 + p.EdgeWork(uint32(li), j.Dir)
				}
				if w != r.Weight {
					t.Fatalf("pid %d target %d: range %+v weight mismatch, recount %d", pid, target, r, w)
				}
				total += w
			}
			if len(got) != len(want) {
				t.Fatalf("pid %d target %d: ranges cover %d actives, frontier has %d", pid, target, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pid %d target %d: active %d covered as %d, want %d", pid, target, i, got[i], want[i])
				}
			}
			// Oversized ranges are allowed only for indivisible hubs: a
			// range may exceed target by at most one vertex's weight.
			for _, r := range ranges[:max(0, len(ranges)-1)] {
				if r.Weight < target && target < 1<<40 {
					t.Fatalf("pid %d: non-final range %+v under target %d", pid, r, target)
				}
			}
		}
	}
}

// TestApplyRangeMatchesChunkedSerial drives a full SSSP to convergence
// applying each partition through SliceActive + concurrent ApplyRange
// calls — disjoint windows over the shared frontier bitset on separate
// goroutines, the exact shape the work-stealing pool produces. Run under
// -race this doubles as the frontier/bitset concurrency check; the result
// must match Dijkstra.
func TestApplyRangeMatchesChunkedSerial(t *testing.T) {
	edges, n := testGraph(11)
	pg := buildPG(t, edges, n, 4)

	j := NewJob(0, algo.NewSSSP(0), pg)
	for r := 0; r < 10000 && !j.Done; r++ {
		for pid := range pg.Parts {
			if j.PT.ActiveCount[pid] == 0 {
				continue
			}
			ranges := j.SliceActive(pid, 40, nil)
			scratches := make([]*Scratch, len(ranges))
			stats := make([]Stats, len(ranges))
			var wg sync.WaitGroup
			for i, r := range ranges {
				scratches[i] = &Scratch{}
				wg.Add(1)
				go func(i int, r Range) {
					defer wg.Done()
					stats[i] = j.ApplyRange(pid, r, scratches[i])
				}(i, r)
			}
			wg.Wait()
			j.Merge(pid, scratches...)
			for _, st := range stats {
				j.EdgesProcessed += st.Edges
				j.VerticesApplied += st.Vertices
			}
		}
		j.FinishIteration()
	}
	if !j.Done {
		t.Fatal("ranged run did not converge")
	}
	want := refimpl.SSSP(pg.G, 0)
	wantClose(t, "sssp-ranged", j.Results(), want, 1e-9)
}

// TestReentrantMatchesReference pins ProcessPartitionReentrant's
// soundness claim: eager local re-processing (multiple passes while the
// partition is "loaded") must reach the exact fixed point of the plain
// BSP sweep for monotone programs (SSSP min-plus, WCC min-label), where
// reentry only accelerates convergence. (Accumulative programs like
// PageRank reach an epsilon-equivalent answer, not a bitwise one — the
// baseline CLIP chain test covers that mode.)
func TestReentrantMatchesReference(t *testing.T) {
	edges, n := testGraph(13)
	for _, parts := range []int{1, 4} {
		pg := buildPG(t, edges, n, parts)

		js := NewJob(0, algo.NewSSSP(0), pg)
		for r := 0; r < 10000 && !js.Done; r++ {
			for pid := range pg.Parts {
				if js.PT.ActiveCount[pid] > 0 {
					js.ProcessPartitionReentrant(pid, 4)
				}
			}
			js.FinishIteration()
		}
		if !js.Done {
			t.Fatalf("parts=%d: reentrant SSSP did not converge", parts)
		}
		if err := js.CheckReplicaConsistency(); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		wantClose(t, "sssp-reentrant", js.Results(), refimpl.SSSP(pg.G, 0), 1e-9)

		jw := NewJob(1, algo.NewWCC(), pg)
		for r := 0; r < 10000 && !jw.Done; r++ {
			for pid := range pg.Parts {
				if jw.PT.ActiveCount[pid] > 0 {
					jw.ProcessPartitionReentrant(pid, 3)
				}
			}
			jw.FinishIteration()
		}
		if !jw.Done {
			t.Fatalf("parts=%d: reentrant WCC did not converge", parts)
		}
		if err := jw.CheckReplicaConsistency(); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		gotW, wantW := jw.Results(), refimpl.WCC(pg.G)
		for v := 0; v < n; v++ {
			if pg.G.Degree(model.VertexID(v), model.Both) == 0 {
				continue // isolated vertices stay untouched in both
			}
			if gotW[v] != wantW[v] {
				t.Fatalf("parts=%d: wcc vertex %d: got %v, want %v", parts, v, gotW[v], wantW[v])
			}
		}
	}
}

// TestWeightedSlicingBeatsVertexCount is the skewed-graph regression: on
// a power-law graph, vertex-count chunking (the pre-refactor splitter)
// packs the hubs into one chunk whose edge work dwarfs the rest, while
// edge-weighted slicing bounds every task near the target. The heaviest
// static chunk must carry at least 3x the edge work of the heaviest
// weighted slice — if this ever fails, degree-aware slicing has regressed
// to vertex counting.
func TestWeightedSlicingBeatsVertexCount(t *testing.T) {
	const n = 4000
	edges := gen.Zipf(7, n, 60000, 1.2)
	pg := buildPG(t, edges, n, 1)
	j := NewJob(0, algo.NewPageRank(), pg)
	const workers = 8

	// First iteration: everything active, the worst case for skew.
	p := pg.Parts[0]
	locals := j.ActiveLocals(0, nil)

	// Static splitter, verbatim from the legacy engine: equal vertex
	// counts, total/(workers*2)+1 per chunk, minimum 32.
	chunk := len(locals)/(workers*2) + 1
	if chunk < 32 {
		chunk = 32
	}
	var maxStatic int64
	for lo := 0; lo < len(locals); lo += chunk {
		hi := min(lo+chunk, len(locals))
		var w int64
		for _, li := range locals[lo:hi] {
			w += 1 + p.EdgeWork(li, j.Dir)
		}
		if w > maxStatic {
			maxStatic = w
		}
	}

	// Weighted slicer at the engine's default balance factor of 4.
	var totalW int64
	for _, li := range locals {
		totalW += 1 + p.EdgeWork(li, j.Dir)
	}
	target := totalW/(workers*4) + 1
	var maxWeighted int64
	for _, r := range j.SliceActive(0, target, nil) {
		if r.Weight > maxWeighted {
			maxWeighted = r.Weight
		}
	}

	if maxWeighted == 0 || maxStatic < 3*maxWeighted {
		t.Fatalf("heaviest static chunk %d vs heaviest weighted slice %d: want >= 3x separation (total %d, target %d)",
			maxStatic, maxWeighted, totalW, target)
	}
	// And the weighted slicer must actually respect its target up to one
	// indivisible hub vertex.
	var maxVertex int64
	for _, li := range locals {
		if w := 1 + p.EdgeWork(li, j.Dir); w > maxVertex {
			maxVertex = w
		}
	}
	if maxWeighted > target+maxVertex {
		t.Fatalf("weighted slice %d exceeds target %d + heaviest vertex %d", maxWeighted, target, maxVertex)
	}
}
