// Asynchronous (fresh-state) and delayed (bounded-staleness) execution for
// CGP jobs. The BSP path in exec.go is strictly bulk-synchronous: every
// vertex reads the neighbor deltas pushed at the previous iteration close.
// The fresh-state path here lets a vertex read neighbor state written
// earlier in the same iteration — a block-sequenced Gauss-Seidel sweep in
// the spirit of "Fast Iterative Graph Computing with Updated Neighbor
// States" — which typically propagates values several hops per iteration
// and cuts iterations-to-convergence. The delayed variant additionally
// tolerates replica staleness for up to a bounded number of iterations
// ("Delayed Asynchronous Iterative Graph Algorithms"): the merge barrier
// (Push) is skipped while local single-replica work remains, and forced
// when the bound is hit or the local frontier drains.
//
// Soundness on the vertex-cut substrate mirrors ProcessPartitionReentrant:
// only single-replica vertices are folded eagerly (a replicated vertex
// updated mid-iteration would strand the value on one replica), while
// contributions to replicated vertices are buffered and reconciled by the
// push exactly as in the BSP path. For programs with an order-independent
// accumulator — the monotonic min/max family (SSSP, WCC, SSWP, BFS) —
// fresh-state execution converges to the identical fixed point; for
// additive programs (PageRank, PPR, Katz) it converges to the same values
// within the program's tolerance, usually in fewer iterations.
package exec

import (
	"fmt"
	"math"

	"cgraph/internal/bitset"
	"cgraph/model"
)

// Mode selects a job's execution discipline.
type Mode uint8

const (
	// ModeBSP is the default bulk-synchronous discipline: all reads see
	// the previous iteration's state, all scattered contributions are
	// buffered and folded at the iteration's merge, replicas reconcile at
	// every iteration close. Deterministic and byte-stable.
	ModeBSP Mode = iota
	// ModeAsync is the fresh-state discipline: within a partition,
	// vertices are applied in block (local-index) order and contributions
	// to later single-replica vertices fold into the private table
	// immediately, so they are consumed in the same iteration.
	// Cross-partition propagation still happens only at the iteration's
	// push, so replicas stay consistent.
	ModeAsync
	// ModeDelayed is ModeAsync plus bounded staleness: the iteration-close
	// push is skipped — replica deltas stay parked — while local
	// single-replica work remains, up to Job.Staleness consecutive skips,
	// after which a merge barrier is forced.
	ModeDelayed
)

// DefaultStaleness is the delayed-mode barrier bound used when
// Job.Staleness is zero: how many consecutive iteration closes may skip
// the push before one is forced.
const DefaultStaleness = 3

func (m Mode) String() string {
	switch m {
	case ModeAsync:
		return "async"
	case ModeDelayed:
		return "delayed"
	default:
		return "bsp"
	}
}

// ParseMode resolves a mode name ("bsp", "async", "delayed"). The empty
// string parses as ModeBSP, the default.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "bsp":
		return ModeBSP, nil
	case "async":
		return ModeAsync, nil
	case "delayed":
		return ModeDelayed, nil
	}
	return ModeBSP, fmt.Errorf("exec: unknown execution mode %q (want bsp, async, or delayed)", s)
}

// stalenessBound returns the effective delayed-mode barrier bound.
func (j *Job) stalenessBound() int {
	if j.Staleness > 0 {
		return j.Staleness
	}
	return DefaultStaleness
}

// freshSink returns the scatter sink of the fresh-state path for one
// partition. Contributions to replicated vertices are buffered into sc and
// reconciled by the push, exactly as in the BSP path; contributions to
// single-replica vertices fold into the private table immediately, so
// vertices later in the block sequence apply against already-updated
// neighbor state. Activation is left to the push: a fresh delta consumed
// later in the same sweep ends at Identity and is skipped by the gather,
// while an unconsumed one keeps its Received bit and reactivates the
// vertex there. Scatter destinations are partition-local, so the fold
// touches only partition pid's state — disjoint partitions stay safe to
// process concurrently as long as each runs its sweep on one goroutine.
func (j *Job) freshSink(pid int, sc *Scratch, st *Stats) func(dst uint32, c float64) {
	p := j.PG.Parts[pid]
	states := j.PT.States[pid]
	recv := j.PT.Received[pid]
	filter, filtered := j.Prog.(model.Filterer)
	return func(dst uint32, c float64) {
		if _, replicated := j.PG.Replicas[p.Globals[dst]]; replicated {
			sc.dst = append(sc.dst, dst)
			sc.contrib = append(sc.contrib, c)
			return
		}
		if filtered && !filter.Accept(states[dst], c) {
			return
		}
		states[dst].Delta = j.Prog.Acc(states[dst].Delta, c)
		recv.Set(int(dst))
		j.DeltaSum[pid] += math.Abs(c)
		st.Fresh++
	}
}

// ApplyRangeFresh is the fresh-state counterpart of ApplyRange: it applies
// the active vertices of partition pid inside r's window in block order,
// folding single-replica contributions into the private table immediately
// and buffering replicated ones into sc. Unlike ApplyRange, ranges of the
// same partition must execute sequentially (the engine chains them into
// one pool task); ranges of distinct partitions may still run concurrently.
func (j *Job) ApplyRangeFresh(pid int, r Range, sc *Scratch) Stats {
	p := j.PG.Parts[pid]
	states := j.PT.States[pid]
	act := j.PT.Active[pid]
	var st Stats
	sink := j.freshSink(pid, sc, &st)
	for li := act.NextSet(r.Lo); li >= 0 && li < r.Hi; li = act.NextSet(li + 1) {
		s := &states[li]
		v := p.Globals[li]
		deg := j.PG.G.Degree(v, j.Dir)
		seed, scatter := j.Prog.Apply(v, s, deg)
		st.Vertices++
		if !scatter {
			continue
		}
		if j.Dir == model.Out || j.Dir == model.Both {
			for ei := p.OutOff[li]; ei < p.OutOff[li+1]; ei++ {
				sink(p.OutDst[ei], j.Prog.Contribution(seed, p.OutW[ei]))
				st.Edges++
			}
		}
		if j.Dir == model.In || j.Dir == model.Both {
			for ei := p.InOff[li]; ei < p.InOff[li+1]; ei++ {
				sink(p.InDst[ei], j.Prog.Contribution(seed, p.InW[ei]))
				st.Edges++
			}
		}
	}
	return st
}

// ApplyChunkFresh is the fresh-state counterpart of ApplyChunk, with the
// same sequencing contract as ApplyRangeFresh: chunks of one partition run
// in ascending-local order on one goroutine, chunks of distinct partitions
// run concurrently.
func (j *Job) ApplyChunkFresh(pid int, locals []uint32, sc *Scratch) Stats {
	p := j.PG.Parts[pid]
	states := j.PT.States[pid]
	var st Stats
	sink := j.freshSink(pid, sc, &st)
	for _, li := range locals {
		s := &states[li]
		v := p.Globals[li]
		deg := j.PG.G.Degree(v, j.Dir)
		seed, scatter := j.Prog.Apply(v, s, deg)
		st.Vertices++
		if !scatter {
			continue
		}
		if j.Dir == model.Out || j.Dir == model.Both {
			for ei := p.OutOff[li]; ei < p.OutOff[li+1]; ei++ {
				sink(p.OutDst[ei], j.Prog.Contribution(seed, p.OutW[ei]))
				st.Edges++
			}
		}
		if j.Dir == model.In || j.Dir == model.Both {
			for ei := p.InOff[li]; ei < p.InOff[li+1]; ei++ {
				sink(p.InDst[ei], j.Prog.Contribution(seed, p.InW[ei]))
				st.Edges++
			}
		}
	}
	return st
}

// ProcessPartitionFresh runs the whole-partition fresh-state sweep
// serially: apply every active vertex in block order with eager
// single-replica folds, then merge the deferred replicated contributions.
// It is the async/delayed counterpart of ProcessPartition, used by
// RunToConvergence and the sequential baselines.
func (j *Job) ProcessPartitionFresh(pid int, sc *Scratch) Stats {
	sc.Reset()
	p := j.PG.Parts[pid]
	st := j.ApplyRangeFresh(pid, Range{Lo: 0, Hi: p.NumVertices()}, sc)
	j.Merge(pid, sc)
	j.EdgesProcessed += st.Edges
	j.VerticesApplied += st.Vertices
	j.FreshFolds += st.Fresh
	return st
}

// localNext marks for the next iteration every single-replica vertex that
// holds an unconsumed pending delta this iteration — the delayed-mode
// "local advance" that defers the merge barrier. Replicated vertices are
// left untouched: their deltas stay parked until the barrier. Returns the
// number of vertices marked.
func (j *Job) localNext() int {
	ident := j.Prog.Identity()
	n := 0
	for pid := range j.PG.Parts {
		p := j.PG.Parts[pid]
		states := j.PT.States[pid]
		next := j.PT.Next[pid]
		j.PT.Received[pid].Range(func(li int) bool {
			if states[li].Delta == ident {
				return true
			}
			if _, replicated := j.PG.Replicas[p.Globals[li]]; replicated {
				return true
			}
			if j.Prog.IsActive(states[li]) {
				next.Set(li)
				n++
			}
			return true
		})
	}
	return n
}

// ensurePending lazily allocates the delayed-mode pending bitsets: one per
// partition, persisting Received bits across barrier-skipping advances so
// the eventual push's gather still sees every parked replica delta.
func (j *Job) ensurePending() []*bitset.Set {
	if j.pending == nil {
		j.pending = make([]*bitset.Set, len(j.PG.Parts))
		for pid, p := range j.PG.Parts {
			j.pending[pid] = bitset.New(p.NumVertices())
		}
	}
	return j.pending
}

// closeIterationDelayed is the delayed-mode iteration close. While the
// staleness bound allows and local single-replica work remains, the push
// is skipped: pending receipt bits are preserved, locally deliverable
// vertices advance, and replica deltas stay parked (skipped=true, zero
// summary). Otherwise a merge barrier is taken: preserved receipts are
// restored so the push's gather covers every delta parked since the last
// barrier, and the caller falls through to the shared barrier path.
func (j *Job) closeIterationDelayed() (PushSummary, bool) {
	if j.sinceBarrier < j.stalenessBound() && j.localNext() > 0 {
		pending := j.ensurePending()
		for pid := range j.PG.Parts {
			pending[pid].Or(j.PT.Received[pid])
		}
		j.PT.Advance()
		j.Iterations++
		j.sinceBarrier++
		j.BarriersSkipped++
		return PushSummary{}, true
	}
	j.BarriersForced++
	if j.sinceBarrier > 0 {
		for pid, pb := range j.pending {
			j.PT.Received[pid].Or(pb)
			pb.Reset()
		}
		j.sinceBarrier = 0
	}
	return PushSummary{}, false
}
