package storage

import (
	"testing"

	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/model"
)

// constProg is a trivial program for table tests: value = vertex id,
// active iff id is even.
type constProg struct{}

func (constProg) Name() string                { return "const" }
func (constProg) Direction() model.Direction  { return model.Out }
func (constProg) Identity() float64           { return 0 }
func (constProg) Acc(a, b float64) float64    { return a + b }
func (constProg) IsActive(s model.State) bool { return s.Delta != 0 }
func (constProg) Init(v model.VertexID, _ model.GraphInfo) (model.State, bool) {
	return model.State{Value: float64(v)}, v%2 == 0
}
func (constProg) Apply(_ model.VertexID, s *model.State, _ int) (float64, bool) {
	s.Delta = 0
	return 0, false
}
func (constProg) Contribution(seed float64, _ float32) float64 { return seed }

func buildPG(t *testing.T, seed int64, parts int) (*graph.PGraph, []model.Edge) {
	t.Helper()
	edges := gen.ER(seed, 80, 800)
	g := graph.Build(0, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return pg, edges
}

func TestSnapshotResolve(t *testing.T) {
	pg, edges := buildPG(t, 1, 4)
	store := NewSnapshotStore(pg, 100)

	mut, slots := gen.Mutate(edges, 0.02, 80, 2)
	changed := graph.ChangedPartitions(slots, pg.ChunkSize, len(pg.Parts))
	pg2, err := graph.Overlay(pg, mut, changed)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Add(pg2, 200); err != nil {
		t.Fatal(err)
	}

	if got := store.Resolve(50).Timestamp; got != 100 {
		t.Fatalf("Resolve(50) = ts %d, want base 100", got)
	}
	if got := store.Resolve(150).Timestamp; got != 100 {
		t.Fatalf("Resolve(150) = ts %d, want 100", got)
	}
	if got := store.Resolve(200).Timestamp; got != 200 {
		t.Fatalf("Resolve(200) = ts %d, want 200", got)
	}
	if got := store.Resolve(999).Timestamp; got != 200 {
		t.Fatalf("Resolve(999) = ts %d, want 200", got)
	}
	if store.Latest().Timestamp != 200 || store.Len() != 2 {
		t.Fatal("Latest/Len broken")
	}
}

func TestSnapshotTimestampMonotone(t *testing.T) {
	pg, _ := buildPG(t, 1, 4)
	store := NewSnapshotStore(pg, 100)
	if err := store.Add(pg, 100); err == nil {
		t.Fatal("want error for non-increasing timestamp")
	}
}

func TestOverlaySharesUnchangedParts(t *testing.T) {
	pg, edges := buildPG(t, 3, 8)
	// Mutate a handful of slots all in partition 0's chunk.
	mut := append([]model.Edge(nil), edges...)
	mut[0] = model.Edge{Src: 1, Dst: 2, Weight: 1}
	mut[1] = model.Edge{Src: 3, Dst: 4, Weight: 1}
	pg2, err := graph.Overlay(pg, mut, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	store := NewSnapshotStore(pg, 1)
	if err := store.Add(pg2, 2); err != nil {
		t.Fatal(err)
	}
	if got := store.SharedParts(0, 1); got != 7 {
		t.Fatalf("shared parts = %d, want 7", got)
	}
	if pg2.Parts[0] == pg.Parts[0] {
		t.Fatal("changed partition must be rebuilt")
	}
	if pg2.Parts[0].UID == pg.Parts[0].UID {
		t.Fatal("rebuilt partition must get a fresh UID")
	}
	// Replica invariants hold on the overlay: one master per vertex.
	masters := map[model.VertexID]int{}
	for pi, p := range pg2.Parts {
		for li, v := range p.Globals {
			if pg2.IsMaster(pi, uint32(li)) {
				masters[v]++
			}
		}
	}
	for v, c := range masters {
		if c != 1 {
			t.Fatalf("vertex %d has %d masters in overlay", v, c)
		}
	}
}

func TestOverlayErrors(t *testing.T) {
	pg, edges := buildPG(t, 3, 4)
	if _, err := graph.Overlay(pg, edges, []int{99}); err == nil {
		t.Fatal("want error for out-of-range partition")
	}
	if _, err := graph.Overlay(pg, edges[:10], nil); err == nil {
		t.Fatal("want error when edge count changes partition count")
	}
	g := graph.Build(0, edges)
	corePG, err := graph.Cut(g, edges, graph.Options{NumPartitions: 4, CoreSubgraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.Overlay(corePG, edges, nil); err == nil {
		t.Fatal("want error for core-subgraph overlay")
	}
}

func TestPrivateTableInit(t *testing.T) {
	pg, _ := buildPG(t, 5, 4)
	pt := NewPrivateTable(3, pg, constProg{})
	if pt.JobID != 3 {
		t.Fatal("job id lost")
	}
	for pi, p := range pg.Parts {
		if len(pt.States[pi]) != p.NumVertices() {
			t.Fatalf("part %d: state len mismatch", pi)
		}
		for li, v := range p.Globals {
			if pt.States[pi][li].Value != float64(v) {
				t.Fatalf("init value wrong for %d", v)
			}
			if pt.Active[pi].Test(li) != (v%2 == 0) {
				t.Fatalf("activation wrong for %d", v)
			}
		}
		if pt.ActiveCount[pi] != pt.Active[pi].Count() {
			t.Fatalf("part %d: cached count stale", pi)
		}
		if pt.Bytes[pi] != 64+int64(p.NumVertices())*16 {
			t.Fatalf("part %d: bytes accounting wrong", pi)
		}
	}
	if !pt.HasActive() {
		t.Fatal("table must start active")
	}
}

func TestPrivateTableAdvance(t *testing.T) {
	pg, _ := buildPG(t, 5, 4)
	pt := NewPrivateTable(0, pg, constProg{})
	pt.Next[1].Set(0)
	pt.Next[1].Set(1)
	pt.Received[1].Set(2)
	pt.Advance()
	if pt.ActiveCount[1] != 2 || !pt.Active[1].Test(0) || !pt.Active[1].Test(1) {
		t.Fatal("Advance did not promote Next")
	}
	if pt.Next[1].Any() || pt.Received[1].Any() {
		t.Fatal("Advance did not clear Next/Received")
	}
	if pt.ActiveCount[0] != 0 || pt.HasActive() != true {
		t.Fatalf("counts wrong after Advance: %v", pt.ActiveCount)
	}
	if got := pt.TotalActive(); got != 2 {
		t.Fatalf("TotalActive = %d, want 2", got)
	}
	parts := pt.ActiveParts()
	if len(parts) != 1 || parts[0] != 1 {
		t.Fatalf("ActiveParts = %v, want [1]", parts)
	}
}

func TestResultUsesMasterAndInitFallback(t *testing.T) {
	// Vertex 90 exists (N=100 explicit) but has no edges, so no replica.
	edges := []model.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	g := graph.Build(100, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPrivateTable(0, pg, constProg{})
	m := pg.MasterOf[1]
	pt.States[m.Part][m.Local].Value = 42
	if got := pt.Result(1, constProg{}); got != 42 {
		t.Fatalf("Result(1) = %v, want master value 42", got)
	}
	if got := pt.Result(90, constProg{}); got != 90 {
		t.Fatalf("Result(90) = %v, want init fallback 90", got)
	}
	res := pt.Results(constProg{})
	if len(res) != 100 || res[1] != 42 || res[90] != 90 {
		t.Fatal("Results materialization wrong")
	}
}
