package storage

import (
	"testing"

	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/model"
)

// constProg is a trivial program for table tests: value = vertex id,
// active iff id is even.
type constProg struct{}

func (constProg) Name() string                { return "const" }
func (constProg) Direction() model.Direction  { return model.Out }
func (constProg) Identity() float64           { return 0 }
func (constProg) Acc(a, b float64) float64    { return a + b }
func (constProg) IsActive(s model.State) bool { return s.Delta != 0 }
func (constProg) Init(v model.VertexID, _ model.GraphInfo) (model.State, bool) {
	return model.State{Value: float64(v)}, v%2 == 0
}
func (constProg) Apply(_ model.VertexID, s *model.State, _ int) (float64, bool) {
	s.Delta = 0
	return 0, false
}
func (constProg) Contribution(seed float64, _ float32) float64 { return seed }

func buildPG(t *testing.T, seed int64, parts int) (*graph.PGraph, []model.Edge) {
	t.Helper()
	edges := gen.ER(seed, 80, 800)
	g := graph.Build(0, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return pg, edges
}

func TestSnapshotResolve(t *testing.T) {
	pg, edges := buildPG(t, 1, 4)
	store := NewSnapshotStore(pg, 100)

	mut, slots := gen.Mutate(edges, 0.02, 80, 2)
	changed := graph.ChangedPartitions(slots, pg.ChunkSize, len(pg.Parts))
	pg2, err := graph.Overlay(pg, mut, changed)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Add(pg2, 200); err != nil {
		t.Fatal(err)
	}

	if got := store.Resolve(50).Timestamp; got != 100 {
		t.Fatalf("Resolve(50) = ts %d, want base 100", got)
	}
	if got := store.Resolve(150).Timestamp; got != 100 {
		t.Fatalf("Resolve(150) = ts %d, want 100", got)
	}
	if got := store.Resolve(200).Timestamp; got != 200 {
		t.Fatalf("Resolve(200) = ts %d, want 200", got)
	}
	if got := store.Resolve(999).Timestamp; got != 200 {
		t.Fatalf("Resolve(999) = ts %d, want 200", got)
	}
	if store.Latest().Timestamp != 200 || store.Len() != 2 {
		t.Fatal("Latest/Len broken")
	}
}

// addVersion mutates a few slots of edges and appends the overlay snapshot
// at ts, returning the mutated list for chaining.
func addVersion(t *testing.T, store *SnapshotStore, edges []model.Edge, ts, seed int64) []model.Edge {
	t.Helper()
	prev := store.Latest().PG
	mut, slots := gen.Mutate(edges, 0.02, 80, seed)
	changed := graph.ChangedPartitions(slots, prev.ChunkSize, len(prev.Parts))
	pg, err := graph.Overlay(prev, mut, changed)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Add(pg, ts); err != nil {
		t.Fatal(err)
	}
	return mut
}

func TestResolveBinarySearch(t *testing.T) {
	pg, edges := buildPG(t, 1, 4)
	store := NewSnapshotStore(pg, 100)
	for i, ts := range []int64{200, 300, 400} {
		edges = addVersion(t, store, edges, ts, int64(10+i))
	}
	cases := []struct {
		arrival int64
		wantTS  int64
		wantSeq int
	}{
		{50, 100, 0},   // before the base: sees the base
		{100, 100, 0},  // exact hit on the base
		{300, 300, 2},  // exact hit mid-series
		{350, 300, 2},  // between two snapshots: the older one
		{400, 400, 3},  // exact hit on the latest
		{9999, 400, 3}, // after the latest
	}
	for _, c := range cases {
		snap, seq := store.ResolveIndex(c.arrival)
		if snap.Timestamp != c.wantTS || seq != c.wantSeq || snap.Seq != c.wantSeq {
			t.Fatalf("ResolveIndex(%d) = ts %d seq %d, want ts %d seq %d",
				c.arrival, snap.Timestamp, seq, c.wantTS, c.wantSeq)
		}
		if got := store.Resolve(c.arrival).Timestamp; got != c.wantTS {
			t.Fatalf("Resolve(%d) = ts %d, want %d", c.arrival, got, c.wantTS)
		}
	}
}

func TestRetentionEvictsUnreferenced(t *testing.T) {
	pg, edges := buildPG(t, 1, 4)
	store := NewSnapshotStore(pg, 100)
	store.SetRetention(2)
	for i := 0; i < 5; i++ {
		edges = addVersion(t, store, edges, int64(200+100*i), int64(20+i))
	}
	if store.Len() != 2 || store.Evicted() != 4 {
		t.Fatalf("len %d evicted %d, want 2 and 4", store.Len(), store.Evicted())
	}
	if _, ok := store.At(0); ok {
		t.Fatal("evicted base still resolvable via At")
	}
	if snap, ok := store.At(4); !ok || snap.Timestamp != 500 {
		t.Fatalf("At(4) = %+v %v, want retained ts 500", snap, ok)
	}
	// Arrivals older than the retained window resolve to the oldest
	// retained snapshot.
	if got := store.Resolve(0).Timestamp; got != 500 {
		t.Fatalf("Resolve(0) = ts %d, want oldest retained 500", got)
	}
	if store.Latest().Timestamp != 600 {
		t.Fatal("latest lost")
	}
	if got := store.SharedParts(0, 5); got != -1 {
		t.Fatalf("SharedParts with evicted seq = %d, want -1", got)
	}
	if got := store.SharedParts(4, 5); got < 0 {
		t.Fatalf("SharedParts of retained pair = %d", got)
	}
	// Retention never evicts the latest, even at cap 1.
	store.SetRetention(1)
	if store.Len() != 1 || store.Latest().Timestamp != 600 {
		t.Fatalf("len %d latest %d after cap 1", store.Len(), store.Latest().Timestamp)
	}
}

func TestRetentionPinsReferencedSnapshot(t *testing.T) {
	pg, edges := buildPG(t, 1, 4)
	store := NewSnapshotStore(pg, 100)
	store.SetRetention(2)
	// A job binds to the base; eviction must stop in front of it.
	bound := store.Acquire(100)
	if bound.Seq != 0 || store.Refs(0) != 1 {
		t.Fatalf("Acquire = seq %d refs %d", bound.Seq, store.Refs(0))
	}
	for i := 0; i < 4; i++ {
		edges = addVersion(t, store, edges, int64(200+100*i), int64(30+i))
	}
	if store.Len() != 5 || store.Evicted() != 0 {
		t.Fatalf("pinned series evicted: len %d evicted %d", store.Len(), store.Evicted())
	}
	if snap, ok := store.At(0); !ok || snap.PG != bound.PG {
		t.Fatal("bound snapshot evicted out from under its job")
	}
	// The job retires: GC runs on Release and shrinks to the cap.
	store.Release(0)
	if store.Len() != 2 || store.Evicted() != 3 {
		t.Fatalf("after release: len %d evicted %d, want 2 and 3", store.Len(), store.Evicted())
	}
	// Releasing an evicted or unknown seq is a no-op.
	store.Release(0)
	store.Release(99)
	if store.Len() != 2 {
		t.Fatal("no-op release changed the store")
	}
}

func TestRetentionSoakStaysBounded(t *testing.T) {
	pg, edges := buildPG(t, 1, 4)
	store := NewSnapshotStore(pg, 100)
	store.SetRetention(3)
	// Jobs continuously bind to the latest version and retire one version
	// later; the live series must stay bounded the whole run.
	prevSeq := -1
	for i := 0; i < 60; i++ {
		edges = addVersion(t, store, edges, int64(200+100*i), int64(100+i))
		snap := store.Acquire(store.Latest().Timestamp)
		if prevSeq >= 0 {
			store.Release(prevSeq)
		}
		prevSeq = snap.Seq
		// One in-flight ref can pin at most one snapshot beyond the cap.
		if store.Len() > 4 {
			t.Fatalf("iteration %d: live snapshots %d exceed bound", i, store.Len())
		}
	}
	store.Release(prevSeq)
	if store.Len() != 3 {
		t.Fatalf("final live %d, want retention cap 3", store.Len())
	}
	if store.Evicted() != 58 {
		t.Fatalf("evicted %d, want 58", store.Evicted())
	}
}

func TestSnapshotTimestampMonotone(t *testing.T) {
	pg, _ := buildPG(t, 1, 4)
	store := NewSnapshotStore(pg, 100)
	if err := store.Add(pg, 100); err == nil {
		t.Fatal("want error for non-increasing timestamp")
	}
}

func TestOverlaySharesUnchangedParts(t *testing.T) {
	pg, edges := buildPG(t, 3, 8)
	// Mutate a handful of slots all in partition 0's chunk.
	mut := append([]model.Edge(nil), edges...)
	mut[0] = model.Edge{Src: 1, Dst: 2, Weight: 1}
	mut[1] = model.Edge{Src: 3, Dst: 4, Weight: 1}
	pg2, err := graph.Overlay(pg, mut, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	store := NewSnapshotStore(pg, 1)
	if err := store.Add(pg2, 2); err != nil {
		t.Fatal(err)
	}
	if got := store.SharedParts(0, 1); got != 7 {
		t.Fatalf("shared parts = %d, want 7", got)
	}
	if pg2.Parts[0] == pg.Parts[0] {
		t.Fatal("changed partition must be rebuilt")
	}
	if pg2.Parts[0].UID == pg.Parts[0].UID {
		t.Fatal("rebuilt partition must get a fresh UID")
	}
	// Replica invariants hold on the overlay: one master per vertex.
	masters := map[model.VertexID]int{}
	for pi, p := range pg2.Parts {
		for li, v := range p.Globals {
			if pg2.IsMaster(pi, uint32(li)) {
				masters[v]++
			}
		}
	}
	for v, c := range masters {
		if c != 1 {
			t.Fatalf("vertex %d has %d masters in overlay", v, c)
		}
	}
}

func TestOverlayErrors(t *testing.T) {
	pg, edges := buildPG(t, 3, 4)
	if _, err := graph.Overlay(pg, edges, []int{99}); err == nil {
		t.Fatal("want error for out-of-range partition")
	}
	if _, err := graph.Overlay(pg, edges[:10], nil); err == nil {
		t.Fatal("want error when edge count changes partition count")
	}
	g := graph.Build(0, edges)
	corePG, err := graph.Cut(g, edges, graph.Options{NumPartitions: 4, CoreSubgraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.Overlay(corePG, edges, nil); err == nil {
		t.Fatal("want error for core-subgraph overlay")
	}
}

func TestPrivateTableInit(t *testing.T) {
	pg, _ := buildPG(t, 5, 4)
	pt := NewPrivateTable(3, pg, constProg{})
	if pt.JobID != 3 {
		t.Fatal("job id lost")
	}
	for pi, p := range pg.Parts {
		if len(pt.States[pi]) != p.NumVertices() {
			t.Fatalf("part %d: state len mismatch", pi)
		}
		for li, v := range p.Globals {
			if pt.States[pi][li].Value != float64(v) {
				t.Fatalf("init value wrong for %d", v)
			}
			if pt.Active[pi].Test(li) != (v%2 == 0) {
				t.Fatalf("activation wrong for %d", v)
			}
		}
		if pt.ActiveCount[pi] != pt.Active[pi].Count() {
			t.Fatalf("part %d: cached count stale", pi)
		}
		if pt.Bytes[pi] != 64+int64(p.NumVertices())*16 {
			t.Fatalf("part %d: bytes accounting wrong", pi)
		}
	}
	if !pt.HasActive() {
		t.Fatal("table must start active")
	}
}

func TestPrivateTableAdvance(t *testing.T) {
	pg, _ := buildPG(t, 5, 4)
	pt := NewPrivateTable(0, pg, constProg{})
	pt.Next[1].Set(0)
	pt.Next[1].Set(1)
	pt.Received[1].Set(2)
	pt.Advance()
	if pt.ActiveCount[1] != 2 || !pt.Active[1].Test(0) || !pt.Active[1].Test(1) {
		t.Fatal("Advance did not promote Next")
	}
	if pt.Next[1].Any() || pt.Received[1].Any() {
		t.Fatal("Advance did not clear Next/Received")
	}
	if pt.ActiveCount[0] != 0 || pt.HasActive() != true {
		t.Fatalf("counts wrong after Advance: %v", pt.ActiveCount)
	}
	if got := pt.TotalActive(); got != 2 {
		t.Fatalf("TotalActive = %d, want 2", got)
	}
	parts := pt.ActiveParts()
	if len(parts) != 1 || parts[0] != 1 {
		t.Fatalf("ActiveParts = %v, want [1]", parts)
	}
}

func TestResultUsesMasterAndInitFallback(t *testing.T) {
	// Vertex 90 exists (N=100 explicit) but has no edges, so no replica.
	edges := []model.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}
	g := graph.Build(100, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	pt := NewPrivateTable(0, pg, constProg{})
	m := pg.MasterOf[1]
	pt.States[m.Part][m.Local].Value = 42
	if got := pt.Result(1, constProg{}); got != 42 {
		t.Fatalf("Result(1) = %v, want master value 42", got)
	}
	if got := pt.Result(90, constProg{}); got != 90 {
		t.Fatalf("Result(90) = %v, want init fallback 90", got)
	}
	res := pt.Results(constProg{})
	if len(res) != 100 || res[1] != 42 || res[90] != 90 {
		t.Fatal("Results materialization wrong")
	}
}

// TestWindowBounds: Window reports the retained series' oldest and newest
// snapshots, tracking retention eviction.
func TestWindowBounds(t *testing.T) {
	pg, _ := buildPG(t, 31, 4)
	s := NewSnapshotStore(pg, 0)
	oldest, newest := s.Window()
	if oldest.Seq != 0 || newest.Seq != 0 || oldest.Timestamp != 0 {
		t.Fatalf("base window = %+v .. %+v", oldest, newest)
	}
	for ts := int64(10); ts <= 50; ts += 10 {
		if err := s.Add(pg, ts); err != nil {
			t.Fatal(err)
		}
	}
	oldest, newest = s.Window()
	if oldest.Seq != 0 || newest.Seq != 5 || newest.Timestamp != 50 {
		t.Fatalf("unbounded window = %+v .. %+v", oldest, newest)
	}
	s.SetRetention(2)
	oldest, newest = s.Window()
	if oldest.Seq != 4 || oldest.Timestamp != 40 || newest.Seq != 5 || newest.Timestamp != 50 {
		t.Fatalf("retained window = %+v .. %+v", oldest, newest)
	}
}
