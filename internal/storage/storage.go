// Package storage implements the two table families of §3.2.1: the global
// table (a series of timestamped graph snapshots stored incrementally, where
// a job binds to the newest snapshot not younger than its arrival) and the
// per-job private tables holding vertex states with the active-set
// bookkeeping every engine shares.
package storage

import (
	"fmt"

	"cgraph/internal/bitset"
	"cgraph/internal/graph"
	"cgraph/model"
)

// Snapshot is one timestamped global-table version.
type Snapshot struct {
	Timestamp int64
	PG        *graph.PGraph
}

// SnapshotStore keeps the snapshot series in timestamp order. Unchanged
// partitions are shared by pointer between consecutive snapshots (built via
// graph.Overlay), which is the incremental storage scheme of Fig. 5.
type SnapshotStore struct {
	snaps []Snapshot
}

// NewSnapshotStore starts the series with a base snapshot.
func NewSnapshotStore(pg *graph.PGraph, timestamp int64) *SnapshotStore {
	return &SnapshotStore{snaps: []Snapshot{{Timestamp: timestamp, PG: pg}}}
}

// Add appends a newer snapshot; timestamps must strictly increase.
func (s *SnapshotStore) Add(pg *graph.PGraph, timestamp int64) error {
	if timestamp <= s.snaps[len(s.snaps)-1].Timestamp {
		return fmt.Errorf("storage: snapshot timestamp %d not after %d", timestamp, s.snaps[len(s.snaps)-1].Timestamp)
	}
	s.snaps = append(s.snaps, Snapshot{Timestamp: timestamp, PG: pg})
	return nil
}

// Resolve returns the newest snapshot whose timestamp does not exceed the
// job's arrival time; a job older than every snapshot sees the base.
func (s *SnapshotStore) Resolve(arrival int64) Snapshot {
	best := s.snaps[0]
	for _, snap := range s.snaps[1:] {
		if snap.Timestamp <= arrival {
			best = snap
		}
	}
	return best
}

// ResolveIndex is Resolve plus the snapshot's index in the series.
func (s *SnapshotStore) ResolveIndex(arrival int64) (Snapshot, int) {
	best, idx := s.snaps[0], 0
	for i, snap := range s.snaps[1:] {
		if snap.Timestamp <= arrival {
			best, idx = snap, i+1
		}
	}
	return best, idx
}

// Latest returns the newest snapshot.
func (s *SnapshotStore) Latest() Snapshot { return s.snaps[len(s.snaps)-1] }

// At returns the i-th snapshot in timestamp order.
func (s *SnapshotStore) At(i int) Snapshot { return s.snaps[i] }

// Len returns the number of snapshots.
func (s *SnapshotStore) Len() int { return len(s.snaps) }

// SharedParts counts partitions shared by pointer between snapshots i and j.
func (s *SnapshotStore) SharedParts(i, j int) int {
	a, b := s.snaps[i].PG.Parts, s.snaps[j].PG.Parts
	n := 0
	for k := range a {
		if k < len(b) && a[k] == b[k] {
			n++
		}
	}
	return n
}

// PrivateTable is one job's vertex-state table, laid out per partition of
// the snapshot the job is bound to, with the three activity sets the
// engines maintain: Active (this iteration), Next (activations discovered at
// sync), and Received (locals that accumulated deltas this iteration).
type PrivateTable struct {
	JobID int
	PG    *graph.PGraph

	States   [][]model.State
	Active   []*bitset.Set
	Next     []*bitset.Set
	Received []*bitset.Set
	// ActiveCount caches Active[p].Count() per partition; it feeds N(P)
	// in the Eq. 1 scheduler and the straggler detector for free.
	ActiveCount []int
	// Bytes is the simulated size of each private partition (the sp·N term
	// of the Pg formula).
	Bytes []int64
}

// NewPrivateTable initializes states by running prog.Init on every replica
// and activates the replicas of initially-active vertices.
func NewPrivateTable(jobID int, pg *graph.PGraph, prog model.Program) *PrivateTable {
	np := len(pg.Parts)
	pt := &PrivateTable{
		JobID:       jobID,
		PG:          pg,
		States:      make([][]model.State, np),
		Active:      make([]*bitset.Set, np),
		Next:        make([]*bitset.Set, np),
		Received:    make([]*bitset.Set, np),
		ActiveCount: make([]int, np),
		Bytes:       make([]int64, np),
	}
	for pi, p := range pg.Parts {
		n := p.NumVertices()
		pt.States[pi] = make([]model.State, n)
		pt.Active[pi] = bitset.New(n)
		pt.Next[pi] = bitset.New(n)
		pt.Received[pi] = bitset.New(n)
		pt.Bytes[pi] = 64 + int64(n)*16
		for li, v := range p.Globals {
			s, active := prog.Init(v, pg.G)
			pt.States[pi][li] = s
			if active {
				pt.Active[pi].Set(li)
			}
		}
		pt.ActiveCount[pi] = pt.Active[pi].Count()
	}
	return pt
}

// HasActive reports whether any partition has active vertices.
func (pt *PrivateTable) HasActive() bool {
	for _, c := range pt.ActiveCount {
		if c > 0 {
			return true
		}
	}
	return false
}

// TotalActive sums active vertices across partitions.
func (pt *PrivateTable) TotalActive() int {
	total := 0
	for _, c := range pt.ActiveCount {
		total += c
	}
	return total
}

// ActiveParts returns the IDs of partitions with at least one active vertex.
func (pt *PrivateTable) ActiveParts() []int {
	var out []int
	for pi, c := range pt.ActiveCount {
		if c > 0 {
			out = append(out, pi)
		}
	}
	return out
}

// Advance moves the job to its next iteration: Next becomes Active, Next and
// Received are cleared, and the cached counts refresh.
func (pt *PrivateTable) Advance() {
	for pi := range pt.Active {
		pt.Active[pi].Swap(pt.Next[pi])
		pt.Next[pi].Reset()
		pt.Received[pi].Reset()
		pt.ActiveCount[pi] = pt.Active[pi].Count()
	}
}

// Result returns the converged value of vertex v: its master replica's
// value, or the program's init state with the initial delta applied for
// edge-less vertices. Programs implementing model.Resulter override the
// extraction.
func (pt *PrivateTable) Result(v model.VertexID, prog model.Program) float64 {
	m := pt.PG.MasterOf[v]
	var s model.State
	if m.Part < 0 {
		// Edge-less vertex: it trivially converges after absorbing its
		// initial delta (e.g. an isolated vertex's PageRank is 1-d).
		s, _ = prog.Init(v, pt.PG.G)
		prog.Apply(v, &s, 0)
	} else {
		s = pt.States[m.Part][m.Local]
	}
	if r, ok := prog.(model.Resulter); ok {
		return r.Result(v, s)
	}
	return s.Value
}

// Results materializes the per-vertex values for all vertices.
func (pt *PrivateTable) Results(prog model.Program) []float64 {
	out := make([]float64, pt.PG.G.N)
	for v := range out {
		out[v] = pt.Result(model.VertexID(v), prog)
	}
	return out
}
