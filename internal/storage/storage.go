// Package storage implements the two table families of §3.2.1: the global
// table (a series of timestamped graph snapshots stored incrementally, where
// a job binds to the newest snapshot not younger than its arrival) and the
// per-job private tables holding vertex states with the active-set
// bookkeeping every engine shares.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"cgraph/internal/bitset"
	"cgraph/internal/graph"
	"cgraph/model"
)

// Snapshot is one timestamped global-table version.
type Snapshot struct {
	// Seq is the snapshot's stable position in the series (append order,
	// starting at 0 for the base). Unlike a slice index it survives
	// retention eviction, so references held by bound jobs stay valid.
	Seq       int
	Timestamp int64
	PG        *graph.PGraph
}

// SnapshotStore keeps the snapshot series in timestamp order. Unchanged
// partitions are shared by pointer between consecutive snapshots (built via
// graph.Overlay), which is the incremental storage scheme of Fig. 5.
//
// The store also owns snapshot lifecycle: jobs binding to a snapshot take a
// reference (Acquire/Release), and a retention policy (SetRetention) evicts
// the oldest unreferenced snapshots beyond the cap so a resident service
// ingesting deltas forever does not grow without bound. Eviction is
// oldest-first and stops at the first referenced snapshot, so a job bound to
// a retained old version is never evicted out from under it, and the latest
// snapshot is never evicted. All methods are safe for concurrent use.
type SnapshotStore struct {
	mu sync.Mutex
	// snaps is the retained window, timestamp-ascending; snaps[i].Seq ==
	// base+i, where base is the seq of the oldest retained snapshot.
	snaps []Snapshot
	base  int
	// refs counts bound jobs per retained snapshot seq.
	refs map[int]int
	// retain caps the retained window (0 = keep every snapshot).
	retain  int
	evicted int
	// onEvict, when set, observes every GC eviction. Called with the store
	// lock held (and possibly the locks of whoever triggered the Add), so
	// it must be fast and must never call back into the store.
	onEvict func(seq int, timestamp int64)
}

// NewSnapshotStore starts the series with a base snapshot.
func NewSnapshotStore(pg *graph.PGraph, timestamp int64) *SnapshotStore {
	return &SnapshotStore{
		snaps: []Snapshot{{Seq: 0, Timestamp: timestamp, PG: pg}},
		refs:  make(map[int]int),
	}
}

// SetRetention caps the retained snapshot window at n (0 disables eviction)
// and applies the policy immediately.
func (s *SnapshotStore) SetRetention(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	s.retain = n
	s.gcLocked()
}

// Retention returns the configured retained-window cap (0 = unbounded).
func (s *SnapshotStore) Retention() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retain
}

// gcLocked evicts the oldest unreferenced snapshots beyond the retention
// cap. It walks from the front and stops at the first referenced snapshot
// (evicting a middle snapshot would change which version old arrivals
// resolve to) and never evicts the latest.
func (s *SnapshotStore) gcLocked() {
	if s.retain <= 0 {
		return
	}
	for len(s.snaps) > s.retain && len(s.snaps) > 1 && s.refs[s.snaps[0].Seq] == 0 {
		seq, ts := s.snaps[0].Seq, s.snaps[0].Timestamp
		s.snaps[0] = Snapshot{}
		s.snaps = s.snaps[1:]
		s.base++
		s.evicted++
		if s.onEvict != nil {
			s.onEvict(seq, ts)
		}
	}
}

// SetEvictObserver registers fn to observe every retention-GC eviction
// (seq and timestamp of the evicted snapshot). fn is called with the store
// lock held — it must be fast and must not call back into the store. Pass
// nil to clear.
func (s *SnapshotStore) SetEvictObserver(fn func(seq int, timestamp int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onEvict = fn
}

// Add appends a newer snapshot; timestamps must strictly increase. The
// retention policy runs afterwards, so an Add can evict older unreferenced
// snapshots.
func (s *SnapshotStore) Add(pg *graph.PGraph, timestamp int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := s.snaps[len(s.snaps)-1]
	if timestamp <= last.Timestamp {
		return fmt.Errorf("storage: snapshot timestamp %d not after %d", timestamp, last.Timestamp)
	}
	s.snaps = append(s.snaps, Snapshot{Seq: last.Seq + 1, Timestamp: timestamp, PG: pg})
	s.gcLocked()
	return nil
}

// resolveLocked binary-searches the timestamp-ordered window for the newest
// snapshot whose timestamp does not exceed arrival. An arrival older than
// every retained snapshot sees the oldest retained one (the base, until
// retention evicts it).
func (s *SnapshotStore) resolveLocked(arrival int64) Snapshot {
	// First retained snapshot with Timestamp > arrival; its predecessor is
	// the newest with Timestamp <= arrival.
	i := sort.Search(len(s.snaps), func(i int) bool { return s.snaps[i].Timestamp > arrival })
	if i == 0 {
		return s.snaps[0]
	}
	return s.snaps[i-1]
}

// Resolve returns the newest snapshot whose timestamp does not exceed the
// job's arrival time; a job older than every retained snapshot sees the
// oldest retained one.
func (s *SnapshotStore) Resolve(arrival int64) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resolveLocked(arrival)
}

// ResolveIndex is Resolve plus the snapshot's stable series index (its Seq).
func (s *SnapshotStore) ResolveIndex(arrival int64) (Snapshot, int) {
	snap := s.Resolve(arrival)
	return snap, snap.Seq
}

// Acquire resolves the newest snapshot not younger than arrival and takes a
// reference on it, protecting it from retention eviction until Release.
func (s *SnapshotStore) Acquire(arrival int64) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.resolveLocked(arrival)
	s.refs[snap.Seq]++
	return snap
}

// Release drops one reference taken by Acquire and re-applies the retention
// policy, so snapshots pinned only by retired jobs get evicted promptly.
// Releasing an evicted or never-acquired seq is a no-op.
func (s *SnapshotStore) Release(seq int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.refs[seq]; ok {
		if n <= 1 {
			delete(s.refs, seq)
		} else {
			s.refs[seq] = n - 1
		}
	}
	s.gcLocked()
}

// Refs returns the bound-job reference count of the snapshot with the given
// seq.
func (s *SnapshotStore) Refs(seq int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs[seq]
}

// Window reports the retained window's bounds: the oldest and newest
// retained snapshots. Jobs arriving with timestamps before the oldest
// bound are served by the oldest retained version.
func (s *SnapshotStore) Window() (oldest, newest Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snaps[0], s.snaps[len(s.snaps)-1]
}

// Latest returns the newest snapshot.
func (s *SnapshotStore) Latest() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snaps[len(s.snaps)-1]
}

// At returns the retained snapshot with series index (Seq) seq; ok is false
// if it was evicted or never existed.
func (s *SnapshotStore) At(seq int) (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := seq - s.base
	if i < 0 || i >= len(s.snaps) {
		return Snapshot{}, false
	}
	return s.snaps[i], true
}

// Snapshots returns a copy of the retained window, oldest first.
func (s *SnapshotStore) Snapshots() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Snapshot(nil), s.snaps...)
}

// Len returns the number of retained snapshots.
func (s *SnapshotStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps)
}

// Evicted returns how many snapshots the retention policy has evicted.
func (s *SnapshotStore) Evicted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// SharedParts counts partitions shared by pointer between the retained
// snapshots with series indices (Seqs) i and j; -1 if either was evicted.
func (s *SnapshotStore) SharedParts(i, j int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ii, jj := i-s.base, j-s.base
	if ii < 0 || ii >= len(s.snaps) || jj < 0 || jj >= len(s.snaps) {
		return -1
	}
	a, b := s.snaps[ii].PG.Parts, s.snaps[jj].PG.Parts
	n := 0
	for k := range a {
		if k < len(b) && a[k] == b[k] {
			n++
		}
	}
	return n
}

// PrivateTable is one job's vertex-state table, laid out per partition of
// the snapshot the job is bound to, with the three activity sets the
// engines maintain: Active (this iteration), Next (activations discovered at
// sync), and Received (locals that accumulated deltas this iteration).
type PrivateTable struct {
	JobID int
	PG    *graph.PGraph

	States   [][]model.State
	Active   []*bitset.Set
	Next     []*bitset.Set
	Received []*bitset.Set
	// ActiveCount caches Active[p].Count() per partition; it feeds N(P)
	// in the Eq. 1 scheduler and the straggler detector for free.
	ActiveCount []int
	// Bytes is the simulated size of each private partition (the sp·N term
	// of the Pg formula).
	Bytes []int64
}

// NewPrivateTable initializes states by running prog.Init on every replica
// and activates the replicas of initially-active vertices.
func NewPrivateTable(jobID int, pg *graph.PGraph, prog model.Program) *PrivateTable {
	np := len(pg.Parts)
	pt := &PrivateTable{
		JobID:       jobID,
		PG:          pg,
		States:      make([][]model.State, np),
		Active:      make([]*bitset.Set, np),
		Next:        make([]*bitset.Set, np),
		Received:    make([]*bitset.Set, np),
		ActiveCount: make([]int, np),
		Bytes:       make([]int64, np),
	}
	for pi, p := range pg.Parts {
		n := p.NumVertices()
		pt.States[pi] = make([]model.State, n)
		pt.Active[pi] = bitset.New(n)
		pt.Next[pi] = bitset.New(n)
		pt.Received[pi] = bitset.New(n)
		pt.Bytes[pi] = 64 + int64(n)*16
		for li, v := range p.Globals {
			s, active := prog.Init(v, pg.G)
			pt.States[pi][li] = s
			if active {
				pt.Active[pi].Set(li)
			}
		}
		pt.ActiveCount[pi] = pt.Active[pi].Count()
	}
	return pt
}

// HasActive reports whether any partition has active vertices.
func (pt *PrivateTable) HasActive() bool {
	for _, c := range pt.ActiveCount {
		if c > 0 {
			return true
		}
	}
	return false
}

// TotalActive sums active vertices across partitions.
func (pt *PrivateTable) TotalActive() int {
	total := 0
	for _, c := range pt.ActiveCount {
		total += c
	}
	return total
}

// ActiveParts returns the IDs of partitions with at least one active vertex.
func (pt *PrivateTable) ActiveParts() []int {
	var out []int
	for pi, c := range pt.ActiveCount {
		if c > 0 {
			out = append(out, pi)
		}
	}
	return out
}

// Advance moves the job to its next iteration: Next becomes Active, Next and
// Received are cleared, and the cached counts refresh.
func (pt *PrivateTable) Advance() {
	for pi := range pt.Active {
		pt.Active[pi].Swap(pt.Next[pi])
		pt.Next[pi].Reset()
		pt.Received[pi].Reset()
		pt.ActiveCount[pi] = pt.Active[pi].Count()
	}
}

// Result returns the converged value of vertex v: its master replica's
// value, or the program's init state with the initial delta applied for
// edge-less vertices. Programs implementing model.Resulter override the
// extraction.
func (pt *PrivateTable) Result(v model.VertexID, prog model.Program) float64 {
	m := pt.PG.MasterOf[v]
	var s model.State
	if m.Part < 0 {
		// Edge-less vertex: it trivially converges after absorbing its
		// initial delta (e.g. an isolated vertex's PageRank is 1-d).
		s, _ = prog.Init(v, pt.PG.G)
		prog.Apply(v, &s, 0)
	} else {
		s = pt.States[m.Part][m.Local]
	}
	if r, ok := prog.(model.Resulter); ok {
		return r.Result(v, s)
	}
	return s.Value
}

// Results materializes the per-vertex values for all vertices.
func (pt *PrivateTable) Results(prog model.Program) []float64 {
	out := make([]float64, pt.PG.G.N)
	for v := range out {
		out[v] = pt.Result(model.VertexID(v), prog)
	}
	return out
}
