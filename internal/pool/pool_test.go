package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		const n = 500
		counts := make([]atomic.Int64, n)
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = Task{Run: func(int) { counts[i].Add(1) }, Weight: int64(i % 7)}
		}
		st := p.Run(tasks)
		if st.Tasks != n {
			t.Fatalf("workers=%d: Tasks = %d, want %d", workers, st.Tasks, n)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	p := New(4)
	if st := p.Run(nil); st.Tasks != 0 {
		t.Fatalf("empty run: Tasks = %d", st.Tasks)
	}
	ran := 0
	st := p.Run([]Task{{Run: func(w int) { ran++ }, Weight: 9}})
	if ran != 1 || st.Tasks != 1 {
		t.Fatalf("single task: ran=%d stats=%+v", ran, st)
	}
	if st.MaxWorkerWeight != 9 || st.TotalWeight != 9 {
		t.Fatalf("single task weights: %+v", st)
	}
}

func TestWorkerIDsWithinBound(t *testing.T) {
	p := New(3)
	var bad atomic.Int64
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Run: func(w int) {
			if w < 0 || w >= 3 {
				bad.Add(1)
			}
		}}
	}
	p.Run(tasks)
	if bad.Load() != 0 {
		t.Fatalf("%d tasks saw an out-of-range worker id", bad.Load())
	}
}

// TestHeavyTaskDoesNotBlockSmall blocks one worker on a giant task and
// checks every small task still completes while it is held — the hub-stall
// scenario static chunking cannot escape.
func TestHeavyTaskDoesNotBlockSmall(t *testing.T) {
	p := New(4)
	release := make(chan struct{})
	var reached sync.WaitGroup
	reached.Add(1)
	var small atomic.Int64
	tasks := []Task{
		// One task heavy enough that LPT seeds everything else elsewhere,
		// then blocks its worker until the small tasks have all run —
		// forcing any tasks co-seeded behind it to be stolen.
		{Weight: 1 << 40, Run: func(int) { reached.Done(); <-release }},
	}
	const nSmall = 200
	for i := 0; i < nSmall; i++ {
		tasks = append(tasks, Task{Weight: 1, Run: func(int) { small.Add(1) }})
	}
	done := make(chan Stats, 1)
	go func() { done <- p.Run(tasks) }()
	reached.Wait()
	// All small tasks can finish while the heavy one is still blocked:
	// they are spread over the other three workers and stealable.
	for small.Load() != nSmall {
		runtime.Gosched()
	}
	close(release)
	st := <-done
	if st.Tasks != nSmall+1 {
		t.Fatalf("Tasks = %d, want %d", st.Tasks, nSmall+1)
	}
	if st.MaxWorkerWeight < 1<<40 {
		t.Fatalf("MaxWorkerWeight = %d, want >= heavy task", st.MaxWorkerWeight)
	}
}

func TestImbalance(t *testing.T) {
	st := Stats{MaxWorkerWeight: 50, TotalWeight: 100}
	if got := st.Imbalance(2); got != 1.0 {
		t.Fatalf("even split imbalance = %v", got)
	}
	st = Stats{MaxWorkerWeight: 100, TotalWeight: 100}
	if got := st.Imbalance(4); got != 4.0 {
		t.Fatalf("all-on-one imbalance = %v", got)
	}
	if got := (Stats{}).Imbalance(4); got != 1.0 {
		t.Fatalf("zero stats imbalance = %v", got)
	}
}

// TestConcurrentRunsSerialize checks Run is safe to call from multiple
// goroutines (rounds never overlap in the engine, but the pool should not
// corrupt state if they do).
func TestConcurrentRunsSerialize(t *testing.T) {
	p := New(4)
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]Task, 100)
			for i := range tasks {
				tasks[i] = Task{Run: func(int) { total.Add(1) }}
			}
			p.Run(tasks)
		}()
	}
	wg.Wait()
	if total.Load() != 400 {
		t.Fatalf("total = %d, want 400", total.Load())
	}
}

func BenchmarkRunUniform(b *testing.B) {
	p := New(8)
	tasks := make([]Task, 256)
	var sink atomic.Int64
	for i := range tasks {
		tasks[i] = Task{Weight: 100, Run: func(int) { sink.Add(1) }}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(tasks)
	}
}

// TestTraceBracket verifies the Trace seam: the pre-hook fires once per
// task with the executing worker, the returned post-hook fires after Run,
// and stolen reporting is consistent (a task that never moved reports
// stolen=false; the stolen count matches the pool's own Stolen stat at
// least in the single-worker case where nothing can move).
func TestTraceBracket(t *testing.T) {
	var pre, post, stolen atomic.Int64
	mk := func(n int) []Task {
		tasks := make([]Task, n)
		for i := range tasks {
			ran := false
			tasks[i] = Task{
				Weight: int64(i + 1),
				Run:    func(int) { ran = true },
				Trace: func(worker int, st bool) func() {
					if ran {
						t.Error("Trace fired after Run")
					}
					pre.Add(1)
					if st {
						stolen.Add(1)
					}
					return func() {
						if !ran {
							t.Error("post-hook fired before Run completed")
						}
						post.Add(1)
					}
				},
			}
		}
		return tasks
	}

	// Inline path: one worker, nothing can be stolen.
	New(1).Run(mk(16))
	if pre.Load() != 16 || post.Load() != 16 {
		t.Fatalf("inline: pre/post = %d/%d, want 16/16", pre.Load(), post.Load())
	}
	if stolen.Load() != 0 {
		t.Fatalf("inline: stolen = %d, want 0", stolen.Load())
	}

	// Parallel path: every task still brackets exactly once.
	pre.Store(0)
	post.Store(0)
	stolen.Store(0)
	st := New(4).Run(mk(64))
	if pre.Load() != 64 || post.Load() != 64 {
		t.Fatalf("parallel: pre/post = %d/%d, want 64/64", pre.Load(), post.Load())
	}
	if stolen.Load() > st.Stolen {
		t.Fatalf("trace reported %d stolen tasks, pool moved only %d", stolen.Load(), st.Stolen)
	}
}

// TestChainPreservesOrder: a chained task's subtasks must run in order on
// one worker even while the pool rebalances other tasks around it.
func TestChainPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		p := New(workers)
		const chains, perChain = 16, 32
		type rec struct {
			order   []int
			workers map[int]bool
		}
		recs := make([]rec, chains)
		var tasks []Task
		for c := 0; c < chains; c++ {
			c := c
			recs[c].workers = make(map[int]bool)
			sub := make([]Task, perChain)
			for i := range sub {
				i := i
				sub[i] = Task{Weight: int64(i%5 + 1), Run: func(w int) {
					recs[c].order = append(recs[c].order, i)
					recs[c].workers[w] = true
				}}
			}
			tasks = append(tasks, Chain(sub))
		}
		// Interleave independent ballast so steals actually happen.
		var ballast atomic.Int64
		for i := 0; i < 64; i++ {
			tasks = append(tasks, Task{Weight: 3, Run: func(int) { ballast.Add(1) }})
		}
		st := p.Run(tasks)
		if st.Tasks != chains+64 {
			t.Fatalf("workers=%d: Tasks = %d, want %d", workers, st.Tasks, chains+64)
		}
		if ballast.Load() != 64 {
			t.Fatalf("workers=%d: ballast ran %d times", workers, ballast.Load())
		}
		for c := range recs {
			if len(recs[c].order) != perChain {
				t.Fatalf("workers=%d: chain %d ran %d subtasks", workers, c, len(recs[c].order))
			}
			for i, got := range recs[c].order {
				if got != i {
					t.Fatalf("workers=%d: chain %d position %d ran subtask %d", workers, c, i, got)
				}
			}
			if len(recs[c].workers) != 1 {
				t.Fatalf("workers=%d: chain %d spanned %d workers", workers, c, len(recs[c].workers))
			}
		}
	}
}

// TestChainWeightAndDegenerates: weights sum; empty and single chains are
// well-formed tasks.
func TestChainWeightAndDegenerates(t *testing.T) {
	ct := Chain([]Task{{Weight: 2}, {Weight: 0}, {Weight: 5}})
	if ct.Weight != 8 { // zero weights count as 1
		t.Fatalf("chain weight = %d, want 8", ct.Weight)
	}
	ran := false
	single := Chain([]Task{{Weight: 4, Run: func(int) { ran = true }}})
	if single.Weight != 4 {
		t.Fatalf("single chain weight = %d, want 4", single.Weight)
	}
	single.Run(0)
	if !ran {
		t.Fatal("single chain did not run its subtask")
	}
	empty := Chain(nil)
	empty.Run(0) // must not panic
}
