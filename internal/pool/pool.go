// Package pool is the engine's work-stealing task executor: a bounded set
// of workers, one mutex-guarded deque per worker, owner pops from the tail,
// idle workers steal half a victim's deque from the head (CGgraph-style
// steal-half). Tasks carry an integer weight (edge counts, in the engine's
// use) so seeding can place heavy tasks first (LPT greedy) and callers can
// read post-run imbalance. The pool is shared by the compute and merge
// phases of a round, which bounds total goroutines at Workers instead of
// jobs × scratches.
//
// Tasks must not submit further tasks: a run terminates when every deque
// has been observed empty by an idle worker, which is only sound because
// the task set is fixed up front.
package pool

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Task is one unit of work. Weight is the caller's cost estimate (e.g. an
// edge count) used for initial placement and imbalance accounting; zero
// weights are placed round-robin-ish with an assumed cost of 1.
type Task struct {
	Run    func(worker int)
	Weight int64
	// Trace, when non-nil, brackets the task's execution: it is invoked
	// just before Run with the executing worker and whether the task ran
	// on a worker other than the one it was seeded on (i.e. it was moved
	// by a steal), and the returned func — if non-nil — runs right after
	// Run returns. The engine uses this seam for per-task tracing and
	// stolen-task attribution without the pool depending on the tracer.
	Trace func(worker int, stolen bool) func()
	// seed is the worker the task was initially placed on.
	seed int
}

// exec runs the task on worker w, bracketing it with Trace when set.
func (t *Task) exec(w int) {
	if t.Trace != nil {
		if done := t.Trace(w, w != t.seed); done != nil {
			defer done()
		}
	}
	t.Run(w)
}

// Chain composes an ordered sequence of subtasks into one task: the
// subtasks run back to back, in order, on whichever single worker executes
// the chain — never concurrently, and never reordered by steals, which
// move the chain as a unit. The engine uses this for fresh-state (async)
// jobs, whose per-partition block sequence must be preserved while
// distinct partitions still balance across workers. The chain's weight is
// the sum of its subtasks' weights. Subtask Trace hooks are ignored;
// attach one to the returned task to bracket the whole chain.
func Chain(sub []Task) Task {
	if len(sub) == 0 {
		return Task{Run: func(int) {}}
	}
	if len(sub) == 1 {
		return Task{Run: sub[0].Run, Weight: taskWeight(sub[0])}
	}
	var w int64
	for _, t := range sub {
		w += taskWeight(t)
	}
	return Task{
		Weight: w,
		Run: func(worker int) {
			for i := range sub {
				sub[i].Run(worker)
			}
		},
	}
}

// Stats is the account of one Run call.
type Stats struct {
	// Tasks is the number of tasks executed.
	Tasks int64
	// Steals counts successful steal operations; Stolen counts the tasks
	// they moved. Stolen/Steals ≈ batch size; both 0 means the initial
	// placement was balanced enough that nobody went idle early.
	Steals int64
	Stolen int64
	// MaxWorkerWeight / TotalWeight describe the realized per-worker load
	// split: MaxWorkerWeight·Workers / TotalWeight is the imbalance factor
	// (1.0 = perfectly even).
	MaxWorkerWeight int64
	TotalWeight     int64
}

// Imbalance returns MaxWorkerWeight·workers/TotalWeight, or 1 when no
// weight was recorded.
func (s Stats) Imbalance(workers int) float64 {
	if s.TotalWeight <= 0 || workers <= 0 {
		return 1
	}
	return float64(s.MaxWorkerWeight) * float64(workers) / float64(s.TotalWeight)
}

// deque is one worker's task queue. The owner pops from the tail; thieves
// lock it and take half from the head.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) popTail() (Task, bool) {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return Task{}, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = Task{}
	d.tasks = d.tasks[:n-1]
	d.mu.Unlock()
	return t, true
}

// stealHalf moves ceil(len/2) tasks from the victim's head into dst.
func (d *deque) stealHalf(dst *deque) int {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return 0
	}
	take := (n + 1) / 2
	batch := make([]Task, take)
	copy(batch, d.tasks[:take])
	d.tasks = d.tasks[:copy(d.tasks, d.tasks[take:])]
	d.mu.Unlock()

	dst.mu.Lock()
	dst.tasks = append(dst.tasks, batch...)
	dst.mu.Unlock()
	return take
}

// Pool executes task sets on a fixed number of workers. Goroutines are
// spawned per Run (none are resident between rounds); the zero-value Pool
// is not usable — construct with New.
type Pool struct {
	workers int
	runMu   sync.Mutex // one task set at a time
}

// New returns a pool with the given worker bound (minimum 1).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the worker bound.
func (p *Pool) Workers() int { return p.workers }

// Run executes every task and returns the run's stats. Tasks are seeded
// LPT (heaviest first onto the currently lightest worker) and rebalanced
// by stealing as workers drain. With one worker, or a single task, the
// pool runs inline on the calling goroutine with zero scheduling overhead.
func (p *Pool) Run(tasks []Task) Stats {
	if len(tasks) == 0 {
		return Stats{}
	}
	var st Stats
	for _, t := range tasks {
		st.TotalWeight += taskWeight(t)
	}
	st.Tasks = int64(len(tasks))
	if p.workers == 1 || len(tasks) == 1 {
		for i := range tasks {
			tasks[i].exec(0)
		}
		st.MaxWorkerWeight = st.TotalWeight
		return st
	}

	p.runMu.Lock()
	defer p.runMu.Unlock()

	n := p.workers
	if len(tasks) < n {
		n = len(tasks)
	}
	deques := make([]*deque, n)
	for i := range deques {
		deques[i] = &deque{}
	}
	seed(deques, tasks)

	var steals, stolen atomic.Int64
	executed := make([]int64, n) // per-worker executed weight, owner-written
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			self := deques[id]
			for {
				t, ok := self.popTail()
				if !ok {
					if !stealSweep(id, deques, &steals, &stolen) {
						return
					}
					continue
				}
				t.exec(id)
				executed[id] += taskWeight(t)
			}
		}(w)
	}
	wg.Wait()

	st.Steals = steals.Load()
	st.Stolen = stolen.Load()
	for _, w := range executed {
		if w > st.MaxWorkerWeight {
			st.MaxWorkerWeight = w
		}
	}
	return st
}

func taskWeight(t Task) int64 {
	if t.Weight <= 0 {
		return 1
	}
	return t.Weight
}

// seed distributes tasks LPT-greedy: heaviest task onto the worker with
// the least seeded weight. Equal-weight (or unweighted) tasks degrade to a
// round-robin spread.
func seed(deques []*deque, tasks []Task) {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return taskWeight(tasks[order[a]]) > taskWeight(tasks[order[b]])
	})
	load := make([]int64, len(deques))
	for _, ti := range order {
		light := 0
		for w := 1; w < len(load); w++ {
			if load[w] < load[light] {
				light = w
			}
		}
		t := tasks[ti]
		t.seed = light
		load[light] += taskWeight(t)
		deques[light].tasks = append(deques[light].tasks, t)
	}
	// Owners pop from the tail; reverse so the heaviest seeded task runs
	// first and the small tail tasks remain stealable at the head.
	for _, d := range deques {
		for i, j := 0, len(d.tasks)-1; i < j; i, j = i+1, j-1 {
			d.tasks[i], d.tasks[j] = d.tasks[j], d.tasks[i]
		}
	}
}

// stealSweep tries every other deque once, starting after the thief.
// Returns false only after a full idle sweep, which (with a fixed task
// set) means no queued work remains anywhere.
func stealSweep(id int, deques []*deque, steals, stolen *atomic.Int64) bool {
	for off := 1; off < len(deques); off++ {
		victim := deques[(id+off)%len(deques)]
		if got := victim.stealHalf(deques[id]); got > 0 {
			steals.Add(1)
			stolen.Add(int64(got))
			return true
		}
	}
	return false
}
