package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdered(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	for _, v := range []int{5, 3, 8, 1, 9, 2} {
		h.Push(v)
	}
	want := []int{1, 2, 3, 5, 8, 9}
	for _, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("Pop = %d, want %d", got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after draining", h.Len())
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Push(7)
	h.Push(3)
	if h.Peek() != 3 || h.Len() != 2 {
		t.Fatal("Peek changed heap state")
	}
}

func TestReset(t *testing.T) {
	h := New(func(a, b int) bool { return a < b })
	h.Push(1)
	h.Push(2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(9)
	if h.Pop() != 9 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestMaxHeapViaLess(t *testing.T) {
	h := New(func(a, b float64) bool { return a > b })
	for _, v := range []float64{1.5, -2, 10, 3} {
		h.Push(v)
	}
	if got := h.Pop(); got != 10 {
		t.Fatalf("max-heap Pop = %v, want 10", got)
	}
}

// TestQuickSortsLikeSort property-tests that draining the heap yields a
// sorted permutation of the input.
func TestQuickSortsLikeSort(t *testing.T) {
	f := func(vals []int64) bool {
		h := New(func(a, b int64) bool { return a < b })
		for _, v := range vals {
			h.Push(v)
		}
		out := make([]int64, 0, len(vals))
		for h.Len() > 0 {
			out = append(out, h.Pop())
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if len(out) != len(sorted) {
			return false
		}
		for i := range out {
			if out[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := New(func(a, b int) bool { return a < b })
	live := 0
	min := func() int {
		return h.Peek()
	}
	_ = min
	for i := 0; i < 10000; i++ {
		if live == 0 || rng.Intn(2) == 0 {
			h.Push(rng.Intn(1000))
			live++
		} else {
			prev := h.Pop()
			live--
			if h.Len() > 0 && h.Peek() < prev {
				t.Fatal("heap order violated")
			}
		}
	}
}
