// Package pqueue provides a small generic binary min-heap used for the
// partition-load scheduler (max-heap via negated priority) and the
// discrete-event simulator's time-ordered event queue.
package pqueue

// Heap is a binary heap ordered by a user-supplied less function.
// The zero value is not usable; construct with New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less.
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds an item.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum item. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum item without removing it.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Reset empties the heap, retaining capacity.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
