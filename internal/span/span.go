// Package span is a stdlib-only, allocation-bounded span tracer for the
// CGraph job service: the causal chain of one request — HTTP arrival, job
// submission, queue wait, every engine round the job participates in,
// ingest flush/materialize windows, sampled pool tasks, retirement — is
// recorded as a tree of spans sharing one trace ID, compatible with the
// W3C `traceparent` header so external callers can join their own traces.
//
// The tracer is deliberately small: IDs are generated from a seeded
// counter (no per-span syscalls), spans are plain values pushed into a
// bounded ring store with FIFO eviction and per-trace / per-job indexes,
// and every entry point is nil-safe — a nil *Tracer hands out nil *Spans
// whose methods no-op, so call sites need no "is tracing on" branches.
//
// Spans are dual-clocked. Wall timestamps bound each span's real duration
// (stamped at the edges, annotated for the wallclock analyzer); the
// engine's virtual clock, when wired via SetVirtualClock, additionally
// stamps simulated microseconds so round spans line up with the engine's
// makespan accounting.
package span

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one causal chain (16 bytes, rendered as 32 hex).
type TraceID [16]byte

// IsZero reports whether the trace ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID decodes a 32-hex-digit trace ID. The all-zero ID is
// rejected, as the W3C spec requires.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("span: trace id %q: want 32 hex digits", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("span: trace id %q: %w", s, err)
	}
	if t.IsZero() {
		return t, fmt.Errorf("span: trace id %q is all zero", s)
	}
	return t, nil
}

// SpanID identifies one span within a trace (8 bytes, 16 hex).
type SpanID [8]byte

// IsZero reports whether the span ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Context is the propagated half of a span: enough to parent children and
// to format a traceparent header, without a reference to the span itself.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (c Context) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// idState seeds span/trace ID generation once per process from the OS
// entropy source; per-ID generation is then a pure atomic counter mixed
// through splitmix64 — no syscalls or allocation on the hot path.
var idState = func() *atomic.Uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Entropy failure: fall back to the wall clock. IDs stay unique
		// within the process (the counter), just less unpredictable.
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano())) //cgraph:wallclock one-time ID seed fallback, not a measurement
	}
	var s atomic.Uint64
	s.Store(binary.LittleEndian.Uint64(b[:]))
	return &s
}()

// splitmix64 is the SplitMix64 output function: a bijective mixer, so
// distinct counter values always yield distinct IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nextID() uint64 {
	for {
		if id := splitmix64(idState.Add(1)); id != 0 {
			return id
		}
	}
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

// AttrKind tags the active arm of an Attr.
type AttrKind uint8

const (
	// KindString: Str holds the value.
	KindString AttrKind = iota
	// KindInt: Num holds the value (as int64 bits of meaning).
	KindInt
	// KindFloat: Num holds the value.
	KindFloat
	// KindBool: Num is 0 or 1.
	KindBool
)

// Attr is one typed key/value annotation on a span. Construct with Str,
// Int, Float, or Bool; the tagged union keeps attribute lists free of
// interface boxing.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Num  float64
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Kind: KindString, Str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Kind: KindInt, Num: float64(v)} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Kind: KindFloat, Num: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, Kind: KindBool}
	if v {
		a.Num = 1
	}
	return a
}

// Value renders the attribute's value as a string (wire/display form).
func (a Attr) Value() string {
	switch a.Kind {
	case KindString:
		return a.Str
	case KindInt:
		return fmt.Sprintf("%d", int64(a.Num))
	case KindBool:
		if a.Num != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%g", a.Num)
	}
}

// Data is one recorded span: the immutable value form held by the Store.
type Data struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	// Name is the span's operation ("http.request", "job.submit",
	// "job.round", "ingest.flush", "pool.task", …).
	Name string
	// Job is the owning service job ID for job-attributed spans ("" for
	// request/ingest spans that precede or outlive any one job).
	Job string
	// Wall-clock edges (real time).
	StartWall time.Time
	EndWall   time.Time
	// Virtual-clock edges in simulated microseconds (0 when the tracer
	// has no virtual clock or the span predates engine work).
	StartVirtualUS float64
	EndVirtualUS   float64
	Attrs          []Attr
}

// Attr returns the named attribute and whether it is present.
func (d Data) Attr(key string) (Attr, bool) {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Span is one in-flight span. It is created by Tracer.StartSpan and
// becomes visible in the store when End is called. A nil *Span is a valid
// no-op receiver for every method, so disabled tracing costs one nil
// check per call site.
type Span struct {
	tracer *Tracer
	mu     sync.Mutex
	data   Data
	ended  bool
}

// Context returns the span's propagation context (zero for a nil span).
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.data.Trace, Span: s.data.ID}
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.data.Trace
}

// SetJob attributes the span (and, via inheritance at call sites, its
// children) to a service job ID.
func (s *Span) SetJob(id string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Job = id
	}
	s.mu.Unlock()
}

// Attr appends typed attributes to the span.
func (s *Span) Attr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Attrs = append(s.data.Attrs, attrs...)
	}
	s.mu.Unlock()
}

// End stamps the span's end edges and records it in the tracer's store.
// End is idempotent: second and later calls no-op, so a span stored in a
// struct can be End-ed on an early-exit path and again by the normal one.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.EndWall = time.Now() //cgraph:wallclock span end edges are wall-stamped by design
	if v := s.tracer.virtualNow(); v > 0 {
		s.data.EndVirtualUS = v
	}
	d := s.data
	s.mu.Unlock()
	s.tracer.ended.Add(1)
	s.tracer.store.add(d)
}

// Tracer creates spans and owns their bounded store. The zero value is
// not usable; construct with New. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	store *Store
	// virtual, when set, reads the engine's virtual clock in simulated
	// microseconds. Guarded by vmu: it is wired after construction, once
	// the engine exists.
	vmu     sync.RWMutex
	virtual func() float64

	started atomic.Int64
	ended   atomic.Int64
}

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the span store (default 4096 spans); the oldest
	// span is evicted FIFO when a new one lands on a full store.
	Capacity int
}

// New builds a tracer with a bounded store.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	return &Tracer{store: newStore(cfg.Capacity)}
}

// SetVirtualClock wires the engine's virtual clock, so spans started and
// ended afterwards carry simulated-microsecond edges too.
func (t *Tracer) SetVirtualClock(fn func() float64) {
	if t == nil {
		return
	}
	t.vmu.Lock()
	t.virtual = fn
	t.vmu.Unlock()
}

func (t *Tracer) virtualNow() float64 {
	if t == nil {
		return 0
	}
	t.vmu.RLock()
	fn := t.virtual
	t.vmu.RUnlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// StartSpan opens a span. A valid parent context places the span in the
// parent's trace; an invalid one starts a fresh trace with this span as
// its root. A nil tracer returns a nil (no-op) span.
func (t *Tracer) StartSpan(parent Context, name string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	s := &Span{
		tracer: t,
		data: Data{
			ID:        NewSpanID(),
			Name:      name,
			StartWall: time.Now(), //cgraph:wallclock span start edges are wall-stamped by design
		},
	}
	if parent.Valid() {
		s.data.Trace = parent.Trace
		s.data.Parent = parent.Span
	} else {
		s.data.Trace = NewTraceID()
	}
	if v := t.virtualNow(); v > 0 {
		s.data.StartVirtualUS = v
	}
	return s
}

// Record inserts a fully-formed span: the retro-recording entry point for
// code that reconstructs spans at a boundary (the engine's round loop
// builds each job's round span from loop-private counters after the round
// completes). A zero ID is assigned; a zero Trace makes the span a root
// of a fresh trace. Nil tracers no-op.
func (t *Tracer) Record(d Data) Context {
	if t == nil {
		return Context{}
	}
	if d.ID.IsZero() {
		d.ID = NewSpanID()
	}
	if d.Trace.IsZero() {
		d.Trace = NewTraceID()
	}
	t.started.Add(1)
	t.ended.Add(1)
	t.store.add(d)
	return Context{Trace: d.Trace, Span: d.ID}
}

// Spans returns every stored span of the trace, oldest first.
func (t *Tracer) Spans(trace TraceID) []Data {
	if t == nil {
		return nil
	}
	return t.store.spansByTrace(trace)
}

// JobSpans returns every stored span attributed to the job, oldest first.
func (t *Tracer) JobSpans(job string) []Data {
	if t == nil {
		return nil
	}
	return t.store.spansByJob(job)
}

// Jobs lists the job IDs with at least one stored span, in no particular
// order.
func (t *Tracer) Jobs() []string {
	if t == nil {
		return nil
	}
	return t.store.jobs()
}

// Stats is a point-in-time snapshot of the tracer's counters.
type Stats struct {
	// Started/Ended count spans opened and recorded since process start
	// (Record counts as both).
	Started int64
	Ended   int64
	// Evicted counts spans dropped FIFO from the full store.
	Evicted int64
	// StoreSpans/StoreTraces are the store's current population;
	// Capacity its bound.
	StoreSpans  int
	StoreTraces int
	Capacity    int
}

// Stats reports the tracer's counters (zero for a nil tracer).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	st := t.store.stats()
	st.Started = t.started.Load()
	st.Ended = t.ended.Load()
	return st
}

// ctxKey is the context key for span propagation through context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying the span context.
func NewContext(ctx context.Context, c Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext extracts the span context carried by ctx (zero if none).
func FromContext(ctx context.Context) Context {
	c, _ := ctx.Value(ctxKey{}).(Context)
	return c
}
