package span

import "sync"

// Store is the bounded span sink: a FIFO ring of Data values with
// per-trace and per-job indexes. When the ring is full the globally
// oldest span is evicted, and — because insertion order is global — that
// span is also the oldest entry of its trace's and job's index slices, so
// eviction maintenance is O(1) pops off slice heads, no scans.
type Store struct {
	mu  sync.Mutex
	cap int
	// buf is the ring; seq numbers spans globally, head is the seq of
	// buf's logical first element.
	buf     []Data
	headSeq int64
	nextSeq int64
	evicted int64
	// byTrace and byJob map to ascending seq lists (insertion order).
	byTrace map[TraceID][]int64
	byJob   map[string][]int64
}

func newStore(capacity int) *Store {
	return &Store{
		cap:     capacity,
		buf:     make([]Data, 0, capacity),
		byTrace: make(map[TraceID][]int64),
		byJob:   make(map[string][]int64),
	}
}

func (s *Store) add(d Data) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == s.cap {
		old := s.buf[s.headSeq%int64(s.cap)]
		s.dropIndexLocked(old)
		s.headSeq++
		s.evicted++
		s.buf[s.nextSeq%int64(s.cap)] = d
	} else {
		s.buf = append(s.buf, d)
	}
	seq := s.nextSeq
	s.nextSeq++
	s.byTrace[d.Trace] = append(s.byTrace[d.Trace], seq)
	if d.Job != "" {
		s.byJob[d.Job] = append(s.byJob[d.Job], seq)
	}
}

// dropIndexLocked removes the evicted span's seq — necessarily the first
// of its index slices — from both indexes.
func (s *Store) dropIndexLocked(old Data) {
	if seqs := s.byTrace[old.Trace]; len(seqs) <= 1 {
		delete(s.byTrace, old.Trace)
	} else {
		s.byTrace[old.Trace] = seqs[1:]
	}
	if old.Job == "" {
		return
	}
	if seqs := s.byJob[old.Job]; len(seqs) <= 1 {
		delete(s.byJob, old.Job)
	} else {
		s.byJob[old.Job] = seqs[1:]
	}
}

// atLocked returns the span stored under seq.
func (s *Store) atLocked(seq int64) Data {
	if len(s.buf) < s.cap {
		return s.buf[seq]
	}
	return s.buf[seq%int64(s.cap)]
}

func (s *Store) collectLocked(seqs []int64) []Data {
	out := make([]Data, len(seqs))
	for i, seq := range seqs {
		out[i] = s.atLocked(seq)
	}
	return out
}

func (s *Store) spansByTrace(trace TraceID) []Data {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collectLocked(s.byTrace[trace])
}

func (s *Store) spansByJob(job string) []Data {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collectLocked(s.byJob[job])
}

func (s *Store) jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.byJob))
	for j := range s.byJob {
		out = append(out, j)
	}
	return out
}

func (s *Store) stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Evicted:     s.evicted,
		StoreSpans:  len(s.buf),
		StoreTraces: len(s.byTrace),
		Capacity:    s.cap,
	}
}
