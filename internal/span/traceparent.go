package span

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// Traceparent is the W3C Trace Context header name (lowercase per spec;
// Go's http.Header canonicalizes on set/get either way).
const Traceparent = "traceparent"

// Traceparent renders the context as a W3C traceparent header value,
// version 00 with the sampled flag set:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-01
func (c Context) Traceparent() string {
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// ParseTraceparent decodes a W3C traceparent header value. It accepts any
// version byte except the invalid ff (per spec, future versions must stay
// prefix-compatible) and rejects all-zero trace or parent IDs. The second
// return is false when the header is absent or malformed — callers then
// start a fresh trace rather than failing the request.
func ParseTraceparent(h string) (Context, bool) {
	h = strings.TrimSpace(h)
	// version(2) - trace(32) - parent(16) - flags(2), dash-separated.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Context{}, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(h[0:2])); err != nil || ver[0] == 0xff {
		return Context{}, false
	}
	if ver[0] == 0 && len(h) != 55 {
		return Context{}, false
	}
	trace, err := ParseTraceID(h[3:35])
	if err != nil {
		return Context{}, false
	}
	var parent SpanID
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil || parent.IsZero() {
		return Context{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return Context{}, false
	}
	return Context{Trace: trace, Span: parent}, true
}

// MustParseTraceID is ParseTraceID for trusted inputs (tests, fixtures);
// it panics on malformed IDs.
func MustParseTraceID(s string) TraceID {
	t, err := ParseTraceID(s)
	if err != nil {
		panic(fmt.Sprintf("span: %v", err))
	}
	return t
}
