package span

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestIDs(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("zero trace id generated")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
	}
	if len(NewTraceID().String()) != 32 {
		t.Fatal("trace id renders to 32 hex digits")
	}
	if len(NewSpanID().String()) != 16 {
		t.Fatal("span id renders to 16 hex digits")
	}
	rt, err := ParseTraceID(NewTraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	if rt.IsZero() {
		t.Fatal("round-tripped trace id is zero")
	}
	if _, err := ParseTraceID("00000000000000000000000000000000"); err == nil {
		t.Fatal("all-zero trace id accepted")
	}
	if _, err := ParseTraceID("xyz"); err == nil {
		t.Fatal("malformed trace id accepted")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	c := Context{Trace: NewTraceID(), Span: NewSpanID()}
	h := c.Traceparent()
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own rendering", h)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // invalid version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// Future versions with trailing data are accepted (prefix-compatible).
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future"); !ok {
		t.Error("future-version traceparent with extra data rejected")
	}
}

func TestNilTracerAndSpanNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(Context{}, "noop")
	if sp != nil {
		t.Fatal("nil tracer handed out a non-nil span")
	}
	// All of these must be safe no-ops.
	sp.SetJob("job-1")
	sp.Attr(Str("k", "v"))
	sp.End()
	if c := sp.Context(); c.Valid() {
		t.Fatal("nil span has a valid context")
	}
	if got := tr.Spans(NewTraceID()); got != nil {
		t.Fatal("nil tracer returned spans")
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatal("nil tracer has non-zero stats")
	}
	tr.Record(Data{Name: "x"})
	tr.SetVirtualClock(func() float64 { return 1 })
}

func TestSpanTreeAndIndexes(t *testing.T) {
	tr := New(Config{Capacity: 64})
	root := tr.StartSpan(Context{}, "http.request")
	child := tr.StartSpan(root.Context(), "job.submit")
	child.SetJob("job-0")
	child.Attr(Int("priority", 3), Str("algo", "pagerank"), Bool("flush", true), Float("share", 0.5))
	grand := tr.StartSpan(child.Context(), "job.queue_wait")
	grand.SetJob("job-0")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	// Oldest first = end order: grand, child, root.
	if spans[0].Name != "job.queue_wait" || spans[2].Name != "http.request" {
		t.Fatalf("unexpected order: %s … %s", spans[0].Name, spans[2].Name)
	}
	byName := map[string]Data{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	if byName["job.submit"].Parent != byName["http.request"].ID {
		t.Fatal("job.submit is not parented to http.request")
	}
	if byName["job.queue_wait"].Parent != byName["job.submit"].ID {
		t.Fatal("job.queue_wait is not parented to job.submit")
	}
	for _, d := range spans {
		if d.Trace != root.TraceID() {
			t.Fatalf("span %s has trace %s, want %s", d.Name, d.Trace, root.TraceID())
		}
		if d.EndWall.Before(d.StartWall) {
			t.Fatalf("span %s ends before it starts", d.Name)
		}
	}

	job := tr.JobSpans("job-0")
	if len(job) != 2 {
		t.Fatalf("job-0 has %d spans, want 2", len(job))
	}
	if a, ok := byName["job.submit"].Attr("algo"); !ok || a.Value() != "pagerank" {
		t.Fatalf("algo attr = %+v", a)
	}
	if a, _ := byName["job.submit"].Attr("priority"); a.Value() != "3" {
		t.Fatalf("priority attr renders %q", a.Value())
	}
	if a, _ := byName["job.submit"].Attr("flush"); a.Value() != "true" {
		t.Fatalf("flush attr renders %q", a.Value())
	}
	if jobs := tr.Jobs(); len(jobs) != 1 || jobs[0] != "job-0" {
		t.Fatalf("Jobs() = %v", jobs)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Config{Capacity: 8})
	sp := tr.StartSpan(Context{}, "once")
	sp.End()
	sp.End()
	sp.End()
	if got := len(tr.Spans(sp.TraceID())); got != 1 {
		t.Fatalf("span recorded %d times, want 1", got)
	}
	if st := tr.Stats(); st.Ended != 1 {
		t.Fatalf("Ended = %d, want 1", st.Ended)
	}
}

// TestStoreEviction is the boundedness guarantee: a store of capacity N
// never holds more than N spans, evicts FIFO, and keeps its per-trace and
// per-job indexes exact across wrap-around.
func TestStoreEviction(t *testing.T) {
	const capacity = 32
	tr := New(Config{Capacity: capacity})
	traces := make([]TraceID, 0, 100)
	for i := 0; i < 100; i++ {
		sp := tr.StartSpan(Context{}, "s")
		sp.SetJob(fmt.Sprintf("job-%d", i))
		sp.End()
		traces = append(traces, sp.TraceID())
	}
	st := tr.Stats()
	if st.StoreSpans != capacity {
		t.Fatalf("store holds %d spans, want %d", st.StoreSpans, capacity)
	}
	if st.StoreTraces != capacity {
		t.Fatalf("store indexes %d traces, want %d", st.StoreTraces, capacity)
	}
	if st.Evicted != 100-capacity {
		t.Fatalf("evicted %d, want %d", st.Evicted, 100-capacity)
	}
	// The oldest 68 traces are gone; the newest 32 remain.
	for i, trace := range traces {
		got := tr.Spans(trace)
		if i < 100-capacity && len(got) != 0 {
			t.Fatalf("evicted trace %d still has %d spans", i, len(got))
		}
		if i >= 100-capacity && len(got) != 1 {
			t.Fatalf("retained trace %d has %d spans, want 1", i, len(got))
		}
	}
	if got := tr.JobSpans("job-10"); len(got) != 0 {
		t.Fatalf("evicted job still indexed: %d spans", len(got))
	}
	if got := tr.JobSpans("job-99"); len(got) != 1 {
		t.Fatalf("retained job has %d spans, want 1", len(got))
	}
	if jobs := tr.Jobs(); len(jobs) != capacity {
		t.Fatalf("Jobs() lists %d, want %d", len(jobs), capacity)
	}
}

// TestStoreEvictionMultiSpanTrace exercises index-head pops when one trace
// holds many spans spanning the eviction boundary.
func TestStoreEvictionMultiSpanTrace(t *testing.T) {
	tr := New(Config{Capacity: 10})
	root := tr.StartSpan(Context{}, "root")
	for i := 0; i < 25; i++ {
		sp := tr.StartSpan(root.Context(), "child")
		sp.SetJob("job-0")
		sp.End()
	}
	root.End()
	spans := tr.Spans(root.TraceID())
	if len(spans) != 10 {
		t.Fatalf("trace has %d spans, want 10 (capacity)", len(spans))
	}
	// The newest 10 recorded spans: children 16..24, then the root.
	if spans[len(spans)-1].Name != "root" {
		t.Fatalf("newest span is %q, want root", spans[len(spans)-1].Name)
	}
	if got := len(tr.JobSpans("job-0")); got != 9 {
		t.Fatalf("job-0 has %d spans, want 9", got)
	}
}

func TestRecordRetroSpan(t *testing.T) {
	tr := New(Config{Capacity: 8})
	parent := tr.StartSpan(Context{}, "job.submit")
	c := tr.Record(Data{
		Trace:          parent.TraceID(),
		Parent:         parent.Context().Span,
		Name:           "job.round",
		Job:            "job-0",
		StartVirtualUS: 10,
		EndVirtualUS:   25,
		Attrs:          []Attr{Int("round", 1)},
	})
	if !c.Valid() {
		t.Fatal("Record returned invalid context")
	}
	parent.End()
	spans := tr.Spans(parent.TraceID())
	if len(spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(spans))
	}
	if spans[0].Name != "job.round" || spans[0].EndVirtualUS != 25 {
		t.Fatalf("retro span mangled: %+v", spans[0])
	}
}

func TestVirtualClock(t *testing.T) {
	tr := New(Config{Capacity: 8})
	now := 100.0
	tr.SetVirtualClock(func() float64 { return now })
	sp := tr.StartSpan(Context{}, "round")
	now = 250
	sp.End()
	d := tr.Spans(sp.TraceID())[0]
	if d.StartVirtualUS != 100 || d.EndVirtualUS != 250 {
		t.Fatalf("virtual edges = %v..%v, want 100..250", d.StartVirtualUS, d.EndVirtualUS)
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New(Config{Capacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartSpan(Context{}, "concurrent")
				sp.SetJob(fmt.Sprintf("job-%d", g))
				sp.Attr(Int("i", int64(i)))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	st := tr.Stats()
	if st.StoreSpans != 128 {
		t.Fatalf("store holds %d, want 128", st.StoreSpans)
	}
	if st.Started != 1600 || st.Ended != 1600 {
		t.Fatalf("started/ended = %d/%d, want 1600/1600", st.Started, st.Ended)
	}
	if st.Evicted != 1600-128 {
		t.Fatalf("evicted = %d, want %d", st.Evicted, 1600-128)
	}
}

func TestContextPropagation(t *testing.T) {
	c := Context{Trace: NewTraceID(), Span: NewSpanID()}
	ctx := NewContext(context.Background(), c)
	if got := FromContext(ctx); got != c {
		t.Fatalf("FromContext = %+v, want %+v", got, c)
	}
	if got := FromContext(context.Background()); got.Valid() {
		t.Fatal("empty context yielded a valid span context")
	}
}
