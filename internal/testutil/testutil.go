// Package testutil holds small helpers shared by the repo's test suites.
package testutil

import (
	"testing"
	"time"
)

// WaitFor polls cond every millisecond until it reports true, failing
// the test with the formatted message if timeout elapses first. It
// replaces the ad-hoc deadline-poll loops that used to be copied between
// test files: one shared implementation, one flake surface.
//
// cond runs on the polling goroutine; it may itself t.Fatalf on states
// that can never satisfy the wait (e.g. a job landing terminal while the
// test waits for running).
func WaitFor(t *testing.T, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf(format, args...)
		}
		time.Sleep(time.Millisecond)
	}
}
