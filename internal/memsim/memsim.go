// Package memsim simulates the memory hierarchy the paper measures with a
// real 20 MB LLC, 64 GB of DRAM and a disk: a capacity-limited cache with LRU
// replacement and pinning, a capacity-limited memory level that spills to an
// unbounded disk, block-granularity hit/miss accounting, and a cost model
// that converts bytes moved and edges processed into simulated microseconds.
//
// Go offers no control over the hardware LLC, so every engine in this
// reproduction routes its partition accesses through a Hierarchy; the
// differences the paper observes between systems (who reloads shared
// partitions, how often, from where) fall out of the same mechanism.
package memsim

import (
	"fmt"
	"sync"
)

// Kind distinguishes cacheable item classes.
type Kind uint8

const (
	// Struct is graph-structure data (a partition of the global table).
	Struct Kind = iota
	// Private is a job's private-table slice for one partition.
	Private
	// SyncBuf is a job's buffered Snew sync queue.
	SyncBuf
)

func (k Kind) String() string {
	switch k {
	case Struct:
		return "struct"
	case Private:
		return "private"
	default:
		return "syncbuf"
	}
}

// ItemID identifies one cacheable item. Shared structure partitions carry
// Job == -1 and the partition's process-unique UID, so snapshots that share
// a partition and jobs that share a snapshot hit the same cache entry.
// Engines that keep per-job structure copies (NXgraph, CLIP) set Job to the
// job ID, which models the duplicated storage those systems pay for.
type ItemID struct {
	Kind Kind
	UID  int64
	Job  int32
}

func (id ItemID) String() string {
	return fmt.Sprintf("%s/u%d/j%d", id.Kind, id.UID, id.Job)
}

// CostModel converts simulated data movement and computation into
// microseconds. The defaults are calibrated so that, at the reproduction's
// default scale, a baseline job's execution is dominated by data access
// while CGraph's is dominated by vertex processing — the regime of Fig. 10.
type CostModel struct {
	// MemBandwidth is memory→cache bandwidth in bytes/µs.
	MemBandwidth float64
	// MemLatency is the fixed cost of one memory→cache load operation, µs.
	MemLatency float64
	// DiskBandwidth is disk→memory bandwidth in bytes/µs.
	DiskBandwidth float64
	// DiskLatency is the fixed cost of one disk read, µs.
	DiskLatency float64
	// EdgeCost is the compute cost of processing one edge, µs.
	EdgeCost float64
	// VertexCost is the compute cost of applying one vertex, µs.
	VertexCost float64
	// SyncEntryCost is the cost of handling one Snew sync entry, µs.
	SyncEntryCost float64
	// ChannelStreams is how many concurrent access streams the memory
	// channel sustains at full per-stream speed before contention: one
	// compute-interleaved job does not saturate the channel, which is why
	// concurrent execution beats sequential in Fig. 2 despite contention.
	ChannelStreams float64
}

// DefaultCost returns the calibrated default cost model.
func DefaultCost() CostModel {
	return CostModel{
		MemBandwidth:   500,
		MemLatency:     2,
		DiskBandwidth:  25,
		DiskLatency:    200,
		EdgeCost:       0.02,
		VertexCost:     0.01,
		SyncEntryCost:  0.05,
		ChannelStreams: 1.6,
	}
}

// LoadTime is the simulated time to move bytes from memory into the cache.
func (c CostModel) LoadTime(bytes int64) float64 {
	return c.MemLatency + float64(bytes)/c.MemBandwidth
}

// DiskTime is the simulated time to move bytes from disk into memory.
func (c CostModel) DiskTime(bytes int64) float64 {
	return c.DiskLatency + float64(bytes)/c.DiskBandwidth
}

// ComputeTime is the simulated time to process edges and apply vertices.
func (c CostModel) ComputeTime(edges, vertices int64) float64 {
	return float64(edges)*c.EdgeCost + float64(vertices)*c.VertexCost
}

// SyncTime is the simulated time to push one batch of sync entries.
func (c CostModel) SyncTime(entries int64) float64 {
	return float64(entries) * c.SyncEntryCost
}

// Config sizes the hierarchy.
type Config struct {
	// CacheBytes is the simulated LLC capacity.
	CacheBytes int64
	// MemoryBytes is the simulated DRAM capacity; 0 means unlimited (no
	// disk spill ever happens after the initial load).
	MemoryBytes int64
	// BlockBytes is the cache-line size for miss-rate accounting
	// (default 64).
	BlockBytes int64
	Cost       CostModel
}

// Counters aggregates the hierarchy's observations over a run.
type Counters struct {
	// AccessBlocks counts cache blocks touched by loads (hits + misses).
	AccessBlocks int64
	// MissBlocks counts blocks that had to be brought into the cache.
	MissBlocks int64
	// BytesIntoCache is the volume swapped into the cache (Fig. 12).
	BytesIntoCache int64
	// BytesFromDisk is the disk→memory I/O volume (Fig. 13).
	BytesFromDisk int64
	LoadOps       int64
	DiskOps       int64
	Evictions     int64
}

// MissRate returns the block miss ratio in percent (Fig. 11/18).
func (c Counters) MissRate() float64 {
	if c.AccessBlocks == 0 {
		return 0
	}
	return 100 * float64(c.MissBlocks) / float64(c.AccessBlocks)
}

// TotalAccessedBytes is the Fig. 19 "total accessed data": disk→memory plus
// memory→cache traffic.
func (c Counters) TotalAccessedBytes() int64 {
	return c.BytesIntoCache + c.BytesFromDisk
}

// LoadResult reports the effect of one Load.
type LoadResult struct {
	// Hit is true when the item was already fully cache-resident.
	Hit bool
	// BytesLoaded entered the cache (0 on a hit).
	BytesLoaded int64
	// DiskBytes were read from disk because the item was not
	// memory-resident.
	DiskBytes int64
	// Time is the simulated access time in µs (0 on a hit).
	Time float64
}

type entry struct {
	id    ItemID
	bytes int64
	pins  int
	// LRU list links.
	prev, next *entry
}

// lruList is an intrusive doubly-linked LRU list (front = most recent).
type lruList struct {
	head, tail *entry
}

func (l *lruList) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lruList) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *lruList) moveFront(e *entry) {
	l.remove(e)
	l.pushFront(e)
}

// Hierarchy is the simulated cache + memory + disk stack. It is safe for
// concurrent use.
type Hierarchy struct {
	mu  sync.Mutex
	cfg Config

	cacheUsed  int64
	cacheItems map[ItemID]*entry
	cacheLRU   lruList

	memUsed  int64
	memItems map[ItemID]*entry
	memLRU   lruList

	counters Counters
}

// New builds a hierarchy. A zero BlockBytes defaults to 64.
func New(cfg Config) *Hierarchy {
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64
	}
	return &Hierarchy{
		cfg:        cfg,
		cacheItems: make(map[ItemID]*entry),
		memItems:   make(map[ItemID]*entry),
	}
}

// Unlimited returns a hierarchy so large nothing ever misses after first
// touch, for library use without simulation pressure.
func Unlimited() *Hierarchy {
	return New(Config{CacheBytes: 1 << 60, MemoryBytes: 0, Cost: DefaultCost()})
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Cost returns the cost model.
func (h *Hierarchy) Cost() CostModel { return h.cfg.Cost }

func (h *Hierarchy) blocks(bytes int64) int64 {
	return (bytes + h.cfg.BlockBytes - 1) / h.cfg.BlockBytes
}

// Load touches the whole item, bringing it into the cache if absent, pulling
// it from disk if it is not memory-resident, and optionally pinning it
// against eviction. Pins nest; every pinned Load needs a matching Unpin.
func (h *Hierarchy) Load(id ItemID, bytes int64, pin bool) LoadResult {
	h.mu.Lock()
	defer h.mu.Unlock()

	h.counters.AccessBlocks += h.blocks(bytes)
	h.counters.LoadOps++

	if e, ok := h.cacheItems[id]; ok {
		// Size change (snapshot swap or private-table growth) forces a
		// reload of the difference; same size is a pure hit.
		if e.bytes == bytes {
			h.cacheLRU.moveFront(e)
			if pin {
				e.pins++
			}
			h.touchMemory(id, bytes)
			return LoadResult{Hit: true}
		}
		h.evictCacheEntry(e)
	}

	var res LoadResult
	// Job-specific data (private tables, sync buffers) is memory-resident
	// by construction — jobs allocate it, only the far larger shared graph
	// structure pages to and from disk (§2: structure is 71-83% of the
	// footprint). Only Struct items traverse the memory level.
	if id.Kind == Struct {
		res.DiskBytes = h.ensureMemory(id, bytes)
	}
	res.BytesLoaded = bytes
	res.Time = h.cfg.Cost.LoadTime(bytes)
	if res.DiskBytes > 0 {
		res.Time += h.cfg.Cost.DiskTime(res.DiskBytes)
	}
	h.counters.MissBlocks += h.blocks(bytes)
	h.counters.BytesIntoCache += bytes

	// Items larger than the cache stream through without residency.
	if bytes <= h.cfg.CacheBytes {
		h.makeRoom(bytes)
		e := &entry{id: id, bytes: bytes}
		if pin {
			e.pins = 1
		}
		h.cacheItems[id] = e
		h.cacheLRU.pushFront(e)
		h.cacheUsed += bytes
	}
	return res
}

// Unpin releases one pin on the item; unpinned items become evictable.
func (h *Hierarchy) Unpin(id ItemID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.cacheItems[id]; ok && e.pins > 0 {
		e.pins--
	}
}

// Drop invalidates an item at every level (a snapshot replaced the
// partition, or a private table was re-laid-out).
func (h *Hierarchy) Drop(id ItemID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.cacheItems[id]; ok {
		h.evictCacheEntry(e)
	}
	if e, ok := h.memItems[id]; ok {
		h.memLRU.remove(e)
		delete(h.memItems, id)
		h.memUsed -= e.bytes
	}
}

// Resident reports whether the item is currently cache-resident.
func (h *Hierarchy) Resident(id ItemID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.cacheItems[id]
	return ok
}

// Counters returns a snapshot of the aggregate counters.
func (h *Hierarchy) Counters() Counters {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.counters
}

// ResetCounters zeroes the counters, keeping residency state.
func (h *Hierarchy) ResetCounters() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counters = Counters{}
}

// CacheUsed returns the bytes currently cache-resident.
func (h *Hierarchy) CacheUsed() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cacheUsed
}

func (h *Hierarchy) evictCacheEntry(e *entry) {
	h.cacheLRU.remove(e)
	delete(h.cacheItems, e.id)
	h.cacheUsed -= e.bytes
	h.counters.Evictions++
}

// makeRoom evicts LRU unpinned entries until bytes fit. If pinned entries
// block eviction the cache is allowed to overflow: engines size partitions
// with the Pg formula precisely so this stays rare.
func (h *Hierarchy) makeRoom(bytes int64) {
	for h.cacheUsed+bytes > h.cfg.CacheBytes {
		e := h.cacheLRU.tail
		for e != nil && e.pins > 0 {
			e = e.prev
		}
		if e == nil {
			return
		}
		h.evictCacheEntry(e)
	}
}

// ensureMemory makes the item memory-resident, returning the disk bytes read
// (0 if it was already resident). Memory eviction to disk is free (write
// traffic is not modelled).
func (h *Hierarchy) ensureMemory(id ItemID, bytes int64) int64 {
	if e, ok := h.memItems[id]; ok && e.bytes == bytes {
		h.memLRU.moveFront(e)
		return 0
	}
	if e, ok := h.memItems[id]; ok {
		h.memLRU.remove(e)
		delete(h.memItems, id)
		h.memUsed -= e.bytes
	}
	if h.cfg.MemoryBytes > 0 {
		for h.memUsed+bytes > h.cfg.MemoryBytes && h.memLRU.tail != nil {
			t := h.memLRU.tail
			h.memLRU.remove(t)
			delete(h.memItems, t.id)
			h.memUsed -= t.bytes
		}
	}
	e := &entry{id: id, bytes: bytes}
	h.memItems[id] = e
	h.memLRU.pushFront(e)
	h.memUsed += bytes
	h.counters.BytesFromDisk += bytes
	h.counters.DiskOps++
	return bytes
}

// touchMemory refreshes the memory-LRU position on cache hits so hot items
// stay memory-resident.
func (h *Hierarchy) touchMemory(id ItemID, bytes int64) {
	if e, ok := h.memItems[id]; ok {
		h.memLRU.moveFront(e)
		return
	}
	// Cache-resident but not tracked in memory (e.g. after a Drop race);
	// re-register without disk charge.
	e := &entry{id: id, bytes: bytes}
	h.memItems[id] = e
	h.memLRU.pushFront(e)
	h.memUsed += bytes
}

// RandomTouch models block-granularity scattered accesses into a flat array
// much larger than any partition (CLIP's beyond-neighborhood vertex-state
// accesses): blocks are touched, of which hitFraction find their line
// resident. Missed blocks count into the swap volume and miss-rate
// accounting; the returned simulated time covers the misses at memory
// bandwidth with burst-amortized latency.
func (h *Hierarchy) RandomTouch(blocks int64, hitFraction float64) float64 {
	if blocks <= 0 {
		return 0
	}
	if hitFraction < 0 {
		hitFraction = 0
	}
	if hitFraction > 1 {
		hitFraction = 1
	}
	misses := int64(float64(blocks) * (1 - hitFraction))
	h.mu.Lock()
	h.counters.AccessBlocks += blocks
	h.counters.MissBlocks += misses
	bytes := misses * h.cfg.BlockBytes
	h.counters.BytesIntoCache += bytes
	cost := h.cfg.Cost
	h.mu.Unlock()
	return float64(bytes)/cost.MemBandwidth + float64(misses)*cost.MemLatency/16
}
