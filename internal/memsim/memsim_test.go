package memsim

import (
	"math/rand"
	"testing"
)

func sid(uid int64) ItemID { return ItemID{Kind: Struct, UID: uid, Job: -1} }
func pid(uid int64, job int32) ItemID {
	return ItemID{Kind: Private, UID: uid, Job: job}
}

func newTest(cache, mem int64) *Hierarchy {
	return New(Config{CacheBytes: cache, MemoryBytes: mem, BlockBytes: 64, Cost: DefaultCost()})
}

func TestMissThenHit(t *testing.T) {
	h := newTest(1024, 0)
	r1 := h.Load(sid(1), 512, false)
	if r1.Hit || r1.BytesLoaded != 512 || r1.DiskBytes != 512 {
		t.Fatalf("first load = %+v, want cold miss with disk read", r1)
	}
	if r1.Time <= 0 {
		t.Fatal("miss must cost time")
	}
	r2 := h.Load(sid(1), 512, false)
	if !r2.Hit || r2.BytesLoaded != 0 || r2.Time != 0 {
		t.Fatalf("second load = %+v, want hit", r2)
	}
	c := h.Counters()
	if c.AccessBlocks != 16 || c.MissBlocks != 8 {
		t.Fatalf("counters = %+v, want 16 accessed / 8 missed blocks", c)
	}
	if got := c.MissRate(); got != 50 {
		t.Fatalf("MissRate = %v, want 50", got)
	}
}

func TestLRUEviction(t *testing.T) {
	h := newTest(1000, 0)
	h.Load(sid(1), 400, false)
	h.Load(sid(2), 400, false)
	h.Load(sid(1), 400, false) // refresh 1
	h.Load(sid(3), 400, false) // must evict 2 (LRU), not 1
	if !h.Resident(sid(1)) {
		t.Fatal("item 1 evicted despite being MRU")
	}
	if h.Resident(sid(2)) {
		t.Fatal("item 2 not evicted")
	}
	if !h.Resident(sid(3)) {
		t.Fatal("item 3 not resident")
	}
	if h.CacheUsed() != 800 {
		t.Fatalf("CacheUsed = %d, want 800", h.CacheUsed())
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	h := newTest(1000, 0)
	h.Load(sid(1), 600, true) // pinned
	h.Load(sid(2), 600, false)
	if !h.Resident(sid(1)) {
		t.Fatal("pinned item evicted")
	}
	h.Unpin(sid(1))
	h.Load(sid(3), 600, false)
	if h.Resident(sid(1)) {
		t.Fatal("unpinned LRU item should have been evicted")
	}
}

func TestNestedPins(t *testing.T) {
	h := newTest(1000, 0)
	h.Load(sid(1), 600, true)
	h.Load(sid(1), 600, true) // second pin
	h.Unpin(sid(1))
	h.Load(sid(2), 600, false)
	if !h.Resident(sid(1)) {
		t.Fatal("item with one remaining pin evicted")
	}
	h.Unpin(sid(1))
	h.Load(sid(3), 600, false)
	if h.Resident(sid(1)) {
		t.Fatal("fully unpinned item survived pressure")
	}
}

func TestOversizedItemStreams(t *testing.T) {
	h := newTest(100, 0)
	r := h.Load(sid(1), 500, false)
	if r.Hit || r.BytesLoaded != 500 {
		t.Fatalf("oversized load = %+v", r)
	}
	if h.Resident(sid(1)) {
		t.Fatal("oversized item must not become resident")
	}
	if h.CacheUsed() != 0 {
		t.Fatalf("CacheUsed = %d, want 0", h.CacheUsed())
	}
}

func TestMemorySpillCausesDiskIO(t *testing.T) {
	h := newTest(100, 1000) // tiny cache so everything misses; memory 1000
	h.Load(sid(1), 600, false)
	h.Load(sid(2), 600, false) // evicts 1 from memory
	c := h.Counters()
	if c.BytesFromDisk != 1200 {
		t.Fatalf("disk bytes = %d, want 1200", c.BytesFromDisk)
	}
	h.Load(sid(1), 600, false) // 1 must come from disk again
	if got := h.Counters().BytesFromDisk; got != 1800 {
		t.Fatalf("disk bytes = %d, want 1800 after re-read", got)
	}
}

func TestUnlimitedMemoryNoRereads(t *testing.T) {
	h := newTest(100, 0)
	h.Load(sid(1), 600, false)
	h.Load(sid(2), 600, false)
	h.Load(sid(1), 600, false)
	if got := h.Counters().BytesFromDisk; got != 1200 {
		t.Fatalf("disk bytes = %d, want 1200 (one cold read each)", got)
	}
}

func TestDropInvalidates(t *testing.T) {
	h := newTest(1000, 0)
	h.Load(sid(1), 400, false)
	h.Drop(sid(1))
	if h.Resident(sid(1)) {
		t.Fatal("dropped item still resident")
	}
	r := h.Load(sid(1), 400, false)
	if r.Hit {
		t.Fatal("load after drop must miss")
	}
	if r.DiskBytes != 400 {
		t.Fatalf("drop must purge memory level too, got disk=%d", r.DiskBytes)
	}
}

func TestSizeChangeForcesReload(t *testing.T) {
	h := newTest(1000, 0)
	h.Load(sid(1), 400, false)
	r := h.Load(sid(1), 500, false)
	if r.Hit {
		t.Fatal("resized item must not hit")
	}
	if h.CacheUsed() != 500 {
		t.Fatalf("CacheUsed = %d, want 500", h.CacheUsed())
	}
}

func TestPerJobCopiesAreDistinctItems(t *testing.T) {
	h := newTest(10000, 0)
	h.Load(pid(1, 0), 100, false)
	r := h.Load(pid(1, 1), 100, false)
	if r.Hit {
		t.Fatal("different jobs' private items must not alias")
	}
	r = h.Load(pid(1, 0), 100, false)
	if !r.Hit {
		t.Fatal("same job private item must hit")
	}
}

func TestSharedStructSingleCopy(t *testing.T) {
	// The heart of the LTP model: one struct copy serves all jobs.
	h := newTest(10000, 0)
	h.Load(sid(7), 1000, false)
	for j := 0; j < 8; j++ {
		if r := h.Load(sid(7), 1000, false); !r.Hit {
			t.Fatalf("job %d missed on the shared partition", j)
		}
	}
	c := h.Counters()
	if c.BytesIntoCache != 1000 {
		t.Fatalf("volume = %d, want 1000 (single copy)", c.BytesIntoCache)
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCost()
	if c.LoadTime(500) != c.MemLatency+1 {
		t.Fatalf("LoadTime(500) = %v", c.LoadTime(500))
	}
	if c.DiskTime(25) != c.DiskLatency+1 {
		t.Fatalf("DiskTime(25) = %v", c.DiskTime(25))
	}
	if got := c.ComputeTime(100, 10); got != 100*c.EdgeCost+10*c.VertexCost {
		t.Fatalf("ComputeTime = %v", got)
	}
	if got := c.SyncTime(10); got != 10*c.SyncEntryCost {
		t.Fatalf("SyncTime = %v", got)
	}
}

func TestCountersConsistencyRandomized(t *testing.T) {
	// Invariants under a random workload: residency never exceeds
	// capacity; hit+miss accounting is conserved.
	rng := rand.New(rand.NewSource(99))
	h := newTest(4096, 8192)
	var wantAccess, wantMiss int64
	for i := 0; i < 5000; i++ {
		id := sid(int64(rng.Intn(20)))
		bytes := int64(256 + 64*rng.Intn(8))
		pre := h.Resident(id)
		r := h.Load(id, bytes, false)
		wantAccess += (bytes + 63) / 64
		if !r.Hit {
			wantMiss += (bytes + 63) / 64
		}
		// A resident same-size item must hit. (Resized items may miss.)
		if pre && r.Hit && r.BytesLoaded != 0 {
			t.Fatal("hit with bytes loaded")
		}
		if used := h.CacheUsed(); used > 4096 {
			t.Fatalf("cache overflow: %d", used)
		}
	}
	c := h.Counters()
	if c.AccessBlocks != wantAccess || c.MissBlocks != wantMiss {
		t.Fatalf("counters %+v, want access=%d miss=%d", c, wantAccess, wantMiss)
	}
	if c.TotalAccessedBytes() != c.BytesIntoCache+c.BytesFromDisk {
		t.Fatal("TotalAccessedBytes inconsistent")
	}
}

func TestResetCounters(t *testing.T) {
	h := newTest(1024, 0)
	h.Load(sid(1), 512, false)
	h.ResetCounters()
	if c := h.Counters(); c != (Counters{}) {
		t.Fatalf("counters not reset: %+v", c)
	}
	// Residency survives the reset.
	if r := h.Load(sid(1), 512, false); !r.Hit {
		t.Fatal("residency lost on counter reset")
	}
}

func TestUnlimited(t *testing.T) {
	h := Unlimited()
	h.Load(sid(1), 1<<30, false)
	if r := h.Load(sid(1), 1<<30, false); !r.Hit {
		t.Fatal("unlimited hierarchy must always hit after first touch")
	}
}
