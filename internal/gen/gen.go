// Package gen produces the synthetic inputs of the reproduction: power-law
// graphs standing in for the paper's web/social datasets (Table 1), edge
// mutations for the evolving-graph experiments (§4.4), and the job-arrival
// trace behind Figure 1.
//
// Everything is deterministic given a seed, so figures and tests reproduce
// bit-for-bit.
package gen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"cgraph/model"
)

// RMAT generates an R-MAT graph with the given quadrant probabilities
// (a, b, c; d = 1-a-b-c), the standard recipe for skewed web/social graphs.
// Self-loops are permitted (they occur in the real datasets too); duplicate
// edges are not deduplicated, matching multigraph web crawls.
func RMAT(seed int64, numVertices, numEdges int, a, b, c float64) []model.Edge {
	rng := rand.New(rand.NewSource(seed))
	// Round the vertex count up to a power of two for quadrant recursion,
	// then reject edges falling outside the requested range.
	levels := 0
	for 1<<levels < numVertices {
		levels++
	}
	edges := make([]model.Edge, 0, numEdges)
	for len(edges) < numEdges {
		src, dst := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing to add
			case r < a+b:
				dst |= 1 << l
			case r < a+b+c:
				src |= 1 << l
			default:
				src |= 1 << l
				dst |= 1 << l
			}
		}
		if src >= numVertices || dst >= numVertices {
			continue
		}
		edges = append(edges, model.Edge{
			Src:    model.VertexID(src),
			Dst:    model.VertexID(dst),
			Weight: 1 + rng.Float32()*9,
		})
	}
	return edges
}

// Zipf generates a graph whose out-degrees follow a Zipf distribution with
// the given skew s > 1, modelling power-law social graphs.
func Zipf(seed int64, numVertices, numEdges int, s float64) []model.Edge {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(numVertices-1))
	edges := make([]model.Edge, 0, numEdges)
	for len(edges) < numEdges {
		src := model.VertexID(z.Uint64())
		dst := model.VertexID(rng.Intn(numVertices))
		edges = append(edges, model.Edge{Src: src, Dst: dst, Weight: 1 + rng.Float32()*9})
	}
	return edges
}

// ER generates a uniform Erdős–Rényi style graph with exactly numEdges edges.
func ER(seed int64, numVertices, numEdges int) []model.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]model.Edge, numEdges)
	for i := range edges {
		edges[i] = model.Edge{
			Src:    model.VertexID(rng.Intn(numVertices)),
			Dst:    model.VertexID(rng.Intn(numVertices)),
			Weight: 1 + rng.Float32()*9,
		}
	}
	return edges
}

// Ring generates a deterministic directed cycle 0→1→…→n-1→0, useful for
// tests with a known diameter and SCC structure.
func Ring(numVertices int) []model.Edge {
	edges := make([]model.Edge, numVertices)
	for i := 0; i < numVertices; i++ {
		edges[i] = model.Edge{
			Src:    model.VertexID(i),
			Dst:    model.VertexID((i + 1) % numVertices),
			Weight: 1,
		}
	}
	return edges
}

// Chain generates a directed path 0→1→…→n-1 (no back edge).
func Chain(numVertices int) []model.Edge {
	edges := make([]model.Edge, numVertices-1)
	for i := range edges {
		edges[i] = model.Edge{Src: model.VertexID(i), Dst: model.VertexID(i + 1), Weight: 1}
	}
	return edges
}

// Kind distinguishes the two graph families of Table 1.
type Kind int

const (
	// Social graphs (Twitter, Friendster): R-MAT skew, tiny diameter.
	Social Kind = iota
	// WebGraph crawls (uk2007, uk-union, hyperlink14): host-locality —
	// most links stay near their source ID — and larger diameter.
	WebGraph
)

// Web generates a host-locality web graph: sources advance sequentially
// (crawl order) and most links land within a short ID distance (same-host
// links), while a minority jump uniformly (cross-host links). Sequential
// sources make slot-contiguous partitions highly local, the property
// destination-sorted and reentrant engines exploit on real crawls.
func Web(seed int64, numVertices, numEdges int) []model.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]model.Edge, numEdges)
	for i := range edges {
		src := i * numVertices / numEdges
		var dst int
		if rng.Float64() < 0.85 {
			d := 1 + int(rng.ExpFloat64()*8)
			if rng.Intn(2) == 0 {
				d = -d
			}
			dst = src + d
			if dst < 0 {
				dst = 0
			}
			if dst >= numVertices {
				dst = numVertices - 1
			}
		} else {
			dst = rng.Intn(numVertices)
		}
		edges[i] = model.Edge{
			Src:    model.VertexID(src),
			Dst:    model.VertexID(dst),
			Weight: 1 + rng.Float32()*9,
		}
	}
	return edges
}

// Dataset is one named stand-in for a Table 1 graph.
type Dataset struct {
	Name        string
	PaperName   string // name in the paper's Table 1
	Kind        Kind
	NumVertices int
	NumEdges    int
	Seed        int64
	// ExceedsMem mirrors the paper's setup where hyperlink14 (480 GB) does
	// not fit in the 64 GB of main memory; the harness sizes the simulated
	// memory so that exactly these datasets spill to disk.
	ExceedsMem bool
}

// Generate materializes the dataset's edge list.
func (d Dataset) Generate() []model.Edge {
	if d.Kind == WebGraph {
		return Web(d.Seed, d.NumVertices, d.NumEdges)
	}
	// R-MAT quadrant weights typical for skewed social graphs.
	return RMAT(d.Seed, d.NumVertices, d.NumEdges, 0.57, 0.19, 0.19)
}

// StandIns returns the five Table 1 stand-ins, scaled by the given factor
// (1.0 = the default reproduction scale, roughly 1:40 000 of the paper's
// edge counts with the paper's average degrees preserved).
func StandIns(scale float64) []Dataset {
	base := []Dataset{
		{Name: "twitter-sim", PaperName: "Twitter", Kind: Social, NumVertices: 1050, NumEdges: 35000, Seed: 101},
		{Name: "friendster-sim", PaperName: "Friendster", Kind: Social, NumVertices: 1600, NumEdges: 45000, Seed: 102},
		{Name: "uk2007-sim", PaperName: "uk2007", Kind: WebGraph, NumVertices: 2650, NumEdges: 92500, Seed: 103},
		{Name: "ukunion-sim", PaperName: "uk-union", Kind: WebGraph, NumVertices: 3350, NumEdges: 137500, Seed: 104},
		{Name: "hyperlink14-sim", PaperName: "hyperlink14", Kind: WebGraph, NumVertices: 10600, NumEdges: 400000, Seed: 105, ExceedsMem: true},
	}
	if scale != 1.0 {
		for i := range base {
			base[i].NumVertices = max(16, int(float64(base[i].NumVertices)*scale))
			base[i].NumEdges = max(32, int(float64(base[i].NumEdges)*scale))
		}
	}
	return base
}

// StandIn returns the named stand-in at the given scale.
func StandIn(name string, scale float64) (Dataset, error) {
	for _, d := range StandIns(scale) {
		if d.Name == name || d.PaperName == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// Mutate applies the evolving-graph update model of §4.4: ratio×|E| edge
// slots are rewritten in place (half standing for deletions re-filled by new
// edges, half for added edges replacing expired ones). Rewriting slots keeps
// the edge count and chunk boundaries stable, so snapshot overlays only
// contain the partitions whose slots changed. It returns the mutated copy
// and the sorted slot indices that changed.
func Mutate(edges []model.Edge, ratio float64, numVertices int, seed int64) ([]model.Edge, []int) {
	rng := rand.New(rand.NewSource(seed))
	out := append([]model.Edge(nil), edges...)
	n := int(float64(len(edges)) * ratio)
	if n < 1 && ratio > 0 {
		n = 1
	}
	changed := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for len(changed) < n {
		slot := rng.Intn(len(out))
		if seen[slot] {
			continue
		}
		seen[slot] = true
		out[slot] = model.Edge{
			Src:    model.VertexID(rng.Intn(numVertices)),
			Dst:    model.VertexID(rng.Intn(numVertices)),
			Weight: 1 + rng.Float32()*9,
		}
		changed = append(changed, slot)
	}
	sort.Ints(changed)
	return out, changed
}

// MutateClustered is Mutate with update locality: slots are rewritten in
// contiguous runs of runLen (graph updates cluster on hosts/communities), so
// a given change ratio touches far fewer partitions than uniform rewrites —
// the regime in which snapshot sharing (Fig. 5) pays off.
func MutateClustered(edges []model.Edge, ratio float64, numVertices int, seed int64, runLen int) ([]model.Edge, []int) {
	if runLen < 1 {
		runLen = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := append([]model.Edge(nil), edges...)
	n := int(float64(len(edges)) * ratio)
	if n < 1 && ratio > 0 {
		n = 1
	}
	seen := make(map[int]bool, n)
	changed := make([]int, 0, n)
	for len(changed) < n {
		start := rng.Intn(len(out))
		for i := 0; i < runLen && len(changed) < n; i++ {
			slot := (start + i) % len(out)
			if seen[slot] {
				continue
			}
			seen[slot] = true
			out[slot] = model.Edge{
				Src:    model.VertexID(rng.Intn(numVertices)),
				Dst:    model.VertexID(rng.Intn(numVertices)),
				Weight: 1 + rng.Float32()*9,
			}
			changed = append(changed, slot)
		}
	}
	sort.Ints(changed)
	return out, changed
}

// WriteEdges writes an edge list as "src\tdst\tweight" lines.
func WriteEdges(w io.Writer, edges []model.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", e.Src, e.Dst, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdges parses the WriteEdges format; the weight column is optional and
// defaults to 1.
func ReadEdges(r io.Reader) ([]model.Edge, error) {
	var edges []model.Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gen: line %d: want at least 2 fields, got %d", line, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gen: line %d: bad src: %v", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gen: line %d: bad dst: %v", line, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("gen: line %d: bad weight: %v", line, err)
			}
		}
		edges = append(edges, model.Edge{Src: model.VertexID(src), Dst: model.VertexID(dst), Weight: float32(w)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return edges, nil
}
