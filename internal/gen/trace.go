package gen

import (
	"math"
	"math/rand"
)

// TracePoint is one hourly sample of the synthetic production trace behind
// Figure 1(a): how many CGP jobs are concurrently analysing the shared graph.
type TracePoint struct {
	Hour   float64
	Active int
}

// ShareRatios is one sample of Figure 1(b): of the partitions active for at
// least one job, the percentage needed by more than 1, 2, 4, 8 and 16 jobs.
type ShareRatios struct {
	Hour     float64
	MoreThan map[int]float64 // keys 1, 2, 4, 8, 16 → percentage 0..100
}

// traceJob is one synthetic CGP job instance in the trace.
type traceJob struct {
	start, end float64
	// footprint is the fraction of graph partitions the job touches per
	// iteration: ~1.0 for full-sweep jobs (PageRank variants), lower for
	// frontier jobs (BFS/SSSP) late in their run.
	footprint float64
	seed      int64
}

// JobTrace simulates a diurnal Poisson arrival process over the given number
// of hours, mimicking the Chinese social-network trace of Figure 1: the
// arrival rate swings with time of day and peaks above 20 concurrent jobs.
func JobTrace(seed int64, hours int) ([]TracePoint, []ShareRatios) {
	rng := rand.New(rand.NewSource(seed))
	var jobs []traceJob
	// Hourly arrivals: base 2/h, diurnal amplitude 3/h; durations are
	// log-normal around 2.5 h so day peaks accumulate ~20+ active jobs.
	for h := 0; h < hours; h++ {
		rate := 2.0 + 3.0*(1+math.Sin(2*math.Pi*float64(h)/24-math.Pi/2))/2*2
		n := poisson(rng, rate)
		for i := 0; i < n; i++ {
			start := float64(h) + rng.Float64()
			dur := math.Exp(rng.NormFloat64()*0.6 + 0.9) // median ~2.5h
			foot := 1.0
			if rng.Float64() < 0.4 { // frontier-style jobs
				foot = 0.2 + 0.5*rng.Float64()
			}
			jobs = append(jobs, traceJob{start: start, end: start + dur, footprint: foot, seed: rng.Int63()})
		}
	}

	const numPartitions = 64
	points := make([]TracePoint, 0, hours)
	shares := make([]ShareRatios, 0, hours)
	for h := 0; h < hours; h++ {
		t := float64(h)
		active := 0
		counts := make([]int, numPartitions)
		for _, j := range jobs {
			if j.start <= t && t < j.end {
				active++
				jr := rand.New(rand.NewSource(j.seed + int64(h)))
				for p := 0; p < numPartitions; p++ {
					if jr.Float64() < j.footprint {
						counts[p]++
					}
				}
			}
		}
		points = append(points, TracePoint{Hour: t, Active: active})
		sr := ShareRatios{Hour: t, MoreThan: map[int]float64{}}
		activeParts := 0
		for _, c := range counts {
			if c > 0 {
				activeParts++
			}
		}
		for _, k := range []int{1, 2, 4, 8, 16} {
			over := 0
			for _, c := range counts {
				if c > k {
					over++
				}
			}
			if activeParts > 0 {
				sr.MoreThan[k] = 100 * float64(over) / float64(activeParts)
			}
		}
		shares = append(shares, sr)
	}
	return points, shares
}

// poisson draws a Poisson variate via Knuth's method (rates here are small).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
