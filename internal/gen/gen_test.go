package gen

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"cgraph/model"
)

func TestRMATDeterministicAndSized(t *testing.T) {
	a := RMAT(7, 1000, 5000, 0.57, 0.19, 0.19)
	b := RMAT(7, 1000, 5000, 0.57, 0.19, 0.19)
	if len(a) != 5000 {
		t.Fatalf("len = %d, want 5000", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs between same-seed runs", i)
		}
	}
	c := RMAT(8, 1000, 5000, 0.57, 0.19, 0.19)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATInRangeAndSkewed(t *testing.T) {
	edges := RMAT(1, 512, 20000, 0.57, 0.19, 0.19)
	deg := make([]int, 512)
	for _, e := range edges {
		if int(e.Src) >= 512 || int(e.Dst) >= 512 {
			t.Fatalf("edge out of range: %v", e)
		}
		if e.Weight < 1 || e.Weight >= 10 {
			t.Fatalf("weight out of range: %v", e.Weight)
		}
		deg[e.Src]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	top := 0
	for _, d := range deg[:26] { // top 5%
		top += d
	}
	if float64(top)/20000 < 0.20 {
		t.Fatalf("R-MAT not skewed: top 5%% vertices hold %.1f%% of edges", 100*float64(top)/20000)
	}
}

func TestZipfAndER(t *testing.T) {
	z := Zipf(3, 300, 4000, 1.5)
	if len(z) != 4000 {
		t.Fatalf("Zipf len = %d", len(z))
	}
	e := ER(3, 300, 4000)
	if len(e) != 4000 {
		t.Fatalf("ER len = %d", len(e))
	}
	for _, ed := range append(z, e...) {
		if int(ed.Src) >= 300 || int(ed.Dst) >= 300 {
			t.Fatalf("edge out of range: %v", ed)
		}
	}
}

func TestRingAndChain(t *testing.T) {
	r := Ring(5)
	if len(r) != 5 || r[4].Dst != 0 {
		t.Fatalf("Ring wrong: %v", r)
	}
	c := Chain(5)
	if len(c) != 4 || c[3].Dst != 4 {
		t.Fatalf("Chain wrong: %v", c)
	}
}

func TestStandIns(t *testing.T) {
	ds := StandIns(1.0)
	if len(ds) != 5 {
		t.Fatalf("want 5 stand-ins, got %d", len(ds))
	}
	// Relative ordering of sizes must match the paper's Table 1.
	for i := 1; i < len(ds); i++ {
		if ds[i].NumEdges <= ds[i-1].NumEdges {
			t.Fatalf("stand-ins not ordered by size: %s <= %s", ds[i].Name, ds[i-1].Name)
		}
	}
	if !ds[4].ExceedsMem {
		t.Fatal("hyperlink14-sim must exceed simulated memory")
	}
	d, err := StandIn("twitter-sim", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumEdges != 3500 {
		t.Fatalf("scaled edges = %d, want 3500", d.NumEdges)
	}
	if _, err := StandIn("nope", 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
	edges := d.Generate()
	if len(edges) != d.NumEdges {
		t.Fatalf("Generate len = %d, want %d", len(edges), d.NumEdges)
	}
}

func TestMutatePreservesCountAndReportsSlots(t *testing.T) {
	base := ER(5, 100, 1000)
	mut, changed := Mutate(base, 0.05, 100, 9)
	if len(mut) != len(base) {
		t.Fatalf("mutation changed edge count: %d != %d", len(mut), len(base))
	}
	if len(changed) != 50 {
		t.Fatalf("changed slots = %d, want 50", len(changed))
	}
	if !sort.IntsAreSorted(changed) {
		t.Fatal("changed slots not sorted")
	}
	diff := 0
	for i := range base {
		if base[i] != mut[i] {
			diff++
		}
	}
	// Every reported slot was rewritten (a rewrite may coincidentally equal
	// the old edge, so diff <= len(changed)).
	if diff > len(changed) {
		t.Fatalf("%d edges differ but only %d slots reported", diff, len(changed))
	}
	isChanged := map[int]bool{}
	for _, s := range changed {
		isChanged[s] = true
	}
	for i := range base {
		if base[i] != mut[i] && !isChanged[i] {
			t.Fatalf("slot %d changed but not reported", i)
		}
	}
}

func TestMutateTinyRatioChangesAtLeastOneSlot(t *testing.T) {
	base := ER(5, 100, 1000)
	_, changed := Mutate(base, 0.00001, 100, 9)
	if len(changed) != 1 {
		t.Fatalf("want 1 changed slot for tiny ratio, got %d", len(changed))
	}
}

func TestEdgeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		edges := ER(seed, 50, 200)
		var buf bytes.Buffer
		if err := WriteEdges(&buf, edges); err != nil {
			return false
		}
		got, err := ReadEdges(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for i := range got {
			if got[i].Src != edges[i].Src || got[i].Dst != edges[i].Dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgesDefaultsAndComments(t *testing.T) {
	in := "# comment\n1 2\n3\t4\t2.5\n\n"
	edges, err := ReadEdges(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("len = %d, want 2", len(edges))
	}
	if edges[0].Weight != 1 {
		t.Fatalf("default weight = %v, want 1", edges[0].Weight)
	}
	if edges[1] != (model.Edge{Src: 3, Dst: 4, Weight: 2.5}) {
		t.Fatalf("edge = %v", edges[1])
	}
	if _, err := ReadEdges(bytes.NewBufferString("x y\n")); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ReadEdges(bytes.NewBufferString("1\n")); err == nil {
		t.Fatal("want field-count error")
	}
}

func TestJobTraceShape(t *testing.T) {
	points, shares := JobTrace(11, 160)
	if len(points) != 160 || len(shares) != 160 {
		t.Fatalf("want 160 samples, got %d/%d", len(points), len(shares))
	}
	maxActive := 0
	for _, p := range points {
		if p.Active > maxActive {
			maxActive = p.Active
		}
	}
	// Figure 1(a) peaks above 20 concurrent jobs.
	if maxActive < 15 {
		t.Fatalf("trace peak = %d, want >= 15 concurrent jobs", maxActive)
	}
	// Sharing ratios are monotone in k and within [0,100].
	for _, s := range shares {
		prev := 101.0
		for _, k := range []int{1, 2, 4, 8, 16} {
			v := s.MoreThan[k]
			if v < 0 || v > 100 {
				t.Fatalf("ratio out of range: %v", v)
			}
			if v > prev {
				t.Fatalf("share ratios not monotone at hour %v", s.Hour)
			}
			prev = v
		}
	}
}
