// Package trace keeps bounded, in-memory execution traces for the
// concurrent engine: one compact record per LTP round (wall time, scheduler
// group composition, per-job work split) in a ring of configurable depth,
// plus a per-job round-by-round timeline that survives job retirement so a
// compacted job's history can still be queried. Everything is fixed-size —
// a resident service tracing forever never grows without bound.
package trace

import (
	"sync"
	"time"
)

// Group is one correlation group of a round's schedule.
type Group struct {
	// Jobs are the engine job IDs scheduled in this group.
	Jobs []int
	// Priority is the aggregate job priority that ordered the group.
	Priority int
	// Units is the number of (snapshot, partition) units the group loaded.
	Units int
	// MakespanUS is the group's simulated span within the round.
	MakespanUS float64
}

// JobRound is one job's share of one round.
type JobRound struct {
	// Job is the engine job ID the entry belongs to.
	Job int
	// Round is the 1-based engine round index.
	Round int64
	// Wall is the measured wall-clock duration of the whole round.
	Wall time.Duration
	// Parts is the number of active partitions the job had scheduled.
	Parts int
	// Pushes is the number of iterations the job closed (sync pushes).
	Pushes int
	// Mode is the job's execution discipline ("async", "delayed"); empty
	// for default-BSP jobs so pre-mode records are unchanged.
	Mode string
	// Fresh counts contributions the job folded eagerly (fresh-state) this
	// round; zero for BSP jobs.
	Fresh int64
	// AccessUS / ComputeUS are the job's simulated access and compute time
	// charged during the round.
	AccessUS  float64
	ComputeUS float64
	// VirtualTimeUS is the engine's simulated clock at round end.
	VirtualTimeUS float64
}

// Round is the per-round trace record.
type Round struct {
	// Round is the 1-based engine round index.
	Round int64
	// Start is the wall-clock time the round began.
	Start time.Time
	// Wall is the measured wall-clock duration of the round.
	Wall time.Duration
	// VirtualTimeUS is the engine's simulated clock at round end.
	VirtualTimeUS float64
	// Policy and Theta describe the scheduler that produced the plan.
	Policy string
	Theta  float64
	// Groups is the correlation-group composition of the round.
	Groups []Group
	// Jobs is the per-job work split, one entry per job active this round.
	Jobs []JobRound
	// Tasks / Steals are the work-stealing executor's counts for the
	// round: tasks executed across every trigger and merge phase, and
	// successful steal operations among them.
	Tasks  int64
	Steals int64
	// Skipped counts the (job, partition) pairs whose frontier was empty
	// at round start — converged regions excluded before scheduling.
	Skipped int64
	// Fresh counts contributions folded eagerly by fresh-state (async or
	// delayed) jobs during the round; zero on all-BSP rounds.
	Fresh int64
}

// Timeline is one job's round-by-round history. Rounds is bounded by the
// recorder depth; Dropped counts rounds truncated off the front.
type Timeline struct {
	JobID   int
	State   string // terminal state name once retired, "" while live
	Dropped int
	Rounds  []JobRound
}

// Recorder holds the bounded rings. The zero value is unusable; a nil
// *Recorder is the disabled tracer (methods on it are not safe — callers
// gate on nil).
type Recorder struct {
	mu     sync.Mutex
	depth  int
	rounds []Round
	live   map[int]*Timeline
	// retired keeps the most recent terminal-job timelines (ring of depth)
	// so traces stay retrievable after the service compacts the job.
	retired    []*Timeline
	retiredIdx map[int]*Timeline
}

// New returns a recorder keeping the last depth rounds per ring, or nil
// when depth <= 0 (tracing disabled).
func New(depth int) *Recorder {
	if depth <= 0 {
		return nil
	}
	return &Recorder{
		depth:      depth,
		live:       make(map[int]*Timeline),
		retiredIdx: make(map[int]*Timeline),
	}
}

// Depth returns the configured ring depth.
func (r *Recorder) Depth() int { return r.depth }

// RecordRound appends a round record and folds its per-job entries into
// the job timelines.
func (r *Recorder) RecordRound(rd Round) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds = append(r.rounds, rd)
	if len(r.rounds) > r.depth {
		r.rounds = r.rounds[1:]
	}
	for _, jr := range rd.Jobs {
		tl, ok := r.live[jr.Job]
		if !ok {
			// Completion is detected mid-round, before the round record is
			// cut, so a job's final round arrives after its Retire. Fold it
			// into the retained timeline rather than resurrecting a live one
			// (which would shadow the full history on lookup).
			if rtl, retired := r.retiredIdx[jr.Job]; retired {
				tl = rtl
			} else {
				tl = &Timeline{JobID: jr.Job}
				r.live[tl.JobID] = tl
			}
		}
		tl.Rounds = append(tl.Rounds, jr)
		if len(tl.Rounds) > r.depth {
			tl.Rounds = tl.Rounds[1:]
			tl.Dropped++
		}
	}
}

// Retire moves a job's timeline into the retained terminal ring and stamps
// its terminal state. Unknown jobs (never traced, or already evicted from
// the ring) get an empty retained timeline so state is still recorded.
func (r *Recorder) Retire(jobID int, state string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.live[jobID]
	if !ok {
		// No live timeline: the job never traced a round, or this is a
		// repeat Retire after its final round folded into the retained
		// timeline — keep the retained rounds and just restamp the state.
		if old, dup := r.retiredIdx[jobID]; dup {
			old.State = state
			return
		}
		tl = &Timeline{JobID: jobID}
	} else {
		delete(r.live, jobID)
	}
	tl.State = state
	if old, dup := r.retiredIdx[jobID]; dup {
		// Replace in place (re-retire of a resubmitted engine ID).
		*old = *tl
		return
	}
	r.retired = append(r.retired, tl)
	r.retiredIdx[jobID] = tl
	if len(r.retired) > r.depth {
		delete(r.retiredIdx, r.retired[0].JobID)
		r.retired[0] = nil
		r.retired = r.retired[1:]
	}
}

// Rounds returns up to limit of the most recent round records, oldest
// first. limit <= 0 returns everything retained.
func (r *Recorder) Rounds(limit int) []Round {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.rounds)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Round, n)
	copy(out, r.rounds[len(r.rounds)-n:])
	return out
}

// Job returns a copy of the job's timeline — live if the job is still
// running, else from the retained terminal ring.
func (r *Recorder) Job(jobID int) (Timeline, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.live[jobID]
	if !ok {
		tl, ok = r.retiredIdx[jobID]
	}
	if !ok {
		return Timeline{}, false
	}
	out := *tl
	out.Rounds = append([]JobRound(nil), tl.Rounds...)
	return out, true
}
