package trace

import (
	"testing"
	"time"
)

func round(n int64, jobs ...int) Round {
	rd := Round{Round: n, Wall: time.Millisecond, Policy: "ltp", Theta: 0.5}
	for _, j := range jobs {
		rd.Jobs = append(rd.Jobs, JobRound{Job: j, Round: n, Parts: 1, Pushes: 1})
	}
	return rd
}

func TestNewDisabled(t *testing.T) {
	if New(0) != nil || New(-3) != nil {
		t.Fatal("New with depth <= 0 must return nil (tracing disabled)")
	}
}

func TestRoundRingBounded(t *testing.T) {
	r := New(3)
	for i := int64(1); i <= 5; i++ {
		r.RecordRound(round(i, 7))
	}
	got := r.Rounds(0)
	if len(got) != 3 {
		t.Fatalf("%d rounds retained, want 3", len(got))
	}
	// Oldest first, trimmed off the front.
	for i, want := range []int64{3, 4, 5} {
		if got[i].Round != want {
			t.Fatalf("rounds = %v, want indices [3 4 5]", got)
		}
	}
	// Limit returns the newest n, still oldest-first.
	if lim := r.Rounds(2); len(lim) != 2 || lim[0].Round != 4 || lim[1].Round != 5 {
		t.Fatalf("Rounds(2) = %+v, want rounds 4,5", lim)
	}

	// The job timeline trims the same way and counts what it dropped.
	tl, ok := r.Job(7)
	if !ok {
		t.Fatal("job 7 timeline missing")
	}
	if len(tl.Rounds) != 3 || tl.Dropped != 2 || tl.State != "" {
		t.Fatalf("timeline = %+v, want 3 rounds, 2 dropped, live", tl)
	}
}

func TestRetire(t *testing.T) {
	r := New(4)
	r.RecordRound(round(1, 1, 2))
	r.RecordRound(round(2, 1))
	r.Retire(1, "done")

	tl, ok := r.Job(1)
	if !ok || tl.State != "done" || len(tl.Rounds) != 2 {
		t.Fatalf("retired timeline = %+v, ok=%v", tl, ok)
	}
	// Job 2 is still live.
	if tl2, ok := r.Job(2); !ok || tl2.State != "" || len(tl2.Rounds) != 1 {
		t.Fatalf("live timeline = %+v, ok=%v", tl2, ok)
	}
	// Never-traced jobs still get a terminal marker.
	r.Retire(99, "cancelled")
	if tl99, ok := r.Job(99); !ok || tl99.State != "cancelled" || len(tl99.Rounds) != 0 {
		t.Fatalf("untraced retire = %+v, ok=%v", tl99, ok)
	}
	// A round arriving after Retire folds into the retained timeline; a
	// repeat Retire restamps the state without dropping those rounds.
	r.RecordRound(round(3, 1))
	r.Retire(1, "failed")
	if tl, _ := r.Job(1); tl.State != "failed" || len(tl.Rounds) != 3 {
		t.Fatalf("re-retired timeline = %+v", tl)
	}
	if _, ok := r.Job(5); ok {
		t.Fatal("unknown job must not resolve")
	}
}

// TestFinalRoundAfterRetire mirrors the engine's ordering: a job's
// completion is detected mid-round (Retire), then the round record is cut
// (RecordRound). The final round must fold into the retained timeline, not
// resurrect a live one that shadows the history.
func TestFinalRoundAfterRetire(t *testing.T) {
	r := New(8)
	r.RecordRound(round(1, 1))
	r.RecordRound(round(2, 1))
	r.Retire(1, "done")
	r.RecordRound(round(3, 1)) // the round the job finished in

	tl, ok := r.Job(1)
	if !ok || tl.State != "done" {
		t.Fatalf("timeline = %+v, ok=%v", tl, ok)
	}
	if len(tl.Rounds) != 3 || tl.Rounds[2].Round != 3 {
		t.Fatalf("rounds = %+v, want 1..3 on the retired timeline", tl.Rounds)
	}
}

func TestRetiredRingBounded(t *testing.T) {
	r := New(2)
	for id := 1; id <= 4; id++ {
		r.RecordRound(round(int64(id), id))
		r.Retire(id, "done")
	}
	// Only the 2 most recent terminal timelines survive.
	for id := 1; id <= 2; id++ {
		if _, ok := r.Job(id); ok {
			t.Fatalf("job %d should have been evicted from the retired ring", id)
		}
	}
	for id := 3; id <= 4; id++ {
		if tl, ok := r.Job(id); !ok || tl.State != "done" {
			t.Fatalf("job %d missing from retired ring (%+v, %v)", id, tl, ok)
		}
	}
}
