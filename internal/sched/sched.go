// Package sched implements snapshot-aware two-level scheduling for
// concurrent jobs over an evolving graph.
//
// Level 1 groups the round's jobs by correlation: jobs whose active
// footprints share a snapshot partition version (the same *graph.Partition,
// identified by its UID, possibly shared by several snapshots per Fig. 5)
// are scheduled together so their loads amortize, in the spirit of the
// two-level scheduling of Zhao et al. (arXiv:1806.00777). Level 2 keeps the
// Eq. 1 priority order of §3.3 within each group: units load in descending
// Pri(U) = N(U) + θ·D(U)·C(U), where N(U) is the number of group jobs
// needing the unit, D(U) the partition version's average vertex degree, and
// C(U) the average vertex-state change observed for that version in the
// previous round. θ is kept strictly below 1/(Dmax·Cmax) so that N always
// dominates, and — unlike the original fit-once preprocessing — is refitted
// whenever a new snapshot raises Dmax or the windowed (decayed) D/C maxima
// drift out of the hysteresis band in either direction, so the fit tracks
// shrinking workloads as well as upward drift.
//
// A scheduling unit is one snapshot version of a partition, not a base
// partition index: snapshots with arbitrary partition counts schedule
// correctly side by side.
package sched

import (
	"fmt"
	"math"
	"sort"

	"cgraph/internal/graph"
)

// Kind selects the scheduling policy.
type Kind int

const (
	// Static loads units in partition-index order (the CGraph-without
	// ablation of Fig. 8), all jobs in one group.
	Static Kind = iota
	// Priority applies Eq. 1 over the union of every job's footprint
	// (one-level scheduling), all jobs in one group.
	Priority
	// TwoLevel first groups jobs by correlated footprints, then applies
	// Eq. 1 within each group with group-local N(U).
	TwoLevel
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case TwoLevel:
		return "two-level"
	default:
		return "priority"
	}
}

// ParseKind resolves a policy name ("static", "priority", "two-level").
func ParseKind(s string) (Kind, error) {
	switch s {
	case "static":
		return Static, nil
	case "priority":
		return Priority, nil
	case "two-level", "twolevel", "two_level":
		return TwoLevel, nil
	}
	return Static, fmt.Errorf("sched: unknown policy %q (want static, priority, or two-level)", s)
}

// JobFootprint is one job's round footprint: the snapshot partition versions
// its active vertices live in.
type JobFootprint struct {
	JobID int
	// Priority is the job's submission priority; groups are ordered by
	// aggregate priority, so a group carrying urgent jobs runs its loads
	// first regardless of how many jobs it amortizes over.
	Priority int
	Units    []*graph.Partition
	// Active, when set, is parallel to Units: the job's active-vertex
	// count in each unit. The D(U)·C(U) term of Eq. 1 is scaled by the
	// highest active fraction across the unit's jobs, so θ reflects the
	// work actually remaining rather than the partition's full size. Nil
	// means "assume fully active" (backward compatible).
	Active []int
	// Fresh marks async/delayed jobs: the fresh-state sweep consumes
	// pending delta written earlier in the same load, so a loaded unit
	// retires more state change than the previous round's C(U) sample
	// suggests. Units carrying a fresh job get their D·C tie-break term
	// boosted by freshBoost (still clamped by the dominance budget, so the
	// Eq. 1 N-dominance guarantee is unaffected). False for BSP jobs
	// leaves the plan byte-identical to pre-mode behavior.
	Fresh bool
}

// UnitPlan is one entry of a group's load order: a snapshot partition
// version plus the jobs to trigger on it.
type UnitPlan struct {
	Part *graph.Partition
	Jobs []int
}

// Group is one correlation group: its jobs and their ordered unit loads.
type Group struct {
	Jobs []int
	// Priority is the group's aggregate (summed) job priority, the primary
	// ordering key between groups.
	Priority int
	Units    []UnitPlan
}

// driftFactor is the C-maxima growth that triggers a θ refit: large enough
// that well-behaved workloads refit rarely, small enough that the fit
// tracks genuine regime changes. dominanceBudget caps the θ·D·C tie-break
// term of every unit, so N(U) dominates Eq. 1 unconditionally — even
// between refits, and even when a diverging job's state changes grow
// without bound faster than any refit cadence could chase. Because the
// clamp, not the refit cadence, carries the correctness guarantee, drift
// refits are rate-limited to one per refitMinInterval plans (snapshot
// arrivals refit immediately), and C observations beyond cmaxCeiling —
// reachable only by diverging jobs — are ignored so θ never underflows
// to zero.
const (
	driftFactor      = 1.5
	dominanceBudget  = 0.5
	refitMinInterval = 32
	cmaxCeiling      = 1e150
	// freshBoost scales the D·C term of units carrying at least one
	// fresh-state (async/delayed) job: intra-block propagation consumes
	// extra pending delta per load, making those loads more valuable than
	// the BSP-sampled C(U) alone indicates. Applied before the dominance
	// clamp, so it can only reorder the tie-break, never violate Eq. 1.
	freshBoost = 1.5
	// windowDecay ages the running D/C maxima a little every plan
	// (half-life ≈ 23 plans), so the estimates — and through them θ —
	// also track *shrinking* workloads: when dense snapshots or hot jobs
	// retire, the window drifts down and a rate-limited refit raises θ
	// back toward the live regime instead of staying pinned to an
	// all-time peak. The dominance clamp keeps Eq. 1 correct either way.
	windowDecay = 0.97
)

// Scheduler orders partition loads for a round. It is driven by a single
// goroutine (the engine's round loop); snapshot observations from other
// goroutines must be funneled through that loop.
type Scheduler struct {
	kind Kind

	// dmaxWin / cmaxWin are windowed (decayed running) maxima of the
	// average degrees and state-change sums: each Plan ages them by
	// windowDecay, then folds in the round's observations, so they rise
	// instantly with the workload and drift back down as it shrinks.
	// dmaxFit / cmaxFit are the values θ was last fitted against.
	dmaxWin float64
	cmaxWin float64
	dmaxFit float64
	cmaxFit float64
	theta   float64
	// fitted distinguishes "never fitted" from small-θ regimes; plans and
	// lastFitPlan rate-limit drift refits.
	fitted      bool
	refits      int
	plans       int
	lastFitPlan int
}

// New builds a scheduler; feed it snapshots via ObserveSnapshot.
func New(kind Kind) *Scheduler { return &Scheduler{kind: kind} }

// Kind returns the policy.
func (s *Scheduler) Kind() Kind { return s.kind }

// Theta exposes the fitted θ (0 until the first non-zero C observation).
func (s *Scheduler) Theta() float64 { return s.theta }

// Refits counts how many times θ was (re)fitted.
func (s *Scheduler) Refits() int { return s.refits }

// ObserveSnapshot folds a snapshot's partition degrees into the windowed
// Dmax and refits θ immediately when the new version raised it beyond the
// fitted value. Merely topping up the decayed window (a steady stream of
// same-density snapshots) does not refit — downward tracking is Plan's
// rate-limited job — so snapshot ingestion cadence cannot churn θ.
func (s *Scheduler) ObserveSnapshot(pg *graph.PGraph) {
	for _, p := range pg.Parts {
		if p.AvgDegree > s.dmaxWin {
			s.dmaxWin = p.AvgDegree
		}
	}
	if !s.fitted || s.dmaxWin > s.dmaxFit {
		s.refit()
	}
}

// refit pins θ strictly below 1/(Dmax·Cmax) from the windowed maxima.
func (s *Scheduler) refit() {
	if s.dmaxWin > 0 && s.cmaxWin > 0 {
		s.theta = dominanceBudget / (s.dmaxWin * s.cmaxWin)
		s.dmaxFit = s.dmaxWin
		s.cmaxFit = s.cmaxWin
		s.fitted = true
		s.refits++
		s.lastFitPlan = s.plans
	}
}

// unit aggregates the jobs needing one partition version this round.
type unit struct {
	part *graph.Partition
	jobs []int
	// frac is the highest active-vertex fraction any job has in this
	// unit, scaling the D·C term of Eq. 1 down as frontiers shrink.
	frac float64
	// fresh reports whether any job needing the unit runs fresh-state.
	fresh bool
}

// Plan orders this round's loads. jobs lists each job's footprint; c maps a
// partition version's UID to the C(U) observed in the previous round.
// Neither input is mutated. The plan is deterministic for a given job order:
// groups descend by job count (ties: lowest job ID first), units within a
// group follow the policy's order, and every unit appears in exactly one
// group.
func (s *Scheduler) Plan(jobs []JobFootprint, c map[int64]float64) []Group {
	s.plans++
	// Age the window, then fold in this round's observations: the C sums
	// of the previous round and the degrees of the footprints actually
	// being scheduled (snapshot arrivals feed ObserveSnapshot directly).
	s.cmaxWin *= windowDecay
	s.dmaxWin *= windowDecay
	for _, v := range c {
		if v > s.cmaxWin && v < cmaxCeiling && !math.IsNaN(v) {
			s.cmaxWin = v
		}
	}
	for _, jf := range jobs {
		for _, p := range jf.Units {
			if p.AvgDegree > s.dmaxWin {
				s.dmaxWin = p.AvgDegree
			}
		}
	}
	// First fit as soon as both maxima exist; afterwards whenever the
	// windowed maxima drift out of the hysteresis band in either
	// direction, at most once per refitMinInterval plans.
	drifted := s.cmaxWin > s.cmaxFit*driftFactor || s.dmaxWin > s.dmaxFit*driftFactor ||
		s.cmaxWin < s.cmaxFit/driftFactor || s.dmaxWin < s.dmaxFit/driftFactor
	switch {
	case !s.fitted && s.cmaxWin > 0:
		s.refit()
	case s.fitted && drifted && s.plans-s.lastFitPlan >= refitMinInterval:
		s.refit()
	}

	// Collect units in first-seen order (deterministic: engine iterates
	// jobs in submission order).
	byUID := make(map[int64]*unit)
	var units []*unit
	for _, jf := range jobs {
		for ui, p := range jf.Units {
			u := byUID[p.UID]
			if u == nil {
				u = &unit{part: p}
				byUID[p.UID] = u
				units = append(units, u)
			}
			u.jobs = append(u.jobs, jf.JobID)
			f := 1.0
			if ui < len(jf.Active) && p.NumVertices() > 0 {
				f = float64(jf.Active[ui]) / float64(p.NumVertices())
			}
			if f > u.frac {
				u.frac = f
			}
			if jf.Fresh {
				u.fresh = true
			}
		}
	}

	// Level 1: correlate jobs. Sharing a unit is the correlation edge;
	// connected components become groups. One-level policies use a single
	// component.
	parent := make(map[int]int, len(jobs))
	for _, jf := range jobs {
		parent[jf.JobID] = jf.JobID
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	if s.kind == TwoLevel {
		for _, u := range units {
			for _, j := range u.jobs[1:] {
				union(u.jobs[0], j)
			}
		}
	} else if len(jobs) > 1 {
		for _, jf := range jobs[1:] {
			union(jobs[0].JobID, jf.JobID)
		}
	}

	type groupAcc struct {
		jobs  []int
		pri   int
		units []*unit
	}
	byRoot := make(map[int]*groupAcc)
	var roots []int
	for _, jf := range jobs {
		r := find(jf.JobID)
		g := byRoot[r]
		if g == nil {
			g = &groupAcc{}
			byRoot[r] = g
			roots = append(roots, r)
		}
		g.jobs = append(g.jobs, jf.JobID)
		g.pri += jf.Priority
	}
	for _, u := range units {
		g := byRoot[find(u.jobs[0])]
		g.units = append(g.units, u)
	}

	// Level 2: order units within each group.
	for _, r := range roots {
		s.orderUnits(byRoot[r].units, c)
	}

	// Highest aggregate job priority first, so urgent groups' loads land
	// before bulk ones; within a priority, the largest (most amortization)
	// group first; ties toward the oldest job.
	sort.SliceStable(roots, func(a, b int) bool {
		ga, gb := byRoot[roots[a]], byRoot[roots[b]]
		if ga.pri != gb.pri {
			return ga.pri > gb.pri
		}
		if len(ga.jobs) != len(gb.jobs) {
			return len(ga.jobs) > len(gb.jobs)
		}
		return ga.jobs[0] < gb.jobs[0]
	})

	out := make([]Group, 0, len(roots))
	for _, r := range roots {
		g := byRoot[r]
		grp := Group{Jobs: append([]int(nil), g.jobs...), Priority: g.pri}
		sort.Ints(grp.Jobs)
		for _, u := range g.units {
			grp.Units = append(grp.Units, UnitPlan{
				Part: u.part,
				Jobs: append([]int(nil), u.jobs...),
			})
		}
		out = append(out, grp)
	}
	return out
}

// orderUnits sorts one group's units in place: partition-index order for
// Static, Eq. 1 priority descending otherwise, with (ID, UID) ascending as
// the deterministic tie-break.
func (s *Scheduler) orderUnits(us []*unit, c map[int64]float64) {
	if s.kind == Static {
		sort.Slice(us, func(a, b int) bool {
			if us[a].part.ID != us[b].part.ID {
				return us[a].part.ID < us[b].part.ID
			}
			return us[a].part.UID < us[b].part.UID
		})
		return
	}
	pri := make(map[int64]float64, len(us))
	for _, u := range us {
		// The clamp (which also catches NaN/Inf products) caps the
		// tie-break strictly below any N difference, so the Eq. 1
		// dominance guarantee holds even against drift θ has not yet
		// chased. The frontier fraction scales D·C down to the work
		// actually remaining in the unit.
		term := s.theta * u.part.AvgDegree * u.frac * c[u.part.UID]
		if u.fresh {
			term *= freshBoost
		}
		if !(term < dominanceBudget) {
			term = dominanceBudget
		}
		pri[u.part.UID] = float64(len(u.jobs)) + term
	}
	sort.Slice(us, func(a, b int) bool {
		pa, pb := pri[us[a].part.UID], pri[us[b].part.UID]
		if pa != pb {
			return pa > pb
		}
		if us[a].part.ID != us[b].part.ID {
			return us[a].part.ID < us[b].part.ID
		}
		return us[a].part.UID < us[b].part.UID
	})
}
