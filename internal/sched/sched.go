// Package sched implements the partition-load scheduling of §3.3: partitions
// are loaded in descending priority Pri(P) = N(P) + θ·D(P)·C(P) (Eq. 1),
// where N(P) is the number of jobs needing P, D(P) the partition's average
// vertex degree (static), and C(P) the average vertex-state change observed
// in the previous iteration. θ is fixed at preprocessing time below
// 1/(Dmax·Cmax) so that N(P) always dominates: the partition serving the
// most jobs is loaded first, and θ·D·C breaks ties toward hot, high-impact
// partitions.
package sched

import (
	"sort"

	"cgraph/internal/graph"
)

// Kind selects the scheduling policy.
type Kind int

const (
	// Static loads partitions in index order (the CGraph-without ablation
	// of Fig. 8).
	Static Kind = iota
	// Priority applies Eq. 1.
	Priority
)

func (k Kind) String() string {
	if k == Static {
		return "static"
	}
	return "priority"
}

// Scheduler orders partition loads for a round.
type Scheduler struct {
	kind Kind
	// d is D(P), fixed at preprocessing.
	d []float64
	// theta is fixed on the first observation of C(P) maxima.
	theta    float64
	thetaSet bool
}

// New builds a scheduler over the partitions of pg.
func New(kind Kind, pg *graph.PGraph) *Scheduler {
	d := make([]float64, len(pg.Parts))
	for i, p := range pg.Parts {
		d[i] = p.AvgDegree
	}
	return &Scheduler{kind: kind, d: d}
}

// Kind returns the policy.
func (s *Scheduler) Kind() Kind { return s.kind }

// Order returns the load order for the candidate partitions. n[p] is N(P)
// for this round, c[p] is C(P) from the previous round. Candidates are not
// mutated. Ordering is deterministic: priority descending, index ascending
// on ties.
func (s *Scheduler) Order(cands []int, n []int, c []float64) []int {
	out := append([]int(nil), cands...)
	if s.kind == Static {
		sort.Ints(out)
		return out
	}
	if !s.thetaSet {
		s.setTheta(c)
	}
	pri := make(map[int]float64, len(out))
	for _, p := range out {
		pri[p] = float64(n[p]) + s.theta*s.d[p]*c[p]
	}
	sort.Slice(out, func(a, b int) bool {
		pa, pb := pri[out[a]], pri[out[b]]
		if pa != pb {
			return pa > pb
		}
		return out[a] < out[b]
	})
	return out
}

// setTheta fixes θ strictly below 1/(Dmax·Cmax) using the first observed
// state-change maxima (the paper's preprocessing-time profiling).
func (s *Scheduler) setTheta(c []float64) {
	var dmax, cmax float64
	for i := range s.d {
		if s.d[i] > dmax {
			dmax = s.d[i]
		}
	}
	for _, v := range c {
		if v > cmax {
			cmax = v
		}
	}
	if dmax > 0 && cmax > 0 {
		s.theta = 0.5 / (dmax * cmax)
		s.thetaSet = true
	}
}

// Theta exposes the fitted θ (0 until first non-zero observation).
func (s *Scheduler) Theta() float64 { return s.theta }
