package sched

import (
	"testing"

	"cgraph/internal/gen"
	"cgraph/internal/graph"
)

func buildPG(t *testing.T) *graph.PGraph {
	t.Helper()
	edges := gen.RMAT(5, 200, 4000, 0.57, 0.19, 0.19)
	g := graph.Build(200, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestStaticOrder(t *testing.T) {
	s := New(Static, buildPG(t))
	got := s.Order([]int{5, 1, 7, 0}, make([]int, 8), make([]float64, 8))
	want := []int{0, 1, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("static order = %v, want %v", got, want)
		}
	}
	if s.Kind() != Static || s.Kind().String() != "static" {
		t.Fatal("kind accessors broken")
	}
}

func TestPriorityNDominates(t *testing.T) {
	// Eq. 1: the partition needed by the most jobs loads first, whatever
	// D(P)·C(P) says — guaranteed by the θ bound.
	s := New(Priority, buildPG(t))
	n := []int{1, 3, 2, 1, 0, 0, 0, 0}
	c := []float64{100, 0.1, 50, 3, 0, 0, 0, 0}
	got := s.Order([]int{0, 1, 2, 3}, n, c)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("priority order = %v, want N(P) to dominate (1,2 first)", got)
	}
	if s.Theta() <= 0 {
		t.Fatal("theta not fitted from first observation")
	}
}

func TestPriorityTieBreakByDC(t *testing.T) {
	pg := buildPG(t)
	s := New(Priority, pg)
	// Equal N: ties broken toward the larger D(P)·C(P).
	n := []int{2, 2, 2, 2, 0, 0, 0, 0}
	c := []float64{0, 10, 5, 0, 0, 0, 0, 0}
	got := s.Order([]int{0, 1, 2, 3}, n, c)
	pos := map[int]int{}
	for i, p := range got {
		pos[p] = i
	}
	// Partition 1 has the largest C among equal-N candidates with a
	// nonzero degree, so it must come before 0 and 3 (C = 0).
	if pos[1] > pos[0] || pos[1] > pos[3] {
		t.Fatalf("tie-break order = %v (D=%v)", got, []float64{pg.Parts[0].AvgDegree, pg.Parts[1].AvgDegree})
	}
}

func TestThetaBound(t *testing.T) {
	pg := buildPG(t)
	s := New(Priority, pg)
	c := []float64{9, 4, 7, 1, 0, 0, 0, 0}
	s.Order([]int{0, 1, 2, 3}, make([]int, 8), c)
	var dmax, cmax float64
	for _, p := range pg.Parts {
		if p.AvgDegree > dmax {
			dmax = p.AvgDegree
		}
	}
	for _, v := range c {
		if v > cmax {
			cmax = v
		}
	}
	if s.Theta() >= 1/(dmax*cmax) {
		t.Fatalf("theta %v violates the Eq. 1 bound 1/(Dmax*Cmax) = %v", s.Theta(), 1/(dmax*cmax))
	}
}

func TestOrderDoesNotMutateInput(t *testing.T) {
	s := New(Priority, buildPG(t))
	cands := []int{3, 1, 2}
	s.Order(cands, make([]int, 8), make([]float64, 8))
	if cands[0] != 3 || cands[1] != 1 || cands[2] != 2 {
		t.Fatal("Order mutated its input")
	}
}

func TestDeterministicOrder(t *testing.T) {
	s := New(Priority, buildPG(t))
	n := []int{1, 1, 1, 1, 1, 1, 1, 1}
	c := make([]float64, 8)
	a := s.Order([]int{7, 3, 5, 0}, n, c)
	b := s.Order([]int{0, 5, 3, 7}, n, c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order depends on candidate permutation: %v vs %v", a, b)
		}
	}
}
