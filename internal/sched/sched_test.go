package sched

import (
	"math"
	"testing"

	"cgraph/internal/gen"
	"cgraph/internal/graph"
)

func buildPG(t testing.TB, parts int) *graph.PGraph {
	t.Helper()
	edges := gen.RMAT(5, 200, 4000, 0.57, 0.19, 0.19)
	g := graph.Build(200, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

// footprints builds one footprint per job over the given partition indices.
func footprints(pg *graph.PGraph, jobs map[int][]int) []JobFootprint {
	ids := make([]int, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	// Deterministic submission order.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	var out []JobFootprint
	for _, id := range ids {
		jf := JobFootprint{JobID: id}
		for _, pid := range jobs[id] {
			jf.Units = append(jf.Units, pg.Parts[pid])
		}
		out = append(out, jf)
	}
	return out
}

// loadOrder flattens a plan into the sequence of partition IDs loaded.
func loadOrder(plan []Group) []int {
	var out []int
	for _, g := range plan {
		for _, u := range g.Units {
			out = append(out, u.Part.ID)
		}
	}
	return out
}

func cmap(pg *graph.PGraph, c []float64) map[int64]float64 {
	m := make(map[int64]float64)
	for pid, v := range c {
		if v != 0 {
			m[pg.Parts[pid].UID] = v
		}
	}
	return m
}

func TestStaticOrder(t *testing.T) {
	pg := buildPG(t, 8)
	s := New(Static)
	s.ObserveSnapshot(pg)
	plan := s.Plan(footprints(pg, map[int][]int{0: {5, 1}, 1: {7, 0}}), nil)
	if len(plan) != 1 {
		t.Fatalf("static plan has %d groups, want 1", len(plan))
	}
	got := loadOrder(plan)
	want := []int{0, 1, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("static order = %v, want %v", got, want)
		}
	}
	if s.Kind() != Static || s.Kind().String() != "static" {
		t.Fatal("kind accessors broken")
	}
}

func TestPriorityNDominates(t *testing.T) {
	// Eq. 1: the partition needed by the most jobs loads first, whatever
	// D(P)·C(P) says — guaranteed by the θ bound.
	pg := buildPG(t, 8)
	s := New(Priority)
	s.ObserveSnapshot(pg)
	jobs := map[int][]int{
		0: {0, 1, 2, 3},
		1: {1, 2},
		2: {1},
	}
	c := cmap(pg, []float64{100, 0.1, 50, 3, 0, 0, 0, 0})
	got := loadOrder(s.Plan(footprints(pg, jobs), c))
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("priority order = %v, want N(P) to dominate (1,2 first)", got)
	}
	if s.Theta() <= 0 {
		t.Fatal("theta not fitted from first observation")
	}
}

func TestPriorityTieBreakByDC(t *testing.T) {
	pg := buildPG(t, 8)
	s := New(Priority)
	s.ObserveSnapshot(pg)
	// Equal N: ties broken toward the larger D(P)·C(P).
	jobs := map[int][]int{0: {0, 1, 2, 3}, 1: {0, 1, 2, 3}}
	c := cmap(pg, []float64{0, 10, 5, 0, 0, 0, 0, 0})
	got := loadOrder(s.Plan(footprints(pg, jobs), c))
	pos := map[int]int{}
	for i, p := range got {
		pos[p] = i
	}
	// Partition 1 has the largest C among equal-N candidates with a
	// nonzero degree, so it must come before 0 and 3 (C = 0).
	if pos[1] > pos[0] || pos[1] > pos[3] {
		t.Fatalf("tie-break order = %v (D=%v)", got, []float64{pg.Parts[0].AvgDegree, pg.Parts[1].AvgDegree})
	}
}

func TestThetaBound(t *testing.T) {
	pg := buildPG(t, 8)
	s := New(Priority)
	s.ObserveSnapshot(pg)
	c := cmap(pg, []float64{9, 4, 7, 1, 0, 0, 0, 0})
	s.Plan(footprints(pg, map[int][]int{0: {0, 1, 2, 3}}), c)
	var dmax, cmax float64
	for _, p := range pg.Parts {
		if p.AvgDegree > dmax {
			dmax = p.AvgDegree
		}
	}
	for _, v := range c {
		if v > cmax {
			cmax = v
		}
	}
	if s.Theta() >= 1/(dmax*cmax) {
		t.Fatalf("theta %v violates the Eq. 1 bound 1/(Dmax*Cmax) = %v", s.Theta(), 1/(dmax*cmax))
	}
}

// TestThetaRefitsOnSnapshotAndDrift is the regression for the fit-once
// staleness: θ must change when a new snapshot introduces higher-degree
// partitions, and when observed C maxima drift upward.
func TestThetaRefitsOnSnapshotAndDrift(t *testing.T) {
	pg := buildPG(t, 8)
	s := New(Priority)
	s.ObserveSnapshot(pg)
	s.Plan(footprints(pg, map[int][]int{0: {0, 1}}), cmap(pg, []float64{3, 1}))
	theta1 := s.Theta()
	if theta1 <= 0 {
		t.Fatal("theta not fitted")
	}

	// A snapshot with far denser partitions must refit θ downward.
	dense := gen.RMAT(9, 50, 6000, 0.57, 0.19, 0.19)
	g2 := graph.Build(50, dense)
	pg2, err := graph.Cut(g2, dense, graph.Options{NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	refits := s.Refits()
	s.ObserveSnapshot(pg2)
	if s.Theta() >= theta1 {
		t.Fatalf("theta %v did not shrink after higher-degree snapshot (was %v)", s.Theta(), theta1)
	}
	if s.Refits() <= refits {
		t.Fatal("refit not counted for snapshot arrival")
	}

	// Upward C drift refits again. Drift refits are rate-limited to one
	// per refitMinInterval plans, so keep planning until the window opens.
	theta2 := s.Theta()
	for i := 0; i < refitMinInterval+1; i++ {
		s.Plan(footprints(pg, map[int][]int{0: {0, 1}}), cmap(pg, []float64{300, 1}))
	}
	if s.Theta() >= theta2 {
		t.Fatalf("theta %v did not shrink after C drift (was %v)", s.Theta(), theta2)
	}

	// A diverging job cannot drive θ to zero: non-finite and
	// beyond-ceiling observations are ignored.
	for i := 0; i < 2*refitMinInterval; i++ {
		s.Plan(footprints(pg, map[int][]int{0: {0, 1}}), cmap(pg, []float64{1e200, math.Inf(1)}))
	}
	if s.Theta() <= 0 {
		t.Fatalf("theta collapsed to %v under diverging observations", s.Theta())
	}
}

// TestThetaWindowTracksShrinkingWorkload: the windowed D/C estimate must
// decay once the hot regime ends, so a rate-limited downward refit raises
// θ back toward the live workload instead of staying pinned to the
// all-time peak.
func TestThetaWindowTracksShrinkingWorkload(t *testing.T) {
	pg := buildPG(t, 8)
	s := New(Priority)
	s.ObserveSnapshot(pg)

	// Fit against a hot regime.
	s.Plan(footprints(pg, map[int][]int{0: {0, 1}}), cmap(pg, []float64{500, 100}))
	hot := s.Theta()
	if hot <= 0 {
		t.Fatal("theta not fitted")
	}

	// The workload cools: tiny C observations for long enough that the
	// decayed window leaves the hysteresis band and the rate limit opens.
	refits := s.Refits()
	for i := 0; i < 4*refitMinInterval; i++ {
		s.Plan(footprints(pg, map[int][]int{0: {0, 1}}), cmap(pg, []float64{2, 1}))
	}
	if s.Refits() <= refits {
		t.Fatal("no downward refit despite a shrunken workload")
	}
	if s.Theta() <= hot {
		t.Fatalf("theta %v did not grow after the workload shrank (was %v)", s.Theta(), hot)
	}

	// N(U) dominance survives the larger θ: a sudden C spike between
	// refits is absorbed by the dominance clamp.
	jobs := map[int][]int{0: {0, 1, 2, 3}, 1: {1, 2}, 2: {1}}
	got := loadOrder(s.Plan(footprints(pg, jobs), cmap(pg, []float64{1e9, 0.1, 1e9, 1e9})))
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("order = %v, want N(P) to dominate (1,2 first) despite stale θ", got)
	}
}

func TestTwoLevelGroupsDisjointFootprints(t *testing.T) {
	pg := buildPG(t, 8)
	s := New(TwoLevel)
	s.ObserveSnapshot(pg)
	// Jobs {0,1,2} share partitions 0-2; job 3 runs alone on 5-6.
	jobs := map[int][]int{
		0: {0, 1},
		1: {1, 2},
		2: {2, 0},
		3: {5, 6},
	}
	plan := s.Plan(footprints(pg, jobs), nil)
	if len(plan) != 2 {
		t.Fatalf("plan has %d groups, want 2: %+v", len(plan), plan)
	}
	// Larger group first.
	if len(plan[0].Jobs) != 3 || plan[0].Jobs[0] != 0 || plan[0].Jobs[2] != 2 {
		t.Fatalf("first group jobs = %v, want [0 1 2]", plan[0].Jobs)
	}
	if len(plan[1].Jobs) != 1 || plan[1].Jobs[0] != 3 {
		t.Fatalf("second group jobs = %v, want [3]", plan[1].Jobs)
	}
	// Every unit lands in exactly one group.
	seen := map[int64]bool{}
	for _, g := range plan {
		for _, u := range g.Units {
			if seen[u.Part.UID] {
				t.Fatalf("unit %d planned twice", u.Part.ID)
			}
			seen[u.Part.UID] = true
		}
	}
	if len(seen) != 5 {
		t.Fatalf("planned %d units, want 5", len(seen))
	}
}

func TestGroupsOrderByAggregatePriority(t *testing.T) {
	pg := buildPG(t, 8)
	s := New(TwoLevel)
	s.ObserveSnapshot(pg)
	// Jobs {0,1,2} (priority 0 each) share partitions 0-2; job 3 runs
	// alone on 5-6 with priority 5. Aggregate priority outranks size, so
	// the singleton group loads first.
	jobs := map[int][]int{
		0: {0, 1},
		1: {1, 2},
		2: {2, 0},
		3: {5, 6},
	}
	foot := footprints(pg, jobs)
	for i := range foot {
		if foot[i].JobID == 3 {
			foot[i].Priority = 5
		}
	}
	plan := s.Plan(foot, nil)
	if len(plan) != 2 {
		t.Fatalf("plan has %d groups, want 2", len(plan))
	}
	if len(plan[0].Jobs) != 1 || plan[0].Jobs[0] != 3 || plan[0].Priority != 5 {
		t.Fatalf("first group = jobs %v priority %d, want the priority-5 singleton", plan[0].Jobs, plan[0].Priority)
	}
	if len(plan[1].Jobs) != 3 || plan[1].Priority != 0 {
		t.Fatalf("second group = jobs %v priority %d, want the bulk trio", plan[1].Jobs, plan[1].Priority)
	}
	// With equal aggregate priorities, size decides as before.
	for i := range foot {
		foot[i].Priority = 1
	}
	plan = s.Plan(foot, nil)
	if len(plan[0].Jobs) != 3 || plan[0].Priority != 3 {
		t.Fatalf("equal-priority plan leads with %v (priority %d), want the larger group", plan[0].Jobs, plan[0].Priority)
	}
}

func TestTwoLevelDistinguishesSnapshotVersions(t *testing.T) {
	// Two snapshots with different partition counts: units are keyed by
	// version (UID), so both versions schedule side by side without any
	// shared index space.
	pgA := buildPG(t, 4)
	pgB := buildPG(t, 8)
	s := New(TwoLevel)
	s.ObserveSnapshot(pgA)
	s.ObserveSnapshot(pgB)
	foot := []JobFootprint{
		{JobID: 0, Units: []*graph.Partition{pgA.Parts[0], pgA.Parts[3]}},
		{JobID: 1, Units: []*graph.Partition{pgB.Parts[0], pgB.Parts[7]}},
	}
	plan := s.Plan(foot, nil)
	if len(plan) != 2 {
		t.Fatalf("disjoint snapshot jobs must form 2 groups, got %d", len(plan))
	}
	total := 0
	for _, g := range plan {
		total += len(g.Units)
	}
	if total != 4 {
		t.Fatalf("planned %d units, want 4 distinct versions", total)
	}

	// A shared partition pointer (same UID) correlates the jobs.
	foot2 := []JobFootprint{
		{JobID: 0, Units: []*graph.Partition{pgA.Parts[0]}},
		{JobID: 1, Units: []*graph.Partition{pgA.Parts[0], pgB.Parts[1]}},
	}
	plan2 := s.Plan(foot2, nil)
	if len(plan2) != 1 {
		t.Fatalf("jobs sharing a partition version must group together, got %d groups", len(plan2))
	}
	if len(plan2[0].Units[0].Jobs) != 2 && len(plan2[0].Units) != 2 {
		t.Fatalf("shared unit not triggered for both jobs: %+v", plan2[0])
	}
}

func TestPlanDoesNotMutateInputs(t *testing.T) {
	pg := buildPG(t, 8)
	s := New(TwoLevel)
	s.ObserveSnapshot(pg)
	foot := footprints(pg, map[int][]int{0: {3, 1, 2}})
	c := cmap(pg, []float64{1, 2, 3, 4})
	s.Plan(foot, c)
	if foot[0].Units[0].ID != 3 || foot[0].Units[1].ID != 1 || foot[0].Units[2].ID != 2 {
		t.Fatal("Plan mutated a job footprint")
	}
	if len(c) != 4 {
		t.Fatal("Plan mutated the C map")
	}
}

func TestDeterministicPlan(t *testing.T) {
	pg := buildPG(t, 8)
	for _, kind := range []Kind{Static, Priority, TwoLevel} {
		s := New(kind)
		s.ObserveSnapshot(pg)
		jobs := map[int][]int{0: {7, 3, 5, 0}, 1: {3, 5}, 2: {6}}
		a := loadOrder(s.Plan(footprints(pg, jobs), nil))
		b := loadOrder(s.Plan(footprints(pg, jobs), nil))
		if len(a) != len(b) {
			t.Fatalf("%v: plan lengths differ", kind)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: plan not deterministic: %v vs %v", kind, a, b)
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{
		"static": Static, "priority": Priority, "two-level": TwoLevel,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind must reject unknown names")
	}
}
