// Package baseline re-implements the comparator systems of §4 on the shared
// substrate, driven by the deterministic discrete-event simulator. Each
// system keeps the paper's defining data-access discipline:
//
//   - Seraph: one graph copy in (simulated) memory shared by all jobs, but
//     every job traverses partitions in its own order and loads them into
//     the cache individually. Snapshots are stored as full per-version
//     copies (no incremental sharing).
//   - Seraph-VT: Seraph plus Version-Traveler-style incremental snapshot
//     storage — unchanged partitions are shared across versions.
//   - NXgraph: a single-job-optimized engine with destination-sorted
//     sub-shards: excellent streaming locality but one private structure
//     copy per job.
//   - CLIP: out-of-core engine with per-job copies, reentry of loaded
//     partitions (for idempotent min/max programs) and beyond-neighborhood
//     accesses into a flat global state array, charged as random block
//     touches.
//   - Sequential: jobs executed one after another on the Seraph discipline
//     with all cores — the normalization baseline of Fig. 2 and Fig. 19.
//
// All systems compute through internal/exec, so their results are identical
// to CGraph's; only orchestration and data movement differ.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"cgraph/internal/des"
	"cgraph/internal/exec"
	"cgraph/internal/graph"
	"cgraph/internal/memsim"
	"cgraph/internal/metrics"
	"cgraph/internal/storage"
	"cgraph/model"
)

// System names a baseline engine.
type System string

// The comparator systems of §4.
const (
	Seraph     System = "Seraph"
	SeraphVT   System = "Seraph-VT"
	NXgraph    System = "NXgraph"
	CLIP       System = "CLIP"
	Sequential System = "Sequential"
)

// Systems lists the concurrent comparators in the paper's presentation
// order (CLIP, NXgraph, Seraph).
var Systems = []System{CLIP, NXgraph, Seraph}

// Config tunes a baseline run.
type Config struct {
	System  System
	Workers int
	Hier    *memsim.Hierarchy
	// MaxIterations bounds each job (default 1<<20).
	MaxIterations int
	// ClipMaxPasses bounds CLIP's reentry sweeps (default 16).
	ClipMaxPasses int
}

// JobSpec is one job to run: the program plus the arrival timestamp used
// for snapshot binding.
type JobSpec struct {
	Prog    model.Program
	Arrival int64
}

type runState struct {
	cfg      Config
	sim      *des.Sim
	busyCore float64
	err      error
}

// bwContention is the processor-sharing factor on the data-access channel:
// n concurrently running jobs each see 1/n of the bandwidth (§2.1's
// "contention among the jobs for the data access channel").
func (rs *runState) bwContention() float64 {
	active := rs.sim.Active()
	if active < 1 {
		active = 1
	}
	streams := rs.cfg.Hier.Cost().ChannelStreams
	if streams <= 0 {
		streams = 1
	}
	f := float64(active) / streams
	if f < 1 {
		return 1
	}
	return f
}

func (rs *runState) coresPerJob() float64 {
	active := rs.sim.Active()
	if active < 1 {
		active = 1
	}
	c := float64(rs.cfg.Workers) / float64(active)
	if c < 1 {
		c = 1
	}
	if c > float64(rs.cfg.Workers) {
		c = float64(rs.cfg.Workers)
	}
	return c
}

// bjob is one baseline job as a DES process.
type bjob struct {
	rs      *runState
	sys     System
	job     *exec.Job
	snapIdx int
	m       *metrics.JobMetrics
	queue   []int
	sc      exec.Scratch
	numJobs int
	iters   int
}

func (b *bjob) structItem(p *graph.Partition) memsim.ItemID {
	switch b.sys {
	case Seraph, Sequential:
		// Shared in-memory copy, but one full copy per snapshot version:
		// encode the snapshot index so versions never alias.
		return memsim.ItemID{Kind: memsim.Struct, UID: p.UID, Job: int32(-1000 - b.snapIdx)}
	case SeraphVT:
		// Incremental versions: unchanged partitions alias across
		// snapshots via the shared UID.
		return memsim.ItemID{Kind: memsim.Struct, UID: p.UID, Job: -1}
	default: // NXgraph, CLIP: per-job private copies.
		return memsim.ItemID{Kind: memsim.Struct, UID: p.UID, Job: int32(b.job.ID)}
	}
}

func (b *bjob) privateItem(p *graph.Partition) memsim.ItemID {
	return memsim.ItemID{Kind: memsim.Private, UID: p.UID, Job: int32(b.job.ID)}
}

// buildQueue registers this iteration's active partitions in the job's own
// traversal order: each job starts at a different offset, modelling the
// "individual manner along different graph paths" of §2.1.
func (b *bjob) buildQueue() {
	parts := b.job.PT.ActiveParts()
	if len(parts) == 0 {
		b.queue = nil
		return
	}
	total := len(b.job.PG.Parts)
	offset := 0
	if b.numJobs > 0 {
		offset = b.job.ID * total / b.numJobs
	}
	sort.Slice(parts, func(i, j int) bool {
		a := (parts[i] + total - offset) % total
		c := (parts[j] + total - offset) % total
		return a < c
	})
	b.queue = parts
}

// Step processes one partition or, when the iteration's queue is drained,
// one push/sync phase.
func (b *bjob) Step(now float64) (float64, bool) {
	h := b.rs.cfg.Hier
	cost := h.Cost()

	if len(b.queue) == 0 {
		// End of iteration: Algorithm 2 push, then either converge or
		// start the next iteration.
		sum := b.job.FinishIteration()
		t := cost.SyncTime(sum.Entries)
		for _, tp := range sum.TouchedParts {
			p := b.job.PG.Parts[tp]
			lr := h.Load(b.privateItem(p), b.job.PT.Bytes[tp], false)
			t += lr.Time * b.rs.bwContention()
		}
		b.m.AccessTime += t
		b.m.SyncTime += t
		if b.iters++; b.iters > b.rs.cfg.MaxIterations && !b.job.Done {
			b.rs.err = fmt.Errorf("baseline %s: job %s exceeded %d iterations", b.sys, b.job.Prog.Name(), b.rs.cfg.MaxIterations)
			b.job.Done = true
		}
		if b.job.Done {
			b.finish(now + t)
			return t, true
		}
		b.buildQueue()
		return t, false
	}

	pid := b.queue[0]
	b.queue = b.queue[1:]
	p := b.job.PG.Parts[pid]

	bw := b.rs.bwContention()
	lr := h.Load(b.structItem(p), p.StructBytes, false)
	plr := h.Load(b.privateItem(p), b.job.PT.Bytes[pid], false)
	access := (lr.Time + plr.Time) * bw
	t := access

	var stats exec.Stats
	if b.sys == CLIP {
		stats = b.job.ProcessPartitionReentrant(pid, b.rs.cfg.ClipMaxPasses)
		// Beyond-neighborhood accesses: scattered state touches into the
		// job's flat global vertex array.
		blocks := stats.Edges / 4
		hit := clipHitFraction(h, b.job.PG.G.N, b.rs.sim.Active())
		rt := h.RandomTouch(blocks, hit) * bw
		t += rt
		access += rt
	} else {
		stats = b.job.ProcessPartition(pid, &b.sc)
	}

	work := cost.ComputeTime(stats.Edges, stats.Vertices)
	t += work / b.rs.coresPerJob()
	b.rs.busyCore += work
	b.m.AccessTime += access
	b.m.ComputeTime += work
	return t, false
}

func (b *bjob) finish(at float64) {
	b.m.FinishAt = at
	b.m.Iterations = b.job.Iterations
	b.m.Edges = b.job.EdgesProcessed
	b.m.Vertices = b.job.VerticesApplied
	b.m.SyncEntries = b.job.SyncEntries
}

// clipHitFraction estimates how much of the flat per-job state arrays stays
// cache-resident when `active` CLIP jobs compete for the cache.
func clipHitFraction(h *memsim.Hierarchy, numVertices, active int) float64 {
	if active < 1 {
		active = 1
	}
	stateBytes := int64(numVertices) * 16 * int64(active)
	if stateBytes <= 0 {
		return 1
	}
	f := float64(h.Config().CacheBytes) / 4 / float64(stateBytes)
	if f > 1 {
		f = 1
	}
	return f
}

// Run executes the job specs under the configured baseline system and
// returns the report plus the finished jobs (for result extraction).
func Run(cfg Config, store *storage.SnapshotStore, specs []JobSpec) (*metrics.RunReport, []*exec.Job, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Hier == nil {
		cfg.Hier = memsim.Unlimited()
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 1 << 20
	}
	if cfg.ClipMaxPasses <= 0 {
		cfg.ClipMaxPasses = 16
	}
	wall := time.Now()

	rs := &runState{cfg: cfg, sim: des.New()}
	var jobs []*bjob
	for i, spec := range specs {
		snap, idx := store.ResolveIndex(spec.Arrival)
		j := exec.NewJob(i, spec.Prog, snap.PG)
		b := &bjob{
			rs:      rs,
			sys:     cfg.System,
			job:     j,
			snapIdx: idx,
			m:       &metrics.JobMetrics{JobID: i, Name: spec.Prog.Name()},
			numJobs: len(specs),
		}
		b.buildQueue()
		jobs = append(jobs, b)
	}

	var makespan float64
	if cfg.System == Sequential {
		// One job at a time, all cores each.
		var at float64
		for _, b := range jobs {
			b.m.SubmitAt = at
			b.numJobs = 1
			b.buildQueue()
			rs.sim.Spawn(b, at)
			at = rs.sim.Run()
		}
		makespan = at
	} else {
		for _, b := range jobs {
			b.m.SubmitAt = 0
			rs.sim.Spawn(b, 0)
		}
		makespan = rs.sim.Run()
	}
	if rs.err != nil {
		return nil, nil, rs.err
	}

	rep := &metrics.RunReport{
		System:       string(cfg.System),
		Workers:      cfg.Workers,
		Makespan:     makespan,
		BusyCoreTime: rs.busyCore,
		Counters:     cfg.Hier.Counters(),
		WallClock:    time.Since(wall),
	}
	var finished []*exec.Job
	for _, b := range jobs {
		rep.Jobs = append(rep.Jobs, *b.m)
		finished = append(finished, b.job)
	}
	return rep, finished, nil
}
