package baseline

import (
	"math"
	"testing"

	"cgraph/algo"
	"cgraph/internal/core"
	"cgraph/internal/exec"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/memsim"
	"cgraph/internal/refimpl"
	"cgraph/internal/storage"
	"cgraph/model"
)

func buildStore(t testing.TB, edges []model.Edge, n, parts int) *storage.SnapshotStore {
	t.Helper()
	g := graph.Build(n, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return storage.NewSnapshotStore(pg, 0)
}

func smallHier() *memsim.Hierarchy {
	return memsim.New(memsim.Config{CacheBytes: 128 << 10, MemoryBytes: 0, Cost: memsim.DefaultCost()})
}

func fourSpecs() []JobSpec {
	return []JobSpec{
		{Prog: &algo.PageRank{Damping: 0.85, Epsilon: 1e-6}},
		{Prog: algo.NewSSSP(0)},
		{Prog: algo.NewSCC()},
		{Prog: algo.NewBFS(0)},
	}
}

func TestAllSystemsComputeCorrectResults(t *testing.T) {
	edges := gen.RMAT(31, 300, 6000, 0.57, 0.19, 0.19)
	for _, sys := range []System{Seraph, SeraphVT, NXgraph, CLIP, Sequential} {
		store := buildStore(t, edges, 300, 6)
		g := store.Latest().PG.G
		_, jobs, err := Run(Config{System: sys, Workers: 4, Hier: smallHier()}, store, fourSpecs())
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		// SSSP is job 1, BFS job 3.
		wantSS := refimpl.SSSP(g, 0)
		gotSS := jobs[1].Results()
		for v := range gotSS {
			if gotSS[v] != wantSS[v] && !(math.IsInf(gotSS[v], 1) && math.IsInf(wantSS[v], 1)) {
				t.Fatalf("%s: sssp vertex %d: got %v want %v", sys, v, gotSS[v], wantSS[v])
			}
		}
		wantBF := refimpl.BFS(g, 0)
		gotBF := jobs[3].Results()
		for v := range gotBF {
			if gotBF[v] != wantBF[v] && !(math.IsInf(gotBF[v], 1) && math.IsInf(wantBF[v], 1)) {
				t.Fatalf("%s: bfs vertex %d wrong", sys, v)
			}
		}
		// PageRank within epsilon-scaled tolerance.
		wantPR := refimpl.PageRank(g, 0.85, 1e-12, 3000)
		gotPR := jobs[0].Results()
		for v := range gotPR {
			if math.Abs(gotPR[v]-wantPR[v]) > 1e-3 {
				t.Fatalf("%s: pagerank vertex %d: got %v want %v", sys, v, gotPR[v], wantPR[v])
			}
		}
	}
}

func TestClipReentryReducesIterations(t *testing.T) {
	// Reentry compresses long in-partition propagation chains: on a chain
	// graph a whole partition converges per load. (On tiny-diameter R-MAT
	// graphs there is little to compress — that is expected.)
	edges := gen.Chain(2000)
	specs := []JobSpec{{Prog: algo.NewSSSP(0)}}

	store1 := buildStore(t, edges, 2000, 4)
	repSeraph, _, err := Run(Config{System: Seraph, Workers: 4, Hier: smallHier()}, store1, specs)
	if err != nil {
		t.Fatal(err)
	}
	store2 := buildStore(t, edges, 2000, 4)
	repClip, clipJobs, err := Run(Config{System: CLIP, Workers: 4, Hier: smallHier(), ClipMaxPasses: 1 << 20},
		store2, []JobSpec{{Prog: algo.NewSSSP(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if repClip.Jobs[0].Iterations*10 > repSeraph.Jobs[0].Iterations {
		t.Fatalf("CLIP reentry did not cut iterations by >=10x: %d vs %d",
			repClip.Jobs[0].Iterations, repSeraph.Jobs[0].Iterations)
	}
	// And the distances are still exact.
	want := refimpl.SSSP(store2.Latest().PG.G, 0)
	got := clipJobs[0].Results()
	for v := range got {
		if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("clip chain sssp vertex %d: got %v want %v", v, got[v], want[v])
		}
	}
}

func TestSequentialSlowerThanConcurrent(t *testing.T) {
	// Fig. 2(a): concurrent total (makespan) beats sequential total.
	edges := gen.RMAT(33, 300, 6000, 0.57, 0.19, 0.19)
	storeA := buildStore(t, edges, 300, 6)
	seq, _, err := Run(Config{System: Sequential, Workers: 4, Hier: smallHier()}, storeA, fourSpecs())
	if err != nil {
		t.Fatal(err)
	}
	storeB := buildStore(t, edges, 300, 6)
	conc, _, err := Run(Config{System: Seraph, Workers: 4, Hier: smallHier()}, storeB, fourSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if conc.Makespan >= seq.Makespan {
		t.Fatalf("concurrent makespan %v not better than sequential %v", conc.Makespan, seq.Makespan)
	}
	// Sequential jobs must not overlap.
	for i := 1; i < len(seq.Jobs); i++ {
		if seq.Jobs[i].SubmitAt < seq.Jobs[i-1].FinishAt-1e-9 {
			t.Fatal("sequential jobs overlap")
		}
	}
}

func TestPerJobCopiesCostMoreVolume(t *testing.T) {
	// NXgraph's per-job structure copies must swap more volume into the
	// cache than Seraph's shared copy under the same workload.
	edges := gen.RMAT(34, 300, 6000, 0.57, 0.19, 0.19)
	specs := fourSpecs()

	storeA := buildStore(t, edges, 300, 6)
	hA := smallHier()
	if _, _, err := Run(Config{System: Seraph, Workers: 4, Hier: hA}, storeA, specs); err != nil {
		t.Fatal(err)
	}
	storeB := buildStore(t, edges, 300, 6)
	hB := smallHier()
	if _, _, err := Run(Config{System: NXgraph, Workers: 4, Hier: hB}, storeB, fourSpecs()); err != nil {
		t.Fatal(err)
	}
	volSeraph := hA.Counters().BytesIntoCache
	volNX := hB.Counters().BytesIntoCache
	if volNX <= volSeraph {
		t.Fatalf("NXgraph volume %d not above Seraph %d", volNX, volSeraph)
	}
}

func TestCGraphBeatsBaselinesOnSharedWorkload(t *testing.T) {
	// The headline result (Fig. 9): with four concurrent jobs, CGraph's
	// makespan and cache volume beat every baseline's.
	edges := gen.RMAT(35, 400, 8000, 0.57, 0.19, 0.19)

	runBase := func(sys System) (float64, int64) {
		store := buildStore(t, edges, 400, 8)
		h := smallHier()
		rep, _, err := Run(Config{System: sys, Workers: 4, Hier: h}, store, fourSpecs())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan, rep.Counters.BytesIntoCache
	}

	g := graph.Build(400, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 8, CoreSubgraph: true})
	if err != nil {
		t.Fatal(err)
	}
	h := smallHier()
	e := core.NewSingle(core.Config{Workers: 4, Hier: h}, pg)
	for _, s := range fourSpecs() {
		e.Submit(s.Prog, 0)
	}
	repC, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, sys := range []System{Seraph, NXgraph} {
		mk, vol := runBase(sys)
		if repC.Makespan >= mk {
			t.Fatalf("CGraph makespan %v not better than %s %v", repC.Makespan, sys, mk)
		}
		if repC.Counters.BytesIntoCache >= vol {
			t.Fatalf("CGraph volume %d not below %s %d", repC.Counters.BytesIntoCache, sys, vol)
		}
	}
}

func TestSeraphVTSharesSnapshotsSeraphDoesNot(t *testing.T) {
	// On a snapshot series, Seraph-VT's incremental storage must beat
	// plain Seraph's full per-version copies in cache volume.
	edges := gen.ER(36, 200, 2400)
	g := graph.Build(200, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	mkStore := func() *storage.SnapshotStore {
		store := storage.NewSnapshotStore(pg, 0)
		prev, prevEdges := pg, edges
		for s := 1; s <= 3; s++ {
			mut, slots := gen.Mutate(prevEdges, 0.001, 200, int64(100+s))
			changed := graph.ChangedPartitions(slots, prev.ChunkSize, len(prev.Parts))
			next, err := graph.Overlay(prev, mut, changed)
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Add(next, int64(s*10)); err != nil {
				t.Fatal(err)
			}
			prev, prevEdges = next, mut
		}
		return store
	}
	specs := []JobSpec{
		{Prog: &algo.PageRank{Damping: 0.85, Epsilon: 1e-5}, Arrival: 0},
		{Prog: &algo.PageRank{Damping: 0.85, Epsilon: 1e-5}, Arrival: 10},
		{Prog: &algo.PageRank{Damping: 0.85, Epsilon: 1e-5}, Arrival: 20},
		{Prog: &algo.PageRank{Damping: 0.85, Epsilon: 1e-5}, Arrival: 30},
	}
	hA := smallHier()
	if _, _, err := Run(Config{System: Seraph, Workers: 4, Hier: hA}, mkStore(), specs); err != nil {
		t.Fatal(err)
	}
	hB := smallHier()
	if _, _, err := Run(Config{System: SeraphVT, Workers: 4, Hier: hB}, mkStore(), specs); err != nil {
		t.Fatal(err)
	}
	if hB.Counters().BytesIntoCache >= hA.Counters().BytesIntoCache {
		t.Fatalf("Seraph-VT volume %d not below Seraph %d",
			hB.Counters().BytesIntoCache, hA.Counters().BytesIntoCache)
	}
}

func TestJobSpecificTraversalOrder(t *testing.T) {
	// Jobs must start their sweeps at different offsets (§2.1's
	// "different graph paths").
	edges := gen.RMAT(37, 200, 4000, 0.57, 0.19, 0.19)
	store := buildStore(t, edges, 200, 8)
	pg := store.Latest().PG
	mk := func(id int) *bjob {
		return &bjob{numJobs: 4, job: exec.NewJob(id, &algo.PageRank{Damping: 0.85, Epsilon: 1e-6}, pg)}
	}
	j0, j2 := mk(0), mk(2)
	j0.buildQueue()
	j2.buildQueue()
	if len(j0.queue) != len(j2.queue) || len(j0.queue) == 0 {
		t.Fatal("queues not built")
	}
	if j0.queue[0] == j2.queue[0] {
		t.Fatalf("jobs 0 and 2 start at the same partition %d", j0.queue[0])
	}
}
