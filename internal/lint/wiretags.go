package lint

import (
	"go/ast"
	"strings"
)

// Wiretags enforces the /v1 wire contract at its two edges. In the api
// package every exported struct field must carry an explicit json tag
// (field renames silently change the wire format otherwise) and
// per-vertex float vectors must use api.Float, which round-trips NaN and
// ±Inf through JSON. Structs that never cross the wire opt out with
// //cgraph:nowire <reason>. Everywhere, a json.Decoder built over an
// *http.Request body must call DisallowUnknownFields, so the server
// rejects misspelled request fields instead of zeroing them — response
// decoding is exempt, because clients must tolerate additive server
// fields.
var Wiretags = &Analyzer{
	Name: "wiretags",
	Doc: "require json tags on exported api struct fields, api.Float for non-finite-capable " +
		"float slices, and DisallowUnknownFields on request-body decoders",
	Run: runWiretags,
}

func runWiretags(pass *Pass) error {
	if pass.PkgName == "api" {
		for _, f := range pass.Files {
			checkAPIStructs(pass, f)
		}
	}
	for _, f := range pass.Files {
		checkRequestDecoders(pass, f)
	}
	return nil
}

func checkAPIStructs(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || !ts.Name.IsExported() {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		if _, ok := pass.Directive(ts.Pos(), "nowire"); ok {
			return true
		}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				if !name.IsExported() {
					continue
				}
				if !hasJSONTag(field) {
					pass.Reportf(name.Pos(), "exported api field %s.%s has no json tag; tag it "+
						"explicitly or mark the struct //cgraph:nowire <reason>", ts.Name.Name, name.Name)
				}
				if isFloat64Slice(field.Type) {
					pass.Reportf(name.Pos(), "api field %s.%s is []float64, which cannot carry "+
						"NaN/±Inf through JSON; use []Float", ts.Name.Name, name.Name)
				}
			}
		}
		return true
	})
}

func hasJSONTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	return strings.Contains(field.Tag.Value, `json:"`)
}

func isFloat64Slice(t ast.Expr) bool {
	arr, ok := t.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	id, ok := arr.Elt.(*ast.Ident)
	return ok && id.Name == "float64"
}

// checkRequestDecoders applies the DisallowUnknownFields rule to every
// function in the file.
func checkRequestDecoders(pass *Pass, f *ast.File) {
	jsonName, ok := importName(f, "encoding/json")
	if !ok {
		return
	}
	httpName, hasHTTP := importName(f, "net/http")
	if !hasHTTP {
		return
	}
	// Collect every function (declaration or literal) with its own
	// parameter list; each is checked against its own body, nested
	// literals excluded (they are in the list themselves).
	type fn struct {
		params *ast.FieldList
		body   *ast.BlockStmt
	}
	var fns []fn
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				fns = append(fns, fn{x.Type.Params, x.Body})
			}
		case *ast.FuncLit:
			fns = append(fns, fn{x.Type.Params, x.Body})
		}
		return true
	})
	for _, fun := range fns {
		reqParams := requestParams(fun.params, httpName)
		if len(reqParams) == 0 {
			continue
		}
		hasDisallow := false
		var decoders []*ast.CallExpr
		chained := map[*ast.CallExpr]bool{}
		ast.Inspect(fun.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "DisallowUnknownFields" {
				hasDisallow = true
			}
			if inner, ok := sel.X.(*ast.CallExpr); ok && isRequestBodyDecoder(inner, jsonName, reqParams) {
				chained[inner] = true // json.NewDecoder(r.Body).Decode(...): no chance to configure
			}
			if isRequestBodyDecoder(call, jsonName, reqParams) {
				decoders = append(decoders, call)
			}
			return true
		})
		for _, d := range decoders {
			if chained[d] {
				pass.Reportf(d.Pos(), "request-body decoder is chained straight into Decode; bind it to a "+
					"variable and call DisallowUnknownFields so unknown request fields are rejected")
				continue
			}
			if !hasDisallow {
				pass.Reportf(d.Pos(), "request-body decoder never calls DisallowUnknownFields; unknown "+
					"request fields would be silently dropped")
			}
		}
	}
}

// requestParams returns the names of parameters typed *http.Request.
func requestParams(params *ast.FieldList, httpName string) map[string]bool {
	out := map[string]bool{}
	if params == nil {
		return out
	}
	for _, field := range params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Request" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != httpName {
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = true
		}
	}
	return out
}

// isRequestBodyDecoder matches json.NewDecoder(X.Body) with X a
// *http.Request parameter.
func isRequestBodyDecoder(call *ast.CallExpr, jsonName string, reqParams map[string]bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewDecoder" {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); !ok || id.Name != jsonName {
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	arg, ok := call.Args[0].(*ast.SelectorExpr)
	if !ok || arg.Sel.Name != "Body" {
		return false
	}
	id, ok := arg.X.(*ast.Ident)
	return ok && reqParams[id.Name]
}
