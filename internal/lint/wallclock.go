package lint

import (
	"go/ast"
)

// wallclockPkgs are the virtual-time packages: everything the round loop
// touches accounts time on the engine's simulated clock, so a stray
// time.Now there is either a data race waiting to happen (the PR 2
// Engine.Now incident) or a unit bug (wall microseconds folded into
// virtual microseconds). Deliberate wall-stamp sites — real-time
// observability like round-duration histograms — carry
// //cgraph:wallclock <reason>.
var wallclockPkgs = map[string]bool{
	"cgraph/internal/core":  true,
	"cgraph/internal/sched": true,
	"cgraph/internal/exec":  true,
	"cgraph/internal/span":  true,
}

// wallclockFuncs are the time package's wall-clock reads.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Wallclock forbids wall-clock reads in the engine's virtual-time
// packages outside annotated wall-stamp sites.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Until in internal/core, internal/sched, and " +
		"internal/exec outside //cgraph:wallclock-annotated wall-stamp sites; engine " +
		"time is the virtual clock (Engine.Now)",
	Match: func(path string) bool { return wallclockPkgs[path] },
	Run:   runWallclock,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		timeName, ok := importName(f, "time")
		if !ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != timeName || id.Obj != nil {
				// id.Obj != nil means a local shadows the package name.
				return true
			}
			if _, ok := pass.Directive(call.Pos(), "wallclock"); ok {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s reads the wall clock inside a virtual-time package; "+
				"use the engine clock (Engine.Now) or annotate the wall-stamp site with "+
				"//cgraph:wallclock <reason>", sel.Sel.Name)
			return true
		})
	}
	return nil
}
