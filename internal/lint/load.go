package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded (parsed, not type-checked) package.
type Package struct {
	// Path is the import path; Name the package clause; Dir the source
	// directory.
	Path string
	Name string
	Dir  string
	// Files are the parsed non-test Go files, comments included. The suite
	// deliberately skips _test.go files: test code may spawn goroutines,
	// read the wall clock, and hand-build wire values freely.
	Files []*ast.File
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
}

// Load enumerates the packages matching the patterns via `go list` and
// parses their non-test files into a shared FileSet.
func Load(patterns ...string) (*token.FileSet, []*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decode go list output: %w", err)
		}
		pkg := &Package{Path: lp.ImportPath, Name: lp.Name, Dir: lp.Dir}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("parse %s: %w", filepath.Join(lp.Dir, name), err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}
