package lint

import (
	"go/ast"
	"go/token"
)

// Spanend enforces the span lifecycle: a span obtained from StartSpan is
// invisible to the store until End is called, so a started-but-never-ended
// span is silent data loss — the trace simply has a hole where the
// operation should be. The check is syntactic and local: a span bound to a
// local variable must be ended in the same function (directly, deferred,
// or inside a nested function literal), unless it escapes the function
// (returned, passed on, stored through a field, or re-assigned) or the
// start site carries //cgraph:spanend <reason>. A StartSpan result that is
// discarded outright can never be ended and is always flagged.
var Spanend = &Analyzer{
	Name: "spanend",
	Doc: "require every locally-bound StartSpan result to be ended (x.End(), directly or " +
		"deferred) within the starting function unless the span escapes it or the start " +
		"carries //cgraph:spanend <reason>; StartSpan results discarded outright are " +
		"always flagged",
	Run: runSpanend,
}

func runSpanend(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanStarts(pass, fn.Body)
		}
	}
	return nil
}

// isStartSpan reports whether the call is a <recv>.StartSpan(…) call.
func isStartSpan(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "StartSpan"
}

// checkSpanStarts collects every StartSpan binding in the function body and
// reports the ones that neither end nor escape.
func checkSpanStarts(pass *Pass, body *ast.BlockStmt) {
	type start struct {
		name string
		call token.Pos // the StartSpan call, for the diagnostic
		def  token.Pos // the binding identifier, exempt from escape analysis
	}
	var starts []start
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok || !isStartSpan(call) {
				return true
			}
			if _, ok := pass.Directive(call.Pos(), "spanend"); !ok {
				pass.Reportf(call.Pos(), "StartSpan result discarded; the span can never be ended — "+
					"bind it and call End, or annotate with //cgraph:spanend <reason>")
			}
		case *ast.AssignStmt:
			if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !isStartSpan(call) {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				// Stores through fields or indices hand the span to longer-
				// lived state; its lifecycle is that state's business.
				return true
			}
			if _, ok := pass.Directive(call.Pos(), "spanend"); ok {
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "StartSpan result discarded; the span can never be ended — "+
					"bind it and call End, or annotate with //cgraph:spanend <reason>")
				return true
			}
			starts = append(starts, start{id.Name, call.Pos(), id.Pos()})
		}
		return true
	})
	for _, s := range starts {
		if spanEndedOrEscapes(body, s.name, s.def) {
			continue
		}
		pass.Reportf(s.call, "span %q is started but never ended in this function; call %s.End() "+
			"(directly or deferred), or annotate the start with //cgraph:spanend <reason>", s.name, s.name)
	}
}

// spanEndedOrEscapes scans the function body for an End call on the named
// span, or for a use that moves the span out of the function's hands
// (returned, passed as an argument, or re-assigned) — escape analysis by
// elimination: any mention of the name that is neither its binding nor the
// receiver of a method call counts as an escape. Shadowing is not modelled;
// a same-named inner span that ends keeps the outer one quiet, which is the
// usual syntactic-suite trade.
func spanEndedOrEscapes(body *ast.BlockStmt, name string, def token.Pos) bool {
	ended := false
	benign := map[token.Pos]bool{def: true}
	var uses []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && id.Name == name {
				// Receiver of a method call or field read: not an escape.
				benign[id.Pos()] = true
				// Any mention of x.End counts — a call, a defer, or a
				// method value handed to someone who will call it.
				if x.Sel.Name == "End" {
					ended = true
				}
			}
		case *ast.Ident:
			if x.Name == name {
				uses = append(uses, x.Pos())
			}
		}
		return true
	})
	if ended {
		return true
	}
	for _, p := range uses {
		if !benign[p] {
			return true
		}
	}
	return false
}
