// Package fixture exercises the promnames analyzer: family names match
// the project prefix, are declared once with HELP and a known type, and
// samples target declared families.
package fixture

type exposition struct{}

func (exposition) Declare(name, typ, help string)             {}
func (exposition) Add(name string, value float64)             {}
func (exposition) AddHistogram(name string, buckets []uint64) {}

func declare(e exposition) {
	e.Declare("cgraph_jobs_total", "counter", "Jobs submitted since start.")
	e.Declare("cgraph_rounds_total", "counter", "Engine rounds driven.")
	e.Declare("CGraphBadName", "counter", "Camel case is not a family name.")  // want "does not match cgraph_"
	e.Declare("http_requests_total", "counter", "Missing the project prefix.") // want "does not match cgraph_"
	e.Declare("cgraph_jobs_total", "counter", "Re-declared elsewhere.")        // want "declared more than once"
	e.Declare("cgraph_queue_depth", "summary", "Summaries are not supported.") // want "unknown TYPE"
	e.Declare("cgraph_inflight", "gauge", "")                                  // want "empty HELP"
}

// declareSpanFamilies mirrors the PR 9 tracing and attribution families:
// the span-store counters/gauges, the readiness and build-info gauges, and
// the per-job attribution block all follow the same naming law.
func declareSpanFamilies(e exposition) {
	e.Declare("cgraph_span_started_total", "counter", "Spans started since process start.")
	e.Declare("cgraph_span_ended_total", "counter", "Spans ended since process start.")
	e.Declare("cgraph_span_evicted_total", "counter", "Spans evicted from the bounded store.")
	e.Declare("cgraph_span_store_spans", "gauge", "Spans currently held in the store.")
	e.Declare("cgraph_ready", "gauge", "1 when the readiness probe passes, 0 otherwise.")
	e.Declare("cgraph_build_info", "gauge", "Build metadata as constant-1 labels.")
	e.Declare("cgraph_job_attrib_exec_seconds", "gauge", "Per-job execution wall time.")
	e.Declare("cgraph_job_attrib_makespan_share", "gauge", "Per-job share of group makespan.")
	e.Declare("cgraph_span_Started_total", "counter", "Mixed case breaks the law.") // want "does not match cgraph_"
	e.Declare("cgraph_ready", "gauge", "Probe gauges are declared once.")           // want "declared more than once"
	e.Add("cgraph_span_started_total", 1)
	e.Add("cgraph_job_attrib_rounds", 1) // want "targets undeclared metric family"
}

func sample(e exposition, family string) {
	e.Add("cgraph_jobs_total", 1)
	e.AddHistogram("cgraph_rounds_total", nil)
	e.Add("cgraph_orphan_total", 1) // want "targets undeclared metric family"
	e.Add(family, 1)                // dynamic names pass through unchecked
	e.Add("queue_depth", 1)         // non-cgraph names belong to other Add methods
}
