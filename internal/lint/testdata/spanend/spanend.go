// Package fixture exercises the spanend analyzer: every StartSpan result
// bound to a local must be ended in the starting function, escape it, or
// carry a //cgraph:spanend annotation; discarded results are always flagged.
package fixture

type tracer struct{}

type spanCtx struct{}

type span struct{}

func (tracer) StartSpan(parent spanCtx, name string) *span { return nil }

func (*span) End() {}

func (*span) Attr(kvs ...string) {}

func (*span) Context() spanCtx { return spanCtx{} }

type job struct {
	root *span
}

func endedDirectly(t tracer) {
	sp := t.StartSpan(spanCtx{}, "ok.direct")
	sp.Attr("k", "v")
	sp.End()
}

func endedDeferred(t tracer) {
	sp := t.StartSpan(spanCtx{}, "ok.deferred")
	defer sp.End()
	sp.Attr("k", "v")
}

func endedInClosure(t tracer) {
	sp := t.StartSpan(spanCtx{}, "ok.closure")
	defer func() {
		sp.Attr("late", "attr")
		sp.End()
	}()
}

func neverEnded(t tracer) {
	sp := t.StartSpan(spanCtx{}, "bad.leaked") // want "started but never ended"
	sp.Attr("k", "v")
}

func onlyChildEnded(t tracer) {
	parent := t.StartSpan(spanCtx{}, "bad.parent-leaked") // want "started but never ended"
	child := t.StartSpan(parent.Context(), "ok.child")
	child.End()
}

func discarded(t tracer) {
	t.StartSpan(spanCtx{}, "bad.discarded") // want "result discarded"
}

func blankBound(t tracer) {
	_ = t.StartSpan(spanCtx{}, "bad.blank") // want "result discarded"
}

func returned(t tracer) *span {
	sp := t.StartSpan(spanCtx{}, "ok.returned")
	return sp
}

func passedOn(t tracer, sink func(*span)) {
	sp := t.StartSpan(spanCtx{}, "ok.passed")
	sink(sp)
}

func storedInField(t tracer, j *job) {
	sp := t.StartSpan(spanCtx{}, "ok.stored")
	j.root = sp
}

func fieldBound(t tracer, j *job) {
	// Binding straight into longer-lived state is an escape by construction.
	j.root = t.StartSpan(spanCtx{}, "ok.field")
}

func annotated(t tracer) {
	sp := t.StartSpan(spanCtx{}, "ok.annotated") //cgraph:spanend ended by the retire path, not locally
	sp.Attr("k", "v")
}
