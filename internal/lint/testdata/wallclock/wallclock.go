// Package fixture exercises the wallclock analyzer: wall-clock reads in
// a virtual-time package must be annotated wall-stamp sites.
package fixture

import (
	"time"
)

func virtualTimeViolations() time.Duration {
	start := time.Now()                    // want "time.Now reads the wall clock"
	elapsed := time.Since(start)           // want "time.Since reads the wall clock"
	_ = time.Until(start.Add(time.Second)) // want "time.Until reads the wall clock"
	return elapsed
}

func annotatedWallStamp() time.Time {
	return time.Now() //cgraph:wallclock report wall-clock field is real elapsed time
}

func annotatedAbove() time.Time {
	//cgraph:wallclock wall stamp for the run report
	return time.Now()
}

func emptyReasonDoesNotCount() time.Time {
	//cgraph:wallclock
	return time.Now() // want "time.Now reads the wall clock"
}

func notTheTimePackage() {
	time := fakeClock{}
	time.Now() // the local shadows the package; not a wall-clock read
}

type fakeClock struct{}

func (fakeClock) Now() {}
