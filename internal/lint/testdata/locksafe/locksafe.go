// Package fixture exercises the locksafe analyzer: no blocking calls
// while a mutex is held, and manual lock regions must unlock on every
// branch.
package fixture

import "sync"

type logger struct{}

func (logger) Info(msg string, args ...any)  {}
func (logger) Debug(msg string, args ...any) {}

type state struct {
	mu     sync.Mutex
	log    logger
	events chan int
	OnDone func(int)
}

func sendUnderDeferredLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events <- 1 // want "channel send while s.mu is held"
}

func nonBlockingSendIsFine(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.events <- 1:
	default:
	}
}

func blockingSelectSend(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.events <- 1: // want "channel send while s.mu is held"
	}
}

func callbackUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.OnDone(1) // want "callback s.OnDone invoked while s.mu is held"
}

func loggerUnderLock(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Info("progress") // want "logger call while s.mu is held"
}

func callbackAfterUnlock(s *state) {
	s.mu.Lock()
	cb := s.OnDone
	s.mu.Unlock()
	cb(1)
	s.log.Debug("done")
}

func goroutineBodyIsNotHeld(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { //cgraph:spawn fixture: goroutine body runs without the caller's lock
		s.events <- 1
	}()
}

func returnWhileLocked(s *state) int {
	s.mu.Lock()
	return 1 // want "return while s.mu is held"
}

func branchReturnsWithoutUnlock(s *state, cond bool) int {
	s.mu.Lock()
	if cond {
		return 1 // want "branch returns while s.mu is held"
	}
	s.mu.Unlock()
	return 0
}

func branchUnlocksBeforeReturn(s *state, cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

func annotatedSend(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events <- 1 //cgraph:locksafe fixture: buffered channel sized for the worst case
}

func relockingLoopIsSkipped(s *state) {
	s.mu.Lock()
	for {
		s.mu.Unlock()
		s.events <- 1
		s.mu.Lock()
	}
}
