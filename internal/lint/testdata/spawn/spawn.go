// Package fixture exercises the spawn analyzer: bare go statements need
// a //cgraph:spawn annotation with a reason.
package fixture

func bareSpawn() {
	go doWork() // want "bare go statement outside internal/pool"
}

func bareSpawnLiteral() {
	go func() { // want "bare go statement outside internal/pool"
		doWork()
	}()
}

func annotatedTrailing() {
	go doWork() //cgraph:spawn one resident listener for the process lifetime
}

func annotatedAbove() {
	//cgraph:spawn one watcher per admitted job, bounded by MaxInFlight
	go func() {
		doWork()
	}()
}

func emptyReasonDoesNotCount() {
	//cgraph:spawn
	go doWork() // want "bare go statement outside internal/pool"
}

func doWork() {}
