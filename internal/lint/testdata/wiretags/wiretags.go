// Package api is a fixture exercising the wiretags analyzer: exported
// wire-struct fields need json tags, float vectors use Float, and
// request-body decoders reject unknown fields.
package api

import (
	"encoding/json"
	"net/http"
)

type Float float64

type Status struct {
	ID     string  `json:"id"`
	Score  float64 `json:"score,omitempty"`
	Values []Float `json:"values"`

	internal int // unexported fields are not wire surface
}

type Sloppy struct {
	ID     string       // want "exported api field Sloppy.ID has no json tag"
	Values []float64    `json:"values"` // want "cannot carry NaN"
	Edges  [][3]float64 `json:"edges"`  // fixed-size elements never hold NaN scores
}

// QueryOpts never crosses the wire; it mirrors URL query parameters.
//
//cgraph:nowire query-parameter options, never JSON-encoded
type QueryOpts struct {
	Limit  int
	Offset int
}

func handleCompliant(w http.ResponseWriter, r *http.Request) {
	var in Status
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func handleSloppy(w http.ResponseWriter, r *http.Request) {
	var in Status
	dec := json.NewDecoder(r.Body) // want "never calls DisallowUnknownFields"
	if err := dec.Decode(&in); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func handleChained(w http.ResponseWriter, r *http.Request) {
	var in Status
	_ = json.NewDecoder(r.Body).Decode(&in) // want "chained straight into Decode"
}

func clientDecode(resp *http.Response) (Status, error) {
	// Response decoding is exempt: clients must tolerate additive server
	// fields, so DisallowUnknownFields would break forward compatibility.
	var out Status
	err := json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}
