// Package fixture exercises the errcodes analyzer: api.Error codes come
// from the declared ErrorCode constant set, never raw string literals.
package fixture

import (
	"fmt"

	"cgraph/api"
)

func rawCodes(err error) {
	_ = &api.Error{Code: "not_found", Message: "no such job"} // want "raw string \"not_found\""
	_ = api.Error{Code: api.CodeNotFound, Message: "ok"}
	_ = api.Errorf("internal", "round loop: %v", err) // want "raw code \"internal\""
	_ = api.Errorf(api.CodeInternal, "round loop: %v", err)
	_ = api.IsCode(err, "conflict") // want "raw code \"conflict\""
	_ = api.IsCode(err, api.CodeConflict)
	_ = api.ErrorCode("made_up") // want "ad-hoc ErrorCode"
}

func notTheAPIPackage(err error) {
	// fmt.Errorf's format string is not an error code.
	_ = fmt.Errorf("decode body: %w", err)
}
