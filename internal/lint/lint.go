// Package lint is cgraph-vet: a project-specific static-analysis suite
// that turns the engine's correctness conventions into build-breaking
// checks. Each analyzer encodes one invariant that has bitten (or nearly
// bitten) before:
//
//   - wallclock: the engine's time is the virtual clock. time.Now /
//     time.Since inside internal/core, internal/sched, and internal/exec
//     must be annotated wall-stamp sites (//cgraph:wallclock <reason>) —
//     everything else goes through Engine.Now (the PR 2 data-race class).
//   - spawn: bounded-worker discipline. Bare go statements live only in
//     internal/pool or at annotated launch sites (//cgraph:spawn <reason>),
//     so the one-goroutine-per-job pattern cannot creep back in.
//   - locksafe: the "never block the round loop" rule. Channel sends,
//     On* callback invocations, and slog calls are flagged while an engine
//     or server mutex is held, as are lock regions that return without
//     unlocking on a branch.
//   - wiretags: the /v1 wire contract. Exported api struct fields carry
//     json tags (or the struct is //cgraph:nowire), per-vertex float
//     vectors use api.Float, and request-body decoders set
//     DisallowUnknownFields.
//   - promnames: Prometheus families match cgraph_[a-z_]+, are declared
//     exactly once with HELP text and a known type, and every Add targets
//     a declared family.
//   - errcodes: api.Error codes come from the declared ErrorCode constant
//     set, never raw string literals.
//   - spanend: span lifecycle. A StartSpan result bound to a local must be
//     ended in the starting function (directly or deferred), escape it, or
//     carry //cgraph:spanend <reason>; discarded results are always flagged.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, diagnostics, analysistest-style fixtures) but is
// self-contained on the standard library: analyzers are purely syntactic,
// which keeps the suite dependency-free and fast enough to run on every
// build.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the reporting analyzer, and a
// human-readable message that names the violated invariant and the escape
// hatch (fix or annotation).
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Check)
}

// Analyzer is one named check over a single package's syntax.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is the one-paragraph rule statement shown by cgraph-vet -help.
	Doc string
	// Match restricts which packages the driver runs the analyzer over;
	// nil matches every package. Fixture tests invoke Run directly and
	// bypass it.
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files, comments included.
	Files []*ast.File
	// PkgPath is the package's import path; PkgName its package clause.
	PkgPath string
	PkgName string

	diags      *[]Diagnostic
	directives map[*ast.File]map[int]map[string]string
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Directive reports whether the line holding pos (or the line directly
// above it, for comment-above-statement style) carries a
// //cgraph:<name> <reason> annotation, and returns the reason. Annotations
// with an empty reason do not count: every suppression must say why.
func (p *Pass) Directive(pos token.Pos, name string) (string, bool) {
	position := p.Fset.Position(pos)
	for _, f := range p.Files {
		fp := p.Fset.Position(f.Pos())
		if fp.Filename != position.Filename {
			continue
		}
		lines := p.fileDirectives(f)
		for _, line := range []int{position.Line, position.Line - 1} {
			if reason, ok := lines[line][name]; ok && strings.TrimSpace(reason) != "" {
				return reason, true
			}
		}
	}
	return "", false
}

// fileDirectives lazily indexes a file's //cgraph: directive comments by
// the line they annotate (their own line, i.e. trailing comments, and the
// line below, i.e. comment-above-statement).
func (p *Pass) fileDirectives(f *ast.File) map[int]map[string]string {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int]map[string]string)
	}
	if m, ok := p.directives[f]; ok {
		return m
	}
	m := make(map[int]map[string]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "cgraph:") {
				continue
			}
			rest := strings.TrimPrefix(text, "cgraph:")
			name, reason, _ := strings.Cut(rest, " ")
			line := p.Fset.Position(c.End()).Line
			for _, l := range []int{line, line + 1} {
				if m[l] == nil {
					m[l] = make(map[string]string)
				}
				m[l][name] = reason
			}
		}
	}
	p.directives[f] = m
	return m
}

// All returns the full cgraph-vet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, Spawn, Locksafe, Wiretags, Promnames, Errcodes, Spanend}
}

// RunAnalyzers applies each analyzer to each package it matches and
// returns the findings sorted by position.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				PkgPath:  pkg.Path,
				PkgName:  pkg.Name,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Check < diags[j].Check
	})
	return diags, nil
}

// importName returns the file-local name the given import path is bound
// to, and whether the file imports it at all. A default (unnamed) import
// binds to the path's last element.
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// exprText renders a (selector/ident) expression as dotted text, e.g.
// "e.mu" or "s.cfg.OnJobEvent"; unsupported shapes return "".
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprText(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprText(x.X)
	}
	return ""
}
