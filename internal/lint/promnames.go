package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// Promnames checks the server's Prometheus exposition: family names
// match the project prefix convention, each family is declared exactly
// once with a known type and non-empty HELP text, and every sample added
// targets a declared family. The analysis is literal-only — dynamically
// built names (histogram vec helpers) pass through unchecked.
var Promnames = &Analyzer{
	Name: "promnames",
	Doc: "require Prometheus family names matching cgraph_[a-z_]+, declared once with HELP " +
		"text and a known type, and Add/AddHistogram calls that target declared families",
	Match: func(path string) bool { return path == "cgraph/server" },
	Run:   runPromnames,
}

var promNameRE = regexp.MustCompile(`^cgraph_[a-z_]+$`)

var promTypes = map[string]bool{"counter": true, "gauge": true, "histogram": true}

func runPromnames(pass *Pass) error {
	declared := map[string]token.Pos{}
	// Pass 1: collect and validate declarations across the package.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Declare" || len(call.Args) != 3 {
				return true
			}
			name, ok := stringLit(call.Args[0])
			if !ok {
				return true
			}
			if !promNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "metric family %q does not match cgraph_[a-z_]+", name)
			}
			if prev, dup := declared[name]; dup {
				pass.Reportf(call.Args[0].Pos(), "metric family %q declared more than once (first at %s)",
					name, pass.Fset.Position(prev))
			} else {
				declared[name] = call.Args[0].Pos()
			}
			if typ, ok := stringLit(call.Args[1]); ok && !promTypes[typ] {
				pass.Reportf(call.Args[1].Pos(), "metric family %q has unknown TYPE %q (want counter, gauge, or histogram)", name, typ)
			}
			if help, ok := stringLit(call.Args[2]); ok && help == "" {
				pass.Reportf(call.Args[2].Pos(), "metric family %q declared with empty HELP text", name)
			}
			return true
		})
	}
	// Pass 2: every literal-named sample must target a declared family.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Add" && sel.Sel.Name != "AddHistogram") || len(call.Args) == 0 {
				return true
			}
			name, ok := stringLit(call.Args[0])
			if !ok {
				return true
			}
			if _, ok := declared[name]; !ok && promNameRE.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(), "%s targets undeclared metric family %q; Declare it with HELP text first",
					sel.Sel.Name, name)
			}
			return true
		})
	}
	return nil
}

// stringLit unquotes a string-literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
