package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// Locksafe enforces the "never block the round loop" rule: while an
// engine or server mutex is held, code must not perform channel sends,
// invoke On* callbacks, or call the structured logger — all of those can
// block or re-enter arbitrarily. It also flags manual (defer-less) lock
// regions that return on a branch without unlocking. Mutexes are
// recognised by name (fields or locals ending in "mu" or mentioning
// "mutex"/"lock"), which is the project's naming convention. Deliberate
// exceptions carry //cgraph:locksafe <reason>.
var Locksafe = &Analyzer{
	Name: "locksafe",
	Doc: "flag channel sends, On* callback invocations, and logger calls made while a " +
		"mutex is held, and defer-less lock regions that return without unlocking",
	Run: runLocksafe,
}

var callbackNameRE = regexp.MustCompile(`^On[A-Z]`)

func runLocksafe(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					locksafeBlock(pass, fn.Body)
				}
			case *ast.FuncLit:
				locksafeBlock(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// locksafeBlock scans one block for Lock/RLock statements and checks the
// region each one opens. Nested blocks reached through statements are
// handled by the recursive ast.Inspect in runLocksafe only for function
// literals; plain nested blocks are scanned here.
func locksafeBlock(pass *Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		if inner, ok := stmt.(*ast.BlockStmt); ok {
			locksafeBlock(pass, inner)
			continue
		}
		recv, method, ok := lockCall(stmt)
		if !ok || (method != "Lock" && method != "RLock") {
			continue
		}
		rest := block.List[i+1:]
		if len(rest) > 0 && isDeferredUnlock(rest[0], recv) {
			checkHeldStmts(pass, rest[1:], recv)
			continue
		}
		checkManualRegion(pass, rest, recv)
	}
}

// isDeferredUnlock matches `defer X.Unlock()` / `defer X.RUnlock()` for
// the given receiver.
func isDeferredUnlock(stmt ast.Stmt, recv string) bool {
	d, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := d.Call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	return exprText(sel.X) == recv
}

// checkManualRegion walks the statements following a defer-less Lock
// until the matching same-level Unlock, applying both the
// blocking-call rule and the branch-unlock rule. Shapes the syntactic
// analysis cannot follow precisely — loops that re-lock (the pool's
// releaseSlot pattern) or selects that unlock in a case — end the scan
// silently rather than risk a false positive.
func checkManualRegion(pass *Pass, stmts []ast.Stmt, recv string) {
	for _, stmt := range stmts {
		if r, m, ok := lockCall(stmt); ok && r == recv && (m == "Unlock" || m == "RUnlock") {
			return
		}
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if _, ok := pass.Directive(s.Pos(), "locksafe"); !ok {
				pass.Reportf(s.Pos(), "return while %s is held: unlock first or use defer %s.Unlock()", recv, recv)
			}
			return
		case *ast.ForStmt, *ast.RangeStmt:
			if containsLockOp(stmt, recv) {
				return // re-locking loop: region shape is beyond syntactic analysis
			}
			checkHeldStmts(pass, []ast.Stmt{stmt}, recv)
		case *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			if containsUnlock(stmt, recv) {
				return // a case unlocks: region shape is beyond syntactic analysis
			}
			checkHeldStmts(pass, []ast.Stmt{stmt}, recv)
		case *ast.IfStmt:
			checkIfUnderLock(pass, s, recv)
		default:
			checkHeldStmts(pass, []ast.Stmt{stmt}, recv)
		}
	}
}

// checkIfUnderLock handles an if statement inside a manual lock region:
// a branch that terminates in a return must unlock first.
func checkIfUnderLock(pass *Pass, s *ast.IfStmt, recv string) {
	for _, branch := range ifBranches(s) {
		if containsUnlock(branch, recv) {
			continue // branch releases the lock; sends after that are fine
		}
		checkHeldStmts(pass, branch.List, recv)
		if ret, ok := terminatingReturn(branch); ok {
			if _, ok := pass.Directive(ret.Pos(), "locksafe"); !ok {
				pass.Reportf(ret.Pos(), "branch returns while %s is held: unlock first or use defer %s.Unlock()", recv, recv)
			}
		}
	}
}

// ifBranches flattens an if/else-if/else chain into its blocks.
func ifBranches(s *ast.IfStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	for s != nil {
		out = append(out, s.Body)
		switch e := s.Else.(type) {
		case *ast.IfStmt:
			s = e
		case *ast.BlockStmt:
			out = append(out, e)
			s = nil
		default:
			s = nil
		}
	}
	return out
}

// terminatingReturn returns the block's final statement if it is a
// return.
func terminatingReturn(block *ast.BlockStmt) (*ast.ReturnStmt, bool) {
	if len(block.List) == 0 {
		return nil, false
	}
	ret, ok := block.List[len(block.List)-1].(*ast.ReturnStmt)
	return ret, ok
}

// containsLockOp reports whether the subtree performs any lock operation
// on recv.
func containsLockOp(n ast.Node, recv string) bool {
	return containsMutexCall(n, recv, "Lock", "RLock", "Unlock", "RUnlock")
}

// containsUnlock reports whether the subtree unlocks recv.
func containsUnlock(n ast.Node, recv string) bool {
	return containsMutexCall(n, recv, "Unlock", "RUnlock")
}

func containsMutexCall(n ast.Node, recv string, methods ...string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || exprText(sel.X) != recv {
			return true
		}
		for _, m := range methods {
			if sel.Sel.Name == m {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkHeldStmts applies the blocking-call rule to statements that run
// with recv held: no channel sends (outside non-blocking selects), no
// On* callback invocations, no logger calls. Goroutine bodies and
// function literals are skipped — they do not run under the caller's
// lock.
func checkHeldStmts(pass *Pass, stmts []ast.Stmt, recv string) {
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt, *ast.FuncLit, *ast.DeferStmt:
				return false
			case *ast.SelectStmt:
				if selectHasDefault(x) {
					return false // non-blocking by construction
				}
				return true
			case *ast.SendStmt:
				if _, ok := pass.Directive(x.Pos(), "locksafe"); !ok {
					pass.Reportf(x.Pos(), "channel send while %s is held can block the lock holder; "+
						"send after unlocking or annotate with //cgraph:locksafe <reason>", recv)
				}
				return true
			case *ast.CallExpr:
				checkHeldCall(pass, x, recv)
				return true
			}
			return true
		})
	}
}

func checkHeldCall(pass *Pass, call *ast.CallExpr, recv string) {
	var name, callee string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
		callee = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		callee = exprText(fun)
	default:
		return
	}
	if callbackNameRE.MatchString(name) {
		if _, ok := pass.Directive(call.Pos(), "locksafe"); !ok {
			pass.Reportf(call.Pos(), "callback %s invoked while %s is held can re-enter or block; "+
				"capture it and invoke after unlocking", callee, recv)
		}
		return
	}
	switch name {
	case "Info", "Warn", "Error", "Debug", "Log",
		"InfoContext", "WarnContext", "ErrorContext", "DebugContext":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if strings.Contains(strings.ToLower(exprText(sel.X)), "log") {
				if _, ok := pass.Directive(call.Pos(), "locksafe"); !ok {
					pass.Reportf(call.Pos(), "logger call while %s is held serialises the lock on log I/O; "+
						"log after unlocking", recv)
				}
			}
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
