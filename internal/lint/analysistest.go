package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the quoted expectation patterns of a `// want "..."`
// comment, analysistest-style: each quoted string is a regexp one reported
// diagnostic on that line must match.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunFixture parses every .go file under testdata/<dir>, runs the analyzer
// over them as one package, and checks the findings against the fixture's
// `// want "regexp"` comments: every want must be matched by a diagnostic
// on its line, and every diagnostic must be claimed by a want. Fixture
// files are parse-only — they are never compiled, so they may reference
// whatever types the scenario needs.
func RunFixture(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("read fixture dir %s: %v", root, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	// wants maps file:line to pending expectation regexps.
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	pkgName := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(root, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", path, err)
		}
		files = append(files, f)
		pkgName = f.Name.Name
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				k := key{path, fset.Position(c.Pos()).Line}
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, k.line, m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s holds no .go files", root)
	}

	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     fset,
		Files:    files,
		PkgPath:  "cgraph/internal/lint/testdata/" + dir,
		PkgName:  pkgName,
		diags:    &diags,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("run %s over %s: %v", a.Name, root, err)
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", a.Name, k.file, k.line, re)
		}
	}
}
