package lint

import (
	"go/ast"
	"strings"
)

// Spawn forbids bare go statements outside internal/pool: PR 7 replaced
// the one-goroutine-per-job pattern with a bounded work-stealing pool,
// and unbounded spawns are exactly how that discipline rots back.
// Long-lived or structurally bounded goroutines (accept loops, one
// watcher per SSE subscriber) are annotated //cgraph:spawn <reason>.
var Spawn = &Analyzer{
	Name: "spawn",
	Doc: "forbid bare go statements outside internal/pool and " +
		"//cgraph:spawn-annotated launch sites; per-unit concurrency goes " +
		"through the bounded worker pool",
	Match: func(path string) bool { return path != "cgraph/internal/pool" },
	Run:   runSpawn,
}

func runSpawn(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if _, ok := pass.Directive(g.Pos(), "spawn"); ok {
				return true
			}
			pass.Reportf(g.Pos(), "bare go statement outside internal/pool; run the work on the "+
				"bounded pool, or annotate a deliberate launch site with //cgraph:spawn <reason>")
			return true
		})
	}
	return nil
}

// isMutexExpr reports whether the expression names something the suite
// treats as a mutex: the final selector (or the ident itself) ends in
// "mu" or mentions "mutex"/"lock".
func isMutexExpr(e ast.Expr) bool {
	text := exprText(e)
	if text == "" {
		return false
	}
	last := text
	if i := strings.LastIndex(text, "."); i >= 0 {
		last = text[i+1:]
	}
	l := strings.ToLower(last)
	return strings.HasSuffix(l, "mu") || strings.Contains(l, "mutex") || strings.Contains(l, "lock")
}

// lockCall decomposes a statement of the form X.Lock() / X.RLock() /
// X.Unlock() / X.RUnlock() on a mutex-named X, returning the receiver
// text and the method name.
func lockCall(stmt ast.Stmt) (recv string, method string, ok bool) {
	es, okES := stmt.(*ast.ExprStmt)
	if !okES {
		return "", "", false
	}
	call, okC := es.X.(*ast.CallExpr)
	if !okC || len(call.Args) != 0 {
		return "", "", false
	}
	sel, okS := call.Fun.(*ast.SelectorExpr)
	if !okS {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexExpr(sel.X) {
		return "", "", false
	}
	return exprText(sel.X), sel.Sel.Name, true
}
