package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestWallclockFixture(t *testing.T) { RunFixture(t, "wallclock", Wallclock) }
func TestSpawnFixture(t *testing.T)     { RunFixture(t, "spawn", Spawn) }
func TestLocksafeFixture(t *testing.T)  { RunFixture(t, "locksafe", Locksafe) }
func TestWiretagsFixture(t *testing.T)  { RunFixture(t, "wiretags", Wiretags) }
func TestPromnamesFixture(t *testing.T) { RunFixture(t, "promnames", Promnames) }
func TestErrcodesFixture(t *testing.T)  { RunFixture(t, "errcodes", Errcodes) }
func TestSpanendFixture(t *testing.T)   { RunFixture(t, "spanend", Spanend) }

// TestMatchScoping pins each analyzer's package scope: the suite must
// cover the right packages even though fixtures bypass Match.
func TestMatchScoping(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkg      string
		want     bool
	}{
		{Wallclock, "cgraph/internal/core", true},
		{Wallclock, "cgraph/internal/sched", true},
		{Wallclock, "cgraph/internal/exec", true},
		{Wallclock, "cgraph/server", false},
		{Spawn, "cgraph/server", true},
		{Spawn, "cgraph/internal/pool", false},
		{Wallclock, "cgraph/internal/span", true},
		{Promnames, "cgraph/server", true},
		{Promnames, "cgraph/client", false},
		{Spanend, "cgraph/server", true},
		{Spanend, "cgraph/internal/ingest", true},
	}
	for _, c := range cases {
		got := c.analyzer.Match == nil || c.analyzer.Match(c.pkg)
		if got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

// TestDirective pins the annotation grammar: same line or line above,
// and a reason is mandatory.
func TestDirective(t *testing.T) {
	const src = `package p

func a() {
	work() //cgraph:spawn trailing reason
}

func b() {
	//cgraph:spawn reason above
	work()
}

func c() {
	//cgraph:spawn
	work()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Analyzer: Spawn, Fset: fset, Files: []*ast.File{f}, diags: new([]Diagnostic)}
	find := func(line int) (string, bool) {
		return pass.Directive(fset.File(f.Pos()).LineStart(line), "spawn")
	}
	if reason, ok := find(4); !ok || reason != "trailing reason" {
		t.Errorf("trailing directive: got %q, %v", reason, ok)
	}
	if reason, ok := find(9); !ok || reason != "reason above" {
		t.Errorf("above directive: got %q, %v", reason, ok)
	}
	if _, ok := find(14); ok {
		t.Errorf("empty-reason directive should not count")
	}
}
