package lint

import (
	"go/ast"
)

// Errcodes keeps api.Error codes closed over the declared ErrorCode
// constant set: raw string literals as codes — in Error composite
// literals, Errorf/IsCode arguments, or ad-hoc ErrorCode conversions —
// compile fine but invent wire values no client switch handles. The
// constant declarations in the api package itself are the one legitimate
// source of code strings and are not calls, so they pass untouched.
var Errcodes = &Analyzer{
	Name: "errcodes",
	Doc: "require api.Error codes to come from the declared ErrorCode constants, never raw " +
		"string literals",
	Run: runErrcodes,
}

func runErrcodes(pass *Pass) error {
	for _, f := range pass.Files {
		apiName, imported := importName(f, "cgraph/api")
		local := pass.PkgName == "api"
		if !imported && !local {
			continue
		}
		// isAPI reports whether the expression names the api package's
		// identifier ident — api.<ident> in importers, bare <ident> in the
		// api package itself.
		isAPI := func(e ast.Expr, ident string) bool {
			switch x := e.(type) {
			case *ast.Ident:
				return local && x.Name == ident
			case *ast.SelectorExpr:
				id, ok := x.X.(*ast.Ident)
				return ok && imported && id.Name == apiName && x.Sel.Name == ident
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if isAPI(x.Type, "Error") {
					for _, elt := range x.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Code" {
							continue
						}
						if lit, ok := stringLit(kv.Value); ok {
							pass.Reportf(kv.Value.Pos(), "Error.Code set to raw string %q; use a declared ErrorCode constant", lit)
						}
					}
				}
			case *ast.CallExpr:
				switch {
				case isAPI(x.Fun, "Errorf") && len(x.Args) > 0:
					if lit, ok := stringLit(x.Args[0]); ok {
						pass.Reportf(x.Args[0].Pos(), "Errorf called with raw code %q; use a declared ErrorCode constant", lit)
					}
				case isAPI(x.Fun, "IsCode") && len(x.Args) > 1:
					if lit, ok := stringLit(x.Args[1]); ok {
						pass.Reportf(x.Args[1].Pos(), "IsCode called with raw code %q; use a declared ErrorCode constant", lit)
					}
				case isAPI(x.Fun, "ErrorCode") && len(x.Args) == 1:
					if lit, ok := stringLit(x.Args[0]); ok {
						pass.Reportf(x.Args[0].Pos(), "ad-hoc ErrorCode(%q) conversion; use a declared ErrorCode constant", lit)
					}
				}
			}
			return true
		})
	}
	return nil
}
