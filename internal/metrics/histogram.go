package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram is a fixed-bucket latency/size histogram in the Prometheus
// style: observations are counted into buckets by upper bound, plus a sum
// and a total count, so `_bucket{le=...}`/`_sum`/`_count` families can be
// rendered from a snapshot. Bounds are set at construction and never
// change; Observe is safe for concurrent use and costs one mutex plus a
// linear scan over the (small, fixed) bucket list.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []uint64  // len(bounds)+1; last bucket is the +Inf overflow
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram over the given upper bounds. Bounds are
// copied, sorted, and deduplicated; an implicit +Inf bucket is always
// appended.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	out := bs[:0]
	for i, b := range bs {
		if i > 0 && b == bs[i-1] {
			continue
		}
		out = append(out, b)
	}
	return &Histogram{bounds: out, counts: make([]uint64, len(out)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (NOT cumulative); Counts[len(Bounds)] is the +Inf overflow.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the target rank, the same estimate Prometheus'
// histogram_quantile produces. Ranks landing in the +Inf bucket clamp to
// the highest finite bound. Returns NaN on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramVec is a set of histograms sharing bounds, partitioned by label
// values. Children are created on first use and live forever, so label
// values must be low-cardinality (routes, triggers, algorithm names — not
// job IDs).
type HistogramVec struct {
	mu       sync.Mutex
	bounds   []float64
	names    []string
	children map[string]*Histogram
}

// NewHistogramVec builds a labeled histogram family.
func NewHistogramVec(bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{
		bounds:   bounds,
		names:    append([]string(nil), labelNames...),
		children: make(map[string]*Histogram),
	}
}

// With returns the child histogram for the given label values (one per
// label name, in declaration order).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.names) {
		panic(fmt.Sprintf("metrics: HistogramVec.With got %d values, want %d", len(values), len(v.names)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}

// LabeledSnapshot pairs a child snapshot with its label values.
type LabeledSnapshot struct {
	Labels map[string]string
	HistogramSnapshot
}

// Snapshots returns one snapshot per child, sorted by label values for
// deterministic rendering.
func (v *HistogramVec) Snapshots() []LabeledSnapshot {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]LabeledSnapshot, 0, len(keys))
	for _, k := range keys {
		labels := make(map[string]string, len(v.names))
		for i, val := range strings.Split(k, "\x00") {
			if i < len(v.names) {
				labels[v.names[i]] = val
			}
		}
		out = append(out, LabeledSnapshot{Labels: labels, HistogramSnapshot: v.children[k].Snapshot()})
	}
	v.mu.Unlock()
	return out
}

// LatencyBuckets are the default bounds (seconds) for request/round/flush
// durations: 100µs to 10s, roughly logarithmic.
func LatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// SizeBuckets are the default bounds for batch sizes (counts).
func SizeBuckets() []float64 {
	return []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000}
}
