package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 0.01, 1}) // unsorted + duplicate on purpose
	for _, v := range []float64{0.005, 0.05, 0.5, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantBounds := []float64{0.01, 0.1, 1}
	if len(s.Bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", s.Bounds, wantBounds)
	}
	for i, b := range wantBounds {
		if s.Bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", s.Bounds, wantBounds)
		}
	}
	// Counts are per-bucket, not cumulative; the last is the +Inf overflow.
	wantCounts := []uint64{1, 1, 2, 2}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("counts = %v, want %v", s.Counts, wantCounts)
	}
	for i, c := range wantCounts {
		if s.Counts[i] != c {
			t.Fatalf("counts = %v, want %v", s.Counts, wantCounts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if math.Abs(s.Sum-103.055) > 1e-9 {
		t.Fatalf("sum = %v, want 103.055", s.Sum)
	}
}

func TestHistogramBoundaryValuesAreInclusive(t *testing.T) {
	// A value equal to an upper bound lands in that bucket (le semantics).
	h := NewHistogram([]float64{1, 2})
	h.Observe(1)
	h.Observe(2)
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 0 {
		t.Fatalf("counts = %v, want [1 1 0]", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 10 observations uniformly in (0,1]: median interpolates inside bucket 0.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5", got)
	}
	// Overflow observations clamp the quantile to the highest finite bound.
	h.Observe(100)
	h.Observe(100)
	if got := h.Snapshot().Quantile(0.99); got != 4 {
		t.Fatalf("p99 with overflow = %v, want clamp to 4", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %v, want NaN", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec([]float64{1}, "route", "code")
	v.With("/v1/jobs", "200").Observe(0.5)
	v.With("/v1/jobs", "200").Observe(3)
	v.With("/v1/jobs", "404").Observe(0.1)

	snaps := v.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("%d children, want 2", len(snaps))
	}
	// Sorted by label values: 200 before 404.
	if snaps[0].Labels["code"] != "200" || snaps[1].Labels["code"] != "404" {
		t.Fatalf("snapshot order: %v, %v", snaps[0].Labels, snaps[1].Labels)
	}
	if snaps[0].Labels["route"] != "/v1/jobs" {
		t.Fatalf("labels = %v", snaps[0].Labels)
	}
	if snaps[0].Count != 2 || snaps[1].Count != 1 {
		t.Fatalf("counts = %d, %d; want 2, 1", snaps[0].Count, snaps[1].Count)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong arity did not panic")
		}
	}()
	v.With("only-one")
}
