// Package metrics defines the per-job and per-run measurements every engine
// reports: the virtual-time breakdown between data access and vertex
// processing (Fig. 10/17), completion times (Fig. 2/8/9/14/16), CPU
// utilization (Fig. 15), and the memory-hierarchy counters behind
// Figs. 11–13 and 18–19.
package metrics

import (
	"time"

	"cgraph/internal/memsim"
)

// JobMetrics is one job's account of a run. Times are simulated
// microseconds.
type JobMetrics struct {
	JobID int
	Name  string

	// AccessTime is time spent moving data (partition and private-table
	// loads, disk reads, sync traffic).
	AccessTime float64
	// ComputeTime is pure vertex-processing time.
	ComputeTime float64
	// SyncTime is the Push/state-synchronization share of AccessTime
	// bookkeeping (already included in AccessTime).
	SyncTime float64

	SubmitAt   float64
	FinishAt   float64
	Iterations int

	Edges       int64
	Vertices    int64
	SyncEntries int64

	// Mode is the execution discipline the job ran under ("bsp", "async",
	// "delayed").
	Mode string
	// FreshFolds counts contributions folded eagerly under the fresh-state
	// disciplines; BarriersSkipped / BarriersForced are the delayed-mode
	// bounded-staleness counters. All zero for BSP jobs.
	FreshFolds      int64
	BarriersSkipped int64
	BarriersForced  int64
}

// ExecTime is the job's virtual wall time from submission to convergence.
func (m JobMetrics) ExecTime() float64 { return m.FinishAt - m.SubmitAt }

// AccessRatio is the fraction of the access+compute total spent on data
// access (the paper's "ratio of data access cost to computation").
func (m JobMetrics) AccessRatio() float64 {
	total := m.AccessTime + m.ComputeTime
	if total == 0 {
		return 0
	}
	return m.AccessTime / total
}

// RunReport aggregates one engine run.
type RunReport struct {
	System  string
	Workers int

	Jobs []JobMetrics
	// Makespan is the virtual time at which the last job converged.
	Makespan float64
	// BusyCoreTime is Σ per-core compute microseconds actually used.
	BusyCoreTime float64
	// Counters snapshots the memory hierarchy at the end of the run.
	Counters memsim.Counters
	// WallClock is the real elapsed time, reported for sanity only.
	WallClock time.Duration
}

// TotalExecTime is the concurrent total execution time: the makespan
// (the paper's Fig. 9 metric: "total execution time is the maximum of the
// jobs' execution times").
func (r *RunReport) TotalExecTime() float64 { return r.Makespan }

// SumExecTime is the sequential-equivalent total (sum of per-job times).
func (r *RunReport) SumExecTime() float64 {
	var sum float64
	for _, j := range r.Jobs {
		sum += j.ExecTime()
	}
	return sum
}

// AvgExecTime is the mean per-job execution time (Fig. 2a).
func (r *RunReport) AvgExecTime() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	return r.SumExecTime() / float64(len(r.Jobs))
}

// AvgAccessTime is the mean per-job data-access time (Fig. 2b).
func (r *RunReport) AvgAccessTime() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var sum float64
	for _, j := range r.Jobs {
		sum += j.AccessTime
	}
	return sum / float64(len(r.Jobs))
}

// CPUUtilization is the fraction of core-time doing vertex processing over
// the makespan (Fig. 15), in percent.
func (r *RunReport) CPUUtilization() float64 {
	if r.Makespan == 0 || r.Workers == 0 {
		return 0
	}
	u := 100 * r.BusyCoreTime / (r.Makespan * float64(r.Workers))
	if u > 100 {
		u = 100
	}
	return u
}

// AccessComputeBreakdown returns the run-level (access%, compute%) split.
func (r *RunReport) AccessComputeBreakdown() (access, compute float64) {
	var a, c float64
	for _, j := range r.Jobs {
		a += j.AccessTime
		c += j.ComputeTime
	}
	total := a + c
	if total == 0 {
		return 0, 0
	}
	return 100 * a / total, 100 * c / total
}

// Job returns the metrics of the named job (first match), or nil.
func (r *RunReport) Job(name string) *JobMetrics {
	for i := range r.Jobs {
		if r.Jobs[i].Name == name {
			return &r.Jobs[i]
		}
	}
	return nil
}
