package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTextExposition(t *testing.T) {
	e := NewTextExposition()
	e.Declare("cgraph_jobs", "gauge", "Jobs by lifecycle state.")
	e.Add("cgraph_jobs", map[string]string{"state": "running"}, 2)
	e.Add("cgraph_jobs", map[string]string{"state": "done"}, 5)
	e.Declare("cgraph_rounds_total", "counter", "LTP rounds processed.")
	e.Add("cgraph_rounds_total", nil, 123)
	e.Add("cgraph_job_access_us", map[string]string{"id": "job-0", "algo": "PageRank"}, 1.5)

	got := e.String()
	want := strings.Join([]string{
		"# HELP cgraph_jobs Jobs by lifecycle state.",
		"# TYPE cgraph_jobs gauge",
		`cgraph_jobs{state="running"} 2`,
		`cgraph_jobs{state="done"} 5`,
		"# HELP cgraph_rounds_total LTP rounds processed.",
		"# TYPE cgraph_rounds_total counter",
		"cgraph_rounds_total 123",
		`cgraph_job_access_us{algo="PageRank",id="job-0"} 1.5`,
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextExpositionDeterministicLabels(t *testing.T) {
	render := func() string {
		e := NewTextExposition()
		e.Add("m", map[string]string{"b": "2", "a": "1", "c": "3"}, 1)
		return e.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("nondeterministic rendering: %q vs %q", got, first)
		}
	}
	if first != "m{a=\"1\",b=\"2\",c=\"3\"} 1\n" {
		t.Fatalf("labels not sorted: %q", first)
	}
}

func TestTextExpositionSpecialValues(t *testing.T) {
	e := NewTextExposition()
	e.Add("inf", nil, math.Inf(1))
	e.Add("ninf", nil, math.Inf(-1))
	e.Add("esc", map[string]string{"p": "a\\b\nc"}, 0)
	got := e.String()
	for _, want := range []string{"inf +Inf\n", "ninf -Inf\n", `esc{p="a\\b\nc"} 0` + "\n"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
	// Redeclare keeps the first header.
	e2 := NewTextExposition()
	e2.Declare("x", "gauge", "first")
	e2.Declare("x", "counter", "second")
	e2.Add("x", nil, 1)
	if s := e2.String(); !strings.Contains(s, "# HELP x first") || strings.Contains(s, "second") {
		t.Fatalf("redeclare not idempotent:\n%s", s)
	}
}

// TestTextExpositionEscaping covers the full text-format escaping rules:
// label values escape backslash, double-quote, and newline; HELP text
// escapes only backslash and newline (quotes stay literal).
func TestTextExpositionEscaping(t *testing.T) {
	e := NewTextExposition()
	e.Declare("esc", "gauge", `help with "quotes", back\slash and`+"\nnewline")
	e.Add("esc", map[string]string{"q": `say "hi"`, "b": `a\b`, "n": "x\ny"}, 1)
	got := e.String()
	wantHelp := `# HELP esc help with "quotes", back\\slash and\nnewline` + "\n"
	if !strings.Contains(got, wantHelp) {
		t.Fatalf("HELP escaping wrong; want %q in:\n%s", wantHelp, got)
	}
	wantSample := `esc{b="a\\b",n="x\ny",q="say \"hi\""} 1` + "\n"
	if !strings.Contains(got, wantSample) {
		t.Fatalf("label escaping wrong; want %q in:\n%s", wantSample, got)
	}
}

// TestTextExpositionHistogram checks AddHistogram renders cumulative
// le-buckets from a per-bucket snapshot, with the +Inf bucket equal to
// _count and extra labels carried onto every sample.
func TestTextExpositionHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 0.7, 5} {
		h.Observe(v)
	}
	e := NewTextExposition()
	e.Declare("lat_seconds", "histogram", "Latency.")
	e.AddHistogram("lat_seconds", map[string]string{"route": "/v1/jobs"}, h.Snapshot())
	got := e.String()
	want := strings.Join([]string{
		"# HELP lat_seconds Latency.",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1",route="/v1/jobs"} 1`,
		`lat_seconds_bucket{le="1",route="/v1/jobs"} 3`,
		`lat_seconds_bucket{le="+Inf",route="/v1/jobs"} 4`,
		`lat_seconds_sum{route="/v1/jobs"} 6.25`,
		`lat_seconds_count{route="/v1/jobs"} 4`,
		"",
	}, "\n")
	if got != want {
		t.Fatalf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
