package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTextExposition(t *testing.T) {
	e := NewTextExposition()
	e.Declare("cgraph_jobs", "gauge", "Jobs by lifecycle state.")
	e.Add("cgraph_jobs", map[string]string{"state": "running"}, 2)
	e.Add("cgraph_jobs", map[string]string{"state": "done"}, 5)
	e.Declare("cgraph_rounds_total", "counter", "LTP rounds processed.")
	e.Add("cgraph_rounds_total", nil, 123)
	e.Add("cgraph_job_access_us", map[string]string{"id": "job-0", "algo": "PageRank"}, 1.5)

	got := e.String()
	want := strings.Join([]string{
		"# HELP cgraph_jobs Jobs by lifecycle state.",
		"# TYPE cgraph_jobs gauge",
		`cgraph_jobs{state="running"} 2`,
		`cgraph_jobs{state="done"} 5`,
		"# HELP cgraph_rounds_total LTP rounds processed.",
		"# TYPE cgraph_rounds_total counter",
		"cgraph_rounds_total 123",
		`cgraph_job_access_us{algo="PageRank",id="job-0"} 1.5`,
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTextExpositionDeterministicLabels(t *testing.T) {
	render := func() string {
		e := NewTextExposition()
		e.Add("m", map[string]string{"b": "2", "a": "1", "c": "3"}, 1)
		return e.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("nondeterministic rendering: %q vs %q", got, first)
		}
	}
	if first != "m{a=\"1\",b=\"2\",c=\"3\"} 1\n" {
		t.Fatalf("labels not sorted: %q", first)
	}
}

func TestTextExpositionSpecialValues(t *testing.T) {
	e := NewTextExposition()
	e.Add("inf", nil, math.Inf(1))
	e.Add("ninf", nil, math.Inf(-1))
	e.Add("esc", map[string]string{"p": "a\\b\nc"}, 0)
	got := e.String()
	for _, want := range []string{"inf +Inf\n", "ninf -Inf\n", `esc{p="a\\b\nc"} 0` + "\n"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
	// Redeclare keeps the first header.
	e2 := NewTextExposition()
	e2.Declare("x", "gauge", "first")
	e2.Declare("x", "counter", "second")
	e2.Add("x", nil, 1)
	if s := e2.String(); !strings.Contains(s, "# HELP x first") || strings.Contains(s, "second") {
		t.Fatalf("redeclare not idempotent:\n%s", s)
	}
}
