package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// TextExposition accumulates metric samples and renders them in the
// Prometheus text exposition format (version 0.0.4): an optional
// `# HELP` / `# TYPE` header per family followed by one
// `name{label="value",...} value` line per sample. Families render in
// declaration order and samples in insertion order, so output is
// deterministic — the serve-mode `GET /metrics` endpoint is built on it.
type TextExposition struct {
	order    []string
	families map[string]*family
}

type family struct {
	typ, help string
	samples   []expoSample
}

type expoSample struct {
	labels string
	value  float64
}

// NewTextExposition returns an empty exposition.
func NewTextExposition() *TextExposition {
	return &TextExposition{families: make(map[string]*family)}
}

// Declare registers a metric family with its type ("gauge" or "counter")
// and help text. Declaring is optional — Add creates an undeclared family
// on first use, rendered without a header — and idempotent: redeclaring
// keeps the first type/help.
func (t *TextExposition) Declare(name, typ, help string) {
	t.family(name, typ, help)
}

func (t *TextExposition) family(name, typ, help string) *family {
	if f, ok := t.families[name]; ok {
		return f
	}
	f := &family{typ: typ, help: help}
	t.families[name] = f
	t.order = append(t.order, name)
	return f
}

// Add records one sample. Labels may be nil; label names render in sorted
// order so equal label sets always produce identical lines.
func (t *TextExposition) Add(name string, labels map[string]string, value float64) {
	f := t.family(name, "", "")
	f.samples = append(f.samples, expoSample{labels: renderLabels(labels), value: value})
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the label-value escaping of the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WriteTo renders the exposition.
func (t *TextExposition) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, name := range t.order {
		f := t.families[name]
		if f.help != "" {
			m, err := fmt.Fprintf(w, "# HELP %s %s\n", name, f.help)
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
		if f.typ != "" {
			m, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ)
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
		for _, s := range f.samples {
			m, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatValue(s.value))
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// String renders the exposition to a string.
func (t *TextExposition) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
