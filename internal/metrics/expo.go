package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// TextExposition accumulates metric samples and renders them in the
// Prometheus text exposition format (version 0.0.4): an optional
// `# HELP` / `# TYPE` header per family followed by one
// `name{label="value",...} value` line per sample. Families render in
// declaration order and samples in insertion order, so output is
// deterministic — the serve-mode `GET /metrics` endpoint is built on it.
type TextExposition struct {
	order    []string
	families map[string]*family
}

type family struct {
	typ, help string
	samples   []expoSample
}

type expoSample struct {
	// suffix distinguishes the sub-series of a histogram family
	// ("_bucket", "_sum", "_count"); empty for scalar samples.
	suffix string
	labels string
	value  float64
}

// NewTextExposition returns an empty exposition.
func NewTextExposition() *TextExposition {
	return &TextExposition{families: make(map[string]*family)}
}

// Declare registers a metric family with its type ("gauge" or "counter")
// and help text. Declaring is optional — Add creates an undeclared family
// on first use, rendered without a header — and idempotent: redeclaring
// keeps the first type/help.
func (t *TextExposition) Declare(name, typ, help string) {
	t.family(name, typ, help)
}

func (t *TextExposition) family(name, typ, help string) *family {
	if f, ok := t.families[name]; ok {
		return f
	}
	f := &family{typ: typ, help: help}
	t.families[name] = f
	t.order = append(t.order, name)
	return f
}

// Add records one sample. Labels may be nil; label names render in sorted
// order so equal label sets always produce identical lines.
func (t *TextExposition) Add(name string, labels map[string]string, value float64) {
	f := t.family(name, "", "")
	f.samples = append(f.samples, expoSample{labels: renderLabels(labels), value: value})
}

// AddHistogram records one histogram child: cumulative `name_bucket` lines
// per upper bound plus the implicit `le="+Inf"` bucket, then `name_sum` and
// `name_count`. Declare the family with type "histogram" first (or let this
// create it undeclared). The snapshot's per-bucket counts are accumulated
// here, so rendered bucket values are monotonically non-decreasing as the
// text format requires.
func (t *TextExposition) AddHistogram(name string, labels map[string]string, s HistogramSnapshot) {
	f := t.family(name, "histogram", "")
	var cum uint64
	for i, b := range s.Bounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		f.samples = append(f.samples, expoSample{
			suffix: "_bucket",
			labels: renderLabels(withLE(labels, formatValue(b))),
			value:  float64(cum),
		})
	}
	f.samples = append(f.samples,
		expoSample{suffix: "_bucket", labels: renderLabels(withLE(labels, "+Inf")), value: float64(s.Count)},
		expoSample{suffix: "_sum", labels: renderLabels(labels), value: s.Sum},
		expoSample{suffix: "_count", labels: renderLabels(labels), value: float64(s.Count)},
	)
}

func withLE(labels map[string]string, le string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	out["le"] = le
	return out
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the label-value escaping of the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp applies the HELP-text escaping of the exposition format:
// backslash and newline (double quotes are legal in help text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WriteTo renders the exposition.
func (t *TextExposition) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, name := range t.order {
		f := t.families[name]
		if f.help != "" {
			m, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.help))
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
		if f.typ != "" {
			m, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ)
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
		for _, s := range f.samples {
			m, err := fmt.Fprintf(w, "%s%s%s %s\n", name, s.suffix, s.labels, formatValue(s.value))
			n += int64(m)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// String renders the exposition to a string.
func (t *TextExposition) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
