package metrics

import (
	"testing"
	"testing/quick"
)

func sample() *RunReport {
	return &RunReport{
		System:  "X",
		Workers: 4,
		Jobs: []JobMetrics{
			{JobID: 0, Name: "A", AccessTime: 60, ComputeTime: 40, SubmitAt: 0, FinishAt: 100},
			{JobID: 1, Name: "B", AccessTime: 20, ComputeTime: 20, SubmitAt: 0, FinishAt: 50},
		},
		Makespan:     100,
		BusyCoreTime: 120,
	}
}

func TestExecAndAccessAggregates(t *testing.T) {
	r := sample()
	if r.TotalExecTime() != 100 {
		t.Fatalf("TotalExecTime = %v", r.TotalExecTime())
	}
	if r.SumExecTime() != 150 {
		t.Fatalf("SumExecTime = %v", r.SumExecTime())
	}
	if r.AvgExecTime() != 75 {
		t.Fatalf("AvgExecTime = %v", r.AvgExecTime())
	}
	if r.AvgAccessTime() != 40 {
		t.Fatalf("AvgAccessTime = %v", r.AvgAccessTime())
	}
}

func TestCPUUtilization(t *testing.T) {
	r := sample()
	if got := r.CPUUtilization(); got != 30 {
		t.Fatalf("CPUUtilization = %v, want 30", got)
	}
	r.BusyCoreTime = 1e9
	if got := r.CPUUtilization(); got != 100 {
		t.Fatalf("CPUUtilization must clamp at 100, got %v", got)
	}
	empty := &RunReport{}
	if empty.CPUUtilization() != 0 {
		t.Fatal("zero report utilization must be 0")
	}
}

func TestBreakdownAndRatio(t *testing.T) {
	r := sample()
	a, c := r.AccessComputeBreakdown()
	if a+c < 99.99 || a+c > 100.01 {
		t.Fatalf("breakdown doesn't sum to 100: %v + %v", a, c)
	}
	jm := r.Job("A")
	if jm == nil || jm.AccessRatio() != 0.6 {
		t.Fatalf("Job/AccessRatio broken: %+v", jm)
	}
	if r.Job("missing") != nil {
		t.Fatal("missing job must be nil")
	}
	if (JobMetrics{}).AccessRatio() != 0 {
		t.Fatal("empty ratio must be 0")
	}
}

func TestAggregatesNonNegativeQuick(t *testing.T) {
	f := func(access, compute, finish []float64) bool {
		r := &RunReport{Workers: 2, Makespan: 1}
		for i := range access {
			a := abs(access[i])
			var c, fin float64
			if i < len(compute) {
				c = abs(compute[i])
			}
			if i < len(finish) {
				fin = abs(finish[i])
			}
			r.Jobs = append(r.Jobs, JobMetrics{AccessTime: a, ComputeTime: c, FinishAt: fin})
			r.BusyCoreTime += c
		}
		aPct, cPct := r.AccessComputeBreakdown()
		if aPct < 0 || aPct > 100 || cPct < 0 || cPct > 100 {
			return false
		}
		u := r.CPUUtilization()
		return u >= 0 && u <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 || x != x { // negatives and NaN normalize to 0
		return 0
	}
	if x > 1e12 { // clamp so sums cannot overflow to +Inf
		return 1e12
	}
	return x
}

func TestEmptyAverages(t *testing.T) {
	r := &RunReport{}
	if r.AvgExecTime() != 0 || r.AvgAccessTime() != 0 {
		t.Fatal("empty report averages must be 0")
	}
}
