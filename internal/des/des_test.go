package des

import "testing"

// stepper runs a fixed schedule of delays.
type stepper struct {
	delays []float64
	i      int
	log    *[]string
	name   string
}

func (s *stepper) Step(now float64) (float64, bool) {
	if s.log != nil {
		*s.log = append(*s.log, s.name)
	}
	d := s.delays[s.i]
	s.i++
	return d, s.i >= len(s.delays)
}

func TestSingleProcessTiming(t *testing.T) {
	s := New()
	s.Spawn(&stepper{delays: []float64{10, 20, 30}}, 0)
	if got := s.Run(); got != 60 {
		t.Fatalf("Run = %v, want 60", got)
	}
}

func TestFinalDelayCounts(t *testing.T) {
	// A long final step must extend the makespan even when another
	// process finishes later in event order but earlier in time.
	s := New()
	s.Spawn(&stepper{delays: []float64{100}}, 0)  // ends at 100
	s.Spawn(&stepper{delays: []float64{5, 5}}, 0) // ends at 10
	if got := s.Run(); got != 100 {
		t.Fatalf("Run = %v, want 100", got)
	}
}

func TestInterleavingOrder(t *testing.T) {
	var log []string
	s := New()
	s.Spawn(&stepper{delays: []float64{10, 10}, log: &log, name: "a"}, 0)
	s.Spawn(&stepper{delays: []float64{4, 4, 4}, log: &log, name: "b"}, 0)
	s.Run()
	// a@0 b@0 b@4 b@8 a@10: spawn order breaks the t=0 tie.
	want := []string{"a", "b", "b", "b", "a"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestActiveCount(t *testing.T) {
	s := New()
	var sawActive int
	probe := &funcProc{fn: func(now float64) (float64, bool) {
		sawActive = s.Active()
		return 1, true
	}}
	s.Spawn(probe, 0)
	s.Spawn(&stepper{delays: []float64{5}}, 0)
	s.Run()
	if sawActive != 2 {
		t.Fatalf("Active during run = %d, want 2", sawActive)
	}
	if s.Active() != 0 {
		t.Fatalf("Active after run = %d, want 0", s.Active())
	}
}

func TestLateSpawn(t *testing.T) {
	s := New()
	s.Spawn(&stepper{delays: []float64{3}}, 50)
	if got := s.Run(); got != 53 {
		t.Fatalf("Run = %v, want 53", got)
	}
}

type funcProc struct {
	fn func(now float64) (float64, bool)
}

func (p *funcProc) Step(now float64) (float64, bool) { return p.fn(now) }

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		s := New()
		for i := 0; i < 5; i++ {
			s.Spawn(&stepper{delays: []float64{float64(i + 1), float64(10 - i)}}, float64(i))
		}
		return s.Run()
	}
	if run() != run() {
		t.Fatal("DES not deterministic")
	}
}
