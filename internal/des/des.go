// Package des is a minimal deterministic discrete-event simulator driving
// the baseline engines: each job is a sequential process; the simulator
// interleaves their steps in virtual-time order, which reproduces the
// cache-interference patterns of concurrently running jobs without
// real-time nondeterminism.
package des

import "cgraph/internal/pqueue"

// Process is a simulated sequential actor. Step performs the next unit of
// work at virtual time now and returns the simulated time it consumed and
// whether the process has finished (the delay is still consumed).
type Process interface {
	Step(now float64) (delay float64, done bool)
}

type event struct {
	t   float64
	seq int64
	p   Process
}

// Sim runs processes in virtual-time order, breaking ties by spawn order.
type Sim struct {
	h      *pqueue.Heap[event]
	now    float64
	seq    int64
	active int
}

// New returns an empty simulator.
func New() *Sim {
	return &Sim{h: pqueue.New(func(a, b event) bool {
		if a.t != b.t {
			return a.t < b.t
		}
		return a.seq < b.seq
	})}
}

// Spawn schedules p's first step at time at.
func (s *Sim) Spawn(p Process, at float64) {
	s.seq++
	s.active++
	s.h.Push(event{t: at, seq: s.seq, p: p})
}

// Now returns the current virtual time.
func (s *Sim) Now() float64 { return s.now }

// Active returns the number of live processes (the processor-sharing
// denominator for core and bandwidth allocation).
func (s *Sim) Active() int { return s.active }

// Run steps processes until none remain and returns the final virtual
// time: the latest completion across all processes, including each final
// step's delay.
func (s *Sim) Run() float64 {
	end := s.now
	for s.h.Len() > 0 {
		ev := s.h.Pop()
		if ev.t > s.now {
			s.now = ev.t
		}
		delay, done := ev.p.Step(s.now)
		if done {
			s.active--
			if s.now+delay > end {
				end = s.now + delay
			}
			continue
		}
		s.seq++
		s.h.Push(event{t: s.now + delay, seq: s.seq, p: ev.p})
	}
	if end > s.now {
		s.now = end
	}
	return s.now
}
