// Package core is the CGraph engine: the data-centric Load-Trigger-Pushing
// execution model of §3 driving concurrent iterative graph-processing jobs
// over one shared graph.
//
// Execution proceeds in rounds. A round snapshots, per job, the set of
// partitions its active vertices live in; the union is ordered by the Eq. 1
// scheduler and each partition is loaded into the (simulated) cache exactly
// once. Loading a partition triggers every job that needs it: the jobs'
// active vertices are processed concurrently on a real worker pool, with the
// straggler's vertex range split across idle workers (Fig. 6) and jobs
// batched when more jobs than workers share a partition (§3.2.3). A job that
// exhausts its round-set pushes (Algorithm 2), advances to its next
// iteration, and re-registers partitions for the next round — so jobs run in
// different iterations of their own algorithms while sharing every load.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cgraph/internal/exec"
	"cgraph/internal/graph"
	"cgraph/internal/memsim"
	"cgraph/internal/metrics"
	"cgraph/internal/sched"
	"cgraph/internal/storage"
	"cgraph/model"
)

// Config tunes the engine.
type Config struct {
	// Workers is the number of cores (default runtime.GOMAXPROCS(0)).
	Workers int
	// Hier is the simulated memory hierarchy (default memsim.Unlimited,
	// i.e. library mode without capacity pressure).
	Hier *memsim.Hierarchy
	// Scheduler selects the partition-load order policy (default
	// sched.Priority; sched.Static is the Fig. 8 ablation).
	Scheduler sched.Kind
	// DisableStragglerSplit turns off the Fig. 6 load balancing, leaving
	// each job's partition work on a single core (ablation).
	DisableStragglerSplit bool
	// MaxRounds bounds the total rounds as a safety net (default 1<<20).
	MaxRounds int
	// Label overrides the report's system name (default "CGraph").
	Label string
}

type runJob struct {
	*exec.Job
	remaining map[int]bool
	m         *metrics.JobMetrics
}

// Engine executes CGP jobs with the LTP model.
type Engine struct {
	cfg   Config
	store *storage.SnapshotStore
	sched *sched.Scheduler

	mu      sync.Mutex
	pending []*runJob

	jobs   []*runJob
	nextID int

	now      float64
	busyCore float64
	cSums    []float64

	// Clock attribution (diagnostics): how much of the virtual makespan
	// went to structure loads, trigger phases, and pushes.
	ClockStruct  float64
	ClockTrigger float64
	ClockPush    float64

	// prefetchCredit is the trigger time of the previous partition that
	// the loader can hide the next structure load behind: the common-order
	// stream of the LTP model makes the next partition known in advance,
	// so it is fetched into the reserve buffer (the b term of the Pg
	// formula) while cores process the current one.
	prefetchCredit float64

	finished []*runJob
}

// New builds an engine over the snapshot store. Defaults are applied for
// zero-valued Config fields.
func New(cfg Config, store *storage.SnapshotStore) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Hier == nil {
		cfg.Hier = memsim.Unlimited()
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 20
	}
	if cfg.Label == "" {
		cfg.Label = "CGraph"
	}
	base := store.Resolve(0).PG
	return &Engine{
		cfg:   cfg,
		store: store,
		sched: sched.New(cfg.Scheduler, base),
		cSums: make([]float64, len(base.Parts)),
	}
}

// NewSingle wraps a plain partitioned graph as a one-snapshot store.
func NewSingle(cfg Config, pg *graph.PGraph) *Engine {
	return New(cfg, storage.NewSnapshotStore(pg, 0))
}

// Submit registers a job. arrivalTS selects the snapshot: the job binds to
// the newest snapshot with timestamp ≤ arrivalTS (§3.2.1). Submit may be
// called before Run or concurrently while Run executes; runtime submissions
// are admitted at the next round boundary (Algorithm 3 "allows to add new
// jobs into SJobs at runtime"). It returns the job ID.
func (e *Engine) Submit(prog model.Program, arrivalTS int64) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.nextID
	e.nextID++
	snap := e.store.Resolve(arrivalTS)
	j := exec.NewJob(id, prog, snap.PG)
	rj := &runJob{
		Job:       j,
		remaining: make(map[int]bool),
		m:         &metrics.JobMetrics{JobID: id, Name: prog.Name()},
	}
	e.pending = append(e.pending, rj)
	return id
}

func (e *Engine) admitPending() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rj := range e.pending {
		rj.SubmitTime = e.now
		rj.m.SubmitAt = e.now
		e.jobs = append(e.jobs, rj)
	}
	e.pending = e.pending[:0]
}

// Run executes all submitted jobs to convergence and returns the report.
func (e *Engine) Run() (*metrics.RunReport, error) {
	wall := time.Now()
	rounds := 0
	for {
		e.admitPending()
		if len(e.jobs) == 0 {
			break
		}
		if rounds++; rounds > e.cfg.MaxRounds {
			return nil, fmt.Errorf("core: exceeded %d rounds without convergence", e.cfg.MaxRounds)
		}
		e.round()
	}
	rep := &metrics.RunReport{
		System:       e.cfg.Label,
		Workers:      e.cfg.Workers,
		Makespan:     e.now,
		BusyCoreTime: e.busyCore,
		Counters:     e.cfg.Hier.Counters(),
		WallClock:    time.Since(wall),
	}
	for _, rj := range e.finished {
		rep.Jobs = append(rep.Jobs, *rj.m)
	}
	return rep, nil
}

// Results returns the converged per-vertex values of the given job after
// Run completes.
func (e *Engine) Results(jobID int) ([]float64, error) {
	for _, rj := range e.finished {
		if rj.ID == jobID {
			return rj.Job.Results(), nil
		}
	}
	return nil, fmt.Errorf("core: job %d not finished or unknown", jobID)
}

// Job returns the finished exec job (testing/inspection).
func (e *Engine) Job(jobID int) (*exec.Job, bool) {
	for _, rj := range e.finished {
		if rj.ID == jobID {
			return rj.Job, true
		}
	}
	return nil, false
}

// Now returns the engine's virtual clock in microseconds.
func (e *Engine) Now() float64 { return e.now }

// round is one pass of the LTP loop: order the union of active partitions,
// load each once, trigger all related jobs, and close iterations for jobs
// whose round-set is exhausted.
func (e *Engine) round() {
	nStats := make([]int, len(e.cSums))
	cands := make(map[int]bool)
	for _, rj := range e.jobs {
		rj.remaining = make(map[int]bool)
		for _, pid := range rj.PT.ActiveParts() {
			rj.remaining[pid] = true
			nStats[pid]++
			cands[pid] = true
		}
		// Jobs admitted with no active vertices (degenerate programs)
		// finish immediately below.
	}
	candList := make([]int, 0, len(cands))
	for pid := range cands {
		candList = append(candList, pid)
	}
	order := e.sched.Order(candList, nStats, e.cSums)

	for _, pid := range order {
		var group []*runJob
		for _, rj := range e.jobs {
			if rj.remaining[pid] && !rj.Done {
				group = append(group, rj)
			}
		}
		if len(group) == 0 {
			continue
		}
		// Jobs bound to different snapshots may see different versions of
		// partition pid; group by the shared partition pointer so a
		// version is loaded once for all its jobs (Fig. 5).
		var parts []*graph.Partition
		byPart := make(map[*graph.Partition][]*runJob)
		for _, rj := range group {
			p := rj.PG.Parts[pid]
			if byPart[p] == nil {
				parts = append(parts, p)
			}
			byPart[p] = append(byPart[p], rj)
		}
		for _, p := range parts {
			e.processPartition(pid, p, byPart[p])
		}
		for _, rj := range group {
			delete(rj.remaining, pid)
			if len(rj.remaining) == 0 {
				e.finishIteration(rj)
			}
		}
	}

	// Close iterations for jobs that had nothing to do this round and
	// collect next-round C(P) statistics.
	var still []*runJob
	for _, rj := range e.jobs {
		if !rj.Done && len(rj.remaining) == 0 && !rj.PT.HasActive() {
			e.finishIteration(rj)
		}
		if rj.Done {
			continue
		}
		still = append(still, rj)
	}
	for i := range e.cSums {
		e.cSums[i] = 0
	}
	for _, rj := range still {
		for pid, s := range rj.TakeDeltaStats() {
			e.cSums[pid] += s
		}
	}
	e.jobs = still
}

func structID(p *graph.Partition) memsim.ItemID {
	return memsim.ItemID{Kind: memsim.Struct, UID: p.UID, Job: -1}
}

func privateID(p *graph.Partition, jobID int) memsim.ItemID {
	return memsim.ItemID{Kind: memsim.Private, UID: p.UID, Job: int32(jobID)}
}

// processPartition loads one partition version and triggers its jobs,
// batching when the job count exceeds the worker count. The structure load
// is serial (one loader stream), but within the trigger phase each core
// pulls its job's private-table slice itself, so private access overlaps
// both across jobs (up to the channel's stream capacity) and with the
// vertex processing of jobs already running.
func (e *Engine) processPartition(pid int, p *graph.Partition, js []*runJob) {
	h := e.cfg.Hier
	streams := h.Cost().ChannelStreams
	if streams <= 0 {
		streams = 1
	}
	lr := h.Load(structID(p), p.StructBytes, true)
	// The loader streams partitions in a known common order, so its
	// sequential prefetch saturates the channel (lr.Time/streams), and the
	// next load hides behind banked trigger/push time (prefetch credit).
	loadTime := lr.Time / streams
	visible := loadTime - e.prefetchCredit
	if visible < 0 {
		visible = 0
	}
	e.prefetchCredit -= loadTime - visible
	e.now += visible
	e.ClockStruct += visible
	share := loadTime / float64(len(js))
	for i, rj := range js {
		rj.m.AccessTime += share
		if i > 0 {
			// Each additional triggered job touches the cached copy:
			// free in time, but it is a real cache access (hit) that
			// hardware counters — and Fig. 11 — would observe.
			h.Load(structID(p), p.StructBytes, false)
		}
	}
	batchSize := e.cfg.Workers
	if batchSize < 1 {
		batchSize = 1
	}
	for start := 0; start < len(js); start += batchSize {
		end := start + batchSize
		if end > len(js) {
			end = len(js)
		}
		batch := js[start:end]
		var privAccess float64
		for _, rj := range batch {
			plr := h.Load(privateID(p, rj.ID), rj.PT.Bytes[pid], false)
			privAccess += plr.Time
			rj.m.AccessTime += plr.Time
		}
		computeElapsed := e.trigger(pid, batch)
		elapsed := privAccess / streams
		if computeElapsed > elapsed {
			elapsed = computeElapsed
		}
		e.now += elapsed
		e.ClockTrigger += elapsed
		e.prefetchCredit += elapsed
	}
	h.Unpin(structID(p))
}

// trigger concurrently processes one loaded partition for a batch of jobs on
// the worker pool, returning the virtual compute time of the phase. With
// straggler splitting each job's active range is chunked so idle cores help
// the heaviest job (Fig. 6); without it, each job's work stays on one core.
func (e *Engine) trigger(pid int, batch []*runJob) float64 {
	type task struct {
		rj     *runJob
		locals []uint32
		sc     exec.Scratch
		stats  exec.Stats
	}
	var tasks []*task
	jobLocals := make([][]uint32, len(batch))
	total := 0
	for i, rj := range batch {
		jobLocals[i] = rj.ActiveLocals(pid, nil)
		total += len(jobLocals[i])
	}
	split := !e.cfg.DisableStragglerSplit
	chunk := total/(e.cfg.Workers*2) + 1
	if chunk < 32 {
		chunk = 32
	}
	for i, rj := range batch {
		locals := jobLocals[i]
		if !split || len(locals) <= chunk {
			tasks = append(tasks, &task{rj: rj, locals: locals})
			continue
		}
		for lo := 0; lo < len(locals); lo += chunk {
			hi := lo + chunk
			if hi > len(locals) {
				hi = len(locals)
			}
			tasks = append(tasks, &task{rj: rj, locals: locals[lo:hi]})
		}
	}

	// Parallel apply phase: tasks touch disjoint vertex states.
	var next atomic.Int64
	workers := e.cfg.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				t.stats = t.rj.ApplyChunk(pid, t.locals, &t.sc)
			}
		}()
	}
	wg.Wait()

	// Merge phase: one goroutine per job folds its scratches in task
	// order (deterministic float accumulation).
	var mg sync.WaitGroup
	perJob := make([]exec.Stats, len(batch))
	for i, rj := range batch {
		var scs []*exec.Scratch
		for _, t := range tasks {
			if t.rj == rj {
				scs = append(scs, &t.sc)
				perJob[i].Add(t.stats)
			}
		}
		mg.Add(1)
		go func(rj *runJob, scs []*exec.Scratch) {
			defer mg.Done()
			rj.Merge(pid, scs...)
		}(rj, scs)
	}
	mg.Wait()

	// Virtual-time accounting.
	cost := e.cfg.Hier.Cost()
	var totalWork, maxWork float64
	for i, rj := range batch {
		w := cost.ComputeTime(perJob[i].Edges, perJob[i].Vertices)
		rj.m.ComputeTime += w
		rj.EdgesProcessed += perJob[i].Edges
		rj.VerticesApplied += perJob[i].Vertices
		totalWork += w
		if w > maxWork {
			maxWork = w
		}
	}
	var elapsed float64
	if split {
		elapsed = totalWork / float64(e.cfg.Workers)
	} else {
		// One core per job: the straggler dominates.
		elapsed = maxWork
	}
	e.busyCore += totalWork
	return elapsed
}

// finishIteration closes one job iteration: Algorithm 2 push with its data
// movement charged, then bookkeeping for completion.
func (e *Engine) finishIteration(rj *runJob) {
	if rj.Done {
		return
	}
	sum := rj.FinishIteration()
	h := e.cfg.Hier
	t := h.Cost().SyncTime(sum.Entries)
	for _, tp := range sum.TouchedParts {
		p := rj.PG.Parts[tp]
		plr := h.Load(privateID(p, rj.ID), rj.PT.Bytes[tp], false)
		t += plr.Time
	}
	e.now += t
	e.ClockPush += t
	e.prefetchCredit += t
	rj.m.AccessTime += t
	rj.m.SyncTime += t
	if rj.Done {
		rj.FinishTime = e.now
		rj.m.FinishAt = e.now
		rj.m.Iterations = rj.Iterations
		rj.m.Edges = rj.EdgesProcessed
		rj.m.Vertices = rj.VerticesApplied
		rj.m.SyncEntries = rj.SyncEntries
		e.finished = append(e.finished, rj)
	}
}
