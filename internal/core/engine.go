// Package core is the CGraph engine: the data-centric Load-Trigger-Pushing
// execution model of §3 driving concurrent iterative graph-processing jobs
// over one shared graph.
//
// Execution proceeds in rounds. A round snapshots, per job, the set of
// partitions its active vertices live in; the union is ordered by the Eq. 1
// scheduler and each partition is loaded into the (simulated) cache exactly
// once. Loading a partition triggers every job that needs it: the jobs'
// active vertices are processed concurrently on a real worker pool, with the
// straggler's vertex range split across idle workers (Fig. 6) and jobs
// batched when more jobs than workers share a partition (§3.2.3). A job that
// exhausts its round-set pushes (Algorithm 2), advances to its next
// iteration, and re-registers partitions for the next round — so jobs run in
// different iterations of their own algorithms while sharing every load.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cgraph/internal/exec"
	"cgraph/internal/graph"
	"cgraph/internal/memsim"
	"cgraph/internal/metrics"
	"cgraph/internal/pool"
	"cgraph/internal/sched"
	"cgraph/internal/span"
	"cgraph/internal/storage"
	"cgraph/internal/trace"
	"cgraph/model"
)

// ErrCancelled is the Err of a JobEvent for a job retired by Cancel (as
// opposed to one whose context expired, which carries the context's error).
var ErrCancelled = errors.New("core: job cancelled")

// JobState is the engine-side lifecycle of one submitted job.
type JobState uint8

const (
	// JobQueued: submitted, awaiting admission at the next round boundary.
	JobQueued JobState = iota
	// JobRunning: admitted into the round loop.
	JobRunning
	// JobDone: converged; results are available.
	JobDone
	// JobCancelled: retired by Cancel or an expired job context.
	JobCancelled
	// JobFailed: retired by the engine (exceeded the MaxRounds budget).
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobCancelled:
		return "cancelled"
	default:
		return "failed"
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s >= JobDone }

// JobEvent reports a job reaching a terminal state. Events fire from the
// goroutine driving Run or Serve, outside engine locks, in retirement order.
type JobEvent struct {
	JobID int
	State JobState
	// Metrics is populated for JobDone events.
	Metrics *metrics.JobMetrics
	// Err explains JobCancelled (ErrCancelled or the job context's error)
	// and JobFailed events; it is nil for JobDone.
	Err error
}

// JobProgress reports one completed job iteration: the running totals as
// of the iteration's closing push. Progress fires from the goroutine
// driving Run or Serve, outside engine locks, strictly before the job's
// terminal JobEvent.
type JobProgress struct {
	JobID int
	// Iteration is the number of completed iterations, 1-based.
	Iteration int
	// EdgesProcessed is the job's running edge total.
	EdgesProcessed int64
	// VirtualTimeUS is the engine's virtual clock at the iteration close.
	VirtualTimeUS float64
}

// Config tunes the engine.
type Config struct {
	// Workers is the number of cores (default runtime.GOMAXPROCS(0)).
	Workers int
	// Hier is the simulated memory hierarchy (default memsim.Unlimited,
	// i.e. library mode without capacity pressure).
	Hier *memsim.Hierarchy
	// Scheduler selects the partition-load order policy (default
	// sched.Priority, the one-level Eq. 1 order; sched.Static is the
	// Fig. 8 ablation; sched.TwoLevel groups correlated jobs before
	// applying Eq. 1 within each group).
	Scheduler sched.Kind
	// Balance is the task-granularity multiplier of the work-stealing
	// executor: a trigger batch is sliced into tasks of roughly
	// totalWeight/(Workers·Balance) scatter edges each (default 4).
	// Higher values cut finer tasks — better balance, more per-task
	// overhead.
	Balance float64
	// StaticChunking reverts the executor to the legacy skew-blind
	// vertex-count chunking (the pre-pool behaviour); kept as the
	// ablation/bench baseline for the degree-weighted slicing.
	StaticChunking bool
	// DisableStragglerSplit turns off the Fig. 6 load balancing, leaving
	// each job's partition work on a single core (ablation).
	DisableStragglerSplit bool
	// MaxRounds bounds the total rounds of a Run, and the per-job
	// iteration budget under Serve, as a safety net (default 1<<20).
	MaxRounds int
	// Label overrides the report's system name (default "CGraph").
	Label string
	// OnJobEvent, when set, is invoked for every job that reaches a
	// terminal state (done, cancelled, failed). It is called from the
	// Run/Serve goroutine with no engine locks held; implementations may
	// call back into the engine but must not block for long, since the
	// round loop waits on them.
	OnJobEvent func(JobEvent)
	// OnJobProgress, when set, is invoked after every completed job
	// iteration (the terminal JobEvent follows the final one). Same
	// calling discipline as OnJobEvent: round-loop goroutine, no engine
	// locks held, must not block for long.
	OnJobProgress func(JobProgress)
	// TraceDepth bounds the round-trace ring and the per-job timeline
	// length (0 disables tracing entirely; the round loop then skips all
	// per-round trace bookkeeping).
	TraceDepth int
	// Tracer, when set, receives distributed spans: one "job.round" span
	// per (job, round) and sampled "pool.task" spans, all parented to the
	// submission's span context. Nil disables span recording entirely.
	Tracer *span.Tracer
	// TaskSampleEvery records a "pool.task" span for one in every N
	// executor tasks of span-carrying jobs (0 defaults to 64; negative
	// disables task spans while keeping round spans and stolen counts).
	TaskSampleEvery int
}

type runJob struct {
	*exec.Job
	// remaining maps the UID of each partition version still to be loaded
	// this round to its index within the job's own snapshot.
	remaining map[int64]int
	m         *metrics.JobMetrics
	// ctx carries the job's cancellation/deadline; checked at round
	// boundaries (never mid-round).
	ctx context.Context
	// priority is the submission priority, fed to the scheduler so groups
	// carrying urgent jobs order their loads first.
	priority int
	// snapSeq is the series index of the snapshot the job bound to; the
	// engine holds a store reference under it until the job is terminal,
	// so retention GC never evicts a snapshot out from under a bound job.
	snapSeq int
	// span is the submission's span context: the parent under which the
	// engine records this job's "job.round" and "pool.task" spans. A zero
	// context (or a nil Config.Tracer) disables span recording for the job.
	span span.Context
	// spanJob is the service-level job ID the spans are attributed to.
	spanJob string
	// roundTasks counts executor tasks constructed for the job this round
	// (loop-goroutine only); roundStolen counts those that ran on a worker
	// other than their seed, incremented from pool workers via Task.Trace.
	roundTasks  int64
	roundStolen atomic.Int64
}

// Engine executes CGP jobs with the LTP model. It runs in two modes: the
// batch Run, which drains every submitted job and returns, and the resident
// Serve, which processes rounds while any job is active, idles when the
// queue is empty, and admits/retires jobs at round boundaries until its
// context is cancelled.
type Engine struct {
	cfg   Config
	store *storage.SnapshotStore
	sched *sched.Scheduler

	// mu guards pending, finished, state, cancelReq, nextID, snapObs,
	// lastSched, and the released counters — the fields shared between the
	// round loop and concurrent Submit / Cancel / Results / Stats callers.
	// jobs and the clocks below are touched only by the single goroutine
	// driving Run or Serve.
	mu        sync.Mutex
	pending   []*runJob
	nextID    int
	state     map[int]JobState
	cancelReq map[int]bool
	// snapObs queues snapshots added while the loop runs; the round loop
	// drains it so the scheduler (single-goroutine) can refit θ.
	snapObs []*graph.PGraph
	// lastSched summarizes the plan of the most recent round for the
	// control plane.
	lastSched SchedInfo
	// released compacts the state entries of Release-d jobs into counters
	// so ServeStats stays accurate while the state map stays bounded.
	releasedDone, releasedCancelled, releasedFailed int

	// wake nudges an idle Serve loop after Submit or Cancel.
	wake chan struct{}
	// driving excludes concurrent Run/Serve calls.
	driving atomic.Bool

	// rounds and nowBits mirror the loop-private round counter and virtual
	// clock for lock-free Stats reads.
	rounds  atomic.Int64
	nowBits atomic.Uint64

	// pool is the work-stealing executor shared by the compute and merge
	// phases of every round.
	pool *pool.Pool
	// Cumulative executor counters (atomic mirrors for lock-free reads),
	// plus their loop-private per-round accumulators (rt*).
	execTasks   atomic.Int64
	execSteals  atomic.Int64
	execStolen  atomic.Int64
	execSkipped atomic.Int64
	imbBits     atomic.Uint64
	rtTasks     int64
	rtSteals    int64
	rtStolen    int64
	rtSkipped   int64
	rtImb       float64
	// Fresh-state accounting: cumulative eager folds (atomic mirror plus
	// the loop-private per-round accumulator), delayed-mode barrier
	// counters, and per-mode submission counts indexed by exec.Mode.
	execFresh      atomic.Int64
	rtFresh        int64
	execBarSkipped atomic.Int64
	execBarForced  atomic.Int64
	modeJobs       [3]atomic.Int64
	// taskSeq numbers span-eligible executor tasks across rounds for the
	// 1-in-N "pool.task" sampling; loop-goroutine only (sampling is decided
	// at task construction, not execution).
	taskSeq int64

	jobs []*runJob

	now      float64
	busyCore float64
	// cPrev holds last round's C(U) keyed by partition-version UID, so
	// snapshots with any partition count feed the scheduler correctly.
	cPrev map[int64]float64

	// Clock attribution (diagnostics): how much of the virtual makespan
	// went to structure loads, trigger phases, and pushes.
	ClockStruct  float64
	ClockTrigger float64
	ClockPush    float64

	// tracer records per-round and per-job traces when Config.TraceDepth
	// is set; nil when tracing is disabled. The recorder is internally
	// locked, so control-plane reads race-freely with the round loop.
	tracer *trace.Recorder
	// roundHist observes the wall-clock duration of every round (always
	// on: two clock reads and one bucket increment per round).
	roundHist *metrics.Histogram

	// prefetchCredit is the trigger time of the previous partition that
	// the loader can hide the next structure load behind: the common-order
	// stream of the LTP model makes the next partition known in advance,
	// so it is fetched into the reserve buffer (the b term of the Pg
	// formula) while cores process the current one.
	prefetchCredit float64

	finished []*runJob
}

// New builds an engine over the snapshot store. Defaults are applied for
// zero-valued Config fields.
func New(cfg Config, store *storage.SnapshotStore) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Hier == nil {
		cfg.Hier = memsim.Unlimited()
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 1 << 20
	}
	if cfg.Balance <= 0 {
		cfg.Balance = 4
	}
	if cfg.Label == "" {
		cfg.Label = "CGraph"
	}
	if cfg.TaskSampleEvery == 0 {
		cfg.TaskSampleEvery = 64
	}
	e := &Engine{
		cfg:       cfg,
		store:     store,
		sched:     sched.New(cfg.Scheduler),
		cPrev:     make(map[int64]float64),
		state:     make(map[int]JobState),
		cancelReq: make(map[int]bool),
		wake:      make(chan struct{}, 1),
		tracer:    trace.New(cfg.TraceDepth),
		roundHist: metrics.NewHistogram(metrics.LatencyBuckets()),
		pool:      pool.New(cfg.Workers),
	}
	e.imbBits.Store(math.Float64bits(1))
	// Spans carry virtual-time edges alongside their wall stamps; the
	// tracer reads the engine clock through its atomic mirror, so the
	// closure is safe from any goroutine.
	cfg.Tracer.SetVirtualClock(e.Now)
	for _, snap := range store.Snapshots() {
		e.sched.ObserveSnapshot(snap.PG)
	}
	e.lastSched = SchedInfo{Policy: cfg.Scheduler.String(), Theta: e.sched.Theta(), Refits: e.sched.Refits()}
	return e
}

// NewSingle wraps a plain partitioned graph as a one-snapshot store.
func NewSingle(cfg Config, pg *graph.PGraph) *Engine {
	return New(cfg, storage.NewSnapshotStore(pg, 0))
}

// Submit registers a job. arrivalTS selects the snapshot: the job binds to
// the newest snapshot with timestamp ≤ arrivalTS (§3.2.1). Submit may be
// called before Run or concurrently while Run executes; runtime submissions
// are admitted at the next round boundary (Algorithm 3 "allows to add new
// jobs into SJobs at runtime"). It returns the job ID.
func (e *Engine) Submit(prog model.Program, arrivalTS int64) int {
	return e.SubmitCtx(context.Background(), prog, arrivalTS)
}

// SubmitCtx is Submit with a job-scoped context: when ctx is cancelled or
// its deadline passes, the job is retired at the next round boundary with a
// JobCancelled event carrying ctx's error.
func (e *Engine) SubmitCtx(ctx context.Context, prog model.Program, arrivalTS int64) int {
	return e.SubmitWith(ctx, prog, SubmitOpts{Arrival: arrivalTS})
}

// SubmitOpts carries the optional envelope of a submission.
type SubmitOpts struct {
	// Arrival selects the snapshot: the job binds to the newest snapshot
	// with timestamp ≤ Arrival.
	Arrival int64
	// Priority feeds the scheduler's group ordering; higher runs first.
	Priority int
	// Span is the parent span context for the job's engine-side spans; a
	// zero context leaves span recording off for this job.
	Span span.Context
	// SpanJob is the service-level job ID span records are attributed to.
	SpanJob string
	// Mode selects the job's execution discipline (default exec.ModeBSP,
	// the byte-stable bulk-synchronous path).
	Mode exec.Mode
	// Staleness bounds delayed-mode barrier skipping (0 = exec default;
	// ignored outside exec.ModeDelayed).
	Staleness int
}

// SubmitWith is SubmitCtx with the full submission envelope. The job takes
// a reference on the snapshot it binds to, released when it is retired, so
// snapshot retention GC cannot evict the version under a live job.
func (e *Engine) SubmitWith(ctx context.Context, prog model.Program, opts SubmitOpts) int {
	e.mu.Lock()
	id := e.nextID
	e.nextID++
	snap := e.store.Acquire(opts.Arrival)
	j := exec.NewJob(id, prog, snap.PG)
	j.Mode = opts.Mode
	j.Staleness = opts.Staleness
	if int(opts.Mode) < len(e.modeJobs) {
		e.modeJobs[opts.Mode].Add(1)
	}
	rj := &runJob{
		Job:       j,
		remaining: make(map[int64]int),
		m:         &metrics.JobMetrics{JobID: id, Name: prog.Name()},
		ctx:       ctx,
		priority:  opts.Priority,
		snapSeq:   snap.Seq,
		span:      opts.Span,
		spanJob:   opts.SpanJob,
	}
	e.pending = append(e.pending, rj)
	e.state[id] = JobQueued
	e.mu.Unlock()
	e.signalWake()
	return id
}

// Cancel requests that the job be retired at the next round boundary. It is
// an error to cancel an unknown or already-terminal job.
func (e *Engine) Cancel(jobID int) error {
	e.mu.Lock()
	st, ok := e.state[jobID]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("core: cancel: unknown job %d", jobID)
	}
	if st.Terminal() {
		e.mu.Unlock()
		return fmt.Errorf("core: cancel: job %d already %s", jobID, st)
	}
	e.cancelReq[jobID] = true
	e.mu.Unlock()
	e.signalWake()
	return nil
}

func (e *Engine) signalWake() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

func (e *Engine) admitPending() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rj := range e.pending {
		rj.SubmitTime = e.now
		rj.m.SubmitAt = e.now
		e.jobs = append(e.jobs, rj)
		e.state[rj.ID] = JobRunning
	}
	e.pending = e.pending[:0]
}

// reapRetired removes cancelled, context-expired, and (under Serve)
// over-budget jobs from the pending queue and the round loop, firing their
// terminal events. Called only at round boundaries, so a reaped job is
// never mid-round.
func (e *Engine) reapRetired(enforceBudget bool) {
	var events []JobEvent
	e.mu.Lock()
	keepPending := e.pending[:0]
	for _, rj := range e.pending {
		if ev, dead := e.retirementLocked(rj, false); dead {
			events = append(events, ev)
			continue
		}
		keepPending = append(keepPending, rj)
	}
	e.pending = keepPending
	keepJobs := e.jobs[:0]
	for _, rj := range e.jobs {
		if ev, dead := e.retirementLocked(rj, enforceBudget); dead {
			events = append(events, ev)
			continue
		}
		keepJobs = append(keepJobs, rj)
	}
	e.jobs = keepJobs
	e.mu.Unlock()
	for _, ev := range events {
		if e.tracer != nil {
			e.tracer.Retire(ev.JobID, ev.State.String())
		}
		e.fireEvent(ev)
	}
}

func (e *Engine) retirementLocked(rj *runJob, enforceBudget bool) (JobEvent, bool) {
	var err error
	state := JobCancelled
	switch {
	case e.cancelReq[rj.ID]:
		err = ErrCancelled
	case rj.ctx != nil && rj.ctx.Err() != nil:
		err = rj.ctx.Err()
	case enforceBudget && rj.Iterations >= e.cfg.MaxRounds:
		state = JobFailed
		err = fmt.Errorf("core: job %d exceeded %d iterations without convergence", rj.ID, e.cfg.MaxRounds)
	default:
		return JobEvent{}, false
	}
	delete(e.cancelReq, rj.ID)
	e.state[rj.ID] = state
	e.store.Release(rj.snapSeq)
	return JobEvent{JobID: rj.ID, State: state, Err: err}, true
}

func (e *Engine) fireEvent(ev JobEvent) {
	if e.cfg.OnJobEvent != nil {
		e.cfg.OnJobEvent(ev)
	}
}

func (e *Engine) acquireLoop(mode string) error {
	if !e.driving.CompareAndSwap(false, true) {
		return fmt.Errorf("core: %s: engine round loop already active", mode)
	}
	return nil
}

// Run executes all submitted jobs to convergence and returns the report.
// Jobs cancelled (or context-expired) before convergence are retired
// between rounds and excluded from the report.
func (e *Engine) Run() (*metrics.RunReport, error) {
	if err := e.acquireLoop("run"); err != nil {
		return nil, err
	}
	defer e.driving.Store(false)
	wall := time.Now() //cgraph:wallclock RunReport.WallClock is real elapsed time, not virtual time
	rounds := 0
	for {
		e.reapRetired(false)
		e.admitPending()
		if len(e.jobs) == 0 {
			break
		}
		if rounds++; rounds > e.cfg.MaxRounds {
			return nil, fmt.Errorf("core: exceeded %d rounds without convergence", e.cfg.MaxRounds)
		}
		e.round()
	}
	rep := &metrics.RunReport{
		System:       e.cfg.Label,
		Workers:      e.cfg.Workers,
		Makespan:     e.now,
		BusyCoreTime: e.busyCore,
		Counters:     e.cfg.Hier.Counters(),
		WallClock:    time.Since(wall), //cgraph:wallclock wall stamp paired with the Run start above
	}
	e.mu.Lock()
	for _, rj := range e.finished {
		rep.Jobs = append(rep.Jobs, *rj.m)
	}
	e.mu.Unlock()
	return rep, nil
}

// Serve runs the engine as a resident service: it processes rounds while
// any job is active, parks on the wake channel when the queue drains, and
// admits newly submitted jobs at round boundaries. Cancel requests, expired
// job contexts, and jobs exceeding the MaxRounds iteration budget are
// retired between rounds. Serve returns nil when ctx is cancelled (a
// graceful stop: in-flight jobs stay resident and a later Run or Serve
// resumes them) and an error only on misuse.
func (e *Engine) Serve(ctx context.Context) error {
	if err := e.acquireLoop("serve"); err != nil {
		return err
	}
	defer e.driving.Store(false)
	for {
		e.reapRetired(true)
		e.admitPending()
		if ctx.Err() != nil {
			return nil
		}
		if len(e.jobs) == 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-e.wake:
			}
			continue
		}
		e.round()
	}
}

// Results returns the converged per-vertex values of the given job once it
// has finished. It is safe to call while the engine serves.
func (e *Engine) Results(jobID int) ([]float64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rj := range e.finished {
		if rj.ID == jobID {
			return rj.Job.Results(), nil
		}
	}
	if st, ok := e.state[jobID]; ok {
		return nil, fmt.Errorf("core: job %d is %s, results unavailable", jobID, st)
	}
	return nil, fmt.Errorf("core: job %d not finished, released, or unknown", jobID)
}

// Release frees a terminal job's engine-side state: for finished jobs the
// private table, activity bitsets, and result backing, and for every
// terminal job its lifecycle-map entry, which is compacted into aggregate
// counters so ServeStats stays accurate while the engine's memory stays
// bounded as jobs flow through a long-lived service. Released jobs drop out
// of later Run reports and report no per-job state; releasing an unfinished
// or unknown job is a no-op.
func (e *Engine) Release(jobID int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, rj := range e.finished {
		if rj.ID == jobID {
			e.finished = append(e.finished[:i], e.finished[i+1:]...)
			delete(e.state, jobID)
			e.releasedDone++
			return
		}
	}
	switch st, ok := e.state[jobID]; {
	case !ok:
	case st == JobCancelled:
		delete(e.state, jobID)
		e.releasedCancelled++
	case st == JobFailed:
		delete(e.state, jobID)
		e.releasedFailed++
	}
}

// JobState reports the engine-side lifecycle state of a submitted job.
func (e *Engine) JobState(jobID int) (JobState, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.state[jobID]
	return st, ok
}

// AddSnapshot appends a newer graph version to the snapshot store, safely
// with respect to a concurrent Serve loop; jobs submitted afterwards with a
// matching arrival timestamp bind to it. The scheduler observes the new
// version at the next round boundary (refitting θ if its degrees demand it).
func (e *Engine) AddSnapshot(pg *graph.PGraph, timestamp int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.store.Add(pg, timestamp); err != nil {
		return err
	}
	e.snapObs = append(e.snapObs, pg)
	return nil
}

// Stats is a point-in-time snapshot of the engine's service counters.
type Stats struct {
	Queued    int
	Running   int
	Done      int
	Cancelled int
	Failed    int
	// Rounds is the number of LTP rounds processed so far.
	Rounds int64
	// VirtualTimeUS is the engine's virtual clock in simulated microseconds.
	VirtualTimeUS float64
}

// ServeStats reports current job-state counts and loop progress. Safe to
// call concurrently with Run or Serve. Released jobs stay counted in their
// terminal bucket.
func (e *Engine) ServeStats() Stats {
	s := Stats{
		Rounds:        e.rounds.Load(),
		VirtualTimeUS: math.Float64frombits(e.nowBits.Load()),
	}
	e.mu.Lock()
	s.Done += e.releasedDone
	s.Cancelled += e.releasedCancelled
	s.Failed += e.releasedFailed
	for _, st := range e.state {
		switch st {
		case JobQueued:
			s.Queued++
		case JobRunning:
			s.Running++
		case JobDone:
			s.Done++
		case JobCancelled:
			s.Cancelled++
		case JobFailed:
			s.Failed++
		}
	}
	e.mu.Unlock()
	return s
}

// Job returns the finished exec job (testing/inspection).
func (e *Engine) Job(jobID int) (*exec.Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rj := range e.finished {
		if rj.ID == jobID {
			return rj.Job, true
		}
	}
	return nil, false
}

// Now returns the engine's virtual clock in microseconds, as of the last
// round boundary. It reads the atomic mirror of the loop-private clock, so
// it is safe to call concurrently with Run or Serve.
func (e *Engine) Now() float64 { return math.Float64frombits(e.nowBits.Load()) }

// SchedGroup reports one correlation group of the last scheduled round.
type SchedGroup struct {
	// Jobs lists the engine job IDs grouped together.
	Jobs []int
	// Priority is the group's aggregate (summed) job priority, the primary
	// inter-group ordering key.
	Priority int
	// Parts is the unit load order: each partition's index within its own
	// snapshot, parallel to UIDs.
	Parts []int
	// UIDs identifies the partition versions loaded, in load order.
	UIDs []int64
	// MakespanUS attributes the round's virtual time to this group: how
	// much the clock advanced while its units loaded and triggered.
	MakespanUS float64
}

// SchedInfo is a point-in-time snapshot of the scheduler's state: the
// policy, the current θ fit, and the group/load order chosen in the most
// recent round.
type SchedInfo struct {
	Policy string
	Theta  float64
	Refits int
	// Round is the round the plan below was computed for (0 before any).
	Round  int64
	Groups []SchedGroup
}

// SchedInfo reports the scheduler's latest plan. Safe to call concurrently
// with Run or Serve: recordPlan replaces lastSched wholesale and published
// plans are never mutated in place, so the shared slices are immutable.
func (e *Engine) SchedInfo() SchedInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastSched
}

// round is one pass of the LTP loop: plan the round's scheduling units —
// each a (snapshot, partition) version keyed by UID, so jobs bound to
// snapshots with any partition count coexist — load each unit once in the
// planned group/priority order, trigger its jobs, and close iterations for
// jobs whose round-set is exhausted.
func (e *Engine) round() {
	roundStart := time.Now() //cgraph:wallclock round wall-duration histogram measures real time per round
	virtStart := e.now
	e.drainSnapshotObservations()
	foot := make([]sched.JobFootprint, 0, len(e.jobs))
	byID := make(map[int]*runJob, len(e.jobs))
	// pre snapshots each job's counters at round start so the tracer can
	// attribute this round's deltas; only populated when tracing is on.
	var pre []jobPreRound
	e.rtTasks, e.rtSteals, e.rtStolen, e.rtSkipped, e.rtImb = 0, 0, 0, 0, 1
	e.rtFresh = 0
	for _, rj := range e.jobs {
		byID[rj.ID] = rj
		rj.remaining = make(map[int64]int)
		jf := sched.JobFootprint{JobID: rj.ID, Priority: rj.priority, Fresh: rj.Mode != exec.ModeBSP}
		activeParts := rj.PT.ActiveParts()
		for _, pid := range activeParts {
			p := rj.PG.Parts[pid]
			rj.remaining[p.UID] = pid
			jf.Units = append(jf.Units, p)
			jf.Active = append(jf.Active, rj.PT.ActiveCount[pid])
		}
		// Converged regions: partitions with an empty frontier never
		// become scheduling units, let alone tasks.
		skipped := len(rj.PG.Parts) - len(activeParts)
		e.rtSkipped += int64(skipped)
		foot = append(foot, jf)
		rj.roundTasks = 0
		rj.roundStolen.Store(0)
		if e.tracer != nil || e.cfg.Tracer != nil {
			pre = append(pre, jobPreRound{
				rj:      rj,
				parts:   len(rj.remaining),
				iters:   rj.Iterations,
				access:  rj.m.AccessTime,
				compute: rj.m.ComputeTime,
				skipped: skipped,
				fresh:   rj.FreshFolds,
			})
		}
		// Jobs admitted with no active vertices (degenerate programs)
		// finish immediately below.
	}
	plan := e.sched.Plan(foot, e.cPrev)

	// spans attributes the round's virtual-time advance to each group
	// (structure loads, triggers, and the pushes of iterations closed while
	// the group's units processed), for the /metrics makespan breakdown.
	spans := make([]float64, len(plan))
	for gi, g := range plan {
		groupStart := e.now
		for _, u := range g.Units {
			var items []unitJob
			for _, id := range u.Jobs {
				rj := byID[id]
				if rj.Done {
					continue
				}
				pid, ok := rj.remaining[u.Part.UID]
				if !ok {
					continue
				}
				items = append(items, unitJob{rj: rj, pid: pid})
			}
			if len(items) == 0 {
				continue
			}
			e.processUnit(u.Part, items)
			for _, it := range items {
				delete(it.rj.remaining, u.Part.UID)
				if len(it.rj.remaining) == 0 {
					e.finishIteration(it.rj)
				}
			}
		}
		spans[gi] = e.now - groupStart
	}

	// Close iterations for jobs that had nothing to do this round and
	// collect next-round C(U) statistics, keyed by partition version.
	var still []*runJob
	for _, rj := range e.jobs {
		if !rj.Done && len(rj.remaining) == 0 && !rj.PT.HasActive() {
			e.finishIteration(rj)
		}
		if rj.Done {
			continue
		}
		still = append(still, rj)
	}
	clear(e.cPrev)
	for _, rj := range still {
		for pid, s := range rj.TakeDeltaStats() {
			if s != 0 {
				e.cPrev[rj.PG.Parts[pid].UID] += s
			}
		}
	}
	e.jobs = still
	e.execTasks.Add(e.rtTasks)
	e.execSteals.Add(e.rtSteals)
	e.execStolen.Add(e.rtStolen)
	e.execSkipped.Add(e.rtSkipped)
	e.execFresh.Add(e.rtFresh)
	e.imbBits.Store(math.Float64bits(e.rtImb))
	e.recordPlan(plan, spans)
	wall := time.Since(roundStart) //cgraph:wallclock wall stamp paired with the round start above
	e.roundHist.Observe(wall.Seconds())
	if e.tracer != nil {
		e.recordTrace(roundStart, wall, plan, spans, pre)
	}
	if e.cfg.Tracer != nil {
		e.recordRoundSpans(roundStart, wall, plan, spans, pre, virtStart)
	}
	e.rounds.Add(1)
	e.nowBits.Store(math.Float64bits(e.now))
}

// jobPreRound is a job's counter snapshot at round start, for trace deltas.
type jobPreRound struct {
	rj              *runJob
	parts, iters    int
	access, compute float64
	// skipped is the job's converged-partition count this round (frontier
	// empty, excluded before scheduling).
	skipped int
	// fresh is the job's cumulative fresh-fold count at round start.
	fresh int64
}

// traceMode renders a job's execution mode for trace records: empty for
// default-BSP jobs, so pre-mode records and wire payloads are unchanged.
func traceMode(m exec.Mode) string {
	if m == exec.ModeBSP {
		return ""
	}
	return m.String()
}

// recordTrace folds one finished round into the trace recorder.
func (e *Engine) recordTrace(start time.Time, wall time.Duration, plan []sched.Group, spans []float64, pre []jobPreRound) {
	rec := trace.Round{
		Round:         e.rounds.Load() + 1,
		Start:         start,
		Wall:          wall,
		VirtualTimeUS: e.now,
		Policy:        e.cfg.Scheduler.String(),
		Theta:         e.sched.Theta(),
		Tasks:         e.rtTasks,
		Steals:        e.rtSteals,
		Skipped:       e.rtSkipped,
		Fresh:         e.rtFresh,
	}
	for gi, g := range plan {
		rec.Groups = append(rec.Groups, trace.Group{
			Jobs:       g.Jobs,
			Priority:   g.Priority,
			Units:      len(g.Units),
			MakespanUS: spans[gi],
		})
	}
	for _, p := range pre {
		rec.Jobs = append(rec.Jobs, trace.JobRound{
			Job:           p.rj.ID,
			Round:         rec.Round,
			Wall:          wall,
			Parts:         p.parts,
			Pushes:        p.rj.Iterations - p.iters,
			Mode:          traceMode(p.rj.Mode),
			Fresh:         p.rj.FreshFolds - p.fresh,
			AccessUS:      p.rj.m.AccessTime - p.access,
			ComputeUS:     p.rj.m.ComputeTime - p.compute,
			VirtualTimeUS: e.now,
		})
	}
	e.tracer.RecordRound(rec)
}

// recordRoundSpans retro-records one "job.round" span per span-carrying job
// that participated in the finished round. The spans share the round's wall
// edges (one start stamp, one duration) and virtual edges, and carry the
// job's per-round deltas as attributes — the raw material of the per-job
// resource attribution the service computes from the span store.
func (e *Engine) recordRoundSpans(start time.Time, wall time.Duration, plan []sched.Group, spans []float64, pre []jobPreRound, virtStart float64) {
	round := e.rounds.Load() + 1
	var jobGroup map[int]int
	for _, p := range pre {
		rj := p.rj
		if !rj.span.Valid() {
			continue
		}
		if jobGroup == nil {
			jobGroup = make(map[int]int, len(plan))
			for gi, g := range plan {
				for _, id := range g.Jobs {
					jobGroup[id] = gi
				}
			}
		}
		attrs := []span.Attr{
			span.Int("round", round),
			span.Int("parts", int64(p.parts)),
			span.Int("pushes", int64(rj.Iterations-p.iters)),
			span.Float("access_us", rj.m.AccessTime-p.access),
			span.Float("compute_us", rj.m.ComputeTime-p.compute),
			span.Int("tasks", rj.roundTasks),
			span.Int("stolen", rj.roundStolen.Load()),
			span.Int("skipped_parts", int64(p.skipped)),
		}
		if rj.Mode != exec.ModeBSP {
			attrs = append(attrs,
				span.Str("exec_mode", rj.Mode.String()),
				span.Int("fresh_folds", rj.FreshFolds-p.fresh),
			)
		}
		if gi, ok := jobGroup[rj.ID]; ok {
			attrs = append(attrs, span.Float("group_makespan_us", spans[gi]))
		}
		e.cfg.Tracer.Record(span.Data{
			Trace:          rj.span.Trace,
			Parent:         rj.span.Span,
			Name:           "job.round",
			Job:            rj.spanJob,
			StartWall:      start,
			EndWall:        start.Add(wall),
			StartVirtualUS: virtStart,
			EndVirtualUS:   e.now,
			Attrs:          attrs,
		})
	}
}

// RoundTraces returns up to limit of the most recent round-trace records
// (oldest first), or nil when tracing is disabled.
func (e *Engine) RoundTraces(limit int) []trace.Round {
	if e.tracer == nil {
		return nil
	}
	return e.tracer.Rounds(limit)
}

// JobTrace returns the round-by-round timeline recorded for a job — live
// while it runs, retained after it retires — or false when tracing is
// disabled or the timeline has been evicted from the terminal ring.
func (e *Engine) JobTrace(jobID int) (trace.Timeline, bool) {
	if e.tracer == nil {
		return trace.Timeline{}, false
	}
	return e.tracer.Job(jobID)
}

// TraceDepth reports the configured trace ring depth (0 = disabled).
func (e *Engine) TraceDepth() int { return e.cfg.TraceDepth }

// RoundDurations returns the wall-clock round-duration histogram.
func (e *Engine) RoundDurations() metrics.HistogramSnapshot {
	return e.roundHist.Snapshot()
}

// drainSnapshotObservations feeds snapshots added since the last round to
// the scheduler, on the loop goroutine, so θ refits for new versions.
func (e *Engine) drainSnapshotObservations() {
	e.mu.Lock()
	obs := e.snapObs
	e.snapObs = nil
	e.mu.Unlock()
	for _, pg := range obs {
		e.sched.ObserveSnapshot(pg)
	}
}

// recordPlan publishes the round's chosen groups, load order, and per-group
// makespan attribution for the control plane.
func (e *Engine) recordPlan(plan []sched.Group, spans []float64) {
	info := SchedInfo{
		Policy: e.cfg.Scheduler.String(),
		Theta:  e.sched.Theta(),
		Refits: e.sched.Refits(),
		Round:  e.rounds.Load() + 1,
	}
	for gi, g := range plan {
		sg := SchedGroup{Jobs: g.Jobs, Priority: g.Priority, MakespanUS: spans[gi]}
		for _, u := range g.Units {
			sg.Parts = append(sg.Parts, u.Part.ID)
			sg.UIDs = append(sg.UIDs, u.Part.UID)
		}
		info.Groups = append(info.Groups, sg)
	}
	e.mu.Lock()
	e.lastSched = info
	e.mu.Unlock()
}

func structID(p *graph.Partition) memsim.ItemID {
	return memsim.ItemID{Kind: memsim.Struct, UID: p.UID, Job: -1}
}

func privateID(p *graph.Partition, jobID int) memsim.ItemID {
	return memsim.ItemID{Kind: memsim.Private, UID: p.UID, Job: int32(jobID)}
}

// unitJob binds one triggered job to its view of a scheduling unit: pid is
// the partition's index within the job's own snapshot (private tables are
// laid out per snapshot, so the index is job-local).
type unitJob struct {
	rj  *runJob
	pid int
}

// processUnit loads one partition version and triggers its jobs, batching
// when the job count exceeds the worker count. The structure load is serial
// (one loader stream), but within the trigger phase each core pulls its
// job's private-table slice itself, so private access overlaps both across
// jobs (up to the channel's stream capacity) and with the vertex processing
// of jobs already running.
func (e *Engine) processUnit(p *graph.Partition, items []unitJob) {
	h := e.cfg.Hier
	streams := h.Cost().ChannelStreams
	if streams <= 0 {
		streams = 1
	}
	lr := h.Load(structID(p), p.StructBytes, true)
	// The loader streams partitions in a known common order, so its
	// sequential prefetch saturates the channel (lr.Time/streams), and the
	// next load hides behind banked trigger/push time (prefetch credit).
	loadTime := lr.Time / streams
	visible := loadTime - e.prefetchCredit
	if visible < 0 {
		visible = 0
	}
	e.prefetchCredit -= loadTime - visible
	e.now += visible
	e.ClockStruct += visible
	share := loadTime / float64(len(items))
	for i, it := range items {
		it.rj.m.AccessTime += share
		if i > 0 {
			// Each additional triggered job touches the cached copy:
			// free in time, but it is a real cache access (hit) that
			// hardware counters — and Fig. 11 — would observe.
			h.Load(structID(p), p.StructBytes, false)
		}
	}
	batchSize := e.cfg.Workers
	if batchSize < 1 {
		batchSize = 1
	}
	for start := 0; start < len(items); start += batchSize {
		end := start + batchSize
		if end > len(items) {
			end = len(items)
		}
		batch := items[start:end]
		var privAccess float64
		for _, it := range batch {
			plr := h.Load(privateID(p, it.rj.ID), it.rj.PT.Bytes[it.pid], false)
			privAccess += plr.Time
			it.rj.m.AccessTime += plr.Time
		}
		computeElapsed := e.trigger(batch)
		elapsed := privAccess / streams
		if computeElapsed > elapsed {
			elapsed = computeElapsed
		}
		e.now += elapsed
		e.ClockTrigger += elapsed
		e.prefetchCredit += elapsed
	}
	h.Unpin(structID(p))
}

// triggerTask is one executor task of a trigger batch: a degree-weighted
// slice of a job's active frontier (frontier mode) or a fixed-size chunk of
// its materialized active locals (static mode), with its private scratch
// and result stats.
type triggerTask struct {
	rj     *runJob
	pid    int
	weight int64
	r      exec.Range
	locals []uint32
	sc     exec.Scratch
	stats  exec.Stats
}

// trigger processes one loaded partition version for a batch of jobs on the
// shared work-stealing pool, returning the virtual compute time of the
// phase. Each item carries its job-local partition index. With straggler
// splitting each job's frontier is sliced into edge-weighted tasks so idle
// cores steal from the heaviest job (Fig. 6 generalized); without it, each
// job's work stays one task.
func (e *Engine) trigger(batch []unitJob) float64 {
	split := !e.cfg.DisableStragglerSplit
	var tasks []*triggerTask
	if e.cfg.StaticChunking {
		tasks = e.staticTasks(batch, split)
	} else {
		tasks = e.frontierTasks(batch, split)
	}

	// Apply phase: BSP tasks touch disjoint vertex states, so they are
	// free to run on any worker. Fresh-state (async/delayed) jobs
	// additionally read neighbor state written earlier in the same sweep,
	// so their per-(job, partition) subtasks — emitted contiguously and in
	// block order by the task builders — are chained into one sequenced
	// pool task: the block order is preserved on a single worker while
	// distinct jobs and partitions still balance across the pool.
	ptasks := make([]pool.Task, 0, len(tasks))
	for i := 0; i < len(tasks); {
		t := tasks[i]
		if t.rj.Mode == exec.ModeBSP {
			pt := e.applyTask(t)
			if e.cfg.Tracer != nil && t.rj.span.Valid() {
				pt.Trace = e.taskTrace(t.rj, t.weight)
			}
			ptasks = append(ptasks, pt)
			t.rj.roundTasks++
			i++
			continue
		}
		start := i
		for i < len(tasks) && tasks[i].rj == t.rj && tasks[i].pid == t.pid {
			i++
		}
		sub := make([]pool.Task, 0, i-start)
		for _, ft := range tasks[start:i] {
			sub = append(sub, e.applyTask(ft))
		}
		ct := pool.Chain(sub)
		if e.cfg.Tracer != nil && t.rj.span.Valid() {
			ct.Trace = e.taskTrace(t.rj, ct.Weight)
		}
		ptasks = append(ptasks, ct)
		t.rj.roundTasks++
	}
	applySt := e.pool.Run(ptasks)

	// Merge phase on the same bounded pool — one task per job folds its
	// scratches in task order (deterministic float accumulation) — instead
	// of one unbounded goroutine per job.
	perJob := make([]exec.Stats, len(batch))
	mtasks := make([]pool.Task, 0, len(batch))
	for i, it := range batch {
		var scs []*exec.Scratch
		var w int64
		for _, t := range tasks {
			if t.rj == it.rj {
				scs = append(scs, &t.sc)
				perJob[i].Add(t.stats)
				w += int64(t.sc.Len())
			}
		}
		if len(scs) == 0 {
			continue
		}
		rj, pid, scs := it.rj, it.pid, scs
		mtasks = append(mtasks, pool.Task{Weight: w, Run: func(int) {
			rj.Merge(pid, scs...)
		}})
	}
	mergeSt := e.pool.Run(mtasks)

	// Virtual-time accounting: the phase takes the makespan lower bound of
	// the realized task set — perfect rebalance (totalWork/Workers) unless
	// a single indivisible task (a hub vertex's scatter, or a fresh-state
	// chain, which is sequenced onto one worker by construction) exceeds
	// it. Pricing the whole chain as one unit keeps async virtual time
	// honestly comparable to BSP.
	cost := e.cfg.Hier.Cost()
	var totalWork, maxWork, maxTask float64
	for i, it := range batch {
		w := cost.ComputeTime(perJob[i].Edges, perJob[i].Vertices)
		it.rj.m.ComputeTime += w
		it.rj.EdgesProcessed += perJob[i].Edges
		it.rj.VerticesApplied += perJob[i].Vertices
		it.rj.FreshFolds += perJob[i].Fresh
		e.rtFresh += perJob[i].Fresh
		totalWork += w
		if w > maxWork {
			maxWork = w
		}
	}
	for i := 0; i < len(tasks); {
		t := tasks[i]
		st := t.stats
		i++
		if t.rj.Mode != exec.ModeBSP {
			for i < len(tasks) && tasks[i].rj == t.rj && tasks[i].pid == t.pid {
				st.Add(tasks[i].stats)
				i++
			}
		}
		if w := cost.ComputeTime(st.Edges, st.Vertices); w > maxTask {
			maxTask = w
		}
	}
	var elapsed float64
	if split {
		elapsed = totalWork / float64(e.cfg.Workers)
		if maxTask > elapsed {
			elapsed = maxTask
		}
	} else {
		// One core per job: the straggler dominates.
		elapsed = maxWork
	}
	e.busyCore += totalWork

	e.rtTasks += applySt.Tasks + mergeSt.Tasks
	e.rtSteals += applySt.Steals + mergeSt.Steals
	e.rtStolen += applySt.Stolen + mergeSt.Stolen
	if imb := applySt.Imbalance(e.cfg.Workers); imb > e.rtImb {
		e.rtImb = imb
	}
	return elapsed
}

// applyTask builds the pool task body for one trigger subtask, picking the
// BSP or fresh-state apply variant by the job's mode and the configured
// decomposition. Trace hooks are attached by the caller (per task for BSP,
// per chain for fresh-state jobs).
func (e *Engine) applyTask(t *triggerTask) pool.Task {
	fresh := t.rj.Mode != exec.ModeBSP
	var run func(int)
	switch {
	case e.cfg.StaticChunking && fresh:
		run = func(int) { t.stats = t.rj.ApplyChunkFresh(t.pid, t.locals, &t.sc) }
	case e.cfg.StaticChunking:
		run = func(int) { t.stats = t.rj.ApplyChunk(t.pid, t.locals, &t.sc) }
	case fresh:
		run = func(int) { t.stats = t.rj.ApplyRangeFresh(t.pid, t.r, &t.sc) }
	default:
		run = func(int) { t.stats = t.rj.ApplyRange(t.pid, t.r, &t.sc) }
	}
	return pool.Task{Weight: t.weight, Run: run}
}

// taskTrace builds the pool bracket for one span-carrying job's task: every
// execution feeds the job's stolen-task counter, and one task in every
// TaskSampleEvery additionally records a "pool.task" span bracketing Run.
// The bracket runs on pool workers, so it touches only the atomic stolen
// counter and the internally-locked tracer.
func (e *Engine) taskTrace(rj *runJob, weight int64) func(worker int, stolen bool) func() {
	e.taskSeq++
	sampled := e.cfg.TaskSampleEvery > 0 && e.taskSeq%int64(e.cfg.TaskSampleEvery) == 0
	return func(worker int, stolen bool) func() {
		if stolen {
			rj.roundStolen.Add(1)
		}
		if !sampled {
			return nil
		}
		sp := e.cfg.Tracer.StartSpan(rj.span, "pool.task")
		sp.SetJob(rj.spanJob)
		sp.Attr(
			span.Int("worker", int64(worker)),
			span.Bool("stolen", stolen),
			span.Int("weight", weight),
		)
		return sp.End
	}
}

// frontierTasks slices each job's active frontier into edge-weighted ranges
// of roughly totalWeight/(Workers·Balance) scatter edges each. The weight
// walk uses the partition CSR prefix sums, so a hub vertex becomes a task
// of its own while runs of leaves coalesce.
func (e *Engine) frontierTasks(batch []unitJob, split bool) []*triggerTask {
	target := int64(math.MaxInt64)
	if split {
		var totalW int64
		for _, it := range batch {
			for _, r := range it.rj.SliceActive(it.pid, math.MaxInt64, nil) {
				totalW += r.Weight
			}
		}
		target = int64(float64(totalW)/(float64(e.cfg.Workers)*e.cfg.Balance)) + 1
	}
	var tasks []*triggerTask
	var buf []exec.Range
	for _, it := range batch {
		buf = it.rj.SliceActive(it.pid, target, buf[:0])
		for _, r := range buf {
			tasks = append(tasks, &triggerTask{rj: it.rj, pid: it.pid, r: r, weight: r.Weight})
		}
	}
	return tasks
}

// staticTasks is the legacy skew-blind decomposition (ablation/bench
// baseline): materialize each job's active locals and cut them into
// fixed-size vertex-count chunks, hub or leaf alike.
func (e *Engine) staticTasks(batch []unitJob, split bool) []*triggerTask {
	jobLocals := make([][]uint32, len(batch))
	total := 0
	for i, it := range batch {
		jobLocals[i] = it.rj.ActiveLocals(it.pid, nil)
		total += len(jobLocals[i])
	}
	chunk := total/(e.cfg.Workers*2) + 1
	if chunk < 32 {
		chunk = 32
	}
	var tasks []*triggerTask
	for i, it := range batch {
		locals := jobLocals[i]
		if !split || len(locals) <= chunk {
			tasks = append(tasks, &triggerTask{rj: it.rj, pid: it.pid, locals: locals, weight: int64(len(locals))})
			continue
		}
		for lo := 0; lo < len(locals); lo += chunk {
			hi := lo + chunk
			if hi > len(locals) {
				hi = len(locals)
			}
			tasks = append(tasks, &triggerTask{rj: it.rj, pid: it.pid, locals: locals[lo:hi], weight: int64(hi - lo)})
		}
	}
	return tasks
}

// ExecStats is a point-in-time snapshot of the work-stealing executor's
// counters. Safe to call concurrently with Run or Serve.
type ExecStats struct {
	// Workers and Balance are the effective executor configuration.
	Workers int
	Balance float64
	// Static reports whether the legacy vertex-count chunking is active.
	Static bool
	// Tasks / Steals / Stolen are cumulative across rounds: tasks
	// executed, successful steal operations, and tasks moved by them.
	Tasks  int64
	Steals int64
	Stolen int64
	// SkippedPartitions counts (job, partition) pairs excluded before
	// scheduling because their frontier was empty (converged regions).
	SkippedPartitions int64
	// LastImbalance is the heaviest worker's realized share of the last
	// round's task weight, ×Workers (1.0 = perfectly even).
	LastImbalance float64
	// FreshFolds is the cumulative count of contributions folded eagerly
	// by fresh-state (async/delayed) jobs; BarriersSkipped/BarriersForced
	// count delayed-mode iteration closes that skipped vs. performed the
	// merge barrier. All zero on BSP-only workloads.
	FreshFolds      int64
	BarriersSkipped int64
	BarriersForced  int64
	// BSPJobs/AsyncJobs/DelayedJobs count submissions per execution mode.
	BSPJobs     int64
	AsyncJobs   int64
	DelayedJobs int64
}

// ExecStats reports the executor's counters.
func (e *Engine) ExecStats() ExecStats {
	return ExecStats{
		Workers:           e.cfg.Workers,
		Balance:           e.cfg.Balance,
		Static:            e.cfg.StaticChunking,
		Tasks:             e.execTasks.Load(),
		Steals:            e.execSteals.Load(),
		Stolen:            e.execStolen.Load(),
		SkippedPartitions: e.execSkipped.Load(),
		LastImbalance:     math.Float64frombits(e.imbBits.Load()),
		FreshFolds:        e.execFresh.Load(),
		BarriersSkipped:   e.execBarSkipped.Load(),
		BarriersForced:    e.execBarForced.Load(),
		BSPJobs:           e.modeJobs[exec.ModeBSP].Load(),
		AsyncJobs:         e.modeJobs[exec.ModeAsync].Load(),
		DelayedJobs:       e.modeJobs[exec.ModeDelayed].Load(),
	}
}

// finishIteration closes one job iteration: Algorithm 2 push with its data
// movement charged, then bookkeeping for completion.
func (e *Engine) finishIteration(rj *runJob) {
	if rj.Done {
		return
	}
	preSkipped, preForced := rj.BarriersSkipped, rj.BarriersForced
	sum := rj.FinishIteration()
	e.execBarSkipped.Add(rj.BarriersSkipped - preSkipped)
	e.execBarForced.Add(rj.BarriersForced - preForced)
	h := e.cfg.Hier
	t := h.Cost().SyncTime(sum.Entries)
	for _, tp := range sum.TouchedParts {
		p := rj.PG.Parts[tp]
		plr := h.Load(privateID(p, rj.ID), rj.PT.Bytes[tp], false)
		t += plr.Time
	}
	e.now += t
	e.ClockPush += t
	e.prefetchCredit += t
	rj.m.AccessTime += t
	rj.m.SyncTime += t
	if e.cfg.OnJobProgress != nil {
		e.cfg.OnJobProgress(JobProgress{
			JobID:          rj.ID,
			Iteration:      rj.Iterations,
			EdgesProcessed: rj.EdgesProcessed,
			VirtualTimeUS:  e.now,
		})
	}
	if rj.Done {
		rj.FinishTime = e.now
		rj.m.FinishAt = e.now
		rj.m.Iterations = rj.Iterations
		rj.m.Edges = rj.EdgesProcessed
		rj.m.Vertices = rj.VerticesApplied
		rj.m.SyncEntries = rj.SyncEntries
		rj.m.Mode = rj.Mode.String()
		rj.m.FreshFolds = rj.FreshFolds
		rj.m.BarriersSkipped = rj.BarriersSkipped
		rj.m.BarriersForced = rj.BarriersForced
		e.mu.Lock()
		e.finished = append(e.finished, rj)
		e.state[rj.ID] = JobDone
		// A cancel that raced with convergence loses: the job is done.
		delete(e.cancelReq, rj.ID)
		e.mu.Unlock()
		e.store.Release(rj.snapSeq)
		if e.tracer != nil {
			e.tracer.Retire(rj.ID, JobDone.String())
		}
		e.fireEvent(JobEvent{JobID: rj.ID, State: JobDone, Metrics: rj.m})
	}
}
