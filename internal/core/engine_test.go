package core

import (
	"math"
	"sync"
	"testing"

	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/memsim"
	"cgraph/internal/refimpl"
	"cgraph/internal/sched"
	"cgraph/internal/storage"
	"cgraph/model"
)

func buildPG(t testing.TB, edges []model.Edge, n, parts int, core bool) *graph.PGraph {
	t.Helper()
	g := graph.Build(n, edges)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: parts, CoreSubgraph: core})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func smallHier() *memsim.Hierarchy {
	return memsim.New(memsim.Config{CacheBytes: 256 << 10, MemoryBytes: 0, Cost: memsim.DefaultCost()})
}

func TestEngineFourConcurrentJobsCorrect(t *testing.T) {
	edges := gen.RMAT(21, 400, 8000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 400, 8, true)
	e := NewSingle(Config{Workers: 4, Hier: smallHier()}, pg)

	pr := e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, 0)
	ss := e.Submit(algo.NewSSSP(0), 0)
	sc := e.Submit(algo.NewSCC(), 0)
	bf := e.Submit(algo.NewBFS(0), 0)

	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 4 {
		t.Fatalf("finished jobs = %d, want 4", len(rep.Jobs))
	}

	g := pg.G
	prRes, err := e.Results(pr)
	if err != nil {
		t.Fatal(err)
	}
	wantPR := refimpl.PageRank(g, 0.85, 1e-12, 3000)
	for v := range prRes {
		if math.Abs(prRes[v]-wantPR[v]) > 1e-6 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, prRes[v], wantPR[v])
		}
	}
	ssRes, _ := e.Results(ss)
	wantSS := refimpl.SSSP(g, 0)
	for v := range ssRes {
		if ssRes[v] != wantSS[v] && !(math.IsInf(ssRes[v], 1) && math.IsInf(wantSS[v], 1)) {
			t.Fatalf("sssp vertex %d: got %v want %v", v, ssRes[v], wantSS[v])
		}
	}
	bfRes, _ := e.Results(bf)
	wantBF := refimpl.BFS(g, 0)
	for v := range bfRes {
		if bfRes[v] != wantBF[v] && !(math.IsInf(bfRes[v], 1) && math.IsInf(wantBF[v], 1)) {
			t.Fatalf("bfs vertex %d: got %v want %v", v, bfRes[v], wantBF[v])
		}
	}
	// SCC: group equivalence against Tarjan.
	scRes, _ := e.Results(sc)
	wantSCC := refimpl.SCC(g)
	fwd := map[float64]int{}
	rev := map[int]float64{}
	for v := range scRes {
		if w, ok := fwd[scRes[v]]; ok {
			if w != wantSCC[v] {
				t.Fatalf("scc vertex %d: group mismatch", v)
			}
		} else {
			fwd[scRes[v]] = wantSCC[v]
		}
		if l, ok := rev[wantSCC[v]]; ok {
			if l != scRes[v] {
				t.Fatalf("scc: reference group %d split", wantSCC[v])
			}
		} else {
			rev[wantSCC[v]] = scRes[v]
		}
	}
	if rep.Makespan <= 0 {
		t.Fatal("makespan not accounted")
	}
	if rep.Counters.BytesIntoCache == 0 {
		t.Fatal("no cache traffic recorded")
	}
}

func TestEngineSharedLoadBeatsPerJobLoad(t *testing.T) {
	// The central claim: k jobs sharing partition loads swap far less data
	// into the cache than k times a single job's traffic.
	edges := gen.RMAT(22, 300, 6000, 0.57, 0.19, 0.19)

	run := func(njobs int) (vol int64, makespan float64) {
		pg := buildPG(t, edges, 300, 6, false)
		h := smallHier()
		e := NewSingle(Config{Workers: 4, Hier: h}, pg)
		for i := 0; i < njobs; i++ {
			e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-6}, 0)
		}
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Counters.BytesIntoCache, rep.Makespan
	}
	vol1, _ := run(1)
	vol4, _ := run(4)
	if vol4 >= 4*vol1 {
		t.Fatalf("4-job volume %d not sub-linear vs 4x single-job %d", vol4, 4*vol1)
	}
}

func TestEngineRuntimeSubmission(t *testing.T) {
	edges := gen.RMAT(23, 200, 3000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 200, 4, false)
	e := NewSingle(Config{Workers: 2, Hier: smallHier()}, pg)
	e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-6}, 0)

	// Submit a second job concurrently while Run is in flight.
	var wg sync.WaitGroup
	wg.Add(1)
	var late int
	go func() {
		defer wg.Done()
		late = e.Submit(algo.NewBFS(0), 0)
	}()
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The late job may have been admitted mid-run or not at all (if Run
	// finished first); run again to drain in the latter case.
	if len(rep.Jobs) == 1 {
		rep2, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep2.Jobs) != 2 {
			t.Fatalf("late job not drained: %d finished", len(rep2.Jobs))
		}
	}
	res, err := e.Results(late)
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.BFS(pg.G, 0)
	for v := range res {
		if res[v] != want[v] && !(math.IsInf(res[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("late bfs vertex %d: got %v want %v", v, res[v], want[v])
		}
	}
}

func TestEngineSnapshotBinding(t *testing.T) {
	edges := gen.ER(24, 100, 1200)
	pg := buildPG(t, edges, 100, 4, false)
	store := storage.NewSnapshotStore(pg, 10)
	mut, slots := gen.Mutate(edges, 0.05, 100, 7)
	changed := graph.ChangedPartitions(slots, pg.ChunkSize, len(pg.Parts))
	pg2, err := graph.Overlay(pg, mut, changed)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Add(pg2, 20); err != nil {
		t.Fatal(err)
	}

	e := New(Config{Workers: 2, Hier: smallHier()}, store)
	old := e.Submit(algo.NewSSSP(0), 15)  // binds to snapshot ts=10
	new_ := e.Submit(algo.NewSSSP(0), 25) // binds to snapshot ts=20
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	oldRes, _ := e.Results(old)
	newRes, _ := e.Results(new_)
	wantOld := refimpl.SSSP(pg.G, 0)
	wantNew := refimpl.SSSP(pg2.G, 0)
	for v := range oldRes {
		if oldRes[v] != wantOld[v] && !(math.IsInf(oldRes[v], 1) && math.IsInf(wantOld[v], 1)) {
			t.Fatalf("old-snapshot sssp vertex %d wrong", v)
		}
		if newRes[v] != wantNew[v] && !(math.IsInf(newRes[v], 1) && math.IsInf(wantNew[v], 1)) {
			t.Fatalf("new-snapshot sssp vertex %d wrong", v)
		}
	}
}

func TestEngineSchedulerAblation(t *testing.T) {
	// Priority scheduling must not change results, only order/cost.
	edges := gen.RMAT(25, 250, 5000, 0.57, 0.19, 0.19)
	for _, kind := range []sched.Kind{sched.Static, sched.Priority, sched.TwoLevel} {
		pg := buildPG(t, edges, 250, 6, true)
		e := NewSingle(Config{Workers: 4, Hier: smallHier(), Scheduler: kind}, pg)
		id := e.Submit(algo.NewSSSP(1), 0)
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		res, _ := e.Results(id)
		want := refimpl.SSSP(pg.G, 1)
		for v := range res {
			if res[v] != want[v] && !(math.IsInf(res[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("%v scheduler: sssp vertex %d wrong", kind, v)
			}
		}
	}
}

func TestEngineStragglerSplitAblation(t *testing.T) {
	edges := gen.RMAT(26, 250, 5000, 0.57, 0.19, 0.19)
	run := func(disable bool) (*Engine, float64) {
		pg := buildPG(t, edges, 250, 6, false)
		e := NewSingle(Config{Workers: 8, Hier: smallHier(), DisableStragglerSplit: disable}, pg)
		e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-6}, 0)
		e.Submit(algo.NewWCC(), 0)
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return e, rep.Makespan
	}
	eOn, tOn := run(false)
	eOff, tOff := run(true)
	// Splitting must speed up the virtual makespan (8 workers, 2 jobs).
	if tOn >= tOff {
		t.Fatalf("straggler splitting did not help: %v >= %v", tOn, tOff)
	}
	// And results are identical either way.
	rOn, _ := eOn.Results(1)
	rOff, _ := eOff.Results(1)
	for v := range rOn {
		if rOn[v] != rOff[v] && !(math.IsInf(rOn[v], 1) && math.IsInf(rOff[v], 1)) {
			t.Fatalf("wcc vertex %d differs between split modes", v)
		}
	}
}

func TestEngineBatchingWhenJobsExceedWorkers(t *testing.T) {
	edges := gen.RMAT(27, 150, 2500, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 150, 4, false)
	e := NewSingle(Config{Workers: 2, Hier: smallHier()}, pg)
	ids := make([]int, 6)
	for i := range ids {
		ids[i] = e.Submit(algo.NewBFS(model.VertexID(i)), 0)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		res, err := e.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		want := refimpl.BFS(pg.G, model.VertexID(i))
		for v := range res {
			if res[v] != want[v] && !(math.IsInf(res[v], 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("job %d vertex %d wrong", i, v)
			}
		}
	}
}

func TestEngineDeterministicVirtualTime(t *testing.T) {
	edges := gen.RMAT(28, 200, 4000, 0.57, 0.19, 0.19)
	run := func() (float64, int64) {
		pg := buildPG(t, edges, 200, 5, true)
		e := NewSingle(Config{Workers: 4, Hier: smallHier()}, pg)
		e.Submit(algo.NewSSSP(0), 0)
		e.Submit(algo.NewBFS(0), 0)
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan, rep.Counters.BytesIntoCache
	}
	m1, v1 := run()
	m2, v2 := run()
	if m1 != m2 || v1 != v2 {
		t.Fatalf("nondeterministic accounting: (%v,%d) vs (%v,%d)", m1, v1, m2, v2)
	}
}

func TestEngineReportShape(t *testing.T) {
	edges := gen.RMAT(29, 150, 2000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 150, 4, false)
	e := NewSingle(Config{Workers: 4, Hier: smallHier(), Label: "CGraph-test"}, pg)
	e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-4}, 0)
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.System != "CGraph-test" || rep.Workers != 4 {
		t.Fatal("report header wrong")
	}
	jm := rep.Job("PageRank")
	if jm == nil {
		t.Fatal("job metrics missing")
	}
	if jm.AccessTime <= 0 || jm.ComputeTime <= 0 || jm.Iterations == 0 {
		t.Fatalf("breakdown not populated: %+v", jm)
	}
	if jm.FinishAt <= jm.SubmitAt {
		t.Fatal("job timestamps wrong")
	}
	if jm.Edges == 0 || jm.SyncEntries == 0 {
		t.Fatal("work counters not populated")
	}
	if u := rep.CPUUtilization(); u <= 0 || u > 100 {
		t.Fatalf("utilization out of range: %v", u)
	}
}
