package core

import (
	"context"
	"math"
	"testing"

	"cgraph/algo"
	"cgraph/internal/exec"
	"cgraph/internal/gen"
	"cgraph/internal/refimpl"
)

// TestEngineAsyncModesParity drives async and delayed jobs through the
// full round loop (frontier slicing, chained pool tasks, pushes) alongside
// a BSP job and pins result parity: exact for SSSP, tolerance for
// PageRank, with async converging in fewer iterations than BSP and the
// fresh-fold / per-mode counters populated.
func TestEngineAsyncModesParity(t *testing.T) {
	edges := gen.RMAT(31, 400, 8000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 400, 8, true)
	e := NewSingle(Config{Workers: 4, Hier: smallHier()}, pg)

	prBSP := e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, 0)
	prAsync := e.SubmitWith(context.Background(), &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, SubmitOpts{Mode: exec.ModeAsync})
	prDelayed := e.SubmitWith(context.Background(), &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, SubmitOpts{Mode: exec.ModeDelayed, Staleness: 2})
	ssAsync := e.SubmitWith(context.Background(), algo.NewSSSP(0), SubmitOpts{Mode: exec.ModeAsync})
	ssDelayed := e.SubmitWith(context.Background(), algo.NewSSSP(0), SubmitOpts{Mode: exec.ModeDelayed})

	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 5 {
		t.Fatalf("finished jobs = %d, want 5", len(rep.Jobs))
	}

	wantPR := refimpl.PageRank(pg.G, 0.85, 1e-12, 3000)
	for _, id := range []int{prBSP, prAsync, prDelayed} {
		res, err := e.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		for v := range res {
			if math.Abs(res[v]-wantPR[v]) > 1e-6 {
				t.Fatalf("pagerank job %d vertex %d: got %v want %v", id, v, res[v], wantPR[v])
			}
		}
	}
	wantSS := refimpl.SSSP(pg.G, 0)
	for _, id := range []int{ssAsync, ssDelayed} {
		res, err := e.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		for v := range res {
			if res[v] != wantSS[v] && !(math.IsInf(res[v], 1) && math.IsInf(wantSS[v], 1)) {
				t.Fatalf("sssp job %d vertex %d: got %v want %v", id, v, res[v], wantSS[v])
			}
		}
	}

	jb, _ := e.Job(prBSP)
	ja, _ := e.Job(prAsync)
	jd, _ := e.Job(prDelayed)
	if ja.Iterations >= jb.Iterations {
		t.Fatalf("async PageRank took %d iterations, BSP %d — fresh state should converge faster",
			ja.Iterations, jb.Iterations)
	}
	if ja.FreshFolds == 0 || jd.FreshFolds == 0 {
		t.Fatalf("fresh folds not recorded: async=%d delayed=%d", ja.FreshFolds, jd.FreshFolds)
	}
	if jb.FreshFolds != 0 || jb.BarriersSkipped != 0 {
		t.Fatalf("BSP job recorded async counters: fresh=%d skipped=%d", jb.FreshFolds, jb.BarriersSkipped)
	}

	st := e.ExecStats()
	if st.FreshFolds == 0 {
		t.Fatal("engine FreshFolds counter empty")
	}
	if st.BarriersSkipped == 0 || st.BarriersForced == 0 {
		t.Fatalf("delayed barrier counters empty: skipped=%d forced=%d", st.BarriersSkipped, st.BarriersForced)
	}
	if st.BSPJobs != 1 || st.AsyncJobs != 2 || st.DelayedJobs != 2 {
		t.Fatalf("per-mode job counts bsp=%d async=%d delayed=%d, want 1/2/2",
			st.BSPJobs, st.AsyncJobs, st.DelayedJobs)
	}
}

// TestEngineAsyncDeterministicVirtualTime: fresh-state chains are
// sequenced, so two identical async runs must produce the identical
// simulated makespan and iteration counts (single-run determinism is the
// repo-wide benchmark contract).
func TestEngineAsyncDeterministicVirtualTime(t *testing.T) {
	edges := gen.RMAT(17, 300, 5000, 0.57, 0.19, 0.19)
	run := func() (float64, int) {
		pg := buildPG(t, edges, 300, 6, true)
		e := NewSingle(Config{Workers: 4, Hier: smallHier()}, pg)
		id := e.SubmitWith(context.Background(), &algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, SubmitOpts{Mode: exec.ModeAsync})
		rep, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		j, _ := e.Job(id)
		return rep.Makespan, j.Iterations
	}
	m1, i1 := run()
	m2, i2 := run()
	if m1 != m2 || i1 != i2 {
		t.Fatalf("async run not deterministic: makespan %v vs %v, iterations %d vs %d", m1, m2, i1, i2)
	}
}

// TestEngineBSPPlanUnchangedByModeFields: an all-BSP workload must not
// record any fresh/barrier/mode activity — the default path is untouched.
func TestEngineBSPPlanUnchangedByModeFields(t *testing.T) {
	edges := gen.RMAT(9, 200, 3000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 200, 4, true)
	e := NewSingle(Config{Workers: 4, Hier: smallHier()}, pg)
	e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-8}, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.ExecStats()
	if st.FreshFolds != 0 || st.BarriersSkipped != 0 || st.BarriersForced != 0 {
		t.Fatalf("BSP-only run recorded async counters: %+v", st)
	}
	if st.AsyncJobs != 0 || st.DelayedJobs != 0 || st.BSPJobs != 1 {
		t.Fatalf("per-mode counts wrong for BSP-only run: %+v", st)
	}
}
