package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"cgraph/algo"
	"cgraph/internal/gen"
	"cgraph/internal/refimpl"
	"cgraph/internal/sched"
	"cgraph/internal/storage"
	"cgraph/internal/testutil"
	"cgraph/model"
)

// spinProgram never converges: every vertex stays active forever. It gives
// cancellation tests a job that is deterministically still running.
type spinProgram struct{}

func (spinProgram) Name() string                { return "Spin" }
func (spinProgram) Direction() model.Direction  { return model.Out }
func (spinProgram) Identity() float64           { return 0 }
func (spinProgram) Acc(a, c float64) float64    { return a + c }
func (spinProgram) IsActive(s model.State) bool { return true }
func (spinProgram) Init(v model.VertexID, g model.GraphInfo) (model.State, bool) {
	return model.State{}, true
}
func (spinProgram) Apply(v model.VertexID, s *model.State, deg int) (float64, bool) {
	s.Delta = 0
	return 1, true
}
func (spinProgram) Contribution(seed float64, w float32) float64 { return seed }

type eventRecorder struct {
	ch chan JobEvent
}

func newEventRecorder() *eventRecorder {
	return &eventRecorder{ch: make(chan JobEvent, 64)}
}

func (r *eventRecorder) wait(t *testing.T, jobID int) JobEvent {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev := <-r.ch:
			if ev.JobID == jobID {
				return ev
			}
		case <-deadline:
			t.Fatalf("no terminal event for job %d", jobID)
		}
	}
}

func startServe(t *testing.T, e *Engine) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.Serve(ctx) }()
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve returned %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("serve did not stop")
		}
	}
}

func TestServeAdmitsSubmissionsWhileResident(t *testing.T) {
	edges := gen.RMAT(31, 300, 5000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 300, 6, false)
	rec := newEventRecorder()
	e := NewSingle(Config{Workers: 2, Hier: smallHier(), OnJobEvent: func(ev JobEvent) { rec.ch <- ev }}, pg)
	stop := startServe(t, e)
	defer stop()

	// First job against an idle, parked loop.
	pr := e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, 0)
	// Second job lands mid-flight.
	bf := e.Submit(algo.NewBFS(0), 0)

	if ev := rec.wait(t, bf); ev.State != JobDone {
		t.Fatalf("bfs terminal state = %v, want done", ev.State)
	}
	ev := rec.wait(t, pr)
	if ev.State != JobDone || ev.Metrics == nil || ev.Metrics.Iterations == 0 {
		t.Fatalf("pagerank event %+v not a populated done", ev)
	}

	res, err := e.Results(pr)
	if err != nil {
		t.Fatal(err)
	}
	want := refimpl.PageRank(pg.G, 0.85, 1e-12, 3000)
	for v := range res {
		if math.Abs(res[v]-want[v]) > 1e-6 {
			t.Fatalf("pagerank vertex %d: got %v want %v", v, res[v], want[v])
		}
	}
	if st, _ := e.JobState(pr); st != JobDone {
		t.Fatalf("job state = %v, want done", st)
	}
}

// TestProgressEventsPrecedeTerminal: OnJobProgress fires once per
// completed iteration with monotone totals, and the final progress update
// lands strictly before the terminal JobEvent.
func TestProgressEventsPrecedeTerminal(t *testing.T) {
	edges := gen.RMAT(33, 300, 5000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 300, 6, false)
	var mu sync.Mutex
	var progress []JobProgress
	terminalAt := -1
	e := NewSingle(Config{
		Workers: 2,
		Hier:    smallHier(),
		OnJobProgress: func(p JobProgress) {
			mu.Lock()
			progress = append(progress, p)
			mu.Unlock()
		},
		OnJobEvent: func(ev JobEvent) {
			mu.Lock()
			terminalAt = len(progress)
			mu.Unlock()
		},
	}, pg)
	id := e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, 0)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(progress) == 0 {
		t.Fatal("no progress events")
	}
	for i, p := range progress {
		if p.JobID != id || p.Iteration != i+1 {
			t.Fatalf("progress %d = %+v, want iteration %d", i, p, i+1)
		}
		if i > 0 && (p.EdgesProcessed < progress[i-1].EdgesProcessed || p.VirtualTimeUS < progress[i-1].VirtualTimeUS) {
			t.Fatalf("progress totals not monotone: %+v after %+v", p, progress[i-1])
		}
	}
	if terminalAt != len(progress) {
		t.Fatalf("terminal event at progress count %d, want after all %d", terminalAt, len(progress))
	}
	final := progress[len(progress)-1]
	j, ok := e.Job(id)
	if !ok || final.Iteration != j.Iterations {
		t.Fatalf("final progress iteration %d, job ran %d", final.Iteration, j.Iterations)
	}
}

func TestServeCancelRetiresBetweenRounds(t *testing.T) {
	edges := gen.RMAT(32, 200, 3000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 200, 4, false)
	rec := newEventRecorder()
	e := NewSingle(Config{Workers: 2, Hier: smallHier(), OnJobEvent: func(ev JobEvent) { rec.ch <- ev }}, pg)
	stop := startServe(t, e)
	defer stop()

	spin := e.Submit(spinProgram{}, 0)
	bf := e.Submit(algo.NewBFS(0), 0)
	rec.wait(t, bf) // engine is definitely rolling

	if err := e.Cancel(spin); err != nil {
		t.Fatal(err)
	}
	ev := rec.wait(t, spin)
	if ev.State != JobCancelled || !errors.Is(ev.Err, ErrCancelled) {
		t.Fatalf("spin event %+v, want cancelled/ErrCancelled", ev)
	}
	if _, err := e.Results(spin); err == nil {
		t.Fatal("results of a cancelled job must error")
	}
	if err := e.Cancel(spin); err == nil {
		t.Fatal("cancelling a terminal job must error")
	}
	if err := e.Cancel(12345); err == nil {
		t.Fatal("cancelling an unknown job must error")
	}
}

func TestServeJobContextDeadline(t *testing.T) {
	edges := gen.RMAT(33, 200, 3000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 200, 4, false)
	rec := newEventRecorder()
	e := NewSingle(Config{Workers: 2, Hier: smallHier(), OnJobEvent: func(ev JobEvent) { rec.ch <- ev }}, pg)
	stop := startServe(t, e)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	spin := e.SubmitCtx(ctx, spinProgram{}, 0)
	ev := rec.wait(t, spin)
	if ev.State != JobCancelled || !errors.Is(ev.Err, context.DeadlineExceeded) {
		t.Fatalf("deadline event %+v, want cancelled/DeadlineExceeded", ev)
	}
}

func TestServeIterationBudget(t *testing.T) {
	edges := gen.RMAT(34, 100, 1500, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 100, 4, false)
	rec := newEventRecorder()
	e := NewSingle(Config{Workers: 2, Hier: smallHier(), MaxRounds: 25, OnJobEvent: func(ev JobEvent) { rec.ch <- ev }}, pg)
	stop := startServe(t, e)
	defer stop()

	spin := e.Submit(spinProgram{}, 0)
	ev := rec.wait(t, spin)
	if ev.State != JobFailed || ev.Err == nil {
		t.Fatalf("over-budget event %+v, want failed with error", ev)
	}
}

func TestServeExcludesConcurrentLoops(t *testing.T) {
	edges := gen.RMAT(35, 100, 1500, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 100, 4, false)
	rec := newEventRecorder()
	e := NewSingle(Config{Workers: 2, Hier: smallHier(), OnJobEvent: func(ev JobEvent) { rec.ch <- ev }}, pg)
	stop := startServe(t, e)
	defer stop()
	// Prove the resident loop is active before contending with it.
	rec.wait(t, e.Submit(algo.NewBFS(0), 0))
	if err := e.Serve(context.Background()); err == nil {
		t.Fatal("second Serve must fail while the loop is active")
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("Run must fail while Serve is active")
	}
}

func TestServeStatsAndShutdownLeavesJobsResident(t *testing.T) {
	edges := gen.RMAT(36, 150, 2500, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 150, 4, false)
	rec := newEventRecorder()
	e := NewSingle(Config{Workers: 2, Hier: smallHier(), OnJobEvent: func(ev JobEvent) { rec.ch <- ev }}, pg)
	stop := startServe(t, e)

	bf := e.Submit(algo.NewBFS(0), 0)
	rec.wait(t, bf)
	spin := e.Submit(spinProgram{}, 0)

	// Wait until the spin job is admitted so stats see it running.
	testutil.WaitFor(t, 30*time.Second, func() bool {
		st, _ := e.JobState(spin)
		return st == JobRunning
	}, "spin job never admitted")
	s := e.ServeStats()
	if s.Done != 1 || s.Running != 1 {
		t.Fatalf("stats %+v, want 1 done / 1 running", s)
	}
	if s.Rounds == 0 || s.VirtualTimeUS <= 0 {
		t.Fatalf("stats %+v: loop progress not mirrored", s)
	}

	// Graceful stop with the spin job mid-flight: it stays resident.
	stop()
	if st, _ := e.JobState(spin); st != JobRunning {
		t.Fatalf("post-shutdown spin state = %v, want running (resident)", st)
	}
}

// TestServeSnapshotWithDifferentPartitionCount is the regression for the
// base-snapshot-sized scheduler state: a job bound to a later snapshot with
// a different partition count used to index the engine's base-sized arrays
// out of range and panic the resident Serve loop. With unit-keyed
// scheduling it must simply converge.
func TestServeSnapshotWithDifferentPartitionCount(t *testing.T) {
	for _, kind := range []sched.Kind{sched.Priority, sched.TwoLevel} {
		edges := gen.RMAT(41, 200, 3500, 0.57, 0.19, 0.19)
		base := buildPG(t, edges, 200, 4, false)
		rec := newEventRecorder()
		e := New(Config{Workers: 2, Hier: smallHier(), Scheduler: kind, OnJobEvent: func(ev JobEvent) { rec.ch <- ev }},
			storage.NewSnapshotStore(base, 0))
		stop := startServe(t, e)

		// Warm the loop on the base snapshot.
		rec.wait(t, e.Submit(algo.NewBFS(0), 0))

		// A rewired graph, partitioned into twice as many parts.
		edges2 := gen.RMAT(42, 200, 3500, 0.57, 0.19, 0.19)
		next := buildPG(t, edges2, 200, 8, false)
		if err := e.AddSnapshot(next, 10); err != nil {
			t.Fatal(err)
		}

		// One job on the new 8-part snapshot, one concurrently on the old
		// 4-part base: both footprints schedule side by side.
		ssNew := e.Submit(algo.NewSSSP(0), 10)
		ssOld := e.Submit(algo.NewSSSP(0), 0)
		// Completion order is not deterministic; collect both events.
		states := map[int]JobState{}
		deadline := time.After(30 * time.Second)
		for len(states) < 2 {
			select {
			case ev := <-rec.ch:
				if ev.JobID == ssNew || ev.JobID == ssOld {
					states[ev.JobID] = ev.State
				}
			case <-deadline:
				t.Fatalf("%v: no terminal events for both sssp jobs (got %v)", kind, states)
			}
		}
		if states[ssNew] != JobDone || states[ssOld] != JobDone {
			t.Fatalf("%v: states new=%v old=%v, want done/done", kind, states[ssNew], states[ssOld])
		}
		for _, c := range []struct {
			id   int
			want []float64
		}{
			{ssNew, refimpl.SSSP(next.G, 0)},
			{ssOld, refimpl.SSSP(base.G, 0)},
		} {
			res, err := e.Results(c.id)
			if err != nil {
				t.Fatal(err)
			}
			for v := range res {
				if res[v] != c.want[v] && !(math.IsInf(res[v], 1) && math.IsInf(c.want[v], 1)) {
					t.Fatalf("%v: job %d sssp vertex %d: got %v want %v", kind, c.id, v, res[v], c.want[v])
				}
			}
		}

		// The plan must name both snapshot versions' units at some point;
		// at minimum the info endpoint stays coherent.
		info := e.SchedInfo()
		if info.Policy != kind.String() {
			t.Fatalf("sched info policy %q, want %q", info.Policy, kind)
		}
		stop()
	}
}

// TestServeConcurrentStatsReaders hammers the lock-free mirrors while the
// loop runs; under -race it is the regression for the unlocked Now() read.
func TestServeConcurrentStatsReaders(t *testing.T) {
	edges := gen.RMAT(43, 200, 3000, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 200, 4, false)
	rec := newEventRecorder()
	e := NewSingle(Config{Workers: 2, Hier: smallHier(), OnJobEvent: func(ev JobEvent) { rec.ch <- ev }}, pg)
	stop := startServe(t, e)
	defer stop()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = e.Now()
				_ = e.ServeStats()
				_ = e.SchedInfo()
			}
		}()
	}
	pr := e.Submit(&algo.PageRank{Damping: 0.85, Epsilon: 1e-9}, 0)
	ev := rec.wait(t, pr)
	close(done)
	wg.Wait()
	if ev.State != JobDone {
		t.Fatalf("pagerank state %v, want done", ev.State)
	}
	if e.Now() <= 0 {
		t.Fatal("Now() did not advance with the loop")
	}
}

// TestReleaseCompactsTerminalState is the regression for the per-job state
// leak: Release must drop the lifecycle-map entry while ServeStats keeps
// counting released jobs in their terminal bucket.
func TestReleaseCompactsTerminalState(t *testing.T) {
	edges := gen.RMAT(44, 150, 2500, 0.57, 0.19, 0.19)
	pg := buildPG(t, edges, 150, 4, false)
	rec := newEventRecorder()
	e := NewSingle(Config{Workers: 2, Hier: smallHier(), OnJobEvent: func(ev JobEvent) { rec.ch <- ev }}, pg)
	stop := startServe(t, e)
	defer stop()

	bf := e.Submit(algo.NewBFS(0), 0)
	rec.wait(t, bf)
	spin := e.Submit(spinProgram{}, 0)
	rec.wait(t, e.Submit(algo.NewBFS(1), 0)) // ensure spin admitted and rolling
	if err := e.Cancel(spin); err != nil {
		t.Fatal(err)
	}
	rec.wait(t, spin)

	before := e.ServeStats()
	e.Release(bf)
	e.Release(spin)
	e.Release(98765) // unknown: no-op

	if _, ok := e.JobState(bf); ok {
		t.Fatal("released job still has a state entry")
	}
	if _, err := e.Results(bf); err == nil {
		t.Fatal("results of a released job must error")
	}
	after := e.ServeStats()
	if after.Done != before.Done || after.Cancelled != before.Cancelled {
		t.Fatalf("stats drifted across release: before %+v after %+v", before, after)
	}
	// Double release stays a no-op.
	e.Release(bf)
	if got := e.ServeStats(); got.Done != after.Done {
		t.Fatalf("double release inflated done count: %+v", got)
	}
}
