package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Any() {
		t.Fatal("new set should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestSetAllRespectsCapacity(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128, 129} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Fatalf("SetAll cap=%d: Count = %d", n, got)
		}
	}
}

func TestReset(t *testing.T) {
	s := New(200)
	s.SetAll()
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset did not clear all bits")
	}
}

func TestRangeOrderAndStop(t *testing.T) {
	s := New(300)
	want := []int{2, 70, 150, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.Range(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v, want %v", got, want)
		}
	}
	// Early stop after two elements.
	count := 0
	s.Range(func(int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("Range early stop visited %d, want 2", count)
	}
}

func TestNextSet(t *testing.T) {
	s := New(256)
	s.Set(5)
	s.Set(64)
	s.Set(200)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 200}, {200, 200}, {201, -1}, {256, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestOrAndCopyAndSwap(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	b.Set(2)
	a.Or(b)
	if !a.Test(1) || !a.Test(2) {
		t.Fatal("Or missing bits")
	}
	c := New(100)
	c.CopyFrom(a)
	if c.Count() != 2 {
		t.Fatal("CopyFrom wrong count")
	}
	d := New(100)
	d.Set(50)
	c.Swap(d)
	if c.Count() != 1 || !c.Test(50) || d.Count() != 2 {
		t.Fatal("Swap did not exchange contents")
	}
}

// TestQuickAgainstMap property-tests the bitset against a map-based model.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const n = 500
		s := New(n)
		m := map[int]bool{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			i := int(op) % n
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				m[i] = true
			case 1:
				s.Clear(i)
				delete(m, i)
			case 2:
				if s.Test(i) != m[i] {
					return false
				}
			}
		}
		if s.Count() != len(m) {
			return false
		}
		ok := true
		s.Range(func(i int) bool {
			if !m[i] {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
