// Package bitset provides a dense, fixed-capacity bitset used for the
// per-(job, partition) active-vertex sets of the CGraph engines.
//
// The zero value is an empty set of capacity zero; use New for a sized set.
// Methods are not safe for concurrent mutation; engines shard sets per
// partition so only one worker mutates a set at a time.
package bitset

import "math/bits"

const wordBits = 64

// Set is a dense bitset over the integers [0, Cap).
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap returns the capacity in bits.
func (s *Set) Cap() int { return s.n }

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// SetAll sets every bit in [0, Cap).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Mask off the bits beyond capacity in the last word.
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Or merges other into s. The sets must have the same capacity.
func (s *Set) Or(other *Set) {
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// CopyFrom makes s an exact copy of other. The sets must have the same capacity.
func (s *Set) CopyFrom(other *Set) {
	copy(s.words, other.words)
}

// Swap exchanges the contents of s and other in O(1).
func (s *Set) Swap(other *Set) {
	s.words, other.words = other.words, s.words
	s.n, other.n = other.n, s.n
}

// Range calls fn for every set bit in ascending order. If fn returns false,
// iteration stops.
func (s *Set) Range(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + tz) {
				return
			}
			w &^= 1 << uint(tz)
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if none.
func (s *Set) NextSet(i int) int {
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}
