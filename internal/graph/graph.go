// Package graph implements the shared graph-structure substrate of §3.2.1:
// a global CSR built from an edge list, vertex-cut partitioning into
// same-sized (by edge count) partitions in plain or core-subgraph mode,
// master/mirror replica assignment, and the partition-size formula that ties
// partition bytes to the simulated cache capacity.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"cgraph/model"
)

// uidCounter hands out process-unique partition UIDs.
var uidCounter atomic.Int64

// Graph is the immutable global CSR over both edge directions. It implements
// model.GraphInfo.
type Graph struct {
	N      int
	OutOff []uint64
	OutDst []model.VertexID
	OutW   []float32
	InOff  []uint64
	InDst  []model.VertexID
	InW    []float32
	// Slots is the length of the edge list the graph was built from,
	// including freed-slot holes (model.Edge.IsHole). NumEdges counts only
	// live edges; the slot count is what keeps chunk boundaries stable
	// across remove-bearing snapshots.
	Slots int
}

// Build constructs the global CSR. numVertices of 0 means "infer from the
// largest endpoint". Hole slots (freed by edge removals) are skipped.
func Build(numVertices int, edges []model.Edge) *Graph {
	n := numVertices
	live := 0
	for _, e := range edges {
		if e.IsHole() {
			continue
		}
		live++
		if int(e.Src) >= n {
			n = int(e.Src) + 1
		}
		if int(e.Dst) >= n {
			n = int(e.Dst) + 1
		}
	}
	g := &Graph{
		N:      n,
		OutOff: make([]uint64, n+1),
		OutDst: make([]model.VertexID, live),
		OutW:   make([]float32, live),
		InOff:  make([]uint64, n+1),
		InDst:  make([]model.VertexID, live),
		InW:    make([]float32, live),
		Slots:  len(edges),
	}
	for _, e := range edges {
		if e.IsHole() {
			continue
		}
		g.OutOff[e.Src+1]++
		g.InOff[e.Dst+1]++
	}
	for v := 0; v < n; v++ {
		g.OutOff[v+1] += g.OutOff[v]
		g.InOff[v+1] += g.InOff[v]
	}
	outPos := append([]uint64(nil), g.OutOff[:n]...)
	inPos := append([]uint64(nil), g.InOff[:n]...)
	for _, e := range edges {
		if e.IsHole() {
			continue
		}
		g.OutDst[outPos[e.Src]] = e.Dst
		g.OutW[outPos[e.Src]] = e.Weight
		outPos[e.Src]++
		g.InDst[inPos[e.Dst]] = e.Src
		g.InW[inPos[e.Dst]] = e.Weight
		inPos[e.Dst]++
	}
	return g
}

// NumVertices implements model.GraphInfo.
func (g *Graph) NumVertices() int { return g.N }

// OutDegree implements model.GraphInfo.
func (g *Graph) OutDegree(v model.VertexID) int {
	return int(g.OutOff[v+1] - g.OutOff[v])
}

// InDegree implements model.GraphInfo.
func (g *Graph) InDegree(v model.VertexID) int {
	return int(g.InOff[v+1] - g.InOff[v])
}

// Degree returns v's degree in the given direction (Both = out + in).
func (g *Graph) Degree(v model.VertexID, d model.Direction) int {
	switch d {
	case model.Out:
		return g.OutDegree(v)
	case model.In:
		return g.InDegree(v)
	default:
		return g.OutDegree(v) + g.InDegree(v)
	}
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.OutDst) }

// PartVertex locates one replica of a vertex: the partition and the local
// index within that partition's vertex table.
type PartVertex struct {
	Part  int32
	Local uint32
}

// Partition is one graph-structure partition of the global table
// (Fig. 4(b)): the local vertex table (vertex ID, replica flag, master
// location) plus the partition-local out/in CSR over the edges assigned to
// this partition by the vertex cut.
type Partition struct {
	ID int
	// UID is unique across every partition built in the process, letting
	// the memory-hierarchy simulator identify a partition shared by
	// several snapshots (Fig. 5) as a single cacheable item.
	UID int64

	// Globals maps local index → global vertex ID, sorted ascending so
	// LocalOf can binary-search.
	Globals []model.VertexID

	// Partition-local CSR over local indices (both endpoints of every
	// assigned edge have replicas here, so Scatter never leaves the
	// partition — the property Algorithm 1 relies on).
	OutOff []uint32
	OutDst []uint32
	OutW   []float32
	InOff  []uint32
	InDst  []uint32
	InW    []float32

	NumEdges int
	// AvgDegree is D(P) in Eq. 1: the mean global degree of the
	// partition's vertices, fixed at preprocessing time.
	AvgDegree float64
	// Core marks partitions produced from the core subgraph (§3.3).
	Core bool
	// StructBytes is the simulated size of this partition's structure
	// data, fed to the memory-hierarchy simulator.
	StructBytes int64
}

// NumVertices returns the number of local replicas in the partition.
func (p *Partition) NumVertices() int { return len(p.Globals) }

// LocalOf returns the local index of global vertex v, if v has a replica in
// this partition.
func (p *Partition) LocalOf(v model.VertexID) (uint32, bool) {
	i := sort.Search(len(p.Globals), func(i int) bool { return p.Globals[i] >= v })
	if i < len(p.Globals) && p.Globals[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// EdgeWork returns the number of edges local vertex li touches when a
// program scatters in direction d — the per-vertex weight the executor
// uses to slice active frontiers into edge-balanced tasks. The CSR offset
// arrays are the prefix sums, so this is O(1).
func (p *Partition) EdgeWork(li uint32, d model.Direction) int64 {
	out := int64(p.OutOff[li+1] - p.OutOff[li])
	in := int64(p.InOff[li+1] - p.InOff[li])
	switch d {
	case model.Out:
		return out
	case model.In:
		return in
	default:
		return out + in
	}
}

// computeBytes accounts the structure bytes of the partition: 9 bytes per
// local vertex (ID + flag + master location) and 8 per directed edge in each
// CSR direction, plus a fixed header.
func (p *Partition) computeBytes() {
	p.StructBytes = 64 + int64(len(p.Globals))*9 + int64(len(p.OutDst))*8 + int64(len(p.InDst))*8
}

// PGraph is a partitioned graph: the content of one global-table snapshot.
type PGraph struct {
	G     *Graph
	Parts []*Partition
	// MasterOf locates the master replica of every vertex; vertices with
	// no edges have Part == -1.
	MasterOf []PartVertex
	// Replicas lists every replica location (master first) for vertices
	// with more than one replica; single-replica vertices are omitted.
	Replicas map[model.VertexID][]PartVertex
	// ChunkSize is the number of edge slots per partition, fixed so that
	// snapshot mutations map slots to partitions stably.
	ChunkSize int
	// NumCore is the count of core-subgraph partitions (they come first).
	NumCore int
	// Masters flags the master replica per [partition][local]; exactly one
	// partition holds the master of each vertex. Kept outside Partition so
	// snapshots can share unchanged partition bytes while owning their own
	// replica assignment.
	Masters [][]bool
	// MasterParts names the partition holding the master replica, per
	// [partition][local].
	MasterParts [][]int32
}

// IsMaster reports whether the replica at (part, local) is the master.
func (pg *PGraph) IsMaster(part int, local uint32) bool {
	return pg.Masters[part][local]
}

// MasterPart returns the partition holding the master of the replica at
// (part, local).
func (pg *PGraph) MasterPart(part int, local uint32) int32 {
	return pg.MasterParts[part][local]
}

// Options configure partitioning.
type Options struct {
	// NumPartitions is the target partition count (≥1).
	NumPartitions int
	// CoreSubgraph enables §3.3 core-subgraph partitioning: edges between
	// high-degree core vertices are grouped into their own partitions.
	CoreSubgraph bool
	// CoreFraction is the fraction of vertices classified as core when
	// CoreSubgraph is set (default 0.05).
	CoreFraction float64
}

// Cut builds a vertex-cut partitioned graph. Edges are divided into
// same-sized chunks by slot order (plain mode) or after core/non-core
// grouping (core-subgraph mode); each chunk becomes one partition whose
// vertex table holds a replica of every endpoint.
func Cut(g *Graph, edges []model.Edge, opt Options) (*PGraph, error) {
	if opt.NumPartitions < 1 {
		return nil, fmt.Errorf("graph: NumPartitions must be >= 1, got %d", opt.NumPartitions)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: cannot partition an empty edge list")
	}
	chunk := (len(edges) + opt.NumPartitions - 1) / opt.NumPartitions

	var groups [][]model.Edge
	numCore := 0
	if opt.CoreSubgraph {
		frac := opt.CoreFraction
		if frac <= 0 {
			frac = 0.05
		}
		core := coreSet(g, frac)
		var coreEdges, rest []model.Edge
		for _, e := range edges {
			if core[e.Src] && core[e.Dst] {
				coreEdges = append(coreEdges, e)
			} else {
				rest = append(rest, e)
			}
		}
		coreChunks := chunkEdges(coreEdges, chunk)
		numCore = len(coreChunks)
		groups = append(coreChunks, chunkEdges(rest, chunk)...)
	} else {
		groups = chunkEdges(edges, chunk)
	}

	pg := &PGraph{
		G:         g,
		MasterOf:  make([]PartVertex, g.N),
		Replicas:  make(map[model.VertexID][]PartVertex),
		ChunkSize: chunk,
		NumCore:   numCore,
	}
	for i := range pg.MasterOf {
		pg.MasterOf[i] = PartVertex{Part: -1}
	}
	for id, group := range groups {
		pg.Parts = append(pg.Parts, buildPartition(g, id, group, id < numCore))
	}
	pg.assignMasters()
	return pg, nil
}

func chunkEdges(edges []model.Edge, chunk int) [][]model.Edge {
	var out [][]model.Edge
	for start := 0; start < len(edges); start += chunk {
		end := start + chunk
		if end > len(edges) {
			end = len(edges)
		}
		out = append(out, edges[start:end])
	}
	return out
}

// coreSet returns the set of "core" vertices: the top fraction by total
// degree (the paper's degree-threshold rule).
func coreSet(g *Graph, fraction float64) map[model.VertexID]bool {
	k := int(float64(g.N) * fraction)
	if k < 1 {
		k = 1
	}
	type vd struct {
		v model.VertexID
		d int
	}
	all := make([]vd, g.N)
	for v := 0; v < g.N; v++ {
		all[v] = vd{model.VertexID(v), g.Degree(model.VertexID(v), model.Both)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].v < all[j].v
	})
	core := make(map[model.VertexID]bool, k)
	for _, x := range all[:k] {
		core[x.v] = true
	}
	return core
}

func buildPartition(g *Graph, id int, edges []model.Edge, core bool) *Partition {
	// Collect the unique endpoints as the local vertex table. Hole slots
	// (freed by removals) occupy chunk space but contribute nothing.
	seen := make(map[model.VertexID]bool, len(edges))
	live := 0
	for _, e := range edges {
		if e.IsHole() {
			continue
		}
		live++
		seen[e.Src] = true
		seen[e.Dst] = true
	}
	globals := make([]model.VertexID, 0, len(seen))
	for v := range seen {
		globals = append(globals, v)
	}
	sort.Slice(globals, func(i, j int) bool { return globals[i] < globals[j] })
	local := make(map[model.VertexID]uint32, len(globals))
	for i, v := range globals {
		local[v] = uint32(i)
	}

	p := &Partition{
		ID:       id,
		UID:      uidCounter.Add(1),
		Globals:  globals,
		NumEdges: live,
		Core:     core,
	}
	n := len(globals)
	p.OutOff = make([]uint32, n+1)
	p.InOff = make([]uint32, n+1)
	for _, e := range edges {
		if e.IsHole() {
			continue
		}
		p.OutOff[local[e.Src]+1]++
		p.InOff[local[e.Dst]+1]++
	}
	for v := 0; v < n; v++ {
		p.OutOff[v+1] += p.OutOff[v]
		p.InOff[v+1] += p.InOff[v]
	}
	p.OutDst = make([]uint32, live)
	p.OutW = make([]float32, live)
	p.InDst = make([]uint32, live)
	p.InW = make([]float32, live)
	outPos := append([]uint32(nil), p.OutOff[:n]...)
	inPos := append([]uint32(nil), p.InOff[:n]...)
	for _, e := range edges {
		if e.IsHole() {
			continue
		}
		ls, ld := local[e.Src], local[e.Dst]
		p.OutDst[outPos[ls]] = ld
		p.OutW[outPos[ls]] = e.Weight
		outPos[ls]++
		p.InDst[inPos[ld]] = ls
		p.InW[inPos[ld]] = e.Weight
		inPos[ld]++
	}

	totalDeg := 0
	for _, v := range globals {
		totalDeg += g.Degree(v, model.Both)
	}
	if n > 0 {
		p.AvgDegree = float64(totalDeg) / float64(n)
	}
	p.computeBytes()
	return p
}

// assignMasters nominates the lowest-numbered partition containing each
// vertex as its master location and records replica lists for vertices that
// appear in more than one partition.
func (pg *PGraph) assignMasters() {
	for _, p := range pg.Parts {
		for li, v := range p.Globals {
			if pg.MasterOf[v].Part == -1 {
				pg.MasterOf[v] = PartVertex{Part: int32(p.ID), Local: uint32(li)}
			} else {
				pg.Replicas[v] = append(pg.Replicas[v], PartVertex{Part: int32(p.ID), Local: uint32(li)})
			}
		}
	}
	// Prepend the master so Replicas lists every location, master first.
	for v, mirrors := range pg.Replicas {
		pg.Replicas[v] = append([]PartVertex{pg.MasterOf[v]}, mirrors...)
	}
	pg.Masters = make([][]bool, len(pg.Parts))
	pg.MasterParts = make([][]int32, len(pg.Parts))
	for pi, p := range pg.Parts {
		pg.Masters[pi] = make([]bool, len(p.Globals))
		pg.MasterParts[pi] = make([]int32, len(p.Globals))
		for li, v := range p.Globals {
			m := pg.MasterOf[v]
			pg.MasterParts[pi][li] = m.Part
			pg.Masters[pi][li] = m.Part == int32(p.ID) && m.Local == uint32(li)
		}
	}
}

// ReplicaLocations returns every replica location of v (master first).
func (pg *PGraph) ReplicaLocations(v model.VertexID) []PartVertex {
	if r, ok := pg.Replicas[v]; ok {
		return r
	}
	if pg.MasterOf[v].Part == -1 {
		return nil
	}
	return []PartVertex{pg.MasterOf[v]}
}

// TotalStructBytes sums the structure bytes across partitions.
func (pg *PGraph) TotalStructBytes() int64 {
	var total int64
	for _, p := range pg.Parts {
		total += p.StructBytes
	}
	return total
}

// SuggestPartitionBytes solves the §3.2.1 sizing constraint
// Pg + Pg/sg·sp·N + b ≤ C for the largest Pg: the cache should hold one
// structure partition plus the private-table slices of N concurrently
// triggered jobs with a reserve buffer b.
func SuggestPartitionBytes(cacheBytes int64, cores int, structBytesPerItem, privateBytesPerItem float64, reserve int64) int64 {
	usable := float64(cacheBytes - reserve)
	if usable <= 0 {
		return 0
	}
	pg := usable / (1 + privateBytesPerItem*float64(cores)/structBytesPerItem)
	return int64(pg)
}

// SuggestNumPartitions converts the Pg formula into a partition count for a
// graph with the given total structure bytes.
func SuggestNumPartitions(totalStructBytes, cacheBytes int64, cores int, structBytesPerItem, privateBytesPerItem float64, reserve int64) int {
	pg := SuggestPartitionBytes(cacheBytes, cores, structBytesPerItem, privateBytesPerItem, reserve)
	if pg <= 0 {
		return 1
	}
	n := int((totalStructBytes + pg - 1) / pg)
	if n < 1 {
		n = 1
	}
	return n
}

// ChangedPartitions maps mutated edge-slot indices to the set of partitions
// whose chunks contain them (plain partitioning only, where slot→partition
// is slot/ChunkSize).
func ChangedPartitions(changedSlots []int, chunkSize, numPartitions int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, s := range changedSlots {
		p := s / chunkSize
		if p >= numPartitions {
			p = numPartitions - 1
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// Restructure builds the partitioned graph of a snapshot whose edge-slot
// count or vertex space differs from prev (plain-mode partitioning only):
// the slot-stable chunking is preserved, so only the partitions whose slot
// ranges are named in changedSlots — plus chunks appended, dropped, or
// resized at the list boundary — are rebuilt from the mutated edge list.
// Every other *Partition is shared by pointer with prev, exactly as in
// Overlay, so a structural delta recuts O(touched) partitions instead of
// re-running the full Cut. The vertex space may grow (new vertices get
// replicas only once edges reach them) but never shrink: jobs bound to
// older snapshots index per-snapshot state by their own PG, so a larger N
// in a newer snapshot never perturbs them. Returns the new snapshot and
// the IDs of the partitions that were rebuilt.
func Restructure(prev *PGraph, numVertices int, edges []model.Edge, changedSlots []int) (*PGraph, []int, error) {
	if prev.NumCore != 0 {
		return nil, nil, fmt.Errorf("graph: Restructure requires plain partitioning (slot-stable chunks)")
	}
	if len(edges) == 0 {
		return nil, nil, fmt.Errorf("graph: cannot partition an empty edge list")
	}
	if numVertices < prev.G.N {
		return nil, nil, fmt.Errorf("graph: Restructure cannot shrink the vertex space (%d -> %d)", prev.G.N, numVertices)
	}
	chunk := prev.ChunkSize
	wantParts := (len(edges) + chunk - 1) / chunk
	rebuild := make(map[int]bool)
	for _, s := range changedSlots {
		if s < 0 || s >= len(edges) {
			// A slot beyond the new list: its chunk shrank or vanished;
			// the boundary rule below rebuilds what remains of it.
			continue
		}
		rebuild[s/chunk] = true
	}
	// Chunks beyond prev's partition count are new and always built.
	for p := len(prev.Parts); p < wantParts; p++ {
		rebuild[p] = true
	}
	// When the list grew or shrank, the chunk containing the shorter
	// boundary changed its slot range even if none of its slots were
	// rewritten in place — unless the boundary lands exactly on a chunk
	// edge, in which case that chunk is complete and identical in both
	// lists and stays shared. Compared in slots, not live edges: holes
	// occupy chunk space, which is exactly what keeps a remove-bearing
	// flush from resizing the tail chunk.
	prevE := prev.G.Slots
	if b := min(len(edges), prevE); len(edges) != prevE && b%chunk != 0 {
		if p := (b - 1) / chunk; p < wantParts {
			rebuild[p] = true
		}
	}

	g := Build(numVertices, edges)
	pg := &PGraph{
		G:         g,
		Parts:     make([]*Partition, wantParts),
		MasterOf:  make([]PartVertex, g.N),
		Replicas:  make(map[model.VertexID][]PartVertex),
		ChunkSize: chunk,
	}
	for i := range pg.MasterOf {
		pg.MasterOf[i] = PartVertex{Part: -1}
	}
	var rebuilt []int
	for id := 0; id < wantParts; id++ {
		if id < len(prev.Parts) && !rebuild[id] {
			pg.Parts[id] = prev.Parts[id]
			continue
		}
		start := id * chunk
		end := min(start+chunk, len(edges))
		pg.Parts[id] = buildPartition(g, id, edges[start:end], false)
		rebuilt = append(rebuilt, id)
	}
	pg.assignMasters()
	return pg, rebuilt, nil
}

// Overlay builds the partitioned graph of a new snapshot from a previous
// plain-mode partitioning: only the partitions named in changedParts are
// rebuilt from the mutated edge list, every other *Partition is shared by
// pointer with prev (so the memory-hierarchy simulator sees one cacheable
// item, the property Fig. 5 relies on). Replica assignment is recomputed for
// the new snapshot at the PGraph level, leaving shared partition bytes
// untouched.
func Overlay(prev *PGraph, edges []model.Edge, changedParts []int) (*PGraph, error) {
	if prev.NumCore != 0 {
		return nil, fmt.Errorf("graph: Overlay requires plain partitioning (slot-stable chunks)")
	}
	wantParts := (len(edges) + prev.ChunkSize - 1) / prev.ChunkSize
	if wantParts != len(prev.Parts) {
		return nil, fmt.Errorf("graph: Overlay edge count changed partition count (%d -> %d)", len(prev.Parts), wantParts)
	}
	g := Build(prev.G.N, edges)
	pg := &PGraph{
		G:         g,
		Parts:     append([]*Partition(nil), prev.Parts...),
		MasterOf:  make([]PartVertex, g.N),
		Replicas:  make(map[model.VertexID][]PartVertex),
		ChunkSize: prev.ChunkSize,
	}
	for i := range pg.MasterOf {
		pg.MasterOf[i] = PartVertex{Part: -1}
	}
	for _, id := range changedParts {
		if id < 0 || id >= len(pg.Parts) {
			return nil, fmt.Errorf("graph: Overlay changed partition %d out of range", id)
		}
		start := id * prev.ChunkSize
		end := start + prev.ChunkSize
		if end > len(edges) {
			end = len(edges)
		}
		pg.Parts[id] = buildPartition(g, id, edges[start:end], false)
	}
	pg.assignMasters()
	return pg, nil
}
