package graph

import (
	"testing"
	"testing/quick"

	"cgraph/internal/gen"
	"cgraph/model"
)

func buildSmall(t *testing.T) (*Graph, []model.Edge) {
	t.Helper()
	edges := []model.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 2},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 2, Dst: 3, Weight: 4},
		{Src: 3, Dst: 0, Weight: 5},
		{Src: 3, Dst: 4, Weight: 6},
	}
	return Build(0, edges), edges
}

func TestBuildCSR(t *testing.T) {
	g, _ := buildSmall(t)
	if g.N != 5 {
		t.Fatalf("N = %d, want 5", g.N)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 2 || g.OutDegree(4) != 0 {
		t.Fatal("wrong out degrees")
	}
	if g.InDegree(2) != 2 || g.InDegree(0) != 1 || g.InDegree(4) != 1 {
		t.Fatal("wrong in degrees")
	}
	if g.Degree(0, model.Both) != 3 {
		t.Fatalf("Degree(0, Both) = %d, want 3", g.Degree(0, model.Both))
	}
	// Out-neighbours of 0 are 1 and 2.
	nbrs := map[model.VertexID]bool{}
	for i := g.OutOff[0]; i < g.OutOff[1]; i++ {
		nbrs[g.OutDst[i]] = true
	}
	if !nbrs[1] || !nbrs[2] {
		t.Fatalf("out-neighbours of 0 = %v", nbrs)
	}
}

func TestBuildInfersVertexCount(t *testing.T) {
	g := Build(0, []model.Edge{{Src: 7, Dst: 3}})
	if g.N != 8 {
		t.Fatalf("N = %d, want 8", g.N)
	}
	g = Build(20, []model.Edge{{Src: 7, Dst: 3}})
	if g.N != 20 {
		t.Fatalf("N = %d, want 20 (explicit)", g.N)
	}
}

func TestPartitionBasics(t *testing.T) {
	g, edges := buildSmall(t)
	pg, err := Cut(g, edges, Options{NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(pg.Parts))
	}
	if pg.Parts[0].NumEdges != 3 || pg.Parts[1].NumEdges != 3 {
		t.Fatalf("edge split = %d/%d, want 3/3", pg.Parts[0].NumEdges, pg.Parts[1].NumEdges)
	}
	// Vertex 2 appears in both partitions: one master, one mirror.
	locs := pg.ReplicaLocations(2)
	if len(locs) != 2 {
		t.Fatalf("vertex 2 replicas = %d, want 2", len(locs))
	}
	m := pg.MasterOf[2]
	if locs[0] != m {
		t.Fatal("ReplicaLocations must list master first")
	}
	if !pg.IsMaster(int(m.Part), m.Local) || pg.Parts[m.Part].Globals[m.Local] != 2 {
		t.Fatal("master flag inconsistent")
	}
}

func TestPartitionErrors(t *testing.T) {
	g, edges := buildSmall(t)
	if _, err := Cut(g, edges, Options{NumPartitions: 0}); err == nil {
		t.Fatal("want error for 0 partitions")
	}
	if _, err := Cut(g, nil, Options{NumPartitions: 2}); err == nil {
		t.Fatal("want error for empty edges")
	}
}

// checkInvariants verifies the partitioning invariants from DESIGN.md §5.
func checkInvariants(t *testing.T, g *Graph, edges []model.Edge, pg *PGraph) {
	t.Helper()
	// Every edge appears exactly once across partitions.
	totalEdges := 0
	for _, p := range pg.Parts {
		totalEdges += p.NumEdges
		if int(p.OutOff[len(p.Globals)]) != p.NumEdges {
			t.Fatalf("part %d: out CSR edge count mismatch", p.ID)
		}
		if int(p.InOff[len(p.Globals)]) != p.NumEdges {
			t.Fatalf("part %d: in CSR edge count mismatch", p.ID)
		}
		// Local vertex table sorted.
		for i := 1; i < len(p.Globals); i++ {
			if p.Globals[i-1] >= p.Globals[i] {
				t.Fatalf("part %d: vertex table not sorted", p.ID)
			}
		}
		// LocalOf agrees with Globals.
		for li, v := range p.Globals {
			got, ok := p.LocalOf(v)
			if !ok || got != uint32(li) {
				t.Fatalf("part %d: LocalOf(%d) = %d,%v", p.ID, v, got, ok)
			}
		}
		if _, ok := p.LocalOf(model.VertexID(g.N + 100)); ok {
			t.Fatalf("part %d: LocalOf found absent vertex", p.ID)
		}
	}
	if totalEdges != len(edges) {
		t.Fatalf("edges across partitions = %d, want %d", totalEdges, len(edges))
	}
	// Exactly one master per vertex with at least one edge.
	masterCount := make(map[model.VertexID]int)
	for pi, p := range pg.Parts {
		for li, v := range p.Globals {
			if pg.IsMaster(pi, uint32(li)) {
				masterCount[v]++
			}
			// Mirror's MasterPart names a partition containing the master.
			mp := pg.MasterPart(pi, uint32(li))
			master := pg.Parts[mp]
			ml, ok := master.LocalOf(v)
			if !ok || !pg.IsMaster(int(mp), ml) {
				t.Fatalf("part %d: MasterPart of %d broken", p.ID, v)
			}
		}
	}
	for v := 0; v < g.N; v++ {
		hasEdge := g.Degree(model.VertexID(v), model.Both) > 0
		if hasEdge && masterCount[model.VertexID(v)] != 1 {
			t.Fatalf("vertex %d has %d masters", v, masterCount[model.VertexID(v)])
		}
		if !hasEdge && masterCount[model.VertexID(v)] != 0 {
			t.Fatalf("isolated vertex %d has a master", v)
		}
	}
	// Replica lists invert membership.
	for v := 0; v < g.N; v++ {
		locs := pg.ReplicaLocations(model.VertexID(v))
		for _, l := range locs {
			if pg.Parts[l.Part].Globals[l.Local] != model.VertexID(v) {
				t.Fatalf("replica list of %d names wrong slot", v)
			}
		}
	}
}

func TestPartitionInvariantsQuick(t *testing.T) {
	f := func(seed int64, nParts uint8) bool {
		np := int(nParts)%8 + 1
		edges := gen.ER(seed, 60, 400)
		g := Build(0, edges)
		pg, err := Cut(g, edges, Options{NumPartitions: np})
		if err != nil {
			return false
		}
		checkInvariants(t, g, edges, pg)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreSubgraphPartitioning(t *testing.T) {
	edges := gen.RMAT(17, 256, 4000, 0.57, 0.19, 0.19)
	g := Build(0, edges)
	pg, err := Cut(g, edges, Options{NumPartitions: 8, CoreSubgraph: true, CoreFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, edges, pg)
	if pg.NumCore == 0 {
		t.Fatal("no core partitions produced for a skewed graph")
	}
	for i, p := range pg.Parts {
		if (i < pg.NumCore) != p.Core {
			t.Fatalf("core flag mismatch at partition %d", i)
		}
	}
	// Core partitions collect high-degree vertices: their average degree
	// must exceed the non-core average.
	var coreAvg, restAvg float64
	for _, p := range pg.Parts {
		if p.Core {
			coreAvg += p.AvgDegree
		} else {
			restAvg += p.AvgDegree
		}
	}
	coreAvg /= float64(pg.NumCore)
	restAvg /= float64(len(pg.Parts) - pg.NumCore)
	if coreAvg <= restAvg {
		t.Fatalf("core avg degree %.1f <= rest %.1f", coreAvg, restAvg)
	}
}

func TestScatterNeverLeavesPartition(t *testing.T) {
	// Every local CSR destination index must be a valid local vertex: the
	// property that lets Algorithm 1 run with no cross-partition access.
	edges := gen.RMAT(3, 128, 2000, 0.57, 0.19, 0.19)
	g := Build(0, edges)
	pg, err := Cut(g, edges, Options{NumPartitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pg.Parts {
		n := uint32(len(p.Globals))
		for _, d := range p.OutDst {
			if d >= n {
				t.Fatalf("part %d: out dst %d out of range %d", p.ID, d, n)
			}
		}
		for _, s := range p.InDst {
			if s >= n {
				t.Fatalf("part %d: in src %d out of range %d", p.ID, s, n)
			}
		}
	}
}

func TestSuggestPartitionBytes(t *testing.T) {
	// With sp=16, sg=8, N=4: Pg(1 + 16*4/8) = Pg*9 = usable.
	pg := SuggestPartitionBytes(9*1024+64, 4, 8, 16, 64)
	if pg != 1024 {
		t.Fatalf("Pg = %d, want 1024", pg)
	}
	if SuggestPartitionBytes(10, 4, 8, 16, 64) != 0 {
		t.Fatal("want 0 when reserve exceeds cache")
	}
	n := SuggestNumPartitions(10240, 9*1024+64, 4, 8, 16, 64)
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
	if SuggestNumPartitions(10240, 10, 4, 8, 16, 64) != 1 {
		t.Fatal("degenerate cache must still give 1 partition")
	}
}

func TestChangedPartitions(t *testing.T) {
	got := ChangedPartitions([]int{0, 5, 99, 100, 250}, 100, 3)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestPartitionByteAccounting(t *testing.T) {
	g, edges := buildSmall(t)
	pg, err := Cut(g, edges, Options{NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pg.Parts {
		want := 64 + int64(len(p.Globals))*9 + int64(len(p.OutDst))*8 + int64(len(p.InDst))*8
		if p.StructBytes != want {
			t.Fatalf("part %d StructBytes = %d, want %d", p.ID, p.StructBytes, want)
		}
	}
	if pg.TotalStructBytes() != pg.Parts[0].StructBytes+pg.Parts[1].StructBytes {
		t.Fatal("TotalStructBytes mismatch")
	}
}

// TestRestructureGrow: appending edges past the chunk boundary must grow
// the partition count, rebuild only the boundary and new chunks, and keep
// every untouched partition pointer-shared with the previous snapshot.
func TestRestructureGrow(t *testing.T) {
	edges := gen.ER(11, 80, 400)
	g := Build(80, edges)
	prev, err := Cut(g, edges, Options{NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	chunk := prev.ChunkSize

	grown := append(append([]model.Edge(nil), edges...),
		model.Edge{Src: 80, Dst: 3, Weight: 1},
		model.Edge{Src: 81, Dst: 80, Weight: 1},
	)
	for len(grown) <= len(prev.Parts)*chunk {
		grown = append(grown, model.Edge{Src: 81, Dst: 82, Weight: 1})
	}
	changed := make([]int, 0, len(grown)-len(edges))
	for s := len(edges); s < len(grown); s++ {
		changed = append(changed, s)
	}
	next, rebuilt, err := Restructure(prev, 83, grown, changed)
	if err != nil {
		t.Fatal(err)
	}
	if next.G.N != 83 {
		t.Fatalf("N = %d, want 83", next.G.N)
	}
	if len(next.Parts) != len(prev.Parts)+1 {
		t.Fatalf("parts = %d, want %d", len(next.Parts), len(prev.Parts)+1)
	}
	if len(rebuilt) >= len(next.Parts) {
		t.Fatalf("rebuilt %d of %d partitions, want strictly fewer", len(rebuilt), len(next.Parts))
	}
	shared := 0
	for i := 0; i < len(prev.Parts); i++ {
		if next.Parts[i] == prev.Parts[i] {
			shared++
		}
	}
	if shared != len(next.Parts)-len(rebuilt) {
		t.Fatalf("shared = %d, want %d", shared, len(next.Parts)-len(rebuilt))
	}
	if shared == 0 {
		t.Fatal("growth rebuilt every partition")
	}
	checkInvariants(t, next.G, grown, next)

	// The restructured snapshot must equal a from-scratch chunking of the
	// same list: identical vertex tables and CSRs per partition.
	for id, p := range next.Parts {
		start := id * chunk
		end := min(start+chunk, len(grown))
		want := buildPartition(next.G, id, grown[start:end], false)
		if len(p.Globals) != len(want.Globals) || p.NumEdges != want.NumEdges {
			t.Fatalf("part %d: shape differs from fresh build", id)
		}
		for i, v := range want.Globals {
			if p.Globals[i] != v {
				t.Fatalf("part %d: vertex table differs from fresh build", id)
			}
		}
		for i := range want.OutDst {
			if p.OutDst[i] != want.OutDst[i] || p.OutW[i] != want.OutW[i] {
				t.Fatalf("part %d: out CSR differs from fresh build", id)
			}
		}
	}
}

// TestRestructureShrink: removing tail edges drops the trailing chunk and
// rebuilds only the new boundary chunk.
func TestRestructureShrink(t *testing.T) {
	edges := gen.ER(12, 60, 330)
	g := Build(60, edges)
	prev, err := Cut(g, edges, Options{NumPartitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	chunk := prev.ChunkSize
	cut := chunk + chunk/2 // drop the last chunk and half of the next
	shrunk := append([]model.Edge(nil), edges[:len(edges)-cut]...)
	changed := make([]int, 0, cut)
	for s := len(shrunk); s < len(edges); s++ {
		changed = append(changed, s)
	}
	next, rebuilt, err := Restructure(prev, 60, shrunk, changed)
	if err != nil {
		t.Fatal(err)
	}
	wantParts := (len(shrunk) + chunk - 1) / chunk
	if len(next.Parts) != wantParts {
		t.Fatalf("parts = %d, want %d", len(next.Parts), wantParts)
	}
	if len(rebuilt) != 1 || rebuilt[0] != wantParts-1 {
		t.Fatalf("rebuilt = %v, want just the boundary chunk %d", rebuilt, wantParts-1)
	}
	for i := 0; i < wantParts-1; i++ {
		if next.Parts[i] != prev.Parts[i] {
			t.Fatalf("untouched part %d not shared", i)
		}
	}
	checkInvariants(t, next.G, shrunk, next)
}

// TestRestructureVertexOnlyGrowth: growing the vertex space with no edge
// change shares every partition and just widens the master table.
func TestRestructureVertexOnlyGrowth(t *testing.T) {
	edges := gen.ER(13, 40, 200)
	g := Build(40, edges)
	prev, err := Cut(g, edges, Options{NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	next, rebuilt, err := Restructure(prev, 50, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 0 {
		t.Fatalf("vertex-only growth rebuilt %v", rebuilt)
	}
	if next.G.N != 50 || len(next.MasterOf) != 50 {
		t.Fatalf("vertex space = %d, want 50", next.G.N)
	}
	for i := range prev.Parts {
		if next.Parts[i] != prev.Parts[i] {
			t.Fatalf("part %d not shared", i)
		}
	}
	if next.MasterOf[45].Part != -1 {
		t.Fatal("edge-less new vertex has a master replica")
	}
	checkInvariants(t, next.G, edges, next)
}

func TestRestructureErrors(t *testing.T) {
	edges := gen.ER(14, 30, 120)
	g := Build(30, edges)
	prev, err := Cut(g, edges, Options{NumPartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restructure(prev, 20, edges, nil); err == nil {
		t.Fatal("vertex-space shrink accepted")
	}
	if _, _, err := Restructure(prev, 30, nil, nil); err == nil {
		t.Fatal("empty edge list accepted")
	}
	core, err := Cut(g, edges, Options{NumPartitions: 3, CoreSubgraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if core.NumCore > 0 {
		if _, _, err := Restructure(core, 30, edges, nil); err == nil {
			t.Fatal("core-subgraph partitioning accepted")
		}
	}
}

// TestRestructureBoundaryAlignedGrowth: when the previous list ends
// exactly on a chunk boundary, growth must not rebuild the old tail chunk
// — its slot range is identical in both lists.
func TestRestructureBoundaryAlignedGrowth(t *testing.T) {
	edges := gen.ER(15, 40, 200) // 200 edges, 4 chunks of 50: boundary-aligned
	g := Build(40, edges)
	prev, err := Cut(g, edges, Options{NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(edges)%prev.ChunkSize != 0 {
		t.Fatalf("setup: %d edges not chunk-aligned (chunk %d)", len(edges), prev.ChunkSize)
	}
	grown := append(append([]model.Edge(nil), edges...), model.Edge{Src: 1, Dst: 2, Weight: 1})
	next, rebuilt, err := Restructure(prev, 40, grown, []int{len(edges)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 1 || rebuilt[0] != len(prev.Parts) {
		t.Fatalf("rebuilt = %v, want only the new chunk %d", rebuilt, len(prev.Parts))
	}
	for i := range prev.Parts {
		if next.Parts[i] != prev.Parts[i] {
			t.Fatalf("boundary-aligned growth rebuilt untouched part %d", i)
		}
	}
	checkInvariants(t, next.G, grown, next)

	// And the symmetric shrink back to the boundary shares everything
	// that remains.
	back, rebuilt, err := Restructure(next, 40, edges, []int{len(edges)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 0 {
		t.Fatalf("boundary-aligned shrink rebuilt %v", rebuilt)
	}
	for i := range back.Parts {
		if back.Parts[i] != next.Parts[i] {
			t.Fatalf("shrink rebuilt untouched part %d", i)
		}
	}
	checkInvariants(t, back.G, edges, back)
}
