package harness

import (
	"fmt"

	"cgraph/internal/core"
	"cgraph/internal/gen"
	"cgraph/internal/sched"
)

// AblationStraggler measures the Fig. 6 straggler-splitting mechanism: the
// four-job workload with intra-partition work splitting on and off.
func AblationStraggler(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:      "ablation-straggler",
		Title:   "Straggler splitting ablation (makespan, split-off = 1.00)",
		Columns: []string{"Data set", "Split off", "Split on"},
		Notes:   "design choice of §3.2.3 / Fig. 6",
	}
	for _, d := range gen.StandIns(opt.Scale) {
		opt.logf("ablation-straggler: %s", d.Name)
		env := NewEnv(d, opt.Workers, opt.Scale)
		specs := benchmarks(4, opt.Epsilon, func(int) int64 { return 0 })
		run := func(disable bool) (float64, error) {
			store, err := env.Store(true)
			if err != nil {
				return 0, err
			}
			eng := core.New(core.Config{
				Workers:               opt.Workers,
				Hier:                  env.Hier(),
				Scheduler:             sched.Priority,
				DisableStragglerSplit: disable,
			}, store)
			for _, s := range specs {
				eng.Submit(s.Prog, s.Arrival)
			}
			rep, err := eng.Run()
			if err != nil {
				return 0, err
			}
			return rep.Makespan, nil
		}
		off, err := run(true)
		if err != nil {
			return nil, err
		}
		on, err := run(false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{d.Name, "1.00", f2(on / off)})
	}
	return t, nil
}

// AblationScheduler separates the two halves of §3.3: core-subgraph
// partitioning and Eq. 1 priority ordering, each toggled independently.
func AblationScheduler(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:      "ablation-scheduler",
		Title:   "Scheduler ablation (makespan, static+plain = 1.00)",
		Columns: []string{"Data set", "static+plain", "priority+plain", "static+core", "priority+core"},
		Notes:   "columns toggle Eq. 1 ordering and core-subgraph partitioning independently",
	}
	for _, d := range gen.StandIns(opt.Scale) {
		opt.logf("ablation-scheduler: %s", d.Name)
		env := NewEnv(d, opt.Workers, opt.Scale)
		specs := benchmarks(4, opt.Epsilon, func(int) int64 { return 0 })
		run := func(kind sched.Kind, coreSub bool) (float64, error) {
			store, err := env.Store(coreSub)
			if err != nil {
				return 0, err
			}
			rep, err := env.runCGraph(store, specs, kind, "CGraph", 0)
			if err != nil {
				return 0, err
			}
			return rep.Makespan, nil
		}
		base, err := run(sched.Static, false)
		if err != nil {
			return nil, err
		}
		row := []string{d.Name, "1.00"}
		for _, cfg := range []struct {
			kind sched.Kind
			core bool
		}{{sched.Priority, false}, {sched.Static, true}, {sched.Priority, true}} {
			m, err := run(cfg.kind, cfg.core)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(m/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationBatching sweeps the job count past the worker count to exercise
// the §3.2.3 batching path (|J| > N).
func AblationBatching(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	d, err := gen.StandIn("ukunion-sim", opt.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-batching",
		Title:   fmt.Sprintf("Jobs beyond workers (N=%d), makespan per job normalized to 4 jobs", opt.Workers),
		Columns: []string{"Jobs", "Makespan/job"},
	}
	env := NewEnv(d, opt.Workers, opt.Scale)
	var base float64
	for _, njobs := range []int{4, 8, 16, 32} {
		opt.logf("ablation-batching: %d jobs", njobs)
		store, err := env.Store(true)
		if err != nil {
			return nil, err
		}
		specs := benchmarks(njobs, opt.Epsilon, func(int) int64 { return 0 })
		rep, err := env.runCGraph(store, specs, sched.Priority, "CGraph", 0)
		if err != nil {
			return nil, err
		}
		perJob := rep.Makespan / float64(njobs)
		if base == 0 {
			base = perJob
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", njobs), f2(perJob / base)})
	}
	return t, nil
}

// AblationTwoLevel compares one-level scheduling (Eq. 1 over the union of
// every job's footprint) against the snapshot-aware two-level policy
// (correlation groups first, Eq. 1 within each group) on the §4.4
// multi-snapshot workload: job i binds to snapshot i of a series with 5%
// edge change between consecutive versions.
func AblationTwoLevel(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	d, err := evolvingDataset(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-two-level",
		Title:   "Two-level scheduling on the multi-snapshot workload (makespan, one-level = 1.00)",
		Columns: []string{"Jobs", "one-level", "two-level"},
		Notes:   "job i bound to snapshot i (5% change per snapshot); two-level groups jobs by shared partition versions",
	}
	for _, njobs := range []int{2, 4, 8} {
		opt.logf("ablation-two-level: %d jobs", njobs)
		env := NewEnv(d, opt.Workers, opt.Scale)
		store, err := env.SnapshotSeries(njobs, 0.05)
		if err != nil {
			return nil, err
		}
		specs := benchmarks(njobs, opt.Epsilon, func(i int) int64 { return int64(i) })
		one, err := env.runCGraph(store, specs, sched.Priority, "CGraph", 0)
		if err != nil {
			return nil, err
		}
		two, err := env.runCGraph(store, specs, sched.TwoLevel, "CGraph-2L", 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", njobs), "1.00", f2(two.Makespan / one.Makespan),
		})
	}
	return t, nil
}

// All runs every experiment at the given options, in paper order.
func All(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	var out []*Table
	add := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, t)
		return nil
	}
	addN := func(ts []*Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, ts...)
		return nil
	}
	if err := add(Table1(opt)); err != nil {
		return nil, err
	}
	if err := addN(Fig1(opt)); err != nil {
		return nil, err
	}
	if err := addN(Fig2(opt)); err != nil {
		return nil, err
	}
	for _, fn := range []func(Options) (*Table, error){
		Fig8, Fig9, Fig10, Fig11, Fig12, Fig13, Fig14, Fig15,
		Fig16, Fig17, Fig18, Fig19,
		AblationStraggler, AblationScheduler, AblationBatching,
		AblationTwoLevel,
	} {
		if err := add(fn(opt)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
