package harness

import (
	"context"
	"fmt"

	"cgraph/algo"
	"cgraph/internal/core"
	"cgraph/internal/exec"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/metrics"
	"cgraph/internal/sched"
)

// The async sweep runs the skewed R-MAT stand-in at a size where many
// vertices keep a single replica under edge-chunk partitioning: the
// fresh-state path only folds eagerly into single-replica receivers, so
// this regime is where asynchronous execution can shorten convergence.
const (
	asyncSeed       = 31
	asyncVertices   = 4000
	asyncEdges      = 40000
	asyncPartitions = 8
	asyncStaleness  = 2
)

// BenchAsyncLeg is one execution discipline of the sweep, with both jobs
// (PageRank and SSSP) run under that discipline in a single engine.
type BenchAsyncLeg struct {
	// Mode is the execution discipline: "bsp", "async", or "delayed".
	Mode string `json:"mode"`
	// PageRankIterations / SSSPIterations count iterations to convergence.
	PageRankIterations int64 `json:"pagerank_iterations"`
	SSSPIterations     int64 `json:"sssp_iterations"`
	// MakespanUS is the virtual total execution time of the 2-job run.
	MakespanUS float64 `json:"makespan_us"`
	// FreshFolds counts contributions folded eagerly into live vertex
	// state (zero on the bsp leg by construction).
	FreshFolds int64 `json:"fresh_folds"`
	// BarriersSkipped / BarriersForced count the delayed leg's deferred
	// and staleness-forced merge barriers (zero outside delayed mode).
	BarriersSkipped int64 `json:"barriers_skipped"`
	BarriersForced  int64 `json:"barriers_forced"`
}

// BenchAsyncResult is the machine-readable artifact of the execution-mode
// sweep (written as BENCH_async.json).
type BenchAsyncResult struct {
	Dataset    string  `json:"dataset"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Partitions int     `json:"partitions"`
	Workers    int     `json:"workers"`
	Staleness  int     `json:"staleness"`
	Epsilon    float64 `json:"epsilon"`

	Legs []BenchAsyncLeg `json:"legs"`
	// PageRankSpeedup is bsp iterations over async iterations (>1 = the
	// fresh-state path converges in fewer sweeps).
	PageRankSpeedup float64 `json:"pagerank_speedup"`
}

// Leg returns the named leg, or nil.
func (r *BenchAsyncResult) Leg(mode string) *BenchAsyncLeg {
	for i := range r.Legs {
		if r.Legs[i].Mode == mode {
			return &r.Legs[i]
		}
	}
	return nil
}

// asyncLeg runs PageRank and SSSP under one execution mode on a fresh
// engine and store (virtual time is deterministic, so a single run is
// exact).
func (e *Env) asyncLeg(o Options, mode exec.Mode) (*BenchAsyncLeg, error) {
	store, err := e.Store(false)
	if err != nil {
		return nil, err
	}
	eng := core.New(core.Config{
		Workers:   e.Workers,
		Hier:      e.Hier(),
		Scheduler: sched.Priority,
		Label:     "CGraph",
	}, store)
	opts := core.SubmitOpts{Mode: mode}
	if mode == exec.ModeDelayed {
		opts.Staleness = asyncStaleness
	}
	prID := eng.SubmitWith(context.Background(), &algo.PageRank{Damping: 0.85, Epsilon: o.Epsilon}, opts)
	ssID := eng.SubmitWith(context.Background(), algo.NewSSSP(0), opts)
	rep, err := eng.Run()
	if err != nil {
		return nil, err
	}
	leg := &BenchAsyncLeg{Mode: mode.String(), MakespanUS: rep.Makespan}
	jobOf := func(id int) *metrics.JobMetrics {
		for i := range rep.Jobs {
			if rep.Jobs[i].JobID == id {
				return &rep.Jobs[i]
			}
		}
		return nil
	}
	pr, ss := jobOf(prID), jobOf(ssID)
	if pr == nil || ss == nil {
		return nil, fmt.Errorf("harness: async leg %s: missing job metrics", mode)
	}
	leg.PageRankIterations = int64(pr.Iterations)
	leg.SSSPIterations = int64(ss.Iterations)
	leg.FreshFolds = pr.FreshFolds + ss.FreshFolds
	leg.BarriersSkipped = pr.BarriersSkipped + ss.BarriersSkipped
	leg.BarriersForced = pr.BarriersForced + ss.BarriersForced
	return leg, nil
}

// asyncEnv prepares the execution-mode environment: like the scaling
// sweep it sizes the hierarchy to hold the graph, so iteration counts and
// trigger work — not partition loads — dominate the makespan, which is
// exactly the axis the modes differ on.
func asyncEnv(workers int, scale float64) *Env {
	edges := gen.RMAT(asyncSeed, asyncVertices, int(float64(asyncEdges)*scale), 0.57, 0.19, 0.19)
	g := graph.Build(asyncVertices, edges)
	return &Env{
		Dataset: gen.Dataset{
			Name:        "rmat-social",
			NumVertices: asyncVertices,
			NumEdges:    len(edges),
			Seed:        asyncSeed,
		},
		Edges:         edges,
		G:             g,
		Workers:       workers,
		CacheBytes:    16 << 20,
		MemoryBytes:   128 << 20,
		Cost:          ExperimentCost(),
		NumPartitions: asyncPartitions,
	}
}

// BenchAsync compares the three execution disciplines — synchronous BSP,
// asynchronous fresh-state, and delayed (bounded staleness) — on the same
// PageRank + SSSP workload. Async reads already-written neighbor state
// within a sweep, so PageRank converges in fewer iterations; SSSP, a
// monotonic min program, is never worse. Delayed trades extra iterations
// for fewer merge barriers under the staleness bound.
func BenchAsync(opt Options) (*Table, *BenchAsyncResult, error) {
	o := opt.withDefaults()
	env := asyncEnv(o.Workers, o.Scale)

	res := &BenchAsyncResult{
		Dataset:    env.Dataset.Name,
		Vertices:   env.G.N,
		Edges:      len(env.Edges),
		Partitions: env.NumPartitions,
		Workers:    env.Workers,
		Staleness:  asyncStaleness,
		Epsilon:    o.Epsilon,
	}

	t := &Table{
		ID:      "bench-async",
		Title:   fmt.Sprintf("Execution modes on %s (V=%d, E=%d, P=%d)", env.Dataset.Name, env.G.N, len(env.Edges), env.NumPartitions),
		Columns: []string{"Mode", "PR iters", "SSSP iters", "Makespan µs", "Fresh folds", "Barriers skipped", "Barriers forced"},
		Notes:   "PageRank + SSSP per leg; async folds contributions into single-replica receivers mid-sweep, delayed defers merge barriers up to the staleness bound",
	}

	for _, mode := range []exec.Mode{exec.ModeBSP, exec.ModeAsync, exec.ModeDelayed} {
		o.logf("bench-async: %s leg", mode)
		leg, err := env.asyncLeg(o, mode)
		if err != nil {
			return nil, nil, err
		}
		res.Legs = append(res.Legs, *leg)
		t.Rows = append(t.Rows, []string{
			leg.Mode,
			fmt.Sprintf("%d", leg.PageRankIterations),
			fmt.Sprintf("%d", leg.SSSPIterations),
			f2(leg.MakespanUS),
			fmt.Sprintf("%d", leg.FreshFolds),
			fmt.Sprintf("%d", leg.BarriersSkipped),
			fmt.Sprintf("%d", leg.BarriersForced),
		})
	}
	if bsp, async := res.Leg("bsp"), res.Leg("async"); bsp != nil && async != nil && async.PageRankIterations > 0 {
		res.PageRankSpeedup = float64(bsp.PageRankIterations) / float64(async.PageRankIterations)
	}
	return t, res, nil
}
