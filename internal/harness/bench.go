package harness

import (
	"context"
	"fmt"
	"time"

	"cgraph/internal/core"
	"cgraph/internal/gen"
	"cgraph/internal/sched"
	"cgraph/internal/span"
)

// BenchJobExec is one job's execution account from the traced leg.
type BenchJobExec struct {
	Job        string  `json:"job"`
	ExecUS     float64 `json:"exec_us"`
	Iterations int     `json:"iterations"`
}

// BenchConcurrentResult is the machine-readable artifact of the tracing
// overhead benchmark (written as BENCH_concurrent.json): the same 4-job
// concurrent workload run with round tracing on and off, so the
// instrumentation cost is measured rather than assumed.
type BenchConcurrentResult struct {
	Dataset    string `json:"dataset"`
	Jobs       int    `json:"jobs"`
	Workers    int    `json:"workers"`
	Runs       int    `json:"runs"`
	TraceDepth int    `json:"trace_depth"`

	// Best-of-Runs wall-clock makespan of the whole engine run, per leg.
	TracedWallMS   float64 `json:"traced_wall_ms"`
	UntracedWallMS float64 `json:"untraced_wall_ms"`
	// OverheadPct is (traced-untraced)/untraced·100; negative values mean
	// the difference drowned in run-to-run noise.
	OverheadPct float64 `json:"overhead_pct"`

	// SpannedWallMS is the traced leg re-run with the span tracer on at
	// default task sampling (1 in 64); SpanOverheadPct compares it to the
	// traced leg, isolating the span instrumentation's cost.
	SpannedWallMS   float64 `json:"spanned_wall_ms"`
	SpanOverheadPct float64 `json:"span_overhead_pct"`
	// SpanStarted / SpanEvicted are the tracer's counters after the spans
	// leg's best run: how many spans the workload generated and how many
	// the bounded store dropped.
	SpanStarted int64 `json:"span_started"`
	SpanEvicted int64 `json:"span_evicted"`

	// Wall-clock round-duration quantiles from the traced leg (seconds),
	// out of the engine's always-on round histogram.
	RoundP50S float64 `json:"round_p50_s"`
	RoundP95S float64 `json:"round_p95_s"`
	Rounds    uint64  `json:"rounds"`

	// JobExec lists per-job virtual execution times from the traced leg.
	JobExec []BenchJobExec `json:"job_exec"`
}

// benchLeg runs the 4-job workload `runs` times at the given trace depth and
// returns the best wall-clock makespan plus the engine and span tracer of
// the best run. When spans is true each run gets a fresh tracer at default
// capacity and task sampling, with every job submitted under its own root
// span — the full production span path, measured rather than assumed.
func (e *Env) benchLeg(o Options, depth, runs int, spans bool) (time.Duration, *core.Engine, []BenchJobExec, *span.Tracer, error) {
	best := time.Duration(0)
	var bestEng *core.Engine
	var bestJobs []BenchJobExec
	var bestTracer *span.Tracer
	for r := 0; r < runs; r++ {
		store, err := e.Store(true)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		cfg := core.Config{
			Workers:    e.Workers,
			Hier:       e.Hier(),
			Scheduler:  sched.Priority,
			Label:      "CGraph",
			TraceDepth: depth,
		}
		var tracer *span.Tracer
		if spans {
			tracer = span.New(span.Config{})
			cfg.Tracer = tracer
		}
		eng := core.New(cfg, store)
		var roots []*span.Span
		for i, s := range benchmarks(4, o.Epsilon, func(int) int64 { return 0 }) {
			if tracer == nil {
				eng.Submit(s.Prog, s.Arrival)
				continue
			}
			jobID := fmt.Sprintf("bench-%d", i)
			sp := tracer.StartSpan(span.Context{}, "job.submit")
			sp.SetJob(jobID)
			roots = append(roots, sp)
			eng.SubmitWith(context.Background(), s.Prog, core.SubmitOpts{
				Arrival: s.Arrival,
				Span:    sp.Context(),
				SpanJob: jobID,
			})
		}
		start := time.Now()
		rep, err := eng.Run()
		wall := time.Since(start)
		for _, sp := range roots {
			sp.End()
		}
		if err != nil {
			return 0, nil, nil, nil, err
		}
		if bestEng == nil || wall < best {
			best, bestEng, bestTracer = wall, eng, tracer
			bestJobs = bestJobs[:0]
			for _, j := range rep.Jobs {
				bestJobs = append(bestJobs, BenchJobExec{Job: j.Name, ExecUS: j.ExecTime(), Iterations: j.Iterations})
			}
		}
	}
	return best, bestEng, bestJobs, bestTracer, nil
}

// BenchConcurrent measures the wall-clock cost of round tracing on the
// standard concurrent workload: best-of-runs makespan with TraceDepth=depth
// versus TraceDepth=0 on a fresh engine each run, plus round-duration
// quantiles and per-job execution times from the traced leg.
func BenchConcurrent(opt Options, depth, runs int) (*Table, *BenchConcurrentResult, error) {
	o := opt.withDefaults()
	if depth <= 0 {
		depth = 256
	}
	if runs <= 0 {
		runs = 3
	}
	d, err := gen.StandIn("twitter-sim", o.Scale)
	if err != nil {
		return nil, nil, err
	}
	env := NewEnv(d, o.Workers, o.Scale)

	o.logf("bench-concurrent: untraced leg (%d runs)", runs)
	untraced, _, _, _, err := env.benchLeg(o, 0, runs, false)
	if err != nil {
		return nil, nil, err
	}
	o.logf("bench-concurrent: traced leg (depth %d, %d runs)", depth, runs)
	traced, eng, jobs, _, err := env.benchLeg(o, depth, runs, false)
	if err != nil {
		return nil, nil, err
	}
	o.logf("bench-concurrent: span leg (depth %d, default sampling, %d runs)", depth, runs)
	spanned, _, _, tracer, err := env.benchLeg(o, depth, runs, true)
	if err != nil {
		return nil, nil, err
	}
	spanStats := tracer.Stats()

	hist := eng.RoundDurations()
	res := &BenchConcurrentResult{
		Dataset:         d.Name,
		Jobs:            4,
		Workers:         o.Workers,
		Runs:            runs,
		TraceDepth:      depth,
		TracedWallMS:    float64(traced) / float64(time.Millisecond),
		UntracedWallMS:  float64(untraced) / float64(time.Millisecond),
		OverheadPct:     100 * (float64(traced) - float64(untraced)) / float64(untraced),
		SpannedWallMS:   float64(spanned) / float64(time.Millisecond),
		SpanOverheadPct: 100 * (float64(spanned) - float64(traced)) / float64(traced),
		SpanStarted:     spanStats.Started,
		SpanEvicted:     spanStats.Evicted,
		RoundP50S:       hist.Quantile(0.50),
		RoundP95S:       hist.Quantile(0.95),
		Rounds:          hist.Count,
		JobExec:         jobs,
	}

	t := &Table{
		ID:      "bench-concurrent",
		Title:   fmt.Sprintf("Round-tracing overhead, 4 concurrent jobs on %s (best of %d)", d.Name, runs),
		Columns: []string{"Leg", "Wall ms", "Round p50 ms", "Round p95 ms"},
		Rows: [][]string{
			{"untraced (depth 0)", f2(res.UntracedWallMS), "-", "-"},
			{fmt.Sprintf("traced (depth %d)", depth), f2(res.TracedWallMS), f2(res.RoundP50S * 1e3), f2(res.RoundP95S * 1e3)},
			{"overhead", fmt.Sprintf("%+.1f%%", res.OverheadPct), "", ""},
			{"traced + spans (1/64 tasks)", f2(res.SpannedWallMS), "-", "-"},
			{"span overhead vs traced", fmt.Sprintf("%+.1f%%", res.SpanOverheadPct), "", ""},
		},
		Notes: "wall-clock engine makespan; round quantiles from the traced leg's always-on histogram; " +
			"span leg runs the full distributed-span path at default task sampling",
	}
	return t, res, nil
}
