package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// testOpt keeps harness tests quick: 1/10 scale, loose epsilon.
func testOpt() Options {
	return Options{Scale: 0.1, Workers: 4, Epsilon: 1e-2}
}

func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestTable1(t *testing.T) {
	tab, err := Table1(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 datasets, got %d", len(tab.Rows))
	}
	// Sizes ascend like the paper's Table 1.
	for i := 1; i < 5; i++ {
		if cellF(t, tab, i, 4) <= cellF(t, tab, i-1, 4) {
			t.Fatal("edge counts not ascending")
		}
	}
}

func TestFig1(t *testing.T) {
	tabs, err := Fig1(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 || len(tabs[0].Rows) != 160 || len(tabs[1].Rows) != 160 {
		t.Fatal("trace panels wrong shape")
	}
	peak := 0.0
	for i := range tabs[0].Rows {
		if v := cellF(t, tabs[0], i, 1); v > peak {
			peak = v
		}
	}
	if peak < 15 {
		t.Fatalf("trace peak %v too low for Fig 1(a)", peak)
	}
}

func TestFig2Shape(t *testing.T) {
	tabs, err := Fig2(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	a := tabs[0]
	for r := range a.Rows {
		// Per-job time must grow with the number of concurrent instances
		// (the paper's central motivation observation).
		if cellF(t, a, r, 4) <= cellF(t, a, r, 1) {
			t.Fatalf("fig2a row %s: 8-job per-job time not above 1-job", a.Rows[r][0])
		}
	}
}

func TestFig8SchedulerHelps(t *testing.T) {
	tab, err := Fig8(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatal("want 5 datasets")
	}
	helped := 0
	for r := range tab.Rows {
		if cellF(t, tab, r, 2) < 100 {
			helped++
		}
	}
	if helped < 3 {
		t.Fatalf("scheduler helped on only %d/5 datasets", helped)
	}
}

func TestFig9CGraphWins(t *testing.T) {
	tab, err := Fig9(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		cg := cellF(t, tab, r, 4)
		for c := 1; c <= 3; c++ {
			if cg >= cellF(t, tab, r, c) {
				t.Fatalf("fig9 %s: CGraph %.2f not below %s %.2f",
					tab.Rows[r][0], cg, tab.Columns[c], cellF(t, tab, r, c))
			}
		}
	}
}

func TestFig10BreakdownShape(t *testing.T) {
	tab, err := Fig10(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	// CGraph's PageRank access share must be the lowest among systems.
	share := map[string]float64{}
	for r := range tab.Rows {
		if tab.Rows[r][1] == "PageRank" {
			share[tab.Rows[r][0]] = cellF(t, tab, r, 2)
		}
	}
	for _, sys := range []string{"CLIP", "NXgraph", "Seraph"} {
		if share["CGraph"] >= share[sys] {
			t.Fatalf("CGraph access share %.1f%% not below %s %.1f%%", share["CGraph"], sys, share[sys])
		}
	}
}

func TestFig11And18MissRates(t *testing.T) {
	tab, err := Fig11(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		cg := cellF(t, tab, r, 4)
		for c := 1; c <= 3; c++ {
			v := cellF(t, tab, r, c)
			if v < 0 || v > 100 {
				t.Fatalf("miss rate out of range: %v", v)
			}
			// CLIP's rate collapses when tiny per-job state fits the
			// cache (test scale); compare against it on the largest
			// dataset only, where the paper's pressure regime holds.
			if c == 1 && r < len(tab.Rows)-1 {
				continue
			}
			if cg >= v {
				t.Fatalf("fig11 %s: CGraph miss %.1f not below %s %.1f", tab.Rows[r][0], cg, tab.Columns[c], v)
			}
		}
	}
}

func TestFig12VolumeShape(t *testing.T) {
	tab, err := Fig12(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		cg := cellF(t, tab, r, 4)
		if cg >= 1.0 {
			t.Fatalf("fig12 %s: CGraph volume %.2f not below CLIP", tab.Rows[r][0], cg)
		}
		// NXgraph (per-job copies) above Seraph (shared copy).
		if cellF(t, tab, r, 2) < cellF(t, tab, r, 3) {
			t.Fatalf("fig12 %s: NXgraph below Seraph", tab.Rows[r][0])
		}
	}
}

func TestFig13IOShape(t *testing.T) {
	tab, err := Fig13(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	// CGraph never exceeds CLIP's I/O.
	for r := range tab.Rows {
		if cellF(t, tab, r, 4) > 1.0 {
			t.Fatalf("fig13 %s: CGraph I/O above CLIP", tab.Rows[r][0])
		}
	}
}

func TestFig14Scalability(t *testing.T) {
	opt := testOpt()
	tab, err := Fig14(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatal("want 6 worker counts")
	}
	// CGraph at 32 workers is its best configuration.
	last := len(tab.Rows) - 1
	if cellF(t, tab, last, 4) > cellF(t, tab, 0, 4) {
		t.Fatal("CGraph does not scale with workers")
	}
	// And CGraph at 32 workers beats every baseline at 32 workers.
	for c := 1; c <= 3; c++ {
		if cellF(t, tab, last, 4) >= cellF(t, tab, last, c) {
			t.Fatalf("CGraph at 32 workers not fastest (col %s)", tab.Columns[c])
		}
	}
}

func TestFig15Utilization(t *testing.T) {
	tab, err := Fig15(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		cg := cellF(t, tab, r, 4)
		if cg <= 0 || cg > 100 {
			t.Fatalf("utilization out of range: %v", cg)
		}
		for c := 1; c <= 3; c++ {
			if cg <= cellF(t, tab, r, c) {
				t.Fatalf("fig15 %s: CGraph utilization %.1f not above %s", tab.Rows[r][0], cg, tab.Columns[c])
			}
		}
	}
}

func TestFig16EvolvingShape(t *testing.T) {
	tab, err := Fig16(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatal("want 4 change ratios")
	}
	for r := range tab.Rows {
		cg := cellF(t, tab, r, 3)
		if cg >= cellF(t, tab, r, 1) || cg >= cellF(t, tab, r, 2) {
			t.Fatalf("fig16 row %s: CGraph not best", tab.Rows[r][0])
		}
	}
	// Larger change ratios cost CGraph more (fewer shared partitions).
	if cellF(t, tab, 3, 3) <= cellF(t, tab, 0, 3) {
		t.Fatal("fig16: CGraph time did not grow with change ratio")
	}
}

func TestFig17To19Shapes(t *testing.T) {
	opt := testOpt()
	t17, err := Fig17(opt)
	if err != nil {
		t.Fatal(err)
	}
	// CGraph's access share shrinks as jobs grow (more sharing).
	var cg1, cg8 float64
	for r := range t17.Rows {
		if t17.Rows[r][1] == "CGraph" {
			if t17.Rows[r][0] == "1" {
				cg1 = cellF(t, t17, r, 2)
			}
			if t17.Rows[r][0] == "8" {
				cg8 = cellF(t, t17, r, 2)
			}
		}
	}
	if cg8 >= cg1 {
		t.Fatalf("fig17: CGraph access share did not shrink with jobs: %v -> %v", cg1, cg8)
	}

	t18, err := Fig18(opt)
	if err != nil {
		t.Fatal(err)
	}
	// CGraph's miss rate at 8 jobs below its 1-job rate; baselines' not.
	if cellF(t, t18, 3, 3) >= cellF(t, t18, 0, 3) {
		t.Fatal("fig18: CGraph miss rate did not drop with jobs")
	}

	t19, err := Fig19(opt)
	if err != nil {
		t.Fatal(err)
	}
	// At 8 jobs CGraph spares the most accessed data, and more than at 2.
	last := len(t19.Rows) - 1
	cg := cellF(t, t19, last, 3)
	if cg <= cellF(t, t19, last, 1) || cg <= cellF(t, t19, last, 2) {
		t.Fatal("fig19: CGraph does not spare the most accesses at 8 jobs")
	}
	if cg <= cellF(t, t19, 1, 3) {
		t.Fatal("fig19: CGraph spared ratio does not grow with jobs")
	}
}

func TestAblations(t *testing.T) {
	opt := testOpt()
	ts, err := AblationStraggler(opt)
	if err != nil {
		t.Fatal(err)
	}
	better := 0
	for r := range ts.Rows {
		if cellF(t, ts, r, 2) < 1.0 {
			better++
		}
	}
	if better < 3 {
		t.Fatalf("straggler splitting helped on only %d/5 datasets", better)
	}
	if _, err := AblationScheduler(opt); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationBatching(opt); err != nil {
		t.Fatal(err)
	}
}

func TestAblationTwoLevelNoSlower(t *testing.T) {
	tab, err := AblationTwoLevel(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("want 3 job counts, got %d", len(tab.Rows))
	}
	// The acceptance bar: two-level is no slower overall on the
	// multi-snapshot workload. Sum makespans across job counts (the
	// one-level column is the 1.00 base of each row).
	var one, two float64
	for r := range tab.Rows {
		one += cellF(t, tab, r, 1)
		two += cellF(t, tab, r, 2)
	}
	if two > one*1.005 {
		t.Fatalf("two-level slower overall: %v vs %v (%+v)", two, one, tab.Rows)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"A", "B"},
		Rows:    [][]string{{"1", "hello,world"}},
		Notes:   "n",
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo") || !strings.Contains(buf.String(), "note: n") {
		t.Fatal("render missing parts")
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"hello,world"`) {
		t.Fatal("CSV escaping broken")
	}
}

func TestBenchScalingInvariants(t *testing.T) {
	_, res, err := BenchScaling(testOpt(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 { // cores 1, 2, 4
		t.Fatalf("want 3 sweep points, got %d", len(res.Points))
	}
	one := res.Points[0]
	if one.Workers != 1 {
		t.Fatalf("first point at %d cores, want 1", one.Workers)
	}
	// At one core the two legs must tie exactly: same total work, no
	// parallelism for static chunking to squander.
	if one.StealMakespanUS != one.StaticMakespanUS {
		t.Fatalf("1-core legs differ: steal %v, static %v", one.StealMakespanUS, one.StaticMakespanUS)
	}
	if one.Steals != 0 {
		t.Fatalf("1-core leg stole %d times", one.Steals)
	}
	for _, p := range res.Points {
		// Work stealing must never lose to static chunking (beyond float
		// accumulation jitter).
		if p.Speedup < 0.999 {
			t.Fatalf("%d cores: work stealing slower than static (%.4fx)", p.Workers, p.Speedup)
		}
		if p.SkippedPartitions <= 0 || p.TailSkipped <= 0 {
			t.Fatalf("%d cores: no converged-region skips recorded (%+v)", p.Workers, p)
		}
	}
	last := res.Points[len(res.Points)-1]
	if last.Speedup <= 1.0 {
		t.Fatalf("no speedup at %d cores on the skewed workload: %.4fx", last.Workers, last.Speedup)
	}
	if last.Steals == 0 {
		t.Fatalf("no steals at %d cores", last.Workers)
	}
}

// TestBenchAsyncInvariants regenerates the execution-mode sweep at the
// exact configuration that produces the committed BENCH_async.json and
// pins its claims: the fresh-state path converges PageRank in measurably
// fewer iterations than BSP, SSSP (a monotonic min program) is never
// worse, and the delayed leg's barrier ledger balances against its
// iteration count.
func TestBenchAsyncInvariants(t *testing.T) {
	_, res, err := BenchAsync(Options{Scale: 1, Workers: 8, Epsilon: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Legs) != 3 {
		t.Fatalf("want 3 legs, got %d", len(res.Legs))
	}
	bsp, async, delayed := res.Leg("bsp"), res.Leg("async"), res.Leg("delayed")
	if bsp == nil || async == nil || delayed == nil {
		t.Fatalf("missing leg: %+v", res.Legs)
	}

	// BSP by definition never folds eagerly and never touches barriers.
	if bsp.FreshFolds != 0 || bsp.BarriersSkipped != 0 || bsp.BarriersForced != 0 {
		t.Fatalf("bsp leg has fresh-state counters: %+v", bsp)
	}
	// The headline claim: async PageRank converges in measurably fewer
	// iterations than BSP, and SSSP is no worse under either fresh mode.
	if async.PageRankIterations >= bsp.PageRankIterations {
		t.Fatalf("async PageRank took %d iterations, bsp %d — no convergence win",
			async.PageRankIterations, bsp.PageRankIterations)
	}
	if async.SSSPIterations > bsp.SSSPIterations {
		t.Fatalf("async SSSP took %d iterations, bsp %d", async.SSSPIterations, bsp.SSSPIterations)
	}
	if async.FreshFolds == 0 || delayed.FreshFolds == 0 {
		t.Fatalf("fresh legs folded nothing: async %+v, delayed %+v", async, delayed)
	}
	if res.PageRankSpeedup <= 1 {
		t.Fatalf("pagerank speedup %.4f, want > 1", res.PageRankSpeedup)
	}
	// Delayed-mode accounting: every iteration either skipped its merge
	// barrier or was forced through one, and the staleness bound makes
	// both legs of that ledger non-empty on this workload.
	if delayed.BarriersSkipped == 0 || delayed.BarriersForced == 0 {
		t.Fatalf("delayed barrier ledger empty: %+v", delayed)
	}
	if got, want := delayed.BarriersSkipped+delayed.BarriersForced,
		delayed.PageRankIterations+delayed.SSSPIterations; got != want {
		t.Fatalf("delayed barriers skipped+forced = %d, want iterations total %d", got, want)
	}
	// Virtual time is deterministic and positive on every leg.
	for _, l := range res.Legs {
		if l.MakespanUS <= 0 {
			t.Fatalf("leg %s has non-positive makespan %v", l.Mode, l.MakespanUS)
		}
	}
}
