package harness

import (
	"fmt"

	"cgraph/internal/core"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/sched"
)

// scalingSeed and the Zipf shape below define the skewed power-law
// workload of the scaling sweep: a handful of hub vertices carry a large
// share of all edges, the regime where skew-blind vertex-count chunking
// parks the hubs on one worker.
const (
	scalingSeed     = 42
	scalingVertices = 20000
	scalingEdges    = 300000
	scalingZipfS    = 1.2
)

// BenchScalingPoint is one simulated-core count of the sweep: the same
// 4-job workload run on the work-stealing degree-weighted executor and on
// the legacy static vertex-count chunking, both reported in simulated
// makespan (the repo's standard currency — wall clock on a shared CI box
// is noise).
type BenchScalingPoint struct {
	// Workers is the simulated core count of this point.
	Workers int `json:"workers"`
	// StealMakespanUS / StaticMakespanUS are the virtual total execution
	// times of the two legs.
	StealMakespanUS  float64 `json:"steal_makespan_us"`
	StaticMakespanUS float64 `json:"static_makespan_us"`
	// Speedup is static/steal (>1 = work stealing wins).
	Speedup float64 `json:"speedup"`
	// Steals / Stolen are the pool's cumulative steal operations and
	// moved tasks over the steal leg.
	Steals int64 `json:"steals"`
	Stolen int64 `json:"stolen"`
	// Tasks counts pool tasks executed over the steal leg.
	Tasks int64 `json:"tasks"`
	// SkippedPartitions is the steal leg's cumulative count of converged
	// (job, partition) pairs excluded before scheduling.
	SkippedPartitions int64 `json:"skipped_partitions"`
	// TailSkipped sums the skipped-partition counts over the last traced
	// rounds (the PageRank convergence tail), where frontiers go sparse.
	TailSkipped int64 `json:"tail_skipped"`
	// Imbalance is the heaviest worker's realized share of the last
	// round's task weight, ×Workers, on the steal leg.
	Imbalance float64 `json:"imbalance"`
}

// BenchScalingResult is the machine-readable artifact of the scaling
// sweep (written as BENCH_scaling.json).
type BenchScalingResult struct {
	Dataset  string  `json:"dataset"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	ZipfS    float64 `json:"zipf_s"`
	Jobs     int     `json:"jobs"`
	Balance  float64 `json:"balance"`
	MaxCores int     `json:"max_cores"`

	Points []BenchScalingPoint `json:"points"`
	// MaxSpeedup is the largest per-point speedup of the sweep.
	MaxSpeedup float64 `json:"max_speedup"`
}

// scalingEnv prepares the Zipf environment. Unlike the paper-regime
// experiments (cache ≪ graph, access-dominated — where the executor's
// compute time hides entirely behind partition loads), this sweep
// isolates the execution layer: the simulated hierarchy is sized to hold
// the whole graph, so the trigger phase's vertex processing is the
// bottleneck and the executor's scaling is what the makespan measures.
func scalingEnv(workers int, scale float64) *Env {
	edges := gen.Zipf(scalingSeed, scalingVertices, int(float64(scalingEdges)*scale), scalingZipfS)
	g := graph.Build(scalingVertices, edges)
	cost := ExperimentCost()
	// Weight edges the way the scaling question demands: the sweep asks
	// how the executor divides scatter work, so scatter work must be the
	// dominant term rather than hiding behind the (serial) load stream.
	cost.EdgeCost *= 10
	e := &Env{
		Dataset: gen.Dataset{
			Name:        "zipf-powerlaw",
			NumVertices: scalingVertices,
			NumEdges:    len(edges),
			Seed:        scalingSeed,
		},
		Edges:       edges,
		G:           g,
		Workers:     workers,
		CacheBytes:  16 << 20,
		MemoryBytes: 128 << 20,
		Cost:        cost,
		// Enough partitions that frontiers converge region by region (the
		// skip metric needs granularity), independent of the cache size.
		NumPartitions: 4 * workers,
	}
	if e.NumPartitions < 16 {
		e.NumPartitions = 16
	}
	return e
}

// scalingLeg runs the 4-job workload once at the given simulated core
// count and returns the engine (virtual time is deterministic, so a
// single run is exact — there is no wall-clock noise to best-of away).
func (e *Env) scalingLeg(o Options, workers int, static bool) (*core.Engine, float64, error) {
	store, err := e.Store(false)
	if err != nil {
		return nil, 0, err
	}
	eng := core.New(core.Config{
		Workers:        workers,
		Hier:           e.Hier(),
		Scheduler:      sched.Priority,
		Label:          "CGraph",
		StaticChunking: static,
		TraceDepth:     256,
	}, store)
	for _, s := range benchmarks(4, o.Epsilon, func(int) int64 { return 0 }) {
		eng.Submit(s.Prog, s.Arrival)
	}
	rep, err := eng.Run()
	if err != nil {
		return nil, 0, err
	}
	return eng, rep.Makespan, nil
}

// BenchScaling sweeps simulated core counts 1, 2, 4, … maxCores over the
// skewed power-law workload, comparing the work-stealing degree-weighted
// executor against legacy static vertex-count chunking. At one core the
// two must tie (same total work, no parallelism to lose); at higher core
// counts the static leg is gated by the hub-heavy chunk while the steal
// leg divides edge work evenly — the gap is the sweep's speedup.
func BenchScaling(opt Options, maxCores int) (*Table, *BenchScalingResult, error) {
	o := opt.withDefaults()
	if maxCores <= 0 {
		maxCores = o.Workers
	}
	env := scalingEnv(maxCores, o.Scale)

	res := &BenchScalingResult{
		Dataset:  env.Dataset.Name,
		Vertices: env.G.N,
		Edges:    len(env.Edges),
		ZipfS:    scalingZipfS,
		Jobs:     4,
		Balance:  4,
		MaxCores: maxCores,
	}

	var cores []int
	for w := 1; w < maxCores; w *= 2 {
		cores = append(cores, w)
	}
	cores = append(cores, maxCores)

	t := &Table{
		ID:      "bench-scaling",
		Title:   fmt.Sprintf("Work-stealing vs static chunking on %s (V=%d, E=%d, s=%.1f)", env.Dataset.Name, env.G.N, len(env.Edges), scalingZipfS),
		Columns: []string{"Cores", "Steal µs", "Static µs", "Speedup", "Steals", "Skipped", "Tail skipped", "Imbalance"},
		Notes:   "simulated makespan of the 4-job workload; tail skipped = converged (job,partition) pairs excluded over the last traced rounds",
	}

	for _, w := range cores {
		o.logf("bench-scaling: %d cores, steal leg", w)
		eng, steal, err := env.scalingLeg(o, w, false)
		if err != nil {
			return nil, nil, err
		}
		o.logf("bench-scaling: %d cores, static leg", w)
		_, static, err := env.scalingLeg(o, w, true)
		if err != nil {
			return nil, nil, err
		}

		es := eng.ExecStats()
		var tail int64
		rounds := eng.RoundTraces(0)
		lo := len(rounds) - 32
		if lo < 0 {
			lo = 0
		}
		for _, r := range rounds[lo:] {
			tail += r.Skipped
		}

		p := BenchScalingPoint{
			Workers:           w,
			StealMakespanUS:   steal,
			StaticMakespanUS:  static,
			Steals:            es.Steals,
			Stolen:            es.Stolen,
			Tasks:             es.Tasks,
			SkippedPartitions: es.SkippedPartitions,
			TailSkipped:       tail,
			Imbalance:         es.LastImbalance,
		}
		if steal > 0 {
			p.Speedup = static / steal
		}
		if p.Speedup > res.MaxSpeedup {
			res.MaxSpeedup = p.Speedup
		}
		res.Points = append(res.Points, p)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w), f2(steal), f2(static), fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%d", p.Steals), fmt.Sprintf("%d", p.SkippedPartitions),
			fmt.Sprintf("%d", p.TailSkipped), f2(p.Imbalance),
		})
	}
	return t, res, nil
}
