// Package harness regenerates every table and figure of the paper's
// evaluation (§4) on the reproduction substrate: it sizes a simulated
// memory hierarchy per dataset, runs the CGraph engine and the baseline
// systems over the benchmark workloads, and renders the same rows and
// series the paper reports. DESIGN.md carries the experiment index; each
// FigNN function below maps one-to-one to it.
package harness

import (
	"fmt"
	"io"
	"strings"

	"cgraph/algo"
	"cgraph/internal/baseline"
	"cgraph/internal/core"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/memsim"
	"cgraph/internal/metrics"
	"cgraph/internal/sched"
	"cgraph/internal/storage"
	"cgraph/model"
)

// Options size the experiments.
type Options struct {
	// Scale multiplies the stand-in dataset sizes (default 1.0).
	Scale float64
	// Workers is the simulated core count (default 8; Fig. 14 sweeps it).
	Workers int
	// Epsilon is the PageRank convergence threshold (default 1e-3).
	Epsilon float64
	// Verbose streams progress lines to Log.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-3
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// ExperimentCost is the cost model calibrated for the reproduction's
// experiment regime: with the default scale and four concurrent jobs,
// baseline executions are access-dominated while CGraph's shared loading
// turns the balance toward vertex processing — the Fig. 10 regime.
func ExperimentCost() memsim.CostModel {
	return memsim.CostModel{
		MemBandwidth:   2000,
		MemLatency:     1,
		DiskBandwidth:  100,
		DiskLatency:    200,
		EdgeCost:       0.05,
		VertexCost:     0.02,
		SyncEntryCost:  0.05,
		ChannelStreams: 1.6,
	}
}

// Env is one dataset prepared for experiments: generated edges, the global
// CSR, and the memory-hierarchy sizing derived from the dataset the way the
// paper's testbed relates its LLC, DRAM and graphs.
type Env struct {
	Dataset       gen.Dataset
	Edges         []model.Edge
	G             *graph.Graph
	Workers       int
	CacheBytes    int64
	MemoryBytes   int64
	NumPartitions int
	Cost          memsim.CostModel
}

// envCacheBytes is the simulated LLC (the paper's 20 MB scaled to the
// stand-ins) and envMemFraction relates simulated DRAM to it (the paper's
// 64 GB holds all datasets except hyperlink14).
const (
	envCacheBytes = 256 << 10
	envMemBytes   = 3 << 20
)

// NewEnv prepares a dataset environment. The simulated cache and memory
// scale with the dataset scale factor, keeping the paper's pressure ratios
// (cache ≪ graph; memory holds every dataset except hyperlink14).
func NewEnv(d gen.Dataset, workers int, scale float64) *Env {
	if scale <= 0 {
		scale = 1
	}
	edges := d.Generate()
	g := graph.Build(d.NumVertices, edges)
	cache := int64(float64(envCacheBytes) * scale)
	if cache < 32<<10 {
		cache = 32 << 10
	}
	mem := int64(float64(envMemBytes) * scale)
	if mem < cache*8 {
		mem = cache * 8
	}
	cost := ExperimentCost()
	// Latencies scale with the stand-in scale so the access/compute regime
	// is scale-invariant.
	cost.MemLatency *= scale
	cost.DiskLatency *= scale
	e := &Env{
		Dataset:     d,
		Edges:       edges,
		G:           g,
		Workers:     workers,
		CacheBytes:  cache,
		MemoryBytes: mem,
		Cost:        cost,
	}
	// Size partitions from the §3.2.1 formula: structure-item bytes per
	// edge ≈ 16, private-state bytes per vertex = 16, reserve one
	// partition-sized buffer for the prefetch stream.
	totalStruct := int64(len(edges))*16 + int64(g.N)*9
	e.NumPartitions = graph.SuggestNumPartitions(totalStruct, e.CacheBytes, workers, 16, 16, e.CacheBytes/8)
	if e.NumPartitions < 4 {
		e.NumPartitions = 4
	}
	return e
}

// Hier returns a fresh simulated hierarchy for one run.
func (e *Env) Hier() *memsim.Hierarchy {
	return memsim.New(memsim.Config{
		CacheBytes:  e.CacheBytes,
		MemoryBytes: e.MemoryBytes,
		Cost:        e.Cost,
	})
}

// PG cuts the graph, optionally with core-subgraph grouping (§3.3).
func (e *Env) PG(coreSubgraph bool) (*graph.PGraph, error) {
	return graph.Cut(e.G, e.Edges, graph.Options{
		NumPartitions: e.NumPartitions,
		CoreSubgraph:  coreSubgraph,
		CoreFraction:  0.05,
	})
}

// Store wraps a single-snapshot store.
func (e *Env) Store(coreSubgraph bool) (*storage.SnapshotStore, error) {
	pg, err := e.PG(coreSubgraph)
	if err != nil {
		return nil, err
	}
	return storage.NewSnapshotStore(pg, 0), nil
}

// SnapshotSeries builds numSnaps-1 incremental snapshots on top of the base,
// each mutating ratio of the edges (§4.4), with snapshot i at timestamp i.
func (e *Env) SnapshotSeries(numSnaps int, ratio float64) (*storage.SnapshotStore, error) {
	pg, err := e.PG(false)
	if err != nil {
		return nil, err
	}
	store := storage.NewSnapshotStore(pg, 0)
	prev, prevEdges := pg, e.Edges
	runLen := prev.ChunkSize / 4
	for s := 1; s < numSnaps; s++ {
		mut, slots := gen.MutateClustered(prevEdges, ratio, e.G.N, e.Dataset.Seed+int64(s)*7919, runLen)
		changed := graph.ChangedPartitions(slots, prev.ChunkSize, len(prev.Parts))
		next, err := graph.Overlay(prev, mut, changed)
		if err != nil {
			return nil, err
		}
		if err := store.Add(next, int64(s)); err != nil {
			return nil, err
		}
		prev, prevEdges = next, mut
	}
	return store, nil
}

// benchmarks returns the paper's four-job workload (§4): PageRank, SSSP,
// SCC and BFS, cycled to the requested count, each bound to the given
// arrival timestamp function.
func benchmarks(n int, eps float64, arrival func(i int) int64) []baseline.JobSpec {
	specs := make([]baseline.JobSpec, n)
	for i := 0; i < n; i++ {
		var p model.Program
		switch i % 4 {
		case 0:
			p = &algo.PageRank{Damping: 0.85, Epsilon: eps}
		case 1:
			p = algo.NewSSSP(0)
		case 2:
			p = algo.NewSCC()
		case 3:
			p = algo.NewBFS(0)
		}
		specs[i] = baseline.JobSpec{Prog: p, Arrival: arrival(i)}
	}
	return specs
}

// runCGraph executes the specs on the CGraph engine.
func (e *Env) runCGraph(store *storage.SnapshotStore, specs []baseline.JobSpec, kind sched.Kind, label string, workers int) (*metrics.RunReport, error) {
	if workers <= 0 {
		workers = e.Workers
	}
	eng := core.New(core.Config{
		Workers:   workers,
		Hier:      e.Hier(),
		Scheduler: kind,
		Label:     label,
	}, store)
	for _, s := range specs {
		eng.Submit(s.Prog, s.Arrival)
	}
	return eng.Run()
}

// runBaseline executes the specs on one comparator system.
func (e *Env) runBaseline(sys baseline.System, store *storage.SnapshotStore, specs []baseline.JobSpec, workers int) (*metrics.RunReport, error) {
	if workers <= 0 {
		workers = e.Workers
	}
	rep, _, err := baseline.Run(baseline.Config{
		System:  sys,
		Workers: workers,
		Hier:    e.Hier(),
	}, store, specs)
	return rep, err
}

// fourJobRun runs the standard 4-job workload on every system over a fresh
// environment per system, returning reports keyed by system name.
func (e *Env) fourJobRun(eps float64) (map[string]*metrics.RunReport, error) {
	out := make(map[string]*metrics.RunReport)
	specs := benchmarks(4, eps, func(int) int64 { return 0 })
	for _, sys := range []baseline.System{baseline.CLIP, baseline.NXgraph, baseline.Seraph} {
		store, err := e.Store(false)
		if err != nil {
			return nil, err
		}
		rep, err := e.runBaseline(sys, store, benchmarks(4, eps, func(int) int64 { return 0 }), 0)
		if err != nil {
			return nil, err
		}
		out[string(sys)] = rep
	}
	store, err := e.Store(true)
	if err != nil {
		return nil, err
	}
	rep, err := e.runCGraph(store, specs, sched.Priority, "CGraph", 0)
	if err != nil {
		return nil, err
	}
	out["CGraph"] = rep
	return out, nil
}

// Table is one rendered experiment artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(t.Columns))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
	return nil
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
