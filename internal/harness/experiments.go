package harness

import (
	"fmt"

	"cgraph/internal/baseline"
	"cgraph/internal/gen"
	"cgraph/internal/metrics"
	"cgraph/internal/sched"
)

// Table1 regenerates Table 1: the dataset properties of the five stand-ins
// next to the paper's originals.
func Table1(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:      "table1",
		Title:   "Data set properties (stand-ins vs paper)",
		Columns: []string{"Data set", "Stands for", "Kind", "Vertices", "Edges", "Struct bytes", "Paper V", "Paper E"},
		Notes:   "stand-ins scaled ~1:40000 in edges with the paper's average degrees preserved",
	}
	paperV := map[string]string{"Twitter": "41.7 M", "Friendster": "65 M", "uk2007": "105.9 M", "uk-union": "133.6 M", "hyperlink14": "1.7 B"}
	paperE := map[string]string{"Twitter": "1.4 B", "Friendster": "1.8 B", "uk2007": "3.7 B", "uk-union": "5.5 B", "hyperlink14": "64.4 B"}
	for _, d := range gen.StandIns(opt.Scale) {
		env := NewEnv(d, opt.Workers, opt.Scale)
		pg, err := env.PG(false)
		if err != nil {
			return nil, err
		}
		kind := "social"
		if d.Kind == gen.WebGraph {
			kind = "web"
		}
		t.Rows = append(t.Rows, []string{
			d.Name, d.PaperName, kind,
			fmt.Sprintf("%d", d.NumVertices),
			fmt.Sprintf("%d", d.NumEdges),
			fmt.Sprintf("%d", pg.TotalStructBytes()),
			paperV[d.PaperName], paperE[d.PaperName],
		})
	}
	return t, nil
}

// Fig1 regenerates both panels of Figure 1 from the synthetic production
// trace: (a) concurrent CGP jobs per hour, (b) the ratio of active
// partitions shared by more than 1/2/4/8/16 jobs.
func Fig1(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	points, shares := gen.JobTrace(42, 160)
	a := &Table{
		ID:      "fig1a",
		Title:   "Number of CGP jobs over the trace",
		Columns: []string{"Hour", "Active jobs"},
	}
	for _, p := range points {
		a.Rows = append(a.Rows, []string{f1(p.Hour), fmt.Sprintf("%d", p.Active)})
	}
	b := &Table{
		ID:      "fig1b",
		Title:   "Ratio of the graph shared by # jobs (%)",
		Columns: []string{"Hour", ">1", ">2", ">4", ">8", ">16"},
	}
	for _, s := range shares {
		b.Rows = append(b.Rows, []string{
			f1(s.Hour), f1(s.MoreThan[1]), f1(s.MoreThan[2]), f1(s.MoreThan[4]), f1(s.MoreThan[8]), f1(s.MoreThan[16]),
		})
	}
	return []*Table{a, b}, nil
}

// Fig2 regenerates Figure 2: per-job average execution time (a) and data
// access time (b) on Seraph as the number of concurrent instances of each
// benchmark grows from 1 to 8, normalized against the single-instance run.
func Fig2(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	d, err := gen.StandIn("ukunion-sim", opt.Scale)
	if err != nil {
		return nil, err
	}
	env := NewEnv(d, opt.Workers, opt.Scale)
	a := &Table{
		ID:      "fig2a",
		Title:   "Normalized per-job execution time on Seraph vs #jobs (uk-union)",
		Columns: []string{"Benchmark", "1", "2", "4", "8"},
	}
	b := &Table{
		ID:      "fig2b",
		Title:   "Normalized per-job data access time on Seraph vs #jobs (uk-union)",
		Columns: []string{"Benchmark", "1", "2", "4", "8"},
	}
	for bench := 0; bench < 4; bench++ {
		name := [4]string{"PageRank", "SSSP", "SCC", "BFS"}[bench]
		opt.logf("fig2: %s", name)
		var base, baseAcc float64
		rowA := []string{name}
		rowB := []string{name}
		for _, k := range []int{1, 2, 4, 8} {
			// k concurrent instances of this benchmark type.
			mine := make([]baseline.JobSpec, k)
			for i := range mine {
				mine[i] = benchmarks(4, opt.Epsilon, func(int) int64 { return 0 })[bench]
			}
			store, err := env.Store(false)
			if err != nil {
				return nil, err
			}
			rep, err := env.runBaseline(baseline.Seraph, store, mine, 0)
			if err != nil {
				return nil, err
			}
			avg, acc := rep.AvgExecTime(), rep.AvgAccessTime()
			if k == 1 {
				base, baseAcc = avg, acc
			}
			rowA = append(rowA, f2(avg/base))
			rowB = append(rowB, f2(acc/baseAcc))
		}
		a.Rows = append(a.Rows, rowA)
		b.Rows = append(b.Rows, rowB)
	}
	return []*Table{a, b}, nil
}

// Fig8 regenerates Figure 8: total execution time of the four jobs with and
// without the core-subgraph scheduler, as a percentage of CGraph-without.
func Fig8(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:      "fig8",
		Title:   "Execution time with/without the scheduler (% of CGraph-without)",
		Columns: []string{"Data set", "CGraph-without", "CGraph"},
	}
	for _, d := range gen.StandIns(opt.Scale) {
		opt.logf("fig8: %s", d.Name)
		env := NewEnv(d, opt.Workers, opt.Scale)
		specs := benchmarks(4, opt.Epsilon, func(int) int64 { return 0 })

		plain, err := env.Store(false)
		if err != nil {
			return nil, err
		}
		without, err := env.runCGraph(plain, specs, sched.Static, "CGraph-without", 0)
		if err != nil {
			return nil, err
		}
		coreStore, err := env.Store(true)
		if err != nil {
			return nil, err
		}
		with, err := env.runCGraph(coreStore, specs, sched.Priority, "CGraph", 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d.Name, "100.0", f1(100 * with.Makespan / without.Makespan),
		})
	}
	return t, nil
}

// Fig9 regenerates Figure 9: total execution time of the four jobs on each
// system, normalized to CLIP.
func Fig9(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:      "fig9",
		Title:   "Total execution time for the four jobs (normalized to CLIP)",
		Columns: []string{"Data set", "CLIP", "NXgraph", "Seraph", "CGraph"},
	}
	for _, d := range gen.StandIns(opt.Scale) {
		opt.logf("fig9: %s", d.Name)
		env := NewEnv(d, opt.Workers, opt.Scale)
		reps, err := env.fourJobRun(opt.Epsilon)
		if err != nil {
			return nil, err
		}
		base := reps["CLIP"].Makespan
		t.Rows = append(t.Rows, []string{
			d.Name,
			f2(reps["CLIP"].Makespan / base),
			f2(reps["NXgraph"].Makespan / base),
			f2(reps["Seraph"].Makespan / base),
			f2(reps["CGraph"].Makespan / base),
		})
	}
	return t, nil
}

// Fig10 regenerates Figure 10: the execution-time breakdown (data access vs
// vertex processing, %) of each job on hyperlink14 under each system.
func Fig10(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	d, err := gen.StandIn("hyperlink14-sim", opt.Scale)
	if err != nil {
		return nil, err
	}
	env := NewEnv(d, opt.Workers, opt.Scale)
	reps, err := env.fourJobRun(opt.Epsilon)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10",
		Title:   "Execution time breakdown per job on hyperlink14 (%)",
		Columns: []string{"System", "Job", "Data access %", "Vertex processing %"},
	}
	for _, sys := range []string{"CLIP", "NXgraph", "Seraph", "CGraph"} {
		for _, j := range reps[sys].Jobs {
			ratio := j.AccessRatio()
			t.Rows = append(t.Rows, []string{
				sys, j.Name, f1(100 * ratio), f1(100 * (1 - ratio)),
			})
		}
	}
	return t, nil
}

// Fig11 regenerates Figure 11: last-level cache miss rate of the four jobs
// under each system and dataset.
func Fig11(opt Options) (*Table, error) {
	return cacheStat(opt, "fig11", "Last-level cache miss rate (%)", func(r *runSet) string {
		return f1(r.rep.Counters.MissRate())
	})
}

// Fig12 regenerates Figure 12: volume of data swapped into the cache,
// normalized to CLIP.
func Fig12(opt Options) (*Table, error) {
	return cacheStat(opt, "fig12", "Volume of data swapped into the cache (normalized to CLIP)", func(r *runSet) string {
		return f2(float64(r.rep.Counters.BytesIntoCache) / float64(r.clipVolume))
	})
}

// Fig13 regenerates Figure 13: disk I/O overhead, normalized to CLIP. For
// datasets that fit the simulated memory only the one-time cold load
// remains, which is why CGraph and Seraph report near-zero values on the
// first graphs, as in the paper.
func Fig13(opt Options) (*Table, error) {
	return cacheStat(opt, "fig13", "I/O overhead (normalized to CLIP)", func(r *runSet) string {
		if r.clipDisk == 0 {
			return "0.00"
		}
		return f2(float64(r.rep.Counters.BytesFromDisk) / float64(r.clipDisk))
	})
}

// Fig15 regenerates Figure 15: CPU utilization of the vertex processing.
func Fig15(opt Options) (*Table, error) {
	return cacheStat(opt, "fig15", "Utilization ratio of CPU (%)", func(r *runSet) string {
		return f1(r.rep.CPUUtilization())
	})
}

type runSet struct {
	rep        *metrics.RunReport
	clipVolume int64
	clipDisk   int64
}

// cacheStat runs the 4-system × 5-dataset grid once per figure and formats
// one counter per cell.
func cacheStat(opt Options, id, title string, cell func(*runSet) string) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Data set", "CLIP", "NXgraph", "Seraph", "CGraph"},
	}
	for _, d := range gen.StandIns(opt.Scale) {
		opt.logf("%s: %s", id, d.Name)
		env := NewEnv(d, opt.Workers, opt.Scale)
		reps, err := env.fourJobRun(opt.Epsilon)
		if err != nil {
			return nil, err
		}
		clip := reps["CLIP"]
		row := []string{d.Name}
		for _, sys := range []string{"CLIP", "NXgraph", "Seraph", "CGraph"} {
			row = append(row, cell(&runSet{
				rep:        reps[sys],
				clipVolume: clip.Counters.BytesIntoCache,
				clipDisk:   clip.Counters.BytesFromDisk,
			}))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig14 regenerates Figure 14: scalability of the four jobs on hyperlink14
// as workers grow 1→32, normalized to CLIP at 1 worker.
func Fig14(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	d, err := gen.StandIn("hyperlink14-sim", opt.Scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig14",
		Title:   "Scalability on hyperlink14 (normalized to CLIP at 1 worker)",
		Columns: []string{"Workers", "CLIP", "NXgraph", "Seraph", "CGraph"},
	}
	// Partitioning is fixed at the default worker count; only the engines'
	// core counts vary, isolating compute scaling as the paper does.
	env := NewEnv(d, opt.Workers, opt.Scale)
	var base float64
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		opt.logf("fig14: %d workers", w)
		specs := benchmarks(4, opt.Epsilon, func(int) int64 { return 0 })
		row := []string{fmt.Sprintf("%d", w)}
		for _, sys := range []baseline.System{baseline.CLIP, baseline.NXgraph, baseline.Seraph} {
			store, err := env.Store(false)
			if err != nil {
				return nil, err
			}
			rep, err := env.runBaseline(sys, store, benchmarks(4, opt.Epsilon, func(int) int64 { return 0 }), w)
			if err != nil {
				return nil, err
			}
			if sys == baseline.CLIP && w == 1 {
				base = rep.Makespan
			}
			row = append(row, f2(rep.Makespan/base))
		}
		store, err := env.Store(true)
		if err != nil {
			return nil, err
		}
		rep, err := env.runCGraph(store, specs, sched.Priority, "CGraph", w)
		if err != nil {
			return nil, err
		}
		row = append(row, f2(rep.Makespan/base))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
