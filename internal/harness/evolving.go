package harness

import (
	"fmt"

	"cgraph/internal/baseline"
	"cgraph/internal/gen"
	"cgraph/internal/metrics"
	"cgraph/internal/sched"
	"cgraph/internal/storage"
)

// evolvingDataset is the §4.4 workload graph. The paper uses hyperlink14;
// the snapshot series multiplies the structure footprint, so the stand-in
// keeps runs tractable while preserving the memory-pressure regime.
func evolvingDataset(opt Options) (gen.Dataset, error) {
	return gen.StandIn("hyperlink14-sim", opt.Scale)
}

// evolvingRun executes n jobs, job i bound to snapshot i of a series with
// the given change ratio, on one system.
func evolvingRun(opt Options, env *Env, sys string, njobs int, ratio float64) (*metrics.RunReport, error) {
	store, err := env.SnapshotSeries(njobs, ratio)
	if err != nil {
		return nil, err
	}
	specs := benchmarks(njobs, opt.Epsilon, func(i int) int64 { return int64(i) })
	if sys == "CGraph" {
		return env.runCGraph(store, specs, sched.Priority, "CGraph", 0)
	}
	return env.runBaseline(baseline.System(sys), store, specs, 0)
}

// evolvingSystems is the §4.4 comparison set.
var evolvingSystems = []string{"Seraph-VT", "Seraph", "CGraph"}

// Fig16 regenerates Figure 16: total execution time of eight jobs over
// snapshot series with change ratios 0.005%–5%, normalized to Seraph-VT at
// 0.005%.
func Fig16(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	d, err := evolvingDataset(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig16",
		Title:   "Execution time of eight jobs on hyperlink14 with changes (normalized to Seraph-VT @0.005%)",
		Columns: []string{"Changed edges", "Seraph-VT", "Seraph", "CGraph"},
	}
	var base float64
	for _, ratio := range []float64{0.00005, 0.0005, 0.005, 0.05} {
		opt.logf("fig16: ratio %.3f%%", ratio*100)
		row := []string{fmt.Sprintf("%.3f%%", ratio*100)}
		for _, sys := range evolvingSystems {
			env := NewEnv(d, opt.Workers, opt.Scale)
			rep, err := evolvingRun(opt, env, sys, 8, ratio)
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = rep.Makespan
			}
			row = append(row, f2(rep.Makespan/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// evolvingGrid runs the 1/2/4/8-job snapshot workload (5% change between
// snapshots) for Figures 17–19 and returns reports keyed by system and job
// count, plus the sequential-Seraph reference per job count (Fig. 19's
// normalization base).
func evolvingGrid(opt Options) (map[string]map[int]*metrics.RunReport, map[int]*metrics.RunReport, error) {
	d, err := evolvingDataset(opt)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]map[int]*metrics.RunReport)
	seq := make(map[int]*metrics.RunReport)
	for _, njobs := range []int{1, 2, 4, 8} {
		opt.logf("fig17-19: %d jobs", njobs)
		for _, sys := range evolvingSystems {
			env := NewEnv(d, opt.Workers, opt.Scale)
			rep, err := evolvingRun(opt, env, sys, njobs, 0.05)
			if err != nil {
				return nil, nil, err
			}
			if out[sys] == nil {
				out[sys] = make(map[int]*metrics.RunReport)
			}
			out[sys][njobs] = rep
		}
		env := NewEnv(d, opt.Workers, opt.Scale)
		store, err := env.SnapshotSeries(njobs, 0.05)
		if err != nil {
			return nil, nil, err
		}
		specs := benchmarks(njobs, opt.Epsilon, func(i int) int64 { return int64(i) })
		rep, err := env.runBaseline(baseline.Sequential, storeCopy(store), specs, 0)
		if err != nil {
			return nil, nil, err
		}
		seq[njobs] = rep
	}
	return out, seq, nil
}

// storeCopy exists to make the sequential reference use the same snapshot
// series object; snapshot stores are read-only during runs.
func storeCopy(s *storage.SnapshotStore) *storage.SnapshotStore { return s }

// Fig17 regenerates Figure 17: the average execution-time breakdown as the
// number of jobs grows, on snapshots with 5% change.
func Fig17(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	grid, _, err := evolvingGrid(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig17",
		Title:   "Execution time breakdown on hyperlink14 snapshots (%)",
		Columns: []string{"Jobs", "System", "Data access %", "Vertex processing %"},
	}
	for _, njobs := range []int{1, 2, 4, 8} {
		for _, sys := range evolvingSystems {
			access, compute := grid[sys][njobs].AccessComputeBreakdown()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", njobs), sys, f1(access), f1(compute),
			})
		}
	}
	return t, nil
}

// Fig18 regenerates Figure 18: LLC miss rate vs number of jobs on the
// snapshot workload.
func Fig18(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	grid, _, err := evolvingGrid(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig18",
		Title:   "Last-level cache miss rate on hyperlink14 snapshots (%)",
		Columns: []string{"Jobs", "Seraph-VT", "Seraph", "CGraph"},
	}
	for _, njobs := range []int{1, 2, 4, 8} {
		row := []string{fmt.Sprintf("%d", njobs)}
		for _, sys := range evolvingSystems {
			row = append(row, f1(grid[sys][njobs].Counters.MissRate()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig19 regenerates Figure 19: the ratio of total accessed data (disk→memory
// plus memory→cache) spared versus executing the jobs sequentially over
// Seraph.
func Fig19(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	grid, seq, err := evolvingGrid(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig19",
		Title:   "Ratio of spared accessed data vs sequential Seraph (%)",
		Columns: []string{"Jobs", "Seraph-VT", "Seraph", "CGraph"},
	}
	for _, njobs := range []int{1, 2, 4, 8} {
		base := float64(seq[njobs].Counters.TotalAccessedBytes())
		row := []string{fmt.Sprintf("%d", njobs)}
		for _, sys := range evolvingSystems {
			got := float64(grid[sys][njobs].Counters.TotalAccessedBytes())
			row = append(row, f1(100*(1-got/base)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
