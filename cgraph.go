// Package cgraph is a concurrent iterative graph-processing library
// reproducing "CGraph: A Correlations-aware Approach for Efficient
// Concurrent Iterative Graph Processing" (Zhang et al., USENIX ATC 2018).
//
// Many iterative analytics jobs (PageRank, SSSP, SCC, BFS, ...) often run
// simultaneously over one shared graph. CGraph executes them with the
// paper's data-centric Load-Trigger-Pushing model: the shared graph
// structure is vertex-cut into partitions, streamed in a single common
// order chosen by a correlations-aware scheduler, and every loaded
// partition triggers all jobs that need it concurrently — so the dominant
// data-access cost is paid once and amortized across jobs.
//
// Quick start:
//
//	sys := cgraph.NewSystem(cgraph.WithWorkers(8))
//	sys.LoadEdges(0, edges)
//	pr, _ := sys.Submit(algo.NewPageRank())
//	ss, _ := sys.Submit(algo.NewSSSP(0))
//	report, _ := sys.Run()
//	ranks, _ := pr.Results()
//
// Custom algorithms implement model.Program (the paper's IsNotConvergent /
// Compute / Acc triple); the bundled ones live in package algo.
package cgraph

import (
	"fmt"
	"os"
	"sync"
	"time"

	"cgraph/internal/core"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/memsim"
	"cgraph/internal/sched"
	"cgraph/internal/storage"
	"cgraph/model"
)

// Convenient aliases so simple uses need only this package and algo.
type (
	// Edge is a directed weighted edge (alias of model.Edge).
	Edge = model.Edge
	// VertexID identifies a vertex (alias of model.VertexID).
	VertexID = model.VertexID
	// Program is a vertex program (alias of model.Program).
	Program = model.Program
)

// Scheduler selects the partition-load ordering policy.
type Scheduler int

const (
	// PriorityScheduler is the paper's Eq. 1 policy (default).
	PriorityScheduler Scheduler = iota
	// StaticScheduler loads partitions in index order.
	StaticScheduler
)

type config struct {
	workers       int
	scheduler     Scheduler
	coreSubgraph  bool
	coreFraction  float64
	numPartitions int
	cacheBytes    int64
	memoryBytes   int64
	disableSplit  bool
}

// Option configures a System.
type Option func(*config)

// WithWorkers sets the worker (core) count; default runtime.GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithScheduler selects the load-order policy.
func WithScheduler(s Scheduler) Option { return func(c *config) { c.scheduler = s } }

// WithCoreSubgraph toggles §3.3 core-subgraph partitioning (default on for
// static graphs; forced off when snapshots are used, which require
// slot-stable plain partitioning).
func WithCoreSubgraph(on bool) Option { return func(c *config) { c.coreSubgraph = on } }

// WithCoreFraction sets the fraction of vertices classified as core.
func WithCoreFraction(f float64) Option { return func(c *config) { c.coreFraction = f } }

// WithPartitions overrides the partition count; by default it is derived
// from the simulated cache capacity via the §3.2.1 Pg formula (or a
// worker-based heuristic without cache simulation).
func WithPartitions(n int) Option { return func(c *config) { c.numPartitions = n } }

// WithCacheSimulation enables the simulated memory hierarchy with the given
// capacities, which populates the data-movement metrics in Report. Without
// it the library runs at full speed over an unlimited hierarchy.
func WithCacheSimulation(cacheBytes, memoryBytes int64) Option {
	return func(c *config) {
		c.cacheBytes = cacheBytes
		c.memoryBytes = memoryBytes
	}
}

// WithoutStragglerSplitting disables the Fig. 6 intra-partition load
// balancing (ablation/debugging).
func WithoutStragglerSplitting() Option { return func(c *config) { c.disableSplit = true } }

// System is a CGraph instance: one shared (possibly evolving) graph plus
// the concurrent jobs analysing it.
type System struct {
	cfg config

	mu     sync.Mutex
	store  *storage.SnapshotStore
	edges  []model.Edge
	engine *core.Engine
	jobs   []*Job
}

// NewSystem builds an empty system; load a graph before submitting jobs.
func NewSystem(opts ...Option) *System {
	cfg := config{coreSubgraph: true, coreFraction: 0.05}
	for _, o := range opts {
		o(&cfg)
	}
	return &System{cfg: cfg}
}

// LoadEdges ingests the base graph. numVertices of 0 infers the count from
// the largest endpoint.
func (s *System) LoadEdges(numVertices int, edges []Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return fmt.Errorf("cgraph: graph already loaded")
	}
	if len(edges) == 0 {
		return fmt.Errorf("cgraph: empty edge list")
	}
	g := graph.Build(numVertices, edges)
	parts := s.cfg.numPartitions
	if parts <= 0 {
		if s.cfg.cacheBytes > 0 {
			total := int64(len(edges))*16 + int64(g.N)*9
			w := s.cfg.workers
			if w <= 0 {
				w = 8
			}
			parts = graph.SuggestNumPartitions(total, s.cfg.cacheBytes, w, 16, 16, s.cfg.cacheBytes/8)
		} else {
			parts = 4 * maxInt(1, s.cfg.workers)
		}
		if parts < 4 {
			parts = 4
		}
	}
	pg, err := graph.Cut(g, edges, graph.Options{
		NumPartitions: parts,
		CoreSubgraph:  s.cfg.coreSubgraph,
		CoreFraction:  s.cfg.coreFraction,
	})
	if err != nil {
		return err
	}
	s.edges = edges
	s.store = storage.NewSnapshotStore(pg, 0)
	return nil
}

// LoadEdgeFile ingests a TSV/whitespace edge list ("src dst [weight]").
func (s *System) LoadEdgeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	edges, err := gen.ReadEdges(f)
	if err != nil {
		return err
	}
	return s.LoadEdges(0, edges)
}

// AddSnapshot registers a new graph version at the given timestamp
// (§3.2.1): the edge list must have the same length as the base (slot
// rewrites, see gen.Mutate), unchanged partitions are shared with the
// previous snapshot, and jobs submitted with AtTimestamp ≥ timestamp see
// the new version. Requires the system to have been built with
// WithCoreSubgraph(false).
func (s *System) AddSnapshot(edges []Edge, timestamp int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return fmt.Errorf("cgraph: load a base graph first")
	}
	prev := s.store.Latest().PG
	if prev.NumCore != 0 {
		return fmt.Errorf("cgraph: snapshots require WithCoreSubgraph(false)")
	}
	changed := diffSlots(s.edges, edges)
	changedParts := graph.ChangedPartitions(changed, prev.ChunkSize, len(prev.Parts))
	pg, err := graph.Overlay(prev, edges, changedParts)
	if err != nil {
		return err
	}
	if err := s.store.Add(pg, timestamp); err != nil {
		return err
	}
	s.edges = edges
	return nil
}

func diffSlots(a, b []model.Edge) []int {
	var out []int
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			out = append(out, i)
		}
	}
	return out
}

// JobOption configures a submission.
type JobOption func(*jobConfig)

type jobConfig struct{ arrival int64 }

// AtTimestamp binds the job to the newest snapshot not younger than ts.
func AtTimestamp(ts int64) JobOption { return func(c *jobConfig) { c.arrival = ts } }

// Job is a handle to one submitted CGP job.
type Job struct {
	sys  *System
	id   int
	name string
}

// Submit registers a job against the current graph. Jobs may be submitted
// before Run or concurrently while Run executes (they are admitted at the
// next round boundary). Programs with job-private bookkeeping (e.g.
// algo.SCC) must not be shared between submissions.
func (s *System) Submit(p Program, opts ...JobOption) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil, fmt.Errorf("cgraph: load a graph before submitting jobs")
	}
	var jc jobConfig
	jc.arrival = s.store.Latest().Timestamp
	for _, o := range opts {
		o(&jc)
	}
	if s.engine == nil {
		hier := memsim.Unlimited()
		if s.cfg.cacheBytes > 0 {
			hier = memsim.New(memsim.Config{
				CacheBytes:  s.cfg.cacheBytes,
				MemoryBytes: s.cfg.memoryBytes,
				Cost:        memsim.DefaultCost(),
			})
		}
		s.engine = core.New(core.Config{
			Workers:               s.cfg.workers,
			Hier:                  hier,
			Scheduler:             schedKind(s.cfg.scheduler),
			DisableStragglerSplit: s.cfg.disableSplit,
		}, s.store)
	}
	id := s.engine.Submit(p, jc.arrival)
	j := &Job{sys: s, id: id, name: p.Name()}
	s.jobs = append(s.jobs, j)
	return j, nil
}

func schedKind(s Scheduler) sched.Kind {
	if s == StaticScheduler {
		return sched.Static
	}
	return sched.Priority
}

// Run executes every submitted job to convergence and returns the run
// report. It may be called again after further submissions.
func (s *System) Run() (*Report, error) {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return nil, fmt.Errorf("cgraph: nothing submitted")
	}
	rep, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &Report{
		System:              rep.System,
		Workers:             rep.Workers,
		SimulatedMakespanUS: rep.Makespan,
		CPUUtilization:      rep.CPUUtilization(),
		CacheMissRate:       rep.Counters.MissRate(),
		BytesIntoCache:      rep.Counters.BytesIntoCache,
		BytesFromDisk:       rep.Counters.BytesFromDisk,
		WallClock:           rep.WallClock,
	}
	for _, jm := range rep.Jobs {
		out.Jobs = append(out.Jobs, JobReport{
			Name:                jm.Name,
			Iterations:          jm.Iterations,
			SimulatedAccessUS:   jm.AccessTime,
			SimulatedComputeUS:  jm.ComputeTime,
			SimulatedFinishedUS: jm.FinishAt,
			EdgesProcessed:      jm.Edges,
		})
	}
	return out, nil
}

// Results returns the job's converged per-vertex values. Valid after a Run
// that drained the job.
func (j *Job) Results() ([]float64, error) {
	j.sys.mu.Lock()
	eng := j.sys.engine
	j.sys.mu.Unlock()
	if eng == nil {
		return nil, fmt.Errorf("cgraph: job %q not run", j.name)
	}
	return eng.Results(j.id)
}

// Name returns the job's program name.
func (j *Job) Name() string { return j.name }

// Report summarizes one Run.
type Report struct {
	System              string
	Workers             int
	SimulatedMakespanUS float64
	CPUUtilization      float64
	CacheMissRate       float64
	BytesIntoCache      int64
	BytesFromDisk       int64
	WallClock           time.Duration
	Jobs                []JobReport
}

// JobReport summarizes one job within a Run.
type JobReport struct {
	Name                string
	Iterations          int
	SimulatedAccessUS   float64
	SimulatedComputeUS  float64
	SimulatedFinishedUS float64
	EdgesProcessed      int64
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
