// Package cgraph is a concurrent iterative graph-processing library
// reproducing "CGraph: A Correlations-aware Approach for Efficient
// Concurrent Iterative Graph Processing" (Zhang et al., USENIX ATC 2018).
//
// Many iterative analytics jobs (PageRank, SSSP, SCC, BFS, ...) often run
// simultaneously over one shared graph. CGraph executes them with the
// paper's data-centric Load-Trigger-Pushing model: the shared graph
// structure is vertex-cut into partitions, streamed in a single common
// order chosen by a correlations-aware scheduler, and every loaded
// partition triggers all jobs that need it concurrently — so the dominant
// data-access cost is paid once and amortized across jobs.
//
// Quick start (batch mode):
//
//	sys := cgraph.NewSystem(cgraph.WithWorkers(8))
//	sys.LoadEdges(0, edges)
//	pr, _ := sys.Submit(algo.NewPageRank())
//	ss, _ := sys.Submit(algo.NewSSSP(0))
//	report, _ := sys.Run()
//	ranks, _ := pr.Results()
//
// Quick start (as a platform client): the Client interface is the unified
// job-service surface over the versioned wire types of package api. The
// server package implements it in-process (server.NewLocalClient) and the
// client package speaks the same contract to a remote cgraph-serve
// instance over HTTP — the two are interchangeable:
//
//	var c cgraph.Client = client.New("http://localhost:8040")
//	st, _ := c.Submit(ctx, api.JobSpec{Algo: "pagerank"})
//	events, _ := c.Watch(ctx, st.ID)
//	for ev := range events { // replay + live: queued, running, progress…
//	}
//	res, _ := c.Results(ctx, st.ID, api.ResultsOptions{Top: 10})
//
// Custom algorithms implement model.Program (the paper's IsNotConvergent /
// Compute / Acc triple); the bundled ones live in package algo.
package cgraph

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"cgraph/api"
	"cgraph/internal/core"
	"cgraph/internal/exec"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/ingest"
	"cgraph/internal/memsim"
	"cgraph/internal/metrics"
	"cgraph/internal/sched"
	"cgraph/internal/span"
	"cgraph/internal/storage"
	"cgraph/internal/trace"
	"cgraph/model"
)

// ErrCancelled is returned by Job.Err for jobs retired via Job.Cancel.
var ErrCancelled = errors.New("cgraph: job cancelled")

// ErrIngestSaturated is returned (wrapped) by ApplyDelta when the system
// was built with WithIngestCap and the coalescing buffer is full: the batch
// was shed, nothing was buffered, and the caller should retry after a flush
// drains the buffer. Services map it to a machine-readable 429.
var ErrIngestSaturated = errors.New("cgraph: ingest saturated")

// Client is the unified job-service surface: submit, observe, and control
// concurrent iterative jobs against one resident graph, speaking the
// versioned wire types of package api. Two implementations exist with
// identical observable behaviour — server.NewLocalClient adapts an
// in-process server.Service, and package client speaks HTTP to a
// serve-mode instance — so code written against Client runs unchanged
// embedded or remote. Service-side failures are returned as *api.Error
// with machine-readable codes on both transports.
type Client interface {
	// Submit registers a job and returns its initial status (queued or
	// running). The spec's Algo must name an algorithm in the service's
	// registry.
	Submit(ctx context.Context, spec api.JobSpec) (api.JobStatus, error)
	// Get returns one job's current status.
	Get(ctx context.Context, id string) (api.JobStatus, error)
	// List returns a page of the job listing: compacted history first,
	// then live jobs in submission order, with the scheduler summary.
	// Options filter by lifecycle state and by labels before paginating.
	List(ctx context.Context, opts api.ListOptions) (api.JobList, error)
	// Watch streams the job's events: a replay of its state transitions
	// so far (plus latest progress), then live progress and state events.
	// The channel closes after a terminal state event, or when ctx ends.
	Watch(ctx context.Context, id string) (<-chan api.Event, error)
	// Results returns a finished job's converged values (api.CodeNotReady
	// before convergence, api.CodeReleased after history compaction).
	Results(ctx context.Context, id string, opts api.ResultsOptions) (api.Results, error)
	// Cancel retires the job and returns its status; cancelling a
	// terminal job fails with api.CodeConflict.
	Cancel(ctx context.Context, id string) (api.JobStatus, error)
	// AddSnapshot ingests a new graph version (a slot rewrite of the base
	// edge list) at the given timestamp.
	AddSnapshot(ctx context.Context, snap api.Snapshot) (api.SnapshotAck, error)
	// ApplyDelta streams one edge-mutation batch into the service's
	// ingestion pipeline; mutations coalesce in a bounded buffer and
	// flush into overlay snapshots per the service's batching window.
	ApplyDelta(ctx context.Context, delta api.Delta) (api.DeltaAck, error)
	// SchedInfo reports the scheduler's last plan.
	SchedInfo(ctx context.Context) (api.SchedInfo, error)
	// Metrics reports job-state counts, round-loop progress, and
	// scheduler state.
	Metrics(ctx context.Context) (api.Metrics, error)
	// JobTrace returns a job's round-by-round timeline (queue wait, admit,
	// per-round durations and work split, terminal state), retrievable
	// while the job runs and after it compacts. Requires the service to
	// trace (TraceDepth > 0) for per-round entries; the lifecycle envelope
	// is always populated.
	JobTrace(ctx context.Context, id string) (api.JobTrace, error)
	// RoundTrace returns the service's retained per-round trace records,
	// oldest first.
	RoundTrace(ctx context.Context, opts api.TraceOptions) (api.RoundTraces, error)
	// JobSpans returns one job's distributed-span tree (submit → queue
	// wait → rounds → retire, plus sampled executor tasks) and the
	// resource attribution computed from it. Only job-attributed spans are
	// returned, so local and HTTP clients yield identical trees; transport
	// spans (http.request, ingest.*) are reachable via TraceSpans.
	JobSpans(ctx context.Context, id string) (api.JobSpans, error)
	// TraceSpans returns every retained span of one trace, oldest first —
	// including transport and ingest spans sharing the trace ID.
	TraceSpans(ctx context.Context, traceID string) (api.SpanList, error)
}

// Convenient aliases so simple uses need only this package and algo.
type (
	// Edge is a directed weighted edge (alias of model.Edge).
	Edge = model.Edge
	// VertexID identifies a vertex (alias of model.VertexID).
	VertexID = model.VertexID
	// Program is a vertex program (alias of model.Program).
	Program = model.Program
)

// Scheduler selects the partition-load ordering policy.
type Scheduler int

const (
	// PriorityScheduler is the paper's Eq. 1 policy applied over the union
	// of every job's footprint (one-level; default).
	PriorityScheduler Scheduler = iota
	// StaticScheduler loads partitions in index order.
	StaticScheduler
	// TwoLevelScheduler first groups jobs whose active footprints share
	// snapshot partition versions, then applies Eq. 1 within each group —
	// the snapshot-aware two-level policy.
	TwoLevelScheduler
)

// String names the policy ("priority", "static", "two-level").
func (s Scheduler) String() string { return schedKind(s).String() }

// ParseScheduler resolves a policy name ("static", "priority",
// "two-level") to its Scheduler value.
func ParseScheduler(name string) (Scheduler, error) {
	k, err := sched.ParseKind(name)
	if err != nil {
		return PriorityScheduler, fmt.Errorf("cgraph: %w", err)
	}
	switch k {
	case sched.Static:
		return StaticScheduler, nil
	case sched.TwoLevel:
		return TwoLevelScheduler, nil
	default:
		return PriorityScheduler, nil
	}
}

type config struct {
	workers         int
	balance         float64
	scheduler       Scheduler
	coreSubgraph    bool
	coreFraction    float64
	numPartitions   int
	cacheBytes      int64
	memoryBytes     int64
	disableSplit    bool
	ingestWindow    time.Duration
	ingestBatch     int
	ingestCap       int
	compactRatio    float64
	maxVertexGrowth int
	retainSnapshots int
	traceDepth      int
	spanStore       int
	spanTaskEvery   int
}

// Option configures a System.
type Option func(*config)

// WithWorkers sets the worker (core) count; default runtime.GOMAXPROCS.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithBalance sets the work-stealing executor's task-granularity
// multiplier: each trigger batch is sliced into tasks of roughly
// totalWeight/(workers·balance) scatter edges (default 4). Higher values
// cut finer tasks — better steal balance, more per-task overhead.
func WithBalance(b float64) Option { return func(c *config) { c.balance = b } }

// WithScheduler selects the load-order policy.
func WithScheduler(s Scheduler) Option { return func(c *config) { c.scheduler = s } }

// WithCoreSubgraph toggles §3.3 core-subgraph partitioning (default on for
// static graphs; forced off when snapshots are used, which require
// slot-stable plain partitioning).
func WithCoreSubgraph(on bool) Option { return func(c *config) { c.coreSubgraph = on } }

// WithCoreFraction sets the fraction of vertices classified as core.
func WithCoreFraction(f float64) Option { return func(c *config) { c.coreFraction = f } }

// WithPartitions overrides the partition count; by default it is derived
// from the simulated cache capacity via the §3.2.1 Pg formula (or a
// worker-based heuristic without cache simulation).
func WithPartitions(n int) Option { return func(c *config) { c.numPartitions = n } }

// WithCacheSimulation enables the simulated memory hierarchy with the given
// capacities, which populates the data-movement metrics in Report. Without
// it the library runs at full speed over an unlimited hierarchy.
func WithCacheSimulation(cacheBytes, memoryBytes int64) Option {
	return func(c *config) {
		c.cacheBytes = cacheBytes
		c.memoryBytes = memoryBytes
	}
}

// WithoutStragglerSplitting disables the Fig. 6 intra-partition load
// balancing (ablation/debugging).
func WithoutStragglerSplitting() Option { return func(c *config) { c.disableSplit = true } }

// WithIngestWindow sets the delta pipeline's batching window: buffered
// mutations older than d flush into a snapshot even if the count trigger
// has not fired. Zero (the default) disables the age trigger.
func WithIngestWindow(d time.Duration) Option { return func(c *config) { c.ingestWindow = d } }

// WithIngestBatch sets the delta pipeline's count trigger: the buffer
// flushes into a snapshot once it holds n distinct mutated slots (default
// 256).
func WithIngestBatch(n int) Option { return func(c *config) { c.ingestBatch = n } }

// WithIngestCap bounds the delta pipeline's coalescing buffer at n pending
// mutations: a delta batch that would grow the buffer beyond the cap —
// including a single oversized batch — is shed with ErrIngestSaturated
// instead of buffering unboundedly, so a slow materializer surfaces as
// backpressure. Zero (the default) disables admission control.
func WithIngestCap(n int) Option { return func(c *config) { c.ingestCap = n } }

// WithCompactionRatio sets the hole-compaction trigger: when a delta flush
// is about to build a snapshot and at least ratio of the edge slots are
// removal tombstones, the edge list is compacted in place first — holes
// squeezed out, the slot space shrunk — so a long remove-heavy delta
// stream cannot leave the partitions scanning mostly-dead slots forever.
// Compaction recuts every partition at or after the first hole, so it is
// deliberately rare: the default ratio is 0.25; negative disables
// compaction entirely.
func WithCompactionRatio(f float64) Option { return func(c *config) { c.compactRatio = f } }

// WithMaxVertexGrowth bounds how far beyond the current vertex space a
// single delta batch's structural mutations may reach (default 1<<20 new
// vertices): vertex tables are allocated densely up to the largest id, so
// without a bound one tiny add_vertex request naming id 2^32-2 would force
// a multi-gigabyte allocation. Batches exceeding the bound are rejected
// atomically at admission.
func WithMaxVertexGrowth(n int) Option { return func(c *config) { c.maxVertexGrowth = n } }

// WithRetainSnapshots caps the retained snapshot series at n versions:
// beyond it the oldest snapshots not referenced by any bound job are
// evicted, so a resident service ingesting deltas forever stays bounded.
// The latest snapshot and any snapshot a live job is bound to are never
// evicted. Zero (the default) keeps every snapshot.
func WithRetainSnapshots(n int) Option { return func(c *config) { c.retainSnapshots = n } }

// WithTraceDepth enables round/job tracing with a ring of the last n round
// records and per-job timelines bounded at n rounds (retained after the job
// retires, in a terminal ring also bounded at n). Zero (the default)
// disables tracing: the round loop then skips all per-round trace
// bookkeeping, so an untraced system pays nothing.
func WithTraceDepth(n int) Option { return func(c *config) { c.traceDepth = n } }

// WithSpanStore bounds the distributed-span store at n spans: beyond it the
// oldest spans are evicted FIFO, so span memory stays bounded regardless of
// traffic (default 4096).
func WithSpanStore(n int) Option { return func(c *config) { c.spanStore = n } }

// WithSpanSampling records a "pool.task" span for one in every n executor
// tasks of span-carrying jobs. Zero (the default) samples 1-in-64; negative
// disables task spans entirely while keeping job/round spans and
// stolen-task attribution.
func WithSpanSampling(n int) Option { return func(c *config) { c.spanTaskEvery = n } }

// System is a CGraph instance: one shared (possibly evolving) graph plus
// the concurrent jobs analysing it. It operates in two modes: the batch
// Submit…Submit→Run API that drains every job and returns, and the resident
// Serve mode where a long-running round loop accepts submissions,
// cancellations, and snapshots continuously until Shutdown.
type System struct {
	cfg config
	// tracer records the system's distributed spans (job lifecycle, rounds,
	// sampled executor tasks, ingest flushes) in a bounded in-memory store.
	// Always non-nil after NewSystem; internally locked.
	tracer *span.Tracer

	mu       sync.Mutex
	store    *storage.SnapshotStore
	edges    []model.Edge
	engine   *core.Engine
	pipeline *ingest.Pipeline
	jobs     []*Job
	byID     map[int]*Job
	// numVertices is the authoritative vertex-space size of the latest
	// snapshot; structural deltas grow it monotonically (add_vertex,
	// add_edge endpoints beyond it).
	numVertices int
	// edgeSlots indexes the current edge list by endpoint pair for
	// structural removes; built lazily on the first remove and maintained
	// incrementally, dropped (and rebuilt on demand) by full-list
	// snapshots and failed materializations.
	edgeSlots map[uint64][]int
	// freeSlots lists edge slots holding removal tombstones
	// (model.HoleEdge). Removes punch holes instead of swapping the tail
	// in, so a remove-bearing flush touches only the removed slots'
	// chunks; adds refill holes before growing the list.
	freeSlots []int
	// compactions counts hole-compaction passes (WithCompactionRatio)
	// performed by delta flushes.
	compactions int64

	serveCancel context.CancelFunc
	serveDone   chan struct{}

	// progressFns observe every completed job iteration, keyed by
	// registration order for removal; progressList is the copy-on-write
	// call order the round-loop hot path reads, rebuilt on mutation.
	progressFns  map[int]func(JobUpdate)
	progressSeq  int
	progressList []func(JobUpdate)

	// obsMu guards the ingest-event observers separately from s.mu:
	// notifyIngest fires from under s.mu, the pipeline lock, and the
	// snapshot store lock, so the registry must never need s.mu.
	obsMu         sync.Mutex
	ingestObsFns  map[int]func(IngestEvent)
	ingestObsSeq  int
	ingestObsList []func(IngestEvent)
}

// IngestEventKind tags an IngestEvent.
type IngestEventKind int

const (
	// IngestFlush reports one delta-pipeline flush attempt: Trigger,
	// Duration (materialize latency), Mutations (coalesced batch size),
	// Built, and Timestamp are set.
	IngestFlush IngestEventKind = iota
	// IngestMaterialize reports one snapshot materialization: Path
	// ("overlay" or "restructure"), Duration, Mutations (slots applied),
	// and Timestamp are set.
	IngestMaterialize
	// IngestEvict reports one snapshot evicted by retention GC: Seq and
	// Timestamp are set.
	IngestEvict
)

// IngestEvent is one observability event from the ingestion/retention path.
type IngestEvent struct {
	Kind IngestEventKind
	// Trigger is the flush trigger ("manual", "count", "age").
	Trigger string
	// Path is the materialization path ("overlay", "restructure").
	Path string
	// Duration is the wall-clock latency of the flush/materialization.
	Duration time.Duration
	// Mutations is the flush batch size (IngestFlush) or the slots applied
	// (IngestMaterialize).
	Mutations int
	// Built reports whether the flush produced a snapshot.
	Built bool
	// Seq is the evicted snapshot's series index (IngestEvict).
	Seq int
	// Timestamp is the snapshot timestamp the event concerns.
	Timestamp int64
	// TraceID and RequestID identify the delta batch that opened the
	// flushed window (IngestFlush), when its submitter carried them — they
	// join flush log lines and spans back to the originating request.
	TraceID   string
	RequestID string
}

// OnIngestEvent registers fn to observe ingestion-path events: flushes,
// materializations, and retention evictions. Observers accumulate like
// OnJobProgress; the returned func unregisters. fn may be called with
// System, pipeline, or store locks held — it must be fast and must not
// call back into the System (record, log, or observe a histogram and
// return). A nil fn is ignored.
func (s *System) OnIngestEvent(fn func(IngestEvent)) (unregister func()) {
	if fn == nil {
		return func() {}
	}
	s.obsMu.Lock()
	if s.ingestObsFns == nil {
		s.ingestObsFns = make(map[int]func(IngestEvent))
	}
	id := s.ingestObsSeq
	s.ingestObsSeq++
	s.ingestObsFns[id] = fn
	s.rebuildIngestObsLocked()
	s.obsMu.Unlock()
	return func() {
		s.obsMu.Lock()
		delete(s.ingestObsFns, id)
		s.rebuildIngestObsLocked()
		s.obsMu.Unlock()
	}
}

func (s *System) rebuildIngestObsLocked() {
	ids := make([]int, 0, len(s.ingestObsFns))
	for id := range s.ingestObsFns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	list := make([]func(IngestEvent), len(ids))
	for i, id := range ids {
		list[i] = s.ingestObsFns[id]
	}
	s.ingestObsList = list
}

// notifyIngest delivers ev to the registered observers. It takes only
// obsMu, so it is safe to call from under any other System lock.
func (s *System) notifyIngest(ev IngestEvent) {
	s.obsMu.Lock()
	fns := s.ingestObsList
	s.obsMu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// JobUpdate reports one completed iteration of a submitted job: the
// running totals as of the iteration's closing push.
type JobUpdate struct {
	// JobID is the engine-assigned ID (Job.ID).
	JobID int
	// Iteration is the number of completed iterations, 1-based.
	Iteration int
	// EdgesProcessed is the job's running edge total.
	EdgesProcessed int64
	// VirtualTimeUS is the engine's virtual clock at the iteration close.
	VirtualTimeUS float64
}

// OnJobProgress registers fn to observe every completed job iteration
// (serve mode and batch runs alike). Observers accumulate: each
// registered fn receives every update, so a server.Service and user code
// can observe the same System without displacing one another. The
// returned func unregisters fn — call it when the observer's lifetime
// ends (a stopped service, say) so the System does not keep it alive.
// fn runs on the engine's round-loop goroutine and must not block for
// long; the final iteration's update is delivered strictly before the
// job's Done channel closes. Resident services use this to feed
// job-event streams without polling. A nil fn is ignored.
func (s *System) OnJobProgress(fn func(JobUpdate)) (unregister func()) {
	if fn == nil {
		return func() {}
	}
	s.mu.Lock()
	if s.progressFns == nil {
		s.progressFns = make(map[int]func(JobUpdate))
	}
	id := s.progressSeq
	s.progressSeq++
	s.progressFns[id] = fn
	s.rebuildProgressListLocked()
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.progressFns, id)
		s.rebuildProgressListLocked()
		s.mu.Unlock()
	}
}

// rebuildProgressListLocked recomputes the registration-ordered call list.
// Mutations are rare; the per-iteration hot path just reads the slice.
func (s *System) rebuildProgressListLocked() {
	ids := make([]int, 0, len(s.progressFns))
	for id := range s.progressFns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	list := make([]func(JobUpdate), len(ids))
	for i, id := range ids {
		list[i] = s.progressFns[id]
	}
	s.progressList = list
}

// onJobProgress forwards engine progress to the registered observers, in
// registration order. Runs once per completed job iteration on the
// engine's round loop, so it only snapshots the prebuilt call list.
func (s *System) onJobProgress(p core.JobProgress) {
	s.mu.Lock()
	fns := s.progressList
	s.mu.Unlock()
	if len(fns) == 0 {
		return
	}
	u := JobUpdate{
		JobID:          p.JobID,
		Iteration:      p.Iteration,
		EdgesProcessed: p.EdgesProcessed,
		VirtualTimeUS:  p.VirtualTimeUS,
	}
	for _, fn := range fns {
		fn(u)
	}
}

// NewSystem builds an empty system; load a graph before submitting jobs.
func NewSystem(opts ...Option) *System {
	cfg := config{coreSubgraph: true, coreFraction: 0.05}
	for _, o := range opts {
		o(&cfg)
	}
	return &System{cfg: cfg, tracer: span.New(span.Config{Capacity: cfg.spanStore})}
}

// SpanTracer exposes the system's span tracer: services start transport and
// lifecycle spans on it and read the store for the span endpoints. Always
// non-nil.
func (s *System) SpanTracer() *span.Tracer { return s.tracer }

// LoadEdges ingests the base graph. numVertices of 0 infers the count from
// the largest endpoint.
func (s *System) LoadEdges(numVertices int, edges []Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		return fmt.Errorf("cgraph: graph already loaded")
	}
	if len(edges) == 0 {
		return fmt.Errorf("cgraph: empty edge list")
	}
	g := graph.Build(numVertices, edges)
	parts := s.cfg.numPartitions
	if parts <= 0 {
		if s.cfg.cacheBytes > 0 {
			total := int64(len(edges))*16 + int64(g.N)*9
			w := s.cfg.workers
			if w <= 0 {
				w = 8
			}
			parts = graph.SuggestNumPartitions(total, s.cfg.cacheBytes, w, 16, 16, s.cfg.cacheBytes/8)
		} else {
			parts = 4 * max(1, s.cfg.workers)
		}
		if parts < 4 {
			parts = 4
		}
	}
	pg, err := graph.Cut(g, edges, graph.Options{
		NumPartitions: parts,
		CoreSubgraph:  s.cfg.coreSubgraph,
		CoreFraction:  s.cfg.coreFraction,
	})
	if err != nil {
		return err
	}
	// The system owns its copy: delta flushes mutate the list in place, so
	// it must not alias the caller's slice.
	s.edges = append([]model.Edge(nil), edges...)
	s.numVertices = g.N
	s.store = storage.NewSnapshotStore(pg, 0)
	s.store.SetRetention(s.cfg.retainSnapshots)
	// Forward retention evictions to the ingest-event observers.
	// notifyIngest takes only obsMu, so firing from under the store lock
	// (and whatever locks the Add that triggered GC holds) is safe.
	s.store.SetEvictObserver(func(seq int, ts int64) {
		s.notifyIngest(IngestEvent{Kind: IngestEvict, Seq: seq, Timestamp: ts})
	})
	return nil
}

// LoadEdgeFile ingests a TSV/whitespace edge list ("src dst [weight]").
func (s *System) LoadEdgeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	edges, err := gen.ReadEdges(f)
	if err != nil {
		return err
	}
	return s.LoadEdges(0, edges)
}

// AddSnapshot registers a new graph version at the given timestamp
// (§3.2.1): the edge list must have the same length as the base (slot
// rewrites, see gen.Mutate), unchanged partitions are shared with the
// previous snapshot, and jobs submitted with AtTimestamp ≥ timestamp see
// the new version. Requires the system to have been built with
// WithCoreSubgraph(false).
func (s *System) AddSnapshot(edges []Edge, timestamp int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return fmt.Errorf("cgraph: load a base graph first")
	}
	prev := s.store.Latest().PG
	if prev.NumCore != 0 {
		return fmt.Errorf("cgraph: snapshots require WithCoreSubgraph(false)")
	}
	if len(edges) != len(s.edges) {
		return fmt.Errorf("cgraph: snapshot edge list has %d slots, base has %d (snapshots are slot rewrites of the base list)", len(edges), len(s.edges))
	}
	changed := diffSlots(s.edges, edges)
	changedParts := graph.ChangedPartitions(changed, prev.ChunkSize, len(prev.Parts))
	pg, err := graph.Overlay(prev, edges, changedParts)
	if err != nil {
		return err
	}
	// Route the store append through the engine once it exists: its lock
	// serializes the write against snapshot resolution in concurrent
	// submissions while the system serves.
	if s.engine != nil {
		err = s.engine.AddSnapshot(pg, timestamp)
	} else {
		err = s.store.Add(pg, timestamp)
	}
	if err != nil {
		return err
	}
	// Copied for the same reason as in LoadEdges: the system's list must
	// not alias the caller's.
	s.edges = append([]model.Edge(nil), edges...)
	// A rewrite may name endpoints beyond the loaded vertex count (Build
	// auto-grows the snapshot's N); track it so structural deltas keep
	// working against the grown space.
	s.numVertices = pg.G.N
	// The full-list rewrite invalidates the structural-remove index and the
	// free-slot list; the index is rebuilt lazily the next time a remove
	// needs it.
	s.edgeSlots = nil
	s.freeSlots = nil
	return nil
}

// diffSlots lists the rewritten slot indices of two equal-length edge
// lists; AddSnapshot validates the lengths before calling.
func diffSlots(a, b []model.Edge) []int {
	var out []int
	for i := range a {
		if a[i] != b[i] {
			out = append(out, i)
		}
	}
	return out
}

// MutationOp is the kind of one streamed edge mutation.
type MutationOp int

const (
	// MutationRewrite replaces the edge occupying an existing slot of the
	// current list (slot count and partition chunking stay stable).
	MutationRewrite MutationOp = MutationOp(ingest.Rewrite)
	// MutationAdd appends a new edge slot; the vertex space grows to cover
	// its endpoints, and the partition series re-chunks incrementally.
	MutationAdd MutationOp = MutationOp(ingest.AddEdge)
	// MutationRemove deletes one edge whose endpoints match Edge's (weight
	// ignored); removing an absent edge is a counted no-op. An add
	// followed by a remove of the same edge cancels in the buffer.
	MutationRemove MutationOp = MutationOp(ingest.RemoveEdge)
	// MutationAddVertex grows the vertex space to include Vertex, without
	// edges — new vertices exist immediately and gain replicas once edges
	// reach them.
	MutationAddVertex MutationOp = MutationOp(ingest.AddVertex)
)

// Mutation is one streamed edge mutation. Slot is meaningful for
// MutationRewrite, Edge for rewrite/add/remove, Vertex for
// MutationAddVertex.
type Mutation struct {
	Op     MutationOp
	Slot   int
	Edge   Edge
	Vertex VertexID
}

// Delta is one streamed mutation batch for ApplyDelta.
type Delta struct {
	Mutations []Mutation
	// Timestamp, when positive, is the lowest acceptable timestamp for the
	// snapshot that will include this batch; by default snapshots are
	// stamped latest+1 at flush time.
	Timestamp int64
	// Flush forces materialization of the buffer (this batch included)
	// instead of waiting for the count or age trigger.
	Flush bool
	// Span, when valid, parents the flush/materialize spans of the batching
	// window this delta opens; RequestID tags the window's flush event for
	// log joinability. Both are optional.
	Span      span.Context
	RequestID string
}

// DeltaAck confirms one accepted delta batch.
type DeltaAck struct {
	// Accepted mutations from this batch; Pending is the coalescing-buffer
	// size afterwards (0 if the batch flushed).
	Accepted int
	Pending  int
	// Flushed reports whether a snapshot was materialized by this call;
	// Timestamp is its timestamp.
	Flushed   bool
	Timestamp int64
}

// IngestStats reports the delta pipeline's counters plus the snapshot
// store's lifecycle state.
type IngestStats struct {
	Batches, Mutations, Coalesced                              int64
	Flushes, CountFlushes, AgeFlushes, ManualFlushes, Failures int64
	// Accepted mutation records by op.
	Rewrites, EdgeAdds, EdgeRemoves, VertexAdds int64
	// Cancelled counts add/remove pairs of the same edge that annihilated
	// in the buffer; RemoveMisses no-op mutations applied at materialize
	// time (removes of absent edges, and rewrites of slots that vanished
	// under a same-window structural remove); Shed whole batches rejected
	// by the WithIngestCap admission control.
	Cancelled    int64
	RemoveMisses int64
	Shed         int64
	// SnapshotsBuilt counts snapshots materialized from deltas;
	// SlotsApplied the edge slots actually changed across them.
	SnapshotsBuilt int64
	SlotsApplied   int64
	// Compactions counts hole-compaction passes: flushes that squeezed the
	// removal tombstones out of the edge list before building, because the
	// free-slot ratio crossed the WithCompactionRatio trigger.
	Compactions int64
	// PartsRebuilt/PartsShared split the delta-built snapshots' partitions
	// into rebuilt ones and ones pointer-shared with their predecessor;
	// SharedRatio is shared/(shared+rebuilt), the incremental win.
	PartsRebuilt int64
	PartsShared  int64
	SharedRatio  float64
	// Pending is the current buffer size; LastTimestamp the newest
	// delta-built snapshot's timestamp.
	Pending       int
	LastTimestamp int64
	// Snapshot lifecycle: retained series length, evictions so far, and
	// the configured retention cap (0 = unbounded).
	SnapshotsLive    int
	SnapshotsEvicted int
	RetainSnapshots  int
	// Retained-window bounds: the oldest and newest retained snapshots'
	// series indices and timestamps. A job arriving with a timestamp
	// before OldestTimestamp is served by the oldest retained version.
	OldestSeq       int
	OldestTimestamp int64
	NewestSeq       int
	NewestTimestamp int64
	// NumVertices is the newest snapshot's vertex-space size; structural
	// deltas grow it.
	NumVertices int
}

// ensureIngestLocked lazily builds the delta pipeline over the loaded
// graph. Caller holds s.mu.
func (s *System) ensureIngestLocked() (*ingest.Pipeline, error) {
	if s.pipeline != nil {
		return s.pipeline, nil
	}
	if s.store == nil {
		return nil, fmt.Errorf("cgraph: load a base graph before applying deltas")
	}
	if s.store.Latest().PG.NumCore != 0 {
		return nil, fmt.Errorf("cgraph: delta ingestion requires WithCoreSubgraph(false)")
	}
	p, err := ingest.New(ingest.Config{
		// The slot space moves under structural deltas; the pipeline asks
		// for the current count at validation time (without holding its
		// own lock, so taking s.mu here cannot deadlock with a flush).
		Slots: func() int {
			s.mu.Lock()
			defer s.mu.Unlock()
			return len(s.edges)
		},
		MaxBatch:    s.cfg.ingestBatch,
		MaxPending:  s.cfg.ingestCap,
		Window:      s.cfg.ingestWindow,
		Tracer:      s.tracer,
		Materialize: s.materializeDelta,
		Observe: func(trigger string, d time.Duration, batch int, res ingest.Result, o ingest.Origin) {
			ev := IngestEvent{
				Kind:      IngestFlush,
				Trigger:   trigger,
				Duration:  d,
				Mutations: batch,
				Built:     res.Built,
				Timestamp: res.Timestamp,
				RequestID: o.RequestID,
			}
			if o.Span.Valid() {
				ev.TraceID = o.Span.Trace.String()
			}
			s.notifyIngest(ev)
		},
	})
	if err != nil {
		return nil, err
	}
	s.pipeline = p
	return p, nil
}

// ApplyDelta streams one edge-mutation batch into the ingestion pipeline
// (§3.2.1 run continuously): mutations coalesce per key in a bounded
// buffer, and a flush — count-triggered, age-triggered, or requested via
// Delta.Flush — materializes one snapshot in which only the touched
// partitions are rebuilt, every other partition staying pointer-shared with
// the previous version. Slot rewrites keep the topology fixed; the
// structural ops (MutationAdd, MutationRemove, MutationAddVertex) grow or
// shrink the edge-slot space and grow the vertex space, re-chunking the
// partition series incrementally, so snapshots along the series may differ
// in vertex and edge count while jobs bound to older versions run
// untouched. This is the O(|delta|) counterpart of the O(|E|) AddSnapshot
// path: a job bound to a delta-built snapshot computes what it would
// against the same mutated graph ingested as a full list. Batches are
// validated atomically; a bad slot or op rejects the whole batch, and with
// WithIngestCap a full buffer sheds the batch with ErrIngestSaturated.
func (s *System) ApplyDelta(d Delta) (DeltaAck, error) {
	s.mu.Lock()
	p, err := s.ensureIngestLocked()
	numV := s.numVertices
	s.mu.Unlock()
	if err != nil {
		return DeltaAck{}, err
	}
	// Vertex tables are dense up to the largest id, so an absurd endpoint
	// in one tiny mutation would force a matching allocation; bound how
	// far a batch may grow the space and reject it atomically up front.
	// (Remove endpoints never grow the space — an absent edge just
	// misses — so they are exempt.)
	growth := s.cfg.maxVertexGrowth
	if growth <= 0 {
		growth = 1 << 20
	}
	maxID := VertexID(min(int64(numV)+int64(growth)-1, int64(model.NoVertex)-1))
	checkID := func(v VertexID) error {
		if v > maxID {
			return fmt.Errorf("cgraph: vertex id %d exceeds the vertex-space growth bound %d (current space %d + max growth %d; see WithMaxVertexGrowth)",
				v, maxID, numV, growth)
		}
		return nil
	}
	muts := make([]ingest.Mutation, len(d.Mutations))
	for i, m := range d.Mutations {
		switch m.Op {
		case MutationRewrite, MutationAdd:
			if err := checkID(m.Edge.Src); err != nil {
				return DeltaAck{}, err
			}
			if err := checkID(m.Edge.Dst); err != nil {
				return DeltaAck{}, err
			}
		case MutationAddVertex:
			if err := checkID(m.Vertex); err != nil {
				return DeltaAck{}, err
			}
		}
		muts[i] = ingest.Mutation{Op: ingest.Op(m.Op), Slot: m.Slot, Edge: m.Edge, Vertex: m.Vertex}
	}
	ack, err := p.ApplyFrom(ingest.Origin{Span: d.Span, RequestID: d.RequestID}, muts, d.Timestamp, d.Flush)
	if err != nil {
		if errors.Is(err, ingest.ErrSaturated) {
			return DeltaAck{}, fmt.Errorf("%w: %v", ErrIngestSaturated, err)
		}
		return DeltaAck{}, err
	}
	return DeltaAck{Accepted: ack.Accepted, Pending: ack.Pending, Flushed: ack.Flushed, Timestamp: ack.Timestamp}, nil
}

// FlushDeltas materializes any buffered mutations immediately. With an
// empty buffer it is a no-op (Flushed false).
func (s *System) FlushDeltas() (DeltaAck, error) {
	s.mu.Lock()
	p := s.pipeline
	s.mu.Unlock()
	if p == nil {
		return DeltaAck{}, nil
	}
	res, err := p.Flush()
	if err != nil {
		return DeltaAck{}, err
	}
	return DeltaAck{Flushed: res.Built, Timestamp: res.Timestamp}, nil
}

// CloseIngest drains the delta pipeline: buffered mutations are flushed
// into a final snapshot and the age timer stops, so no flush can fire
// after the caller has quiesced the system (Shutdown does not do this —
// a stopped system still accepts deltas and can serve again). A later
// ApplyDelta starts a fresh pipeline. No-op when no deltas were ever
// applied.
func (s *System) CloseIngest() error {
	s.mu.Lock()
	p := s.pipeline
	s.pipeline = nil
	s.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Close()
}

// IngestCap reports the WithIngestCap admission bound (0 = uncapped), so
// readiness probes can compare it against IngestStats().Pending.
func (s *System) IngestCap() int { return s.cfg.ingestCap }

// IngestStats reports the delta pipeline's counters and the snapshot
// store's lifecycle state; zeros before any graph or delta activity.
func (s *System) IngestStats() IngestStats {
	s.mu.Lock()
	p, store := s.pipeline, s.store
	compactions := s.compactions
	s.mu.Unlock()
	out := IngestStats{SharedRatio: 1, Compactions: compactions}
	if p != nil {
		st := p.Stats()
		out.Batches, out.Mutations, out.Coalesced = st.Batches, st.Mutations, st.Coalesced
		out.Flushes, out.CountFlushes, out.AgeFlushes = st.Flushes, st.CountFlushes, st.AgeFlushes
		out.ManualFlushes, out.Failures = st.ManualFlushes, st.Failures
		out.Rewrites, out.EdgeAdds = st.Rewrites, st.EdgeAdds
		out.EdgeRemoves, out.VertexAdds = st.EdgeRemoves, st.VertexAdds
		out.Cancelled, out.RemoveMisses, out.Shed = st.Cancelled, st.Misses, st.Shed
		out.SnapshotsBuilt, out.SlotsApplied = st.SnapshotsBuilt, st.Applied
		out.PartsRebuilt, out.PartsShared = st.PartsRebuilt, st.PartsShared
		out.SharedRatio = st.SharedRatio()
		out.Pending, out.LastTimestamp = st.Pending, st.LastTimestamp
	}
	if store != nil {
		out.SnapshotsLive = store.Len()
		out.SnapshotsEvicted = store.Evicted()
		out.RetainSnapshots = store.Retention()
		oldest, newest := store.Window()
		out.OldestSeq, out.OldestTimestamp = oldest.Seq, oldest.Timestamp
		out.NewestSeq, out.NewestTimestamp = newest.Seq, newest.Timestamp
		out.NumVertices = newest.PG.G.N
	}
	return out
}

// compactRatioLocked resolves the effective hole-compaction trigger:
// the configured WithCompactionRatio, 0.25 by default, ≤0 when disabled.
func (s *System) compactRatioLocked() float64 {
	if s.cfg.compactRatio != 0 {
		return s.cfg.compactRatio
	}
	return 0.25
}

// edgeKeyOf packs an edge's endpoint pair into the structural-remove
// index's key.
func edgeKeyOf(e model.Edge) uint64 { return uint64(e.Src)<<32 | uint64(e.Dst) }

// edgeIndexLocked lazily builds the endpoint-pair → slots index used by
// structural removes. Caller holds s.mu.
func (s *System) edgeIndexLocked() map[uint64][]int {
	if s.edgeSlots == nil {
		idx := make(map[uint64][]int, len(s.edges))
		for i, e := range s.edges {
			if e.IsHole() {
				continue
			}
			k := edgeKeyOf(e)
			idx[k] = append(idx[k], i)
		}
		s.edgeSlots = idx
	}
	return s.edgeSlots
}

// indexAddLocked/indexDropLocked maintain the remove index incrementally
// when it exists; with no index built yet they no-op (a later remove
// rebuilds it from the current list).
func (s *System) indexAddLocked(e model.Edge, slot int) {
	if s.edgeSlots == nil {
		return
	}
	k := edgeKeyOf(e)
	s.edgeSlots[k] = append(s.edgeSlots[k], slot)
}

func (s *System) indexDropLocked(e model.Edge, slot int) {
	if s.edgeSlots == nil {
		return
	}
	k := edgeKeyOf(e)
	ss := s.edgeSlots[k]
	for i, x := range ss {
		if x == slot {
			ss[i] = ss[len(ss)-1]
			ss = ss[:len(ss)-1]
			break
		}
	}
	if len(ss) == 0 {
		delete(s.edgeSlots, k)
	} else {
		s.edgeSlots[k] = ss
	}
}

// indexTakeLocked pops one slot holding an edge with e's endpoints; ok is
// false when no such edge exists.
func (s *System) indexTakeLocked(e model.Edge) (int, bool) {
	idx := s.edgeIndexLocked()
	k := edgeKeyOf(e)
	ss := idx[k]
	if len(ss) == 0 {
		return 0, false
	}
	slot := ss[len(ss)-1]
	ss = ss[:len(ss)-1]
	if len(ss) == 0 {
		delete(idx, k)
	} else {
		idx[k] = ss
	}
	return slot, true
}

// materializeDelta is the pipeline's sink: it applies one coalesced batch
// (rewrites by ascending slot, then removes, adds, and vertex growth) to
// the authoritative edge list in place — the flush must stay O(|delta|),
// never O(|E|) — and builds the next snapshot. Pure slot rewrites take the
// Overlay path (same slot count, same partition count); structural batches
// take graph.Restructure, which re-chunks only the touched partitions while
// the vertex space and edge-slot count move. Removes punch a hole into the
// freed slot (model.HoleEdge) and record it on the free-slot list, so only
// the removed slot's chunk is touched — the tail chunk stays shared — and
// later adds refill holes in place before appending new slots.
// On failure every edge-list write and the vertex-space growth are
// reverted (and the remove index dropped for a lazy rebuild), so the
// pipeline's retained buffer can retry against unchanged state. In-place
// is safe: partitions copy the edge data into their own CSRs at build
// time, so no snapshot aliases s.edges.
func (s *System) materializeDelta(muts []ingest.Mutation, minTS int64, sc span.Context) (ingest.Result, error) {
	start := time.Now()
	// Parent the materialize span under the flush span when the window
	// carried one; with no origin there is no trace to join, so skip the
	// span rather than orphan it in a fresh trace.
	var sp *span.Span //cgraph:spanend conditional start; End below is nil-safe
	if sc.Valid() {
		sp = s.tracer.StartSpan(sc, "ingest.materialize")
	}
	s.mu.Lock()
	res, path, err := s.materializeDeltaLocked(muts, minTS)
	s.mu.Unlock()
	sp.Attr(span.Str("path", path), span.Int("slots", int64(res.Applied)), span.Bool("built", res.Built))
	sp.End()
	if path != "" {
		s.notifyIngest(IngestEvent{
			Kind:      IngestMaterialize,
			Path:      path,
			Duration:  time.Since(start),
			Mutations: res.Applied,
			Built:     res.Built,
			Timestamp: res.Timestamp,
		})
	}
	return res, err
}

// materializeDeltaLocked does the work of materializeDelta under s.mu and
// additionally reports which build path ran ("overlay", "restructure", or
// "" when every op was a no-op and no snapshot was attempted).
func (s *System) materializeDeltaLocked(muts []ingest.Mutation, minTS int64) (ingest.Result, string, error) {
	prev := s.store.Latest()
	prevLen := len(s.edges)
	prevN := s.numVertices

	const (
		undoWrite = iota
		undoAppend
	)
	type undoRec struct {
		kind int
		slot int
		old  model.Edge
	}
	var undo []undoRec
	prevFree := append([]int(nil), s.freeSlots...)
	changedSet := make(map[int]bool, len(muts))
	misses := 0
	growTo := func(v model.VertexID) {
		if int(v) >= s.numVertices {
			s.numVertices = int(v) + 1
		}
	}
	for _, m := range muts {
		switch m.Op {
		case ingest.Rewrite:
			if m.Slot >= len(s.edges) {
				// The slot vanished under a structural remove buffered in
				// the same window; nothing left to rewrite.
				misses++
				continue
			}
			if s.edges[m.Slot] == m.Edge {
				continue
			}
			undo = append(undo, undoRec{kind: undoWrite, slot: m.Slot, old: s.edges[m.Slot]})
			if s.edges[m.Slot].IsHole() {
				// Rewriting a freed slot revives it; take it off the
				// free list so an add cannot claim it too.
				for i, fs := range s.freeSlots {
					if fs == m.Slot {
						s.freeSlots[i] = s.freeSlots[len(s.freeSlots)-1]
						s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
						break
					}
				}
			}
			s.indexDropLocked(s.edges[m.Slot], m.Slot)
			s.indexAddLocked(m.Edge, m.Slot)
			s.edges[m.Slot] = m.Edge
			changedSet[m.Slot] = true
			growTo(m.Edge.Src)
			growTo(m.Edge.Dst)
		case ingest.RemoveEdge:
			slot, ok := s.indexTakeLocked(m.Edge)
			if !ok {
				misses++
				continue
			}
			// Punch a hole instead of swapping the tail in: only this
			// slot's chunk changes, so the tail chunk stays shared and
			// Restructure never recuts it for a plain remove.
			undo = append(undo, undoRec{kind: undoWrite, slot: slot, old: s.edges[slot]})
			s.edges[slot] = model.HoleEdge()
			s.freeSlots = append(s.freeSlots, slot)
			changedSet[slot] = true
		case ingest.AddEdge:
			var slot int
			if n := len(s.freeSlots); n > 0 {
				// Refill the most recently freed slot in place.
				slot = s.freeSlots[n-1]
				s.freeSlots = s.freeSlots[:n-1]
				undo = append(undo, undoRec{kind: undoWrite, slot: slot, old: s.edges[slot]})
				s.edges[slot] = m.Edge
			} else {
				slot = len(s.edges)
				s.edges = append(s.edges, m.Edge)
				undo = append(undo, undoRec{kind: undoAppend})
			}
			s.indexAddLocked(m.Edge, slot)
			changedSet[slot] = true
			growTo(m.Edge.Src)
			growTo(m.Edge.Dst)
		case ingest.AddVertex:
			growTo(m.Vertex)
		}
	}
	grewN := s.numVertices > prevN
	if len(changedSet) == 0 && !grewN {
		// Every op was a no-op (in-place rewrites, missed removes); no
		// version to build.
		return ingest.Result{Misses: misses}, "", nil
	}
	// preCompact holds the full pre-compaction edge list when a compaction
	// pass ran: the undo records reference pre-compaction slot positions,
	// so revert must restore the uncompacted list before replaying them.
	var preCompact []model.Edge
	revert := func() {
		if preCompact != nil {
			s.edges = preCompact
		}
		for i := len(undo) - 1; i >= 0; i-- {
			r := undo[i]
			switch r.kind {
			case undoWrite:
				s.edges[r.slot] = r.old
			case undoAppend:
				s.edges = s.edges[:len(s.edges)-1]
			}
		}
		s.numVertices = prevN
		s.freeSlots = prevFree
		// Incremental index maintenance is not unwound; rebuild lazily.
		s.edgeSlots = nil
	}
	if len(s.edges)-len(s.freeSlots) == 0 {
		revert()
		return ingest.Result{}, "", fmt.Errorf("cgraph: delta batch would remove every edge; at least one must remain")
	}
	// Hole compaction: when the tombstone share of the slot space crosses
	// the configured ratio, squeeze the holes out before building. Every
	// live slot at or after the first hole shifts down, so those slots all
	// join the changed set and the shrunk length forces the Restructure
	// path; slots below the first hole keep their positions and their
	// chunks stay shared.
	if ratio := s.compactRatioLocked(); ratio > 0 && len(s.freeSlots) > 0 &&
		float64(len(s.freeSlots)) >= ratio*float64(len(s.edges)) {
		preCompact = append([]model.Edge(nil), s.edges...)
		firstHole := -1
		w := 0
		for i := range s.edges {
			if s.edges[i].IsHole() {
				if firstHole < 0 {
					firstHole = i
				}
				continue
			}
			if w != i {
				s.edges[w] = s.edges[i]
			}
			w++
		}
		s.edges = s.edges[:w]
		for slot := range changedSet {
			if slot >= firstHole {
				delete(changedSet, slot)
			}
		}
		for slot := firstHole; slot < w; slot++ {
			changedSet[slot] = true
		}
		s.freeSlots = s.freeSlots[:0]
		// Slot positions moved; the remove index rebuilds lazily.
		s.edgeSlots = nil
		s.compactions++
	}
	ts := prev.Timestamp + 1
	if minTS > ts {
		ts = minTS
	}
	changed := make([]int, 0, len(changedSet))
	for slot := range changedSet {
		changed = append(changed, slot)
	}
	sort.Ints(changed)
	var pg *graph.PGraph
	var rebuilt int
	var err error
	var path string
	if len(s.edges) == prevLen && !grewN {
		// Pure in-place rewrites: same slot space, the Overlay fast path.
		path = "overlay"
		changedParts := graph.ChangedPartitions(changed, prev.PG.ChunkSize, len(prev.PG.Parts))
		pg, err = graph.Overlay(prev.PG, s.edges, changedParts)
		rebuilt = len(changedParts)
	} else {
		path = "restructure"
		var rebuiltIDs []int
		pg, rebuiltIDs, err = graph.Restructure(prev.PG, s.numVertices, s.edges, changed)
		rebuilt = len(rebuiltIDs)
	}
	if err != nil {
		revert()
		return ingest.Result{}, path, err
	}
	if s.engine != nil {
		err = s.engine.AddSnapshot(pg, ts)
	} else {
		err = s.store.Add(pg, ts)
	}
	if err != nil {
		revert()
		return ingest.Result{}, path, err
	}
	return ingest.Result{
		Built:     true,
		Timestamp: ts,
		Applied:   len(changed),
		Rebuilt:   rebuilt,
		Shared:    len(pg.Parts) - rebuilt,
		Misses:    misses,
	}, path, nil
}

// JobOption configures a submission.
type JobOption func(*jobConfig)

type jobConfig struct {
	arrival   int64
	priority  int
	ctx       context.Context
	span      span.Context
	spanJob   string
	mode      ExecMode
	staleness int
}

// ExecMode selects a job's execution discipline.
type ExecMode string

const (
	// ExecBSP is the default synchronous discipline: every iteration ends
	// with an Algorithm 2 push that reconciles replicas before any vertex
	// reads a neighbor's new value. Pre-existing behavior, byte-identical
	// results round for round.
	ExecBSP ExecMode = "bsp"
	// ExecAsync is the fresh-state discipline: within an iteration,
	// single-replica vertices fold incoming contributions immediately
	// (Gauss-Seidel style), so later blocks of the same partition sweep
	// read already-updated state. Monotonic programs (SSSP, WCC) converge
	// to the exact BSP fixpoint in fewer iterations; PageRank converges to
	// the same values within tolerance.
	ExecAsync ExecMode = "async"
	// ExecDelayed is the bounded-staleness variant of ExecAsync: merge
	// barriers (pushes) are skipped while the job still has local progress,
	// up to the WithStaleness bound, then forced. Fewer synchronizations at
	// the price of bounded-stale replica reads.
	ExecDelayed ExecMode = "delayed"
)

// ParseExecMode parses an execution-mode name ("bsp", "async", "delayed");
// the empty string is ExecBSP.
func ParseExecMode(s string) (ExecMode, error) {
	m, err := exec.ParseMode(s)
	if err != nil {
		return ExecBSP, err
	}
	return ExecMode(m.String()), nil
}

// WithExecMode sets the job's execution discipline (default ExecBSP).
// Unknown modes fail the submission.
func WithExecMode(m ExecMode) JobOption { return func(c *jobConfig) { c.mode = m } }

// WithStaleness sets an ExecDelayed job's staleness bound: the number of
// consecutive iterations allowed to skip the merge barrier before one is
// forced (default 3). Ignored for other modes; values < 1 use the default.
func WithStaleness(k int) JobOption { return func(c *jobConfig) { c.staleness = k } }

// AtTimestamp binds the job to the newest snapshot not younger than ts.
func AtTimestamp(ts int64) JobOption { return func(c *jobConfig) { c.arrival = ts } }

// WithPriority sets the job's scheduling priority (default 0): the
// two-level scheduler orders correlation groups by aggregate job priority,
// so a group carrying urgent jobs loads its partitions first each round.
func WithPriority(p int) JobOption { return func(c *jobConfig) { c.priority = p } }

// WithContext scopes the job to ctx: when ctx is cancelled or its deadline
// passes, the job is retired at the next round boundary and Job.Err reports
// the context's error.
func WithContext(ctx context.Context) JobOption { return func(c *jobConfig) { c.ctx = ctx } }

// WithSpan parents the job's engine-side spans ("job.round", sampled
// "pool.task") under the given span context, attributed to jobID — the
// service-level job identifier span queries use. A zero context leaves span
// recording off for this job.
func WithSpan(sc span.Context, jobID string) JobOption {
	return func(c *jobConfig) {
		c.span = sc
		c.spanJob = jobID
	}
}

// JobState is the lifecycle state of a submitted job.
type JobState int

const (
	// JobQueued: submitted, awaiting admission at a round boundary.
	JobQueued JobState = iota
	// JobRunning: being iterated by the engine.
	JobRunning
	// JobDone: converged; results are available.
	JobDone
	// JobCancelled: retired by Cancel or an expired job context.
	JobCancelled
	// JobFailed: retired by the engine without converging.
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobCancelled:
		return "cancelled"
	default:
		return "failed"
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s >= JobDone }

// Job is a handle to one submitted CGP job.
type Job struct {
	sys  *System
	id   int
	name string

	done chan struct{}

	mu      sync.Mutex
	err     error
	metrics *JobReport
	// terminal caches the final state once the engine retires the job, so
	// State stays correct after Release drops the engine-side entry.
	terminal JobState
}

// Submit registers a job against the current graph. Jobs may be submitted
// before Run, concurrently while Run executes, or at any time against a
// serving system (they are admitted at the next round boundary). Programs
// with job-private bookkeeping (e.g. algo.SCC) must not be shared between
// submissions.
func (s *System) Submit(p Program, opts ...JobOption) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil, fmt.Errorf("cgraph: load a graph before submitting jobs")
	}
	jc := jobConfig{arrival: s.store.Latest().Timestamp, ctx: context.Background()}
	for _, o := range opts {
		o(&jc)
	}
	mode, err := exec.ParseMode(string(jc.mode))
	if err != nil {
		return nil, fmt.Errorf("cgraph: unknown execution mode %q (want bsp, async, or delayed)", jc.mode)
	}
	s.ensureEngineLocked()
	id := s.engine.SubmitWith(jc.ctx, p, core.SubmitOpts{
		Arrival:   jc.arrival,
		Priority:  jc.priority,
		Span:      jc.span,
		SpanJob:   jc.spanJob,
		Mode:      mode,
		Staleness: jc.staleness,
	})
	j := &Job{sys: s, id: id, name: p.Name(), done: make(chan struct{})}
	s.jobs = append(s.jobs, j)
	s.byID[id] = j
	return j, nil
}

func (s *System) ensureEngineLocked() {
	if s.engine != nil {
		return
	}
	hier := memsim.Unlimited()
	if s.cfg.cacheBytes > 0 {
		hier = memsim.New(memsim.Config{
			CacheBytes:  s.cfg.cacheBytes,
			MemoryBytes: s.cfg.memoryBytes,
			Cost:        memsim.DefaultCost(),
		})
	}
	s.byID = make(map[int]*Job)
	s.engine = core.New(core.Config{
		Workers:               s.cfg.workers,
		Balance:               s.cfg.balance,
		Hier:                  hier,
		Scheduler:             schedKind(s.cfg.scheduler),
		DisableStragglerSplit: s.cfg.disableSplit,
		OnJobEvent:            s.onJobEvent,
		OnJobProgress:         s.onJobProgress,
		TraceDepth:            s.cfg.traceDepth,
		Tracer:                s.tracer,
		TaskSampleEvery:       s.cfg.spanTaskEvery,
	}, s.store)
}

// onJobEvent runs on the engine's round-loop goroutine whenever a job
// reaches a terminal state; it resolves the public handle.
func (s *System) onJobEvent(ev core.JobEvent) {
	s.mu.Lock()
	j := s.byID[ev.JobID]
	s.mu.Unlock()
	if j == nil {
		return
	}
	j.mu.Lock()
	j.terminal = JobState(ev.State)
	switch ev.State {
	case core.JobDone:
		j.metrics = jobReportOf(ev.Metrics)
	case core.JobCancelled:
		if errors.Is(ev.Err, core.ErrCancelled) {
			j.err = ErrCancelled
		} else {
			j.err = ev.Err
		}
	case core.JobFailed:
		j.err = ev.Err
	}
	j.mu.Unlock()
	close(j.done)
}

func schedKind(s Scheduler) sched.Kind {
	switch s {
	case StaticScheduler:
		return sched.Static
	case TwoLevelScheduler:
		return sched.TwoLevel
	default:
		return sched.Priority
	}
}

// Run executes every submitted job to convergence and returns the run
// report. It may be called again after further submissions.
func (s *System) Run() (*Report, error) {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return nil, fmt.Errorf("cgraph: nothing submitted")
	}
	rep, err := eng.Run()
	if err != nil {
		return nil, err
	}
	out := &Report{
		System:              rep.System,
		Workers:             rep.Workers,
		SimulatedMakespanUS: rep.Makespan,
		CPUUtilization:      rep.CPUUtilization(),
		CacheMissRate:       rep.Counters.MissRate(),
		BytesIntoCache:      rep.Counters.BytesIntoCache,
		BytesFromDisk:       rep.Counters.BytesFromDisk,
		WallClock:           rep.WallClock,
	}
	for _, jm := range rep.Jobs {
		out.Jobs = append(out.Jobs, *jobReportOf(&jm))
	}
	return out, nil
}

func jobReportOf(jm *metrics.JobMetrics) *JobReport {
	return &JobReport{
		Name:                jm.Name,
		Iterations:          jm.Iterations,
		SimulatedAccessUS:   jm.AccessTime,
		SimulatedComputeUS:  jm.ComputeTime,
		SimulatedFinishedUS: jm.FinishAt,
		EdgesProcessed:      jm.Edges,
		ExecMode:            ExecMode(jm.Mode),
		FreshFolds:          jm.FreshFolds,
		BarriersSkipped:     jm.BarriersSkipped,
		BarriersForced:      jm.BarriersForced,
	}
}

// Stats is a point-in-time snapshot of a system's engine counters,
// populated in serve mode (and after batch runs).
type Stats struct {
	Queued, Running, Done, Cancelled, Failed int
	Rounds                                   int64
	VirtualTimeUS                            float64
}

// Stats reports current job-state counts and round-loop progress; safe to
// call while the system serves. Before any submission it returns zeros.
func (s *System) Stats() Stats {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return Stats{}
	}
	es := eng.ServeStats()
	return Stats{
		Queued:        es.Queued,
		Running:       es.Running,
		Done:          es.Done,
		Cancelled:     es.Cancelled,
		Failed:        es.Failed,
		Rounds:        es.Rounds,
		VirtualTimeUS: es.VirtualTimeUS,
	}
}

// ExecStats is a point-in-time snapshot of the work-stealing executor's
// counters, populated once the engine exists.
type ExecStats struct {
	// Workers and Balance are the effective executor configuration.
	Workers int
	Balance float64
	// Tasks / Steals / Stolen are cumulative across rounds: tasks
	// executed, successful steal operations, and tasks moved by them.
	Tasks  int64
	Steals int64
	Stolen int64
	// SkippedPartitions counts (job, partition) pairs excluded before
	// scheduling because their frontier was empty (converged regions).
	SkippedPartitions int64
	// LastImbalance is the heaviest worker's realized share of the last
	// round's task weight, ×Workers (1.0 = perfectly even).
	LastImbalance float64
	// FreshFolds counts contributions folded eagerly by fresh-state
	// (ExecAsync/ExecDelayed) jobs instead of being deferred to the merge
	// barrier; zero on an all-BSP system.
	FreshFolds int64
	// BarriersSkipped / BarriersForced are the ExecDelayed bounded-staleness
	// counters: iterations that skipped the merge barrier because local
	// progress continued within the staleness bound, and iterations that
	// paid one (bound hit or local frontier drained).
	BarriersSkipped int64
	BarriersForced  int64
	// BSPJobs / AsyncJobs / DelayedJobs count submissions by execution mode.
	BSPJobs     int64
	AsyncJobs   int64
	DelayedJobs int64
}

// ExecStats reports the work-stealing executor's counters; safe to call
// while the system serves. Before any submission it reports only the
// configured workers and balance.
func (s *System) ExecStats() ExecStats {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		w := s.cfg.workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		b := s.cfg.balance
		if b <= 0 {
			b = 4
		}
		return ExecStats{Workers: w, Balance: b, LastImbalance: 1}
	}
	es := eng.ExecStats()
	return ExecStats{
		Workers:           es.Workers,
		Balance:           es.Balance,
		Tasks:             es.Tasks,
		Steals:            es.Steals,
		Stolen:            es.Stolen,
		SkippedPartitions: es.SkippedPartitions,
		LastImbalance:     es.LastImbalance,
		FreshFolds:        es.FreshFolds,
		BarriersSkipped:   es.BarriersSkipped,
		BarriersForced:    es.BarriersForced,
		BSPJobs:           es.BSPJobs,
		AsyncJobs:         es.AsyncJobs,
		DelayedJobs:       es.DelayedJobs,
	}
}

// SchedGroup reports one correlation group from the engine's last round.
type SchedGroup struct {
	// JobIDs are the engine job IDs scheduled together (Job.ID values).
	JobIDs []int
	// Priority is the group's aggregate (summed) job priority, the primary
	// inter-group ordering key.
	Priority int
	// Parts is the unit load order: each partition's index within its own
	// snapshot, parallel to UIDs.
	Parts []int
	// UIDs identifies the partition versions loaded, in load order.
	UIDs []int64
	// MakespanUS attributes the round's virtual time to this group.
	MakespanUS float64
}

// SchedInfo reports the scheduler's state as of the engine's last round:
// the policy, the current θ fit and how often it was refitted, and the
// chosen group/load order.
type SchedInfo struct {
	Policy      string
	Theta       float64
	ThetaRefits int
	Round       int64
	Groups      []SchedGroup
}

// SchedInfo reports the latest scheduling decision; safe to call while the
// system serves. Before any submission it reports only the policy.
func (s *System) SchedInfo() SchedInfo {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return SchedInfo{Policy: schedKind(s.cfg.scheduler).String()}
	}
	ci := eng.SchedInfo()
	out := SchedInfo{
		Policy:      ci.Policy,
		Theta:       ci.Theta,
		ThetaRefits: ci.Refits,
		Round:       ci.Round,
	}
	for _, g := range ci.Groups {
		out.Groups = append(out.Groups, SchedGroup{
			JobIDs:     g.Jobs,
			Priority:   g.Priority,
			Parts:      g.Parts,
			UIDs:       g.UIDs,
			MakespanUS: g.MakespanUS,
		})
	}
	return out
}

// RoundTraceGroup is one correlation group of a traced round's schedule.
type RoundTraceGroup struct {
	// JobIDs are the engine job IDs scheduled in the group.
	JobIDs []int
	// Priority is the aggregate job priority that ordered the group.
	Priority int
	// Units is the number of (snapshot, partition) units the group loaded.
	Units int
	// MakespanUS is the group's simulated span within the round.
	MakespanUS float64
}

// JobRoundTrace is one job's share of one traced round.
type JobRoundTrace struct {
	// JobID is the engine job ID the entry belongs to.
	JobID int
	// Round is the 1-based engine round index.
	Round int64
	// Wall is the measured wall-clock duration of the whole round.
	Wall time.Duration
	// Parts is the number of active partitions the job had scheduled.
	Parts int
	// Pushes is the number of iterations the job closed this round.
	Pushes int
	// Mode is the job's execution discipline ("async", "delayed"); empty
	// for default-BSP jobs, so pre-mode trace records are unchanged.
	Mode string
	// FreshFolds counts contributions the job folded eagerly (fresh-state)
	// this round; zero for BSP jobs.
	FreshFolds int64
	// AccessUS / ComputeUS split the job's simulated time charged this
	// round.
	AccessUS  float64
	ComputeUS float64
	// VirtualTimeUS is the engine's simulated clock at round end.
	VirtualTimeUS float64
}

// RoundTrace is one engine round's trace record (see WithTraceDepth).
type RoundTrace struct {
	Round         int64
	Start         time.Time
	Wall          time.Duration
	VirtualTimeUS float64
	Policy        string
	Theta         float64
	Groups        []RoundTraceGroup
	Jobs          []JobRoundTrace
	// Tasks / Steals are the work-stealing executor's per-round counts;
	// Skipped is the number of (job, partition) pairs whose frontier was
	// empty at round start (converged regions skipped before scheduling).
	Tasks   int64
	Steals  int64
	Skipped int64
	// FreshFolds counts contributions folded eagerly by fresh-state (async
	// or delayed) jobs during the round; zero on all-BSP rounds.
	FreshFolds int64
}

// JobTrace is one job's retained round-by-round timeline.
type JobTrace struct {
	// JobID is the engine job ID (Job.ID).
	JobID int
	// State is the terminal state name once the job retired, "" while it
	// runs.
	State string
	// Dropped counts rounds truncated off the front of the bounded
	// timeline.
	Dropped int
	// Rounds is the retained timeline, oldest first.
	Rounds []JobRoundTrace
}

// TraceDepth reports the configured trace ring depth (0 = disabled).
func (s *System) TraceDepth() int { return s.cfg.traceDepth }

// RoundTraces returns up to limit of the most recent round-trace records,
// oldest first (limit <= 0 returns the whole ring). Tracing must be enabled
// with WithTraceDepth; otherwise, and before any round, it returns nil.
func (s *System) RoundTraces(limit int) []RoundTrace {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return nil
	}
	recs := eng.RoundTraces(limit)
	out := make([]RoundTrace, 0, len(recs))
	for _, r := range recs {
		rt := RoundTrace{
			Round:         r.Round,
			Start:         r.Start,
			Wall:          r.Wall,
			VirtualTimeUS: r.VirtualTimeUS,
			Policy:        r.Policy,
			Theta:         r.Theta,
			Tasks:         r.Tasks,
			Steals:        r.Steals,
			Skipped:       r.Skipped,
			FreshFolds:    r.Fresh,
		}
		for _, g := range r.Groups {
			rt.Groups = append(rt.Groups, RoundTraceGroup{
				JobIDs:     g.Jobs,
				Priority:   g.Priority,
				Units:      g.Units,
				MakespanUS: g.MakespanUS,
			})
		}
		for _, jr := range r.Jobs {
			rt.Jobs = append(rt.Jobs, jobRoundTraceOf(jr))
		}
		out = append(out, rt)
	}
	return out
}

// JobTrace returns the round-by-round timeline recorded for an engine job
// ID — live while it runs, retained after it retires — or false when
// tracing is disabled or the timeline was evicted from the terminal ring.
func (s *System) JobTrace(jobID int) (JobTrace, bool) {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return JobTrace{}, false
	}
	tl, ok := eng.JobTrace(jobID)
	if !ok {
		return JobTrace{}, false
	}
	out := JobTrace{JobID: tl.JobID, State: tl.State, Dropped: tl.Dropped}
	for _, jr := range tl.Rounds {
		out.Rounds = append(out.Rounds, jobRoundTraceOf(jr))
	}
	return out, true
}

func jobRoundTraceOf(jr trace.JobRound) JobRoundTrace {
	return JobRoundTrace{
		JobID:         jr.Job,
		Round:         jr.Round,
		Wall:          jr.Wall,
		Parts:         jr.Parts,
		Pushes:        jr.Pushes,
		Mode:          jr.Mode,
		FreshFolds:    jr.Fresh,
		AccessUS:      jr.AccessUS,
		ComputeUS:     jr.ComputeUS,
		VirtualTimeUS: jr.VirtualTimeUS,
	}
}

// HistogramStat is a point-in-time copy of an internal latency histogram:
// per-bucket (non-cumulative) counts by upper bound, plus sum and count.
type HistogramStat struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// RoundDurationStats returns the wall-clock round-duration histogram
// (seconds), observed for every round regardless of trace depth. Zero
// before any submission.
func (s *System) RoundDurationStats() HistogramStat {
	s.mu.Lock()
	eng := s.engine
	s.mu.Unlock()
	if eng == nil {
		return HistogramStat{}
	}
	snap := eng.RoundDurations()
	return HistogramStat{Bounds: snap.Bounds, Counts: snap.Counts, Sum: snap.Sum, Count: snap.Count}
}

// Serve runs the system as a resident service: the engine processes rounds
// while any job is active, idles when the queue is empty, and admits new
// submissions, cancellations, and snapshots continuously. Serve blocks
// until ctx is cancelled or Shutdown is called, then returns nil (jobs
// still in flight stay resident and a later Run or Serve resumes them).
func (s *System) Serve(ctx context.Context) error {
	s.mu.Lock()
	if s.store == nil {
		s.mu.Unlock()
		return fmt.Errorf("cgraph: load a graph before serving")
	}
	if s.serveCancel != nil {
		s.mu.Unlock()
		return fmt.Errorf("cgraph: already serving")
	}
	s.ensureEngineLocked()
	eng := s.engine
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	s.serveCancel = cancel
	s.serveDone = done
	s.mu.Unlock()

	err := eng.Serve(ctx)

	s.mu.Lock()
	s.serveCancel = nil
	s.serveDone = nil
	s.mu.Unlock()
	cancel()
	close(done)
	return err
}

// Shutdown gracefully stops a serving system: the round loop exits at the
// next round boundary. It returns once Serve has returned, or with ctx's
// error if ctx expires first. Shutdown of a non-serving system is a no-op.
func (s *System) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	cancel, done := s.serveCancel, s.serveDone
	s.mu.Unlock()
	if cancel == nil {
		return nil
	}
	cancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Results returns the job's converged per-vertex values. Valid after the
// job completes (batch Run, or Job.Wait/Done in serve mode).
func (j *Job) Results() ([]float64, error) {
	j.sys.mu.Lock()
	eng := j.sys.engine
	j.sys.mu.Unlock()
	if eng == nil {
		return nil, fmt.Errorf("cgraph: job %q not run", j.name)
	}
	return eng.Results(j.id)
}

// Name returns the job's program name.
func (j *Job) Name() string { return j.name }

// ID returns the engine-assigned job ID.
func (j *Job) ID() int { return j.id }

// Done returns a channel closed when the job reaches a terminal state
// (done, cancelled, or failed). The engine must be draining — via Run or
// Serve — for that to happen.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state or ctx expires. On a
// terminal state it returns Err (nil for a converged job).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err reports why the job terminated: nil after convergence, ErrCancelled
// after Cancel, the job context's error after an expired WithContext, or an
// engine error for failed jobs. Before termination it returns nil.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// State reports the job's lifecycle state. Once terminal it is served from
// the handle itself, so it remains correct after Release.
func (j *Job) State() JobState {
	j.mu.Lock()
	term := j.terminal
	j.mu.Unlock()
	if term.Terminal() {
		return term
	}
	j.sys.mu.Lock()
	eng := j.sys.engine
	j.sys.mu.Unlock()
	st, ok := eng.JobState(j.id)
	if !ok {
		return JobQueued
	}
	return JobState(st)
}

// Cancel retires the job at the next round boundary. Cancelling a job that
// already reached a terminal state is an error.
func (j *Job) Cancel() error {
	j.sys.mu.Lock()
	eng := j.sys.engine
	j.sys.mu.Unlock()
	return eng.Cancel(j.id)
}

// Metrics returns the job's report after it converged, or nil before then
// and for cancelled/failed jobs.
func (j *Job) Metrics() *JobReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.metrics
}

// Release frees the engine-side state of a terminal job: for finished jobs
// the private table, activity bitsets, and result backing, and for every
// terminal job its lifecycle-map entry (compacted into aggregate Stats
// counters). Extract Results first: they become unavailable afterwards.
// Resident services use it to keep memory bounded as jobs flow through;
// releasing an unfinished job is a no-op. The handle's State/Err/Metrics
// remain valid.
func (j *Job) Release() {
	j.sys.mu.Lock()
	eng := j.sys.engine
	j.sys.mu.Unlock()
	eng.Release(j.id)
}

// Report summarizes one Run.
type Report struct {
	System              string
	Workers             int
	SimulatedMakespanUS float64
	CPUUtilization      float64
	CacheMissRate       float64
	BytesIntoCache      int64
	BytesFromDisk       int64
	WallClock           time.Duration
	Jobs                []JobReport
}

// JobReport summarizes one job within a Run.
type JobReport struct {
	Name                string
	Iterations          int
	SimulatedAccessUS   float64
	SimulatedComputeUS  float64
	SimulatedFinishedUS float64
	EdgesProcessed      int64
	// ExecMode is the execution discipline the job ran under.
	ExecMode ExecMode
	// FreshFolds counts contributions folded eagerly under the fresh-state
	// disciplines; BarriersSkipped / BarriersForced are the delayed-mode
	// bounded-staleness counters. All zero for BSP jobs.
	FreshFolds      int64
	BarriersSkipped int64
	BarriersForced  int64
}
