// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact, backed by internal/harness) plus
// micro-benchmarks of the core mechanisms. The experiment scale defaults to
// 0.25 to keep `go test -bench=.` tractable; set CGRAPH_BENCH_SCALE=1.0 for
// the full reproduction scale used in EXPERIMENTS.md.
package cgraph

import (
	"os"
	"strconv"
	"testing"

	"cgraph/algo"
	"cgraph/internal/exec"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/harness"
	"cgraph/internal/memsim"
	"cgraph/internal/sched"
)

func benchOpts() harness.Options {
	scale := 0.25
	if s := os.Getenv("CGRAPH_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	return harness.Options{Scale: scale, Workers: 8, Epsilon: 1e-3}
}

func benchTable(b *testing.B, fn func(harness.Options) (*harness.Table, error)) {
	b.Helper()
	opt := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fn(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTables(b *testing.B, fn func(harness.Options) ([]*harness.Table, error)) {
	b.Helper()
	opt := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fn(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B) { benchTable(b, harness.Table1) }
func BenchmarkFig1(b *testing.B)   { benchTables(b, harness.Fig1) }
func BenchmarkFig2(b *testing.B)   { benchTables(b, harness.Fig2) }
func BenchmarkFig8(b *testing.B)   { benchTable(b, harness.Fig8) }
func BenchmarkFig9(b *testing.B)   { benchTable(b, harness.Fig9) }
func BenchmarkFig10(b *testing.B)  { benchTable(b, harness.Fig10) }
func BenchmarkFig11(b *testing.B)  { benchTable(b, harness.Fig11) }
func BenchmarkFig12(b *testing.B)  { benchTable(b, harness.Fig12) }
func BenchmarkFig13(b *testing.B)  { benchTable(b, harness.Fig13) }
func BenchmarkFig14(b *testing.B)  { benchTable(b, harness.Fig14) }
func BenchmarkFig15(b *testing.B)  { benchTable(b, harness.Fig15) }
func BenchmarkFig16(b *testing.B)  { benchTable(b, harness.Fig16) }
func BenchmarkFig17(b *testing.B)  { benchTable(b, harness.Fig17) }
func BenchmarkFig18(b *testing.B)  { benchTable(b, harness.Fig18) }
func BenchmarkFig19(b *testing.B)  { benchTable(b, harness.Fig19) }

// Ablation benches for the DESIGN.md design choices.

func BenchmarkAblationStraggler(b *testing.B) { benchTable(b, harness.AblationStraggler) }
func BenchmarkAblationScheduler(b *testing.B) { benchTable(b, harness.AblationScheduler) }
func BenchmarkAblationBatching(b *testing.B)  { benchTable(b, harness.AblationBatching) }

// BenchmarkAsyncModes prices the execution-mode sweep (bsp vs async vs
// delayed on PageRank + SSSP), the artifact behind BENCH_async.json.
func BenchmarkAsyncModes(b *testing.B) {
	opt := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.BenchAsync(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the core mechanisms.

func microGraph(b *testing.B) ([]Edge, *graph.Graph) {
	b.Helper()
	edges := gen.RMAT(77, 4000, 120000, 0.57, 0.19, 0.19)
	return edges, graph.Build(4000, edges)
}

func BenchmarkVertexCutPartition(b *testing.B) {
	edges, g := microGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Cut(g, edges, graph.Options{NumPartitions: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreSubgraphPartition(b *testing.B) {
	edges, g := microGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Cut(g, edges, graph.Options{NumPartitions: 32, CoreSubgraph: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriggerIteration(b *testing.B) {
	// One full apply+scatter sweep over all partitions (Algorithm 1).
	edges, g := microGraph(b)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 32})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := exec.NewJob(0, algo.NewPageRank(), pg)
		sc := &exec.Scratch{}
		for pid := range pg.Parts {
			j.ProcessPartition(pid, sc)
		}
	}
	b.SetBytes(int64(len(edges)) * 16)
}

func BenchmarkPushSync(b *testing.B) {
	// Algorithm 2 over a first PageRank iteration's mirror deltas.
	edges, g := microGraph(b)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 32})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		j := exec.NewJob(0, algo.NewPageRank(), pg)
		sc := &exec.Scratch{}
		for pid := range pg.Parts {
			j.ProcessPartition(pid, sc)
		}
		b.StartTimer()
		j.Push()
	}
}

func BenchmarkEndToEndFourJobs(b *testing.B) {
	// Full CGraph runs of the 4-job workload on a mid-size graph.
	edges, g := microGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 32, CoreSubgraph: true})
		if err != nil {
			b.Fatal(err)
		}
		sys := NewSystem(WithWorkers(8), WithPartitions(32))
		b.StartTimer()
		_ = pg
		if err := sys.LoadEdges(4000, edges); err != nil {
			b.Fatal(err)
		}
		sys.Submit(algo.NewPageRank())
		sys.Submit(algo.NewSSSP(0))
		sys.Submit(algo.NewSCC())
		sys.Submit(algo.NewBFS(0))
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheLoadHit(b *testing.B) {
	h := memsim.New(memsim.Config{CacheBytes: 1 << 20, Cost: memsim.DefaultCost()})
	id := memsim.ItemID{Kind: memsim.Struct, UID: 1, Job: -1}
	h.Load(id, 4096, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(id, 4096, false)
	}
}

func BenchmarkCacheLoadEvict(b *testing.B) {
	h := memsim.New(memsim.Config{CacheBytes: 64 << 10, Cost: memsim.DefaultCost()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := memsim.ItemID{Kind: memsim.Struct, UID: int64(i % 64), Job: -1}
		h.Load(id, 4096, false)
	}
}

func BenchmarkSchedulerPlan(b *testing.B) {
	edges, g := microGraph(b)
	pg, err := graph.Cut(g, edges, graph.Options{NumPartitions: 128})
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []sched.Kind{sched.Priority, sched.TwoLevel} {
		b.Run(kind.String(), func(b *testing.B) {
			s := sched.New(kind)
			s.ObserveSnapshot(pg)
			// Eight jobs with staggered 32-partition footprints.
			var foot []sched.JobFootprint
			for j := 0; j < 8; j++ {
				jf := sched.JobFootprint{JobID: j}
				for i := 0; i < 32; i++ {
					jf.Units = append(jf.Units, pg.Parts[(j*16+i)%128])
				}
				foot = append(foot, jf)
			}
			c := make(map[int64]float64, 128)
			for i, p := range pg.Parts {
				c[p.UID] = float64(i%13) * 0.7
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Plan(foot, c)
			}
		})
	}
}
