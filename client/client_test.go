package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/client"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
	"cgraph/model"
	"cgraph/server"
)

// spinProgram never converges; cancellation legs stay deterministic.
type spinProgram struct{}

func (spinProgram) Name() string                { return "Spin" }
func (spinProgram) Direction() model.Direction  { return model.Out }
func (spinProgram) Identity() float64           { return 0 }
func (spinProgram) Acc(a, c float64) float64    { return a + c }
func (spinProgram) IsActive(s model.State) bool { return true }
func (spinProgram) Init(v model.VertexID, g model.GraphInfo) (model.State, bool) {
	return model.State{}, true
}
func (spinProgram) Apply(v model.VertexID, s *model.State, deg int) (float64, bool) {
	s.Delta = 0
	return 1, true
}
func (spinProgram) Contribution(seed float64, w float32) float64 { return seed }

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// harness starts a service with its HTTP control plane and returns both
// Client implementations over it, plus the edge list for verification.
func harness(t *testing.T, cfg server.Config) (local, remote cgraph.Client, edges []model.Edge) {
	t.Helper()
	edges = gen.RMAT(41, 300, 5000, 0.57, 0.19, 0.19)
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false), cgraph.WithTraceDepth(64))
	if err := sys.LoadEdges(300, edges); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, cfg)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Stop(ctx)
	})
	reg := server.DefaultRegistry()
	reg["spin"] = func(server.ProgramParams) model.Program { return spinProgram{} }
	ts := httptest.NewServer(svc.Handler(reg))
	t.Cleanup(ts.Close)
	return server.NewLocalClient(svc, reg), client.New(ts.URL, client.WithHTTPClient(ts.Client())), edges
}

// lifecycle drives one submit→watch→results cycle through a Client and
// returns the observed event sequence (type/state pairs) and final status.
func lifecycle(t *testing.T, ctx context.Context, c cgraph.Client, spec api.JobSpec) (seq []string, st api.JobStatus, res api.Results) {
	t.Helper()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	events, err := c.Watch(ctx, st.ID)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	sawProgress := false
	var lastSeq int64
	for ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("events out of order: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case api.EventState:
			seq = append(seq, "state:"+string(ev.State))
		case api.EventProgress:
			// Coalesce for comparison: progress cadence is timing-dependent.
			if !sawProgress {
				seq = append(seq, "progress")
				sawProgress = true
			}
			if ev.Iteration <= 0 {
				t.Fatalf("progress event without iteration: %+v", ev)
			}
		}
	}
	st, err = c.Get(ctx, st.ID)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if st.State == api.JobDone {
		res, err = c.Results(ctx, st.ID, api.ResultsOptions{})
		if err != nil {
			t.Fatalf("results: %v", err)
		}
	}
	return seq, st, res
}

// TestEndToEndHTTP drives submit→watch→results through a live HTTP server
// and verifies the result values against the reference implementation.
func TestEndToEndHTTP(t *testing.T) {
	_, remote, edges := harness(t, server.Config{})
	ctx := testCtx(t)

	seq, st, res := lifecycle(t, ctx, remote, api.JobSpec{
		Algo:   "pagerank",
		Labels: map[string]string{"tenant": "e2e"},
	})
	if st.State != api.JobDone || st.Iterations == 0 || st.Labels["tenant"] != "e2e" {
		t.Fatalf("final status = %+v", st)
	}
	if len(seq) < 2 || seq[len(seq)-1] != "state:done" {
		t.Fatalf("event sequence = %v, want …state:done", seq)
	}
	want := refimpl.PageRank(graph.Build(300, edges), 0.85, 1e-12, 3000)
	if len(res.Values) != len(want) {
		t.Fatalf("%d values, want %d", len(res.Values), len(want))
	}
	for v := range want {
		if math.Abs(float64(res.Values[v])-want[v]) > 1e-2*math.Max(1, want[v]) {
			t.Fatalf("vertex %d: got %v want %v", v, res.Values[v], want[v])
		}
	}

	// Top-K through the client.
	top, err := remote.Results(ctx, st.ID, api.ResultsOptions{Top: 7})
	if err != nil || len(top.Top) != 7 {
		t.Fatalf("top results: %v %+v", err, top)
	}

	// Typed errors round-trip: unknown job, unknown algorithm, not-ready.
	if _, err := remote.Get(ctx, "job-404"); !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("get unknown = %v, want not_found", err)
	}
	if _, err := remote.Submit(ctx, api.JobSpec{Algo: "nope"}); !api.IsCode(err, api.CodeUnknownAlgorithm) {
		t.Fatalf("unknown algo = %v, want unknown_algorithm", err)
	}
	spin, err := remote.Submit(ctx, api.JobSpec{Algo: "spin"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Results(ctx, spin.ID, api.ResultsOptions{}); !api.IsCode(err, api.CodeNotReady) {
		t.Fatalf("results of running job = %v, want not_ready", err)
	}
	if _, err := remote.Cancel(ctx, spin.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	// Snapshot ingestion and a snapshot-bound job through the client.
	mut, _ := gen.Mutate(edges, 0.05, 300, 7)
	snapEdges := make([][3]float64, len(mut))
	for i, e := range mut {
		snapEdges[i] = [3]float64{float64(e.Src), float64(e.Dst), float64(e.Weight)}
	}
	ack, err := remote.AddSnapshot(ctx, api.Snapshot{Timestamp: 20, Edges: snapEdges})
	if err != nil || ack.Edges != len(mut) {
		t.Fatalf("snapshot: %v %+v", err, ack)
	}
	ts := int64(20)
	seq2, st2, res2 := lifecycle(t, ctx, remote, api.JobSpec{Algo: "sssp", Source: 0, AtTimestamp: &ts})
	if st2.State != api.JobDone || seq2[len(seq2)-1] != "state:done" {
		t.Fatalf("snapshot job: %+v %v", st2, seq2)
	}
	wantSS := refimpl.SSSP(graph.Build(300, mut), 0)
	for v := range wantSS {
		got := float64(res2.Values[v])
		if got != wantSS[v] && !(math.IsInf(got, 1) && math.IsInf(wantSS[v], 1)) {
			t.Fatalf("post-snapshot sssp vertex %d: got %v want %v", v, got, wantSS[v])
		}
	}

	// Sched and metrics are reachable through the client.
	if si, err := remote.SchedInfo(ctx); err != nil || si.Policy == "" {
		t.Fatalf("sched: %v %+v", err, si)
	}
	if m, err := remote.Metrics(ctx); err != nil || m.Jobs[api.JobDone] < 2 {
		t.Fatalf("metrics: %v %+v", err, m)
	}
}

// TestClientParity is the acceptance check for the unified Client
// contract: the in-process and HTTP implementations observe identical job
// lifecycles — same event sequences, same terminal states, same values,
// same error codes — for a converging, a cancelled, and an erroneous flow.
func TestClientParity(t *testing.T) {
	local, remote, edges := harness(t, server.Config{})
	ctx := testCtx(t)
	want := refimpl.SSSP(graph.Build(300, edges), 2)

	type outcome struct {
		seq    []string
		state  api.JobState
		values []api.Float
	}
	run := func(c cgraph.Client) outcome {
		seq, st, res := lifecycle(t, ctx, c, api.JobSpec{Algo: "sssp", Source: 2})
		return outcome{seq: seq, state: st.State, values: res.Values}
	}
	a, b := run(local), run(remote)

	if a.state != api.JobDone || b.state != api.JobDone {
		t.Fatalf("states: local %v, http %v", a.state, b.state)
	}
	if len(a.seq) != len(b.seq) {
		t.Fatalf("event sequences differ: local %v, http %v", a.seq, b.seq)
	}
	for i := range a.seq {
		if a.seq[i] != b.seq[i] {
			t.Fatalf("event sequences differ at %d: local %v, http %v", i, a.seq, b.seq)
		}
	}
	for _, o := range []outcome{a, b} {
		if o.seq[0] != "state:queued" || o.seq[len(o.seq)-1] != "state:done" {
			t.Fatalf("lifecycle replay wrong: %v", o.seq)
		}
	}
	for v := range want {
		av, bv := float64(a.values[v]), float64(b.values[v])
		if av != bv && !(math.IsInf(av, 1) && math.IsInf(bv, 1)) {
			t.Fatalf("vertex %d: local %v, http %v", v, av, bv)
		}
		if av != want[v] && !(math.IsInf(av, 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("vertex %d: got %v want %v", v, av, want[v])
		}
	}

	// Cancelled flow: identical terminal events and error codes.
	cancelSeq := func(c cgraph.Client) (string, api.ErrorCode) {
		st, err := c.Submit(ctx, api.JobSpec{Algo: "spin"})
		if err != nil {
			t.Fatal(err)
		}
		events, err := c.Watch(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Cancel(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		var last api.Event
		for ev := range events {
			last = ev
		}
		if !last.Terminal() || last.Error == nil {
			t.Fatalf("cancel watch ended on %+v", last)
		}
		// Double cancel: both transports answer conflict.
		if _, err := c.Cancel(ctx, st.ID); !api.IsCode(err, api.CodeConflict) {
			t.Fatalf("double cancel = %v, want conflict", err)
		}
		return string(last.State), last.Error.Code
	}
	ls, lc := cancelSeq(local)
	rs, rc := cancelSeq(remote)
	if ls != rs || lc != rc {
		t.Fatalf("cancel parity: local (%s, %s) vs http (%s, %s)", ls, lc, rs, rc)
	}
	if ls != string(api.JobCancelled) || lc != api.CodeCancelled {
		t.Fatalf("cancel outcome = (%s, %s)", ls, lc)
	}

	// Bad-input parity: both transports reject a negative top identically.
	for name, c := range map[string]cgraph.Client{"local": local, "http": remote} {
		if _, err := c.Results(ctx, "job-0", api.ResultsOptions{Top: -1}); !api.IsCode(err, api.CodeBadRequest) {
			t.Fatalf("%s: negative top = %v, want bad_request", name, err)
		}
	}
}

// TestClientParityHistoryCompaction: both transports agree on compacted
// jobs too — listable history, released statuses, 410-coded results.
func TestClientParityHistoryCompaction(t *testing.T) {
	local, remote, _ := harness(t, server.Config{RetainTerminal: 1})
	ctx := testCtx(t)

	var first string
	for i := 0; i < 3; i++ {
		seq, st, _ := lifecycle(t, ctx, local, api.JobSpec{Algo: "bfs", Source: uint32(i)})
		if st.State != api.JobDone {
			t.Fatalf("job %d: %+v %v", i, st, seq)
		}
		if i == 0 {
			first = st.ID
		}
	}
	for name, c := range map[string]cgraph.Client{"local": local, "http": remote} {
		st, err := c.Get(ctx, first)
		if err != nil || !st.Released || st.State != api.JobDone {
			t.Fatalf("%s: compacted status = %+v, %v", name, st, err)
		}
		if _, err := c.Results(ctx, first, api.ResultsOptions{}); !api.IsCode(err, api.CodeReleased) {
			t.Fatalf("%s: compacted results = %v, want released", name, err)
		}
		list, err := c.List(ctx, api.ListOptions{Limit: 2})
		if err != nil || list.Total != 3 || len(list.Jobs) != 2 || list.Jobs[0].ID != first {
			t.Fatalf("%s: list = %+v, %v", name, list, err)
		}
		events, err := c.Watch(ctx, first)
		if err != nil {
			t.Fatalf("%s: watch compacted: %v", name, err)
		}
		var evs []api.Event
		for ev := range events {
			evs = append(evs, ev)
		}
		if len(evs) != 1 || !evs[0].Terminal() || evs[0].State != api.JobDone {
			t.Fatalf("%s: compacted replay = %+v", name, evs)
		}
	}
}

// TestClientRetriesIdempotent: GETs retry through transient 5xx failures;
// mutating requests do not.
func TestClientRetriesIdempotent(t *testing.T) {
	var gets, posts atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			if gets.Add(1) < 3 {
				http.Error(w, "boom", http.StatusBadGateway)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"id":"job-0","algo":"pagerank","state":"done","submitted_at":"2026-01-01T00:00:00Z"}`))
		case http.MethodPost:
			posts.Add(1)
			http.Error(w, "boom", http.StatusBadGateway)
		}
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(3, time.Millisecond))
	st, err := c.Get(testCtx(t), "job-0")
	if err != nil || st.State != api.JobDone {
		t.Fatalf("get after retries = %+v, %v", st, err)
	}
	if got := gets.Load(); got != 3 {
		t.Fatalf("gets = %d, want 3", got)
	}
	if _, err := c.Submit(testCtx(t), api.JobSpec{Algo: "pagerank"}); err == nil {
		t.Fatal("submit through 502 must fail")
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("posts = %d, want 1 (no retry on mutation)", got)
	}
	// The fallback error code is derived from the status when the body
	// carries no structured error.
	if _, err := c.Submit(testCtx(t), api.JobSpec{Algo: "x"}); !api.IsCode(err, api.CodeInternal) {
		t.Fatalf("unstructured 502 = %v, want internal", err)
	}
}

// TestClientDeltaAndFilterParity: ApplyDelta and the filtered List behave
// identically through the in-process and HTTP clients — same acks, same
// error codes, same filtered listings, same ingest metrics.
func TestClientDeltaAndFilterParity(t *testing.T) {
	ctx := testCtx(t)
	local, remote, _ := harness(t, server.Config{})
	clients := []struct {
		name string
		c    cgraph.Client
	}{{"local", local}, {"remote", remote}}

	// Validation errors carry the same machine-readable code on both
	// transports.
	for _, tc := range clients {
		_, err := tc.c.ApplyDelta(ctx, api.Delta{
			Mutations: []api.Mutation{{Slot: 1 << 30, Edge: [3]float64{1, 2, 1}}},
		})
		if !api.IsCode(err, api.CodeBadRequest) {
			t.Fatalf("%s: out-of-range slot = %v, want bad_request", tc.name, err)
		}
		_, err = tc.c.ApplyDelta(ctx, api.Delta{
			Mutations: []api.Mutation{{Op: "drop", Slot: 0, Edge: [3]float64{1, 2, 1}}},
		})
		if !api.IsCode(err, api.CodeBadRequest) {
			t.Fatalf("%s: unknown op = %v, want bad_request", tc.name, err)
		}
	}

	// Each client streams one flushed batch into the shared service; the
	// second snapshot must stamp after the first.
	ack1, err := remote.ApplyDelta(ctx, api.Delta{
		Mutations: []api.Mutation{{Slot: 0, Edge: [3]float64{5, 7, 2.25}}},
		Flush:     true,
	})
	if err != nil || !ack1.Flushed {
		t.Fatalf("remote delta = %+v, %v", ack1, err)
	}
	ack2, err := local.ApplyDelta(ctx, api.Delta{
		Mutations: []api.Mutation{{Slot: 1, Edge: [3]float64{8, 2, 1.75}}},
		Flush:     true,
	})
	if err != nil || !ack2.Flushed || ack2.Timestamp <= ack1.Timestamp {
		t.Fatalf("local delta = %+v, %v (after %+v)", ack2, err, ack1)
	}

	// Labelled jobs against the rolling series; drain them via Watch.
	var ids []string
	for _, spec := range []api.JobSpec{
		{Algo: "pagerank", Labels: map[string]string{"team": "growth"}},
		{Algo: "degree", Labels: map[string]string{"team": "infra"}},
	} {
		st, err := remote.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		events, err := remote.Watch(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		for range events {
		}
	}

	for _, tc := range clients {
		// An invalid state filter is rejected with the same code on both
		// transports.
		if _, err := tc.c.List(ctx, api.ListOptions{State: "bogus"}); !api.IsCode(err, api.CodeBadRequest) {
			t.Fatalf("%s: bogus state filter = %v, want bad_request", tc.name, err)
		}
		list, err := tc.c.List(ctx, api.ListOptions{State: api.JobDone, Labels: map[string]string{"team": "growth"}})
		if err != nil {
			t.Fatalf("%s: list: %v", tc.name, err)
		}
		if list.Total != 1 || len(list.Jobs) != 1 || list.Jobs[0].ID != ids[0] {
			t.Fatalf("%s: filtered list = %+v, want only %s", tc.name, list, ids[0])
		}
		empty, err := tc.c.List(ctx, api.ListOptions{State: api.JobFailed})
		if err != nil || empty.Total != 0 {
			t.Fatalf("%s: empty filter = %+v, %v", tc.name, empty, err)
		}
		m, err := tc.c.Metrics(ctx)
		if err != nil {
			t.Fatalf("%s: metrics: %v", tc.name, err)
		}
		ing := m.Ingest
		if ing.Batches != 2 || ing.SnapshotsBuilt != 2 || ing.SnapshotsLive != 3 || ing.PartsShared <= 0 {
			t.Fatalf("%s: ingest metrics = %+v", tc.name, ing)
		}
	}
}

// TestClientWatchReconnects: a dropped SSE stream is reconnected with the
// Last-Event-ID header, the server-side resume is honoured, and no event
// is delivered twice.
func TestClientWatchReconnects(t *testing.T) {
	writeEvent := func(w http.ResponseWriter, ev api.Event) {
		b, _ := json.Marshal(ev)
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
	}
	var calls atomic.Int32
	var gotResume atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch calls.Add(1) {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				t.Error("first connection sent Last-Event-ID")
			}
			writeEvent(w, api.Event{Type: api.EventState, JobID: "job-0", Seq: 1, State: api.JobRunning})
			writeEvent(w, api.Event{Type: api.EventProgress, JobID: "job-0", Seq: 2, Iteration: 3})
			// Drop the connection mid-stream.
		case 2:
			gotResume.Store(r.Header.Get("Last-Event-ID"))
			// An overlapping replay: the client must dedup seq 2.
			writeEvent(w, api.Event{Type: api.EventProgress, JobID: "job-0", Seq: 2, Iteration: 3})
			writeEvent(w, api.Event{Type: api.EventProgress, JobID: "job-0", Seq: 3, Iteration: 7})
			writeEvent(w, api.Event{Type: api.EventState, JobID: "job-0", Seq: 4, State: api.JobDone})
		default:
			t.Error("unexpected third connection")
		}
	}))
	defer ts.Close()

	var logBuf syncBuffer
	c := client.New(ts.URL,
		client.WithRetries(2, 5*time.Millisecond),
		client.WithLogger(slog.New(slog.NewTextHandler(&logBuf, nil))))
	events, err := c.Watch(testCtx(t), "job-0")
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int64
	for ev := range events {
		seqs = append(seqs, ev.Seq)
	}
	want := []int64{1, 2, 3, 4}
	if len(seqs) != len(want) {
		t.Fatalf("delivered seqs %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("delivered seqs %v, want %v", seqs, want)
		}
	}
	if got := gotResume.Load(); got != "2" {
		t.Fatalf("reconnect Last-Event-ID = %v, want 2", got)
	}
	if calls.Load() != 2 {
		t.Fatalf("connections = %d, want 2", calls.Load())
	}
	// The recovery is no longer silent: it is counted and logged.
	if got := c.Stats().WatchReconnects; got != 1 {
		t.Fatalf("WatchReconnects = %d, want 1", got)
	}
	if logged := logBuf.String(); !strings.Contains(logged, "watch stream dropped") || !strings.Contains(logged, "job-0") {
		t.Fatalf("reconnect warning not logged; log output:\n%s", logged)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output
// written from the watch goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestClientWatchNoReconnectBudget: WithRetries(0) disables reconnection —
// the channel just closes when the stream drops.
func TestClientWatchNoReconnectBudget(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		b, _ := json.Marshal(api.Event{Type: api.EventState, JobID: "job-0", Seq: 1, State: api.JobRunning})
		fmt.Fprintf(w, "data: %s\n\n", b)
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(0, time.Millisecond))
	events, err := c.Watch(testCtx(t), "job-0")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range events {
		n++
	}
	if n != 1 || calls.Load() != 1 {
		t.Fatalf("events = %d, connections = %d; want 1 and 1", n, calls.Load())
	}
	if got := c.Stats().WatchReconnects; got != 0 {
		t.Fatalf("WatchReconnects = %d, want 0", got)
	}
}

// TestClientTraceParity: JobTrace and RoundTrace return byte-identical
// wire payloads through the in-process and HTTP clients, for live and
// terminal jobs alike.
func TestClientTraceParity(t *testing.T) {
	ctx := testCtx(t)
	local, remote, _ := harness(t, server.Config{})

	// Unknown job: same error code on both transports.
	for name, c := range map[string]cgraph.Client{"local": local, "http": remote} {
		if _, err := c.JobTrace(ctx, "nope"); !api.IsCode(err, api.CodeNotFound) {
			t.Fatalf("%s: unknown trace = %v, want not_found", name, err)
		}
	}

	st, err := local.Submit(ctx, api.JobSpec{Algo: "pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	events, err := local.Watch(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	for range events {
	}

	// With every job terminal the trace surfaces are static; the two
	// transports must agree byte for byte after JSON round-tripping.
	ltr, err := local.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatalf("local trace: %v", err)
	}
	rtr, err := remote.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatalf("remote trace: %v", err)
	}
	if ltr.State != api.JobDone || len(ltr.Rounds) == 0 || ltr.ExecMS <= 0 {
		t.Fatalf("local trace = %+v", ltr)
	}
	lb, _ := json.Marshal(ltr)
	rb, _ := json.Marshal(rtr)
	if string(lb) != string(rb) {
		t.Fatalf("job trace parity:\nlocal:  %s\nremote: %s", lb, rb)
	}

	for _, opts := range []api.TraceOptions{{}, {Limit: 3}} {
		lrt, err := local.RoundTrace(ctx, opts)
		if err != nil {
			t.Fatalf("local rounds: %v", err)
		}
		rrt, err := remote.RoundTrace(ctx, opts)
		if err != nil {
			t.Fatalf("remote rounds: %v", err)
		}
		if lrt.TraceDepth != 64 || len(lrt.Rounds) == 0 {
			t.Fatalf("local rounds (%+v) = depth %d, %d rounds", opts, lrt.TraceDepth, len(lrt.Rounds))
		}
		if opts.Limit > 0 && len(lrt.Rounds) > opts.Limit {
			t.Fatalf("limit %d returned %d rounds", opts.Limit, len(lrt.Rounds))
		}
		lb, _ := json.Marshal(lrt)
		rb, _ := json.Marshal(rrt)
		if string(lb) != string(rb) {
			t.Fatalf("round trace parity (%+v):\nlocal:  %s\nremote: %s", opts, lb, rb)
		}
	}
}

// TestClientWatchLiveReconnectParity: against a real service, a watcher
// whose first connection dies mid-run still observes a gap-free ordered
// stream ending in the terminal event, via Last-Event-ID resume.
func TestClientWatchLiveReconnectParity(t *testing.T) {
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false), cgraph.WithTraceDepth(64))
	if err := sys.LoadEdges(300, gen.RMAT(41, 300, 5000, 0.57, 0.19, 0.19)); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, server.Config{})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Stop(ctx)
	})
	real := svc.Handler(nil)
	var dropped atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") && !dropped.Swap(true) {
			// Kill the first watch attempt after a short taste of the
			// stream, mid-flight.
			ctx, cancel := context.WithTimeout(r.Context(), 30*time.Millisecond)
			defer cancel()
			real.ServeHTTP(w, r.WithContext(ctx))
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(3, 5*time.Millisecond))
	ctx := testCtx(t)
	st, err := c.Submit(ctx, api.JobSpec{Algo: "pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	events, err := c.Watch(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var last api.Event
	var prevSeq int64
	for ev := range events {
		if ev.Seq <= prevSeq {
			t.Fatalf("event %d after %d: duplicates across reconnect", ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		last = ev
	}
	if !last.Terminal() || last.State != api.JobDone {
		t.Fatalf("stream ended on %+v, want terminal done", last)
	}
	if !dropped.Load() {
		t.Fatal("the drop leg never ran")
	}
}

// TestClientRateLimit pins the WithRateLimit token bucket: the burst passes
// immediately, sustained calls are paced to the configured rate (elapsed
// time has a hard lower bound — tokens cannot accrue faster), reads are
// never paced, and a blocked call honors context cancellation.
func TestClientRateLimit(t *testing.T) {
	var posts, gets atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
		} else {
			gets.Add(1)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"accepted":1,"pending":1}`))
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRateLimit(100, 2))
	ctx := testCtx(t)
	start := time.Now()
	const calls = 6
	for i := 0; i < calls; i++ {
		if _, err := c.ApplyDelta(ctx, api.Delta{Mutations: []api.Mutation{{Op: api.MutationAdd}}}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 2 burst tokens + 4 paced at 100/s: at least 40ms must have passed.
	if want := 40 * time.Millisecond; elapsed < want {
		t.Fatalf("6 writes at rps=100 burst=2 took %v, want >= %v", elapsed, want)
	}
	if got := posts.Load(); got != calls {
		t.Fatalf("posts = %d, want %d", got, calls)
	}
	if thr := c.Stats().Throttled; thr < calls-2 {
		t.Fatalf("throttled = %d, want >= %d", thr, calls-2)
	}

	// Reads bypass the limiter entirely: with an empty bucket, a burst of
	// GETs completes without pacing delays.
	start = time.Now()
	for i := 0; i < 20; i++ {
		if _, err := c.Metrics(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("20 reads took %v — reads must not be paced", elapsed)
	}
	if got := gets.Load(); got != 20 {
		t.Fatalf("gets = %d, want 20", got)
	}

	// A blocked writer unblocks with its context's error.
	slow := client.New(ts.URL, client.WithRateLimit(0.01, 1))
	if _, err := slow.ApplyDelta(ctx, api.Delta{}); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, err := slow.Submit(cctx, api.JobSpec{Algo: "pagerank"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit = %v, want context.DeadlineExceeded", err)
	}

	// rps <= 0 turns the limiter off.
	off := client.New(ts.URL, client.WithRateLimit(0, 5))
	if _, err := off.ApplyDelta(ctx, api.Delta{}); err != nil {
		t.Fatal(err)
	}
	if thr := off.Stats().Throttled; thr != 0 {
		t.Fatalf("unlimited client throttled = %d, want 0", thr)
	}
}
