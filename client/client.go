// Package client is the Go HTTP client of the CGraph job service: a
// cgraph.Client implementation speaking the versioned wire contract of
// package api to a serve-mode instance (cmd/cgraph-serve or any
// server.Service handler). It is interchangeable with the in-process
// client returned by server.NewLocalClient — same types, same error
// codes, same watch semantics — so programs written against cgraph.Client
// run unchanged embedded or remote.
//
//	c := client.New("http://localhost:8040")
//	st, err := c.Submit(ctx, api.JobSpec{Algo: "pagerank"})
//	events, err := c.Watch(ctx, st.ID)
//	for ev := range events {
//		// queued, running, progress…, done
//	}
//	res, err := c.Results(ctx, st.ID, api.ResultsOptions{Top: 10})
//
// Service-side failures are returned as *api.Error with machine-readable
// codes (api.IsCode / errors.As); transport failures are returned as the
// underlying error. Idempotent requests (GETs) are retried with backoff on
// transport errors and 5xx responses; mutating requests are never retried.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/internal/span"
)

// Client speaks the /v1 control plane over HTTP. The zero value is not
// usable; construct with New.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	log     *slog.Logger
	// limiter, when set, paces the mutating write paths (Submit,
	// ApplyDelta); nil means unlimited.
	limiter *tokenBucket

	// watchReconnects counts SSE streams that dropped before their
	// terminal event and were reconnected — previously a silent recovery.
	watchReconnects atomic.Int64
	// throttled counts limiter acquisitions that had to wait.
	throttled atomic.Int64
}

var _ cgraph.Client = (*Client)(nil)

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient). The client must follow redirects for the legacy
// routes to keep working; the default does.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times idempotent (GET) requests are retried
// after transport errors or 5xx responses (default 2), waiting backoff,
// 2·backoff, … between attempts (default 100ms). Mutating requests are
// never retried. Negative values are clamped to 0 (no retries — the
// request itself always runs once).
func WithRetries(n int, backoff time.Duration) Option {
	return func(c *Client) {
		c.retries = max(n, 0)
		c.backoff = backoff
	}
}

// WithLogger sets the structured logger for client-side diagnostics (watch
// reconnects). The default discards them.
func WithLogger(log *slog.Logger) Option {
	return func(c *Client) {
		if log != nil {
			c.log = log
		}
	}
}

// WithRateLimit paces the client's write paths (Submit, ApplyDelta) with a
// token bucket: sustained throughput is capped at rps requests per second,
// with up to burst requests (minimum 1) passing back to back from a full
// bucket. Calls beyond the budget block until a token accrues or their
// context ends — backpressure on the caller, not an error — so a delta
// firehose cannot trip the service's ingest admission cap (HTTP 429) when
// smoothing suffices. Reads are never paced. rps <= 0 disables the limit.
func WithRateLimit(rps float64, burst int) Option {
	return func(c *Client) {
		if rps <= 0 {
			c.limiter = nil
			return
		}
		c.limiter = newTokenBucket(rps, burst)
	}
}

// Stats is a point-in-time snapshot of the client's internal counters.
type Stats struct {
	// WatchReconnects counts SSE watch streams that dropped before their
	// terminal event and were transparently reconnected.
	WatchReconnects int64
	// Throttled counts WithRateLimit acquisitions that had to wait for a
	// token (calls delayed by the client-side pacing).
	Throttled int64
}

// Stats reports the client's internal counters.
func (c *Client) Stats() Stats {
	return Stats{
		WatchReconnects: c.watchReconnects.Load(),
		Throttled:       c.throttled.Load(),
	}
}

// tokenBucket is a minimal blocking token bucket: tokens accrue at rate per
// second up to burst, one token per acquisition.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rps float64, burst int) *tokenBucket {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &tokenBucket{rate: rps, burst: b, tokens: b, last: time.Now()}
}

// wait blocks until a token is available or ctx ends; waited reports
// whether the call had to sleep.
func (tb *tokenBucket) wait(ctx context.Context) (waited bool, err error) {
	for {
		tb.mu.Lock()
		now := time.Now()
		tb.tokens = math.Min(tb.burst, tb.tokens+now.Sub(tb.last).Seconds()*tb.rate)
		tb.last = now
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return waited, nil
		}
		need := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		tb.mu.Unlock()
		waited = true
		select {
		case <-ctx.Done():
			return waited, ctx.Err()
		case <-time.After(need):
		}
	}
}

// acquire charges one limiter token when a limit is configured.
func (c *Client) acquire(ctx context.Context) error {
	if c.limiter == nil {
		return nil
	}
	waited, err := c.limiter.wait(ctx)
	if waited {
		c.throttled.Add(1)
	}
	return err
}

// New builds a client for the service at baseURL (e.g.
// "http://localhost:8040"). The URL is used as-is apart from a trailing
// slash; a malformed URL surfaces on the first request.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      http.DefaultClient,
		retries: 2,
		backoff: 100 * time.Millisecond,
		log:     slog.New(slog.DiscardHandler),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request and decodes the JSON response into out (unless
// out is nil). Non-2xx responses are decoded into *api.Error. GETs are
// retried on transport errors and 5xx responses.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	attempts := 1
	if method == http.MethodGet {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.backoff << (attempt - 1)):
			}
		}
		var rd io.Reader
		if in != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.propagate(ctx, req)
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			if ctx.Err() != nil {
				return lastErr
			}
			continue
		}
		retry, err := c.handle(resp, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retry {
			return err
		}
	}
	return lastErr
}

// propagate stamps the wire-contract version and W3C trace-context headers
// on one outbound request: a span context carried by ctx continues the
// caller's trace (the service's http.request span parents under it);
// otherwise a fresh context is minted, so every call is traceable and the
// caller can correlate responses via the echoed X-Trace-ID header.
func (c *Client) propagate(ctx context.Context, req *http.Request) {
	req.Header.Set(api.VersionHeader, api.Version)
	sc := span.FromContext(ctx)
	if !sc.Valid() {
		sc = span.Context{Trace: span.NewTraceID(), Span: span.NewSpanID()}
	}
	req.Header.Set(span.Traceparent, sc.Traceparent())
}

// handle consumes one response; retry reports whether the failure is a
// server-side 5xx worth retrying on an idempotent request.
func (c *Client) handle(resp *http.Response, out any) (retry bool, err error) {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return false, nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, fmt.Errorf("client: decode response: %w", err)
		}
		return false, nil
	}
	var eb api.ErrorBody
	if derr := json.NewDecoder(resp.Body).Decode(&eb); derr == nil && eb.Error != nil {
		return resp.StatusCode >= 500, eb.Error
	}
	return resp.StatusCode >= 500, &api.Error{
		Code:    api.CodeForHTTPStatus(resp.StatusCode),
		Message: fmt.Sprintf("%s (no structured error body)", resp.Status),
	}
}

// Submit registers a job and returns its initial status. With WithRateLimit
// configured, the call first waits for a pacing token.
func (c *Client) Submit(ctx context.Context, spec api.JobSpec) (api.JobStatus, error) {
	if err := c.acquire(ctx); err != nil {
		return api.JobStatus{}, err
	}
	var st api.JobStatus
	err := c.do(ctx, http.MethodPost, api.PathPrefix+"/jobs", nil, spec, &st)
	return st, err
}

// Get returns one job's current status.
func (c *Client) Get(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/jobs/"+url.PathEscape(id), nil, nil, &st)
	return st, err
}

// List returns a page of the job listing (compacted history first, then
// live jobs in submission order), filtered by state and labels when the
// options ask for it.
func (c *Client) List(ctx context.Context, opts api.ListOptions) (api.JobList, error) {
	q := url.Values{}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Offset > 0 {
		q.Set("offset", strconv.Itoa(opts.Offset))
	}
	if opts.State != "" {
		q.Set("state", string(opts.State))
	}
	// Sorted so requests are deterministic (caches, logs, tests).
	keys := make([]string, 0, len(opts.Labels))
	for k := range opts.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		q.Add("label", k+"="+opts.Labels[k])
	}
	var list api.JobList
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/jobs", q, nil, &list)
	return list, err
}

// Results returns a finished job's converged values.
func (c *Client) Results(ctx context.Context, id string, opts api.ResultsOptions) (api.Results, error) {
	if opts.Top < 0 {
		// Rejected client-side with the code and message the in-process
		// client produces, keeping the two transports in lockstep.
		return api.Results{}, api.Errorf(api.CodeBadRequest, "negative top %d", opts.Top)
	}
	q := url.Values{}
	if opts.Top > 0 {
		q.Set("top", strconv.Itoa(opts.Top))
	}
	var res api.Results
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/jobs/"+url.PathEscape(id)+"/results", q, nil, &res)
	return res, err
}

// Cancel retires the job and returns its status as of the request.
func (c *Client) Cancel(ctx context.Context, id string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.do(ctx, http.MethodDelete, api.PathPrefix+"/jobs/"+url.PathEscape(id), nil, nil, &st)
	return st, err
}

// AddSnapshot ingests a new graph version.
func (c *Client) AddSnapshot(ctx context.Context, snap api.Snapshot) (api.SnapshotAck, error) {
	var ack api.SnapshotAck
	err := c.do(ctx, http.MethodPost, api.PathPrefix+"/snapshots", nil, snap, &ack)
	return ack, err
}

// ApplyDelta streams one edge-mutation batch into the service's ingestion
// pipeline. Like other mutating requests it is never retried. With
// WithRateLimit configured, the call first waits for a pacing token.
func (c *Client) ApplyDelta(ctx context.Context, delta api.Delta) (api.DeltaAck, error) {
	if err := c.acquire(ctx); err != nil {
		return api.DeltaAck{}, err
	}
	var ack api.DeltaAck
	err := c.do(ctx, http.MethodPost, api.PathPrefix+"/deltas", nil, delta, &ack)
	return ack, err
}

// JobTrace returns one job's round-by-round timeline: the lifecycle
// envelope plus the engine's retained per-round records, live or
// compacted.
func (c *Client) JobTrace(ctx context.Context, id string) (api.JobTrace, error) {
	var tr api.JobTrace
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/jobs/"+url.PathEscape(id)+"/trace", nil, nil, &tr)
	return tr, err
}

// JobSpans returns one job's retained span tree — job-attributed spans
// only, identical to what the in-process client yields — plus its resource
// attribution.
func (c *Client) JobSpans(ctx context.Context, id string) (api.JobSpans, error) {
	var js api.JobSpans
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/jobs/"+url.PathEscape(id)+"/spans", nil, nil, &js)
	return js, err
}

// TraceSpans returns every retained span of one trace (32-hex trace ID),
// transport and ingest spans included, oldest first.
func (c *Client) TraceSpans(ctx context.Context, traceID string) (api.SpanList, error) {
	q := url.Values{}
	q.Set("trace_id", traceID)
	var sl api.SpanList
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/trace/spans", q, nil, &sl)
	return sl, err
}

// Healthz probes liveness. It is not part of the cgraph.Client contract —
// probes are deployment plumbing, not job-service semantics — so only the
// concrete *Client carries it.
func (c *Client) Healthz(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/healthz", nil, nil, &h)
	return h, err
}

// Readyz probes readiness. A not-ready service answers 503 with the checks
// itemized; the *api.Error carries the envelope, so callers inspect
// Readyz's Health only on nil error.
func (c *Client) Readyz(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/readyz", nil, nil, &h)
	return h, err
}

// Version reports the service's build and wire-contract version.
func (c *Client) Version(ctx context.Context) (api.VersionInfo, error) {
	var v api.VersionInfo
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/version", nil, nil, &v)
	return v, err
}

// RoundTrace returns the service's retained round-trace records, oldest
// first.
func (c *Client) RoundTrace(ctx context.Context, opts api.TraceOptions) (api.RoundTraces, error) {
	q := url.Values{}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	var rt api.RoundTraces
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/trace/rounds", q, nil, &rt)
	return rt, err
}

// SchedInfo reports the scheduler's last plan.
func (c *Client) SchedInfo(ctx context.Context) (api.SchedInfo, error) {
	var si api.SchedInfo
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/sched", nil, nil, &si)
	return si, err
}

// Metrics reports job-state counts, round-loop progress, and scheduler
// state in structured form.
func (c *Client) Metrics(ctx context.Context) (api.Metrics, error) {
	var m api.Metrics
	err := c.do(ctx, http.MethodGet, api.PathPrefix+"/metrics", nil, nil, &m)
	return m, err
}

// Watch subscribes to the job's server-sent event stream: a replay of its
// lifecycle so far, then live progress and state events. A dropped
// connection is reconnected automatically with the standard SSE
// Last-Event-ID header carrying the last Seq seen, so the server resumes
// the stream where it broke instead of replaying history; up to the
// WithRetries budget of consecutive failed reconnects is spent (any
// delivered event refills it) before the channel closes. The channel also
// closes after a terminal state event or when ctx ends; call Get
// afterwards to distinguish a finished job from an exhausted reconnect
// budget if the last event seen was not terminal.
func (c *Client) Watch(ctx context.Context, id string) (<-chan api.Event, error) {
	resp, err := c.watchConnect(ctx, id, 0)
	if err != nil {
		return nil, err
	}
	ch := make(chan api.Event)
	//cgraph:spawn one SSE reader per Watch call, exits with the watch ctx
	go c.watchLoop(ctx, id, resp, ch)
	return ch, nil
}

// watchConnect opens one SSE stream, resuming after event `after` when
// positive.
func (c *Client) watchConnect(ctx context.Context, id string, after int64) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+api.PathPrefix+"/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	c.propagate(ctx, req)
	if after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(after, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: watch %s: %w", id, err)
	}
	if resp.StatusCode != http.StatusOK {
		_, herr := c.handle(resp, nil)
		if herr == nil {
			herr = &api.Error{Code: api.CodeForHTTPStatus(resp.StatusCode), Message: resp.Status}
		}
		return nil, herr
	}
	return resp, nil
}

// watchLoop drains SSE streams into ch, reconnecting with Last-Event-ID
// when a stream drops before the terminal event.
func (c *Client) watchLoop(ctx context.Context, id string, resp *http.Response, ch chan<- api.Event) {
	defer close(ch)
	var last int64
	attempts := 0
	for {
		if resp != nil {
			terminal, progressed := c.streamEvents(ctx, resp.Body, ch, &last)
			resp.Body.Close()
			resp = nil
			if terminal || ctx.Err() != nil {
				return
			}
			if progressed {
				attempts = 0
			}
		}
		if attempts >= c.retries {
			return
		}
		attempts++
		c.watchReconnects.Add(1)
		c.log.Warn("watch stream dropped, reconnecting",
			"job", id,
			"last_seq", last,
			"attempt", attempts,
			"budget", c.retries)
		select {
		case <-ctx.Done():
			return
		case <-time.After(c.backoff << (attempts - 1)):
		}
		r, err := c.watchConnect(ctx, id, last)
		if err != nil {
			// Structured 4xx answers will not heal by retrying (the job is
			// unknown, or the request is malformed); transport errors and
			// 5xx responses might.
			var ae *api.Error
			if errors.As(err, &ae) && ae.HTTPStatus() < 500 {
				return
			}
			continue
		}
		resp = r
	}
}

// streamEvents forwards one SSE stream's events, deduplicating against
// *last (a resumed replay may overlap). It reports whether a terminal
// event was delivered (or ctx ended) and whether any event advanced the
// stream.
func (c *Client) streamEvents(ctx context.Context, body io.Reader, ch chan<- api.Event, last *int64) (terminal, progressed bool) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "":
			if len(data) == 0 {
				continue
			}
			var ev api.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return false, progressed
			}
			data = data[:0]
			if ev.Seq != 0 && ev.Seq <= *last {
				// Already delivered before the stream dropped.
				continue
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return true, progressed
			}
			if ev.Seq > *last {
				*last = ev.Seq
			}
			progressed = true
			if ev.Terminal() {
				return true, progressed
			}
		default:
			// "id:" and "event:" fields duplicate the JSON document;
			// comments and unknown fields are ignored per the SSE spec.
		}
	}
	return false, progressed
}
