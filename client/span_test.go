package client_test

import (
	"context"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/client"
	"cgraph/internal/gen"
	"cgraph/internal/span"
	"cgraph/internal/testutil"
	"cgraph/server"
)

// spanHarness is harness with task-span sampling disabled — span trees stay
// deterministic across runs — and with the concrete HTTP client exposed for
// the endpoints that live outside the cgraph.Client contract (probes,
// version).
func spanHarness(t *testing.T) (local cgraph.Client, remote *client.Client) {
	t.Helper()
	edges := gen.RMAT(41, 300, 5000, 0.57, 0.19, 0.19)
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false), cgraph.WithSpanSampling(-1))
	if err := sys.LoadEdges(300, edges); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, server.Config{})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Stop(ctx)
	})
	reg := server.DefaultRegistry()
	ts := httptest.NewServer(svc.Handler(reg))
	t.Cleanup(ts.Close)
	return server.NewLocalClient(svc, reg), client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

// spanShape renders a span set as a canonical tree string: roots are spans
// whose parent is absent from the set, children sort by their own rendering.
// Two span sets with the same shape are structurally identical trees.
func spanShape(spans []api.Span) string {
	ids := map[string]bool{}
	for _, s := range spans {
		ids[s.SpanID] = true
	}
	children := map[string][]api.Span{}
	var roots []api.Span
	for _, s := range spans {
		if s.Parent != "" && ids[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var render func(s api.Span) string
	render = func(s api.Span) string {
		kids := children[s.SpanID]
		parts := make([]string, len(kids))
		for i, k := range kids {
			parts[i] = render(k)
		}
		sort.Strings(parts)
		if len(parts) == 0 {
			return s.Name
		}
		return s.Name + "(" + strings.Join(parts, ",") + ")"
	}
	parts := make([]string, len(roots))
	for i, r := range roots {
		parts[i] = render(r)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// TestClientSpanTreeParity is the dual-transport acceptance check for the
// span surface: an identical job submitted through the in-process and the
// HTTP client yields structurally identical span trees from the job-spans
// endpoint, with the same trace ID plumbing and a populated attribution.
func TestClientSpanTreeParity(t *testing.T) {
	local, remote := spanHarness(t)
	ctx := testCtx(t)

	run := func(c cgraph.Client) (api.JobStatus, api.JobSpans) {
		_, st, _ := lifecycle(t, ctx, c, api.JobSpec{Algo: "sssp", Source: 2})
		if st.State != api.JobDone {
			t.Fatalf("job state = %v", st.State)
		}
		if st.TraceID == "" {
			t.Fatal("done job has no trace ID on its status")
		}
		// The retire span lands as the job leaves the engine; poll briefly.
		var js api.JobSpans
		testutil.WaitFor(t, 30*time.Second, func() bool {
			var err error
			js, err = c.JobSpans(ctx, st.ID)
			if err != nil {
				t.Fatalf("job spans: %v", err)
			}
			return strings.Contains(spanShape(js.Spans), "job.retire")
		}, "job %s never recorded its retire span", st.ID)
		return st, js
	}
	lst, ljs := run(local)
	rst, rjs := run(remote)

	if lst.Iterations != rst.Iterations {
		t.Fatalf("jobs diverged: local ran %d iterations, http %d", lst.Iterations, rst.Iterations)
	}
	ls, rs := spanShape(ljs.Spans), spanShape(rjs.Spans)
	if ls != rs {
		t.Fatalf("span trees differ:\nlocal: %s\nhttp:  %s", ls, rs)
	}
	if !strings.HasPrefix(ls, "job.submit(") || !strings.Contains(ls, "job.queue_wait") ||
		!strings.Contains(ls, "job.round") || !strings.Contains(ls, "job.retire") {
		t.Fatalf("span tree missing lifecycle spans: %s", ls)
	}
	if ljs.TraceID != lst.TraceID || rjs.TraceID != rst.TraceID {
		t.Fatalf("trace IDs disagree: spans (%s, %s) vs statuses (%s, %s)",
			ljs.TraceID, rjs.TraceID, lst.TraceID, rst.TraceID)
	}
	if ljs.TraceID == rjs.TraceID {
		t.Fatalf("distinct jobs share trace %s", ljs.TraceID)
	}
	rounds := strings.Count(ls, "job.round")
	for name, js := range map[string]api.JobSpans{"local": ljs, "http": rjs} {
		a := js.Attribution
		if a == nil {
			t.Fatalf("%s: job spans carry no attribution", name)
		}
		if a.ID != js.ID || a.Rounds != rounds || a.Tasks < 1 || a.QueueWaitMS < 0 || a.ExecMS <= 0 {
			t.Fatalf("%s: attribution = %+v (want %d rounds)", name, a, rounds)
		}
		if a.MakespanShare < 0 || a.MakespanShare > 1 {
			t.Fatalf("%s: makespan share %v outside [0, 1]", name, a.MakespanShare)
		}
	}
}

// TestClientTraceparentPropagation is the end-to-end context-propagation
// check: a caller-minted span context rides the traceparent header into the
// service, every server-side span of the interaction lands in the caller's
// trace, and the trace endpoint returns one connected tree covering the
// job lifecycle and the ingest pipeline.
func TestClientTraceparentPropagation(t *testing.T) {
	_, remote := spanHarness(t)
	sc := span.Context{Trace: span.NewTraceID(), Span: span.NewSpanID()}
	ctx := span.NewContext(testCtx(t), sc)

	st, err := remote.Submit(ctx, api.JobSpec{Algo: "pagerank"})
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != sc.Trace.String() {
		t.Fatalf("job joined trace %s, want the caller's %s", st.TraceID, sc.Trace)
	}
	testutil.WaitFor(t, 60*time.Second, func() bool {
		st, err = remote.Get(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return st.State == api.JobDone
	}, "job %s never finished", st.ID)

	// A flushed delta from the same context extends the same trace through
	// the ingest pipeline.
	ack, err := remote.ApplyDelta(ctx, api.Delta{
		Mutations: []api.Mutation{{Slot: 0, Edge: [3]float64{5, 7, 2.25}}},
		Flush:     true,
	})
	if err != nil || !ack.Flushed {
		t.Fatalf("delta = %+v, %v", ack, err)
	}

	want := []string{
		"http.request", "job.submit", "job.queue_wait", "job.round", "job.retire",
		"ingest.accept", "ingest.flush", "ingest.materialize",
	}
	var spans []api.Span
	testutil.WaitFor(t, 30*time.Second, func() bool {
		sl, err := remote.TraceSpans(ctx, st.TraceID)
		if err != nil {
			t.Fatalf("trace spans: %v", err)
		}
		spans = sl.Spans
		have := map[string]bool{}
		for _, s := range spans {
			have[s.Name] = true
		}
		for _, n := range want {
			if !have[n] {
				return false
			}
		}
		return true
	}, "trace %s never assembled the full tree", st.TraceID)

	// Connectivity: every retained span hangs off the caller's span, either
	// directly (the per-request http.request spans) or through a retained
	// ancestor — no orphans, no foreign traces.
	caller := sc.Span.String()
	byID := map[string]api.Span{}
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	for _, s := range spans {
		if s.TraceID != st.TraceID {
			t.Fatalf("span %s carries foreign trace %s", s.Name, s.TraceID)
		}
		if s.Parent == "" {
			t.Fatalf("span %s is an orphan; every span must descend from the caller's", s.Name)
		}
		if s.Parent != caller {
			if _, ok := byID[s.Parent]; !ok {
				t.Fatalf("span %s has dangling parent %s", s.Name, s.Parent)
			}
		}
	}
	parentName := func(s api.Span) string { return byID[s.Parent].Name }
	for _, s := range spans {
		switch s.Name {
		case "http.request":
			if s.Parent != caller {
				t.Fatalf("http.request parented to %q, want the caller's span", parentName(s))
			}
		case "job.submit", "ingest.accept":
			if parentName(s) != "http.request" {
				t.Fatalf("%s parented to %q, want http.request", s.Name, parentName(s))
			}
		case "job.queue_wait", "job.round", "job.retire":
			if parentName(s) != "job.submit" {
				t.Fatalf("%s parented to %q, want job.submit", s.Name, parentName(s))
			}
		case "ingest.flush":
			if parentName(s) != "ingest.accept" {
				t.Fatalf("ingest.flush parented to %q, want ingest.accept", parentName(s))
			}
		case "ingest.materialize":
			if parentName(s) != "ingest.flush" {
				t.Fatalf("ingest.materialize parented to %q, want ingest.flush", parentName(s))
			}
		}
	}
}

// TestClientProbesAndVersion covers the endpoints outside the Client
// contract: liveness, itemized readiness, and build identity.
func TestClientProbesAndVersion(t *testing.T) {
	_, remote := spanHarness(t)
	ctx := testCtx(t)

	if h, err := remote.Healthz(ctx); err != nil || h.Status != "ok" || len(h.Checks) != 0 {
		t.Fatalf("healthz = %+v, %v", h, err)
	}
	h, err := remote.Readyz(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("readyz = %+v, %v", h, err)
	}
	names := map[string]bool{}
	for _, c := range h.Checks {
		if !c.OK {
			t.Fatalf("readiness check %s failed on a serving engine: %+v", c.Name, c)
		}
		names[c.Name] = true
	}
	for _, wantName := range []string{"engine", "ingest", "snapshots"} {
		if !names[wantName] {
			t.Fatalf("readiness checks %v missing %q", names, wantName)
		}
	}
	v, err := remote.Version(ctx)
	if err != nil || v.API != api.Version || v.Version == "" || !strings.HasPrefix(v.GoVersion, "go") {
		t.Fatalf("version = %+v, %v", v, err)
	}
}
