module cgraph

go 1.24
