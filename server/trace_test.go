package server_test

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/internal/testutil"
	"cgraph/model"
	"cgraph/server"
)

// startTracedService is startService with round tracing enabled at the
// given ring depth.
func startTracedService(t *testing.T, cfg server.Config, depth int) *server.Service {
	t.Helper()
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false), cgraph.WithTraceDepth(depth))
	if err := sys.LoadEdges(300, testEdges()); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, cfg)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(t)
		defer cancel()
		svc.Stop(ctx)
	})
	return svc
}

func getTrace(t *testing.T, c *http.Client, url string) (int, api.JobTrace) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr api.JobTrace
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatalf("decode trace: %v", err)
		}
	}
	return resp.StatusCode, tr
}

// TestHTTPJobAndRoundTraces drives the trace surfaces end to end: a running
// job's timeline is retrievable mid-flight, a compacted job's timeline
// survives result release, and the round ring reports scheduler-level
// records with service job names.
func TestHTTPJobAndRoundTraces(t *testing.T) {
	svc := startTracedService(t, server.Config{RetainTerminal: 1}, 128)
	reg := server.DefaultRegistry()
	reg["spin"] = func(server.ProgramParams) model.Program { return spinProgram{} }
	ts := httptest.NewServer(svc.Handler(reg))
	defer ts.Close()
	c := ts.Client()

	// A running job serves its trace while still iterating.
	_, spin := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "spin"})
	spinID := spin["id"].(string)
	pollState(t, c, ts.URL, spinID, server.StateRunning)
	var running api.JobTrace
	testutil.WaitFor(t, 60*time.Second, func() bool {
		code, tr := getTrace(t, c, ts.URL+"/v1/jobs/"+spinID+"/trace")
		if code != http.StatusOK {
			t.Fatalf("GET trace = %d", code)
		}
		running = tr
		return len(tr.Rounds) > 0
	}, "running job never produced a traced round")
	if running.ID != spinID || running.Algo == "" || running.State != api.JobRunning {
		t.Fatalf("running trace envelope = %+v", running)
	}
	if running.Started == nil || running.Finished != nil || running.ExecMS <= 0 {
		t.Fatalf("running trace lifecycle = %+v", running)
	}
	for i, r := range running.Rounds {
		if r.Round < 1 || r.WallUS <= 0 || r.Parts < 1 {
			t.Fatalf("round %d = %+v", i, r)
		}
		if i > 0 && r.Round <= running.Rounds[i-1].Round {
			t.Fatalf("rounds out of order: %+v", running.Rounds)
		}
	}
	if code, _ := httpJSON(t, c, "DELETE", ts.URL+"/v1/jobs/"+spinID, nil); code != http.StatusOK {
		t.Fatalf("cancel spin = %d", code)
	}
	pollState(t, c, ts.URL, spinID, server.StateCancelled)

	// Two terminal PageRank jobs with RetainTerminal=1: the first gets its
	// results compacted, but its trace must still serve the full timeline.
	_, pr1 := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "pagerank"})
	pr1ID := pr1["id"].(string)
	pollState(t, c, ts.URL, pr1ID, server.StateDone)
	_, pr2 := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "pagerank"})
	pr2ID := pr2["id"].(string)
	pollState(t, c, ts.URL, pr2ID, server.StateDone)

	// Cancelling the spin job above makes it terminal too, so pr1's results
	// are released by now; poll briefly for the async compaction.
	var compacted api.JobTrace
	testutil.WaitFor(t, 60*time.Second, func() bool {
		code, tr := getTrace(t, c, ts.URL+"/v1/jobs/"+pr1ID+"/trace")
		if code != http.StatusOK {
			t.Fatalf("GET compacted trace = %d", code)
		}
		compacted = tr
		return tr.Released
	}, "job %s never compacted", pr1ID)
	if compacted.State != api.JobDone || compacted.Finished == nil || compacted.ExecMS <= 0 {
		t.Fatalf("compacted trace envelope = %+v", compacted)
	}
	// A converged PageRank ran many rounds; a single trailing entry means
	// the final round resurrected a fresh timeline instead of folding into
	// the retained one.
	if len(compacted.Rounds) < 2 {
		t.Fatalf("compacted job lost its round timeline: %+v", compacted.Rounds)
	}

	// The round ring reports scheduler records labeled with service job IDs.
	resp, err := c.Get(ts.URL + "/v1/trace/rounds")
	if err != nil {
		t.Fatal(err)
	}
	var rt api.RoundTraces
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rt.TraceDepth != 128 || len(rt.Rounds) == 0 {
		t.Fatalf("round traces = depth %d, %d rounds", rt.TraceDepth, len(rt.Rounds))
	}
	jobNames := map[string]bool{}
	for i, r := range rt.Rounds {
		if r.WallUS <= 0 || r.Start.IsZero() {
			t.Fatalf("round record %d = %+v", i, r)
		}
		if i > 0 && r.Round <= rt.Rounds[i-1].Round {
			t.Fatalf("round ring out of order at %d", i)
		}
		for _, jr := range r.Jobs {
			if jr.Job == "" {
				t.Fatalf("round %d job entry missing service name: %+v", r.Round, jr)
			}
			jobNames[jr.Job] = true
		}
	}
	for _, id := range []string{spinID, pr1ID} {
		if !jobNames[id] {
			t.Fatalf("job %s absent from round traces (saw %v)", id, jobNames)
		}
	}

	// Limit keeps only the newest records.
	resp, err = c.Get(ts.URL + "/v1/trace/rounds?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	var lim api.RoundTraces
	if err := json.NewDecoder(resp.Body).Decode(&lim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(lim.Rounds) != 2 || lim.Rounds[1].Round != rt.Rounds[len(rt.Rounds)-1].Round {
		t.Fatalf("limit=2 returned %d rounds", len(lim.Rounds))
	}

	// Unknown jobs 404 with the wire error code.
	if code, body := httpJSON(t, c, "GET", ts.URL+"/v1/jobs/nope/trace", nil); code != http.StatusNotFound || errCode(t, body) != string(api.CodeNotFound) {
		t.Fatalf("unknown trace = %d (%v)", code, body)
	}
}

// TestHTTPRequestIDHeader checks the instrumentation middleware assigns a
// request ID and echoes a caller-provided one.
func TestHTTPRequestIDHeader(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/sched")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID assigned")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/v1/sched", nil)
	req.Header.Set("X-Request-ID", "caller-7")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-7" {
		t.Fatalf("X-Request-ID = %q, want caller-7", got)
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

func parsePromLine(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			t.Fatalf("unbalanced braces: %q", line)
		}
		for _, pair := range strings.Split(line[i+1:j], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("bad label pair %q in %q", pair, line)
			}
			s.labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		s.name, rest, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("no value on line %q", line)
		}
	}
	var err error
	s.value, err = parsePromValue(rest)
	if err != nil {
		t.Fatalf("bad value on %q: %v", line, err)
	}
	return s
}

func parsePromValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(v, 64)
}

// labelsKey renders labels minus `le`, for grouping histogram buckets.
func labelsKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k + "=" + labels[k] + ";")
	}
	return b.String()
}

// TestMetricsExpositionWellFormed fetches /metrics after real traffic and
// validates the whole payload: every cgraph_* family carries # HELP and
// # TYPE exactly once, histogram buckets are cumulative with the +Inf
// bucket equal to _count, and all expected histogram families exist.
func TestMetricsExpositionWellFormed(t *testing.T) {
	svc := startTracedService(t, server.Config{}, 64)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()
	c := ts.Client()

	_, pr := httpJSON(t, c, "POST", ts.URL+"/v1/jobs", map[string]any{"algo": "pagerank"})
	prID := pr["id"].(string)
	pollState(t, c, ts.URL, prID, server.StateDone)

	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, %v", resp.StatusCode, err)
	}

	help := map[string]bool{}
	typ := map[string]string{}
	var samples []promSample
	for _, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			f := strings.Fields(line)
			if help[f[2]] {
				t.Fatalf("duplicate HELP for %s", f[2])
			}
			help[f[2]] = true
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if _, dup := typ[f[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", f[2])
			}
			typ[f[2]] = f[3]
		default:
			samples = append(samples, parsePromLine(t, line))
		}
	}

	// Resolve each sample to its family and require headers on cgraph_*.
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typ[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for _, s := range samples {
		fam := family(s.name)
		if !strings.HasPrefix(fam, "cgraph_") {
			continue
		}
		if !help[fam] {
			t.Fatalf("family %s has no # HELP", fam)
		}
		if typ[fam] == "" {
			t.Fatalf("family %s has no # TYPE", fam)
		}
	}

	// All new histogram families must be declared, and the ones a finished
	// PageRank job inevitably touches must carry observations.
	wantFamilies := []string{
		"cgraph_round_duration_seconds",
		"cgraph_job_queue_wait_seconds",
		"cgraph_job_exec_seconds",
		"cgraph_ingest_flush_seconds",
		"cgraph_ingest_flush_batch_size",
		"cgraph_delta_materialize_seconds",
		"cgraph_http_request_seconds",
	}
	for _, fam := range wantFamilies {
		if typ[fam] != "histogram" {
			t.Fatalf("family %s: TYPE %q, want histogram", fam, typ[fam])
		}
	}

	// PR 9 tracing, probe, and attribution families: present with the right
	// types, the readiness gauge reads 1 on a serving engine, build info
	// carries its identity labels, and the finished job shows up in the
	// per-job attribution block.
	wantTyped := map[string]string{
		"cgraph_span_started_total":            "counter",
		"cgraph_span_ended_total":              "counter",
		"cgraph_span_evicted_total":            "counter",
		"cgraph_span_store_spans":              "gauge",
		"cgraph_span_store_traces":             "gauge",
		"cgraph_span_store_capacity":           "gauge",
		"cgraph_ready":                         "gauge",
		"cgraph_build_info":                    "gauge",
		"cgraph_job_attrib_queue_wait_seconds": "gauge",
		"cgraph_job_attrib_exec_seconds":       "gauge",
		"cgraph_job_attrib_rounds":             "gauge",
		"cgraph_job_attrib_tasks":              "gauge",
		"cgraph_job_attrib_skipped_partitions": "gauge",
		"cgraph_job_attrib_makespan_share":     "gauge",
	}
	for fam, want := range wantTyped {
		if typ[fam] != want {
			t.Fatalf("family %s: TYPE %q, want %q", fam, typ[fam], want)
		}
	}
	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	if v := byName["cgraph_ready"]; len(v) != 1 || v[0].value != 1 {
		t.Fatalf("cgraph_ready = %+v, want a single sample of 1", v)
	}
	if v := byName["cgraph_build_info"]; len(v) != 1 || v[0].value != 1 ||
		v[0].labels["version"] == "" || v[0].labels["go_version"] == "" || v[0].labels["api"] == "" {
		t.Fatalf("cgraph_build_info = %+v", v)
	}
	if v := byName["cgraph_span_started_total"]; len(v) != 1 || v[0].value <= 0 {
		t.Fatalf("cgraph_span_started_total = %+v, want one sample > 0 after a traced job", v)
	}
	attribRounds := map[string]float64{}
	for _, s := range byName["cgraph_job_attrib_rounds"] {
		attribRounds[s.labels["id"]] = s.value
	}
	if attribRounds[prID] < 1 {
		t.Fatalf("cgraph_job_attrib_rounds for job %s = %v, want >= 1 (saw %v)", prID, attribRounds[prID], attribRounds)
	}
	kinds := map[string]bool{}
	for _, s := range byName["cgraph_job_attrib_tasks"] {
		if s.labels["id"] == prID {
			kinds[s.labels["kind"]] = true
		}
	}
	if !kinds["executed"] || !kinds["stolen"] {
		t.Fatalf("cgraph_job_attrib_tasks kinds for %s = %v, want executed and stolen series", prID, kinds)
	}

	// Cumulative bucket check per (family, labels-minus-le) series.
	type series struct {
		les    []float64
		counts []float64
	}
	buckets := map[string]*series{}
	counts := map[string]float64{}
	for _, s := range samples {
		if base, ok := strings.CutSuffix(s.name, "_bucket"); ok && typ[base] == "histogram" {
			le, err := parsePromValue(s.labels["le"])
			if err != nil {
				t.Fatalf("bad le on %s: %v", s.name, err)
			}
			key := base + "|" + labelsKey(s.labels)
			sr := buckets[key]
			if sr == nil {
				sr = &series{}
				buckets[key] = sr
			}
			sr.les = append(sr.les, le)
			sr.counts = append(sr.counts, s.value)
		}
		if base, ok := strings.CutSuffix(s.name, "_count"); ok && typ[base] == "histogram" {
			counts[base+"|"+labelsKey(s.labels)] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram series rendered")
	}
	for key, sr := range buckets {
		if !sort.Float64sAreSorted(sr.les) {
			t.Fatalf("series %s: le bounds out of order: %v", key, sr.les)
		}
		for i := 1; i < len(sr.counts); i++ {
			if sr.counts[i] < sr.counts[i-1] {
				t.Fatalf("series %s: buckets not cumulative: %v", key, sr.counts)
			}
		}
		last := len(sr.les) - 1
		if !math.IsInf(sr.les[last], 1) {
			t.Fatalf("series %s: missing +Inf bucket (%v)", key, sr.les)
		}
		total, ok := counts[key]
		if !ok || sr.counts[last] != total {
			t.Fatalf("series %s: +Inf bucket %v != _count %v (present %v)", key, sr.counts[last], total, ok)
		}
	}
	for _, fam := range []string{"cgraph_round_duration_seconds", "cgraph_job_queue_wait_seconds", "cgraph_http_request_seconds"} {
		hit := false
		for key := range buckets {
			if strings.HasPrefix(key, fam+"|") && counts[key] > 0 {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("family %s has no observations after a completed job", fam)
		}
	}
}
