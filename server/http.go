package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"cgraph/api"
	"cgraph/internal/metrics"
	"cgraph/internal/span"
)

// Handler returns the versioned HTTP/JSON control plane over the service.
// Every request and response body is a wire type of package api, mounted
// under the api.PathPrefix ("/v1") route prefix:
//
//	POST   /v1/jobs               submit (api.JobSpec → api.JobStatus)
//	GET    /v1/jobs               list, ?limit=N&offset=M paginates history,
//	                              ?state=S and repeated ?label=k=v filter
//	GET    /v1/jobs/{id}          one job's status
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/results  converged values (?top=K for the K largest)
//	GET    /v1/jobs/{id}/events   server-sent event stream (api.Event)
//	GET    /v1/jobs/{id}/trace    round-by-round timeline (api.JobTrace)
//	GET    /v1/jobs/{id}/spans    retained span tree + attribution (api.JobSpans)
//	GET    /v1/trace/rounds       retained round traces, ?limit=N newest
//	GET    /v1/trace/spans        one trace's spans, ?trace_id= (api.SpanList)
//	POST   /v1/snapshots          ingest a graph version (api.Snapshot)
//	POST   /v1/deltas             stream a mutation batch (api.Delta)
//	GET    /v1/sched              the scheduler's last plan
//	GET    /v1/metrics            structured metrics (api.Metrics)
//	GET    /v1/healthz            liveness probe (api.Health)
//	GET    /v1/readyz             readiness probe with checks (api.Health)
//	GET    /v1/version            build and wire-contract version (api.VersionInfo)
//	GET    /metrics               Prometheus text exposition (unversioned)
//
// Errors are api.ErrorBody envelopes with machine-readable codes and
// never ride a 2xx status (results of an unfinished job answer 409
// not_ready, where the pre-versioning API used a bare 202); known routes
// hit with a wrong method answer 405 with an Allow header; the
// pre-versioning routes (/jobs, /results/{id}, /snapshots, /sched) answer
// 308 permanent redirects to their /v1 successors.
//
// The registry resolves algorithm names; pass nil for DefaultRegistry.
func (s *Service) Handler(reg Registry) http.Handler {
	if reg == nil {
		reg = DefaultRegistry()
	}
	h := &httpAPI{svc: s, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathPrefix+"/jobs", methods(map[string]http.HandlerFunc{
		http.MethodPost: h.submit,
		http.MethodGet:  h.list,
	}))
	mux.HandleFunc(api.PathPrefix+"/jobs/{id}", methods(map[string]http.HandlerFunc{
		http.MethodGet:    h.get,
		http.MethodDelete: h.cancel,
	}))
	mux.HandleFunc(api.PathPrefix+"/jobs/{id}/results", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.results,
	}))
	mux.HandleFunc(api.PathPrefix+"/jobs/{id}/events", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.events,
	}))
	mux.HandleFunc(api.PathPrefix+"/jobs/{id}/trace", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.trace,
	}))
	mux.HandleFunc(api.PathPrefix+"/jobs/{id}/spans", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.jobSpans,
	}))
	mux.HandleFunc(api.PathPrefix+"/trace/spans", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.traceSpans,
	}))
	mux.HandleFunc(api.PathPrefix+"/trace/rounds", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.roundTraces,
	}))
	mux.HandleFunc(api.PathPrefix+"/snapshots", methods(map[string]http.HandlerFunc{
		http.MethodPost: h.snapshot,
	}))
	mux.HandleFunc(api.PathPrefix+"/deltas", methods(map[string]http.HandlerFunc{
		http.MethodPost: h.delta,
	}))
	mux.HandleFunc(api.PathPrefix+"/sched", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.sched,
	}))
	mux.HandleFunc(api.PathPrefix+"/metrics", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.metricsJSON,
	}))
	mux.HandleFunc(api.PathPrefix+"/healthz", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.healthz,
	}))
	mux.HandleFunc(api.PathPrefix+"/readyz", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.readyz,
	}))
	mux.HandleFunc(api.PathPrefix+"/version", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.version,
	}))
	mux.HandleFunc("/metrics", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.metrics,
	}))

	// Pre-versioning routes redirect permanently to their /v1 successors;
	// 308 preserves the method and body, so old clients keep working.
	legacy := func(target func(r *http.Request) string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			http.Redirect(w, r, target(r), http.StatusPermanentRedirect)
		}
	}
	mux.HandleFunc("/jobs", legacy(func(r *http.Request) string { return api.PathPrefix + "/jobs" }))
	mux.HandleFunc("/jobs/{id}", legacy(func(r *http.Request) string {
		return api.PathPrefix + "/jobs/" + r.PathValue("id")
	}))
	mux.HandleFunc("/results/{id}", legacy(func(r *http.Request) string {
		u := api.PathPrefix + "/jobs/" + r.PathValue("id") + "/results"
		if q := r.URL.RawQuery; q != "" {
			u += "?" + q
		}
		return u
	}))
	mux.HandleFunc("/snapshots", legacy(func(r *http.Request) string { return api.PathPrefix + "/snapshots" }))
	mux.HandleFunc("/sched", legacy(func(r *http.Request) string { return api.PathPrefix + "/sched" }))

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, api.Errorf(api.CodeNotFound, "no route %s", r.URL.Path))
	})
	return s.instrument(mux)
}

// instrument wraps the route mux with the service's HTTP observability:
// every request gets a request ID (the caller's X-Request-ID, or a
// service-assigned one — echoed back in the response header either way), an
// "http.request" span continuing the caller's W3C traceparent (or rooting a
// fresh trace), a latency observation labelled by route pattern, method,
// and status, and one structured log line carrying both IDs. The span
// context and request ID ride r.Context() into the handlers, so job and
// ingest spans parent under the request. Probe and scrape endpoints are
// exempt from span creation — they fire on a tight external cadence and
// would otherwise evict real request spans from the bounded store.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", reqID)
		w.Header().Set(api.VersionHeader, api.Version)
		sw := &statusWriter{ResponseWriter: w}
		traceID := ""
		if !untraced(r.URL.Path) {
			parent, _ := span.ParseTraceparent(r.Header.Get(span.Traceparent))
			sp := s.sys.SpanTracer().StartSpan(parent, "http.request")
			defer sp.End()
			sp.Attr(span.Str("method", r.Method), span.Str("path", r.URL.Path), span.Str("request_id", reqID))
			traceID = sp.TraceID().String()
			w.Header().Set(api.TraceIDHeader, traceID)
			ctx := span.NewContext(r.Context(), sp.Context())
			r = r.WithContext(withRequestID(ctx, reqID))
			defer func() {
				sp.Attr(span.Str("route", routeOf(r)), span.Int("status", int64(sw.statusOr200())))
			}()
		} else {
			r = r.WithContext(withRequestID(r.Context(), reqID))
		}
		next.ServeHTTP(sw, r)
		status := sw.statusOr200()
		route := routeOf(r)
		elapsed := time.Since(start)
		s.obs.httpLatency.With(route, r.Method, strconv.Itoa(status)).Observe(elapsed.Seconds())
		s.log.Info("http request",
			"request_id", reqID,
			"trace_id", traceID,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", status,
			"duration_ms", durationMS(elapsed))
	})
}

// untraced reports whether the path is exempt from span creation: probes
// and metric scrapes arrive on a fixed external cadence and would flood the
// bounded span store with noise.
func untraced(path string) bool {
	switch path {
	case "/metrics", api.PathPrefix + "/metrics", api.PathPrefix + "/healthz", api.PathPrefix + "/readyz":
		return true
	}
	return false
}

// routeOf returns the mux's matched pattern: the mux records it on the
// request during dispatch, so the label aggregates by template
// ("/v1/jobs/{id}") instead of exploding per job ID.
func routeOf(r *http.Request) string {
	if r.Pattern == "" {
		return "unmatched"
	}
	return r.Pattern
}

// reqIDKey carries the middleware-assigned request ID through
// context.Context into the transport-neutral service methods, which join
// engine and ingest log lines back to the request.
type reqIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// requestIDFrom extracts the request ID planted by the HTTP middleware
// (empty for in-process callers without one).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// statusWriter captures the response status for the middleware. It
// forwards Flush so SSE streaming through the wrapper keeps working.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// statusOr200 reports the captured status, defaulting to 200 when the
// handler never wrote one explicitly.
func (w *statusWriter) statusOr200() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

type httpAPI struct {
	svc *Service
	reg Registry
}

// methods dispatches by HTTP method and answers 405 (with an Allow header
// and an api.Error body) for known routes hit with the wrong method.
func methods(m map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(m))
	for k := range m {
		allowed = append(allowed, k)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		if h, ok := m[r.Method]; ok {
			h(w, r)
			return
		}
		// HEAD rides the GET handler (net/http elides the body), matching
		// ServeMux's method-pattern semantics for probes like `curl -I`.
		if r.Method == http.MethodHead {
			if h, ok := m[http.MethodGet]; ok {
				h(w, r)
				return
			}
		}
		w.Header().Set("Allow", allow)
		writeError(w, api.Errorf(api.CodeMethodNotAllowed,
			"method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow))
	}
}

func (h *httpAPI) submit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec api.JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	st, aerr := h.svc.SubmitSpec(r.Context(), h.reg, spec)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (h *httpAPI) list(w http.ResponseWriter, r *http.Request) {
	var opts api.ListOptions
	var err error
	if opts.Limit, err = queryInt(r, "limit"); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	if opts.Offset, err = queryInt(r, "offset"); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	opts.State = api.JobState(r.URL.Query().Get("state"))
	for _, kv := range r.URL.Query()["label"] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			writeError(w, api.Errorf(api.CodeBadRequest, "bad label filter %q, want key=value", kv))
			return
		}
		// Filters AND together, and a job carries one value per key — a
		// repeated key with a different value can never match, so reject
		// it instead of silently letting the last one win.
		if prev, dup := opts.Labels[k]; dup && prev != v {
			writeError(w, api.Errorf(api.CodeBadRequest, "conflicting label filters for %q (%q vs %q)", k, prev, v))
			return
		}
		if opts.Labels == nil {
			opts.Labels = map[string]string{}
		}
		opts.Labels[k] = v
	}
	list, aerr := h.svc.ListJobs(opts)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, list)
}

func (h *httpAPI) sched(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.SchedInfo())
}

func (h *httpAPI) trace(w http.ResponseWriter, r *http.Request) {
	tr, aerr := h.svc.TraceOf(r.PathValue("id"))
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (h *httpAPI) roundTraces(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit")
	if err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, h.svc.RoundTraces(limit))
}

func (h *httpAPI) jobSpans(w http.ResponseWriter, r *http.Request) {
	js, aerr := h.svc.SpansOf(r.PathValue("id"))
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, js)
}

func (h *httpAPI) traceSpans(w http.ResponseWriter, r *http.Request) {
	traceID := r.URL.Query().Get("trace_id")
	if traceID == "" {
		writeError(w, api.Errorf(api.CodeBadRequest, "missing trace_id query parameter"))
		return
	}
	sl, aerr := h.svc.TraceSpansOf(traceID)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, sl)
}

// healthz is the liveness probe: a process that can run this handler at
// all is alive, so it always answers 200 with no checks.
func (h *httpAPI) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
}

// readyz is the readiness probe: 200 when every check passes, 503 with the
// failing checks itemized otherwise, so orchestrators stop routing to a
// saturated or stopped service without killing it.
func (h *httpAPI) readyz(w http.ResponseWriter, r *http.Request) {
	health := h.svc.Readyz()
	status := http.StatusOK
	if health.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, health)
}

func (h *httpAPI) version(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.VersionInfo())
}

func (h *httpAPI) get(w http.ResponseWriter, r *http.Request) {
	st, aerr := h.svc.StatusOf(r.PathValue("id"))
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *httpAPI) cancel(w http.ResponseWriter, r *http.Request) {
	st, aerr := h.svc.CancelJob(r.PathValue("id"))
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *httpAPI) results(w http.ResponseWriter, r *http.Request) {
	var opts api.ResultsOptions
	var err error
	if opts.Top, err = queryInt(r, "top"); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "%v", err))
		return
	}
	res, aerr := h.svc.ResultsOf(r.PathValue("id"), opts)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// events streams the job's event channel as server-sent events: the SSE
// "id" field carries Event.Seq, "event" the Event.Type, and "data" the
// api.Event JSON document. The stream ends after a terminal state event.
// A reconnecting client sends the standard Last-Event-ID header with the
// last Seq it saw; the replay resumes strictly after it instead of
// re-sending the job's full history.
func (h *httpAPI) events(w http.ResponseWriter, r *http.Request) {
	var after int64
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			writeError(w, api.Errorf(api.CodeBadRequest, "bad Last-Event-ID %q", raw))
			return
		}
		after = v
	}
	ch, aerr := h.svc.WatchJobFrom(r.Context(), r.PathValue("id"), after)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for ev := range ch {
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

func (h *httpAPI) snapshot(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var snap api.Snapshot
	if err := dec.Decode(&snap); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	ack, aerr := h.svc.IngestSnapshot(snap)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (h *httpAPI) delta(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var delta api.Delta
	if err := dec.Decode(&delta); err != nil {
		writeError(w, api.Errorf(api.CodeBadRequest, "bad request body: %v", err))
		return
	}
	ack, aerr := h.svc.IngestDelta(r.Context(), delta)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (h *httpAPI) metricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.MetricsInfo())
}

func (h *httpAPI) metrics(w http.ResponseWriter, r *http.Request) {
	e := metrics.NewTextExposition()
	e.Declare("cgraph_jobs", "gauge", "Jobs by lifecycle state, compacted history included.")
	info, statuses := h.svc.metricsSnapshot()
	for _, state := range []State{StateQueued, StateRunning, StateDone, StateCancelled, StateFailed} {
		e.Add("cgraph_jobs", map[string]string{"state": string(state)}, float64(info.Jobs[state]))
	}
	e.Declare("cgraph_engine_rounds_total", "counter", "LTP rounds processed by the engine.")
	e.Add("cgraph_engine_rounds_total", nil, float64(info.Rounds))
	e.Declare("cgraph_engine_virtual_time_us", "gauge", "Engine virtual clock, simulated microseconds.")
	e.Add("cgraph_engine_virtual_time_us", nil, info.VirtualTimeUS)
	sched := info.Sched
	e.Declare("cgraph_sched_theta", "gauge", "Fitted Eq. 1 theta of the partition scheduler.")
	e.Add("cgraph_sched_theta", map[string]string{"policy": sched.Policy}, sched.Theta)
	e.Declare("cgraph_sched_theta_refits_total", "counter", "Times theta was (re)fitted after snapshot arrivals or C drift.")
	e.Add("cgraph_sched_theta_refits_total", nil, float64(sched.ThetaRefits))
	e.Declare("cgraph_sched_groups", "gauge", "Correlation groups chosen in the engine's last round.")
	e.Add("cgraph_sched_groups", nil, float64(len(sched.Groups)))
	e.Declare("cgraph_sched_group_makespan_us", "gauge", "Virtual time attributed to each correlation group in the last round.")
	e.Declare("cgraph_sched_group_jobs", "gauge", "Jobs per correlation group in the last round.")
	for gi, g := range sched.Groups {
		labels := map[string]string{"group": strconv.Itoa(gi)}
		e.Add("cgraph_sched_group_makespan_us", labels, g.MakespanUS)
		e.Add("cgraph_sched_group_jobs", labels, float64(len(g.Jobs)))
	}
	ex := info.Exec
	e.Declare("cgraph_exec_workers", "gauge", "Effective worker count of the work-stealing execution pool.")
	e.Add("cgraph_exec_workers", nil, float64(ex.Workers))
	e.Declare("cgraph_exec_balance", "gauge", "Task-granularity balance factor of the execution pool.")
	e.Add("cgraph_exec_balance", nil, ex.Balance)
	e.Declare("cgraph_exec_tasks_total", "counter", "Tasks executed by the work-stealing pool.")
	e.Add("cgraph_exec_tasks_total", nil, float64(ex.Tasks))
	e.Declare("cgraph_exec_steals_total", "counter", "Successful steal operations between pool workers.")
	e.Add("cgraph_exec_steals_total", nil, float64(ex.Steals))
	e.Declare("cgraph_exec_stolen_tasks_total", "counter", "Tasks moved between workers by steals.")
	e.Add("cgraph_exec_stolen_tasks_total", nil, float64(ex.Stolen))
	e.Declare("cgraph_exec_skipped_partitions_total", "counter", "Converged (job, partition) pairs skipped before scheduling (empty frontier).")
	e.Add("cgraph_exec_skipped_partitions_total", nil, float64(ex.SkippedPartitions))
	e.Declare("cgraph_exec_imbalance", "gauge", "Heaviest worker's share of last round's task weight, x workers (1.0 = even).")
	e.Add("cgraph_exec_imbalance", nil, ex.Imbalance)
	e.Declare("cgraph_exec_fresh_folds_total", "counter", "Contributions folded eagerly by fresh-state (async/delayed) jobs.")
	e.Add("cgraph_exec_fresh_folds_total", nil, float64(ex.FreshFolds))
	e.Declare("cgraph_exec_barriers_total", "counter", "Delayed-mode merge-barrier outcomes: skipped within the staleness bound vs forced.")
	e.Add("cgraph_exec_barriers_total", map[string]string{"result": "skipped"}, float64(ex.BarriersSkipped))
	e.Add("cgraph_exec_barriers_total", map[string]string{"result": "forced"}, float64(ex.BarriersForced))
	e.Declare("cgraph_exec_mode_jobs", "gauge", "Jobs submitted to the engine by execution mode.")
	e.Add("cgraph_exec_mode_jobs", map[string]string{"cgraph_exec_mode": "bsp"}, float64(ex.BSPJobs))
	e.Add("cgraph_exec_mode_jobs", map[string]string{"cgraph_exec_mode": "async"}, float64(ex.AsyncJobs))
	e.Add("cgraph_exec_mode_jobs", map[string]string{"cgraph_exec_mode": "delayed"}, float64(ex.DelayedJobs))
	ing := info.Ingest
	e.Declare("cgraph_ingest_batches_total", "counter", "Delta batches accepted by the ingestion pipeline.")
	e.Add("cgraph_ingest_batches_total", nil, float64(ing.Batches))
	e.Declare("cgraph_ingest_mutations_total", "counter", "Edge mutations accepted by the ingestion pipeline.")
	e.Add("cgraph_ingest_mutations_total", nil, float64(ing.Mutations))
	e.Declare("cgraph_ingest_ops_total", "counter", "Accepted edge mutations by op.")
	e.Add("cgraph_ingest_ops_total", map[string]string{"op": "rewrite"}, float64(ing.Rewrites))
	e.Add("cgraph_ingest_ops_total", map[string]string{"op": "add_edge"}, float64(ing.EdgeAdds))
	e.Add("cgraph_ingest_ops_total", map[string]string{"op": "remove_edge"}, float64(ing.EdgeRemoves))
	e.Add("cgraph_ingest_ops_total", map[string]string{"op": "add_vertex"}, float64(ing.VertexAdds))
	e.Declare("cgraph_ingest_shed_total", "counter", "Delta batches shed by the ingest admission cap.")
	e.Add("cgraph_ingest_shed_total", nil, float64(ing.Shed))
	e.Declare("cgraph_ingest_flushes_total", "counter", "Pipeline flushes by trigger.")
	e.Add("cgraph_ingest_flushes_total", map[string]string{"trigger": "count"}, float64(ing.CountFlushes))
	e.Add("cgraph_ingest_flushes_total", map[string]string{"trigger": "age"}, float64(ing.AgeFlushes))
	e.Add("cgraph_ingest_flushes_total", map[string]string{"trigger": "manual"}, float64(ing.ManualFlushes))
	e.Declare("cgraph_ingest_pending", "gauge", "Mutations buffered awaiting a flush (distinct slots).")
	e.Add("cgraph_ingest_pending", nil, float64(ing.Pending))
	e.Declare("cgraph_ingest_shared_ratio", "gauge", "Partitions pointer-shared vs rebuilt across delta-built snapshots.")
	e.Add("cgraph_ingest_shared_ratio", nil, ing.SharedRatio)
	e.Declare("cgraph_ingest_compactions_total", "counter", "Hole-compaction passes: flushes that squeezed removal tombstones out of the edge list.")
	e.Add("cgraph_ingest_compactions_total", nil, float64(ing.Compactions))
	e.Declare("cgraph_snapshots_live", "gauge", "Snapshots retained in the global table.")
	e.Add("cgraph_snapshots_live", nil, float64(ing.SnapshotsLive))
	e.Declare("cgraph_snapshots_evicted_total", "counter", "Snapshots evicted by the retention policy.")
	e.Add("cgraph_snapshots_evicted_total", nil, float64(ing.SnapshotsEvicted))
	e.Declare("cgraph_snapshot_window_oldest_seq", "gauge", "Series index of the oldest retained snapshot; older bindings resolve here.")
	e.Add("cgraph_snapshot_window_oldest_seq", nil, float64(ing.OldestSeq))
	e.Declare("cgraph_snapshot_window_oldest_timestamp", "gauge", "Timestamp of the oldest retained snapshot.")
	e.Add("cgraph_snapshot_window_oldest_timestamp", nil, float64(ing.OldestTimestamp))
	e.Declare("cgraph_snapshot_window_newest_seq", "gauge", "Series index of the newest retained snapshot.")
	e.Add("cgraph_snapshot_window_newest_seq", nil, float64(ing.NewestSeq))
	e.Declare("cgraph_snapshot_window_newest_timestamp", "gauge", "Timestamp of the newest retained snapshot.")
	e.Add("cgraph_snapshot_window_newest_timestamp", nil, float64(ing.NewestTimestamp))
	e.Declare("cgraph_graph_vertices", "gauge", "Vertex space of the newest snapshot; structural deltas grow it.")
	e.Add("cgraph_graph_vertices", nil, float64(ing.NumVertices))
	e.Declare("cgraph_job_iterations", "gauge", "Iterations to convergence, per finished job.")
	e.Declare("cgraph_job_edges_processed", "counter", "Edges processed, per finished job.")
	e.Declare("cgraph_job_simulated_access_us", "gauge", "Simulated data-access time, per finished job.")
	e.Declare("cgraph_job_simulated_compute_us", "gauge", "Simulated compute time, per finished job.")
	for _, st := range statuses {
		if st.State != StateDone {
			continue
		}
		labels := map[string]string{"id": st.ID, "algo": st.Algo}
		e.Add("cgraph_job_iterations", labels, float64(st.Iterations))
		e.Add("cgraph_job_edges_processed", labels, float64(st.EdgesProcessed))
		e.Add("cgraph_job_simulated_access_us", labels, st.SimulatedAccessUS)
		e.Add("cgraph_job_simulated_compute_us", labels, st.SimulatedComputeUS)
	}
	obs := h.svc.obs
	rd := h.svc.sys.RoundDurationStats()
	e.Declare("cgraph_round_duration_seconds", "histogram", "Wall-clock LTP round duration, traced or not.")
	e.AddHistogram("cgraph_round_duration_seconds", nil,
		metrics.HistogramSnapshot{Bounds: rd.Bounds, Counts: rd.Counts, Sum: rd.Sum, Count: rd.Count})
	e.Declare("cgraph_job_queue_wait_seconds", "histogram", "Job submission to engine admission.")
	e.AddHistogram("cgraph_job_queue_wait_seconds", nil, obs.queueWait.Snapshot())
	e.Declare("cgraph_job_exec_seconds", "histogram", "Job engine admission to terminal state, by algorithm.")
	addHistogramVec(e, "cgraph_job_exec_seconds", obs.exec)
	e.Declare("cgraph_ingest_flush_seconds", "histogram", "Delta-pipeline flush latency by trigger.")
	addHistogramVec(e, "cgraph_ingest_flush_seconds", obs.ingestFlush)
	e.Declare("cgraph_ingest_flush_batch_size", "histogram", "Coalesced mutations drained per flush.")
	e.AddHistogram("cgraph_ingest_flush_batch_size", nil, obs.ingestBatch.Snapshot())
	e.Declare("cgraph_delta_materialize_seconds", "histogram", "Snapshot materialization latency by path (overlay vs restructure).")
	addHistogramVec(e, "cgraph_delta_materialize_seconds", obs.materialize)
	e.Declare("cgraph_http_request_seconds", "histogram", "HTTP request latency by route pattern, method, and status.")
	addHistogramVec(e, "cgraph_http_request_seconds", obs.httpLatency)
	tr := h.svc.sys.SpanTracer().Stats()
	e.Declare("cgraph_span_started_total", "counter", "Spans opened since process start (retro-recorded spans count as started and ended).")
	e.Add("cgraph_span_started_total", nil, float64(tr.Started))
	e.Declare("cgraph_span_ended_total", "counter", "Spans ended and recorded into the bounded store.")
	e.Add("cgraph_span_ended_total", nil, float64(tr.Ended))
	e.Declare("cgraph_span_evicted_total", "counter", "Spans dropped FIFO from the full span store.")
	e.Add("cgraph_span_evicted_total", nil, float64(tr.Evicted))
	e.Declare("cgraph_span_store_spans", "gauge", "Spans currently retained in the bounded store.")
	e.Add("cgraph_span_store_spans", nil, float64(tr.StoreSpans))
	e.Declare("cgraph_span_store_traces", "gauge", "Distinct traces currently retained in the bounded store.")
	e.Add("cgraph_span_store_traces", nil, float64(tr.StoreTraces))
	e.Declare("cgraph_span_store_capacity", "gauge", "Capacity bound of the span store.")
	e.Add("cgraph_span_store_capacity", nil, float64(tr.Capacity))
	ready := 0.0
	if h.svc.Readyz().Status == "ok" {
		ready = 1
	}
	e.Declare("cgraph_ready", "gauge", "1 when every readiness check passes, 0 otherwise.")
	e.Add("cgraph_ready", nil, ready)
	v := buildVersion()
	e.Declare("cgraph_build_info", "gauge", "Build identity carried in the labels; the value is always 1.")
	e.Add("cgraph_build_info", map[string]string{"version": v.Version, "go_version": v.GoVersion, "api": v.API}, 1)
	e.Declare("cgraph_job_attrib_queue_wait_seconds", "gauge", "Queue wait per job, from the retained span tree.")
	e.Declare("cgraph_job_attrib_exec_seconds", "gauge", "Exec wall time per job, from the retained span tree.")
	e.Declare("cgraph_job_attrib_rounds", "gauge", "Rounds the job participated in, as retained by the span store.")
	e.Declare("cgraph_job_attrib_tasks", "gauge", "Executor tasks per job by kind (executed vs stolen to another worker).")
	e.Declare("cgraph_job_attrib_skipped_partitions", "gauge", "Converged partitions skipped before scheduling, per job.")
	e.Declare("cgraph_job_attrib_makespan_share", "gauge", "Job's simulated time as a share of its correlation groups' makespan.")
	for _, a := range info.Attribution {
		labels := map[string]string{"id": a.ID}
		e.Add("cgraph_job_attrib_queue_wait_seconds", labels, a.QueueWaitMS/1000)
		e.Add("cgraph_job_attrib_exec_seconds", labels, a.ExecMS/1000)
		e.Add("cgraph_job_attrib_rounds", labels, float64(a.Rounds))
		e.Add("cgraph_job_attrib_tasks", map[string]string{"id": a.ID, "kind": "executed"}, float64(a.Tasks))
		e.Add("cgraph_job_attrib_tasks", map[string]string{"id": a.ID, "kind": "stolen"}, float64(a.TasksStolen))
		e.Add("cgraph_job_attrib_skipped_partitions", labels, float64(a.SkippedPartitions))
		e.Add("cgraph_job_attrib_makespan_share", labels, a.MakespanShare)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WriteTo(w)
}

// addHistogramVec renders every child of a labelled histogram into the
// exposition.
func addHistogramVec(e *metrics.TextExposition, name string, v *metrics.HistogramVec) {
	for _, ls := range v.Snapshots() {
		e.AddHistogram(name, ls.Labels, ls.HistogramSnapshot)
	}
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, e *api.Error) {
	writeJSON(w, e.HTTPStatus(), api.ErrorBody{Error: e})
}
