package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"cgraph/internal/metrics"
	"cgraph/model"
)

// jsonFloat renders non-finite vertex values (e.g. +Inf for unreachable
// vertices in SSSP) as strings, which encoding/json otherwise rejects.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// Handler returns the HTTP/JSON control plane over the service:
//
//	POST   /jobs          {"algo":"sssp","source":3,"timeout_ms":5000,"at_timestamp":20}
//	GET    /jobs          list all jobs
//	GET    /jobs/{id}     one job's status
//	DELETE /jobs/{id}     cancel
//	GET    /results/{id}  converged values (?top=K for the K largest)
//	POST   /snapshots     {"timestamp":20,"edges":[[src,dst,weight],...]}
//	GET    /sched         the scheduler's last plan (policy, θ, groups)
//	GET    /metrics       Prometheus text exposition
//
// The registry resolves algorithm names; pass nil for DefaultRegistry.
func (s *Service) Handler(reg Registry) http.Handler {
	if reg == nil {
		reg = DefaultRegistry()
	}
	h := &httpAPI{svc: s, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", h.submit)
	mux.HandleFunc("GET /jobs", h.list)
	mux.HandleFunc("GET /jobs/{id}", h.get)
	mux.HandleFunc("DELETE /jobs/{id}", h.cancel)
	mux.HandleFunc("GET /results/{id}", h.results)
	mux.HandleFunc("POST /snapshots", h.snapshot)
	mux.HandleFunc("GET /sched", h.sched)
	mux.HandleFunc("GET /metrics", h.metrics)
	return mux
}

type httpAPI struct {
	svc *Service
	reg Registry
}

type submitRequest struct {
	Algo string `json:"algo"`
	// Source is the source vertex for traversal algorithms.
	Source uint32 `json:"source"`
	// K is the k-core threshold.
	K int `json:"k"`
	// TimeoutMS bounds the job's wall-clock lifetime in milliseconds.
	TimeoutMS int64 `json:"timeout_ms"`
	// AtTimestamp binds the job to the newest snapshot not younger than
	// this; absent means the latest snapshot.
	AtTimestamp *int64 `json:"at_timestamp"`
}

func (h *httpAPI) submit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	prog, err := h.reg.Build(req.Algo, ProgramParams{Source: model.VertexID(req.Source), K: req.K})
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	spec := Spec{Program: prog, Arrival: req.AtTimestamp}
	if req.TimeoutMS > 0 {
		spec.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	j, err := h.svc.Submit(spec)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (h *httpAPI) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":  h.svc.List(),
		"sched": h.svc.SchedInfo(),
	})
}

func (h *httpAPI) sched(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.SchedInfo())
}

func (h *httpAPI) get(w http.ResponseWriter, r *http.Request) {
	j, ok := h.svc.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (h *httpAPI) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := h.svc.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if err := j.Cancel(); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (h *httpAPI) results(w http.ResponseWriter, r *http.Request) {
	j, ok := h.svc.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	res, err := j.Results()
	if err != nil {
		status := http.StatusConflict
		if st := j.State(); st == StateQueued || st == StateRunning {
			// Not an error, just not done yet.
			status = http.StatusAccepted
		}
		httpError(w, status, err)
		return
	}
	type entry struct {
		Vertex int       `json:"vertex"`
		Value  jsonFloat `json:"value"`
	}
	resp := map[string]any{"id": j.ID(), "algo": j.Name(), "num_vertices": len(res)}
	if topStr := r.URL.Query().Get("top"); topStr != "" {
		top, err := strconv.Atoi(topStr)
		if err != nil || top <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad top %q", topStr))
			return
		}
		entries := make([]entry, 0, len(res))
		for v, x := range res {
			entries = append(entries, entry{v, jsonFloat(x)})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Value > entries[j].Value })
		if top > len(entries) {
			top = len(entries)
		}
		resp["top"] = entries[:top]
	} else {
		values := make([]jsonFloat, len(res))
		for i, x := range res {
			values[i] = jsonFloat(x)
		}
		resp["values"] = values
	}
	writeJSON(w, http.StatusOK, resp)
}

type snapshotRequest struct {
	Timestamp int64 `json:"timestamp"`
	// Edges is the full rewritten edge list, one [src, dst, weight]
	// triple per slot of the base list.
	Edges [][3]float64 `json:"edges"`
}

func (h *httpAPI) snapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	edges := make([]model.Edge, len(req.Edges))
	for i, e := range req.Edges {
		edges[i] = model.Edge{
			Src:    model.VertexID(e[0]),
			Dst:    model.VertexID(e[1]),
			Weight: float32(e[2]),
		}
	}
	if err := h.svc.AddSnapshot(edges, req.Timestamp); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"timestamp": req.Timestamp, "edges": len(edges)})
}

func (h *httpAPI) metrics(w http.ResponseWriter, r *http.Request) {
	e := metrics.NewTextExposition()
	e.Declare("cgraph_jobs", "gauge", "Jobs by lifecycle state.")
	counts := map[State]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateCancelled: 0, StateFailed: 0,
	}
	statuses := h.svc.List()
	for _, st := range statuses {
		counts[st.State]++
	}
	for _, state := range []State{StateQueued, StateRunning, StateDone, StateCancelled, StateFailed} {
		e.Add("cgraph_jobs", map[string]string{"state": string(state)}, float64(counts[state]))
	}
	stats := h.svc.System().Stats()
	e.Declare("cgraph_engine_rounds_total", "counter", "LTP rounds processed by the engine.")
	e.Add("cgraph_engine_rounds_total", nil, float64(stats.Rounds))
	e.Declare("cgraph_engine_virtual_time_us", "gauge", "Engine virtual clock, simulated microseconds.")
	e.Add("cgraph_engine_virtual_time_us", nil, stats.VirtualTimeUS)
	sched := h.svc.SchedInfo()
	e.Declare("cgraph_sched_theta", "gauge", "Fitted Eq. 1 theta of the partition scheduler.")
	e.Add("cgraph_sched_theta", map[string]string{"policy": sched.Policy}, sched.Theta)
	e.Declare("cgraph_sched_theta_refits_total", "counter", "Times theta was (re)fitted after snapshot arrivals or C drift.")
	e.Add("cgraph_sched_theta_refits_total", nil, float64(sched.ThetaRefits))
	e.Declare("cgraph_sched_groups", "gauge", "Correlation groups chosen in the engine's last round.")
	e.Add("cgraph_sched_groups", nil, float64(len(sched.Groups)))
	e.Declare("cgraph_job_iterations", "gauge", "Iterations to convergence, per finished job.")
	e.Declare("cgraph_job_edges_processed", "counter", "Edges processed, per finished job.")
	e.Declare("cgraph_job_simulated_access_us", "gauge", "Simulated data-access time, per finished job.")
	e.Declare("cgraph_job_simulated_compute_us", "gauge", "Simulated compute time, per finished job.")
	for _, st := range statuses {
		if st.State != StateDone {
			continue
		}
		labels := map[string]string{"id": st.ID, "algo": st.Algo}
		e.Add("cgraph_job_iterations", labels, float64(st.Iterations))
		e.Add("cgraph_job_edges_processed", labels, float64(st.EdgesProcessed))
		e.Add("cgraph_job_simulated_access_us", labels, st.SimulatedAccessUS)
		e.Add("cgraph_job_simulated_compute_us", labels, st.SimulatedComputeUS)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
