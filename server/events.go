package server

import (
	"context"
	"sync"

	"cgraph/api"
)

// hub fans job events out to watchers. Each job owns one stream: the
// service publishes lifecycle transitions and per-iteration progress into
// it, and any number of subscribers (SSE handlers, local-client Watch
// calls) consume it. A subscriber attached late first receives a replay of
// the job's state transitions so far (plus its latest progress event),
// then live events; the stream ends after a terminal state event.
//
// Publishing never blocks on slow subscribers: each subscription buffers
// events in its own queue and coalesces consecutive progress events, so
// the engine's round loop is insulated from consumer backpressure while
// state transitions are still delivered losslessly and in order.
type hub struct {
	mu   sync.Mutex
	jobs map[string]*stream
}

// stream is one job's event history and live subscriber set.
type stream struct {
	seq int64
	// states holds every state-transition event in order (at most one per
	// lifecycle state, so the slice stays tiny).
	states []api.Event
	// progress is the latest progress event; older ones are superseded.
	progress *api.Event
	done     bool
	subs     map[*subscriber]struct{}
}

// subscriber is one Watch attachment: a private queue drained by its own
// goroutine into the consumer-facing channel.
type subscriber struct {
	mu     sync.Mutex
	queue  []api.Event
	notify chan struct{}
	out    chan api.Event
}

func newHub() *hub {
	return &hub{jobs: make(map[string]*stream)}
}

// create registers a job's stream; publish and subscribe on unknown jobs
// are no-ops/errors, so creation marks the job's existence.
func (h *hub) create(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.jobs[id]; !ok {
		h.jobs[id] = &stream{subs: make(map[*subscriber]struct{})}
	}
}

// remove drops a compacted job's stream; late watchers are served a
// synthesized terminal replay from the history ring instead.
func (h *hub) remove(id string) {
	h.mu.Lock()
	delete(h.jobs, id)
	h.mu.Unlock()
}

// publish appends one event to the job's stream and forwards it to every
// subscriber. Events for unknown (never created or already removed) jobs
// are dropped.
func (h *hub) publish(id string, ev api.Event) {
	h.mu.Lock()
	st, ok := h.jobs[id]
	if !ok || st.done {
		h.mu.Unlock()
		return
	}
	st.seq++
	ev.Seq = st.seq
	ev.JobID = id
	if ev.Type == api.EventProgress {
		st.progress = &ev
	} else {
		st.states = append(st.states, ev)
		if ev.Terminal() {
			st.done = true
		}
	}
	for sub := range st.subs {
		sub.enqueue(ev)
	}
	if st.done {
		// Terminal delivered; subscriber goroutines exit after draining.
		clear(st.subs)
	}
	h.mu.Unlock()
}

// subscribe attaches a watcher to the job's stream: the returned channel
// replays the stream so far — skipping events with Seq ≤ after, so a
// reconnecting watcher resumes instead of re-reading history — then
// carries live events, and closes after a terminal event or when ctx ends.
// The bool is false for unknown jobs.
func (h *hub) subscribe(ctx context.Context, id string, after int64) (<-chan api.Event, bool) {
	h.mu.Lock()
	st, ok := h.jobs[id]
	if !ok {
		h.mu.Unlock()
		return nil, false
	}
	sub := &subscriber{
		notify: make(chan struct{}, 1),
		out:    make(chan api.Event),
	}
	// Seed the replay under the hub lock so no live event can interleave:
	// states in order, with the latest progress inserted before a trailing
	// terminal event (matching the order a live watcher would have seen).
	replay := make([]api.Event, 0, len(st.states)+1)
	for _, ev := range st.states {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	if st.progress != nil && st.progress.Seq > after {
		if st.done && len(replay) > 0 && replay[len(replay)-1].Terminal() {
			last := replay[len(replay)-1]
			replay = append(replay[:len(replay)-1], *st.progress, last)
		} else {
			replay = append(replay, *st.progress)
		}
	}
	if st.done && len(replay) == 0 {
		// The watcher already saw the terminal event (its Seq is the
		// stream's highest); nothing remains, so the stream just closes.
		h.mu.Unlock()
		ch := make(chan api.Event)
		close(ch)
		return ch, true
	}
	sub.queue = replay
	if !st.done {
		st.subs[sub] = struct{}{}
	}
	h.mu.Unlock()

	//cgraph:spawn one pump per event-stream subscriber, exits with the watch ctx
	go sub.run(ctx, func() {
		h.mu.Lock()
		if s, ok := h.jobs[id]; ok {
			delete(s.subs, sub)
		}
		h.mu.Unlock()
	})
	return sub.out, true
}

// replayTerminal serves a watcher of an already-compacted job: it delivers
// one synthesized terminal state event and closes. The synthesized Seq
// lands strictly after the watcher's resume point, so a reconnecting
// client deduplicating by sequence still accepts it.
func replayTerminal(status api.JobStatus, after int64) <-chan api.Event {
	out := make(chan api.Event, 1)
	out <- api.Event{
		Type:      api.EventState,
		JobID:     status.ID,
		Seq:       max(after+1, 1),
		State:     status.State,
		Error:     status.Error,
		Iteration: status.Iterations,
	}
	close(out)
	return out
}

// enqueue adds one event to the subscriber's private queue, coalescing
// consecutive progress events so a slow consumer sees the freshest totals
// rather than an unbounded backlog.
func (s *subscriber) enqueue(ev api.Event) {
	s.mu.Lock()
	if n := len(s.queue); ev.Type == api.EventProgress && n > 0 && s.queue[n-1].Type == api.EventProgress {
		s.queue[n-1] = ev
	} else {
		s.queue = append(s.queue, ev)
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// run drains the queue into the out channel until a terminal event is
// delivered or ctx ends.
func (s *subscriber) run(ctx context.Context, unsubscribe func()) {
	defer close(s.out)
	defer unsubscribe()
	for {
		s.mu.Lock()
		var ev api.Event
		have := len(s.queue) > 0
		if have {
			ev = s.queue[0]
			s.queue = s.queue[1:]
		}
		s.mu.Unlock()
		if !have {
			select {
			case <-ctx.Done():
				return
			case <-s.notify:
				continue
			}
		}
		select {
		case s.out <- ev:
		case <-ctx.Done():
			return
		}
		if ev.Terminal() {
			return
		}
	}
}
