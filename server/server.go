// Package server is the CGraph job service: the "common platform" of §1
// run as a resident subsystem rather than a batch library call. A Service
// owns one serving cgraph.System and layers on top of it the job lifecycle
// (Queued → Running → Done / Cancelled / Failed), durable string job IDs,
// handles with Wait/Status/Results, admission control (a maximum number of
// in-flight jobs with FIFO backpressure, leaning on the §3.2.3
// more-jobs-than-workers batching to pick a useful in-flight width), and
// snapshot ingestion for evolving graphs while jobs run. The HTTP/JSON
// control plane over a Service lives in http.go; cmd/cgraph-serve wires it
// to a listener.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cgraph"
	"cgraph/model"
)

// ErrStopped is the terminal error of jobs still queued or running when the
// service stops.
var ErrStopped = errors.New("server: service stopped")

// State is a job's lifecycle state as reported by the control plane.
type State string

const (
	// StateQueued: accepted, waiting for an in-flight slot.
	StateQueued State = "queued"
	// StateRunning: submitted to the engine and being iterated.
	StateRunning State = "running"
	// StateDone: converged; results are available.
	StateDone State = "done"
	// StateCancelled: retired by an explicit cancel before convergence.
	StateCancelled State = "cancelled"
	// StateFailed: retired without converging (deadline expiry, engine
	// failure, or service shutdown).
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// Config tunes a Service.
type Config struct {
	// MaxInFlight caps the jobs submitted to the engine at once; further
	// submissions queue FIFO until a slot frees. Zero means unlimited —
	// the engine batches jobs beyond the worker count per §3.2.3, so
	// unlimited is safe, just unbounded in memory.
	MaxInFlight int
	// DefaultTimeout applies to submissions without an explicit timeout.
	// Zero means no deadline.
	DefaultTimeout time.Duration
}

// Spec describes one job submission.
type Spec struct {
	// Program is the vertex program to run. Required. Programs with
	// job-private bookkeeping must not be shared between submissions.
	Program model.Program
	// Timeout, when positive, bounds the job's wall-clock lifetime from
	// submission — queue wait included; on expiry the job fails with
	// context.DeadlineExceeded.
	Timeout time.Duration
	// Arrival, when non-nil, binds the job to the newest snapshot not
	// younger than *Arrival; nil binds to the latest snapshot at launch.
	Arrival *int64
}

// Service is a resident CGraph job service over one shared graph.
type Service struct {
	sys *cgraph.System
	cfg Config

	mu       sync.Mutex
	started  bool
	stopped  bool
	runErr   error // sticky: why the round loop died, if it failed
	jobs     map[string]*Job
	order    []string
	queue    []*Job
	inflight int
	nextID   int
	stop     context.CancelFunc
	serveErr chan error
	// stopCh closes once the round loop has exited and resident jobs were
	// failed; watchers parked on engine handles unblock on it.
	stopCh   chan struct{}
	stopOnce sync.Once
}

// New builds a Service over sys. The graph must be loaded before Start;
// the system must not be used for batch Run concurrently.
func New(sys *cgraph.System, cfg Config) *Service {
	return &Service{
		sys:      sys,
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		serveErr: make(chan error, 1),
		stopCh:   make(chan struct{}),
	}
}

// System returns the underlying cgraph.System (snapshot ingestion, stats).
func (s *Service) System() *cgraph.System { return s.sys }

// Start launches the resident round loop on its own goroutine and begins
// accepting submissions. It is an error to start twice or after Stop.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("server: already started")
	}
	if s.stopped {
		return fmt.Errorf("server: service stopped")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.stop = cancel
	s.started = true
	go func() {
		err := s.sys.Serve(ctx)
		if err != nil {
			// The loop never ran (e.g. the system was mid-batch-Run).
			// Surface the cause: further submissions fail with it and
			// every accepted job resolves instead of hanging.
			s.mu.Lock()
			if !s.stopped {
				s.stopped = true
				s.runErr = err
				s.queue = nil
			}
			s.mu.Unlock()
			s.finalizeStop(err)
		}
		s.serveErr <- err
	}()
	return nil
}

// Stop gracefully shuts the service down: no further submissions are
// accepted, the round loop exits at the next round boundary, and every job
// not yet terminal fails with ErrStopped. Stop returns once the loop has
// exited, or with ctx's error if ctx expires first (teardown then
// completes in the background when the loop lands).
func (s *Service) Stop(ctx context.Context) error {
	s.mu.Lock()
	if !s.started || s.stopped {
		s.stopped = true
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	stop := s.stop
	s.queue = nil
	s.mu.Unlock()

	stop()
	select {
	case err := <-s.serveErr:
		s.finalizeStop(ErrStopped)
		return err
	case <-ctx.Done():
		go func() {
			<-s.serveErr
			s.finalizeStop(ErrStopped)
		}()
		return ctx.Err()
	}
}

// finalizeStop runs once the round loop has exited: every non-terminal job
// fails with cause so waiters unblock, then stopCh releases the watchers
// still parked on engine handles.
func (s *Service) finalizeStop(cause error) {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		ids := append([]string(nil), s.order...)
		s.mu.Unlock()
		for _, id := range ids {
			if j, ok := s.Get(id); ok {
				j.finish(StateFailed, cause, nil)
			}
		}
		close(s.stopCh)
	})
}

// Submit accepts a job. When the service has a free in-flight slot the job
// launches immediately (Running as soon as the engine admits it at a round
// boundary); otherwise it queues FIFO. The returned handle is valid for the
// lifetime of the service.
func (s *Service) Submit(spec Spec) (*Job, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("server: submit: nil program")
	}
	if spec.Timeout == 0 {
		spec.Timeout = s.cfg.DefaultTimeout
	}
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: submit before Start")
	}
	if s.stopped {
		err := s.runErr
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, ErrStopped
	}
	id := fmt.Sprintf("job-%d", s.nextID)
	s.nextID++
	jctx := context.Background()
	jcancel := context.CancelFunc(func() {})
	if spec.Timeout > 0 {
		// The deadline clock starts now, so time spent queued counts.
		jctx, jcancel = context.WithTimeout(jctx, spec.Timeout)
	}
	j := &Job{
		svc:       s,
		id:        id,
		name:      spec.Program.Name(),
		spec:      spec,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
		ctx:       jctx,
		cancelCtx: jcancel,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	if s.cfg.MaxInFlight > 0 && s.inflight >= s.cfg.MaxInFlight {
		s.queue = append(s.queue, j)
		s.mu.Unlock()
		if spec.Timeout > 0 {
			// A queued job must honour its deadline even if no slot ever
			// frees; the watcher dissolves once the job leaves the queue.
			go func() {
				select {
				case <-j.ctx.Done():
					j.failIfQueued(j.ctx.Err())
				case <-j.done:
				}
			}()
		}
		return j, nil
	}
	s.inflight++
	s.mu.Unlock()
	if err := s.launch(j); err != nil {
		j.finish(StateFailed, err, nil)
		s.releaseSlot()
		return j, err
	}
	return j, nil
}

// launch submits j to the engine and spawns its completion watcher.
func (s *Service) launch(j *Job) error {
	opts := []cgraph.JobOption{cgraph.WithContext(j.ctx)}
	if j.spec.Arrival != nil {
		opts = append(opts, cgraph.AtTimestamp(*j.spec.Arrival))
	}
	h, err := s.sys.Submit(j.spec.Program, opts...)
	if err != nil {
		return err
	}
	j.mu.Lock()
	// A cancel or deadline may have landed between the slot grab and the
	// engine submission; the job is already terminal, so drop the
	// engine-side twin and free the slot.
	if j.state.Terminal() {
		j.mu.Unlock()
		h.Cancel()
		s.releaseSlot()
		return nil
	}
	j.state = StateRunning
	j.handle = h
	j.started = time.Now()
	j.mu.Unlock()
	go s.watch(j, h)
	return nil
}

// watch resolves j's terminal state once the engine retires its job — or,
// if the service stops first, leaves j to finalizeStop and unparks.
func (s *Service) watch(j *Job, h *cgraph.Job) {
	select {
	case <-h.Done():
	case <-s.stopCh:
		// The loop exited with this job resident; finalizeStop failed it.
		return
	}
	err := h.Err()
	var state State
	var results []float64
	switch {
	case err == nil:
		results, err = h.Results()
		if err != nil {
			state = StateFailed
		} else {
			state = StateDone
		}
	case errors.Is(err, cgraph.ErrCancelled), errors.Is(err, context.Canceled):
		state = StateCancelled
	default:
		// Deadline expiry and engine-side failures.
		state = StateFailed
	}
	j.mu.Lock()
	j.metrics = h.Metrics()
	j.mu.Unlock()
	j.finish(state, err, results)
	// The service keeps the results; drop the engine-side private table so
	// resident memory stays bounded as jobs flow through.
	h.Release()
	s.releaseSlot()
}

// releaseSlot frees one in-flight slot and launches queued jobs while
// capacity remains.
func (s *Service) releaseSlot() {
	s.mu.Lock()
	s.inflight--
	for !s.stopped && len(s.queue) > 0 && (s.cfg.MaxInFlight <= 0 || s.inflight < s.cfg.MaxInFlight) {
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.State() != StateQueued {
			continue // cancelled while waiting
		}
		s.inflight++
		s.mu.Unlock()
		if err := s.launch(j); err != nil {
			j.finish(StateFailed, err, nil)
			s.mu.Lock()
			s.inflight--
			continue
		}
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// Get returns the handle of a known job ID.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel retires the identified job: a queued job is cancelled on the spot,
// a running one at the engine's next round boundary. Cancelling a terminal
// job is an error.
func (s *Service) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("server: cancel: unknown job %q", id)
	}
	return j.Cancel()
}

// List returns the status of every job in submission order.
func (s *Service) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Get(id); ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// AddSnapshot ingests a new graph version at the given timestamp while the
// service runs; jobs submitted afterwards (or with a matching Arrival) see
// it. The edge list must be a slot rewrite of the base list.
func (s *Service) AddSnapshot(edges []model.Edge, timestamp int64) error {
	return s.sys.AddSnapshot(edges, timestamp)
}

// SchedGroup is one correlation group of the engine's last round, with
// engine job IDs translated to service job IDs.
type SchedGroup struct {
	Jobs []string `json:"jobs"`
	// Parts is the unit load order (partition index within its snapshot),
	// parallel to PartUIDs, which names the exact version loaded.
	Parts    []int   `json:"parts"`
	PartUIDs []int64 `json:"part_uids"`
}

// SchedInfo is the JSON-facing view of the engine's latest scheduling
// decision: policy, θ fit, and the per-round group/load order.
type SchedInfo struct {
	Policy      string       `json:"policy"`
	Theta       float64      `json:"theta"`
	ThetaRefits int          `json:"theta_refits"`
	Round       int64        `json:"round"`
	Groups      []SchedGroup `json:"groups"`
}

// SchedInfo reports the scheduler's last plan with service job IDs.
func (s *Service) SchedInfo() SchedInfo {
	ci := s.sys.SchedInfo()
	s.mu.Lock()
	js := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	s.mu.Unlock()
	byEngine := make(map[int]string, len(js))
	for _, j := range js {
		j.mu.Lock()
		if j.handle != nil {
			byEngine[j.handle.ID()] = j.id
		}
		j.mu.Unlock()
	}
	out := SchedInfo{
		Policy:      ci.Policy,
		Theta:       ci.Theta,
		ThetaRefits: ci.ThetaRefits,
		Round:       ci.Round,
	}
	for _, g := range ci.Groups {
		sg := SchedGroup{Parts: g.Parts, PartUIDs: g.UIDs}
		for _, id := range g.JobIDs {
			if sid, ok := byEngine[id]; ok {
				sg.Jobs = append(sg.Jobs, sid)
			} else {
				// A job submitted directly on the System, outside this
				// service.
				sg.Jobs = append(sg.Jobs, fmt.Sprintf("engine-%d", id))
			}
		}
		out.Groups = append(out.Groups, sg)
	}
	return out
}

// Job is the service-side handle of one submitted job.
type Job struct {
	svc  *Service
	id   string
	name string
	spec Spec
	done chan struct{}

	// ctx carries the job's deadline from submission; cancelCtx releases
	// its timer once the job is terminal.
	ctx       context.Context
	cancelCtx context.CancelFunc

	mu        sync.Mutex
	state     State
	err       error
	handle    *cgraph.Job
	results   []float64
	metrics   *cgraph.JobReport
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// ID returns the service-assigned job ID.
func (j *Job) ID() string { return j.id }

// Name returns the program name.
func (j *Job) Name() string { return j.name }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err reports why the job terminated; nil before termination and after a
// clean convergence.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state or ctx expires; on a
// terminal state it returns Err.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel retires the job. Queued jobs cancel immediately; running jobs at
// the engine's next round boundary.
func (j *Job) Cancel() error {
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.mu.Unlock()
		j.finish(StateCancelled, cgraph.ErrCancelled, nil)
		return nil
	case j.state == StateRunning:
		h := j.handle
		j.mu.Unlock()
		return h.Cancel()
	default:
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("server: cancel: job %s already %s", j.id, st)
	}
}

// Results returns the converged per-vertex values; an error before the job
// is done.
func (j *Job) Results() ([]float64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, fmt.Errorf("server: job %s is %s, results unavailable", j.id, j.state)
	}
	return j.results, nil
}

// finish transitions the job to a terminal state exactly once.
func (j *Job) finish(state State, err error, results []float64) {
	j.finishIf(nil, state, err, results)
}

// failIfQueued fails the job only if it is still waiting in the FIFO —
// the deadline watcher's transition, which must lose to a concurrent
// launch.
func (j *Job) failIfQueued(err error) {
	j.finishIf(func(s State) bool { return s == StateQueued }, StateFailed, err, nil)
}

func (j *Job) finishIf(cond func(State) bool, state State, err error, results []float64) {
	j.mu.Lock()
	if j.state.Terminal() || (cond != nil && !cond(j.state)) {
		j.mu.Unlock()
		return
	}
	j.state = state
	if state != StateDone {
		j.err = err
	}
	j.results = results
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancelCtx()
	close(j.done)
}

// Status is the JSON-facing snapshot of a job.
type Status struct {
	ID        string     `json:"id"`
	Algo      string     `json:"algo"`
	State     State      `json:"state"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted_at"`
	Started   *time.Time `json:"started_at,omitempty"`
	Finished  *time.Time `json:"finished_at,omitempty"`
	// Engine metrics, populated once the job converges.
	Iterations         int     `json:"iterations,omitempty"`
	EdgesProcessed     int64   `json:"edges_processed,omitempty"`
	SimulatedAccessUS  float64 `json:"simulated_access_us,omitempty"`
	SimulatedComputeUS float64 `json:"simulated_compute_us,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.id,
		Algo:      j.name,
		State:     j.state,
		Submitted: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.metrics != nil {
		st.Iterations = j.metrics.Iterations
		st.EdgesProcessed = j.metrics.EdgesProcessed
		st.SimulatedAccessUS = j.metrics.SimulatedAccessUS
		st.SimulatedComputeUS = j.metrics.SimulatedComputeUS
	}
	return st
}
