// Package server is the CGraph job service: the "common platform" of §1
// run as a resident subsystem rather than a batch library call. A Service
// owns one serving cgraph.System and layers on top of it the job lifecycle
// (Queued → Running → Done / Cancelled / Failed), durable string job IDs,
// handles with Wait/Status/Results, admission control (a maximum number of
// in-flight jobs with priority-then-FIFO backpressure, leaning on the
// §3.2.3 more-jobs-than-workers batching to pick a useful in-flight
// width), snapshot ingestion for evolving graphs while jobs run, a
// per-job event stream (lifecycle transitions plus per-iteration
// progress), and a bounded history ring of compacted terminal jobs.
//
// Every wire shape the service speaks lives in package api; the /v1
// HTTP/JSON control plane over a Service lives in http.go, the in-process
// cgraph.Client implementation in local.go, and cmd/cgraph-serve wires the
// handler to a listener.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"maps"
	"sync"
	"sync/atomic"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/internal/span"
	"cgraph/model"
)

// ErrStopped is the terminal error of jobs still queued or running when the
// service stops.
var ErrStopped = errors.New("server: service stopped")

// State is a job's lifecycle state as reported by the control plane; it is
// the wire type api.JobState.
type State = api.JobState

const (
	// StateQueued: accepted, waiting for an in-flight slot.
	StateQueued = api.JobQueued
	// StateRunning: submitted to the engine and being iterated.
	StateRunning = api.JobRunning
	// StateDone: converged; results are available.
	StateDone = api.JobDone
	// StateCancelled: retired by an explicit cancel before convergence.
	StateCancelled = api.JobCancelled
	// StateFailed: retired without converging (deadline expiry, engine
	// failure, or service shutdown).
	StateFailed = api.JobFailed
)

// Status is the wire snapshot of a job (api.JobStatus).
type Status = api.JobStatus

// SchedInfo is the wire view of the engine's latest scheduling decision
// (api.SchedInfo).
type SchedInfo = api.SchedInfo

// SchedGroup is one correlation group of the engine's last round
// (api.SchedGroup).
type SchedGroup = api.SchedGroup

// Config tunes a Service.
type Config struct {
	// MaxInFlight caps the jobs submitted to the engine at once; further
	// submissions wait (highest priority first, FIFO within a priority)
	// until a slot frees. Zero means unlimited — the engine batches jobs
	// beyond the worker count per §3.2.3, so unlimited is safe, just
	// unbounded in memory.
	MaxInFlight int
	// DefaultTimeout applies to submissions without an explicit timeout.
	// Zero means no deadline.
	DefaultTimeout time.Duration
	// RetainTerminal caps the terminal jobs kept with full state (results
	// included). Beyond it the oldest terminal jobs are compacted: their
	// results are dropped and their status summaries move to a history
	// ring, so listings paginate history instead of losing it. Zero keeps
	// every terminal job forever (the library default; long-lived services
	// should set a cap).
	RetainTerminal int
	// HistoryLimit caps the ring of compacted terminal job summaries
	// (default 256 when compaction is enabled). Summaries evicted off the
	// ring leave listings but stay in the per-state job counts, so
	// metrics never run backwards.
	HistoryLimit int
	// Logger receives the service's structured events: job admissions and
	// retirements, ingest flushes, retention evictions, shed batches, and
	// (through the HTTP middleware) every request with its per-request ID.
	// Nil discards everything.
	Logger *slog.Logger
	// DefaultExecMode applies to submissions without an explicit execution
	// mode. Empty keeps the engine default (BSP) and keeps exec_mode off
	// the wire for such jobs.
	DefaultExecMode cgraph.ExecMode
	// DefaultStaleness applies to delayed-mode submissions without an
	// explicit staleness bound. Zero keeps the engine default.
	DefaultStaleness int
}

// Spec describes one job submission.
type Spec struct {
	// Program is the vertex program to run. Required. Programs with
	// job-private bookkeeping must not be shared between submissions.
	Program model.Program
	// Timeout, when positive, bounds the job's wall-clock lifetime from
	// submission — queue wait included; on expiry the job fails with
	// context.DeadlineExceeded.
	Timeout time.Duration
	// Arrival, when non-nil, binds the job to the newest snapshot not
	// younger than *Arrival; nil binds to the latest snapshot at launch.
	Arrival *int64
	// Labels are free-form annotations echoed back in the job's status.
	Labels map[string]string
	// Priority orders admission when the service is at MaxInFlight:
	// higher-priority submissions leave the wait queue first, FIFO within
	// a priority. Zero is the default.
	Priority int
	// Span, when valid, parents the job's span tree under the caller's
	// trace (the HTTP layer passes the request span here); invalid starts
	// a fresh trace rooted at the job's submit span.
	Span span.Context
	// RequestID joins the job's log lines to the HTTP request that
	// submitted it (empty for in-process submissions without one).
	RequestID string
	// ExecMode selects the job's execution discipline (cgraph.ExecBSP /
	// ExecAsync / ExecDelayed); empty runs the default BSP discipline.
	ExecMode cgraph.ExecMode
	// Staleness is the delayed mode's barrier bound; values < 1 use the
	// library default. Ignored for other modes.
	Staleness int
}

// Service is a resident CGraph job service over one shared graph.
type Service struct {
	sys    *cgraph.System
	cfg    Config
	events *hub
	log    *slog.Logger
	obs    *serviceObs
	// reqSeq numbers requests for the per-request IDs the HTTP middleware
	// assigns when the caller did not send one.
	reqSeq atomic.Uint64

	mu       sync.Mutex
	started  bool
	stopped  bool
	runErr   error // sticky: why the round loop died, if it failed
	jobs     map[string]*Job
	order    []string
	queue    []*Job
	inflight int
	nextID   int
	// byEngine maps engine job IDs to service jobs while they run, so
	// round-loop progress events resolve to service IDs.
	byEngine map[int]*Job
	// history is the ring of compacted terminal job summaries, oldest
	// first; evicted counts entries dropped off the ring per state, so
	// job-count metrics stay monotone after eviction.
	history []histEntry
	evicted map[State]int
	stop    context.CancelFunc
	// stopProgress unregisters the service's System progress observer
	// once the service stops, so a dead Service is not kept alive (or
	// called into) by the engine's round loop; stopIngest does the same
	// for the ingest-event observer.
	stopProgress func()
	stopIngest   func()
	serveErr     chan error
	// stopCh closes once the round loop has exited and resident jobs were
	// failed; watchers parked on engine handles unblock on it.
	stopCh   chan struct{}
	stopOnce sync.Once
}

// New builds a Service over sys. The graph must be loaded before Start;
// the system must not be used for batch Run concurrently.
func New(sys *cgraph.System, cfg Config) *Service {
	s := &Service{
		sys:      sys,
		cfg:      cfg,
		events:   newHub(),
		jobs:     make(map[string]*Job),
		byEngine: make(map[int]*Job),
		evicted:  make(map[State]int),
		serveErr: make(chan error, 1),
		stopCh:   make(chan struct{}),
	}
	if s.cfg.RetainTerminal > 0 && s.cfg.HistoryLimit <= 0 {
		s.cfg.HistoryLimit = 256
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.obs = newServiceObs()
	s.stopProgress = sys.OnJobProgress(s.onProgress)
	s.stopIngest = sys.OnIngestEvent(s.onIngestEvent)
	return s
}

// System returns the underlying cgraph.System (snapshot ingestion, stats).
func (s *Service) System() *cgraph.System { return s.sys }

// Start launches the resident round loop on its own goroutine and begins
// accepting submissions. It is an error to start twice or after Stop.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("server: already started")
	}
	if s.stopped {
		return fmt.Errorf("server: service stopped")
	}
	if _, err := cgraph.ParseExecMode(string(s.cfg.DefaultExecMode)); err != nil {
		return fmt.Errorf("server: config: %w", err)
	}
	if s.cfg.DefaultStaleness < 0 {
		return fmt.Errorf("server: config: negative default staleness %d", s.cfg.DefaultStaleness)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.stop = cancel
	s.started = true
	//cgraph:spawn one resident round-loop goroutine per service, exits with Serve
	go func() {
		err := s.sys.Serve(ctx)
		if err != nil {
			// The loop never ran (e.g. the system was mid-batch-Run).
			// Surface the cause: further submissions fail with it and
			// every accepted job resolves instead of hanging.
			s.mu.Lock()
			if !s.stopped {
				s.stopped = true
				s.runErr = err
				s.queue = nil
			}
			s.mu.Unlock()
			s.finalizeStop(err)
		}
		s.serveErr <- err
	}()
	return nil
}

// Stop gracefully shuts the service down: no further submissions are
// accepted, the round loop exits at the next round boundary, and every job
// not yet terminal fails with ErrStopped. Stop returns once the loop has
// exited, or with ctx's error if ctx expires first (teardown then
// completes in the background when the loop lands).
func (s *Service) Stop(ctx context.Context) error {
	s.mu.Lock()
	if !s.started || s.stopped {
		s.stopped = true
		s.mu.Unlock()
		s.stopProgress()
		s.stopIngest()
		return nil
	}
	s.stopped = true
	stop := s.stop
	s.queue = nil
	s.mu.Unlock()

	stop()
	select {
	case err := <-s.serveErr:
		s.finalizeStop(ErrStopped)
		return err
	case <-ctx.Done():
		//cgraph:spawn at most one teardown waiter per service, exits when the loop lands
		go func() {
			<-s.serveErr
			s.finalizeStop(ErrStopped)
		}()
		return ctx.Err()
	}
}

// finalizeStop runs once the round loop has exited: every non-terminal job
// fails with cause so waiters unblock, then stopCh releases the watchers
// still parked on engine handles.
func (s *Service) finalizeStop(cause error) {
	s.stopOnce.Do(func() {
		s.stopProgress()
		s.stopIngest()
		s.mu.Lock()
		ids := append([]string(nil), s.order...)
		s.mu.Unlock()
		for _, id := range ids {
			if j, ok := s.Get(id); ok {
				j.finish(StateFailed, cause, nil)
			}
		}
		close(s.stopCh)
	})
}

// Submit accepts a job. When the service has a free in-flight slot the job
// launches immediately (Running as soon as the engine admits it at a round
// boundary); otherwise it waits, highest priority first and FIFO within a
// priority. The returned handle is valid for the lifetime of the service.
func (s *Service) Submit(spec Spec) (*Job, error) {
	if spec.Program == nil {
		return nil, fmt.Errorf("server: submit: nil program")
	}
	if spec.Timeout == 0 {
		spec.Timeout = s.cfg.DefaultTimeout
	}
	if spec.ExecMode == "" {
		spec.ExecMode = s.cfg.DefaultExecMode
	}
	if spec.Staleness == 0 && spec.ExecMode == cgraph.ExecDelayed {
		spec.Staleness = s.cfg.DefaultStaleness
	}
	// The stored labels must not alias the submitter's map.
	spec.Labels = maps.Clone(spec.Labels)
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: submit before Start")
	}
	if s.stopped {
		err := s.runErr
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return nil, ErrStopped
	}
	id := fmt.Sprintf("job-%d", s.nextID)
	s.nextID++
	jctx := context.Background()
	jcancel := context.CancelFunc(func() {})
	if spec.Timeout > 0 {
		// The deadline clock starts now, so time spent queued counts.
		jctx, jcancel = context.WithTimeout(jctx, spec.Timeout)
	}
	j := &Job{
		svc:       s,
		id:        id,
		name:      spec.Program.Name(),
		spec:      spec,
		state:     StateQueued,
		engineID:  -1,
		submitted: time.Now(),
		done:      make(chan struct{}),
		ctx:       jctx,
		cancelCtx: jcancel,
	}
	// The submit span roots the job's tree (under the caller's trace when
	// one arrived); it stays open until the job retires, so its wall edges
	// bound the job's full service-side lifetime. The queue-wait child ends
	// at launch — or at retirement, for jobs that never launch.
	tracer := s.sys.SpanTracer()
	j.rootSpan = tracer.StartSpan(spec.Span, "job.submit") //cgraph:spanend ended by finishIf when the job retires
	j.rootSpan.SetJob(id)
	j.rootSpan.Attr(span.Str("algo", j.name), span.Int("priority", int64(spec.Priority)))
	j.queueSpan = tracer.StartSpan(j.rootSpan.Context(), "job.queue_wait") //cgraph:spanend ended by launch, or by finishIf for jobs that never launch
	j.queueSpan.SetJob(id)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.events.create(id)
	s.events.publish(id, api.Event{Type: api.EventState, State: StateQueued})
	if s.cfg.MaxInFlight > 0 && s.inflight >= s.cfg.MaxInFlight {
		// Insert before the first waiter with a strictly lower priority:
		// highest priority first, FIFO within a priority.
		at := len(s.queue)
		for i, q := range s.queue {
			if q.spec.Priority < spec.Priority {
				at = i
				break
			}
		}
		s.queue = append(s.queue, nil)
		copy(s.queue[at+1:], s.queue[at:])
		s.queue[at] = j
		s.mu.Unlock()
		if spec.Timeout > 0 {
			// A queued job must honour its deadline even if no slot ever
			// frees. AfterFunc parks no goroutine; whichever way the job
			// retires, finishIf cancels j.ctx and the callback dissolves
			// (failIfQueued loses to any terminal state).
			context.AfterFunc(j.ctx, func() {
				j.failIfQueued(context.Cause(j.ctx))
			})
		}
		return j, nil
	}
	s.inflight++
	s.mu.Unlock()
	if err := s.launch(j); err != nil {
		j.finish(StateFailed, err, nil)
		s.releaseSlot()
		return j, err
	}
	return j, nil
}

// launch submits j to the engine and spawns its completion watcher.
func (s *Service) launch(j *Job) error {
	opts := []cgraph.JobOption{
		cgraph.WithContext(j.ctx),
		cgraph.WithPriority(j.spec.Priority),
		// The engine parents its per-round spans under the job's root, so
		// the tree reads http.request → job.submit → job.round regardless
		// of transport.
		cgraph.WithSpan(j.rootSpan.Context(), j.id),
	}
	if j.spec.Arrival != nil {
		opts = append(opts, cgraph.AtTimestamp(*j.spec.Arrival))
	}
	if j.spec.ExecMode != "" {
		opts = append(opts, cgraph.WithExecMode(j.spec.ExecMode))
	}
	if j.spec.Staleness > 0 {
		opts = append(opts, cgraph.WithStaleness(j.spec.Staleness))
	}
	h, err := s.sys.Submit(j.spec.Program, opts...)
	if err != nil {
		return err
	}
	j.queueSpan.End()
	j.mu.Lock()
	// A cancel or deadline may have landed between the slot grab and the
	// engine submission; the job is already terminal, so drop the
	// engine-side twin and free the slot.
	if j.state.Terminal() {
		j.mu.Unlock()
		h.Cancel()
		s.releaseSlot()
		return nil
	}
	j.state = StateRunning
	j.handle = h
	j.engineID = h.ID()
	j.started = time.Now()
	wait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	s.obs.queueWait.Observe(wait.Seconds())
	s.log.Info("job admitted",
		"job", j.id,
		"engine_id", h.ID(),
		"algo", j.name,
		"priority", j.spec.Priority,
		"queue_wait_ms", durationMS(wait),
		"request_id", j.spec.RequestID,
		"trace_id", j.rootSpan.TraceID().String())
	// Publish the state transition before registering the engine→job
	// mapping: progress events only resolve through byEngine, so none can
	// enter the stream ahead of "running" (an iteration completing in
	// this window is dropped — the stream guarantees order, not density).
	s.events.publish(j.id, api.Event{Type: api.EventState, State: StateRunning})
	s.mu.Lock()
	s.byEngine[h.ID()] = j
	s.mu.Unlock()
	//cgraph:spawn one watcher per admitted job, bounded by MaxInFlight slots
	go s.watch(j, h)
	return nil
}

// onProgress runs on the engine's round loop after every completed job
// iteration: it refreshes the job's live counters and feeds the event
// stream, so watchers observe progress without polling.
func (s *Service) onProgress(u cgraph.JobUpdate) {
	s.mu.Lock()
	j := s.byEngine[u.JobID]
	s.mu.Unlock()
	if j == nil {
		// A job submitted directly on the System, outside this service.
		return
	}
	j.mu.Lock()
	j.iterations = u.Iteration
	j.edges = u.EdgesProcessed
	j.mu.Unlock()
	s.events.publish(j.id, api.Event{
		Type:           api.EventProgress,
		Iteration:      u.Iteration,
		EdgesProcessed: u.EdgesProcessed,
		VirtualTimeUS:  u.VirtualTimeUS,
	})
}

// watch resolves j's terminal state once the engine retires its job — or,
// if the service stops first, leaves j to finalizeStop and unparks.
func (s *Service) watch(j *Job, h *cgraph.Job) {
	select {
	case <-h.Done():
	case <-s.stopCh:
		// The loop exited with this job resident; finalizeStop failed it.
		return
	}
	err := h.Err()
	var state State
	var results []float64
	switch {
	case err == nil:
		results, err = h.Results()
		if err != nil {
			state = StateFailed
		} else {
			state = StateDone
		}
	case errors.Is(err, cgraph.ErrCancelled), errors.Is(err, context.Canceled):
		state = StateCancelled
	default:
		// Deadline expiry and engine-side failures.
		state = StateFailed
	}
	j.mu.Lock()
	j.metrics = h.Metrics()
	j.mu.Unlock()
	s.mu.Lock()
	delete(s.byEngine, h.ID())
	s.mu.Unlock()
	j.finish(state, err, results)
	// The service keeps the results; drop the engine-side private table so
	// resident memory stays bounded as jobs flow through.
	h.Release()
	s.releaseSlot()
}

// releaseSlot frees one in-flight slot and launches waiting jobs while
// capacity remains.
func (s *Service) releaseSlot() {
	s.mu.Lock()
	s.inflight--
	for !s.stopped && len(s.queue) > 0 && (s.cfg.MaxInFlight <= 0 || s.inflight < s.cfg.MaxInFlight) {
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.State() != StateQueued {
			continue // cancelled while waiting
		}
		s.inflight++
		s.mu.Unlock()
		if err := s.launch(j); err != nil {
			j.finish(StateFailed, err, nil)
			s.mu.Lock()
			s.inflight--
			continue
		}
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// compactTerminal enforces Config.RetainTerminal: the oldest terminal jobs
// beyond the cap lose their full state (results included) and their status
// summaries move to the bounded history ring, so listings keep paginating
// them while resident memory stays bounded.
func (s *Service) compactTerminal() {
	if s.cfg.RetainTerminal <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].State().Terminal() {
			terminal++
		}
	}
	for over := terminal - s.cfg.RetainTerminal; over > 0; over-- {
		at := -1
		for i, id := range s.order {
			if s.jobs[id].State().Terminal() {
				at = i
				break
			}
		}
		if at < 0 {
			return
		}
		id := s.order[at]
		j := s.jobs[id]
		st := j.Status()
		st.Released = true
		delete(s.jobs, id)
		s.order = append(s.order[:at], s.order[at+1:]...)
		s.history = append(s.history, histEntry{st: st, engineID: j.engineJobID()})
		for len(s.history) > s.cfg.HistoryLimit {
			// Evicted summaries leave the listing but stay counted, so
			// job-state metrics never run backwards.
			s.evicted[s.history[0].st.State]++
			s.history = s.history[1:]
		}
		s.events.remove(id)
	}
}

// histEntry is one compacted terminal job: its status summary plus the
// engine job ID it ran under, so scheduler plans referencing a job
// compacted mid-round still resolve to its service ID.
type histEntry struct {
	st       api.JobStatus
	engineID int
}

// Get returns the handle of a known (non-compacted) job ID.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel retires the identified job: a queued job is cancelled on the spot,
// a running one at the engine's next round boundary. Cancelling a terminal
// job is an error.
func (s *Service) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("server: cancel: unknown job %q", id)
	}
	return j.Cancel()
}

// List returns the status of every live (non-compacted) job in submission
// order. ListPage additionally paginates over the compacted history.
func (s *Service) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Get(id); ok {
			out = append(out, j.Status())
		}
	}
	return out
}

// snapshotJobs copies the history ring, the live job handles, and the
// eviction counters under one lock hold, so a concurrent compaction
// cannot surface the same job in both halves or in neither.
func (s *Service) snapshotJobs() (history []api.JobStatus, live []*Job, evicted map[State]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	history = make([]api.JobStatus, len(s.history))
	for i, h := range s.history {
		history[i] = h.st
	}
	live = make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		live = append(live, s.jobs[id])
	}
	return history, live, maps.Clone(s.evicted)
}

// matchesFilter applies ListOptions' state and label filters to one job
// status.
func matchesFilter(st api.JobStatus, opts api.ListOptions) bool {
	if opts.State != "" && st.State != opts.State {
		return false
	}
	for k, v := range opts.Labels {
		if st.Labels[k] != v {
			return false
		}
	}
	return true
}

// ListPage returns one page of the full job listing — compacted history
// first (oldest to newest), then live jobs in submission order — with the
// scheduler summary attached. State and label filters apply before
// pagination, so Total counts the matching jobs.
func (s *Service) ListPage(opts api.ListOptions) api.JobList {
	all, jobs, _ := s.snapshotJobs()
	for _, j := range jobs {
		all = append(all, j.Status())
	}
	if opts.State != "" || len(opts.Labels) > 0 {
		filtered := all[:0]
		for _, st := range all {
			if matchesFilter(st, opts) {
				filtered = append(filtered, st)
			}
		}
		all = filtered
	}
	list := api.JobList{Total: len(all), Offset: opts.Offset}
	lo := min(max(opts.Offset, 0), len(all))
	hi := len(all)
	if opts.Limit > 0 && lo+opts.Limit < hi {
		hi = lo + opts.Limit
	}
	list.Jobs = all[lo:hi]
	sched := s.SchedInfo()
	list.Sched = &sched
	return list
}

// AddSnapshot ingests a new graph version at the given timestamp while the
// service runs; jobs submitted afterwards (or with a matching Arrival) see
// it. The edge list must be a slot rewrite of the base list.
func (s *Service) AddSnapshot(edges []model.Edge, timestamp int64) error {
	return s.sys.AddSnapshot(edges, timestamp)
}

// engineNameMap maps engine job IDs to service job IDs: live jobs plus —
// so plans and traces referencing a job compacted mid-round still resolve —
// the compacted history ring.
func (s *Service) engineNameMap() map[int]string {
	s.mu.Lock()
	js := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	byEngine := make(map[int]string, len(js))
	for _, h := range s.history {
		if h.engineID >= 0 {
			byEngine[h.engineID] = h.st.ID
		}
	}
	s.mu.Unlock()
	for _, j := range js {
		if id := j.engineJobID(); id >= 0 {
			byEngine[id] = j.ID()
		}
	}
	return byEngine
}

// engineJobName resolves one engine job ID to its service ID, falling back
// to a synthetic name for jobs submitted directly on the System.
func engineJobName(byEngine map[int]string, id int) string {
	if sid, ok := byEngine[id]; ok {
		return sid
	}
	return fmt.Sprintf("engine-%d", id)
}

// SchedInfo reports the scheduler's last plan with service job IDs.
func (s *Service) SchedInfo() SchedInfo {
	ci := s.sys.SchedInfo()
	byEngine := s.engineNameMap()
	out := SchedInfo{
		Policy:      ci.Policy,
		Theta:       ci.Theta,
		ThetaRefits: ci.ThetaRefits,
		Round:       ci.Round,
	}
	for _, g := range ci.Groups {
		sg := SchedGroup{Parts: g.Parts, PartUIDs: g.UIDs, Priority: g.Priority, MakespanUS: g.MakespanUS}
		for _, id := range g.JobIDs {
			sg.Jobs = append(sg.Jobs, engineJobName(byEngine, id))
		}
		out.Groups = append(out.Groups, sg)
	}
	return out
}

// Job is the service-side handle of one submitted job.
type Job struct {
	svc  *Service
	id   string
	name string
	spec Spec
	done chan struct{}

	// ctx carries the job's deadline from submission; cancelCtx releases
	// its timer once the job is terminal.
	ctx       context.Context
	cancelCtx context.CancelFunc

	// rootSpan ("job.submit") spans the job's full service-side lifetime;
	// queueSpan ("job.queue_wait") its wait for an in-flight slot. Both are
	// assigned once at submission and never reassigned, so they are read
	// without j.mu (the Span type has its own lock).
	rootSpan  *span.Span
	queueSpan *span.Span

	mu         sync.Mutex
	state      State
	err        error
	handle     *cgraph.Job
	engineID   int // engine job ID once launched; -1 before
	results    []float64
	metrics    *cgraph.JobReport
	iterations int
	edges      int64
	submitted  time.Time
	started    time.Time
	finished   time.Time
}

// TraceID returns the job's trace ID in wire form (32 lowercase hex).
func (j *Job) TraceID() string { return j.rootSpan.TraceID().String() }

// engineJobID returns the engine job ID the job ran under, -1 if it never
// launched.
func (j *Job) engineJobID() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.engineID
}

// ID returns the service-assigned job ID.
func (j *Job) ID() string { return j.id }

// Name returns the program name.
func (j *Job) Name() string { return j.name }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err reports why the job terminated; nil before termination and after a
// clean convergence.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state or ctx expires; on a
// terminal state it returns Err.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel retires the job. Queued jobs cancel immediately; running jobs at
// the engine's next round boundary.
func (j *Job) Cancel() error {
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.mu.Unlock()
		j.finish(StateCancelled, cgraph.ErrCancelled, nil)
		return nil
	case j.state == StateRunning:
		h := j.handle
		j.mu.Unlock()
		return h.Cancel()
	default:
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("server: cancel: job %s already %s", j.id, st)
	}
}

// Results returns the converged per-vertex values; an error before the job
// is done.
func (j *Job) Results() ([]float64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, fmt.Errorf("server: job %s is %s, results unavailable", j.id, j.state)
	}
	return j.results, nil
}

// finish transitions the job to a terminal state exactly once.
func (j *Job) finish(state State, err error, results []float64) {
	j.finishIf(nil, state, err, results)
}

// failIfQueued fails the job only if it is still waiting in the FIFO —
// the deadline watcher's transition, which must lose to a concurrent
// launch.
func (j *Job) failIfQueued(err error) {
	j.finishIf(func(s State) bool { return s == StateQueued }, StateFailed, err, nil)
}

func (j *Job) finishIf(cond func(State) bool, state State, err error, results []float64) {
	j.mu.Lock()
	if j.state.Terminal() || (cond != nil && !cond(j.state)) {
		j.mu.Unlock()
		return
	}
	j.state = state
	if state != StateDone {
		j.err = err
	}
	j.results = results
	j.finished = time.Now()
	iters := j.iterations
	if j.metrics != nil {
		iters = j.metrics.Iterations
	}
	var exec time.Duration
	if !j.started.IsZero() {
		exec = j.finished.Sub(j.started)
	}
	j.mu.Unlock()
	j.cancelCtx()
	close(j.done)
	if exec > 0 {
		j.svc.obs.exec.With(j.name).Observe(exec.Seconds())
	}
	// Close out the job's span tree: the queue-wait span (a no-op when
	// launch already ended it), an instant retirement marker, then the root
	// span with the terminal state stamped on it.
	j.queueSpan.End()
	now := time.Now() //cgraph:wallclock span edges are wall-stamped by design
	retire := span.Data{
		Trace:     j.rootSpan.TraceID(),
		Parent:    j.rootSpan.Context().Span,
		Name:      "job.retire",
		Job:       j.id,
		StartWall: now,
		EndWall:   now,
		Attrs:     []span.Attr{span.Str("state", string(state))},
	}
	if state != StateDone && err != nil {
		retire.Attrs = append(retire.Attrs, span.Str("error", err.Error()))
	}
	j.svc.sys.SpanTracer().Record(retire)
	j.rootSpan.Attr(span.Str("state", string(state)), span.Int("iterations", int64(iters)))
	j.rootSpan.End()
	logAttrs := []any{
		"job", j.id,
		"algo", j.name,
		"state", string(state),
		"iterations", iters,
		"exec_ms", durationMS(exec),
		"request_id", j.spec.RequestID,
		"trace_id", j.TraceID(),
	}
	if state != StateDone && err != nil {
		logAttrs = append(logAttrs, "error", err.Error())
	}
	j.svc.log.Info("job retired", logAttrs...)
	ev := api.Event{Type: api.EventState, State: state, Iteration: iters}
	if state != StateDone {
		ev.Error = apiError(err)
	}
	j.svc.events.publish(j.id, ev)
	j.svc.compactTerminal()
}

// apiError converts a job's terminal error to its wire form.
func apiError(err error) *api.Error {
	if err == nil {
		return nil
	}
	code := api.CodeInternal
	switch {
	case errors.Is(err, cgraph.ErrCancelled), errors.Is(err, context.Canceled):
		code = api.CodeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		code = api.CodeDeadlineExceeded
	case errors.Is(err, ErrStopped):
		code = api.CodeUnavailable
	}
	return &api.Error{Code: code, Message: err.Error()}
}

// Status snapshots the job in its wire form.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:   j.id,
		Algo: j.name,
		// Cloned so a caller mutating the snapshot (in-process clients
		// skip the JSON copy HTTP clients get) cannot alter the job.
		Labels:     maps.Clone(j.spec.Labels),
		State:      j.state,
		Priority:   j.spec.Priority,
		Submitted:  j.submitted,
		Iterations: j.iterations,
		// Empty for default-BSP jobs, so pre-mode payloads are unchanged.
		ExecMode: string(j.spec.ExecMode),
	}
	st.Error = apiError(j.err)
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	st.TraceID = j.TraceID()
	st.EdgesProcessed = j.edges
	if j.metrics != nil {
		st.Iterations = j.metrics.Iterations
		st.EdgesProcessed = j.metrics.EdgesProcessed
		st.SimulatedAccessUS = j.metrics.SimulatedAccessUS
		st.SimulatedComputeUS = j.metrics.SimulatedComputeUS
	}
	return st
}
