package server

import (
	"context"

	"cgraph"
	"cgraph/api"
)

// localClient adapts a Service to the cgraph.Client contract in-process:
// the same api wire types, the same error codes, the same watch semantics
// as the HTTP client in package client — without a network hop.
type localClient struct {
	svc *Service
	reg Registry
}

// NewLocalClient returns the in-process cgraph.Client over svc. The
// registry resolves algorithm names; pass nil for DefaultRegistry. Code
// written against cgraph.Client runs unchanged against this client and the
// HTTP client of package client.
func NewLocalClient(svc *Service, reg Registry) cgraph.Client {
	if reg == nil {
		reg = DefaultRegistry()
	}
	return &localClient{svc: svc, reg: reg}
}

func (c *localClient) Submit(ctx context.Context, spec api.JobSpec) (api.JobStatus, error) {
	if err := ctx.Err(); err != nil {
		return api.JobStatus{}, err
	}
	st, aerr := c.svc.SubmitSpec(ctx, c.reg, spec)
	if aerr != nil {
		return api.JobStatus{}, aerr
	}
	return st, nil
}

func (c *localClient) Get(ctx context.Context, id string) (api.JobStatus, error) {
	if err := ctx.Err(); err != nil {
		return api.JobStatus{}, err
	}
	st, aerr := c.svc.StatusOf(id)
	if aerr != nil {
		return api.JobStatus{}, aerr
	}
	return st, nil
}

func (c *localClient) List(ctx context.Context, opts api.ListOptions) (api.JobList, error) {
	if err := ctx.Err(); err != nil {
		return api.JobList{}, err
	}
	list, aerr := c.svc.ListJobs(opts)
	if aerr != nil {
		return api.JobList{}, aerr
	}
	return list, nil
}

func (c *localClient) Watch(ctx context.Context, id string) (<-chan api.Event, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch, aerr := c.svc.WatchJob(ctx, id)
	if aerr != nil {
		return nil, aerr
	}
	return ch, nil
}

func (c *localClient) Results(ctx context.Context, id string, opts api.ResultsOptions) (api.Results, error) {
	if err := ctx.Err(); err != nil {
		return api.Results{}, err
	}
	res, aerr := c.svc.ResultsOf(id, opts)
	if aerr != nil {
		return api.Results{}, aerr
	}
	return res, nil
}

func (c *localClient) Cancel(ctx context.Context, id string) (api.JobStatus, error) {
	if err := ctx.Err(); err != nil {
		return api.JobStatus{}, err
	}
	st, aerr := c.svc.CancelJob(id)
	if aerr != nil {
		return api.JobStatus{}, aerr
	}
	return st, nil
}

func (c *localClient) AddSnapshot(ctx context.Context, snap api.Snapshot) (api.SnapshotAck, error) {
	if err := ctx.Err(); err != nil {
		return api.SnapshotAck{}, err
	}
	ack, aerr := c.svc.IngestSnapshot(snap)
	if aerr != nil {
		return api.SnapshotAck{}, aerr
	}
	return ack, nil
}

func (c *localClient) ApplyDelta(ctx context.Context, delta api.Delta) (api.DeltaAck, error) {
	if err := ctx.Err(); err != nil {
		return api.DeltaAck{}, err
	}
	ack, aerr := c.svc.IngestDelta(ctx, delta)
	if aerr != nil {
		return api.DeltaAck{}, aerr
	}
	return ack, nil
}

func (c *localClient) JobTrace(ctx context.Context, id string) (api.JobTrace, error) {
	if err := ctx.Err(); err != nil {
		return api.JobTrace{}, err
	}
	tr, aerr := c.svc.TraceOf(id)
	if aerr != nil {
		return api.JobTrace{}, aerr
	}
	return tr, nil
}

func (c *localClient) JobSpans(ctx context.Context, id string) (api.JobSpans, error) {
	if err := ctx.Err(); err != nil {
		return api.JobSpans{}, err
	}
	js, aerr := c.svc.SpansOf(id)
	if aerr != nil {
		return api.JobSpans{}, aerr
	}
	return js, nil
}

func (c *localClient) TraceSpans(ctx context.Context, traceID string) (api.SpanList, error) {
	if err := ctx.Err(); err != nil {
		return api.SpanList{}, err
	}
	sl, aerr := c.svc.TraceSpansOf(traceID)
	if aerr != nil {
		return api.SpanList{}, aerr
	}
	return sl, nil
}

func (c *localClient) RoundTrace(ctx context.Context, opts api.TraceOptions) (api.RoundTraces, error) {
	if err := ctx.Err(); err != nil {
		return api.RoundTraces{}, err
	}
	return c.svc.RoundTraces(opts.Limit), nil
}

func (c *localClient) SchedInfo(ctx context.Context) (api.SchedInfo, error) {
	if err := ctx.Err(); err != nil {
		return api.SchedInfo{}, err
	}
	return c.svc.SchedInfo(), nil
}

func (c *localClient) Metrics(ctx context.Context) (api.Metrics, error) {
	if err := ctx.Err(); err != nil {
		return api.Metrics{}, err
	}
	return c.svc.MetricsInfo(), nil
}
