package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"time"

	"cgraph"
	"cgraph/api"
	"cgraph/internal/span"
	"cgraph/model"
)

// This file is the transport-neutral face of the Service: every operation
// of the cgraph.Client contract, speaking api types and returning
// *api.Error. The /v1 HTTP handlers (http.go) and the in-process client
// (local.go) are both thin shims over these methods, so the two transports
// cannot diverge in behaviour or error codes.

// SubmitSpec accepts one wire-form submission: the registry resolves the
// algorithm name, and the spec's labels, priority, deadline, and snapshot
// binding carry through to the service job. A span context and request ID
// carried by ctx (the HTTP middleware plants both) parent the job's span
// tree and join its log lines to the request.
func (s *Service) SubmitSpec(ctx context.Context, reg Registry, spec api.JobSpec) (api.JobStatus, *api.Error) {
	if reg == nil {
		reg = DefaultRegistry()
	}
	if spec.TimeoutMS < 0 {
		return api.JobStatus{}, api.Errorf(api.CodeBadRequest, "negative timeout_ms %d", spec.TimeoutMS)
	}
	mode, err := cgraph.ParseExecMode(spec.ExecMode)
	if err != nil {
		return api.JobStatus{}, api.Errorf(api.CodeBadRequest,
			"unknown exec_mode %q (want bsp, async, or delayed)", spec.ExecMode)
	}
	if spec.Staleness < 0 {
		return api.JobStatus{}, api.Errorf(api.CodeBadRequest, "negative staleness %d", spec.Staleness)
	}
	prog, err := reg.Build(spec.Algo, ProgramParams{Source: model.VertexID(spec.Source), K: spec.K})
	if err != nil {
		return api.JobStatus{}, &api.Error{Code: api.CodeUnknownAlgorithm, Message: err.Error()}
	}
	sspec := Spec{
		Program:   prog,
		Arrival:   spec.AtTimestamp,
		Labels:    spec.Labels,
		Priority:  spec.Priority,
		Span:      span.FromContext(ctx),
		RequestID: requestIDFrom(ctx),
		Staleness: spec.Staleness,
	}
	// Echo the caller's non-default mode; an absent/empty exec_mode keeps
	// the pre-mode status payload byte-identical.
	if spec.ExecMode != "" {
		sspec.ExecMode = mode
	}
	if spec.TimeoutMS > 0 {
		sspec.Timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	j, err := s.Submit(sspec)
	if err != nil {
		return api.JobStatus{}, &api.Error{Code: api.CodeUnavailable, Message: err.Error()}
	}
	return j.Status(), nil
}

// ListJobs is the transport-neutral filtered listing: it validates the
// filter — both clients must reject an unknown state with the same code —
// and returns one page of matching jobs.
func (s *Service) ListJobs(opts api.ListOptions) (api.JobList, *api.Error) {
	switch opts.State {
	case "", StateQueued, StateRunning, StateDone, StateCancelled, StateFailed:
	default:
		return api.JobList{}, api.Errorf(api.CodeBadRequest, "unknown state %q", opts.State)
	}
	return s.ListPage(opts), nil
}

// StatusOf reports one job's wire status, live or compacted.
func (s *Service) StatusOf(id string) (api.JobStatus, *api.Error) {
	if j, ok := s.Get(id); ok {
		return j.Status(), nil
	}
	if st, ok := s.historyLookup(id); ok {
		return st, nil
	}
	return api.JobStatus{}, api.Errorf(api.CodeNotFound, "unknown job %q", id)
}

// CancelJob retires the identified job and returns its status as of the
// cancel request (running jobs retire at the engine's next round
// boundary, so the returned state may still be "running").
func (s *Service) CancelJob(id string) (api.JobStatus, *api.Error) {
	j, ok := s.Get(id)
	if !ok {
		if st, ok := s.historyLookup(id); ok {
			return api.JobStatus{}, api.Errorf(api.CodeConflict, "job %s already %s (compacted)", id, st.State)
		}
		return api.JobStatus{}, api.Errorf(api.CodeNotFound, "unknown job %q", id)
	}
	if err := j.Cancel(); err != nil {
		return api.JobStatus{}, &api.Error{Code: api.CodeConflict, Message: err.Error()}
	}
	return j.Status(), nil
}

// ResultsOf returns a finished job's converged values, full or top-K.
func (s *Service) ResultsOf(id string, opts api.ResultsOptions) (api.Results, *api.Error) {
	j, ok := s.Get(id)
	if !ok {
		if _, ok := s.historyLookup(id); ok {
			return api.Results{}, api.Errorf(api.CodeReleased, "job %s was compacted to history; results dropped", id)
		}
		return api.Results{}, api.Errorf(api.CodeNotFound, "unknown job %q", id)
	}
	if opts.Top < 0 {
		return api.Results{}, api.Errorf(api.CodeBadRequest, "negative top %d", opts.Top)
	}
	values, err := j.Results()
	if err != nil {
		code := api.CodeConflict
		if st := j.State(); st == StateQueued || st == StateRunning {
			// Not an error, just not done yet.
			code = api.CodeNotReady
		}
		return api.Results{}, &api.Error{Code: code, Message: err.Error()}
	}
	res := api.Results{ID: j.ID(), Algo: j.Name(), NumVertices: len(values)}
	if opts.Top > 0 {
		top := make([]api.VertexValue, 0, len(values))
		for v, x := range values {
			top = append(top, api.VertexValue{Vertex: v, Value: api.Float(x)})
		}
		sort.Slice(top, func(i, j int) bool { return top[i].Value > top[j].Value })
		if opts.Top < len(top) {
			top = top[:opts.Top]
		}
		res.Top = top
		return res, nil
	}
	res.Values = make([]api.Float, len(values))
	for i, x := range values {
		res.Values[i] = api.Float(x)
	}
	return res, nil
}

// wireVertexID converts a wire float to a vertex id, rejecting values an
// unchecked float→uint32 conversion would map to implementation-specific
// garbage (negatives, non-integers, NaN/Inf, ids at or past the NoVertex
// sentinel).
func wireVertexID(x float64) (model.VertexID, *api.Error) {
	if math.IsNaN(x) || x < 0 || x >= float64(model.NoVertex) || x != math.Trunc(x) {
		return 0, api.Errorf(api.CodeBadRequest, "bad vertex id %v (want an integer in [0,%d))", x, uint64(model.NoVertex))
	}
	return model.VertexID(x), nil
}

// wireEdge converts one wire [src, dst, weight] triple.
func wireEdge(e [3]float64) (model.Edge, *api.Error) {
	src, aerr := wireVertexID(e[0])
	if aerr != nil {
		return model.Edge{}, aerr
	}
	dst, aerr := wireVertexID(e[1])
	if aerr != nil {
		return model.Edge{}, aerr
	}
	return model.Edge{Src: src, Dst: dst, Weight: float32(e[2])}, nil
}

// IngestSnapshot applies one wire-form snapshot (a slot rewrite of the
// base edge list) at the given timestamp.
func (s *Service) IngestSnapshot(snap api.Snapshot) (api.SnapshotAck, *api.Error) {
	edges := make([]model.Edge, len(snap.Edges))
	for i, e := range snap.Edges {
		edge, aerr := wireEdge(e)
		if aerr != nil {
			return api.SnapshotAck{}, aerr
		}
		edges[i] = edge
	}
	if err := s.AddSnapshot(edges, snap.Timestamp); err != nil {
		return api.SnapshotAck{}, &api.Error{Code: api.CodeBadRequest, Message: err.Error()}
	}
	return api.SnapshotAck{Timestamp: snap.Timestamp, Edges: len(edges)}, nil
}

// IngestDelta streams one wire-form mutation batch into the system's delta
// pipeline. Unlike IngestSnapshot it ships only the changed slots — or,
// for the structural ops (add_edge, remove_edge, add_vertex), the changed
// topology; the pipeline coalesces batches and materializes incrementally
// re-chunked snapshots per its batching window. When the ingest admission
// cap is reached the batch is shed with ingest_saturated (HTTP 429). Each
// accepted batch is wrapped in an "ingest.accept" span parented under ctx's
// span (if any); the pipeline chains its flush and materialize spans off
// the first batch of each coalescing window.
func (s *Service) IngestDelta(ctx context.Context, delta api.Delta) (api.DeltaAck, *api.Error) {
	d := cgraph.Delta{Timestamp: delta.Timestamp, Flush: delta.Flush, RequestID: requestIDFrom(ctx)}
	d.Mutations = make([]cgraph.Mutation, len(delta.Mutations))
	for i, m := range delta.Mutations {
		var op cgraph.MutationOp
		switch m.Op {
		case "", api.MutationRewrite:
			op = cgraph.MutationRewrite
		case api.MutationAdd:
			op = cgraph.MutationAdd
		case api.MutationRemove:
			op = cgraph.MutationRemove
		case api.MutationAddVertex:
			op = cgraph.MutationAddVertex
		default:
			return api.DeltaAck{}, api.Errorf(api.CodeBadRequest, "unsupported mutation op %q", m.Op)
		}
		edge, aerr := wireEdge(m.Edge)
		if aerr != nil {
			return api.DeltaAck{}, aerr
		}
		d.Mutations[i] = cgraph.Mutation{
			Op:     op,
			Slot:   m.Slot,
			Vertex: model.VertexID(m.Vertex),
			Edge:   edge,
		}
	}
	accept := s.sys.SpanTracer().StartSpan(span.FromContext(ctx), "ingest.accept")
	defer accept.End()
	accept.Attr(span.Int("mutations", int64(len(delta.Mutations))), span.Bool("flush", delta.Flush))
	d.Span = accept.Context()
	ack, err := s.sys.ApplyDelta(d)
	if err != nil {
		accept.Attr(span.Str("error", err.Error()))
		if errors.Is(err, cgraph.ErrIngestSaturated) {
			s.log.Warn("delta batch shed",
				"trigger", "admission_cap",
				"mutations", len(delta.Mutations),
				"timestamp", delta.Timestamp,
				"request_id", d.RequestID)
			return api.DeltaAck{}, &api.Error{Code: api.CodeIngestSaturated, Message: err.Error()}
		}
		return api.DeltaAck{}, &api.Error{Code: api.CodeBadRequest, Message: err.Error()}
	}
	accept.Attr(span.Int("accepted", int64(ack.Accepted)), span.Int("pending", int64(ack.Pending)), span.Bool("flushed", ack.Flushed))
	return api.DeltaAck{
		Accepted:  ack.Accepted,
		Pending:   ack.Pending,
		Flushed:   ack.Flushed,
		Timestamp: ack.Timestamp,
	}, nil
}

// SpansOf returns one job's retained span tree plus its resource
// attribution. Only job-attributed spans appear — the tree is identical
// through the in-process and HTTP clients; transport spans of the same
// trace are served by TraceSpansOf.
func (s *Service) SpansOf(id string) (api.JobSpans, *api.Error) {
	var traceID string
	if j, ok := s.Get(id); ok {
		traceID = j.TraceID()
	} else if st, ok := s.historyLookup(id); ok {
		traceID = st.TraceID
	} else {
		return api.JobSpans{}, api.Errorf(api.CodeNotFound, "unknown job %q", id)
	}
	spans := s.sys.SpanTracer().JobSpans(id)
	out := api.JobSpans{ID: id, TraceID: traceID, Spans: wireSpans(spans)}
	if a, ok := attributionOf(id, traceID, spans); ok {
		out.Attribution = &a
	}
	return out, nil
}

// TraceSpansOf returns every retained span of one trace, oldest first —
// job spans plus the transport and ingest spans sharing the trace ID.
func (s *Service) TraceSpansOf(traceID string) (api.SpanList, *api.Error) {
	t, err := span.ParseTraceID(traceID)
	if err != nil {
		return api.SpanList{}, api.Errorf(api.CodeBadRequest, "bad trace_id %q: %v", traceID, err)
	}
	return api.SpanList{TraceID: traceID, Spans: wireSpans(s.sys.SpanTracer().Spans(t))}, nil
}

// wireSpans converts stored spans to their wire form, preserving order.
func wireSpans(ds []span.Data) []api.Span {
	out := make([]api.Span, len(ds))
	for i, d := range ds {
		out[i] = wireSpan(d)
	}
	return out
}

// wireSpan converts one stored span, rendering typed attributes to strings.
func wireSpan(d span.Data) api.Span {
	w := api.Span{
		TraceID:        d.Trace.String(),
		SpanID:         d.ID.String(),
		Name:           d.Name,
		Job:            d.Job,
		Start:          d.StartWall,
		End:            d.EndWall,
		StartVirtualUS: d.StartVirtualUS,
		EndVirtualUS:   d.EndVirtualUS,
	}
	if !d.EndWall.IsZero() {
		w.DurationMS = float64(d.EndWall.Sub(d.StartWall)) / float64(time.Millisecond)
	}
	if !d.Parent.IsZero() {
		w.Parent = d.Parent.String()
	}
	for _, a := range d.Attrs {
		w.Attrs = append(w.Attrs, api.SpanAttr{Key: a.Key, Value: a.Value()})
	}
	return w
}

// attributionOf folds a job's retained spans into its resource account:
// queue wait and exec from the lifecycle spans, task/steal/skip counts and
// simulated time summed over its round spans, and the job's share of its
// correlation groups' makespan. ok is false when no spans survive in the
// store (all evicted).
func attributionOf(id, traceID string, spans []span.Data) (api.JobAttribution, bool) {
	if len(spans) == 0 {
		return api.JobAttribution{}, false
	}
	a := api.JobAttribution{ID: id, TraceID: traceID}
	var totalMS, groupUS float64
	num := func(d span.Data, key string) float64 {
		at, _ := d.Attr(key)
		return at.Num
	}
	for _, d := range spans {
		switch d.Name {
		case "job.submit":
			if !d.EndWall.IsZero() {
				totalMS = float64(d.EndWall.Sub(d.StartWall)) / float64(time.Millisecond)
			}
		case "job.queue_wait":
			if !d.EndWall.IsZero() {
				a.QueueWaitMS = float64(d.EndWall.Sub(d.StartWall)) / float64(time.Millisecond)
			}
		case "job.round":
			a.Rounds++
			a.Tasks += int64(num(d, "tasks"))
			a.TasksStolen += int64(num(d, "stolen"))
			a.SkippedPartitions += int64(num(d, "skipped_parts"))
			a.AccessUS += num(d, "access_us")
			a.ComputeUS += num(d, "compute_us")
			groupUS += num(d, "group_makespan_us")
		}
	}
	if totalMS > a.QueueWaitMS {
		a.ExecMS = totalMS - a.QueueWaitMS
	}
	if groupUS > 0 {
		a.MakespanShare = min((a.AccessUS+a.ComputeUS)/groupUS, 1)
	}
	return a, true
}

// Readyz evaluates the service's readiness checks: the engine's round loop
// is serving, the ingest pipeline is below its admission cap, and the
// snapshot store is within its retention bound. Liveness is weaker — a
// process able to answer /v1/healthz at all is alive.
func (s *Service) Readyz() api.Health {
	s.mu.Lock()
	started, stopped, runErr := s.started, s.stopped, s.runErr
	s.mu.Unlock()
	h := api.Health{Status: "ok"}
	add := func(name string, ok bool, detail string) {
		h.Checks = append(h.Checks, api.HealthCheck{Name: name, OK: ok, Detail: detail})
		if !ok {
			h.Status = "unavailable"
		}
	}
	switch {
	case runErr != nil:
		add("engine", false, "round loop failed: "+runErr.Error())
	case !started:
		add("engine", false, "service not started")
	case stopped:
		add("engine", false, "service stopped")
	default:
		add("engine", true, "round loop serving")
	}
	ing := s.sys.IngestStats()
	if limit := s.sys.IngestCap(); limit > 0 && ing.Pending >= limit {
		add("ingest", false, fmt.Sprintf("saturated: %d pending at cap %d", ing.Pending, limit))
	} else {
		add("ingest", true, fmt.Sprintf("%d pending", ing.Pending))
	}
	if ing.RetainSnapshots > 0 && ing.SnapshotsLive > ing.RetainSnapshots {
		add("snapshots", false, fmt.Sprintf("%d live over retention %d", ing.SnapshotsLive, ing.RetainSnapshots))
	} else {
		add("snapshots", true, fmt.Sprintf("%d live", ing.SnapshotsLive))
	}
	return h
}

// VersionInfo identifies the build: the wire-contract version, the module
// version or VCS revision baked in by the toolchain, and the Go version.
func (s *Service) VersionInfo() api.VersionInfo {
	return buildVersion()
}

// buildVersion reads the serving binary's build info once per call — cheap
// (ReadBuildInfo returns a cached parse) and dependency-free.
func buildVersion() api.VersionInfo {
	v := api.VersionInfo{API: api.Version, Version: "devel"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.GoVersion = info.GoVersion
	if mv := info.Main.Version; mv != "" && mv != "(devel)" {
		v.Version = mv
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" && kv.Value != "" {
			v.Version = kv.Value
			if len(v.Version) > 12 {
				v.Version = v.Version[:12]
			}
		}
	}
	return v
}

// ingestInfo reports the system's ingest counters in wire form.
func (s *Service) ingestInfo() api.IngestStats {
	st := s.sys.IngestStats()
	return api.IngestStats{
		Batches:          st.Batches,
		Mutations:        st.Mutations,
		Coalesced:        st.Coalesced,
		Flushes:          st.Flushes,
		CountFlushes:     st.CountFlushes,
		AgeFlushes:       st.AgeFlushes,
		ManualFlushes:    st.ManualFlushes,
		Failures:         st.Failures,
		Rewrites:         st.Rewrites,
		EdgeAdds:         st.EdgeAdds,
		EdgeRemoves:      st.EdgeRemoves,
		VertexAdds:       st.VertexAdds,
		Cancelled:        st.Cancelled,
		RemoveMisses:     st.RemoveMisses,
		Shed:             st.Shed,
		SnapshotsBuilt:   st.SnapshotsBuilt,
		SlotsApplied:     st.SlotsApplied,
		Compactions:      st.Compactions,
		PartsRebuilt:     st.PartsRebuilt,
		PartsShared:      st.PartsShared,
		SharedRatio:      st.SharedRatio,
		Pending:          st.Pending,
		LastTimestamp:    st.LastTimestamp,
		SnapshotsLive:    st.SnapshotsLive,
		SnapshotsEvicted: st.SnapshotsEvicted,
		RetainSnapshots:  st.RetainSnapshots,
		OldestSeq:        st.OldestSeq,
		OldestTimestamp:  st.OldestTimestamp,
		NewestSeq:        st.NewestSeq,
		NewestTimestamp:  st.NewestTimestamp,
		NumVertices:      st.NumVertices,
	}
}

// MetricsInfo reports job-state counts (compacted history included),
// round-loop progress, and the scheduler's last plan in wire form.
func (s *Service) MetricsInfo() api.Metrics {
	m, _ := s.metricsSnapshot()
	return m
}

// metricsSnapshot builds MetricsInfo and returns the live statuses it
// counted, so the Prometheus handler lists jobs once per scrape. History,
// live handles, and eviction counters are copied under one lock hold
// (snapshotJobs): a job compacted mid-scrape is counted in exactly one
// bucket, and jobs evicted off the bounded ring stay counted, so the
// per-state totals never run backwards.
func (s *Service) metricsSnapshot() (api.Metrics, []api.JobStatus) {
	m := api.Metrics{
		Jobs: map[api.JobState]int{
			StateQueued: 0, StateRunning: 0, StateDone: 0, StateCancelled: 0, StateFailed: 0,
		},
		Sched:  s.SchedInfo(),
		Ingest: s.ingestInfo(),
	}
	history, jobs, evicted := s.snapshotJobs()
	for state, n := range evicted {
		m.Jobs[state] += n
	}
	for _, st := range history {
		m.Jobs[st.State]++
	}
	live := make([]api.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		live = append(live, st)
		m.Jobs[st.State]++
	}
	stats := s.sys.Stats()
	m.Rounds = stats.Rounds
	m.VirtualTimeUS = stats.VirtualTimeUS
	es := s.sys.ExecStats()
	m.Exec = api.ExecInfo{
		Workers:           es.Workers,
		Balance:           es.Balance,
		Tasks:             es.Tasks,
		Steals:            es.Steals,
		Stolen:            es.Stolen,
		SkippedPartitions: es.SkippedPartitions,
		Imbalance:         es.LastImbalance,
		FreshFolds:        es.FreshFolds,
		BarriersSkipped:   es.BarriersSkipped,
		BarriersForced:    es.BarriersForced,
		BSPJobs:           es.BSPJobs,
		AsyncJobs:         es.AsyncJobs,
		DelayedJobs:       es.DelayedJobs,
	}
	m.Attribution = s.attributions()
	return m, live
}

// attributions computes the per-job resource account of every job with at
// least one retained span, ordered by job ID. The span store bounds the
// list, so a scrape stays O(store capacity) regardless of job history.
func (s *Service) attributions() []api.JobAttribution {
	tracer := s.sys.SpanTracer()
	ids := tracer.Jobs()
	sort.Strings(ids)
	out := make([]api.JobAttribution, 0, len(ids))
	for _, id := range ids {
		ds := tracer.JobSpans(id)
		if len(ds) == 0 {
			continue
		}
		if a, ok := attributionOf(id, ds[0].Trace.String(), ds); ok {
			out = append(out, a)
		}
	}
	return out
}

// WatchJob streams the job's events: a replay of its lifecycle so far,
// then live progress and state events. The channel closes after a
// terminal state event or when ctx ends. Compacted jobs replay their
// terminal summary.
func (s *Service) WatchJob(ctx context.Context, id string) (<-chan api.Event, *api.Error) {
	return s.WatchJobFrom(ctx, id, 0)
}

// WatchJobFrom is WatchJob resuming after a previously seen event: the
// replay skips events with Seq ≤ after, so a reconnecting watcher (SSE
// Last-Event-ID) picks up where its dropped stream left off instead of
// re-reading the job's full history. after = 0 replays everything.
func (s *Service) WatchJobFrom(ctx context.Context, id string, after int64) (<-chan api.Event, *api.Error) {
	if _, ok := s.Get(id); ok {
		if ch, ok := s.events.subscribe(ctx, id, after); ok {
			return ch, nil
		}
		// Compacted between the lookup and the subscription; fall through.
	}
	if st, ok := s.historyLookup(id); ok {
		return replayTerminal(st, after), nil
	}
	return nil, api.Errorf(api.CodeNotFound, "unknown job %q", id)
}

// historyLookup finds a compacted job's summary in the history ring.
func (s *Service) historyLookup(id string) (api.JobStatus, bool) {
	e, ok := s.historyEntry(id)
	return e.st, ok
}

// historyEntry finds a compacted job's full history entry — status summary
// plus the engine job ID it ran under.
func (s *Service) historyEntry(id string) (histEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.history) - 1; i >= 0; i-- {
		if s.history[i].st.ID == id {
			return s.history[i], true
		}
	}
	return histEntry{}, false
}

// TraceOf builds one job's trace: the lifecycle envelope (wait → admit →
// exec, derived from the service-side timestamps) plus the engine's
// retained round-by-round timeline. It works for live jobs and for jobs
// compacted to history — the engine's terminal trace ring outlives the
// service-side results — and degrades to the envelope alone when tracing
// is disabled (TraceDepth 0).
func (s *Service) TraceOf(id string) (api.JobTrace, *api.Error) {
	if j, ok := s.Get(id); ok {
		return s.jobTraceOf(j.Status(), j.engineJobID()), nil
	}
	if e, ok := s.historyEntry(id); ok {
		return s.jobTraceOf(e.st, e.engineID), nil
	}
	return api.JobTrace{}, api.Errorf(api.CodeNotFound, "unknown job %q", id)
}

// jobTraceOf assembles the wire trace from a status snapshot and the
// engine-side timeline.
func (s *Service) jobTraceOf(st api.JobStatus, engineID int) api.JobTrace {
	tr := api.JobTrace{
		ID:        st.ID,
		Algo:      st.Algo,
		State:     st.State,
		Submitted: st.Submitted,
		Started:   st.Started,
		Finished:  st.Finished,
		Released:  st.Released,
		Error:     st.Error,
		Rounds:    []api.JobRoundTrace{},
	}
	if st.Started != nil {
		tr.QueueWaitMS = float64(st.Started.Sub(st.Submitted)) / float64(time.Millisecond)
		end := time.Now()
		if st.Finished != nil {
			end = *st.Finished
		}
		tr.ExecMS = float64(end.Sub(*st.Started)) / float64(time.Millisecond)
	}
	if engineID >= 0 {
		if jt, ok := s.sys.JobTrace(engineID); ok {
			tr.DroppedRounds = jt.Dropped
			for _, jr := range jt.Rounds {
				tr.Rounds = append(tr.Rounds, wireJobRound(jr, ""))
			}
		}
	}
	return tr
}

// RoundTraces reports the engine's retained round-trace ring in wire form,
// oldest first, with engine job IDs resolved to service job IDs. limit
// caps the records returned, newest retained (0 = the whole ring).
func (s *Service) RoundTraces(limit int) api.RoundTraces {
	out := api.RoundTraces{TraceDepth: s.sys.TraceDepth(), Rounds: []api.RoundTrace{}}
	recs := s.sys.RoundTraces(limit)
	if len(recs) == 0 {
		return out
	}
	byEngine := s.engineNameMap()
	for _, r := range recs {
		rt := api.RoundTrace{
			Round:             r.Round,
			Start:             r.Start,
			WallUS:            float64(r.Wall) / float64(time.Microsecond),
			VirtualTimeUS:     r.VirtualTimeUS,
			Policy:            r.Policy,
			Theta:             r.Theta,
			Tasks:             r.Tasks,
			Steals:            r.Steals,
			SkippedPartitions: r.Skipped,
		}
		for _, g := range r.Groups {
			wg := api.RoundTraceGroup{Priority: g.Priority, Units: g.Units, MakespanUS: g.MakespanUS}
			for _, id := range g.JobIDs {
				wg.Jobs = append(wg.Jobs, engineJobName(byEngine, id))
			}
			rt.Groups = append(rt.Groups, wg)
		}
		for _, jr := range r.Jobs {
			rt.Jobs = append(rt.Jobs, wireJobRound(jr, engineJobName(byEngine, jr.JobID)))
		}
		out.Rounds = append(out.Rounds, rt)
	}
	return out
}

// wireJobRound converts one engine job-round record to its wire form; job
// is the resolved service job ID (empty inside a JobTrace, where the whole
// timeline belongs to one job).
func wireJobRound(jr cgraph.JobRoundTrace, job string) api.JobRoundTrace {
	return api.JobRoundTrace{
		Job:           job,
		Round:         jr.Round,
		WallUS:        float64(jr.Wall) / float64(time.Microsecond),
		Parts:         jr.Parts,
		Pushes:        jr.Pushes,
		AccessUS:      jr.AccessUS,
		ComputeUS:     jr.ComputeUS,
		VirtualTimeUS: jr.VirtualTimeUS,
	}
}
