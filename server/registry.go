package server

import (
	"fmt"
	"sort"

	"cgraph/algo"
	"cgraph/model"
)

// ProgramParams carries the per-submission knobs an algorithm constructor
// may consume.
type ProgramParams struct {
	// Source is the source vertex of traversal algorithms (sssp, bfs,
	// ppr, sswp).
	Source model.VertexID
	// K is the k-core threshold.
	K int
}

// ProgramFactory builds a fresh Program per submission — programs with
// job-private bookkeeping (e.g. SCC) must never be shared between jobs.
type ProgramFactory func(ProgramParams) model.Program

// Registry maps control-plane algorithm names to factories.
type Registry map[string]ProgramFactory

// DefaultRegistry exposes the bundled algorithms under their cgraph-run
// names.
func DefaultRegistry() Registry {
	return Registry{
		"pagerank": func(ProgramParams) model.Program { return algo.NewPageRank() },
		"ppr":      func(p ProgramParams) model.Program { return algo.NewPPR(p.Source) },
		"sssp":     func(p ProgramParams) model.Program { return algo.NewSSSP(p.Source) },
		"bfs":      func(p ProgramParams) model.Program { return algo.NewBFS(p.Source) },
		"sswp":     func(p ProgramParams) model.Program { return algo.NewSSWP(p.Source) },
		"wcc":      func(ProgramParams) model.Program { return algo.NewWCC() },
		"scc":      func(ProgramParams) model.Program { return algo.NewSCC() },
		"kcore":    func(p ProgramParams) model.Program { return algo.NewKCore(p.K) },
		"degree":   func(ProgramParams) model.Program { return algo.NewDegree() },
		"hits":     func(ProgramParams) model.Program { return algo.NewHITS() },
		"katz":     func(ProgramParams) model.Program { return algo.NewKatz() },
	}
}

// Build instantiates the named program.
func (r Registry) Build(name string, p ProgramParams) (model.Program, error) {
	f, ok := r[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown algorithm %q (have: %v)", name, r.Names())
	}
	return f(p), nil
}

// Names lists the registered algorithm names, sorted.
func (r Registry) Names() []string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
