package server

import (
	"time"

	"cgraph"
	"cgraph/internal/metrics"
)

// serviceObs bundles the service's latency histograms: every hot seam the
// Prometheus endpoint exposes as a cgraph_* histogram family observes
// through one of these. All of them are safe for concurrent use.
type serviceObs struct {
	// httpLatency measures each /v1 request end-to-end, labelled by route
	// pattern, method, and status code (middleware in http.go).
	httpLatency *metrics.HistogramVec
	// queueWait measures submission → engine admission per job.
	queueWait *metrics.Histogram
	// exec measures admission → terminal state per job, by algorithm.
	exec *metrics.HistogramVec
	// ingestFlush measures delta-pipeline flush latency by trigger;
	// ingestBatch the coalesced batch size each flush drained.
	ingestFlush *metrics.HistogramVec
	ingestBatch *metrics.Histogram
	// materialize measures snapshot materialization latency by path
	// ("overlay" pointer-sharing vs full "restructure").
	materialize *metrics.HistogramVec
}

func newServiceObs() *serviceObs {
	return &serviceObs{
		httpLatency: metrics.NewHistogramVec(metrics.LatencyBuckets(), "route", "method", "code"),
		queueWait:   metrics.NewHistogram(metrics.LatencyBuckets()),
		exec:        metrics.NewHistogramVec(metrics.LatencyBuckets(), "algo"),
		ingestFlush: metrics.NewHistogramVec(metrics.LatencyBuckets(), "trigger"),
		ingestBatch: metrics.NewHistogram(metrics.SizeBuckets()),
		materialize: metrics.NewHistogramVec(metrics.LatencyBuckets(), "path"),
	}
}

// onIngestEvent folds the system's ingestion/retention events into the
// flush histograms and the structured log. It runs under pipeline or store
// locks, so it must stay cheap and never call back into the System.
func (s *Service) onIngestEvent(ev cgraph.IngestEvent) {
	switch ev.Kind {
	case cgraph.IngestFlush:
		s.obs.ingestFlush.With(ev.Trigger).Observe(ev.Duration.Seconds())
		s.obs.ingestBatch.Observe(float64(ev.Mutations))
		// request_id/trace_id join the flush to the HTTP request that opened
		// its coalescing window, so a slow flush is attributable end-to-end.
		s.log.Info("delta flush",
			"trigger", ev.Trigger,
			"mutations", ev.Mutations,
			"built", ev.Built,
			"latency_ms", durationMS(ev.Duration),
			"timestamp", ev.Timestamp,
			"request_id", ev.RequestID,
			"trace_id", ev.TraceID)
	case cgraph.IngestMaterialize:
		s.obs.materialize.With(ev.Path).Observe(ev.Duration.Seconds())
		s.log.Debug("snapshot materialized",
			"path", ev.Path,
			"slots", ev.Mutations,
			"latency_ms", durationMS(ev.Duration),
			"timestamp", ev.Timestamp)
	case cgraph.IngestEvict:
		s.log.Info("snapshot evicted",
			"seq", ev.Seq,
			"timestamp", ev.Timestamp,
			"trigger", "retention")
	}
}

// durationMS renders a duration as fractional milliseconds for log fields.
func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
