package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cgraph"
	"cgraph/internal/gen"
	"cgraph/internal/graph"
	"cgraph/internal/refimpl"
	"cgraph/model"
	"cgraph/server"
)

func httpJSON(t *testing.T, client *http.Client, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("%s %s: bad JSON: %v", method, url, err)
	}
	return resp.StatusCode, out
}

func pollState(t *testing.T, client *http.Client, base, id string, want server.State) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, st := httpJSON(t, client, "GET", base+"/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d (%v)", id, code, st)
		}
		if st["state"] == string(want) {
			return st
		}
		if s, _ := st["state"].(string); server.State(s).Terminal() {
			t.Fatalf("job %s reached %s, want %s", id, s, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (last %v)", id, want, st["state"])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHTTPControlPlaneDemo is the acceptance demo: start Serve, submit
// PageRank, submit SSSP mid-flight, cancel one job, expire another via its
// context deadline, ingest a snapshot, and retrieve results for the
// surviving jobs — all without restarting the engine, with every lifecycle
// transition observable over the HTTP API.
func TestHTTPControlPlaneDemo(t *testing.T) {
	edges := gen.RMAT(42, 400, 8000, 0.57, 0.19, 0.19)
	sys := cgraph.NewSystem(cgraph.WithWorkers(2), cgraph.WithCoreSubgraph(false))
	if err := sys.LoadEdges(400, edges); err != nil {
		t.Fatal(err)
	}
	svc := server.New(sys, server.Config{})
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := contextWithTimeout(t)
		defer cancel()
		svc.Stop(ctx)
	}()

	// Expose the bundled algorithms plus a never-converging one so the
	// cancellation legs are deterministic.
	reg := server.DefaultRegistry()
	reg["spin"] = func(server.ProgramParams) model.Program { return spinProgram{} }
	ts := httptest.NewServer(svc.Handler(reg))
	defer ts.Close()
	c := ts.Client()

	// Submit PageRank; the resident loop starts iterating it.
	code, pr := httpJSON(t, c, "POST", ts.URL+"/jobs", map[string]any{"algo": "pagerank"})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs pagerank = %d (%v)", code, pr)
	}
	prID := pr["id"].(string)

	// Submit SSSP mid-flight.
	code, ss := httpJSON(t, c, "POST", ts.URL+"/jobs", map[string]any{"algo": "sssp", "source": 1})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs sssp = %d (%v)", code, ss)
	}
	ssID := ss["id"].(string)

	// A spin job, cancelled over the control plane.
	_, spin := httpJSON(t, c, "POST", ts.URL+"/jobs", map[string]any{"algo": "spin"})
	spinID := spin["id"].(string)
	pollState(t, c, ts.URL, spinID, server.StateRunning)
	if code, st := httpJSON(t, c, "DELETE", ts.URL+"/jobs/"+spinID, nil); code != http.StatusOK {
		t.Fatalf("DELETE /jobs/%s = %d (%v)", spinID, code, st)
	}
	pollState(t, c, ts.URL, spinID, server.StateCancelled)

	// Another spin job, retired by its context deadline.
	_, dl := httpJSON(t, c, "POST", ts.URL+"/jobs", map[string]any{"algo": "spin", "timeout_ms": 40})
	dlID := dl["id"].(string)
	dlSt := pollState(t, c, ts.URL, dlID, server.StateFailed)
	if msg, _ := dlSt["error"].(string); !strings.Contains(msg, "deadline") {
		t.Fatalf("deadline job error = %q, want context deadline", msg)
	}

	// Ingest a snapshot while serving, and bind a new job to it.
	mut, _ := gen.Mutate(edges, 0.05, 400, 7)
	snapEdges := make([][3]float64, len(mut))
	for i, e := range mut {
		snapEdges[i] = [3]float64{float64(e.Src), float64(e.Dst), float64(e.Weight)}
	}
	code, snap := httpJSON(t, c, "POST", ts.URL+"/snapshots", map[string]any{"timestamp": 20, "edges": snapEdges})
	if code != http.StatusOK {
		t.Fatalf("POST /snapshots = %d (%v)", code, snap)
	}
	code, ss2 := httpJSON(t, c, "POST", ts.URL+"/jobs", map[string]any{"algo": "sssp", "source": 1, "at_timestamp": 20})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs post-snapshot sssp = %d (%v)", code, ss2)
	}
	ss2ID := ss2["id"].(string)

	// The surviving jobs converge; pull and verify their results.
	pollState(t, c, ts.URL, prID, server.StateDone)
	pollState(t, c, ts.URL, ssID, server.StateDone)
	pollState(t, c, ts.URL, ss2ID, server.StateDone)

	g := graph.Build(400, edges)
	verify := func(id string, want []float64, tol float64) {
		t.Helper()
		code, res := httpJSON(t, c, "GET", ts.URL+"/results/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /results/%s = %d (%v)", id, code, res)
		}
		values := res["values"].([]any)
		if len(values) != len(want) {
			t.Fatalf("job %s: %d values, want %d", id, len(values), len(want))
		}
		for v, raw := range values {
			if math.IsInf(want[v], 1) {
				if s, ok := raw.(string); !ok || s != "+Inf" {
					t.Fatalf("job %s vertex %d: got %v want +Inf", id, v, raw)
				}
				continue
			}
			got, ok := raw.(float64)
			if !ok || math.Abs(got-want[v]) > tol*math.Max(1, math.Abs(want[v])) {
				t.Fatalf("job %s vertex %d: got %v want %v", id, v, raw, want[v])
			}
		}
	}
	// The registry's PageRank runs at its default epsilon (1e-3), so
	// compare with a matching relative tolerance; tight-epsilon numeric
	// fidelity is covered by the core engine tests.
	verify(prID, refimpl.PageRank(g, 0.85, 1e-12, 3000), 1e-2)

	// Top-k results for the pre-snapshot SSSP.
	code, topRes := httpJSON(t, c, "GET", ts.URL+"/results/"+ssID+"?top=5", nil)
	if code != http.StatusOK || len(topRes["top"].([]any)) != 5 {
		t.Fatalf("GET /results top=5 failed: %d %v", code, topRes)
	}

	// The cancelled job has no results.
	if code, _ := httpJSON(t, c, "GET", ts.URL+"/results/"+spinID, nil); code != http.StatusConflict {
		t.Fatalf("GET /results of cancelled job = %d, want 409", code)
	}

	// Job list shows every lifecycle outcome side by side, plus the
	// scheduler's last plan.
	_, list := httpJSON(t, c, "GET", ts.URL+"/jobs", nil)
	states := map[string]int{}
	for _, item := range list["jobs"].([]any) {
		states[item.(map[string]any)["state"].(string)]++
	}
	if states["done"] != 3 || states["cancelled"] != 1 || states["failed"] != 1 {
		t.Fatalf("lifecycle mix wrong: %v", states)
	}
	if _, ok := list["sched"].(map[string]any); !ok {
		t.Fatalf("/jobs response missing sched summary: %v", list)
	}

	// The scheduler's decision is directly observable: policy, fitted θ,
	// and the group/load order of the last round.
	code, schedInfo := httpJSON(t, c, "GET", ts.URL+"/sched", nil)
	if code != http.StatusOK || schedInfo["policy"] != "priority" {
		t.Fatalf("GET /sched = %d (%v)", code, schedInfo)
	}
	if th, _ := schedInfo["theta"].(float64); th <= 0 {
		t.Fatalf("sched theta not fitted: %v", schedInfo)
	}
	if groups, ok := schedInfo["groups"].([]any); !ok || len(groups) == 0 {
		t.Fatalf("sched groups not reported: %v", schedInfo)
	}

	// Metrics expose the same picture in Prometheus text format.
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`cgraph_jobs{state="done"} 3`,
		`cgraph_jobs{state="cancelled"} 1`,
		`cgraph_jobs{state="failed"} 1`,
		"cgraph_engine_rounds_total",
		`cgraph_sched_theta{policy="priority"}`,
		"cgraph_sched_theta_refits_total",
		"cgraph_sched_groups",
		fmt.Sprintf(`cgraph_job_iterations{algo="PageRank",id="%s"}`, prID),
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHTTPErrors(t *testing.T) {
	svc := startService(t, server.Config{}, testEdges(), 300)
	ts := httptest.NewServer(svc.Handler(nil))
	defer ts.Close()
	c := ts.Client()

	if code, _ := httpJSON(t, c, "POST", ts.URL+"/jobs", map[string]any{"algo": "nope"}); code != http.StatusBadRequest {
		t.Fatalf("unknown algo = %d, want 400", code)
	}
	if code, _ := httpJSON(t, c, "GET", ts.URL+"/jobs/job-404", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
	if code, _ := httpJSON(t, c, "DELETE", ts.URL+"/jobs/job-404", nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job = %d, want 404", code)
	}
	if code, _ := httpJSON(t, c, "POST", ts.URL+"/snapshots", map[string]any{"timestamp": 5, "edges": [][3]float64{{0, 1, 1}}}); code != http.StatusBadRequest {
		t.Fatalf("short snapshot = %d, want 400", code)
	}
}

func contextWithTimeout(t *testing.T) (ctx context.Context, cancel context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}
